package regsat

// Benchmark harness: one benchmark per paper artifact (see DESIGN.md's
// per-experiment index E1–E8), plus micro-benchmarks of the core analyses.
// Key reproduced quantities are attached as benchmark metrics so
// `go test -bench=.` regenerates the evaluation's numbers.

import (
	"context"
	"os"
	"runtime"
	"testing"
	"time"

	"regsat/internal/ddg"
	"regsat/internal/experiments"
	"regsat/internal/kernels"
	"regsat/internal/reduce"
	"regsat/internal/rs"
	"regsat/internal/schedule"
	"regsat/internal/solver"
)

func benchPop() experiments.Population {
	return experiments.Population{
		Machine:      ddg.Superscalar,
		RandomGraphs: 10,
		Seed:         2004,
		MaxValues:    10,
	}
}

// BenchmarkE1_Pipeline reproduces the Figure 1 flow end-to-end.
func BenchmarkE1_Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum, err := experiments.Pipeline(context.Background(), benchPop())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(sum.Rows)), "cases")
		b.ReportMetric(float64(sum.Spills), "spills")
	}
}

// BenchmarkE2_Figure2 reproduces the paper's Figure 2 comparison.
func BenchmarkE2_Figure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.InitialRS != 4 {
			b.Fatalf("Figure 2 RS=%d, want 4", res.InitialRS)
		}
		b.ReportMetric(float64(res.ReducedArcs), "rs-arcs")
		b.ReportMetric(float64(res.MinimalArcs), "min-arcs")
	}
}

// BenchmarkE3_RSOptimality reproduces §5's RS-computation comparison
// (heuristic error ≤ 1 register, rare).
func BenchmarkE3_RSOptimality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum, err := experiments.RSOptimality(benchPop())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(sum.ExactHit)/float64(sum.Total), "%optimal")
		b.ReportMetric(float64(sum.MaxError), "max-error")
	}
}

// BenchmarkE4_ReduceOptimality reproduces §5's five-case breakdown
// (paper: i.a 72.22%, i.b 18.5%, ii.a 4.63%, ii.b <1%, ii.c 3.7%).
func BenchmarkE4_ReduceOptimality(b *testing.B) {
	p := benchPop()
	p.MaxValues = 9
	for i := 0; i < b.N; i++ {
		sum, err := experiments.ReduceOptimality(context.Background(), p, 2)
		if err != nil {
			b.Fatal(err)
		}
		total := float64(sum.Total)
		if total == 0 {
			b.Fatal("no instances")
		}
		b.ReportMetric(100*float64(sum.Counts[experiments.ClassIA])/total, "%i.a")
		b.ReportMetric(100*float64(sum.Counts[experiments.ClassIB])/total, "%i.b")
		b.ReportMetric(100*float64(sum.Counts[experiments.ClassIIA])/total, "%ii.a")
		b.ReportMetric(100*float64(sum.Counts[experiments.ClassIIB])/total, "%ii.b")
		b.ReportMetric(100*float64(sum.Counts[experiments.ClassIIC])/total, "%ii.c")
	}
}

// BenchmarkE5_ModelSize reproduces §3's model-size claim (O(n²) variables,
// O(m+n²) constraints; time-indexed models grow with the horizon T).
func BenchmarkE5_ModelSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum, err := experiments.ModelSize(benchPop())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.MaxVarRatio, "max-vars/n²")
		b.ReportMetric(sum.MaxConstrRatio, "max-constrs/(m+n²)")
	}
}

// BenchmarkE6_Timing reproduces §5's heuristic-vs-exact time contrast.
func BenchmarkE6_Timing(b *testing.B) {
	p := benchPop()
	p.RandomGraphs = 0
	for i := 0; i < b.N; i++ {
		sum, err := experiments.Timing(context.Background(), p, 5, solver.Options{MaxNodes: 100000, TimeLimit: 20 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.BBOverGreedy, "exact/greedy")
	}
}

// BenchmarkE7_MinimizeVsSaturate reproduces §6's discussion numbers.
func BenchmarkE7_MinimizeVsSaturate(b *testing.B) {
	p := benchPop()
	p.MaxValues = 9
	for i := 0; i < b.N; i++ {
		sum, err := experiments.Versus(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		if sum.TightCases > 0 {
			b.ReportMetric(100*float64(sum.SatFewerArcs)/float64(sum.TightCases), "%fewer-arcs")
		}
		b.ReportMetric(float64(sum.MinArcsInZeroCases), "min-arcs-at-zero-pressure")
	}
}

// BenchmarkE8_Construction verifies the Theorem 4.2 construction at scale.
func BenchmarkE8_Construction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum, err := experiments.Theorem42(context.Background(), benchPop(), 3, 2004)
		if err != nil {
			b.Fatal(err)
		}
		if len(sum.Failures) > 0 {
			b.Fatalf("violations: %v", sum.Failures)
		}
		b.ReportMetric(float64(sum.DAGPreserved), "extensions")
	}
}

// --- batch engine benchmarks ---
//
// BenchmarkBatchAnalyzeAll/sequential vs /parallel measures the wall-clock
// gain of sharding exact RS analysis across the worker pool: on a 4+ core
// machine the parallel variant runs the same workload (the committed corpus
// plus a synthetic random stream, exact-BB per type) well over 2x faster.
// Each iteration uses a fresh engine so the memo never carries work across
// iterations.

func benchBatchRun(b *testing.B, workers int) {
	params := DefaultRandomParams(14)
	params.Types = []RegType{Int, Float}
	for i := 0; i < b.N; i++ {
		corpus, err := SourceDir("testdata")
		if err != nil {
			b.Fatal(err)
		}
		sources := []GraphSource{corpus, SourceRandom(32, 99, params)}
		ch, err := AnalyzeAll(context.Background(), sources, BatchOptions{
			Parallel: workers,
			RS:       RSOptions{Method: ExactBB, SkipWitness: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for res := range ch {
			if res.Err != nil {
				b.Fatalf("%s: %v", res.Name, res.Err)
			}
			n++
		}
		b.ReportMetric(float64(n), "graphs")
	}
}

func BenchmarkBatchAnalyzeAll(b *testing.B) {
	b.Run("sequential", func(b *testing.B) { benchBatchRun(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchBatchRun(b, runtime.NumCPU()) })
}

// --- micro-benchmarks of the core algorithms ---

func BenchmarkRSGreedyKernels(b *testing.B) {
	suite := kernels.Suite(ddg.Superscalar)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range suite {
			for _, t := range g.Types() {
				an, err := rs.NewAnalysis(g, t)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := rs.Greedy(an); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkRSExactBBKernels(b *testing.B) {
	suite := kernels.Suite(ddg.Superscalar)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range suite {
			for _, t := range g.Types() {
				an, err := rs.NewAnalysis(g, t)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := rs.ExactBB(an, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkMILPSolveBackends contrasts the MILP backends on a corpus graph
// with ≥ 10 nodes: the dense reference engine, the sparse warm-started
// best-bound engine sequentially, and the same engine with a parallel tree
// search. Metrics: branch-and-bound nodes and warm-start rate per solve.
func BenchmarkMILPSolveBackends(b *testing.B) {
	g, err := loadBenchGraph("testdata/random-epic-10n-s2006.ddg")
	if err != nil {
		b.Fatal(err)
	}
	an, err := rs.NewAnalysis(g, ddg.Float)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opt solver.Options) {
		for i := 0; i < b.N; i++ {
			res, err := rs.ExactILP(context.Background(), an, true, opt)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Exact {
				b.Fatalf("backend %q did not prove optimality", opt.Backend)
			}
			b.ReportMetric(float64(res.Stats.Nodes), "bb-nodes")
			b.ReportMetric(100*res.Stats.WarmRate(), "warm%")
		}
	}
	b.Run("dense", func(b *testing.B) { run(b, solver.Options{Backend: "dense"}) })
	b.Run("sparse", func(b *testing.B) { run(b, solver.Options{Backend: "sparse"}) })
	b.Run("parallel", func(b *testing.B) {
		run(b, solver.Options{Backend: "parallel", Parallel: runtime.NumCPU()})
	})
}

func loadBenchGraph(path string) (*ddg.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ddg.Parse(f)
	if err != nil {
		return nil, err
	}
	return g, g.Finalize()
}

func BenchmarkRSExactILPSmall(b *testing.B) {
	g := kernels.ByNameMust("lin-daxpy").Build(ddg.Superscalar)
	an, err := rs.NewAnalysis(g, ddg.Float)
	if err != nil {
		b.Fatal(err)
	}
	params := solver.Options{MaxNodes: 200000, TimeLimit: 30 * time.Second}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rs.ExactILP(context.Background(), an, true, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReduceHeuristicSwim(b *testing.B) {
	g := kernels.ByNameMust("spec-swim").Build(ddg.Superscalar)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := reduce.Heuristic(context.Background(), g, ddg.Float, 6)
		if err != nil || res.Spill {
			b.Fatalf("err=%v spill=%v", err, res.Spill)
		}
	}
}

func BenchmarkReduceExactDaxpy(b *testing.B) {
	g := kernels.ByNameMust("lin-daxpy").Build(ddg.Superscalar)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := reduce.ExactCombinatorial(context.Background(), g, ddg.Int, 3, reduce.ExactOptions{})
		if err != nil || res.Spill {
			b.Fatalf("err=%v spill=%v", err, res.Spill)
		}
	}
}

func BenchmarkListSchedulerSuite(b *testing.B) {
	suite := kernels.Suite(ddg.VLIW)
	res := schedule.TypicalVLIW()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range suite {
			if _, err := schedule.List(g, res); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkMaxLiveSweep(b *testing.B) {
	g := kernels.ByNameMust("liv-l7").Build(ddg.Superscalar)
	s, err := schedule.ASAP(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.RegisterNeed(ddg.Float) < 1 {
			b.Fatal("bogus")
		}
	}
}
