package regsat_test

import (
	"fmt"

	"regsat"
)

// ExampleComputeRS analyzes a two-load/multiply body: both operands must be
// alive at the multiply, and some schedule overlaps them with the result.
func ExampleComputeRS() {
	g := regsat.NewGraph("example", regsat.Superscalar)
	a := g.AddNode("a", "load", 4)
	b := g.AddNode("b", "load", 4)
	c := g.AddNode("c", "fmul", 4)
	g.SetWrites(a, regsat.Float, 0)
	g.SetWrites(b, regsat.Float, 0)
	g.SetWrites(c, regsat.Float, 0)
	g.AddFlowEdge(a, c, regsat.Float)
	g.AddFlowEdge(b, c, regsat.Float)
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	res, err := regsat.ComputeRS(g, regsat.Float, regsat.RSOptions{Method: regsat.ExactBB, SkipWitness: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("RS = %d (exact: %v)\n", res.RS, res.Exact)
	// Output:
	// RS = 2 (exact: true)
}

// ExampleReduceRS reduces a DAG of two independent chains below its
// saturation and reports the added serialization arcs.
func ExampleReduceRS() {
	g := regsat.NewGraph("pair", regsat.Superscalar)
	a := g.AddNode("a", "load", 1)
	b := g.AddNode("b", "load", 1)
	sa := g.AddNode("sa", "store", 1)
	sb := g.AddNode("sb", "store", 1)
	g.SetWrites(a, regsat.Float, 0)
	g.SetWrites(b, regsat.Float, 0)
	g.AddFlowEdge(a, sa, regsat.Float)
	g.AddFlowEdge(b, sb, regsat.Float)
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	red, err := regsat.ReduceRS(g, regsat.Float, 1, regsat.ReduceOptions{Method: regsat.ReduceExact})
	if err != nil {
		panic(err)
	}
	fmt.Printf("reduced RS = %d with %d arc(s), spill = %v\n", red.RS, len(red.Arcs), red.Spill)
	// Output:
	// reduced RS = 1 with 1 arc(s), spill = false
}

// ExampleParseGraphString loads a DDG from the textual format.
func ExampleParseGraphString() {
	g, err := regsat.ParseGraphString(`ddg "mini" machine=superscalar
node x op=load lat=4 writes=float
node y op=store lat=1
edge x y flow float`)
	if err != nil {
		panic(err)
	}
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d nodes, critical path %d\n", g.Name, g.NumNodes(), g.CriticalPath())
	// Output:
	// mini: 3 nodes, critical path 5
}
