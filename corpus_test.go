package regsat

// End-to-end corpus tests: DDG files in testdata/ go through the full
// public pipeline (parse → finalize → analyze → reduce → schedule →
// allocate), exercising exactly the path a downstream user of the file
// format takes.

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"regsat/internal/ddg"
)

func TestCorpusFullPipeline(t *testing.T) {
	files, err := filepath.Glob("testdata/*.ddg")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, file := range files {
		f, err := os.Open(file)
		if err != nil {
			t.Fatal(err)
		}
		g, err := ParseGraph(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if err := g.Finalize(); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, typ := range g.Types() {
			res, err := ComputeRS(g, typ, RSOptions{Method: ExactBB})
			if err != nil {
				t.Fatalf("%s/%s: %v", file, typ, err)
			}
			if res.Witness != nil && res.Witness.RegisterNeed(typ) != res.RS {
				t.Fatalf("%s/%s: witness does not attain RS", file, typ)
			}
			if res.RS < 2 {
				continue
			}
			red, err := ReduceRS(g, typ, res.RS-1, ReduceOptions{Method: ReduceHeuristic})
			if err != nil {
				t.Fatalf("%s/%s: %v", file, typ, err)
			}
			if red.Spill {
				continue
			}
			s, err := ListSchedule(red.Graph, TypicalVLIW())
			if err != nil {
				t.Fatalf("%s/%s: %v", file, typ, err)
			}
			if _, err := Allocate(s, typ, res.RS); err != nil {
				t.Fatalf("%s/%s: allocation within the original RS failed: %v", file, typ, err)
			}
		}
	}
}

// TestFormatRoundTripRandom: Format→Parse→Format is the identity on random
// graphs of every machine kind.
func TestFormatRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := ddg.DefaultRandomParams(2 + rng.Intn(10))
		p.Types = []RegType{Int, Float}
		p.Machine = []MachineKind{Superscalar, VLIW, EPIC}[rng.Intn(3)]
		g := ddg.RandomGraph(rng, p)
		f1 := g.Format()
		g2, err := ParseGraphString(f1)
		if err != nil {
			return false
		}
		if g2.Format() != f1 {
			return false
		}
		if err := g2.Finalize(); err != nil {
			return false
		}
		return g2.NumNodes() == g.NumNodes() && g2.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
