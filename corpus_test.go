package regsat

// End-to-end corpus tests: DDG files in testdata/ go through the full
// public pipeline (parse → finalize → analyze → reduce → schedule →
// allocate), exercising exactly the path a downstream user of the file
// format takes.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"regsat/internal/ddg"
)

func TestCorpusFullPipeline(t *testing.T) {
	files, err := filepath.Glob("testdata/*.ddg")
	if err != nil {
		t.Fatalf("corpus glob failed: %v", err)
	}
	if len(files) == 0 {
		t.Fatal("corpus is empty: no .ddg files in testdata/ (regenerate with `go run ./cmd/ddggen -corpus -out testdata`)")
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		if DetectLoop(string(raw)) {
			// Loop kernels go through the cyclic pipeline (AnalyzeLoop);
			// internal/cyclic's corpus test covers them end to end.
			continue
		}
		g, err := ParseGraphString(string(raw))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if err := g.Finalize(); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, typ := range g.Types() {
			res, err := ComputeRS(g, typ, RSOptions{Method: ExactBB})
			if err != nil {
				t.Fatalf("%s/%s: %v", file, typ, err)
			}
			if res.Witness != nil && res.Witness.RegisterNeed(typ) != res.RS {
				t.Fatalf("%s/%s: witness does not attain RS", file, typ)
			}
			if res.RS < 2 {
				continue
			}
			red, err := ReduceRS(g, typ, res.RS-1, ReduceOptions{Method: ReduceHeuristic})
			if err != nil {
				t.Fatalf("%s/%s: %v", file, typ, err)
			}
			if red.Spill {
				continue
			}
			s, err := ListSchedule(red.Graph, TypicalVLIW())
			if err != nil {
				t.Fatalf("%s/%s: %v", file, typ, err)
			}
			if _, err := Allocate(s, typ, res.RS); err != nil {
				t.Fatalf("%s/%s: allocation within the original RS failed: %v", file, typ, err)
			}
		}
	}
}

// analyzeCorpus runs the batch engine over testdata/ with the given worker
// count and renders the ordered results canonically.
func analyzeCorpus(t *testing.T, parallel int) string {
	t.Helper()
	src, err := SourceDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := AnalyzeAll(context.Background(), []GraphSource{src}, BatchOptions{
		Parallel: parallel,
		RS:       RSOptions{Method: ExactBB},
		Reduce:   &BatchReduce{Budget: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for res := range ch {
		fmt.Fprintf(&b, "#%d %s", res.Index, res.Name)
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Name, res.Err)
		}
		types := make([]string, 0, len(res.RS))
		for typ := range res.RS {
			types = append(types, string(typ))
		}
		sort.Strings(types)
		for _, ts := range types {
			typ := RegType(ts)
			r := res.RS[typ]
			fmt.Fprintf(&b, " %s:RS=%d,exact=%t,chain=%v", ts, r.RS, r.Exact, r.Antichain)
			if r.Witness != nil {
				fmt.Fprintf(&b, ",times=%v", r.Witness.Times)
			}
			if red := res.Reductions[typ]; red != nil {
				fmt.Fprintf(&b, ",red=%d,arcs=%v,spill=%t", red.RS, red.Arcs, red.Spill)
			}
		}
		ctypes := make([]string, 0, len(res.Cyclic))
		for typ := range res.Cyclic {
			ctypes = append(ctypes, string(typ))
		}
		sort.Strings(ctypes)
		for _, ts := range ctypes {
			r := res.Cyclic[RegType(ts)]
			fmt.Fprintf(&b, " %s:win=%v,per=%d,conv=%t,exact=%t", ts, r.Windows, r.PerIter, r.Converged, r.Exact)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestAnalyzeAllMatchesSequential: the parallel batch engine produces
// byte-identical results to the sequential path over the committed corpus,
// for any worker count.
func TestAnalyzeAllMatchesSequential(t *testing.T) {
	want := analyzeCorpus(t, 1)
	if want == "" {
		t.Fatal("sequential run produced no output")
	}
	for _, workers := range []int{2, runtime.NumCPU(), 2 * runtime.NumCPU()} {
		if got := analyzeCorpus(t, workers); got != want {
			t.Errorf("parallel=%d differs from sequential:\n--- sequential\n%s--- parallel\n%s", workers, want, got)
		}
	}
}

// TestFormatRoundTripRandom: Format→Parse→Format is the identity on random
// graphs of every machine kind.
func TestFormatRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := ddg.DefaultRandomParams(2 + rng.Intn(10))
		p.Types = []RegType{Int, Float}
		p.Machine = []MachineKind{Superscalar, VLIW, EPIC}[rng.Intn(3)]
		g := ddg.RandomGraph(rng, p)
		f1 := g.Format()
		g2, err := ParseGraphString(f1)
		if err != nil {
			return false
		}
		if g2.Format() != f1 {
			return false
		}
		if err := g2.Finalize(); err != nil {
			return false
		}
		return g2.NumNodes() == g.NumNodes() && g2.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
