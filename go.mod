module regsat

go 1.24
