module regsat

go 1.23
