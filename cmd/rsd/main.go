// Command rsd is the register-saturation analysis daemon: a long-running
// HTTP/JSON service over the batch engine, with a persistent
// fingerprint-keyed result store so exact results survive restarts and are
// shared across processes (see docs/SERVER.md).
//
// Usage:
//
//	rsd -addr :8735 -store /var/lib/rsd -corpus-root testdata
//	rsd -addr 127.0.0.1:0 -store ""          # ephemeral port, no persistence
//
// SIGTERM/SIGINT drain gracefully: /healthz flips to 503, new work is
// refused, in-flight requests finish (up to -drain), then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"regsat/internal/ir"
	"regsat/internal/obs"
	"regsat/internal/service"
	"regsat/internal/service/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rsd:", err)
		os.Exit(1)
	}
}

// run boots the daemon and serves until ctx is cancelled (the signal
// handler in main, or the test harness). The "listening on" line goes to
// stdout so wrappers can discover an ephemeral port.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8735", "listen address (host:port; port 0 picks one)")
		storeDir    = fs.String("store", "", "persistent result store directory (empty = no persistence)")
		corpusRoot  = fs.String("corpus-root", "", "directory corpus references resolve under (empty = disabled)")
		inflight    = fs.Int("inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		queue       = fs.Int("queue", service.DefaultMaxQueue, "max requests waiting for a slot before shedding with 429")
		workers     = fs.Int("workers", 0, "batch workers per request (0 = GOMAXPROCS)")
		timeout     = fs.Duration("timeout", 60*time.Second, "default per-request deadline")
		maxTimeout  = fs.Duration("max-timeout", 10*time.Minute, "upper clamp on requested deadlines")
		maxBody     = fs.Int64("max-body", 16<<20, "request body size limit (bytes)")
		cacheSize   = fs.Int("cache", 0, "in-memory result memo entries (0 = default)")
		internCap   = fs.Int("intern-cap", 0, "analysis-snapshot interner capacity (0 = default)")
		drain       = fs.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight requests")
		drainNotice = fs.Duration("drain-notice", 2*time.Second, "how long /healthz answers 503 before the listener closes (load-balancer deregistration window)")
		peers       = fs.String("peers", "", "comma-separated base URLs of every fleet replica, including this one (empty = single-process)")
		self        = fs.String("self", "", "this replica's own entry in -peers (required with -peers)")
		vnodes      = fs.Int("vnodes", 0, "consistent-hash virtual nodes per replica (0 = default; must match across the fleet and its clients)")
		traceSample = fs.Float64("trace-sample", 0, "fraction of requests to trace (0..1; requests carrying a traceparent or asking via \"trace\" are always recorded)")
		traceRing   = fs.Int("trace-ring", 0, "traces retained for GET /v1/trace/{id} (0 = default)")
		traceSpans  = fs.Int("trace-spans", 0, "spans retained per trace (0 = default)")
		enablePprof = fs.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints")
		logLevel    = fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return err
	}
	if *internCap > 0 {
		ir.SetInternCapacity(*internCap)
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	// JSON records on stderr: machine-parseable, one request's records
	// joined by the requestId/traceId fields the service layer attaches.
	logger := slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level}))

	svc := "rsd"
	if *self != "" {
		svc = *self
	}
	tracer := obs.NewTracer(obs.Config{
		Service:    svc,
		SampleRate: *traceSample,
		RingTraces: *traceRing,
		RingSpans:  *traceSpans,
	})

	cfg := service.Config{
		CorpusRoot:     *corpusRoot,
		MaxInFlight:    *inflight,
		MaxQueue:       *queue,
		Workers:        *workers,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
		CacheSize:      *cacheSize,
		Logger:         logger,
		Tracer:         tracer,
		EnablePprof:    *enablePprof,
		Self:           *self,
		VNodes:         *vnodes,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		cfg.Store = st
		logger.Info("result store opened", "dir", st.Dir())
	}
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	if len(cfg.Peers) > 0 {
		logger.Info("cluster mode", "self", *self, "peers", cfg.Peers)
	}
	if *enablePprof {
		logger.Info("pprof enabled at /debug/pprof/")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "rsd: listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: flip health first and keep the listener open for the notice
	// window, so load balancers observe the 503 and deregister this
	// instance before connections start being refused; then let in-flight
	// requests finish within the budget.
	logger.Info("draining", "notice", *drainNotice, "budget", *drain)
	srv.SetDraining(true)
	if *drainNotice > 0 {
		select {
		case <-time.After(*drainNotice):
		case err := <-errc:
			return err
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained, bye")
	return nil
}
