package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"regsat/client"
)

// syncBuf lets the test read the daemon's stdout while run() writes it.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// bootDaemon runs the daemon on an ephemeral port and returns a client for
// it plus a shutdown function that triggers the graceful drain.
func bootDaemon(t *testing.T, args ...string) (*client.Client, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout := &syncBuf{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-drain-notice", "10ms"}, args...), stdout, io.Discard)
	}()

	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for addr == "" {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			cancel()
			t.Fatalf("daemon exited before listening: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("daemon never reported its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return client.New("http://"+addr, nil), func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			return context.DeadlineExceeded
		}
	}
}

func TestDaemonBootServeDrain(t *testing.T) {
	dir := t.TempDir()
	c, shutdown := bootDaemon(t, "-store", dir, "-corpus-root", "../../testdata")

	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.Store {
		t.Fatalf("health: %+v", h)
	}

	resp, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		Graphs:  []client.GraphInput{{Name: "t", DDG: "ddg \"t\"\nnode a op=x lat=1 writes=float\nnode b op=y lat=1\nedge a b flow float\n"}},
		Corpus:  []string{"superscalar-fig2.ddg"},
		Options: client.AnalyzeOptions{Method: "bb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 2 {
		t.Fatalf("got %d items, want 2", len(resp.Items))
	}
	for _, it := range resp.Items {
		if it.Error != "" {
			t.Fatalf("%s failed: %s", it.Name, it.Error)
		}
	}

	metrics, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "regsat_store_puts_total") {
		t.Fatalf("metrics missing store counters:\n%s", metrics)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
}

// TestDaemonClusterBoot: -peers/-self boot the daemon as a fleet replica —
// /v1/ring reports the topology, and a batch completes even though the
// other configured peer does not exist (forward failure falls back to
// local computation).
func TestDaemonClusterBoot(t *testing.T) {
	// Reserve a port so -self can be known before boot (tiny reuse race,
	// fine for a test).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	self := "http://" + addr
	deadPeer := "http://127.0.0.1:1"

	c, shutdown := bootDaemon(t,
		"-addr", addr,
		"-peers", self+","+deadPeer,
		"-self", self,
		"-vnodes", "16",
	)
	info, err := c.Ring(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Enabled || len(info.Members) != 2 || info.VNodes != 16 || info.Self != self {
		t.Fatalf("ring info wrong: %+v", info)
	}

	resp, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		Graphs: []client.GraphInput{{Name: "t", DDG: "ddg \"t\"\nnode a op=x lat=1 writes=float\nnode b op=y lat=1\nedge a b flow float\n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 1 || resp.Items[0].Error != "" {
		t.Fatalf("cluster daemon with a dead peer failed the batch: %+v", resp.Items)
	}

	metrics, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "regsat_cluster_members 2") {
		t.Fatalf("metrics missing cluster gauges:\n%s", metrics)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
}

// TestDaemonClusterFlagValidation: an inconsistent cluster config must fail
// boot, not limp along as a single process.
func TestDaemonClusterFlagValidation(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-peers", "http://a:1,http://b:2"},
		io.Discard, io.Discard)
	if err == nil {
		t.Fatal("-peers without -self accepted")
	}
	err = run(context.Background(), []string{"-addr", "127.0.0.1:0", "-peers", "http://a:1", "-self", "http://c:3"},
		io.Discard, io.Discard)
	if err == nil {
		t.Fatal("-self outside -peers accepted")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-no-such-flag"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestDaemonHelpExitsClean(t *testing.T) {
	if err := run(context.Background(), []string{"-h"}, io.Discard, io.Discard); err != nil {
		t.Fatalf("-h is not a failure: %v", err)
	}
}
