package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsat/internal/ddg"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestList(t *testing.T) {
	out, _, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lin-daxpy", "fig2", "livermore"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list missing %q:\n%s", want, out)
		}
	}
}

func TestEmitKernelRoundTrips(t *testing.T) {
	out, _, err := runCLI(t, "-kernel", "fig2")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ddg.ParseString(out)
	if err != nil {
		t.Fatalf("emitted kernel does not parse: %v\n%s", err, out)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if len(g.Types()) == 0 {
		t.Fatal("emitted kernel writes no values")
	}
}

func TestCorpusEmission(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	out, _, err := runCLI(t, "-corpus", "-out", dir, "-count", "2", "-seed", "2004")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "corpus files in") {
		t.Fatalf("no summary line:\n%s", out)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ddg"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files written: %v", err)
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ddg.ParseString(string(raw)); err != nil {
			t.Fatalf("%s does not parse: %v", f, err)
		}
	}
}

func TestHelpExitsClean(t *testing.T) {
	if _, errOut, err := runCLI(t, "-h"); err != nil {
		t.Fatalf("-h is not a failure: %v", err)
	} else if !strings.Contains(errOut, "Usage") {
		t.Fatalf("-h printed no usage:\n%s", errOut)
	}
}

func TestBadInputs(t *testing.T) {
	if _, _, err := runCLI(t, "-random", "0"); err == nil {
		t.Fatal("non-positive -random accepted")
	}
	if _, _, err := runCLI(t, "-corpus"); err == nil {
		t.Fatal("-corpus without -out accepted")
	}
	if _, _, err := runCLI(t); err == nil {
		t.Fatal("no mode accepted")
	}
}

func TestListIncludesFamilies(t *testing.T) {
	out, _, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"unroll", "grid", "superblock", "exprtree", "layered", "FAMILY"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list missing %q:\n%s", want, out)
		}
	}
}

func TestEmitFamilyRoundTrips(t *testing.T) {
	out, _, err := runCLI(t, "-family", "grid", "-fparams", "size=3,width=4,types=int+float", "-machine", "vliw", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ddg.ParseString(out)
	if err != nil {
		t.Fatalf("emitted family graph does not parse: %v\n%s", err, out)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Types()); got != 2 {
		t.Fatalf("expected 2 register types, got %d", got)
	}
	// Deterministic: the same invocation emits byte-identical output.
	again, _, err := runCLI(t, "-family", "grid", "-fparams", "size=3,width=4,types=int+float", "-machine", "vliw", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Fatal("same -family invocation produced different output")
	}
}

func TestFamilyValidationErrorsAreActionable(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-family", "nope"}, "available:"},
		{[]string{"-family", "grid", "-fparams", "size=0"}, "out of range"},
		{[]string{"-family", "grid", "-fparams", "rows=3"}, "unknown parameter"},
		{[]string{"-family", "grid", "-fparams", "density=banana"}, "not a number"},
		{[]string{"-family", "exprtree", "-fparams", "size=10,width=8"}, "limit"},
		{[]string{"-fparams", "size=3"}, "-fparams needs -family"},
	}
	for _, c := range cases {
		_, _, err := runCLI(t, c.args...)
		if err == nil {
			t.Fatalf("%v accepted", c.args)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%v error %q does not mention %q", c.args, err, c.want)
		}
	}
}

// TestFamilySweepRefusesOverwrite covers the fixed silent-clobber bug: two
// sweeps with overlapping seed ranges into the same directory must error on
// the duplicate output path, and -force must override.
func TestFamilySweepRefusesOverwrite(t *testing.T) {
	dir := t.TempDir()
	out, _, err := runCLI(t, "-family", "unroll", "-count", "3", "-seed", "5", "-out", dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "wrote "); got != 3 {
		t.Fatalf("expected 3 files written, got %d:\n%s", got, out)
	}
	// Overlapping sweep: seeds 7..9 collide with seed 7 of the first sweep.
	// The refusal is atomic — seeds 8 and 9 must not be written either.
	_, _, err = runCLI(t, "-family", "unroll", "-count", "3", "-seed", "7", "-out", dir)
	if err == nil || !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Fatalf("overlapping sweep did not refuse: %v", err)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.ddg")); len(files) != 3 {
		t.Fatalf("refused sweep still wrote files: %v", files)
	}
	if _, _, err := runCLI(t, "-family", "unroll", "-count", "3", "-seed", "7", "-out", dir, "-force"); err != nil {
		t.Fatalf("-force did not override: %v", err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ddg"))
	if len(files) != 5 { // seeds 5,6,7,8,9
		t.Fatalf("expected 5 distinct files, got %d: %v", len(files), files)
	}
}

// TestCorpusRefusesOverwrite: the committed-corpus emitter gets the same
// protection.
func TestCorpusRefusesOverwrite(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	if _, _, err := runCLI(t, "-corpus", "-out", dir, "-count", "0"); err != nil {
		t.Fatal(err)
	}
	_, _, err := runCLI(t, "-corpus", "-out", dir, "-count", "0")
	if err == nil || !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Fatalf("second corpus emission did not refuse: %v", err)
	}
	if _, _, err := runCLI(t, "-corpus", "-out", dir, "-count", "0", "-force"); err != nil {
		t.Fatalf("-force did not override: %v", err)
	}
}
