package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsat/internal/ddg"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestList(t *testing.T) {
	out, _, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lin-daxpy", "fig2", "livermore"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list missing %q:\n%s", want, out)
		}
	}
}

func TestEmitKernelRoundTrips(t *testing.T) {
	out, _, err := runCLI(t, "-kernel", "fig2")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ddg.ParseString(out)
	if err != nil {
		t.Fatalf("emitted kernel does not parse: %v\n%s", err, out)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if len(g.Types()) == 0 {
		t.Fatal("emitted kernel writes no values")
	}
}

func TestCorpusEmission(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	out, _, err := runCLI(t, "-corpus", "-out", dir, "-count", "2", "-seed", "2004")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "corpus files in") {
		t.Fatalf("no summary line:\n%s", out)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ddg"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files written: %v", err)
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ddg.ParseString(string(raw)); err != nil {
			t.Fatalf("%s does not parse: %v", f, err)
		}
	}
}

func TestHelpExitsClean(t *testing.T) {
	if _, errOut, err := runCLI(t, "-h"); err != nil {
		t.Fatalf("-h is not a failure: %v", err)
	} else if !strings.Contains(errOut, "Usage") {
		t.Fatalf("-h printed no usage:\n%s", errOut)
	}
}

func TestBadInputs(t *testing.T) {
	if _, _, err := runCLI(t, "-random", "0"); err == nil {
		t.Fatal("non-positive -random accepted")
	}
	if _, _, err := runCLI(t, "-corpus"); err == nil {
		t.Fatal("-corpus without -out accepted")
	}
	if _, _, err := runCLI(t); err == nil {
		t.Fatal("no mode accepted")
	}
}
