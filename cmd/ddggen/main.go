// Command ddggen lists and emits the benchmark DDG suite (the loop bodies
// the experiments run on: Livermore, Linpack, Whetstone, SpecFP-like, the
// paper's Figure 2 example, and synthetic stress shapes), and generates the
// committed testdata corpus the batch engine and tests consume.
//
// Usage:
//
//	ddggen -list
//	ddggen -kernel liv-l7 [-machine vliw] [-dot]
//	ddggen -random 12 -seed 7
//	ddggen -corpus -out testdata [-count 8] [-seed 2004]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"regsat/internal/batch"
	"regsat/internal/ddg"
	"regsat/internal/kernels"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ddggen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ddggen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list available kernels")
		kernel  = fs.String("kernel", "", "kernel to emit")
		machine = fs.String("machine", "superscalar", "machine kind: superscalar|vliw|epic")
		dot     = fs.Bool("dot", false, "emit Graphviz instead of the textual format")
		random  = fs.Int("random", 0, "emit a random layered DAG with this many nodes")
		seed    = fs.Int64("seed", 1, "random seed for -random and -corpus")
		corpus  = fs.Bool("corpus", false, "emit the full .ddg corpus into -out")
		out     = fs.String("out", "", "output directory for -corpus")
		count   = fs.Int("count", 8, "number of random graphs in the corpus")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return err
	}

	randomSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "random" {
			randomSet = true
		}
	})
	if randomSet && *random <= 0 {
		return fmt.Errorf("-random node count must be positive (got %d)", *random)
	}

	if *list {
		fmt.Fprintf(stdout, "%-14s %-10s %s\n", "NAME", "SUITE", "DESCRIPTION")
		for _, s := range kernels.All() {
			fmt.Fprintf(stdout, "%-14s %-10s %s\n", s.Name, s.Suite, s.Description)
		}
		return nil
	}
	if *corpus {
		if *out == "" {
			return fmt.Errorf("-corpus needs -out <dir>")
		}
		if *count < 0 {
			return fmt.Errorf("-count must be non-negative (got %d)", *count)
		}
		return emitCorpus(stdout, *out, *count, *seed)
	}

	mk, err := parseMachine(*machine)
	if err != nil {
		return err
	}
	var g *ddg.Graph
	switch {
	case randomSet:
		g, err = randomGraph(*random, *seed, mk)
		if err != nil {
			return err
		}
	case *kernel != "":
		spec, ok := kernels.ByName(*kernel)
		if !ok {
			return fmt.Errorf("unknown kernel %q", *kernel)
		}
		g = spec.Build(mk)
	default:
		return fmt.Errorf("need -list, -kernel, -random, or -corpus")
	}
	if *dot {
		fmt.Fprint(stdout, g.DOT())
	} else {
		fmt.Fprint(stdout, g.Format())
	}
	return nil
}

// randomGraph draws a two-type random DAG, rejecting degenerate outputs
// (graphs that define no register value are useless to every analysis).
func randomGraph(nodes int, seed int64, mk ddg.MachineKind) (*ddg.Graph, error) {
	p := ddg.DefaultRandomParams(nodes)
	p.Machine = mk
	p.Types = []ddg.RegType{ddg.Int, ddg.Float}
	g := ddg.RandomGraph(rand.New(rand.NewSource(seed)), p)
	if len(g.Types()) == 0 {
		return nil, fmt.Errorf("seed %d yields a degenerate graph (no register values); pick another seed", seed)
	}
	return g, nil
}

// corpusKernels is the curated kernel × machine matrix of the committed
// corpus: every machine kind, both register types, small enough that the
// exact analyses of the corpus test stay fast.
var corpusKernels = []struct {
	kernel  string
	machine ddg.MachineKind
}{
	{"fig2", ddg.Superscalar},
	{"lin-daxpy", ddg.Superscalar},
	{"lin-ddot", ddg.Superscalar},
	{"liv-l1", ddg.Superscalar},
	{"liv-l7", ddg.Superscalar},
	{"spec-swim", ddg.Superscalar},
	{"syn-mixed", ddg.Superscalar},
	{"whet-p3", ddg.Superscalar},
	{"lin-daxpy", ddg.VLIW},
	{"liv-l3", ddg.VLIW},
	{"spec-tomcatv", ddg.VLIW},
	{"syn-fork4", ddg.VLIW},
	{"fig2", ddg.EPIC},
	{"lin-dscal", ddg.EPIC},
	{"liv-l5", ddg.EPIC},
	{"syn-diamond", ddg.EPIC},
	{"whet-p4", ddg.EPIC},
}

// emitCorpus writes the kernel matrix plus `count` random graphs as .ddg
// files. Every emitted graph is fingerprinted; two random seeds that
// collapse to the same structure are a seed collision and abort the run
// rather than silently committing duplicate (or degenerate) corpus files.
func emitCorpus(stdout io.Writer, dir string, count int, seedBase int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	seen := map[string]string{} // fingerprint → file that owns it
	emit := func(name string, g *ddg.Graph) error {
		fp := batch.Fingerprint(g)
		if owner, dup := seen[fp]; dup {
			return fmt.Errorf("corpus collision: %s is structurally identical to %s", name, owner)
		}
		seen[fp] = name
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(g.Format()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d nodes, %d edges, machine %s)\n", path, g.NumNodes(), g.NumEdges(), g.Machine)
		return nil
	}
	for _, ck := range corpusKernels {
		spec, ok := kernels.ByName(ck.kernel)
		if !ok {
			return fmt.Errorf("unknown corpus kernel %q", ck.kernel)
		}
		g := spec.Build(ck.machine)
		if err := emit(fmt.Sprintf("%s-%s.ddg", ck.machine, ck.kernel), g); err != nil {
			return err
		}
	}
	machines := []ddg.MachineKind{ddg.Superscalar, ddg.VLIW, ddg.EPIC}
	for i := 0; i < count; i++ {
		seed := seedBase + int64(i)
		nodes := 8 + i%6
		mk := machines[i%len(machines)]
		g, err := randomGraph(nodes, seed, mk)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("random-%s-%02dn-s%d.ddg", mk, nodes, seed)
		if err := emit(name, g); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "%d corpus files in %s\n", len(seen), dir)
	return nil
}

func parseMachine(s string) (ddg.MachineKind, error) {
	switch s {
	case "superscalar":
		return ddg.Superscalar, nil
	case "vliw":
		return ddg.VLIW, nil
	case "epic":
		return ddg.EPIC, nil
	}
	return 0, fmt.Errorf("unknown machine %q", s)
}
