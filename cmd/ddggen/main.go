// Command ddggen lists and emits the benchmark DDG suite (the loop bodies
// the experiments run on: Livermore, Linpack, Whetstone, SpecFP-like, the
// paper's Figure 2 example, and synthetic stress shapes), and generates the
// committed testdata corpus the batch engine and tests consume.
//
// Usage:
//
//	ddggen -list
//	ddggen -kernel liv-l7 [-machine vliw] [-dot]
//	ddggen -random 12 -seed 7
//	ddggen -corpus -out testdata [-count 8] [-seed 2004]
//	ddggen -family grid -fparams size=4,width=6,density=0.3,types=int+float
//	ddggen -family unroll -count 5 -seed 10 -out graphs/   # seeds 10..14
//
// The -family generators come from internal/gen: structured DDG shapes
// (unrolled loops, 2D grids, superblock traces, expression trees, layered
// DAGs) the metamorphic test suite sweeps. File emission refuses to
// overwrite existing outputs — re-running a sweep with overlapping -seed
// ranges into the same directory is an error, not a silent loss — unless
// -force is given.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"regsat/internal/batch"
	"regsat/internal/ddg"
	"regsat/internal/gen"
	"regsat/internal/kernels"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ddggen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ddggen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list available kernels and generator families")
		kernel  = fs.String("kernel", "", "kernel to emit")
		machine = fs.String("machine", "superscalar", "machine kind: superscalar|vliw|epic")
		dot     = fs.Bool("dot", false, "emit Graphviz instead of the textual format")
		random  = fs.Int("random", 0, "emit a random layered DAG with this many nodes")
		seed    = fs.Int64("seed", 1, "random seed for -random, -corpus, and -family")
		corpus  = fs.Bool("corpus", false, "emit the full .ddg corpus into -out")
		out     = fs.String("out", "", "output directory for -corpus and -family sweeps")
		count   = fs.Int("count", 8, "number of random graphs in the corpus, or graphs per -family sweep")
		family  = fs.String("family", "", "structured generator family to emit (see -list)")
		fparams = fs.String("fparams", "", "family parameters: size=<n>,width=<n>,density=<p>,types=<t+t> (defaults per family)")
		force   = fs.Bool("force", false, "allow overwriting existing output files")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return err
	}

	randomSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "random" {
			randomSet = true
		}
	})
	if randomSet && *random <= 0 {
		return fmt.Errorf("-random node count must be positive (got %d)", *random)
	}

	if *list {
		fmt.Fprintf(stdout, "%-14s %-10s %s\n", "NAME", "SUITE", "DESCRIPTION")
		for _, s := range kernels.All() {
			fmt.Fprintf(stdout, "%-14s %-10s %s\n", s.Name, s.Suite, s.Description)
		}
		fmt.Fprintf(stdout, "\n%-14s %-22s %-22s %s\n", "FAMILY", "SIZE", "WIDTH", "DESCRIPTION")
		for _, f := range gen.Families() {
			fmt.Fprintf(stdout, "%-14s %-22s %-22s %s\n", f.Name,
				fmt.Sprintf("%s [%d,%d]", f.SizeName, f.SizeRange[0], f.SizeRange[1]),
				fmt.Sprintf("%s [%d,%d]", f.WidthName, f.WidthRange[0], f.WidthRange[1]),
				f.Description)
		}
		return nil
	}
	if *corpus {
		if *out == "" {
			return fmt.Errorf("-corpus needs -out <dir>")
		}
		if *count < 0 {
			return fmt.Errorf("-count must be non-negative (got %d)", *count)
		}
		return emitCorpus(stdout, *out, *count, *seed, *force)
	}

	mk, err := parseMachine(*machine)
	if err != nil {
		return err
	}
	if *family != "" {
		return emitFamily(stdout, *family, *fparams, mk, *seed, *count, *out, *dot, *force)
	}
	if *fparams != "" {
		return fmt.Errorf("-fparams needs -family <name> (see -list for families)")
	}
	var g *ddg.Graph
	switch {
	case randomSet:
		g, err = randomGraph(*random, *seed, mk)
		if err != nil {
			return err
		}
	case *kernel != "":
		spec, ok := kernels.ByName(*kernel)
		if !ok {
			return fmt.Errorf("unknown kernel %q", *kernel)
		}
		g = spec.Build(mk)
	default:
		return fmt.Errorf("need -list, -kernel, -random, -family, or -corpus")
	}
	if *dot {
		fmt.Fprint(stdout, g.DOT())
	} else {
		fmt.Fprint(stdout, g.Format())
	}
	return nil
}

// emitFamily generates structured graphs from a registered family. Without
// -out a single graph goes to stdout; with -out a sweep of `count` seeds
// (seed, seed+1, …) is written as .ddg files, refusing to overwrite files
// from earlier sweeps unless -force is given.
func emitFamily(stdout io.Writer, name, spec string, mk ddg.MachineKind, seed int64, count int, out string, dot, force bool) error {
	f, ok := gen.ByName(name)
	if !ok {
		return fmt.Errorf("unknown family %q (available: %s)", name, strings.Join(gen.Names(), ", "))
	}
	p, err := gen.ParseParams(spec, f.Defaults)
	if err != nil {
		return err
	}
	p.Machine = mk
	p.Seed = seed
	if err := f.Validate(p); err != nil {
		return err
	}
	if out == "" {
		g, err := f.Generate(p)
		if err != nil {
			return err
		}
		if dot {
			fmt.Fprint(stdout, g.DOT())
		} else {
			fmt.Fprint(stdout, g.Format())
		}
		return nil
	}
	if count < 1 {
		return fmt.Errorf("-count must be at least 1 for a -family sweep (got %d)", count)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	// Generate the whole sweep up front so the overwrite refusal is atomic:
	// a collision on any seed aborts before a single file is written,
	// instead of leaving a half-emitted sweep behind.
	type emission struct {
		path string
		g    *ddg.Graph
	}
	emissions := make([]emission, 0, count)
	for i := 0; i < count; i++ {
		p.Seed = seed + int64(i)
		g, err := f.Generate(p)
		if err != nil {
			return err
		}
		path := filepath.Join(out, g.Name+".ddg")
		if !force {
			if _, err := os.Stat(path); err == nil {
				return fmt.Errorf("refusing to overwrite existing %s (same output path as an earlier sweep; nothing written); use -force to overwrite or pick a different -out/-seed", path)
			} else if !os.IsNotExist(err) {
				return err
			}
		}
		emissions = append(emissions, emission{path, g})
	}
	for _, e := range emissions {
		if err := writeNoClobber(e.path, []byte(e.g.Format()), force); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d nodes, %d edges, machine %s)\n", e.path, e.g.NumNodes(), e.g.NumEdges(), e.g.Machine)
	}
	return nil
}

// writeNoClobber writes a generated file, erroring instead of silently
// overwriting an existing one (two sweeps with overlapping seed ranges used
// to clobber each other's outputs in the same directory).
func writeNoClobber(path string, data []byte, force bool) error {
	if !force {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("refusing to overwrite existing %s (same output path as an earlier sweep); use -force to overwrite or pick a different -out/-seed", path)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// randomGraph draws a two-type random DAG, rejecting degenerate outputs
// (graphs that define no register value are useless to every analysis).
func randomGraph(nodes int, seed int64, mk ddg.MachineKind) (*ddg.Graph, error) {
	p := ddg.DefaultRandomParams(nodes)
	p.Machine = mk
	p.Types = []ddg.RegType{ddg.Int, ddg.Float}
	g := ddg.RandomGraph(rand.New(rand.NewSource(seed)), p)
	if len(g.Types()) == 0 {
		return nil, fmt.Errorf("seed %d yields a degenerate graph (no register values); pick another seed", seed)
	}
	return g, nil
}

// corpusKernels is the curated kernel × machine matrix of the committed
// corpus: every machine kind, both register types, small enough that the
// exact analyses of the corpus test stay fast.
var corpusKernels = []struct {
	kernel  string
	machine ddg.MachineKind
}{
	{"fig2", ddg.Superscalar},
	{"lin-daxpy", ddg.Superscalar},
	{"lin-ddot", ddg.Superscalar},
	{"liv-l1", ddg.Superscalar},
	{"liv-l7", ddg.Superscalar},
	{"spec-swim", ddg.Superscalar},
	{"syn-mixed", ddg.Superscalar},
	{"whet-p3", ddg.Superscalar},
	{"lin-daxpy", ddg.VLIW},
	{"liv-l3", ddg.VLIW},
	{"spec-tomcatv", ddg.VLIW},
	{"syn-fork4", ddg.VLIW},
	{"fig2", ddg.EPIC},
	{"lin-dscal", ddg.EPIC},
	{"liv-l5", ddg.EPIC},
	{"syn-diamond", ddg.EPIC},
	{"whet-p4", ddg.EPIC},
}

// emitCorpus writes the kernel matrix plus `count` random graphs as .ddg
// files. Every emitted graph is fingerprinted; two random seeds that
// collapse to the same structure are a seed collision and abort the run
// rather than silently committing duplicate (or degenerate) corpus files.
func emitCorpus(stdout io.Writer, dir string, count int, seedBase int64, force bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	seen := map[string]string{} // fingerprint → file that owns it
	emit := func(name string, g *ddg.Graph) error {
		fp := batch.Fingerprint(g)
		if owner, dup := seen[fp]; dup {
			return fmt.Errorf("corpus collision: %s is structurally identical to %s", name, owner)
		}
		seen[fp] = name
		path := filepath.Join(dir, name)
		if err := writeNoClobber(path, []byte(g.Format()), force); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d nodes, %d edges, machine %s)\n", path, g.NumNodes(), g.NumEdges(), g.Machine)
		return nil
	}
	for _, ck := range corpusKernels {
		spec, ok := kernels.ByName(ck.kernel)
		if !ok {
			return fmt.Errorf("unknown corpus kernel %q", ck.kernel)
		}
		g := spec.Build(ck.machine)
		if err := emit(fmt.Sprintf("%s-%s.ddg", ck.machine, ck.kernel), g); err != nil {
			return err
		}
	}
	machines := []ddg.MachineKind{ddg.Superscalar, ddg.VLIW, ddg.EPIC}
	for i := 0; i < count; i++ {
		seed := seedBase + int64(i)
		nodes := 8 + i%6
		mk := machines[i%len(machines)]
		g, err := randomGraph(nodes, seed, mk)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("random-%s-%02dn-s%d.ddg", mk, nodes, seed)
		if err := emit(name, g); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "%d corpus files in %s\n", len(seen), dir)
	return nil
}

func parseMachine(s string) (ddg.MachineKind, error) {
	switch s {
	case "superscalar":
		return ddg.Superscalar, nil
	case "vliw":
		return ddg.VLIW, nil
	case "epic":
		return ddg.EPIC, nil
	}
	return 0, fmt.Errorf("unknown machine %q", s)
}
