// Command ddggen lists and emits the benchmark DDG suite (the loop bodies
// the experiments run on: Livermore, Linpack, Whetstone, SpecFP-like, the
// paper's Figure 2 example, and synthetic stress shapes).
//
// Usage:
//
//	ddggen -list
//	ddggen -kernel liv-l7 [-machine vliw] [-dot]
//	ddggen -random 12 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"regsat/internal/ddg"
	"regsat/internal/kernels"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available kernels")
		kernel  = flag.String("kernel", "", "kernel to emit")
		machine = flag.String("machine", "superscalar", "machine kind: superscalar|vliw|epic")
		dot     = flag.Bool("dot", false, "emit Graphviz instead of the textual format")
		random  = flag.Int("random", 0, "emit a random layered DAG with this many nodes")
		seed    = flag.Int64("seed", 1, "random seed for -random")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-14s %-10s %s\n", "NAME", "SUITE", "DESCRIPTION")
		for _, s := range kernels.All() {
			fmt.Printf("%-14s %-10s %s\n", s.Name, s.Suite, s.Description)
		}
		return
	}

	mk, err := parseMachine(*machine)
	if err != nil {
		fatal(err)
	}
	var g *ddg.Graph
	switch {
	case *random > 0:
		p := ddg.DefaultRandomParams(*random)
		p.Machine = mk
		p.Types = []ddg.RegType{ddg.Int, ddg.Float}
		g = ddg.RandomGraph(rand.New(rand.NewSource(*seed)), p)
	case *kernel != "":
		spec, ok := kernels.ByName(*kernel)
		if !ok {
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		g = spec.Build(mk)
	default:
		fatal(fmt.Errorf("need -list, -kernel, or -random"))
	}
	if *dot {
		fmt.Print(g.DOT())
	} else {
		fmt.Print(g.Format())
	}
}

func parseMachine(s string) (ddg.MachineKind, error) {
	switch s {
	case "superscalar":
		return ddg.Superscalar, nil
	case "vliw":
		return ddg.VLIW, nil
	case "epic":
		return ddg.EPIC, nil
	}
	return 0, fmt.Errorf("unknown machine %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddggen:", err)
	os.Exit(1)
}
