package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsat/internal/obs"
)

// testTrace is a two-service waterfall: a coordinator request span with a
// queue child and a forwarded remote span, as the cluster produces.
func testTrace(traceID string) []obs.SpanData {
	base := int64(1_700_000_000_000_000_000)
	return []obs.SpanData{
		{TraceID: traceID, SpanID: "aaaaaaaaaaaaaaaa", Name: "server.analyze",
			Service: "rsd-1", StartUnixNs: base, DurationNs: 10_000_000,
			Attrs: map[string]string{"graphs": "3"},
			Events: []obs.EventData{
				{Name: "memo.hit", OffsetNs: 4_000_000, Attrs: map[string]string{"type": "int32"}},
			}},
		{TraceID: traceID, SpanID: "bbbbbbbbbbbbbbbb", Parent: "aaaaaaaaaaaaaaaa",
			Name: "server.queue", Service: "rsd-1",
			StartUnixNs: base + 100_000, DurationNs: 50_000},
		{TraceID: traceID, SpanID: "cccccccccccccccc", Parent: "aaaaaaaaaaaaaaaa",
			Name: "cluster.forward", Service: "rsd-1",
			StartUnixNs: base + 1_000_000, DurationNs: 8_000_000},
		{TraceID: traceID, SpanID: "dddddddddddddddd", Parent: "cccccccccccccccc",
			Name: "server.analyze", Service: "rsd-2",
			StartUnixNs: base + 2_000_000, DurationNs: 6_000_000},
	}
}

func writeNDJSON(t *testing.T, path string, spans []obs.SpanData) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := run(context.Background(), args, &out, &errOut)
	return out.String(), err
}

func TestShowWaterfall(t *testing.T) {
	p := filepath.Join(t.TempDir(), "trace.ndjson")
	writeNDJSON(t, p, testTrace(strings.Repeat("ab", 16)))
	out, err := runCLI(t, "show", p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"trace " + strings.Repeat("ab", 16),
		"4 spans",
		"server.analyze", "server.queue", "cluster.forward",
		"rsd-1", "rsd-2",
		"memo.hit", "type=int32",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q in:\n%s", want, out)
		}
	}
	// The forwarded remote span must be indented under cluster.forward.
	fwd := strings.Index(out, "cluster.forward")
	remote := strings.LastIndex(out, "server.analyze")
	if remote < fwd {
		t.Errorf("remote span not rendered after its forward parent:\n%s", out)
	}
}

func TestShowTimelineAndStdin(t *testing.T) {
	spans := testTrace(strings.Repeat("cd", 16))
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range spans {
		enc.Encode(&spans[i])
	}
	// Route stdin through a file to exercise the "-" path.
	p := filepath.Join(t.TempDir(), "in.ndjson")
	if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	f, err := os.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdin = f
	defer func() { os.Stdin = old; f.Close() }()

	out, err := runCLI(t, "show", "-format", "timeline")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "server.queue") || !strings.Contains(out, "+") {
		t.Errorf("timeline output unexpected:\n%s", out)
	}
}

func TestAggTable(t *testing.T) {
	dir := t.TempDir()
	// Two traces across two files — the corpus case.
	writeNDJSON(t, filepath.Join(dir, "a.ndjson"), testTrace(strings.Repeat("ab", 16)))
	writeNDJSON(t, filepath.Join(dir, "b.ndjson"), testTrace(strings.Repeat("cd", 16)))
	out, err := runCLI(t, "agg", filepath.Join(dir, "a.ndjson"), filepath.Join(dir, "b.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"8 spans, 2 traces", "P50", "P99", "server.analyze", "cluster.forward"} {
		if !strings.Contains(out, want) {
			t.Errorf("agg missing %q in:\n%s", want, out)
		}
	}

	out, err = runCLI(t, "agg", "-by", "service", "-sort", "count",
		filepath.Join(dir, "a.ndjson"), filepath.Join(dir, "b.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rsd-1") || !strings.Contains(out, "rsd-2") {
		t.Errorf("agg -by service missing services:\n%s", out)
	}
}

func TestBadInputErrors(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bad.ndjson")
	if err := os.WriteFile(p, []byte("{\"traceId\":\"x\",\"spanId\":\"y\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "show", p); err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Errorf("want line-numbered parse error, got %v", err)
	}

	if _, err := runCLI(t, "bogus"); err == nil {
		t.Error("unknown command should fail")
	}
	if _, err := runCLI(t); err == nil {
		t.Error("missing command should fail")
	}
	if _, err := runCLI(t, "show", "-format", "flame", p); err == nil {
		t.Error("unknown format should fail")
	}
	if _, err := runCLI(t, "agg", "-by", "phase", p); err == nil {
		t.Error("unknown agg key should fail")
	}
	if _, err := runCLI(t, "fetch"); err == nil {
		t.Error("fetch without -server/-id should fail")
	}
}

func TestFetch(t *testing.T) {
	spans := testTrace(strings.Repeat("ef", 16))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/trace/"+strings.Repeat("ef", 16) {
			http.NotFound(w, r)
			return
		}
		enc := json.NewEncoder(w)
		for i := range spans {
			enc.Encode(&spans[i])
		}
	}))
	defer srv.Close()

	out, err := runCLI(t, "fetch", "-server", srv.URL, "-id", strings.Repeat("ef", 16))
	if err != nil {
		t.Fatal(err)
	}
	// Output must round-trip: rstrace show should accept it.
	got, err := readSpans(strings.NewReader(out), "fetched")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("round-trip lost spans: got %d want %d", len(got), len(spans))
	}
}
