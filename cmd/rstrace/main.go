// Command rstrace is the trace toolchain for rsd's span exports: it renders
// a single trace as a waterfall or timeline report and aggregates trace
// corpora into per-span latency tables (p50/p90/p99 from an HDR-style
// histogram).
//
// Input is the NDJSON span format served by rsd's GET /v1/trace/{id} — one
// span object per line — read from files or stdin. The fetch subcommand
// pulls a trace straight off a daemon.
//
// Usage:
//
//	rstrace show trace.ndjson                 # waterfall of each trace
//	rstrace show -format timeline trace.ndjson
//	curl -s $RSD/v1/trace/$ID | rstrace show  # pipe from an export
//	rstrace agg traces/*.ndjson               # p50/p90/p99 per span name
//	rstrace agg -by service traces/*.ndjson
//	rstrace fetch -server http://127.0.0.1:8735 -id $TRACEID > trace.ndjson
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"regsat/client"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rstrace:", err)
		os.Exit(1)
	}
}

const usageText = `usage: rstrace <command> [flags] [files...]

Commands:
  show   render traces as waterfall or timeline reports (files or stdin)
  agg    aggregate a trace corpus into per-span latency tables
  fetch  download one trace from an rsd daemon as NDJSON

Run "rstrace <command> -h" for command flags.
`

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		fmt.Fprint(stderr, usageText)
		return errors.New("missing command")
	}
	switch args[0] {
	case "show":
		return runShow(args[1:], stdout, stderr)
	case "agg":
		return runAgg(args[1:], stdout, stderr)
	case "fetch":
		return runFetch(ctx, args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usageText)
		return nil
	}
	fmt.Fprint(stderr, usageText)
	return fmt.Errorf("unknown command %q", args[0])
}

func runShow(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rstrace show", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format = fs.String("format", "waterfall", "report format: waterfall or timeline")
		events = fs.Bool("events", true, "include span events in the report")
		width  = fs.Int("width", 48, "waterfall bar width in columns")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	switch *format {
	case "waterfall", "timeline":
	default:
		return fmt.Errorf("unknown -format %q (want waterfall or timeline)", *format)
	}
	if *width < 8 {
		*width = 8
	}
	spans, err := readSpanFiles(fs.Args())
	if err != nil {
		return err
	}
	traces := groupTraces(spans)
	if len(traces) == 0 {
		return errors.New("no spans in input")
	}
	for i, tr := range traces {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if *format == "timeline" {
			renderTimeline(stdout, tr, *events)
		} else {
			renderWaterfall(stdout, tr, *width, *events)
		}
	}
	return nil
}

func runAgg(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rstrace agg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		by   = fs.String("by", "name", "aggregation key: name, service, or service/name")
		sort = fs.String("sort", "p99", "table order: p99, count, or key")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	switch *by {
	case "name", "service", "service/name":
	default:
		return fmt.Errorf("unknown -by %q (want name, service, or service/name)", *by)
	}
	switch *sort {
	case "p99", "count", "key":
	default:
		return fmt.Errorf("unknown -sort %q (want p99, count, or key)", *sort)
	}
	spans, err := readSpanFiles(fs.Args())
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return errors.New("no spans in input")
	}
	renderAgg(stdout, spans, *by, *sort)
	return nil
}

func runFetch(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rstrace fetch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server = fs.String("server", "", "rsd base URL (required)")
		id     = fs.String("id", "", "trace ID to download (required)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *server == "" || *id == "" {
		return errors.New("fetch requires -server and -id")
	}
	spans, err := client.New(*server, nil).Trace(ctx, *id)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace %s has no spans (expired from the ring, or never recorded?)", *id)
	}
	enc := json.NewEncoder(stdout)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return nil
}
