package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"regsat/internal/hdrhist"
	"regsat/internal/obs"
)

// readSpanFiles parses the NDJSON span exports named by paths ("-" or an
// empty list means stdin) into one flat span slice, preserving input order.
func readSpanFiles(paths []string) ([]obs.SpanData, error) {
	if len(paths) == 0 {
		paths = []string{"-"}
	}
	var spans []obs.SpanData
	for _, p := range paths {
		got, err := readOneFile(p)
		if err != nil {
			return nil, err
		}
		spans = append(spans, got...)
	}
	return spans, nil
}

func readOneFile(p string) ([]obs.SpanData, error) {
	if p == "-" {
		return readSpans(os.Stdin, "<stdin>")
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readSpans(f, p)
}

func readSpans(r io.Reader, name string) ([]obs.SpanData, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var spans []obs.SpanData
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sp obs.SpanData
		if err := json.Unmarshal(line, &sp); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineNo, err)
		}
		if sp.TraceID == "" || sp.SpanID == "" {
			return nil, fmt.Errorf("%s:%d: span missing traceId/spanId", name, lineNo)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return spans, nil
}

// trace is one trace's spans, grouped for rendering.
type trace struct {
	id    string
	spans []obs.SpanData
}

// groupTraces buckets spans by trace ID, keeping traces in first-appearance
// order and each trace's spans in start-time order.
func groupTraces(spans []obs.SpanData) []trace {
	idx := map[string]int{}
	var traces []trace
	for _, sp := range spans {
		i, ok := idx[sp.TraceID]
		if !ok {
			i = len(traces)
			idx[sp.TraceID] = i
			traces = append(traces, trace{id: sp.TraceID})
		}
		traces[i].spans = append(traces[i].spans, sp)
	}
	for i := range traces {
		sort.SliceStable(traces[i].spans, func(a, b int) bool {
			return traces[i].spans[a].StartUnixNs < traces[i].spans[b].StartUnixNs
		})
	}
	return traces
}

// bounds returns the trace's wall-clock extent (min start, max end).
func (t trace) bounds() (start, end int64) {
	start = t.spans[0].StartUnixNs
	for _, sp := range t.spans {
		if sp.StartUnixNs < start {
			start = sp.StartUnixNs
		}
		if e := sp.StartUnixNs + sp.DurationNs; e > end {
			end = e
		}
	}
	return start, end
}

// children maps each span ID to its child spans (already start-ordered).
// Spans whose parent is absent from the trace — the roots, plus any span
// orphaned by ring eviction — are returned under the empty key.
func (t trace) children() map[string][]obs.SpanData {
	present := make(map[string]bool, len(t.spans))
	for _, sp := range t.spans {
		present[sp.SpanID] = true
	}
	kids := map[string][]obs.SpanData{}
	for _, sp := range t.spans {
		key := sp.Parent
		if !present[key] {
			key = ""
		}
		kids[key] = append(kids[key], sp)
	}
	return kids
}

// renderWaterfall prints the trace as an indented tree, one bar per span
// positioned on a shared time axis.
func renderWaterfall(w io.Writer, t trace, width int, events bool) {
	start, end := t.bounds()
	total := end - start
	if total <= 0 {
		total = 1
	}
	fmt.Fprintf(w, "trace %s  (%d spans, %s)\n", t.id, len(t.spans), fmtDur(total))
	kids := t.children()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	var walk func(parent string, depth int)
	walk = func(parent string, depth int) {
		for _, sp := range kids[parent] {
			bar := renderBar(sp.StartUnixNs-start, sp.DurationNs, total, width)
			label := strings.Repeat("  ", depth) + sp.Name
			svc := sp.Service
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\n", label, fmtDur(sp.DurationNs), bar, svc)
			if events {
				for _, ev := range sp.Events {
					fmt.Fprintf(tw, "  %s· %s\t+%s\t\t%s\n",
						strings.Repeat("  ", depth+1), ev.Name, fmtDur(ev.OffsetNs), fmtAttrs(ev.Attrs))
				}
				if sp.DroppedEvents > 0 {
					fmt.Fprintf(tw, "  %s· (%d events dropped)\t\t\t\n",
						strings.Repeat("  ", depth+1), sp.DroppedEvents)
				}
			}
			walk(sp.SpanID, depth+1)
		}
	}
	walk("", 0)
	tw.Flush()
}

// renderBar draws a span's extent on a width-column axis.
func renderBar(offset, dur, total int64, width int) string {
	lead := int(offset * int64(width) / total)
	span := int(dur * int64(width) / total)
	if span < 1 {
		span = 1
	}
	if lead+span > width {
		span = width - lead
		if span < 1 {
			span, lead = 1, width-1
		}
	}
	return strings.Repeat(" ", lead) + strings.Repeat("=", span)
}

// renderTimeline prints the trace flat, ordered by start offset, with span
// events inline — the view for following one request's story line by line.
func renderTimeline(w io.Writer, t trace, events bool) {
	start, end := t.bounds()
	fmt.Fprintf(w, "trace %s  (%d spans, %s)\n", t.id, len(t.spans), fmtDur(end-start))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, sp := range t.spans {
		off := sp.StartUnixNs - start
		fmt.Fprintf(tw, "  +%s\t%s\t%s\t%s\t%s\n",
			fmtDur(off), fmtDur(sp.DurationNs), sp.Service, sp.Name, fmtAttrs(sp.Attrs))
		if events {
			for _, ev := range sp.Events {
				fmt.Fprintf(tw, "  +%s\t·\t\t  %s\t%s\n",
					fmtDur(off+ev.OffsetNs), ev.Name, fmtAttrs(ev.Attrs))
			}
		}
	}
	tw.Flush()
}

// renderAgg aggregates span durations into per-key HDR histograms and prints
// the latency table.
func renderAgg(w io.Writer, spans []obs.SpanData, by, sortBy string) {
	hists := map[string]*hdrhist.Histogram{}
	traceIDs := map[string]bool{}
	for _, sp := range spans {
		var key string
		switch by {
		case "service":
			key = sp.Service
			if key == "" {
				key = "(none)"
			}
		case "service/name":
			svc := sp.Service
			if svc == "" {
				svc = "(none)"
			}
			key = svc + "/" + sp.Name
		default:
			key = sp.Name
		}
		h, ok := hists[key]
		if !ok {
			h = hdrhist.New()
			hists[key] = h
		}
		h.Record(sp.DurationNs)
		traceIDs[sp.TraceID] = true
	}
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ha, hb := hists[keys[a]], hists[keys[b]]
		switch sortBy {
		case "count":
			if ha.Count() != hb.Count() {
				return ha.Count() > hb.Count()
			}
		case "key":
		default: // p99
			if pa, pb := ha.Quantile(0.99), hb.Quantile(0.99); pa != pb {
				return pa > pb
			}
		}
		return keys[a] < keys[b]
	})
	fmt.Fprintf(w, "%d spans, %d traces\n", len(spans), len(traceIDs))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  SPAN\tCOUNT\tP50\tP90\tP99\tMAX\tMEAN\n")
	for _, k := range keys {
		h := hists[k]
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\t%s\t%s\t%s\n",
			k, h.Count(),
			fmtDur(h.Quantile(0.50)), fmtDur(h.Quantile(0.90)), fmtDur(h.Quantile(0.99)),
			fmtDur(h.Max()), fmtDur(int64(h.Mean())))
	}
	tw.Flush()
}

func fmtAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k]
	}
	return strings.Join(parts, " ")
}

// fmtDur renders a nanosecond duration at a precision readable in a table.
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(100 * time.Nanosecond).String()
	}
	return d.String()
}
