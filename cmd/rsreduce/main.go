// Command rsreduce reduces the register saturation of DDGs below a register
// budget by inserting serialization arcs (Section 4 of the paper), and emits
// the extended, scheduler-ready DDG. Multiple files and directories are
// processed concurrently by the batch engine, with deterministic output
// order.
//
// Usage:
//
//	rsreduce -kernel spec-swim -r 6 [-machine vliw] [-method heuristic|exact|ilp]
//	rsreduce -f body.ddg -r 8 -emit
//	rsreduce -r 4 -type float -parallel 8 testdata/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"regsat"
	"regsat/internal/ddg"
	"regsat/internal/ir"
	"regsat/internal/kernels"
	"regsat/internal/reduce"
)

func main() {
	var (
		file     = flag.String("f", "", "DDG file in textual format (\"-\" = stdin)")
		kernel   = flag.String("kernel", "", "built-in kernel name (see ddggen -list)")
		machine  = flag.String("machine", "superscalar", "machine kind: superscalar|vliw|epic")
		method   = flag.String("method", "heuristic", "reduction method: heuristic|exact|ilp")
		regs     = flag.Int("r", 8, "available registers R_t")
		typ      = flag.String("type", "float", "register type to reduce")
		emit     = flag.Bool("emit", false, "emit the extended DDG in textual format (single input)")
		dot      = flag.Bool("dot", false, "emit the extended DDG in Graphviz format (single input)")
		parallel = flag.Int("parallel", 0, "worker count for multi-file reduction (0 = GOMAXPROCS)")
		backend  = flag.String("solver", "", "MILP backend for -method ilp: dense|sparse|parallel (default sparse)")
		stats    = flag.Bool("solver-stats", false, "print per-solve MILP statistics")
		irStats  = flag.Bool("ir-stats", false, "print the analysis-snapshot interner statistics after the run")
	)
	flag.Parse()

	t := regsat.RegType(*typ)
	opts := regsat.ReduceOptions{}
	switch *method {
	case "heuristic":
		opts.Method = regsat.ReduceHeuristic
	case "exact":
		opts.Method = regsat.ReduceExact
	case "ilp":
		opts.Method = regsat.ReduceExactILP
		opts.ILP = reduce.ILPOptions{ApplyReductions: true, GuaranteeDAG: true}
		opts.ILP.Solver.Backend = *backend
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	src, err := buildSource(*file, *kernel, *machine, flag.Args())
	if err != nil {
		fatal(err)
	}
	batchOpts := regsat.BatchOptions{
		Parallel: *parallel,
		RS:       regsat.RSOptions{Method: regsat.GreedyK, SkipWitness: true},
		Types:    []regsat.RegType{t},
		Reduce: &regsat.BatchReduce{
			Budget: *regs,
			Run: func(ctx context.Context, g *regsat.Graph, rt regsat.RegType, budget int) (*regsat.ReduceResult, error) {
				return regsat.ReduceRSContext(ctx, g, rt, budget, opts)
			},
			Key: fmt.Sprintf("%s|mn%d|ilp%+v", *method, opts.MaxNodes, opts.ILP),
		},
	}
	ch, err := regsat.AnalyzeAll(context.Background(), []regsat.GraphSource{src}, batchOpts)
	if err != nil {
		fatal(err)
	}
	failed, spilled := false, false
	for res := range ch {
		if res.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "rsreduce: %s: %v\n", res.Name, res.Err)
			continue
		}
		g := res.Graph
		before := res.RS[t]
		if before == nil {
			fmt.Printf("DDG %s (%s): writes no %s values\n", g.Name, g.Machine, t)
			continue
		}
		fmt.Printf("DDG %s (%s), type %s: RS*=%d, budget R=%d\n", g.Name, g.Machine, t, before.RS, *regs)
		red := res.Reductions[t]
		if red == nil {
			fmt.Printf("  already within budget, no reduction needed\n")
			continue
		}
		if red.Spill {
			spilled = true
			fmt.Printf("  NOT reducible to %d registers: spill code unavoidable\n", *regs)
			continue
		}
		fmt.Printf("  reduced RS=%d with %d serialization arcs\n", red.RS, len(red.Arcs))
		if *stats && red.SolverStats != nil {
			st := red.SolverStats
			fmt.Printf("  solver: %d nodes, %d simplex iters, warm-start %.0f%%, %d incumbents, %v\n",
				st.Nodes, st.SimplexIters, 100*st.WarmRate(), st.Incumbents, st.Duration.Round(time.Microsecond))
		}
		fmt.Printf("  critical path: %d → %d (ILP loss %d)\n", red.CPBefore, red.CPAfter, red.CPAfter-red.CPBefore)
		for _, a := range red.Arcs {
			fmt.Printf("    arc %s → %s (latency %d)\n",
				red.Graph.Node(a.From).Name, red.Graph.Node(a.To).Name, a.Latency)
		}
		if *emit {
			fmt.Print(red.Graph.Format())
		}
		if *dot {
			fmt.Print(red.Graph.DOT())
		}
	}
	if *irStats {
		cs := ir.Stats()
		fmt.Printf("ir interner: %d hits, %d misses, %d snapshots resident\n",
			cs.Hits, cs.Misses, cs.Entries)
	}
	switch {
	case failed:
		os.Exit(1)
	case spilled:
		os.Exit(2)
	}
}

func buildSource(file, kernel, machine string, args []string) (regsat.GraphSource, error) {
	mk, err := parseMachine(machine)
	if err != nil {
		return nil, err
	}
	switch {
	case kernel != "":
		spec, ok := kernels.ByName(kernel)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q (try ddggen -list)", kernel)
		}
		return regsat.SourceGraphs(spec.Build(mk)), nil
	case file == "-":
		g, err := regsat.ParseGraph(os.Stdin)
		if err != nil {
			return nil, err
		}
		if err := g.Finalize(); err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return regsat.SourceGraphs(g), nil
		}
		rest, err := regsat.SourcePaths(args...)
		if err != nil {
			return nil, err
		}
		return regsat.SourceConcat(regsat.SourceGraphs(g), rest), nil
	case file != "" || len(args) > 0:
		paths := args
		if file != "" {
			paths = append([]string{file}, args...)
		}
		return regsat.SourcePaths(paths...)
	default:
		return nil, fmt.Errorf("need -f, -kernel, or input paths")
	}
}

func parseMachine(s string) (ddg.MachineKind, error) {
	switch s {
	case "superscalar":
		return ddg.Superscalar, nil
	case "vliw":
		return ddg.VLIW, nil
	case "epic":
		return ddg.EPIC, nil
	}
	return 0, fmt.Errorf("unknown machine %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsreduce:", err)
	os.Exit(1)
}
