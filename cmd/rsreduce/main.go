// Command rsreduce reduces the register saturation of DDGs below a register
// budget by inserting serialization arcs (Section 4 of the paper), and emits
// the extended, scheduler-ready DDG. Multiple files and directories are
// processed concurrently by the batch engine, with deterministic output
// order.
//
// Usage:
//
//	rsreduce -kernel spec-swim -r 6 [-machine vliw] [-method heuristic|exact|ilp]
//	rsreduce -f body.ddg -r 8 -emit
//	rsreduce -r 4 -type float -parallel 8 testdata/
//
// Exit status: 0 on success, 1 on failure, 2 when some input is not
// reducible to the budget (spill code unavoidable).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"regsat"
	"regsat/internal/ddg"
	"regsat/internal/kernels"
	"regsat/internal/reduce"
)

// errSpill distinguishes "worked, but spill is unavoidable" (exit 2) from
// hard failures (exit 1).
var errSpill = errors.New("spill code unavoidable")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case errors.Is(err, errSpill):
		os.Exit(2)
	case err != nil:
		fmt.Fprintln(os.Stderr, "rsreduce:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rsreduce", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		file     = fs.String("f", "", "DDG file in textual format (\"-\" = stdin)")
		kernel   = fs.String("kernel", "", "built-in kernel name (see ddggen -list)")
		machine  = fs.String("machine", "superscalar", "machine kind: superscalar|vliw|epic")
		method   = fs.String("method", "heuristic", "reduction method: heuristic|exact|ilp")
		regs     = fs.Int("r", 8, "available registers R_t")
		typ      = fs.String("type", "float", "register type to reduce")
		emit     = fs.Bool("emit", false, "emit the extended DDG in textual format (single input)")
		dot      = fs.Bool("dot", false, "emit the extended DDG in Graphviz format (single input)")
		parallel = fs.Int("parallel", 0, "worker count for multi-file reduction (0 = GOMAXPROCS)")
		backend  = fs.String("solver", "", "MILP backend for -method ilp: dense|sparse|parallel (default sparse)")
		stats    = fs.Bool("solver-stats", false, "print per-solve MILP statistics")
		irStats  = fs.Bool("ir-stats", false, "print the analysis-snapshot interner statistics after the run")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return err
	}

	t := regsat.RegType(*typ)
	opts := regsat.ReduceOptions{}
	switch *method {
	case "heuristic":
		opts.Method = regsat.ReduceHeuristic
	case "exact":
		opts.Method = regsat.ReduceExact
	case "ilp":
		opts.Method = regsat.ReduceExactILP
		opts.ILP = reduce.ILPOptions{ApplyReductions: true, GuaranteeDAG: true}
		opts.ILP.Solver.Backend = *backend
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	src, err := buildSource(*file, *kernel, *machine, fs.Args())
	if err != nil {
		return err
	}
	batchOpts := regsat.BatchOptions{
		Parallel: *parallel,
		RS:       regsat.RSOptions{Method: regsat.GreedyK, SkipWitness: true},
		Types:    []regsat.RegType{t},
		Reduce: &regsat.BatchReduce{
			Budget: *regs,
			Run: func(ctx context.Context, g *regsat.Graph, rt regsat.RegType, budget int) (*regsat.ReduceResult, error) {
				return regsat.ReduceRSContext(ctx, g, rt, budget, opts)
			},
			Key: fmt.Sprintf("%s|mn%d|ilp%+v", *method, opts.MaxNodes, opts.ILP),
		},
	}
	ch, err := regsat.AnalyzeAll(context.Background(), []regsat.GraphSource{src}, batchOpts)
	if err != nil {
		return err
	}
	failed, spilled := false, false
	for res := range ch {
		if res.Err != nil {
			failed = true
			fmt.Fprintf(stderr, "rsreduce: %s: %v\n", res.Name, res.Err)
			continue
		}
		if res.Loop != nil {
			fmt.Fprintf(stdout, "Loop %s (%s): cyclic kernel — reduction targets acyclic DDGs, skipped (use rscompute -cyclic)\n",
				res.Loop.Name, res.Loop.Machine)
			continue
		}
		g := res.Graph
		before := res.RS[t]
		if before == nil {
			fmt.Fprintf(stdout, "DDG %s (%s): writes no %s values\n", g.Name, g.Machine, t)
			continue
		}
		fmt.Fprintf(stdout, "DDG %s (%s), type %s: RS*=%d, budget R=%d\n", g.Name, g.Machine, t, before.RS, *regs)
		red := res.Reductions[t]
		if red == nil {
			fmt.Fprintf(stdout, "  already within budget, no reduction needed\n")
			continue
		}
		if red.Spill {
			spilled = true
			fmt.Fprintf(stdout, "  NOT reducible to %d registers: spill code unavoidable\n", *regs)
			continue
		}
		fmt.Fprintf(stdout, "  reduced RS=%d with %d serialization arcs\n", red.RS, len(red.Arcs))
		if *stats && red.SolverStats != nil {
			st := red.SolverStats
			fmt.Fprintf(stdout, "  solver: %d nodes, %d simplex iters, warm-start %.0f%%, %d incumbents, %v\n",
				st.Nodes, st.SimplexIters, 100*st.WarmRate(), st.Incumbents, st.Duration.Round(time.Microsecond))
			fmt.Fprintf(stdout, "  presolve: %d rows, %d cols removed, %d tightenings; cuts: %d added, %d active; branching: %d probes, %d reliable vars\n",
				st.PresolveRows, st.PresolveCols, st.PresolveTightenings,
				st.CutsAdded, st.CutsActive, st.BranchProbes, st.ReliableVars)
		}
		fmt.Fprintf(stdout, "  critical path: %d → %d (ILP loss %d)\n", red.CPBefore, red.CPAfter, red.CPAfter-red.CPBefore)
		for _, a := range red.Arcs {
			fmt.Fprintf(stdout, "    arc %s → %s (latency %d)\n",
				red.Graph.Node(a.From).Name, red.Graph.Node(a.To).Name, a.Latency)
		}
		if *emit {
			fmt.Fprint(stdout, red.Graph.Format())
		}
		if *dot {
			fmt.Fprint(stdout, red.Graph.DOT())
		}
	}
	if *irStats {
		cs := regsat.InternerStats()
		fmt.Fprintf(stdout, "ir interner: %d hits, %d misses, %d evictions, %d snapshots resident (~%d bytes)\n",
			cs.Hits, cs.Misses, cs.Evictions, cs.Entries, cs.ResidentBytes)
	}
	switch {
	case failed:
		return errors.New("some inputs failed")
	case spilled:
		return errSpill
	}
	return nil
}

func buildSource(file, kernel, machine string, args []string) (regsat.GraphSource, error) {
	mk, err := parseMachine(machine)
	if err != nil {
		return nil, err
	}
	switch {
	case kernel != "":
		spec, ok := kernels.ByName(kernel)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q (try ddggen -list)", kernel)
		}
		return regsat.SourceGraphs(spec.Build(mk)), nil
	case file == "-":
		g, err := regsat.ParseGraph(os.Stdin)
		if err != nil {
			return nil, err
		}
		if err := g.Finalize(); err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return regsat.SourceGraphs(g), nil
		}
		rest, err := regsat.SourcePaths(args...)
		if err != nil {
			return nil, err
		}
		return regsat.SourceConcat(regsat.SourceGraphs(g), rest), nil
	case file != "" || len(args) > 0:
		paths := args
		if file != "" {
			paths = append([]string{file}, args...)
		}
		return regsat.SourcePaths(paths...)
	default:
		return nil, fmt.Errorf("need -f, -kernel, or input paths")
	}
}

func parseMachine(s string) (ddg.MachineKind, error) {
	switch s {
	case "superscalar":
		return ddg.Superscalar, nil
	case "vliw":
		return ddg.VLIW, nil
	case "epic":
		return ddg.EPIC, nil
	}
	return 0, fmt.Errorf("unknown machine %q", s)
}
