// Command rsreduce reduces the register saturation of a DDG below a register
// budget by inserting serialization arcs (Section 4 of the paper), and emits
// the extended, scheduler-ready DDG.
//
// Usage:
//
//	rsreduce -kernel spec-swim -r 6 [-machine vliw] [-method heuristic|exact|ilp]
//	rsreduce -f body.ddg -r 8 -emit
package main

import (
	"flag"
	"fmt"
	"os"

	"regsat"
	"regsat/internal/ddg"
	"regsat/internal/kernels"
	"regsat/internal/reduce"
)

func main() {
	var (
		file    = flag.String("f", "", "DDG file in textual format (\"-\" = stdin)")
		kernel  = flag.String("kernel", "", "built-in kernel name (see ddggen -list)")
		machine = flag.String("machine", "superscalar", "machine kind: superscalar|vliw|epic")
		method  = flag.String("method", "heuristic", "reduction method: heuristic|exact|ilp")
		regs    = flag.Int("r", 8, "available registers R_t")
		typ     = flag.String("type", "float", "register type to reduce")
		emit    = flag.Bool("emit", false, "emit the extended DDG in textual format")
		dot     = flag.Bool("dot", false, "emit the extended DDG in Graphviz format")
	)
	flag.Parse()

	g, err := loadGraph(*file, *kernel, *machine)
	if err != nil {
		fatal(err)
	}
	t := regsat.RegType(*typ)

	opts := regsat.ReduceOptions{}
	switch *method {
	case "heuristic":
		opts.Method = regsat.ReduceHeuristic
	case "exact":
		opts.Method = regsat.ReduceExact
	case "ilp":
		opts.Method = regsat.ReduceExactILP
		opts.ILP = reduce.ILPOptions{ApplyReductions: true, GuaranteeDAG: true}
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	before, err := regsat.ComputeRS(g, t, regsat.RSOptions{Method: regsat.GreedyK, SkipWitness: true})
	if err != nil {
		fatal(err)
	}
	res, err := regsat.ReduceRS(g, t, *regs, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("DDG %s (%s), type %s: RS*=%d, budget R=%d\n", g.Name, g.Machine, t, before.RS, *regs)
	if res.Spill {
		fmt.Printf("  NOT reducible to %d registers: spill code unavoidable\n", *regs)
		os.Exit(2)
	}
	fmt.Printf("  reduced RS=%d with %d serialization arcs\n", res.RS, len(res.Arcs))
	fmt.Printf("  critical path: %d → %d (ILP loss %d)\n", res.CPBefore, res.CPAfter, res.CPAfter-res.CPBefore)
	for _, a := range res.Arcs {
		fmt.Printf("    arc %s → %s (latency %d)\n",
			res.Graph.Node(a.From).Name, res.Graph.Node(a.To).Name, a.Latency)
	}
	if *emit {
		fmt.Print(res.Graph.Format())
	}
	if *dot {
		fmt.Print(res.Graph.DOT())
	}
}

func loadGraph(file, kernel, machine string) (*regsat.Graph, error) {
	mk, err := parseMachine(machine)
	if err != nil {
		return nil, err
	}
	switch {
	case kernel != "":
		spec, ok := kernels.ByName(kernel)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q (try ddggen -list)", kernel)
		}
		return spec.Build(mk), nil
	case file == "-":
		g, err := regsat.ParseGraph(os.Stdin)
		if err != nil {
			return nil, err
		}
		return g, g.Finalize()
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := regsat.ParseGraph(f)
		if err != nil {
			return nil, err
		}
		return g, g.Finalize()
	default:
		return nil, fmt.Errorf("need -f or -kernel")
	}
}

func parseMachine(s string) (ddg.MachineKind, error) {
	switch s {
	case "superscalar":
		return ddg.Superscalar, nil
	case "vliw":
		return ddg.VLIW, nil
	case "epic":
		return ddg.EPIC, nil
	}
	return 0, fmt.Errorf("unknown machine %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsreduce:", err)
	os.Exit(1)
}
