package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestReduceKernel(t *testing.T) {
	out, _, err := runCLI(t, "-kernel", "spec-swim", "-r", "3", "-type", "float", "-emit")
	if err != nil && !errors.Is(err, errSpill) {
		t.Fatal(err)
	}
	if !strings.Contains(out, "budget R=3") {
		t.Fatalf("missing budget line:\n%s", out)
	}
	if !strings.Contains(out, "reduced RS=") && !strings.Contains(out, "NOT reducible") &&
		!strings.Contains(out, "already within budget") {
		t.Fatalf("no reduction verdict:\n%s", out)
	}
}

func TestReduceCorpusWithinBudget(t *testing.T) {
	// A generous budget: every corpus graph fits, nothing spills.
	out, _, err := runCLI(t, "-r", "64", "-type", "float", "../../testdata")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "already within budget") {
		t.Fatalf("expected within-budget outcomes:\n%s", out)
	}
}

func TestReduceIRStats(t *testing.T) {
	out, _, err := runCLI(t, "-kernel", "lin-daxpy", "-r", "64", "-type", "float", "-ir-stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ir interner:") || !strings.Contains(out, "bytes)") {
		t.Fatalf("-ir-stats output missing interner line:\n%s", out)
	}
}

func TestReduceBadInputs(t *testing.T) {
	if _, _, err := runCLI(t, "-method", "magic", "-kernel", "fig2"); err == nil {
		t.Fatal("bad method accepted")
	}
	if _, _, err := runCLI(t); err == nil {
		t.Fatal("no input accepted")
	}
}
