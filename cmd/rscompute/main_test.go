package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestKernelExact(t *testing.T) {
	out, _, err := runCLI(t, "-kernel", "lin-daxpy", "-method", "bb", "-witness")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DDG lin-daxpy", "RS_", "(exact)", "saturating schedule"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCorpusDirectory(t *testing.T) {
	out, _, err := runCLI(t, "-parallel", "4", "../../testdata")
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(out, "DDG "); n < 20 {
		t.Fatalf("corpus run analyzed %d graphs, want the full testdata corpus:\n%s", n, out)
	}
}

func TestCyclicLoopFile(t *testing.T) {
	out, _, err := runCLI(t, "-cyclic", "-method", "bb", "../../testdata/superscalar-loop-fib.ddg")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Loop ", "loop-carried", "RS_float windows", "periodic MILP: II="} {
		if !strings.Contains(out, want) {
			t.Fatalf("cyclic output missing %q:\n%s", want, out)
		}
	}
}

func TestCyclicLoopStdin(t *testing.T) {
	loop := "ddg \"inline-rec\" loop\nnode a op=x lat=2 writes=float\nedge a a flow float dist=1\n"
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteString(loop); err != nil {
		t.Fatal(err)
	}
	w.Close()
	old := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = old }()
	out, _, err := runCLI(t, "-f", "-")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Loop inline-rec") {
		t.Fatalf("stdin loop not analyzed:\n%s", out)
	}
}

func TestDotOutput(t *testing.T) {
	out, _, err := runCLI(t, "-kernel", "fig2", "-dot")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") {
		t.Fatalf("not Graphviz output:\n%s", out)
	}
}

func TestBadInputs(t *testing.T) {
	if _, _, err := runCLI(t, "-method", "quantum", "-kernel", "fig2"); err == nil {
		t.Fatal("bad method accepted")
	}
	if _, _, err := runCLI(t); err == nil {
		t.Fatal("no input accepted")
	}
	if _, _, err := runCLI(t, "-bogus-flag"); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestParseErrorCarriesPosition(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.ddg")
	if err := os.WriteFile(path, []byte("ddg \"x\"\nnode a op=x lat=nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, errOut, err := runCLI(t, "-f", path)
	if err == nil {
		t.Fatal("broken file accepted")
	}
	if !strings.Contains(errOut, "line 2:") {
		t.Fatalf("parse diagnostic lacks position:\n%s", errOut)
	}
}
