// Command rscompute computes the register saturation of a DDG — the maximal
// register requirement over all valid schedules (Section 3 of the paper).
//
// Usage:
//
//	rscompute -kernel lin-daxpy [-machine vliw] [-method greedy|bb|ilp] [-dot]
//	rscompute -f body.ddg [-method bb] [-witness]
//
// The input is either a built-in benchmark kernel (-kernel, see `ddggen
// -list`) or a DDG file in the textual format (-f, "-" for stdin).
package main

import (
	"flag"
	"fmt"
	"os"

	"regsat"
	"regsat/internal/ddg"
	"regsat/internal/kernels"
)

func main() {
	var (
		file    = flag.String("f", "", "DDG file in textual format (\"-\" = stdin)")
		kernel  = flag.String("kernel", "", "built-in kernel name (see ddggen -list)")
		machine = flag.String("machine", "superscalar", "machine kind: superscalar|vliw|epic")
		method  = flag.String("method", "greedy", "saturation method: greedy|bb|ilp")
		dot     = flag.Bool("dot", false, "emit the DDG in Graphviz format and exit")
		witness = flag.Bool("witness", false, "print a saturating schedule")
	)
	flag.Parse()

	g, err := loadGraph(*file, *kernel, *machine)
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(g.DOT())
		return
	}

	opts := regsat.RSOptions{}
	switch *method {
	case "greedy":
		opts.Method = regsat.GreedyK
	case "bb":
		opts.Method = regsat.ExactBB
	case "ilp":
		opts.Method = regsat.ExactILP
		opts.ApplyReductions = true
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	fmt.Printf("DDG %s (%s): %d nodes, %d edges, critical path %d\n",
		g.Name, g.Machine, g.NumNodes(), g.NumEdges(), g.CriticalPath())
	for _, t := range g.Types() {
		res, err := regsat.ComputeRS(g, t, opts)
		if err != nil {
			fatal(err)
		}
		exact := "≥ (heuristic lower bound)"
		if res.Exact {
			exact = "= (exact)"
		}
		fmt.Printf("  RS_%s %s %d   values=%d saturating=%v\n",
			t, exact, res.RS, len(g.Values(t)), names(g, res.Antichain))
		if res.ILP != nil {
			fmt.Printf("    intLP: %d vars (%d integer), %d constraints, %d redundant arcs dropped, %d never-alive pairs\n",
				res.ILP.Vars, res.ILP.IntVars, res.ILP.Constrs, res.ILP.RedundantArcs, res.ILP.NeverAlivePairs)
		}
		if *witness && res.Witness != nil {
			fmt.Printf("    saturating schedule (RN=%d):\n", res.Witness.RegisterNeed(t))
			for u := 0; u < g.NumNodes(); u++ {
				if u == g.Bottom() {
					continue
				}
				fmt.Printf("      t=%-3d %s\n", res.Witness.Times[u], g.Node(u).Name)
			}
		}
	}
}

func loadGraph(file, kernel, machine string) (*regsat.Graph, error) {
	mk, err := parseMachine(machine)
	if err != nil {
		return nil, err
	}
	switch {
	case kernel != "":
		spec, ok := kernels.ByName(kernel)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q (try ddggen -list)", kernel)
		}
		return spec.Build(mk), nil
	case file == "-":
		g, err := regsat.ParseGraph(os.Stdin)
		if err != nil {
			return nil, err
		}
		return g, g.Finalize()
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := regsat.ParseGraph(f)
		if err != nil {
			return nil, err
		}
		return g, g.Finalize()
	default:
		return nil, fmt.Errorf("need -f or -kernel (try -kernel lin-daxpy)")
	}
}

func parseMachine(s string) (ddg.MachineKind, error) {
	switch s {
	case "superscalar":
		return ddg.Superscalar, nil
	case "vliw":
		return ddg.VLIW, nil
	case "epic":
		return ddg.EPIC, nil
	}
	return 0, fmt.Errorf("unknown machine %q", s)
}

func names(g *regsat.Graph, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Node(id).Name
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rscompute:", err)
	os.Exit(1)
}
