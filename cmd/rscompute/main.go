// Command rscompute computes the register saturation of DDGs — the maximal
// register requirement over all valid schedules (Section 3 of the paper).
// Multiple files and directories are analyzed concurrently by the batch
// engine, with deterministic output order.
//
// Usage:
//
//	rscompute -kernel lin-daxpy [-machine vliw] [-method greedy|bb|ilp]
//	rscompute -f body.ddg [-method bb] [-witness]
//	rscompute -parallel 8 testdata/ extra.ddg
//
// The input is a built-in benchmark kernel (-kernel, see `ddggen -list`), a
// DDG file in the textual format (-f, "-" for stdin), or any mix of .ddg
// files and directories as positional arguments.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"regsat"
	"regsat/internal/ddg"
	"regsat/internal/kernels"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rscompute:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rscompute", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		file     = fs.String("f", "", "DDG file in textual format (\"-\" = stdin)")
		kernel   = fs.String("kernel", "", "built-in kernel name (see ddggen -list)")
		machine  = fs.String("machine", "superscalar", "machine kind: superscalar|vliw|epic")
		method   = fs.String("method", "greedy", "saturation method: greedy|bb|ilp")
		dot      = fs.Bool("dot", false, "emit the DDG in Graphviz format and exit (single input)")
		witness  = fs.Bool("witness", false, "print a saturating schedule")
		parallel = fs.Int("parallel", 0, "worker count for multi-file analysis (0 = GOMAXPROCS)")
		certify  = fs.Bool("cyclic", false, "certify loop kernels with the exact periodic MILP (small kernels only)")
		backend  = fs.String("solver", "", "MILP backend for -method ilp: dense|sparse|parallel (default sparse)")
		stats    = fs.Bool("solver-stats", false, "print per-solve search statistics (MILP nodes/iterations or exact-BB leaves/prunes)")
		irStats  = fs.Bool("ir-stats", false, "print the analysis-snapshot interner statistics after the run")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return err
	}

	opts := regsat.RSOptions{SkipWitness: !*witness}
	opts.Solver.Backend = *backend
	switch *method {
	case "greedy":
		opts.Method = regsat.GreedyK
	case "bb":
		opts.Method = regsat.ExactBB
	case "ilp":
		opts.Method = regsat.ExactILP
		opts.ApplyReductions = true
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	if *dot {
		g, err := loadDotGraph(*file, *kernel, *machine, fs.Args())
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, g.DOT())
		return nil
	}
	src, err := buildSource(*file, *kernel, *machine, fs.Args())
	if err != nil {
		return err
	}

	ch, err := regsat.AnalyzeAll(context.Background(), []regsat.GraphSource{src},
		regsat.BatchOptions{Parallel: *parallel, RS: opts,
			Cyclic: regsat.CyclicOptions{Certify: *certify}})
	if err != nil {
		return err
	}
	failed := 0
	for res := range ch {
		if res.Err != nil {
			failed++
			fmt.Fprintf(stderr, "rscompute: %s: %v\n", res.Name, res.Err)
			continue
		}
		if res.Loop != nil {
			printLoop(stdout, res)
			continue
		}
		g := res.Graph
		fmt.Fprintf(stdout, "DDG %s (%s): %d nodes, %d edges, critical path %d\n",
			g.Name, g.Machine, g.NumNodes(), g.NumEdges(), g.CriticalPath())
		for _, t := range g.Types() {
			r := res.RS[t]
			if r == nil {
				continue
			}
			exact := "≥ (heuristic lower bound)"
			if r.Exact {
				exact = "= (exact)"
			}
			fmt.Fprintf(stdout, "  RS_%s %s %d   values=%d saturating=%v\n",
				t, exact, r.RS, len(g.Values(t)), names(g, r.Antichain))
			// Capped exact searches report their proven interval the same
			// way, whether the MILP backend or the combinatorial search hit
			// its budget.
			if !r.Exact && r.BBStats != nil && r.BBStats.Capped && r.BBStats.UpperBound > r.RS {
				fmt.Fprintf(stdout, "    capped search: RS ∈ [%d, %d]\n", r.RS, r.BBStats.UpperBound)
			}
			if !r.Exact && r.ILPUpperBound > r.RS {
				fmt.Fprintf(stdout, "    capped solve: RS ∈ [%d, %d]\n", r.RS, r.ILPUpperBound)
			}
			if *stats && r.BBStats != nil {
				fmt.Fprintf(stdout, "    exact-bb: %d leaves, %d subtrees pruned, proven upper bound %d\n",
					r.BBStats.Leaves, r.BBStats.Pruned, r.BBStats.UpperBound)
			}
			if r.ILP != nil {
				fmt.Fprintf(stdout, "    intLP: %d vars (%d integer), %d constraints, %d redundant arcs dropped, %d never-alive pairs\n",
					r.ILP.Vars, r.ILP.IntVars, r.ILP.Constrs, r.ILP.RedundantArcs, r.ILP.NeverAlivePairs)
			}
			if *stats && r.SolverStats != nil {
				st := r.SolverStats
				fmt.Fprintf(stdout, "    solver: %d nodes, %d simplex iters, warm-start %.0f%% (%d warm / %d cold), %d incumbents, %d fallbacks, %d workers, %v\n",
					st.Nodes, st.SimplexIters, 100*st.WarmRate(), st.WarmStarts, st.ColdStarts,
					st.Incumbents, st.Fallbacks, st.Workers, st.Duration.Round(time.Microsecond))
				fmt.Fprintf(stdout, "    presolve: %d rows, %d cols removed, %d tightenings; cuts: %d added, %d active; branching: %d probes, %d reliable vars\n",
					st.PresolveRows, st.PresolveCols, st.PresolveTightenings,
					st.CutsAdded, st.CutsActive, st.BranchProbes, st.ReliableVars)
			}
			if *witness && r.Witness != nil {
				fmt.Fprintf(stdout, "    saturating schedule (RN=%d):\n", r.Witness.RegisterNeed(t))
				for u := 0; u < g.NumNodes(); u++ {
					if u == g.Bottom() {
						continue
					}
					fmt.Fprintf(stdout, "      t=%-3d %s\n", r.Witness.Times[u], g.Node(u).Name)
				}
			}
		}
	}
	if *irStats {
		printIRStats(stdout)
	}
	if failed > 0 {
		return fmt.Errorf("%d input(s) failed", failed)
	}
	return nil
}

// printLoop renders a cyclic loop item's periodic analysis: the unrolled
// RS(k) window sequence with its converged per-iteration delta and Fekete
// slope bound, plus the periodic MILP certificate when one was computed.
func printLoop(w io.Writer, res regsat.BatchResult) {
	l := res.Loop
	carried := 0
	for _, e := range l.Edges() {
		if e.Dist > 0 {
			carried++
		}
	}
	fmt.Fprintf(w, "Loop %s (%s): %d nodes, %d edges (%d loop-carried)\n",
		l.Name, l.Machine, len(l.Nodes()), len(l.Edges()), carried)
	for _, t := range l.Types() {
		r := res.Cyclic[t]
		if r == nil {
			continue
		}
		conv := "not converged"
		if r.Converged {
			conv = fmt.Sprintf("Δ=%d/iteration", r.PerIter)
		}
		exact := "≥ (heuristic lower bounds)"
		if r.Exact {
			exact = "(exact windows)"
		}
		fmt.Fprintf(w, "  RS_%s windows %v %s   %s, slope ≤ %.3f\n",
			t, r.Windows, exact, conv, r.Slope)
		if p := r.Periodic; p != nil {
			status := fmt.Sprintf("PRS ∈ [%d, %d]", p.RS, p.UpperBound)
			if p.Exact {
				status = fmt.Sprintf("PRS = %d (exact)", p.RS)
			}
			fmt.Fprintf(w, "    periodic MILP: II=%d, %s, jmax=%d\n", p.II, status, p.Jmax)
		}
	}
}

// printIRStats renders the process-wide interner counters (shared with
// rsreduce via the same public API rsd's /metrics uses).
func printIRStats(w io.Writer) {
	cs := regsat.InternerStats()
	fmt.Fprintf(w, "ir interner: %d hits, %d misses, %d evictions, %d snapshots resident (~%d bytes)\n",
		cs.Hits, cs.Misses, cs.Evictions, cs.Entries, cs.ResidentBytes)
}

// buildSource assembles the input stream: a kernel, stdin ("-f -"), and any
// mix of files and directories, analyzed in the order given.
func buildSource(file, kernel, machine string, args []string) (regsat.GraphSource, error) {
	mk, err := parseMachine(machine)
	if err != nil {
		return nil, err
	}
	switch {
	case kernel != "":
		spec, ok := kernels.ByName(kernel)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q (try ddggen -list)", kernel)
		}
		return regsat.SourceGraphs(spec.Build(mk)), nil
	case file == "-":
		src, err := loadStdinSource()
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return src, nil
		}
		rest, err := regsat.SourcePaths(args...)
		if err != nil {
			return nil, err
		}
		return regsat.SourceConcat(src, rest), nil
	case file != "" || len(args) > 0:
		paths := args
		if file != "" {
			paths = append([]string{file}, args...)
		}
		return regsat.SourcePaths(paths...)
	default:
		return nil, fmt.Errorf("need -f, -kernel, or input paths (try -kernel lin-daxpy)")
	}
}

// loadDotGraph resolves the single graph -dot renders.
func loadDotGraph(file, kernel, machine string, args []string) (*regsat.Graph, error) {
	mk, err := parseMachine(machine)
	if err != nil {
		return nil, err
	}
	switch {
	case kernel != "":
		spec, ok := kernels.ByName(kernel)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q (try ddggen -list)", kernel)
		}
		return spec.Build(mk), nil
	case file == "-" && len(args) == 0:
		return loadStdin()
	case file != "" && len(args) == 0:
		return loadSingle(file)
	case file == "" && len(args) == 1:
		return loadSingle(args[0])
	default:
		return nil, fmt.Errorf("-dot needs a single input (-kernel, -f, or one file)")
	}
}

func loadStdin() (*regsat.Graph, error) {
	g, err := regsat.ParseGraph(os.Stdin)
	if err != nil {
		return nil, err
	}
	return g, g.Finalize()
}

// loadStdinSource reads one DDG from stdin, routing loop kernels (the `loop`
// header flag) to the cyclic pipeline.
func loadStdinSource() (regsat.GraphSource, error) {
	raw, err := io.ReadAll(os.Stdin)
	if err != nil {
		return nil, err
	}
	if regsat.DetectLoop(string(raw)) {
		l, err := regsat.ParseLoopString(string(raw))
		if err != nil {
			return nil, err
		}
		return regsat.SourceLoops(l), nil
	}
	g, err := regsat.ParseGraphString(string(raw))
	if err != nil {
		return nil, err
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return regsat.SourceGraphs(g), nil
}

func loadSingle(path string) (*regsat.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := regsat.ParseGraph(f)
	if err != nil {
		// The parse error carries line:column; the path comes from here.
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, g.Finalize()
}

func parseMachine(s string) (ddg.MachineKind, error) {
	switch s {
	case "superscalar":
		return ddg.Superscalar, nil
	case "vliw":
		return ddg.VLIW, nil
	case "epic":
		return ddg.EPIC, nil
	}
	return 0, fmt.Errorf("unknown machine %q", s)
}

func names(g *regsat.Graph, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Node(id).Name
	}
	return out
}
