package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestFig2Experiment(t *testing.T) {
	out, _, err := runCLI(t, "-exp", "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[fig2 completed in") {
		t.Fatalf("experiment did not complete:\n%s", out)
	}
}

func TestCorpusJSONArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	out, _, err := runCLI(t, "-exp", "corpus", "-dir", "../../testdata", "-parallel", "4", "-json", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote "+path) {
		t.Fatalf("artifact write not reported:\n%s", out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b benchJSON
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("BENCH.json does not parse: %v", err)
	}
	if b.Corpus == nil || b.Corpus.Files < 20 || len(b.Corpus.PerFile) != b.Corpus.Files {
		t.Fatalf("corpus summary incomplete: %+v", b.Corpus)
	}
	if b.Corpus.SequentialNs <= 0 || b.Corpus.ParallelNs <= 0 {
		t.Fatalf("missing sweep timings: %+v", b.Corpus)
	}
	for _, f := range b.Corpus.PerFile {
		if f.Error != "" {
			t.Fatalf("%s failed: %s", f.Name, f.Error)
		}
		if f.NsOp <= 0 || len(f.RS) == 0 {
			t.Fatalf("per-file record incomplete: %+v", f)
		}
	}
	if len(b.Experiments) == 0 || b.Experiments[len(b.Experiments)-1].Name != "corpus" {
		t.Fatalf("experiment timings missing: %+v", b.Experiments)
	}
}

func TestBadInputs(t *testing.T) {
	if _, _, err := runCLI(t, "-machine", "abacus"); err == nil {
		t.Fatal("bad machine accepted")
	}
	if _, _, err := runCLI(t, "-exp", "corpus", "-dir", "/does/not/exist"); err == nil {
		t.Fatal("missing corpus dir accepted")
	}
}
