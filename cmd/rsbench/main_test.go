package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestFig2Experiment(t *testing.T) {
	out, _, err := runCLI(t, "-exp", "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[fig2 completed in") {
		t.Fatalf("experiment did not complete:\n%s", out)
	}
}

func TestCorpusJSONArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	out, _, err := runCLI(t, "-exp", "corpus", "-dir", "../../testdata", "-parallel", "4", "-json", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote "+path) {
		t.Fatalf("artifact write not reported:\n%s", out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b benchJSON
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("BENCH.json does not parse: %v", err)
	}
	if b.Corpus == nil || b.Corpus.Files < 20 || len(b.Corpus.PerFile) != b.Corpus.Files {
		t.Fatalf("corpus summary incomplete: %+v", b.Corpus)
	}
	if b.Corpus.SequentialNs <= 0 || b.Corpus.ParallelNs <= 0 {
		t.Fatalf("missing sweep timings: %+v", b.Corpus)
	}
	for _, f := range b.Corpus.PerFile {
		if f.Error != "" {
			t.Fatalf("%s failed: %s", f.Name, f.Error)
		}
		if f.NsOp <= 0 || len(f.RS) == 0 {
			t.Fatalf("per-file record incomplete: %+v", f)
		}
	}
	if len(b.Experiments) == 0 || b.Experiments[len(b.Experiments)-1].Name != "corpus" {
		t.Fatalf("experiment timings missing: %+v", b.Experiments)
	}
}

func TestBadInputs(t *testing.T) {
	if _, _, err := runCLI(t, "-machine", "abacus"); err == nil {
		t.Fatal("bad machine accepted")
	}
	if _, _, err := runCLI(t, "-exp", "corpus", "-dir", "/does/not/exist"); err == nil {
		t.Fatal("missing corpus dir accepted")
	}
	if _, _, err := runCLI(t, "-exp", "fig2", "-baseline", "/does/not/exist.json"); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

// TestFamiliesExperiment: the generated-families sweep produces a complete
// machine-readable section over every registered generator family.
func TestFamiliesExperiment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	out, _, err := runCLI(t, "-exp", "families", "-fam-count", "2", "-json", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[families completed in") {
		t.Fatalf("families sweep did not complete:\n%s", out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b benchJSON
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if b.Families == nil || b.Families.Count != 10 || len(b.Families.PerFile) != 10 {
		t.Fatalf("families summary incomplete: %+v", b.Families)
	}
	for _, family := range []string{"unroll", "grid", "superblock", "exprtree", "layered"} {
		found := false
		for _, f := range b.Families.PerFile {
			if strings.HasPrefix(f.Name, family+"-") {
				found = true
				if f.Error != "" {
					t.Fatalf("%s failed: %s", f.Name, f.Error)
				}
			}
		}
		if !found {
			t.Fatalf("family %s missing from the sweep: %+v", family, b.Families.PerFile)
		}
	}
}

// TestCyclicExperiment: the cyclic loop-family sweep produces a complete
// machine-readable section covering every registered cyclic family, with
// window counts and per-iteration deltas per loop.
func TestCyclicExperiment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	out, _, err := runCLI(t, "-exp", "cyclic", "-fam-count", "2", "-json", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[cyclic completed in") {
		t.Fatalf("cyclic sweep did not complete:\n%s", out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b benchJSON
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if b.Cyclic == nil || b.Cyclic.Count != 4 || len(b.Cyclic.PerFile) != 4 {
		t.Fatalf("cyclic summary incomplete: %+v", b.Cyclic)
	}
	for _, family := range []string{"recurrence", "stencil"} {
		found := false
		for _, f := range b.Cyclic.PerFile {
			if strings.HasPrefix(f.Name, family+"-") {
				found = true
				if f.Error != "" {
					t.Fatalf("%s failed: %s", f.Name, f.Error)
				}
				if f.NsOp <= 0 || f.Windows < 1 || len(f.PerIter) == 0 {
					t.Fatalf("per-loop record incomplete: %+v", f)
				}
			}
		}
		if !found {
			t.Fatalf("cyclic family %s missing from the sweep: %+v", family, b.Cyclic.PerFile)
		}
	}
}

// TestCyclicBaselineGate: cyclic entries participate in the benchcmp gate
// under the cyclic/ namespace — a doctored baseline flags them.
func TestCyclicBaselineGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if _, _, err := runCLI(t, "-exp", "cyclic", "-fam-count", "2", "-json", base); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var b benchJSON
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	for i := range b.Cyclic.PerFile {
		b.Cyclic.PerFile[i].NsOp /= 1000
	}
	fast, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	doctored := filepath.Join(dir, "fast.json")
	if err := os.WriteFile(doctored, fast, 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, "-exp", "cyclic", "-fam-count", "2", "-baseline", doctored, "-threshold", "0.25")
	if err == nil || !strings.Contains(err.Error(), "performance regressed") {
		t.Fatalf("injected cyclic regression not flagged: %v\n%s", err, out)
	}
	if !strings.Contains(out, "cyclic/") {
		t.Fatalf("cyclic namespace missing from report:\n%s", out)
	}
}

// TestBaselineGate drives the full compare mode through the CLI: an
// unchanged run passes, an injected 2x regression fails with the verdict on
// stdout.
func TestBaselineGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if _, _, err := runCLI(t, "-exp", "families", "-fam-count", "2", "-json", base); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, "-exp", "families", "-fam-count", "2", "-baseline", base, "-threshold", "1000")
	if err != nil {
		t.Fatalf("absurdly tolerant threshold still failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "VERDICT: ok") {
		t.Fatalf("no ok verdict:\n%s", out)
	}

	// Inject a 2x regression by halving every baseline timing.
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var b benchJSON
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	for i := range b.Families.PerFile {
		b.Families.PerFile[i].NsOp /= 1000 // current run is now vastly slower
	}
	fast, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	doctored := filepath.Join(dir, "fast.json")
	if err := os.WriteFile(doctored, fast, 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err = runCLI(t, "-exp", "families", "-fam-count", "2", "-baseline", doctored, "-threshold", "0.25")
	if err == nil || !strings.Contains(err.Error(), "performance regressed") {
		t.Fatalf("injected regression not flagged: %v\n%s", err, out)
	}
	if !strings.Contains(out, "VERDICT: REGRESSED") {
		t.Fatalf("no regression verdict in report:\n%s", out)
	}
}
