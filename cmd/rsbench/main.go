// Command rsbench regenerates the paper's evaluation: every experiment of
// DESIGN.md's per-experiment index (E1–E8), printed as tables with the
// paper's reference numbers alongside.
//
// Usage:
//
//	rsbench                       # run everything on the superscalar model
//	rsbench -exp reduce -random 40
//	rsbench -exp rs -machine vliw
//	rsbench -exp corpus -dir testdata -parallel 8
//	rsbench -exp corpus -json BENCH.json   # machine-readable timings
//	rsbench -exp families -json BENCH.json # generated structured families
//	rsbench -exp corpus,solver -json BENCH.json -baseline old.json -threshold 0.25
//
// -exp accepts a comma-separated list (e.g. -exp corpus,solver); "all" runs
// the paper experiments but still excludes corpus/solver/families, which
// read -dir or generate inputs and only run when named explicitly.
//
// -json writes a machine-readable summary (per-experiment wall times; for
// -exp corpus/solver/families also per-case timings, ns/op, and solver work
// accounting) for CI artifacts and performance tracking. -baseline diffs the
// current run against a previous BENCH.json via internal/benchcmp and exits
// non-zero when the median per-file ns/op regresses beyond -threshold — the
// hook the CI bench-regression gate stands on.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"regsat/internal/batch"
	"regsat/internal/benchcmp"
	"regsat/internal/cyclic"
	"regsat/internal/ddg"
	"regsat/internal/experiments"
	"regsat/internal/gen"
	"regsat/internal/ir"
	"regsat/internal/obs"
	"regsat/internal/rs"
	"regsat/internal/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rsbench:", err)
		os.Exit(1)
	}
}

// benchJSON is the -json output schema: the start of the repo's perf
// trajectory, uploaded as a CI artifact on every run.
type benchJSON struct {
	GoVersion   string           `json:"goVersion"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Machine     string           `json:"machine"`
	Experiments []experimentJSON `json:"experiments,omitempty"`
	Corpus      *corpusJSON      `json:"corpus,omitempty"`
	Solver      *solverJSON      `json:"solver,omitempty"`
	Families    *familiesJSON    `json:"families,omitempty"`
	Tracing     *tracingJSON     `json:"tracing,omitempty"`
	Cyclic      *cyclicJSON      `json:"cyclic,omitempty"`
	Interner    ir.CacheStats    `json:"interner"`
}

// cyclicJSON is the -exp cyclic section: per-loop unrolled-window analysis
// timings over the cyclic generator families, with each loop's convergence
// window count alongside its ns/op. Entries gate in benchcmp under the
// "cyclic/" namespace.
type cyclicJSON struct {
	Count    int              `json:"count"`
	Parallel int              `json:"parallel"`
	WallNs   int64            `json:"wallNs"`
	PerFile  []cyclicLoopJSON `json:"perFile"`
}

// cyclicLoopJSON is one generated loop's periodic analysis cost and outcome.
type cyclicLoopJSON struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	NsOp  int64  `json:"nsOp"`
	// Windows is the number of unrolled windows the sweep ran before the
	// per-iteration delta stabilized (or the cap).
	Windows   int            `json:"windows,omitempty"`
	Converged bool           `json:"converged,omitempty"`
	PerIter   map[string]int `json:"perIter,omitempty"`
	Error     string         `json:"error,omitempty"`
}

// tracingJSON is the -exp tracing section: the observability tax, measured
// as the corpus sweep with tracing disabled (the production default) vs
// force-sampled. The disabled-path per-file numbers feed the benchcmp gate
// under the "tracing/" namespace — a regression there means the disabled
// path stopped being free; the enabled numbers are informational.
type tracingJSON struct {
	Dir         string  `json:"dir"`
	Parallel    int     `json:"parallel"`
	DisabledNs  int64   `json:"disabledNs"`
	EnabledNs   int64   `json:"enabledNs"`
	OverheadPct float64 `json:"overheadPct"`
	// Spans and Events count what the force-sampled run actually recorded —
	// zero means the enabled column measured nothing.
	Spans   int              `json:"spans"`
	Events  int              `json:"events"`
	PerFile []corpusFileJSON `json:"perFile"`
}

// solverJSON is the -exp solver section: per-(instance, backend) solve
// timings plus the engine's work accounting, feeding both the BENCH.json
// artifact and the benchcmp regression gate (entries appear under the
// "solver/" namespace there).
type solverJSON struct {
	Dir      string           `json:"dir"`
	Cases    int              `json:"cases"`
	Skipped  int              `json:"skipped"`
	Disagree int              `json:"disagree"`
	PerFile  []solverCaseJSON `json:"perFile"`
}

// solverCaseJSON is one backend's solve of one corpus instance. Name and
// NsOp match the benchcmp per-file schema; the rest is the per-solve
// instrumentation (branch-and-bound size, simplex work, presolve and cut
// effect, probing, dense fallbacks).
type solverCaseJSON struct {
	Name                string `json:"name"` // "graph/type [backend]"
	Values              int    `json:"values,omitempty"`
	NsOp                int64  `json:"nsOp"`
	RS                  int    `json:"rs"`
	Exact               bool   `json:"exact"`
	Nodes               int64  `json:"nodes,omitempty"`
	SimplexIters        int64  `json:"simplexIters,omitempty"`
	PresolveRows        int64  `json:"presolveRows,omitempty"`
	PresolveCols        int64  `json:"presolveCols,omitempty"`
	PresolveTightenings int64  `json:"presolveTightenings,omitempty"`
	CutsAdded           int64  `json:"cutsAdded,omitempty"`
	CutsActive          int64  `json:"cutsActive,omitempty"`
	BranchProbes        int64  `json:"branchProbes,omitempty"`
	ReliableVars        int64  `json:"reliableVars,omitempty"`
	BlandIters          int64  `json:"blandIters,omitempty"`
	Fallbacks           int64  `json:"fallbacks,omitempty"`
	Error               string `json:"error,omitempty"`
}

// familiesJSON is the -exp families section: per-generated-graph exact-RS
// analysis timings over the structured generator suite (internal/gen).
type familiesJSON struct {
	Count    int              `json:"count"`
	Parallel int              `json:"parallel"`
	WallNs   int64            `json:"wallNs"`
	PerFile  []corpusFileJSON `json:"perFile"`
}

type experimentJSON struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wallNs"`
}

type corpusJSON struct {
	Dir          string  `json:"dir"`
	Files        int     `json:"files"`
	Parallel     int     `json:"parallel"`
	SequentialNs int64   `json:"sequentialNs"`
	ParallelNs   int64   `json:"parallelNs"`
	Speedup      float64 `json:"speedup"`
	// AllocBytes and Mallocs are the parallel run's heap movement
	// (runtime.MemStats deltas): the sweep-level allocation cost.
	AllocBytes uint64           `json:"allocBytes"`
	Mallocs    uint64           `json:"mallocs"`
	MemoHits   int64            `json:"memoHits"`
	MemoMisses int64            `json:"memoMisses"`
	PerFile    []corpusFileJSON `json:"perFile"`
}

type corpusFileJSON struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	// NsOp is this file's analysis wall time in the parallel run — the
	// per-input ns/op of the corpus sweep.
	NsOp  int64          `json:"nsOp"`
	RS    map[string]int `json:"rs,omitempty"`
	Error string         `json:"error,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) error {
	ctx := context.Background()
	fs := flag.NewFlagSet("rsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "comma-separated experiments: all|pipeline|fig2|rs|reduce|size|time|versus|thm42, or corpus/solver/tracing (need -dir) / families/cyclic (generated; none part of all)")
		machine  = fs.String("machine", "superscalar", "machine kind: superscalar|vliw|epic")
		random   = fs.Int("random", 20, "number of random loop bodies added to the kernel suite")
		seed     = fs.Int64("seed", 2004, "random population seed")
		maxVals  = fs.Int("maxvalues", 12, "skip cases with more values than this (exactness budget)")
		dir      = fs.String("dir", "testdata", "DDG corpus directory for -exp corpus/solver")
		parallel = fs.Int("parallel", 0, "worker count for -exp corpus (0 = GOMAXPROCS)")
		backend  = fs.String("solver", "", "MILP backend for intLP solves: dense|sparse|parallel (default sparse)")
		profile  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		jsonOut  = fs.String("json", "", "write a machine-readable benchmark summary to this file")
		baseline = fs.String("baseline", "", "previous BENCH.json to compare against; exits non-zero on regression")
		thresh   = fs.Float64("threshold", 0.25, "median ns/op regression ratio tolerated by -baseline (0.25 = +25%)")
		famCount = fs.Int("fam-count", 8, "graphs per generator family for -exp families")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return err
	}

	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	mk, err := parseMachine(*machine)
	if err != nil {
		return err
	}
	pop := experiments.Population{
		Machine:      mk,
		RandomGraphs: *random,
		Seed:         *seed,
		MaxValues:    *maxVals,
	}
	summary := &benchJSON{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Machine:    *machine,
	}

	// -exp is a comma-separated set; "all" covers the paper experiments below
	// but not corpus/solver/families, which must stay opt-in.
	wants := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		if name = strings.TrimSpace(name); name != "" {
			wants[name] = true
		}
	}

	var firstErr error
	runExp := func(name string, f func() (string, error)) {
		if (!wants["all"] && !wants[name]) || firstErr != nil {
			return
		}
		start := time.Now()
		report, err := f()
		if err != nil {
			firstErr = fmt.Errorf("%s: %w", name, err)
			return
		}
		elapsed := time.Since(start)
		summary.Experiments = append(summary.Experiments, experimentJSON{Name: name, WallNs: int64(elapsed)})
		fmt.Fprintln(stdout, report)
		fmt.Fprintf(stdout, "[%s completed in %v]\n\n", name, elapsed.Round(time.Millisecond))
	}

	runExp("fig2", func() (string, error) {
		r, err := experiments.Figure2(ctx)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	runExp("pipeline", func() (string, error) {
		r, err := experiments.Pipeline(ctx, pop)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	runExp("rs", func() (string, error) {
		r, err := experiments.RSOptimality(pop)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	runExp("reduce", func() (string, error) {
		p := pop
		if p.MaxValues > 10 {
			p.MaxValues = 10 // exact reduction budget
		}
		r, err := experiments.ReduceOptimality(ctx, p, 2)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	runExp("size", func() (string, error) {
		r, err := experiments.ModelSize(pop)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	runExp("time", func() (string, error) {
		r, err := experiments.Timing(ctx, pop, 6, solver.Options{
			Backend: *backend, MaxNodes: 200000, TimeLimit: 30 * time.Second})
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	runExp("versus", func() (string, error) {
		p := pop
		if p.MaxValues > 10 {
			p.MaxValues = 10
		}
		r, err := experiments.Versus(ctx, p)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	runExp("thm42", func() (string, error) {
		r, err := experiments.Theorem42(ctx, pop, 3, *seed)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	if firstErr != nil {
		return firstErr
	}
	// The corpus and solver experiments read -dir from disk, so they only run
	// when asked for explicitly: a plain `rsbench` must keep working from any
	// directory.
	if wants["corpus"] {
		start := time.Now()
		report, cj, err := corpusReport(*dir, *parallel)
		if err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
		elapsed := time.Since(start)
		summary.Corpus = cj
		summary.Experiments = append(summary.Experiments, experimentJSON{Name: "corpus", WallNs: int64(elapsed)})
		fmt.Fprintln(stdout, report)
		fmt.Fprintf(stdout, "[corpus completed in %v]\n\n", elapsed.Round(time.Millisecond))
	}
	if wants["solver"] {
		start := time.Now()
		report, sj, err := solverReport(*dir, *maxVals)
		if err != nil {
			return fmt.Errorf("solver: %w", err)
		}
		elapsed := time.Since(start)
		summary.Solver = sj
		summary.Experiments = append(summary.Experiments, experimentJSON{Name: "solver", WallNs: int64(elapsed)})
		fmt.Fprintln(stdout, report)
		fmt.Fprintf(stdout, "[solver completed in %v]\n\n", elapsed.Round(time.Millisecond))
	}
	if wants["tracing"] {
		start := time.Now()
		report, tj, err := tracingReport(*dir, *parallel)
		if err != nil {
			return fmt.Errorf("tracing: %w", err)
		}
		elapsed := time.Since(start)
		summary.Tracing = tj
		summary.Experiments = append(summary.Experiments, experimentJSON{Name: "tracing", WallNs: int64(elapsed)})
		fmt.Fprintln(stdout, report)
		fmt.Fprintf(stdout, "[tracing completed in %v]\n\n", elapsed.Round(time.Millisecond))
	}
	if wants["cyclic"] {
		start := time.Now()
		report, yj, err := cyclicReport(mk, *famCount, *seed, *parallel)
		if err != nil {
			return fmt.Errorf("cyclic: %w", err)
		}
		elapsed := time.Since(start)
		yj.WallNs = int64(elapsed)
		summary.Cyclic = yj
		summary.Experiments = append(summary.Experiments, experimentJSON{Name: "cyclic", WallNs: int64(elapsed)})
		fmt.Fprintln(stdout, report)
		fmt.Fprintf(stdout, "[cyclic completed in %v]\n\n", elapsed.Round(time.Millisecond))
	}
	if wants["families"] {
		start := time.Now()
		report, fj, err := familiesReport(mk, *famCount, *seed, *parallel)
		if err != nil {
			return fmt.Errorf("families: %w", err)
		}
		elapsed := time.Since(start)
		fj.WallNs = int64(elapsed)
		summary.Families = fj
		summary.Experiments = append(summary.Experiments, experimentJSON{Name: "families", WallNs: int64(elapsed)})
		fmt.Fprintln(stdout, report)
		fmt.Fprintf(stdout, "[families completed in %v]\n\n", elapsed.Round(time.Millisecond))
	}

	summary.Interner = ir.Stats()
	if *jsonOut != "" {
		raw, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonOut)
	}
	if *baseline != "" {
		if err := compareBaseline(stdout, summary, *baseline, *thresh); err != nil {
			return err
		}
	}
	return nil
}

// compareBaseline diffs this run against a previous BENCH.json and fails on
// a median per-file regression beyond the threshold. A missing baseline
// file is an error (the CI gate skips the flag entirely on a cold cache).
func compareBaseline(stdout io.Writer, summary *benchJSON, path string, threshold float64) error {
	raw, err := json.Marshal(summary)
	if err != nil {
		return err
	}
	cur, err := benchcmp.Parse(raw)
	if err != nil {
		return err
	}
	old, err := benchcmp.Load(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	diff := benchcmp.Compare(old, cur)
	fmt.Fprint(stdout, diff.Report(threshold))
	if diff.Regressed(threshold) {
		return fmt.Errorf("performance regressed: median ns/op ratio %.2fx exceeds %.2fx (threshold %.0f%%)",
			diff.MedianRatio, 1+threshold, threshold*100)
	}
	return nil
}

// familiesReport generates a deterministic panel of structured graphs from
// every registered generator family and shards exact RS analysis over the
// batch engine — the families counterpart of corpusReport, giving the CI
// gate per-graph ns/op on shapes (unrolled loops, grids, superblocks,
// expression trees, layered DAGs) the committed corpus does not contain.
func familiesReport(mk ddg.MachineKind, perFamily int, seedBase int64, parallel int) (string, *familiesJSON, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	var graphs []*ddg.Graph
	for _, f := range gen.Families() {
		for i := 0; i < perFamily; i++ {
			p := f.Defaults
			p.Machine = mk
			p.Seed = seedBase + int64(i)
			p.Size = f.Defaults.Size + i%3
			p.Types = []ddg.RegType{ddg.Int, ddg.Float}
			if err := f.Validate(p); err != nil {
				return "", nil, err
			}
			g, err := f.Generate(p)
			if err != nil {
				return "", nil, err
			}
			graphs = append(graphs, g)
		}
	}
	eng := batch.New(batch.Options{Parallel: parallel, RS: rs.Options{Method: rs.MethodExactBB, SkipWitness: true}})
	start := time.Now()
	results, err := eng.Collect(context.Background(), batch.Graphs(graphs...))
	if err != nil {
		return "", nil, err
	}
	wall := time.Since(start)

	fj := &familiesJSON{Count: len(results), Parallel: parallel}
	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	add("Generated-family batch analysis: %d graphs (%d per family, machine %s)\n", len(results), perFamily, mk)
	add("%-40s %-8s %s\n", "GRAPH", "NODES", "RS per type")
	for _, res := range results {
		file := corpusFileJSON{Name: res.Name, NsOp: int64(res.Elapsed)}
		if res.Err != nil {
			file.Error = res.Err.Error()
			fj.PerFile = append(fj.PerFile, file)
			add("%-40s %v\n", res.Name, res.Err)
			continue
		}
		file.Nodes = res.Graph.NumNodes()
		file.RS = make(map[string]int, len(res.RS))
		types := make([]string, 0, len(res.RS))
		for t, r := range res.RS {
			types = append(types, string(t))
			file.RS[string(t)] = r.RS
		}
		sort.Strings(types)
		line := ""
		for _, t := range types {
			line += fmt.Sprintf("%s=%d ", t, res.RS[ddg.RegType(t)].RS)
		}
		fj.PerFile = append(fj.PerFile, file)
		add("%-40s %-8d %s\n", res.Name, res.Graph.NumNodes(), line)
	}
	add("families sweep: %d graphs in %v (parallel %d)\n", len(results), wall.Round(time.Millisecond), parallel)
	return string(b), fj, nil
}

// cyclicReport generates a deterministic panel of loop kernels from every
// cyclic generator family and shards the unrolled-window periodic analysis
// over the batch engine: the loop counterpart of familiesReport, giving the
// CI gate per-loop ns/op plus each loop's convergence window count.
func cyclicReport(mk ddg.MachineKind, perFamily int, seedBase int64, parallel int) (string, *cyclicJSON, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	var loops []*cyclic.Loop
	for _, f := range gen.CyclicFamilies() {
		for i := 0; i < perFamily; i++ {
			p := f.Defaults
			p.Machine = mk
			p.Seed = seedBase + int64(i)
			p.Size = f.Defaults.Size + i%3
			p.Types = []ddg.RegType{ddg.Int, ddg.Float}
			if err := f.Validate(p); err != nil {
				return "", nil, err
			}
			l, err := f.Generate(p)
			if err != nil {
				return "", nil, err
			}
			loops = append(loops, l)
		}
	}
	eng := batch.New(batch.Options{Parallel: parallel, Cyclic: cyclic.Options{
		MaxWindow: 6, RS: rs.Options{Method: rs.MethodExactBB, SkipWitness: true}}})
	start := time.Now()
	results, err := eng.Collect(context.Background(), batch.Loops(loops...))
	if err != nil {
		return "", nil, err
	}
	wall := time.Since(start)

	yj := &cyclicJSON{Count: len(results), Parallel: parallel}
	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	add("Cyclic loop-family periodic analysis: %d loops (%d per family, machine %s)\n", len(results), perFamily, mk)
	add("%-40s %-8s %-9s %s\n", "LOOP", "NODES", "WINDOWS", "Δ/iteration per type")
	for _, res := range results {
		entry := cyclicLoopJSON{Name: res.Name, NsOp: int64(res.Elapsed)}
		if res.Err != nil {
			entry.Error = res.Err.Error()
			yj.PerFile = append(yj.PerFile, entry)
			add("%-40s %v\n", res.Name, res.Err)
			continue
		}
		entry.Nodes = len(res.Loop.Nodes())
		entry.Converged = true
		entry.PerIter = make(map[string]int, len(res.Cyclic))
		types := make([]string, 0, len(res.Cyclic))
		for t, r := range res.Cyclic {
			types = append(types, string(t))
			entry.PerIter[string(t)] = r.PerIter
			if r.Window > entry.Windows {
				entry.Windows = r.Window
			}
			if !r.Converged {
				entry.Converged = false
			}
		}
		sort.Strings(types)
		line := ""
		for _, t := range types {
			line += fmt.Sprintf("%s=%d ", t, res.Cyclic[ddg.RegType(t)].PerIter)
		}
		if !entry.Converged {
			line += "(not converged)"
		}
		yj.PerFile = append(yj.PerFile, entry)
		add("%-40s %-8d %-9d %s\n", res.Name, entry.Nodes, entry.Windows, line)
	}
	add("cyclic sweep: %d loops in %v (parallel %d)\n", len(results), wall.Round(time.Millisecond), parallel)
	return string(b), yj, nil
}

// solverReport compares every registered MILP backend on the corpus: per
// instance, nodes explored, simplex iterations, warm-start hit rate, and
// wall clock, each backend verified against the combinatorial exact search.
// The JSON section carries one entry per (instance, backend) with the full
// per-solve instrumentation for the BENCH.json artifact and the regression
// gate.
func solverReport(dir string, maxValues int) (string, *solverJSON, error) {
	src, err := batch.Dir(dir)
	if err != nil {
		return "", nil, err
	}
	var graphs []*ddg.Graph
	var names []string
	for {
		it, ok := src.Next()
		if !ok {
			break
		}
		if it.Err != nil {
			return "", nil, it.Err
		}
		if it.Loop != nil {
			continue // loop kernels are benchmarked by -exp cyclic
		}
		if !it.Graph.Finalized() {
			if err := it.Graph.Finalize(); err != nil {
				return "", nil, fmt.Errorf("%s: %w", it.Name, err)
			}
		}
		graphs = append(graphs, it.Graph)
		names = append(names, it.Name)
	}
	sum, err := experiments.SolverBench(context.Background(), graphs, names, nil, maxValues,
		solver.Options{MaxNodes: 400000, TimeLimit: 60 * time.Second})
	if err != nil {
		return "", nil, err
	}
	sj := &solverJSON{Dir: dir, Cases: len(sum.Cases), Skipped: sum.Skipped, Disagree: sum.Disagree}
	for _, c := range sum.Cases {
		for _, r := range c.Rows {
			entry := solverCaseJSON{
				Name:   fmt.Sprintf("%s [%s]", c.Name, r.Backend),
				Values: c.Values,
				NsOp:   int64(r.Elapsed),
			}
			if r.Err != nil {
				entry.Error = r.Err.Error()
			} else {
				entry.RS = r.RS
				entry.Exact = r.Exact
				entry.Nodes = r.Stats.Nodes
				entry.SimplexIters = r.Stats.SimplexIters
				entry.PresolveRows = r.Stats.PresolveRows
				entry.PresolveCols = r.Stats.PresolveCols
				entry.PresolveTightenings = r.Stats.PresolveTightenings
				entry.CutsAdded = r.Stats.CutsAdded
				entry.CutsActive = r.Stats.CutsActive
				entry.BranchProbes = r.Stats.BranchProbes
				entry.ReliableVars = r.Stats.ReliableVars
				entry.BlandIters = r.Stats.BlandIters
				entry.Fallbacks = r.Stats.Fallbacks
			}
			sj.PerFile = append(sj.PerFile, entry)
		}
	}
	return sum.Report(), sj, nil
}

// tracingReport measures the observability tax: the full corpus sweep once
// with tracing disabled — the production default, where StartSpan on an
// untraced context is one map lookup and a nil check — and once under a
// force-sampled recording trace that exercises every span and event site in
// the batch/solver stack. Each pass gets a fresh engine so neither inherits
// the other's memo. The disabled per-file numbers land in BENCH.json under
// "tracing/" and gate in benchcmp exactly like corpus files.
func tracingReport(dir string, parallel int) (string, *tracingJSON, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	rsOpts := rs.Options{Method: rs.MethodExactBB, SkipWitness: true}
	runOnce := func(ctx context.Context) ([]batch.Result, time.Duration, error) {
		src, err := batch.Dir(dir)
		if err != nil {
			return nil, 0, err
		}
		eng := batch.New(batch.Options{Parallel: parallel, RS: rsOpts})
		start := time.Now()
		results, err := eng.Collect(ctx, src)
		return results, time.Since(start), err
	}

	disResults, disWall, err := runOnce(context.Background())
	if err != nil {
		return "", nil, err
	}
	tracer := obs.NewTracer(obs.Config{Service: "rsbench", SampleRate: 1})
	tctx, root := tracer.StartRequest(context.Background(), "bench.sweep", obs.Link{}, true)
	defer root.End()
	enResults, enWall, err := runOnce(tctx)
	if err != nil {
		return "", nil, err
	}
	root.End()
	spans := tracer.Collect(root.TraceID())
	events := 0
	for _, sp := range spans {
		events += len(sp.Events)
	}

	tj := &tracingJSON{
		Dir:        dir,
		Parallel:   parallel,
		DisabledNs: int64(disWall),
		EnabledNs:  int64(enWall),
		Spans:      len(spans),
		Events:     events,
	}
	if disWall > 0 {
		tj.OverheadPct = (float64(enWall) - float64(disWall)) / float64(disWall) * 100
	}
	enByName := make(map[string]time.Duration, len(enResults))
	for _, res := range enResults {
		enByName[res.Name] = res.Elapsed
	}
	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	add("Tracing overhead on the corpus sweep (%s, parallel %d)\n", dir, parallel)
	add("%-40s %12s %12s %7s\n", "FILE", "OFF ns/op", "ON ns/op", "RATIO")
	for _, res := range disResults {
		file := corpusFileJSON{Name: res.Name, NsOp: int64(res.Elapsed)}
		if res.Err != nil {
			file.Error = res.Err.Error()
			tj.PerFile = append(tj.PerFile, file)
			add("%-40s %v\n", res.Name, res.Err)
			continue
		}
		if res.Loop != nil {
			file.Nodes = len(res.Loop.Nodes())
		} else {
			file.Nodes = res.Graph.NumNodes()
		}
		tj.PerFile = append(tj.PerFile, file)
		on := enByName[res.Name]
		ratio := 0.0
		if res.Elapsed > 0 {
			ratio = float64(on) / float64(res.Elapsed)
		}
		add("%-40s %12d %12d %6.2fx\n", res.Name, int64(res.Elapsed), int64(on), ratio)
	}
	add("tracing sweep: disabled %v, enabled %v (%+.1f%%), %d spans / %d events recorded\n",
		disWall.Round(time.Millisecond), enWall.Round(time.Millisecond), tj.OverheadPct, len(spans), events)
	return string(b), tj, nil
}

// corpusReport shards exact RS analysis of every corpus file across the
// batch engine, once sequentially and once with the requested parallelism,
// and reports per-file saturations plus the wall-clock speedup and memo
// behavior of the parallel run.
func corpusReport(dir string, parallel int) (string, *corpusJSON, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	rsOpts := rs.Options{Method: rs.MethodExactBB, SkipWitness: true}
	runOnce := func(workers int) ([]batch.Result, batch.Stats, time.Duration, error) {
		src, err := batch.Dir(dir)
		if err != nil {
			return nil, batch.Stats{}, 0, err
		}
		eng := batch.New(batch.Options{Parallel: workers, RS: rsOpts})
		start := time.Now()
		results, err := eng.Collect(context.Background(), src)
		return results, eng.Stats(), time.Since(start), err
	}
	seqResults, _, seqTime, err := runOnce(1)
	if err != nil {
		return "", nil, err
	}
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	parResults, stats, parTime, err := runOnce(parallel)
	if err != nil {
		return "", nil, err
	}
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	cj := &corpusJSON{
		Dir:          dir,
		Files:        len(parResults),
		Parallel:     parallel,
		SequentialNs: int64(seqTime),
		ParallelNs:   int64(parTime),
		Speedup:      float64(seqTime) / float64(parTime),
		AllocBytes:   msAfter.TotalAlloc - msBefore.TotalAlloc,
		Mallocs:      msAfter.Mallocs - msBefore.Mallocs,
		MemoHits:     stats.Hits,
		MemoMisses:   stats.Misses,
	}
	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	add("Corpus batch analysis: %s (%d files, method %s)\n", dir, len(parResults), rsOpts.Method)
	add("%-40s %-8s %s\n", "FILE", "NODES", "RS per type")
	for _, res := range parResults {
		file := corpusFileJSON{Name: res.Name, NsOp: int64(res.Elapsed)}
		if res.Err != nil {
			file.Error = res.Err.Error()
			cj.PerFile = append(cj.PerFile, file)
			add("%-40s %v\n", res.Name, res.Err)
			continue
		}
		line := ""
		if res.Loop != nil {
			// Loop kernels in the corpus run the periodic window sweep;
			// report the converged per-iteration delta as the RS column.
			file.Nodes = len(res.Loop.Nodes())
			file.RS = make(map[string]int, len(res.Cyclic))
			types := make([]string, 0, len(res.Cyclic))
			for t, r := range res.Cyclic {
				types = append(types, string(t))
				file.RS[string(t)] = r.PerIter
			}
			sort.Strings(types)
			for _, t := range types {
				line += fmt.Sprintf("%s=Δ%d/iter ", t, res.Cyclic[ddg.RegType(t)].PerIter)
			}
		} else {
			file.Nodes = res.Graph.NumNodes()
			file.RS = make(map[string]int, len(res.RS))
			types := make([]string, 0, len(res.RS))
			for t, r := range res.RS {
				types = append(types, string(t))
				file.RS[string(t)] = r.RS
			}
			sort.Strings(types)
			for _, t := range types {
				line += fmt.Sprintf("%s=%d ", t, res.RS[ddg.RegType(t)].RS)
			}
		}
		cj.PerFile = append(cj.PerFile, file)
		add("%-40s %-8d %s\n", res.Name, file.Nodes, line)
	}
	add("sequential: %v   parallel(%d): %v   speedup %.2fx\n",
		seqTime.Round(time.Millisecond), parallel, parTime.Round(time.Millisecond),
		float64(seqTime)/float64(parTime))
	add("memo: %d hits, %d misses across %d RS computations\n",
		stats.Hits, stats.Misses, stats.Hits+stats.Misses)
	cs := ir.Stats()
	add("ir interner: %d hits, %d misses, %d evictions, %d snapshots resident (~%d bytes)\n",
		cs.Hits, cs.Misses, cs.Evictions, cs.Entries, cs.ResidentBytes)
	if len(seqResults) != len(parResults) {
		add("WARNING: sequential and parallel runs disagree on result count (%d vs %d)\n",
			len(seqResults), len(parResults))
	}
	return string(b), cj, nil
}

func parseMachine(s string) (ddg.MachineKind, error) {
	switch s {
	case "superscalar":
		return ddg.Superscalar, nil
	case "vliw":
		return ddg.VLIW, nil
	case "epic":
		return ddg.EPIC, nil
	}
	return 0, fmt.Errorf("unknown machine %q", s)
}
