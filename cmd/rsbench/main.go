// Command rsbench regenerates the paper's evaluation: every experiment of
// DESIGN.md's per-experiment index (E1–E8), printed as tables with the
// paper's reference numbers alongside.
//
// Usage:
//
//	rsbench                       # run everything on the superscalar model
//	rsbench -exp reduce -random 40
//	rsbench -exp rs -machine vliw
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"regsat/internal/ddg"
	"regsat/internal/experiments"
	"regsat/internal/lp"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all|pipeline|fig2|rs|reduce|size|time|versus|thm42")
		machine = flag.String("machine", "superscalar", "machine kind: superscalar|vliw|epic")
		random  = flag.Int("random", 20, "number of random loop bodies added to the kernel suite")
		seed    = flag.Int64("seed", 2004, "random population seed")
		maxVals = flag.Int("maxvalues", 12, "skip cases with more values than this (exactness budget)")
	)
	flag.Parse()

	mk, err := parseMachine(*machine)
	if err != nil {
		fatal(err)
	}
	pop := experiments.Population{
		Machine:      mk,
		RandomGraphs: *random,
		Seed:         *seed,
		MaxValues:    *maxVals,
	}

	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		report, err := f()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(report)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig2", func() (string, error) {
		r, err := experiments.Figure2()
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("pipeline", func() (string, error) {
		r, err := experiments.Pipeline(pop)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("rs", func() (string, error) {
		r, err := experiments.RSOptimality(pop)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("reduce", func() (string, error) {
		p := pop
		if p.MaxValues > 10 {
			p.MaxValues = 10 // exact reduction budget
		}
		r, err := experiments.ReduceOptimality(p, 2)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("size", func() (string, error) {
		r, err := experiments.ModelSize(pop)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("time", func() (string, error) {
		r, err := experiments.Timing(pop, 6, lp.Params{MaxNodes: 200000, TimeLimit: 30 * time.Second})
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("versus", func() (string, error) {
		p := pop
		if p.MaxValues > 10 {
			p.MaxValues = 10
		}
		r, err := experiments.Versus(p)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("thm42", func() (string, error) {
		r, err := experiments.Theorem42(pop, 3, *seed)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
}

func parseMachine(s string) (ddg.MachineKind, error) {
	switch s {
	case "superscalar":
		return ddg.Superscalar, nil
	case "vliw":
		return ddg.VLIW, nil
	case "epic":
		return ddg.EPIC, nil
	}
	return 0, fmt.Errorf("unknown machine %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsbench:", err)
	os.Exit(1)
}
