// Command rsbench regenerates the paper's evaluation: every experiment of
// DESIGN.md's per-experiment index (E1–E8), printed as tables with the
// paper's reference numbers alongside.
//
// Usage:
//
//	rsbench                       # run everything on the superscalar model
//	rsbench -exp reduce -random 40
//	rsbench -exp rs -machine vliw
//	rsbench -exp corpus -dir testdata -parallel 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"regsat/internal/batch"
	"regsat/internal/ddg"
	"regsat/internal/experiments"
	"regsat/internal/ir"
	"regsat/internal/rs"
	"regsat/internal/solver"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all|pipeline|fig2|rs|reduce|size|time|versus|thm42, or corpus/solver (need -dir; not part of all)")
		machine  = flag.String("machine", "superscalar", "machine kind: superscalar|vliw|epic")
		random   = flag.Int("random", 20, "number of random loop bodies added to the kernel suite")
		seed     = flag.Int64("seed", 2004, "random population seed")
		maxVals  = flag.Int("maxvalues", 12, "skip cases with more values than this (exactness budget)")
		dir      = flag.String("dir", "testdata", "DDG corpus directory for -exp corpus/solver")
		parallel = flag.Int("parallel", 0, "worker count for -exp corpus (0 = GOMAXPROCS)")
		backend  = flag.String("solver", "", "MILP backend for intLP solves: dense|sparse|parallel (default sparse)")
		profile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
	)
	flag.Parse()

	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	mk, err := parseMachine(*machine)
	if err != nil {
		fatal(err)
	}
	pop := experiments.Population{
		Machine:      mk,
		RandomGraphs: *random,
		Seed:         *seed,
		MaxValues:    *maxVals,
	}

	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		report, err := f()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(report)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig2", func() (string, error) {
		r, err := experiments.Figure2()
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("pipeline", func() (string, error) {
		r, err := experiments.Pipeline(pop)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("rs", func() (string, error) {
		r, err := experiments.RSOptimality(pop)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("reduce", func() (string, error) {
		p := pop
		if p.MaxValues > 10 {
			p.MaxValues = 10 // exact reduction budget
		}
		r, err := experiments.ReduceOptimality(p, 2)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("size", func() (string, error) {
		r, err := experiments.ModelSize(pop)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("time", func() (string, error) {
		r, err := experiments.Timing(pop, 6, solver.Options{
			Backend: *backend, MaxNodes: 200000, TimeLimit: 30 * time.Second})
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("versus", func() (string, error) {
		p := pop
		if p.MaxValues > 10 {
			p.MaxValues = 10
		}
		r, err := experiments.Versus(p)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("thm42", func() (string, error) {
		r, err := experiments.Theorem42(pop, 3, *seed)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	// The corpus and solver experiments read -dir from disk, so they only run
	// when asked for explicitly: a plain `rsbench` must keep working from any
	// directory.
	if *exp == "corpus" {
		start := time.Now()
		report, err := corpusReport(*dir, *parallel)
		if err != nil {
			fatal(fmt.Errorf("corpus: %w", err))
		}
		fmt.Println(report)
		fmt.Printf("[corpus completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *exp == "solver" {
		start := time.Now()
		report, err := solverReport(*dir, *maxVals)
		if err != nil {
			fatal(fmt.Errorf("solver: %w", err))
		}
		fmt.Println(report)
		fmt.Printf("[solver completed in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}
}

// solverReport compares every registered MILP backend on the corpus: per
// instance, nodes explored, simplex iterations, warm-start hit rate, and
// wall clock, each backend verified against the combinatorial exact search.
func solverReport(dir string, maxValues int) (string, error) {
	src, err := batch.Dir(dir)
	if err != nil {
		return "", err
	}
	var graphs []*ddg.Graph
	var names []string
	for {
		it, ok := src.Next()
		if !ok {
			break
		}
		if it.Err != nil {
			return "", it.Err
		}
		if !it.Graph.Finalized() {
			if err := it.Graph.Finalize(); err != nil {
				return "", fmt.Errorf("%s: %w", it.Name, err)
			}
		}
		graphs = append(graphs, it.Graph)
		names = append(names, it.Name)
	}
	sum, err := experiments.SolverBench(context.Background(), graphs, names, nil, maxValues,
		solver.Options{MaxNodes: 400000, TimeLimit: 60 * time.Second})
	if err != nil {
		return "", err
	}
	return sum.Report(), nil
}

// corpusReport shards exact RS analysis of every corpus file across the
// batch engine, once sequentially and once with the requested parallelism,
// and reports per-file saturations plus the wall-clock speedup and memo
// behavior of the parallel run.
func corpusReport(dir string, parallel int) (string, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	rsOpts := rs.Options{Method: rs.MethodExactBB, SkipWitness: true}
	runOnce := func(workers int) ([]batch.Result, batch.Stats, time.Duration, error) {
		src, err := batch.Dir(dir)
		if err != nil {
			return nil, batch.Stats{}, 0, err
		}
		eng := batch.New(batch.Options{Parallel: workers, RS: rsOpts})
		start := time.Now()
		results, err := eng.Collect(context.Background(), src)
		return results, eng.Stats(), time.Since(start), err
	}
	seqResults, _, seqTime, err := runOnce(1)
	if err != nil {
		return "", err
	}
	parResults, stats, parTime, err := runOnce(parallel)
	if err != nil {
		return "", err
	}

	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	add("Corpus batch analysis: %s (%d files, method %s)\n", dir, len(parResults), rsOpts.Method)
	add("%-40s %-8s %s\n", "FILE", "NODES", "RS per type")
	for _, res := range parResults {
		if res.Err != nil {
			add("%-40s %v\n", res.Name, res.Err)
			continue
		}
		types := make([]string, 0, len(res.RS))
		for t := range res.RS {
			types = append(types, string(t))
		}
		sort.Strings(types)
		line := ""
		for _, t := range types {
			line += fmt.Sprintf("%s=%d ", t, res.RS[ddg.RegType(t)].RS)
		}
		add("%-40s %-8d %s\n", res.Name, res.Graph.NumNodes(), line)
	}
	add("sequential: %v   parallel(%d): %v   speedup %.2fx\n",
		seqTime.Round(time.Millisecond), parallel, parTime.Round(time.Millisecond),
		float64(seqTime)/float64(parTime))
	add("memo: %d hits, %d misses across %d RS computations\n",
		stats.Hits, stats.Misses, stats.Hits+stats.Misses)
	cs := ir.Stats()
	add("ir interner: %d hits, %d misses, %d snapshots resident\n",
		cs.Hits, cs.Misses, cs.Entries)
	if len(seqResults) != len(parResults) {
		add("WARNING: sequential and parallel runs disagree on result count (%d vs %d)\n",
			len(seqResults), len(parResults))
	}
	return string(b), nil
}

func parseMachine(s string) (ddg.MachineKind, error) {
	switch s {
	case "superscalar":
		return ddg.Superscalar, nil
	case "vliw":
		return ddg.VLIW, nil
	case "epic":
		return ddg.EPIC, nil
	}
	return 0, fmt.Errorf("unknown machine %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsbench:", err)
	os.Exit(1)
}
