// Command rsvet runs the repo's custom static analysis suite — the
// soundness invariants the type system cannot express (snapshot
// immutability, undo-trail balance, context threading, fingerprint cache
// keys, determinism, lock discipline). See docs/STATIC_ANALYSIS.md.
//
// Two modes:
//
//	rsvet [-json] [-list] [packages]   pattern mode (default ./...)
//	go vet -vettool=$(which rsvet) ./...   vet-tool mode (unitchecker protocol)
//
// Exit codes follow go vet: 0 clean, 1 internal error, nonzero on findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"regsat/internal/analysis"
	"regsat/internal/analysis/framework"
)

func main() {
	// Vet-tool invocations (-V=full, -flags, *.cfg) bypass flag parsing:
	// the go command owns that argument grammar.
	if handled, code := framework.Unitchecker("rsvet", analysis.Suite(), os.Args[1:], os.Stdout, os.Stderr); handled {
		os.Exit(code)
	}
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != errFindings {
			fmt.Fprintln(os.Stderr, "rsvet:", err)
		}
		os.Exit(1)
	}
}

// errFindings marks a clean run that found violations (already printed).
var errFindings = fmt.Errorf("findings reported")

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the suite's analyzers and exit")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rsvet [-json] [-list] [-C dir] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the regsat static analysis suite (default pattern ./...).\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil // -h is not a failure (house CLI convention)
		}
		return err
	}
	if *list {
		for _, a := range analysis.Suite() {
			summary, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, summary)
		}
		return nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := framework.Run(*dir, analysis.Suite(), patterns)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []framework.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s: %s: %s\n", f.Position, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return errFindings
	}
	return nil
}
