package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"regsat/internal/analysis/framework"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatalf("run -list: %v (stderr: %s)", err, errb.String())
	}
	for _, name := range []string{"irimmutable", "undobalance", "ctxthread", "fpkey", "nodeterminism", "lockdiscipline"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestRunRepoClean drives the binary's own package as a smoke test: rsvet
// over a clean package exits without error and -json emits a valid array.
func TestRunRepoClean(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-json", "."}, &out, &errb); err != nil {
		t.Fatalf("run -json .: %v\nstdout: %s\nstderr: %s", err, out.String(), errb.String())
	}
	var findings []framework.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("unexpected findings in cmd/rsvet: %+v", findings)
	}
}

func TestUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errb); err == nil {
		t.Fatal("expected flag error")
	}
}

func TestHelpIsNotAFailure(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Fatalf("-h must exit 0 like every CLI here: %v", err)
	}
	if !strings.Contains(errb.String(), "usage: rsvet") {
		t.Errorf("-h did not print usage:\n%s", errb.String())
	}
}
