package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsat/internal/benchcmp"
	"regsat/internal/service"
)

// startFleet boots n in-process rsd replicas in cluster mode and returns
// their base URLs.
func startFleet(t *testing.T, n int) []string {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := 0; i < n; i++ {
		s, err := service.New(service.Config{Peers: urls, Self: urls[i]})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewUnstartedServer(s.Handler())
		hs.Listener.Close()
		hs.Listener = listeners[i]
		hs.Start()
		t.Cleanup(hs.Close)
	}
	return urls
}

// TestLoadHarnessEndToEnd: rsload against a live 3-replica fleet must
// complete with zero errors, report a perfect shard-local rate (affinity
// routing plus a warm pass), and write a BENCH.json whose load section
// benchcmp can read back.
func TestLoadHarnessEndToEnd(t *testing.T) {
	urls := startFleet(t, 3)
	jsonPath := filepath.Join(t.TempDir(), "BENCH.json")

	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-targets", strings.Join(urls, ","),
		"-qps", "200",
		"-duration", "600ms",
		"-families", "unroll",
		"-fam-count", "4",
		"-warm",
		"-label", "smoke",
		"-json", jsonPath,
		"-min-shard-local", "0.9",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("rsload failed: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"latency p50", "shard-local hit rate", "wrote"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchJSON
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Load == nil {
		t.Fatal("BENCH.json has no load section")
	}
	if doc.Load.Errors != 0 {
		t.Fatalf("timed run had %d errors", doc.Load.Errors)
	}
	if doc.Load.Requests == 0 {
		t.Fatal("timed run issued no requests")
	}
	if doc.Load.ShardLocalRate < 0.9 {
		t.Fatalf("shard-local rate %.3f below 0.9 with affinity routing", doc.Load.ShardLocalRate)
	}
	if len(doc.Load.PerFile) != 3 {
		t.Fatalf("want 3 quantile entries, got %+v", doc.Load.PerFile)
	}
	for _, e := range doc.Load.PerFile {
		if !strings.HasPrefix(e.Name, "smoke/") || e.NsOp <= 0 {
			t.Errorf("bad quantile entry %+v", e)
		}
	}

	// The written file must round-trip through benchcmp with the load
	// entries visible under the load/ namespace.
	runDoc, err := benchcmp.Load(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	diff := benchcmp.Compare(runDoc, runDoc)
	if len(diff.Files) != 3 || diff.MedianRatio != 1 {
		t.Fatalf("benchcmp self-compare over the load sweep: %+v", diff)
	}
}

func TestScrapeCounter(t *testing.T) {
	body := "# TYPE regsat_cluster_local_items_total counter\n" +
		"regsat_cluster_local_items_total 42\n" +
		"regsat_cluster_remote_items_total 7\n"
	if v, ok := scrapeCounter(body, "regsat_cluster_local_items_total"); !ok || v != 42 {
		t.Fatalf("local = %d,%v", v, ok)
	}
	if v, ok := scrapeCounter(body, "regsat_cluster_remote_items_total"); !ok || v != 7 {
		t.Fatalf("remote = %d,%v", v, ok)
	}
	if _, ok := scrapeCounter(body, "regsat_cluster_forwards_sent_total"); ok {
		t.Fatal("absent counter reported present")
	}
}

// TestShardDeltaSurvivesRestart: a counter that went backwards means the
// replica restarted between scrapes; its post-restart value is the delta.
func TestShardDeltaSurvivesRestart(t *testing.T) {
	before := map[string]shardCounts{
		"a": {local: 100, remote: 10, ok: true},
		"b": {local: 500, remote: 50, ok: true},
		"c": {ok: false}, // unreachable on the first scrape
	}
	after := map[string]shardCounts{
		"a": {local: 150, remote: 12, ok: true}, // normal movement
		"b": {local: 30, remote: 1, ok: true},   // restarted in between
		"c": {local: 20, remote: 2, ok: true},   // came up mid-run
	}
	local, remote := shardDelta(before, after)
	if local != 50+30+20 || remote != 2+1+2 {
		t.Fatalf("delta = %d/%d, want 100/5", local, remote)
	}
}

func TestBuildCorpusValidation(t *testing.T) {
	if _, err := buildCorpus("no-such-family", 2, 1); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := buildCorpus("", 0, 1); err == nil {
		t.Error("zero fam-count accepted")
	}
	corpus, err := buildCorpus("unroll,grid", 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 6 {
		t.Fatalf("corpus size %d, want 6", len(corpus))
	}
	seen := map[string]bool{}
	for _, it := range corpus {
		if it.fp == "" || it.ddg == "" {
			t.Fatalf("item %s not rendered: %+v", it.name, it)
		}
		if seen[it.fp] {
			t.Fatalf("duplicate fingerprint %s; seeds must vary structure", it.fp)
		}
		seen[it.fp] = true
	}
}
