// Command rsload is the rsd load harness: it drives a fleet of analysis
// daemons with a sustained, open-loop stream of analyze requests over a
// generated-family corpus and reports the latency distribution (p50, p99,
// p999 from an HDR-style histogram), achieved QPS, and the fleet's
// shard-local hit rate, optionally writing the numbers into a BENCH.json
// the benchcmp gate can diff against a baseline.
//
// Usage:
//
//	rsload -targets http://h1:8735,http://h2:8735,http://h3:8735 \
//	       -qps 50 -duration 30s -families unroll,grid -json BENCH.json
//
// The arrival process is open-loop: requests launch on a fixed tick
// regardless of how many are still in flight (bounded by -max-outstanding;
// arrivals beyond the bound are dropped and counted, not queued), so a
// slow fleet shows up as rising latency and drops instead of a silently
// falling request rate.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"regsat/client"
	"regsat/internal/gen"
	"regsat/internal/hdrhist"
	"regsat/internal/ir"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rsload:", err)
		os.Exit(1)
	}
}

// workItem is one corpus graph, pre-rendered for the wire.
type workItem struct {
	name string
	ddg  string
	fp   string
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		targets       = fs.String("targets", "", "comma-separated rsd base URLs (required)")
		qps           = fs.Float64("qps", 20, "open-loop arrival rate (requests/second)")
		duration      = fs.Duration("duration", 10*time.Second, "timed run length")
		families      = fs.String("families", "", "comma-separated generator families (empty = all)")
		famCount      = fs.Int("fam-count", 8, "graphs generated per family")
		seed          = fs.Int64("seed", 1, "base generation seed")
		method        = fs.String("method", "greedy", "analysis method: greedy, bb, or ilp")
		reqTimeout    = fs.Duration("req-timeout", 30*time.Second, "per-request deadline")
		maxOut        = fs.Int("max-outstanding", 256, "in-flight bound; arrivals beyond it are dropped and counted")
		hedge         = fs.Bool("hedge", false, "hedge slow requests with a second replica")
		hedgeDelay    = fs.Duration("hedge-delay", 0, "fixed hedge delay (0 = adaptive p99)")
		vnodes        = fs.Int("vnodes", 0, "ring virtual nodes per member (must match the fleet)")
		label         = fs.String("label", "cluster", "name prefix of the BENCH.json load entries")
		jsonPath      = fs.String("json", "", "write the machine-readable summary to this BENCH.json file")
		warm          = fs.Bool("warm", false, "run one untimed pass over the corpus first (prime caches)")
		maxErrors     = fs.Int64("max-errors", 0, "fail when more than this many timed requests errored")
		minShardLocal = fs.Float64("min-shard-local", 0, "fail when the fleet's shard-local hit rate over the timed run is below this (0 = no check)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *targets == "" {
		return errors.New("-targets is required")
	}
	var members []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			members = append(members, t)
		}
	}
	if *qps <= 0 {
		return fmt.Errorf("-qps must be positive (got %v)", *qps)
	}
	switch *method {
	case "greedy", "bb", "ilp":
	default:
		return fmt.Errorf("unknown -method %q (want greedy, bb, or ilp)", *method)
	}

	corpus, err := buildCorpus(*families, *famCount, *seed)
	if err != nil {
		return err
	}

	opts := client.ClusterOptions{VNodes: *vnodes}
	if *hedge {
		opts.Hedge = &client.HedgeOptions{Delay: *hedgeDelay}
	}
	cluster, err := client.NewCluster(members, opts)
	if err != nil {
		return err
	}
	reqOptions := client.AnalyzeOptions{Method: *method}

	fmt.Fprintf(stdout, "rsload: %d graphs over %d replicas, %.4g qps for %v\n",
		len(corpus), len(cluster.Members()), *qps, *duration)

	if *warm {
		warmErrs := 0
		for _, it := range corpus {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := oneRequest(ctx, cluster, it, reqOptions, *reqTimeout); err != nil {
				warmErrs++
				fmt.Fprintf(stderr, "rsload: warm %s: %v\n", it.name, err)
			}
		}
		fmt.Fprintf(stdout, "rsload: warm pass done (%d/%d ok)\n", len(corpus)-warmErrs, len(corpus))
	}

	before := scrapeShardCounts(ctx, cluster)

	hist := hdrhist.New()
	var requests, reqErrors, dropped, outstanding atomic.Int64
	var errOnce sync.Once
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / *qps)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	start := time.Now()
	deadline := time.NewTimer(*duration)
	defer deadline.Stop()

	next := 0
arrivals:
	for {
		select {
		case <-ctx.Done():
			break arrivals
		case <-deadline.C:
			break arrivals
		case <-ticker.C:
			it := corpus[next%len(corpus)]
			next++
			if outstanding.Load() >= int64(*maxOut) {
				dropped.Add(1)
				continue
			}
			outstanding.Add(1)
			wg.Add(1)
			go func(it workItem) {
				defer wg.Done()
				defer outstanding.Add(-1)
				t0 := time.Now()
				err := oneRequest(ctx, cluster, it, reqOptions, *reqTimeout)
				requests.Add(1)
				if err != nil {
					reqErrors.Add(1)
					errOnce.Do(func() { fmt.Fprintf(stderr, "rsload: first error: %s: %v\n", it.name, err) })
					return
				}
				hist.RecordDuration(time.Since(t0))
			}(it)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	after := scrapeShardCounts(ctx, cluster)
	localDelta, remoteDelta := shardDelta(before, after)
	shardRate := -1.0
	if localDelta+remoteDelta > 0 {
		shardRate = float64(localDelta) / float64(localDelta+remoteDelta)
	}

	stats := cluster.Stats()
	ok := hist.Count()
	achieved := float64(ok) / elapsed.Seconds()
	p50, p99, p999 := hist.QuantileDuration(0.50), hist.QuantileDuration(0.99), hist.QuantileDuration(0.999)

	fmt.Fprintf(stdout, "rsload: %d requests in %v (%.4g qps ok), %d errors, %d dropped\n",
		requests.Load(), elapsed.Round(time.Millisecond), achieved, reqErrors.Load(), dropped.Load())
	fmt.Fprintf(stdout, "rsload: latency p50 %v  p99 %v  p999 %v  max %v\n",
		p50, p99, p999, time.Duration(hist.Max()))
	fmt.Fprintf(stdout, "rsload: failovers %d, hedges %d (wins %d)\n", stats.Failovers, stats.Hedges, stats.HedgeWins)
	if shardRate >= 0 {
		fmt.Fprintf(stdout, "rsload: shard-local hit rate %.1f%% (%d local / %d remote)\n",
			shardRate*100, localDelta, remoteDelta)
	} else {
		fmt.Fprintf(stdout, "rsload: shard-local hit rate unavailable (no cluster metrics scraped)\n")
	}

	if *jsonPath != "" {
		doc := benchJSON{
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Load: &loadJSON{
				Targets:        cluster.Members(),
				TargetQPS:      *qps,
				AchievedQPS:    achieved,
				DurationNs:     int64(elapsed),
				Requests:       requests.Load(),
				Errors:         reqErrors.Load(),
				Dropped:        dropped.Load(),
				Failovers:      stats.Failovers,
				Hedges:         stats.Hedges,
				HedgeWins:      stats.HedgeWins,
				ShardLocal:     localDelta,
				ShardRemote:    remoteDelta,
				ShardLocalRate: shardRate,
				MeanNs:         int64(hist.Mean()),
				MaxNs:          hist.Max(),
				PerFile: []loadEntry{
					{Name: *label + "/p50", NsOp: int64(p50)},
					{Name: *label + "/p99", NsOp: int64(p99)},
					{Name: *label + "/p999", NsOp: int64(p999)},
				},
			},
		}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "rsload: wrote %s\n", *jsonPath)
	}

	if reqErrors.Load() > *maxErrors {
		return fmt.Errorf("%d request errors exceed -max-errors %d", reqErrors.Load(), *maxErrors)
	}
	if *minShardLocal > 0 {
		if shardRate < 0 {
			return fmt.Errorf("-min-shard-local %.2f set but no cluster metrics were scraped", *minShardLocal)
		}
		if shardRate < *minShardLocal {
			return fmt.Errorf("shard-local hit rate %.3f below -min-shard-local %.2f", shardRate, *minShardLocal)
		}
	}
	return nil
}

// oneRequest submits a single-graph analyze carrying the fingerprint, so
// the cluster client routes it to the owning replica.
func oneRequest(ctx context.Context, cluster *client.Cluster, it workItem, opts client.AnalyzeOptions, timeout time.Duration) error {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := cluster.Analyze(rctx, &client.AnalyzeRequest{
		Graphs:  []client.GraphInput{{Name: it.name, DDG: it.ddg, Fingerprint: it.fp}},
		Options: opts,
	})
	if err != nil {
		return err
	}
	if resp.Error != "" {
		return fmt.Errorf("batch error: %s", resp.Error)
	}
	if len(resp.Items) != 1 {
		return fmt.Errorf("got %d items, want 1", len(resp.Items))
	}
	if resp.Items[0].Error != "" {
		return fmt.Errorf("item error: %s", resp.Items[0].Error)
	}
	return nil
}

// buildCorpus generates famCount graphs per requested family (family
// defaults, consecutive seeds) and pre-renders each for the wire.
func buildCorpus(famSpec string, famCount int, seed int64) ([]workItem, error) {
	if famCount <= 0 {
		return nil, fmt.Errorf("-fam-count must be positive (got %d)", famCount)
	}
	var fams []*gen.Family
	if famSpec == "" {
		fams = gen.Families()
	} else {
		for _, name := range strings.Split(famSpec, ",") {
			name = strings.TrimSpace(name)
			f, ok := gen.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown family %q (have %s)", name, strings.Join(gen.Names(), ", "))
			}
			fams = append(fams, f)
		}
	}
	var corpus []workItem
	for _, f := range fams {
		for i := 0; i < famCount; i++ {
			p := f.Defaults
			p.Seed = seed + int64(i)
			g, err := f.Generate(p)
			if err != nil {
				return nil, fmt.Errorf("generating %s[%d]: %w", f.Name, i, err)
			}
			corpus = append(corpus, workItem{
				name: fmt.Sprintf("%s-%d", f.Name, i),
				ddg:  g.Format(),
				fp:   ir.Fingerprint(g),
			})
		}
	}
	return corpus, nil
}

// shardCounts is one replica's cluster item counters at scrape time.
type shardCounts struct {
	local, remote int64
	ok            bool
}

// scrapeShardCounts reads every replica's regsat_cluster_{local,remote}
// counters. Unreachable replicas (mid-restart) are marked absent, not fatal.
func scrapeShardCounts(ctx context.Context, cluster *client.Cluster) map[string]shardCounts {
	out := map[string]shardCounts{}
	for _, m := range cluster.Members() {
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		body, err := cluster.Client(m).Metrics(sctx)
		cancel()
		if err != nil {
			out[m] = shardCounts{}
			continue
		}
		local, okl := scrapeCounter(body, "regsat_cluster_local_items_total")
		remote, okr := scrapeCounter(body, "regsat_cluster_remote_items_total")
		out[m] = shardCounts{local: local, remote: remote, ok: okl && okr}
	}
	return out
}

// shardDelta sums per-replica counter movement between two scrapes. A
// counter that went backwards means the replica restarted in between; its
// post-restart absolute value is the delta.
func shardDelta(before, after map[string]shardCounts) (local, remote int64) {
	for m, b := range before {
		a := after[m]
		if !a.ok {
			continue
		}
		dl, dr := a.local, a.remote
		if b.ok {
			if d := a.local - b.local; d >= 0 {
				dl = d
			}
			if d := a.remote - b.remote; d >= 0 {
				dr = d
			}
		}
		local += dl
		remote += dr
	}
	return local, remote
}

// scrapeCounter extracts one un-labeled counter from a Prometheus text
// exposition.
func scrapeCounter(body, name string) (int64, bool) {
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// benchJSON is rsload's -json schema: the same envelope rsbench writes,
// with only the load section populated, so benchcmp diffs the quantile
// entries (load/<label>/p50, …) exactly like per-file timings.
type benchJSON struct {
	GoVersion  string    `json:"goVersion"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Load       *loadJSON `json:"load,omitempty"`
}

type loadJSON struct {
	Targets        []string    `json:"targets"`
	TargetQPS      float64     `json:"targetQps"`
	AchievedQPS    float64     `json:"achievedQps"`
	DurationNs     int64       `json:"durationNs"`
	Requests       int64       `json:"requests"`
	Errors         int64       `json:"errors"`
	Dropped        int64       `json:"dropped"`
	Failovers      int64       `json:"failovers"`
	Hedges         int64       `json:"hedges"`
	HedgeWins      int64       `json:"hedgeWins"`
	ShardLocal     int64       `json:"shardLocal"`
	ShardRemote    int64       `json:"shardRemote"`
	ShardLocalRate float64     `json:"shardLocalRate"` // -1 when unavailable
	MeanNs         int64       `json:"meanNs"`
	MaxNs          int64       `json:"maxNs"`
	PerFile        []loadEntry `json:"perFile"`
}

type loadEntry struct {
	Name string `json:"name"`
	NsOp int64  `json:"nsOp"`
}
