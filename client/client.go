package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"regsat/internal/obs"
)

// ErrOverloaded is wrapped by errors returned when the daemon sheds load
// (HTTP 429: the admission queue is full). The concrete error is
// *OverloadedError, which carries the server's Retry-After suggestion;
// clients constructed with a Backoff retry these automatically.
var ErrOverloaded = errors.New("rsd: server overloaded")

// Client talks to one rsd daemon.
type Client struct {
	base    string
	hc      *http.Client
	header  http.Header
	backoff *Backoff
}

// Options configures a Client beyond the base URL.
type Options struct {
	// HTTPClient overrides http.DefaultClient (transport timeouts,
	// connection pooling policy).
	HTTPClient *http.Client
	// Header is added to every request. The daemon's cluster layer uses
	// this for its single-hop forwarding guard.
	Header http.Header
	// Backoff, when non-nil, enables built-in retry of overloaded (429)
	// responses with jittered exponential backoff honoring the server's
	// Retry-After header. Only shed requests are retried — the daemon
	// refused them before doing any work, so the retry is always safe.
	Backoff *Backoff
}

// New returns a client for the daemon at baseURL (e.g. "http://127.0.0.1:8735").
// httpClient nil uses http.DefaultClient; pass a custom one for transport
// timeouts or connection pooling policy.
func New(baseURL string, httpClient *http.Client) *Client {
	return NewWithOptions(baseURL, Options{HTTPClient: httpClient})
}

// NewWithOptions returns a client with extra configuration (headers on
// every request, built-in 429 backoff).
func NewWithOptions(baseURL string, opts Options) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
	if len(opts.Header) > 0 {
		c.header = opts.Header.Clone()
	}
	if opts.Backoff != nil {
		b := opts.Backoff.withDefaults()
		c.backoff = &b
	}
	return c
}

// BaseURL returns the normalized base URL this client talks to.
func (c *Client) BaseURL() string { return c.base }

// Analyze submits the request and returns the response. The context
// cancels the request server-side as well: the daemon threads it into
// in-flight solves. Check AnalyzeResponse.Error before treating Items as
// complete — a non-empty value means the batch was cut short and Items is
// only the finished prefix.
func (c *Client) Analyze(ctx context.Context, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	resp, err := c.post(ctx, "/v1/analyze", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("rsd: decoding response: %w", err)
	}
	return &out, nil
}

// AnalyzeStream submits the request with NDJSON streaming: fn is called for
// every item as the daemon completes it (in input order). The final run
// stats are returned once the stream ends. fn returning an error aborts the
// stream (and cancels the server-side batch via connection teardown).
func (c *Client) AnalyzeStream(ctx context.Context, req *AnalyzeRequest, fn func(*Item) error) (*RunStats, error) {
	resp, err := c.post(ctx, "/v1/analyze?stream=ndjson", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var stats *RunStats
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("rsd: decoding stream event: %w", err)
		}
		switch {
		case ev.Error != "":
			return nil, fmt.Errorf("rsd: %s", ev.Error)
		case ev.Item != nil:
			if err := fn(ev.Item); err != nil {
				return nil, err
			}
		case ev.Stats != nil:
			stats = ev.Stats
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rsd: reading stream: %w", err)
	}
	if stats == nil {
		return nil, fmt.Errorf("rsd: stream ended without final stats (truncated response?)")
	}
	return stats, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	resp, err := c.get(ctx, "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("rsd: decoding health: %w", err)
	}
	return &h, nil
}

// Ring fetches /v1/ring: the daemon's cluster topology (membership,
// virtual-node count, this replica's identity). On a single-process daemon
// Enabled is false and the member list is empty.
func (c *Client) Ring(ctx context.Context) (*RingInfo, error) {
	resp, err := c.get(ctx, "/v1/ring")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var info RingInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("rsd: decoding ring info: %w", err)
	}
	return &info, nil
}

// Trace fetches a recorded trace's spans from GET /v1/trace/{id} (NDJSON,
// one span per line). The daemon's trace ring is bounded: a trace that was
// recorded but since evicted returns a *StatusError with code 404.
func (c *Client) Trace(ctx context.Context, id string) ([]TraceSpan, error) {
	resp, err := c.get(ctx, "/v1/trace/"+id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var spans []TraceSpan
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sp TraceSpan
		if err := json.Unmarshal(line, &sp); err != nil {
			return nil, fmt.Errorf("rsd: decoding trace span: %w", err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rsd: reading trace: %w", err)
	}
	return spans, nil
}

// Metrics fetches the /metrics text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.get(ctx, "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return c.doRetry(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	return c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	})
}

// doRetry sends the request, retrying overloaded (429) responses under the
// client's backoff policy. build is called per attempt so each retry gets
// a fresh body reader. One correlation ID covers every attempt of a logical
// request, so the daemon's logs show the retries as one story.
func (c *Client) doRetry(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	attempts := 1
	var policy Backoff
	if c.backoff != nil {
		policy = *c.backoff
		attempts = policy.Attempts
	}
	reqID := obs.RequestIDFromContext(ctx)
	if reqID == "" && c.header.Get(obs.RequestIDHeader) == "" {
		reqID = obs.NewRequestID()
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, policy.retryWait(lastErr, attempt-1)); err != nil {
				return nil, lastErr
			}
		}
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.do(req, reqID)
		if err == nil || !errors.Is(err, ErrOverloaded) {
			return resp, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// do sends the request and converts non-2xx statuses into typed errors
// carrying the server's diagnostic and correlation ID: *OverloadedError
// (wrapping ErrOverloaded) for 429, *StatusError for everything else. The
// outgoing request carries the client's standing headers, the correlation
// ID, and — when the context holds an active obs span — a W3C traceparent
// header, which is how a trace originated here (or on a forwarding
// coordinator) continues on the serving replica.
func (c *Client) do(req *http.Request, reqID string) (*http.Response, error) {
	for k, vs := range c.header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if reqID != "" {
		req.Header.Set(obs.RequestIDHeader, reqID)
	}
	obs.Inject(req.Context(), req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 == 2 {
		return resp, nil
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	text, respID := parseErrorBody(raw)
	if respID == "" {
		respID = resp.Header.Get(obs.RequestIDHeader)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return nil, &OverloadedError{RetryAfter: retryAfter(resp), Message: text, RequestID: respID}
	}
	return nil, &StatusError{Code: resp.StatusCode, Message: text, RequestID: respID}
}

// parseErrorBody reads the daemon's JSON error payload
// ({"error": "...", "requestId": "..."}), falling back to the raw text for
// plain-text responses (proxies, older daemons).
func parseErrorBody(raw []byte) (msg, reqID string) {
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	if err := json.Unmarshal(raw, &body); err == nil && body.Error != "" {
		return body.Error, body.RequestID
	}
	return strings.TrimSpace(string(raw)), ""
}
