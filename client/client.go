package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// ErrOverloaded is wrapped by errors returned when the daemon sheds load
// (HTTP 429: the admission queue is full). Callers back off and retry.
var ErrOverloaded = errors.New("rsd: server overloaded")

// Client talks to one rsd daemon.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the daemon at baseURL (e.g. "http://127.0.0.1:8735").
// httpClient nil uses http.DefaultClient; pass a custom one for transport
// timeouts or connection pooling policy.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// Analyze submits the request and returns the response. The context
// cancels the request server-side as well: the daemon threads it into
// in-flight solves. Check AnalyzeResponse.Error before treating Items as
// complete — a non-empty value means the batch was cut short and Items is
// only the finished prefix.
func (c *Client) Analyze(ctx context.Context, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	resp, err := c.post(ctx, "/v1/analyze", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("rsd: decoding response: %w", err)
	}
	return &out, nil
}

// AnalyzeStream submits the request with NDJSON streaming: fn is called for
// every item as the daemon completes it (in input order). The final run
// stats are returned once the stream ends. fn returning an error aborts the
// stream (and cancels the server-side batch via connection teardown).
func (c *Client) AnalyzeStream(ctx context.Context, req *AnalyzeRequest, fn func(*Item) error) (*RunStats, error) {
	resp, err := c.post(ctx, "/v1/analyze?stream=ndjson", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var stats *RunStats
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("rsd: decoding stream event: %w", err)
		}
		switch {
		case ev.Error != "":
			return nil, fmt.Errorf("rsd: %s", ev.Error)
		case ev.Item != nil:
			if err := fn(ev.Item); err != nil {
				return nil, err
			}
		case ev.Stats != nil:
			stats = ev.Stats
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rsd: reading stream: %w", err)
	}
	if stats == nil {
		return nil, fmt.Errorf("rsd: stream ended without final stats (truncated response?)")
	}
	return stats, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	resp, err := c.get(ctx, "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("rsd: decoding health: %w", err)
	}
	return &h, nil
}

// Metrics fetches the /metrics text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.get(ctx, "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req)
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// do sends the request and converts non-2xx statuses into errors carrying
// the server's plain-text diagnostic.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 == 2 {
		return resp, nil
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	text := strings.TrimSpace(string(msg))
	if resp.StatusCode == http.StatusTooManyRequests {
		return nil, fmt.Errorf("%w: %s", ErrOverloaded, text)
	}
	return nil, fmt.Errorf("rsd: %s: %s", resp.Status, text)
}
