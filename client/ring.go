package client

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"strings"
)

// DefaultVNodes is the virtual-node count per ring member when a caller
// leaves it zero. 64 points per member keeps the per-member load imbalance
// of a uniform key population within a few percent while the ring stays
// small enough to rebuild on every membership change.
const DefaultVNodes = 64

// Ring is a consistent-hash ring with virtual nodes over cluster member
// base URLs, keyed by ir structural fingerprints (or any string). Both
// sides of the rsd cluster protocol share this implementation: every
// replica and every cluster-aware client builds the ring from the same
// member list and therefore agrees on which replica owns which
// fingerprint — that agreement is what turns N replicas into N shard-local
// caches instead of N copies of the same cache.
//
// The ring is immutable after construction; membership changes build a new
// Ring. Construction is deterministic: member order, duplicates, and
// trailing slashes do not affect the resulting ownership map.
type Ring struct {
	members []string
	vnodes  int
	hashes  []uint64 // sorted virtual-node positions
	owners  []string // owners[i] is the member at hashes[i]
}

// NormalizeMember canonicalizes a member base URL for ring and map
// identity: surrounding whitespace and trailing slashes are dropped.
// Every Ring/Cluster entry point applies it, so "http://a:1/" and
// "http://a:1" name the same member.
func NormalizeMember(m string) string {
	return strings.TrimRight(strings.TrimSpace(m), "/")
}

// NewRing builds the ring over the given members with vnodes virtual nodes
// per member (0 = DefaultVNodes). Members are normalized, deduplicated,
// and sorted, so any permutation of the same list yields an identical
// ring. An empty member list yields a ring whose Owner is always "".
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	var ms []string
	for _, m := range members {
		m = NormalizeMember(m)
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		ms = append(ms, m)
	}
	sort.Strings(ms)

	r := &Ring{members: ms, vnodes: vnodes}
	type point struct {
		h     uint64
		owner string
	}
	points := make([]point, 0, len(ms)*vnodes)
	for _, m := range ms {
		for i := 0; i < vnodes; i++ {
			points = append(points, point{h: ringHash(m + "#" + strconv.Itoa(i)), owner: m})
		}
	}
	// Ties (astronomically unlikely with 64-bit points) break on the owner
	// name so the ring stays order-independent.
	sort.Slice(points, func(i, j int) bool {
		if points[i].h != points[j].h {
			return points[i].h < points[j].h
		}
		return points[i].owner < points[j].owner
	})
	r.hashes = make([]uint64, len(points))
	r.owners = make([]string, len(points))
	for i, p := range points {
		r.hashes[i] = p.h
		r.owners[i] = p.owner
	}
	return r
}

// ringHash positions a string on the ring: the first 8 bytes of its
// SHA-256. A cryptographic hash costs nanoseconds here and guarantees the
// uniformity the balance of the whole cluster rests on, for both the
// random-looking fingerprints and the very regular "host#index" vnode
// labels.
func ringHash(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// Owner returns the member owning key: the first virtual node at or after
// the key's position, wrapping at the top. Empty rings own nothing ("").
func (r *Ring) Owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i]
}

// Members returns the normalized, sorted member list.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Contains reports whether member (after normalization) is on the ring.
func (r *Ring) Contains(member string) bool {
	member = NormalizeMember(member)
	for _, m := range r.members {
		if m == member {
			return true
		}
	}
	return false
}
