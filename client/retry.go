package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// OverloadedError is the concrete error behind ErrOverloaded: the daemon
// shed the request with HTTP 429 because its admission queue was full.
// RetryAfter carries the server's Retry-After suggestion when it sent one;
// the built-in Backoff honors it, and hand-rolled retry loops should too.
type OverloadedError struct {
	// RetryAfter is the server-suggested wait before retrying (zero when
	// the response carried no usable Retry-After header).
	RetryAfter time.Duration
	// Message is the server's diagnostic.
	Message string
	// RequestID is the correlation ID of the shed request — the handle for
	// finding it in the daemon's logs.
	RequestID string
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("%v: %s", ErrOverloaded, e.Message)
}

// Unwrap keeps errors.Is(err, ErrOverloaded) working for every caller that
// matched the sentinel before RetryAfter existed.
func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// StatusError is a non-2xx, non-429 response: the status code plus the
// server's plain-text diagnostic. Cluster failover uses the code to
// separate replica faults (5xx → try the next member) from request faults
// (4xx → give up immediately, every replica would refuse the same way).
type StatusError struct {
	Code    int
	Message string
	// RequestID is the failed request's correlation ID when the server
	// reported one.
	RequestID string
}

func (e *StatusError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("rsd: %d %s: %s (request %s)", e.Code, http.StatusText(e.Code), e.Message, e.RequestID)
	}
	return fmt.Sprintf("rsd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// Backoff is the client's jittered exponential retry policy for
// overloaded (429) responses. The zero value is ready to use with the
// defaults below; the policy sleeps max(server Retry-After, jittered
// exponential delay) between attempts, so a loaded daemon's explicit
// guidance is never undercut.
type Backoff struct {
	// Attempts is the total number of tries including the first
	// (0 = DefaultBackoffAttempts).
	Attempts int
	// Base is the first retry's nominal delay (0 = 25ms); each further
	// retry doubles it.
	Base time.Duration
	// Max caps the nominal delay (0 = 2s).
	Max time.Duration
}

// Backoff defaults.
const (
	DefaultBackoffAttempts = 4
	DefaultBackoffBase     = 25 * time.Millisecond
	DefaultBackoffMax      = 2 * time.Second
)

func (b Backoff) withDefaults() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = DefaultBackoffAttempts
	}
	if b.Base <= 0 {
		b.Base = DefaultBackoffBase
	}
	if b.Max <= 0 {
		b.Max = DefaultBackoffMax
	}
	return b
}

// delay computes the wait before retry number retry (0-based): the
// exponential delay with full-half jitter — uniformly drawn from
// [nominal/2, nominal] — so a thundering herd of rejected clients
// decorrelates instead of re-arriving in lockstep.
func (b Backoff) delay(retry int) time.Duration {
	b = b.withDefaults()
	nominal := b.Base << uint(retry)
	if nominal <= 0 || nominal > b.Max { // shifted past Max (or overflowed)
		nominal = b.Max
	}
	half := nominal / 2
	return half + time.Duration(jitterRand.Float64()*float64(nominal-half))
}

// jitterRand is the client package's jitter source: explicitly seeded,
// mutex-guarded. Jitter only needs decorrelation, not reproducibility.
var jitterRand = newLockedRand()

type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand() *lockedRand {
	return &lockedRand{r: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Float64()
}

func (l *lockedRand) Intn(n int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Intn(n)
}

// sleep waits for d or until the context ends, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfter extracts the wait suggested by a 429's Retry-After header.
// Only the delta-seconds form is parsed (it is what rsd emits); anything
// else yields zero.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryWait returns how long to wait before retry number retry of an
// overloaded request: the larger of the server's Retry-After and the
// policy's jittered exponential delay.
func (b Backoff) retryWait(err error, retry int) time.Duration {
	wait := b.delay(retry)
	var oe *OverloadedError
	if errors.As(err, &oe) && oe.RetryAfter > wait {
		wait = oe.RetryAfter
	}
	return wait
}
