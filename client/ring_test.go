package client

import (
	"fmt"
	"testing"
)

func TestRingDeterministicUnderPresentation(t *testing.T) {
	base := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	variants := []*Ring{
		NewRing([]string{"http://c:1", "http://a:1", "http://b:1"}, 0),
		NewRing([]string{"http://a:1/", " http://b:1 ", "http://c:1", "http://a:1"}, 0),
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("fp-%d", i)
		want := base.Owner(key)
		for vi, v := range variants {
			if got := v.Owner(key); got != want {
				t.Fatalf("variant %d: Owner(%q) = %q, want %q", vi, key, got, want)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(members, 0)
	counts := map[string]int{}
	const keys = 12000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("fingerprint-%d", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		// A perfectly balanced 3-way split is 33%; 64 vnodes keeps every
		// member within a loose band of it.
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.1f%% of keys, outside [15%%, 55%%]", m, share*100)
		}
	}
}

// TestRingConsistency: removing one member must only remap the keys it
// owned — every key owned by a survivor keeps its owner. This is the
// property that makes a rolling restart cheap: N-1/N of the shard map
// stays put.
func TestRingConsistency(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	full := NewRing(members, 0)
	without := NewRing(members[:3], 0) // drop d
	moved := 0
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("fp-%d", i)
		before := full.Owner(key)
		after := without.Owner(key)
		if before == "http://d:1" {
			if after == "http://d:1" {
				t.Fatalf("removed member still owns %q", key)
			}
			moved++
			continue
		}
		if after != before {
			t.Fatalf("key %q owned by survivor %q moved to %q after unrelated removal", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; balance test should have caught this")
	}
}

func TestRingEdgeCases(t *testing.T) {
	if owner := NewRing(nil, 0).Owner("x"); owner != "" {
		t.Errorf("empty ring owns %q", owner)
	}
	one := NewRing([]string{"http://only:1/"}, 8)
	if got := one.Owner("anything"); got != "http://only:1" {
		t.Errorf("single-member ring routed to %q", got)
	}
	if !one.Contains(" http://only:1/ ") {
		t.Error("Contains must normalize its argument")
	}
	if one.VNodes() != 8 {
		t.Errorf("VNodes = %d, want 8", one.VNodes())
	}
	if NewRing([]string{"a"}, 0).VNodes() != DefaultVNodes {
		t.Error("zero vnodes must default")
	}
}
