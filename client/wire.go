// Package client is the Go client for rsd, the register-saturation analysis
// daemon (internal/service, cmd/rsd). It also defines the daemon's wire
// types: plain JSON structs with no dependency on the analysis internals,
// shared by both sides of the API.
package client

// AnalyzeRequest submits DDGs for register-saturation analysis
// (POST /v1/analyze). Graphs carry inline .ddg text; Corpus names files or
// directories on the server (resolved under its -corpus-root, when enabled).
// At least one input is required.
type AnalyzeRequest struct {
	Graphs []GraphInput `json:"graphs,omitempty"`
	Corpus []string     `json:"corpus,omitempty"`

	Options AnalyzeOptions `json:"options"`

	// TimeoutMs caps this request's wall time; the deadline propagates into
	// in-flight simplex iterations and branch-and-bound nodes. 0 uses the
	// server default; the server may clamp large values.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`

	// Trace forces this request to be recorded regardless of the daemon's
	// sampling rate; the response then always echoes TraceID. (A request
	// arriving with a traceparent header is recorded unconditionally too —
	// the upstream already made the sampling decision.)
	Trace bool `json:"trace,omitempty"`
	// TraceSpans additionally attaches the request's finished spans inline
	// on the response (Spans). The cluster layer sets it on forwarded
	// sub-requests so the coordinator can stitch the owning replica's spans
	// into the exported trace.
	TraceSpans bool `json:"traceSpans,omitempty"`
}

// GraphInput is one inline DDG in the textual format.
type GraphInput struct {
	// Name identifies the graph in results; defaults to the parsed ddg name.
	Name string `json:"name,omitempty"`
	// DDG is the graph source (see the format in internal/ddg/format.go).
	DDG string `json:"ddg"`
	// Fingerprint is the graph's ir structural fingerprint when the caller
	// can compute it (regsat users: ir.Fingerprint). It is advisory — the
	// server always re-derives ownership from the parsed graph — but it
	// lets a cluster-aware client route the request to the replica whose
	// shard-local caches hold this graph's results.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// AnalyzeOptions mirrors regsat.RSOptions plus the batch-level knobs.
type AnalyzeOptions struct {
	// Method is the saturation algorithm: "greedy" (default), "bb", "ilp".
	Method string `json:"method,omitempty"`
	// Types restricts analysis to these register types (default: every type
	// the graph writes).
	Types []string `json:"types,omitempty"`
	// Witness asks for a saturating schedule per result.
	Witness bool `json:"witness,omitempty"`
	// MaxLeaves caps the exact-BB search (0 = default).
	MaxLeaves int64 `json:"maxLeaves,omitempty"`
	// Solver selects and bounds the MILP backend for "ilp".
	Solver SolverOptions `json:"solver"`
	// Reduce, when non-nil with a positive budget, runs RS reduction on
	// every graph whose saturation exceeds the budget.
	Reduce *ReduceSpec `json:"reduce,omitempty"`
	// Cyclic tunes the periodic analysis of loop-format inputs (DDGs whose
	// header carries the `loop` flag). Loop inputs are accepted — and
	// analyzed with default windows — even when this is nil.
	Cyclic *CyclicSpec `json:"cyclic,omitempty"`
}

// CyclicSpec tunes the unrolled-window periodic analysis of loop inputs.
type CyclicSpec struct {
	// MaxWindow caps the number of unrolled iterations swept (0 = default).
	MaxWindow int `json:"maxWindow,omitempty"`
	// Stable is the number of identical per-iteration deltas that counts as
	// convergence (0 = default).
	Stable int `json:"stable,omitempty"`
	// Certify additionally runs the exact periodic MILP on small kernels and
	// cross-checks it against the unrolled windows.
	Certify bool `json:"certify,omitempty"`
}

// SolverOptions mirrors regsat.SolverOptions on the wire.
type SolverOptions struct {
	// Backend names the MILP engine: "dense", "sparse" (default), "parallel".
	Backend string `json:"backend,omitempty"`
	// MaxNodes caps explored branch-and-bound nodes (0 = default).
	MaxNodes int `json:"maxNodes,omitempty"`
	// TimeLimitMs caps solve wall time (0 = none).
	TimeLimitMs int64 `json:"timeLimitMs,omitempty"`
	// Parallel is the tree-search worker count (0 = backend default).
	Parallel int `json:"parallel,omitempty"`
}

// ReduceSpec asks for reduction below a register budget.
type ReduceSpec struct {
	// Budget is the available register count R_t.
	Budget int `json:"budget"`
	// Method is the reduction algorithm: "heuristic" (default), "exact",
	// "ilp".
	Method string `json:"method,omitempty"`
}

// AnalyzeResponse is the single-shot response: every item of the request in
// input order, plus the run's cache accounting.
type AnalyzeResponse struct {
	Items []Item   `json:"items"`
	Stats RunStats `json:"stats"`
	// Error is set when the batch was cut short (request deadline, client
	// disconnect): Items then holds only what finished, in order, and MUST
	// NOT be read as the complete result set.
	Error string `json:"error,omitempty"`
	// RequestID echoes the request's X-Regsat-Request-Id correlation ID.
	RequestID string `json:"requestId,omitempty"`
	// TraceID is set when the request was recorded (sampled, forced via
	// Trace, or joined from a traceparent header): the key for
	// GET /v1/trace/{id} on the serving daemon.
	TraceID string `json:"traceId,omitempty"`
	// Spans is the inline span attachment (TraceSpans requests only).
	Spans []TraceSpan `json:"spans,omitempty"`
}

// TraceSpan is one finished span of a recorded trace on the wire — the same
// JSON schema as internal/obs.SpanData and each NDJSON line of
// GET /v1/trace/{id}.
type TraceSpan struct {
	TraceID       string            `json:"traceId"`
	SpanID        string            `json:"spanId"`
	Parent        string            `json:"parent,omitempty"`
	Name          string            `json:"name"`
	Service       string            `json:"service,omitempty"`
	StartUnixNs   int64             `json:"startUnixNs"`
	DurationNs    int64             `json:"durationNs"`
	Attrs         map[string]string `json:"attrs,omitempty"`
	Events        []TraceEvent      `json:"events,omitempty"`
	DroppedEvents int64             `json:"droppedEvents,omitempty"`
}

// TraceEvent is one point event on a span's timeline.
type TraceEvent struct {
	Name     string            `json:"name"`
	OffsetNs int64             `json:"offsetNs"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Item is the outcome of one submitted graph.
type Item struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	// Error is this item's failure (parse error, analysis error); the rest
	// of the batch is unaffected. Parse failures also carry ErrorLine and
	// ErrorCol locating the offending token in the submitted .ddg text.
	Error     string `json:"error,omitempty"`
	ErrorLine int    `json:"errorLine,omitempty"`
	ErrorCol  int    `json:"errorCol,omitempty"`

	Nodes        int   `json:"nodes,omitempty"`
	Edges        int   `json:"edges,omitempty"`
	CriticalPath int64 `json:"criticalPath,omitempty"`

	// RS maps each analyzed register type to its saturation outcome.
	RS map[string]*RSOutcome `json:"rs,omitempty"`
	// Reductions maps each reduced type to its reduction outcome (only
	// types whose saturation exceeded the budget appear).
	Reductions map[string]*ReduceOutcome `json:"reductions,omitempty"`
	// Cyclic maps each analyzed register type of a loop-format input to its
	// periodic saturation outcome (loop items populate Cyclic instead of RS).
	Cyclic map[string]*CyclicOutcome `json:"cyclic,omitempty"`

	// CacheHit reports that every RS computation of this item was served
	// from a cache (the in-memory memo or the persistent store).
	CacheHit  bool    `json:"cacheHit"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// RSOutcome is one register type's saturation.
type RSOutcome struct {
	RS    int  `json:"rs"`
	Exact bool `json:"exact"`
	// Antichain lists the saturating values by node name.
	Antichain []string `json:"antichain,omitempty"`
	// UpperBound is the proven upper bound of a capped exact search: the
	// true RS lies in [RS, UpperBound]. Omitted when the result is exact.
	UpperBound int `json:"upperBound,omitempty"`
	// Witness maps node name to issue time in a saturating schedule
	// (present when the request asked for witnesses).
	Witness map[string]int64 `json:"witness,omitempty"`
	// ILP carries intLP model info for the "ilp" method.
	ILP *ILPModelInfo `json:"ilp,omitempty"`
	// BB carries the combinatorial search accounting for the "bb" method.
	BB *BBInfo `json:"bb,omitempty"`
	// SolverStats is the MILP backend's work accounting ("ilp" method).
	SolverStats *SolverStats `json:"solverStats,omitempty"`
}

// CyclicOutcome is one register type's periodic saturation: the RS(k)
// sequence over unrolled windows, its converged per-iteration delta and
// Fekete slope bound, and the optional exact periodic certificate.
type CyclicOutcome struct {
	Windows   []int   `json:"windows"`
	PerIter   int     `json:"perIter"`
	Converged bool    `json:"converged"`
	Window    int     `json:"window"`
	Slope     float64 `json:"slope"`
	Exact     bool    `json:"exact"`
	// Periodic is the exact periodic MILP certificate (certify requests on
	// small kernels only).
	Periodic *PeriodicOutcome `json:"periodic,omitempty"`
}

// PeriodicOutcome mirrors the periodic MILP certificate on the wire.
type PeriodicOutcome struct {
	II         int64 `json:"ii"`
	RS         int   `json:"rs"`
	Exact      bool  `json:"exact"`
	UpperBound int   `json:"upperBound"`
	Jmax       int   `json:"jmax"`
}

// ILPModelInfo mirrors the Section 3 model accounting.
type ILPModelInfo struct {
	Vars            int `json:"vars"`
	IntVars         int `json:"intVars"`
	Constrs         int `json:"constrs"`
	RedundantArcs   int `json:"redundantArcs"`
	NeverAlivePairs int `json:"neverAlivePairs"`
}

// BBInfo mirrors the exact branch-and-bound accounting.
type BBInfo struct {
	Leaves     int64 `json:"leaves"`
	Pruned     int64 `json:"pruned"`
	Capped     bool  `json:"capped"`
	UpperBound int   `json:"upperBound"`
}

// SolverStats mirrors regsat.SolverStats on the wire (field names match the
// solver package's JSON schema; DurationNs is nanoseconds).
type SolverStats struct {
	Nodes        int64 `json:"nodes"`
	SimplexIters int64 `json:"simplexIters"`
	WarmStarts   int64 `json:"warmStarts"`
	ColdStarts   int64 `json:"coldStarts"`
	Fallbacks    int64 `json:"fallbacks"`
	Incumbents   int64 `json:"incumbents"`
	Workers      int   `json:"workers"`
	DurationNs   int64 `json:"durationNs"`
	// Presolve/cut/branching accounting of the sparse engine (zero for
	// backends without those layers).
	PresolveRows        int64 `json:"presolveRows,omitempty"`
	PresolveCols        int64 `json:"presolveCols,omitempty"`
	PresolveTightenings int64 `json:"presolveTightenings,omitempty"`
	CutsAdded           int64 `json:"cutsAdded,omitempty"`
	CutsActive          int64 `json:"cutsActive,omitempty"`
	BranchProbes        int64 `json:"branchProbes,omitempty"`
	ReliableVars        int64 `json:"reliableVars,omitempty"`
	BlandIters          int64 `json:"blandIters,omitempty"`
}

// ReduceOutcome is one register type's reduction.
type ReduceOutcome struct {
	// RS is the saturation of the extended graph.
	RS int `json:"rs"`
	// Spill reports that no reduction to the budget exists.
	Spill bool `json:"spill"`
	Exact bool `json:"exact"`
	// CPBefore/CPAfter are the critical paths before and after; their
	// difference is the ILP loss.
	CPBefore int64 `json:"cpBefore"`
	CPAfter  int64 `json:"cpAfter"`
	// Arcs lists the inserted serialization arcs by node name.
	Arcs []Arc `json:"arcs,omitempty"`
	// DDG is the extended graph in the textual format, scheduler-ready.
	DDG string `json:"ddg,omitempty"`
}

// Arc is one serialization arc.
type Arc struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Latency int64  `json:"latency"`
}

// RunStats is the request's cache accounting: Computed counts RS
// computations actually performed, L1Hits those served from the in-memory
// memo, L2Hits those served from the persistent store. Under concurrent
// requests the split is approximate (counter deltas on a shared engine);
// with one request in flight it is exact.
type RunStats struct {
	L1Hits   int64 `json:"l1Hits"`
	L2Hits   int64 `json:"l2Hits"`
	Computed int64 `json:"computed"`
}

// StreamEvent is one line of an NDJSON streaming response
// (POST /v1/analyze?stream=ndjson): items as they complete in input order,
// then exactly one final event carrying the run stats (or a terminal
// request-level error).
type StreamEvent struct {
	Item  *Item     `json:"item,omitempty"`
	Stats *RunStats `json:"stats,omitempty"`
	Error string    `json:"error,omitempty"`
	// TraceID rides on the final stats event when the request was recorded.
	TraceID string `json:"traceId,omitempty"`
}

// RingInfo is the /v1/ring body: the daemon's cluster topology. A client
// that builds NewRing(Members, VNodes) owns exactly the same ownership map
// as the fleet itself.
type RingInfo struct {
	// Enabled reports whether this daemon runs as part of a cluster.
	Enabled bool `json:"enabled"`
	// Self is this replica's member identity (its -self base URL).
	Self string `json:"self,omitempty"`
	// Members is the full normalized, sorted membership, including Self.
	Members []string `json:"members,omitempty"`
	// VNodes is the ring's virtual-node count per member.
	VNodes int `json:"vnodes,omitempty"`
}

// Health is the /healthz body.
type Health struct {
	Status string `json:"status"` // "ok" or "draining"
	// Queued and InFlight describe the admission queue at sample time.
	Queued   int `json:"queued"`
	InFlight int `json:"inFlight"`
	// Store reports whether a persistent result store is attached.
	Store bool `json:"store"`
}
