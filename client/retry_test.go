package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	for retry := 0; retry < 8; retry++ {
		nominal := b.Base << uint(retry)
		if nominal > b.Max || nominal <= 0 {
			nominal = b.Max
		}
		for i := 0; i < 50; i++ {
			d := b.delay(retry)
			if d < nominal/2 || d > nominal {
				t.Fatalf("retry %d: delay %v outside [%v, %v]", retry, d, nominal/2, nominal)
			}
		}
	}
}

func TestRetryWaitHonorsRetryAfter(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	err := &OverloadedError{RetryAfter: 5 * time.Second}
	if wait := b.retryWait(err, 0); wait != 5*time.Second {
		t.Fatalf("retryWait = %v, want the server's 5s Retry-After to dominate", wait)
	}
	// Without a server suggestion the jittered policy delay applies.
	if wait := b.retryWait(&OverloadedError{}, 0); wait > 2*time.Millisecond {
		t.Fatalf("retryWait = %v, want the policy delay", wait)
	}
}

func TestRetryAfterParsing(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"1", time.Second},
		{"30", 30 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0}, // HTTP-date form: unsupported, not an error
		{"", 0},
	} {
		if got := retryAfter(mk(tc.header)); got != tc.want {
			t.Errorf("retryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestBackoffRetries429UntilSuccess: a client constructed with a Backoff
// transparently retries shed requests and returns the eventual success.
func TestBackoffRetries429UntilSuccess(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"items":[],"stats":{"computed":7}}`)
	}))
	defer hs.Close()
	c := NewWithOptions(hs.URL, Options{
		HTTPClient: hs.Client(),
		Backoff:    &Backoff{Attempts: 4, Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	resp, err := c.Analyze(context.Background(), &AnalyzeRequest{})
	if err != nil {
		t.Fatalf("backoff did not absorb the 429s: %v", err)
	}
	if resp.Stats.Computed != 7 {
		t.Fatalf("wrong response after retries: %+v", resp)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 shed + 1 success)", calls.Load())
	}
}

// TestBackoffExhaustionSurfacesOverload: when every attempt is shed the
// caller still gets ErrOverloaded (with the server's Retry-After attached).
func TestBackoffExhaustionSurfacesOverload(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer hs.Close()
	c := NewWithOptions(hs.URL, Options{
		HTTPClient: hs.Client(),
		Backoff:    &Backoff{Attempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	_, err := c.Analyze(context.Background(), &AnalyzeRequest{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted retries lost the overload sentinel: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want exactly Attempts=3", calls.Load())
	}
}

// TestNoBackoffMeansOneAttempt: without a Backoff the legacy behavior holds
// — one attempt, immediate ErrOverloaded.
func TestNoBackoffMeansOneAttempt(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	if _, err := c.Analyze(context.Background(), &AnalyzeRequest{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1", calls.Load())
	}
}

// TestBackoffRespectsContext: a context cancelled during the backoff sleep
// aborts the retry loop promptly with the overload error.
func TestBackoffRespectsContext(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer hs.Close()
	c := NewWithOptions(hs.URL, Options{
		HTTPClient: hs.Client(),
		Backoff:    &Backoff{Attempts: 4, Base: time.Millisecond},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Analyze(ctx, &AnalyzeRequest{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ignored the cancelled context for %v", elapsed)
	}
}

func TestStatusErrorCarriesCode(t *testing.T) {
	e := &StatusError{Code: 500, Message: "boom"}
	if got := e.Error(); got != "rsd: 500 Internal Server Error: boom" {
		t.Fatalf("StatusError format changed: %q", got)
	}
}
