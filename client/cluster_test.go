package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

const okBody = `{"items":[{"index":0,"name":"g"}],"stats":{}}`

// fakeReplica is an httptest analyze endpoint with a switchable behavior.
type fakeReplica struct {
	hs    *httptest.Server
	calls atomic.Int64
	mode  atomic.Int32 // 0 = ok, 1 = 500, 2 = slow-ok, 3 = 400
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.calls.Add(1)
		switch f.mode.Load() {
		case 1:
			http.Error(w, "replica exploded", http.StatusInternalServerError)
		case 2:
			select {
			case <-time.After(300 * time.Millisecond):
			case <-r.Context().Done():
				return
			}
			fmt.Fprint(w, okBody)
		case 3:
			http.Error(w, "bad request", http.StatusBadRequest)
		default:
			fmt.Fprint(w, okBody)
		}
	}))
	t.Cleanup(f.hs.Close)
	return f
}

func testFleet(t *testing.T, n int, opts ClusterOptions) ([]*fakeReplica, *Cluster) {
	t.Helper()
	replicas := make([]*fakeReplica, n)
	members := make([]string, n)
	for i := range replicas {
		replicas[i] = newFakeReplica(t)
		members[i] = replicas[i].hs.URL
	}
	c, err := NewCluster(members, opts)
	if err != nil {
		t.Fatal(err)
	}
	return replicas, c
}

// byMember returns the fake replica behind a normalized member URL.
func byMember(replicas []*fakeReplica, member string) *fakeReplica {
	for _, f := range replicas {
		if NormalizeMember(f.hs.URL) == member {
			return f
		}
	}
	return nil
}

// affineRequest is a request whose fingerprint the ring routes to owner.
func affineRequest(t *testing.T, c *Cluster, owner string) *AnalyzeRequest {
	t.Helper()
	for i := 0; i < 100000; i++ {
		fp := fmt.Sprintf("fp-%d", i)
		if c.Ring().Owner(fp) == owner {
			return &AnalyzeRequest{Graphs: []GraphInput{{Name: "g", DDG: "x", Fingerprint: fp}}}
		}
	}
	t.Fatal("no fingerprint maps to the wanted owner")
	return nil
}

func TestClusterRoutesByFingerprint(t *testing.T) {
	replicas, c := testFleet(t, 3, ClusterOptions{})
	owner := c.Members()[1]
	req := affineRequest(t, c, owner)
	for i := 0; i < 5; i++ {
		if _, err := c.Analyze(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	f := byMember(replicas, owner)
	if f.calls.Load() != 5 {
		t.Fatalf("owner saw %d calls, want all 5", f.calls.Load())
	}
	for _, other := range replicas {
		if other != f && other.calls.Load() != 0 {
			t.Fatalf("non-owner %s saw %d calls", other.hs.URL, other.calls.Load())
		}
	}
}

func TestClusterFailsOverOn5xx(t *testing.T) {
	replicas, c := testFleet(t, 3, ClusterOptions{})
	owner := c.Members()[0]
	byMember(replicas, owner).mode.Store(1) // owner answers 500
	resp, err := c.Analyze(context.Background(), affineRequest(t, c, owner))
	if err != nil {
		t.Fatalf("failover did not rescue the request: %v", err)
	}
	if len(resp.Items) != 1 {
		t.Fatalf("wrong response: %+v", resp)
	}
	if got := c.Stats().Failovers; got < 1 {
		t.Fatalf("Failovers = %d, want >= 1", got)
	}
}

func TestClusterFailsOverOnConnectionError(t *testing.T) {
	replicas, c := testFleet(t, 3, ClusterOptions{})
	owner := c.Members()[2]
	req := affineRequest(t, c, owner)
	byMember(replicas, owner).hs.Close() // owner is gone entirely
	if _, err := c.Analyze(context.Background(), req); err != nil {
		t.Fatalf("connection-refused failover failed: %v", err)
	}
	if got := c.Stats().Failovers; got < 1 {
		t.Fatalf("Failovers = %d, want >= 1", got)
	}
}

// TestClusterDoesNotFailOverOn4xx: a request fault is deterministic — every
// replica would refuse it identically, so trying peers just multiplies load.
func TestClusterDoesNotFailOverOn4xx(t *testing.T) {
	replicas, c := testFleet(t, 3, ClusterOptions{})
	for _, f := range replicas {
		f.mode.Store(3)
	}
	_, err := c.Analyze(context.Background(), &AnalyzeRequest{})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("want StatusError 400, got %v", err)
	}
	var total int64
	for _, f := range replicas {
		total += f.calls.Load()
	}
	if total != 1 {
		t.Fatalf("fleet saw %d calls for a 4xx, want exactly 1", total)
	}
	if c.Stats().Failovers != 0 {
		t.Fatalf("Failovers = %d for a request fault", c.Stats().Failovers)
	}
}

// TestClusterAllDownSurfacesError: with the entire fleet gone the last
// transport error is returned after exhausting every member.
func TestClusterAllDownSurfacesError(t *testing.T) {
	replicas, c := testFleet(t, 2, ClusterOptions{})
	for _, f := range replicas {
		f.hs.Close()
	}
	if _, err := c.Analyze(context.Background(), &AnalyzeRequest{}); err == nil {
		t.Fatal("all-down fleet returned success")
	}
}

// TestClusterHedgeWinsOnSlowPrimary: with a fixed hedge delay far below the
// primary's response time, the backup replica answers first and the call
// returns at backup speed.
func TestClusterHedgeWinsOnSlowPrimary(t *testing.T) {
	replicas, c := testFleet(t, 2, ClusterOptions{
		Hedge: &HedgeOptions{Delay: 10 * time.Millisecond},
	})
	owner := c.Members()[0]
	byMember(replicas, owner).mode.Store(2) // owner: 300ms before answering
	start := time.Now()
	if _, err := c.Analyze(context.Background(), affineRequest(t, c, owner)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("hedge did not beat the slow primary: %v", elapsed)
	}
	st := c.Stats()
	if st.Hedges < 1 || st.HedgeWins < 1 {
		t.Fatalf("hedge accounting wrong: %+v", st)
	}
}

// TestClusterHedgeIdleOnFastPrimary: a fast primary means the hedge timer
// never fires — no duplicate work.
func TestClusterHedgeIdleOnFastPrimary(t *testing.T) {
	replicas, c := testFleet(t, 2, ClusterOptions{
		Hedge: &HedgeOptions{Delay: time.Second},
	})
	owner := c.Members()[0]
	req := affineRequest(t, c, owner)
	for i := 0; i < 3; i++ {
		if _, err := c.Analyze(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Hedges != 0 {
		t.Fatalf("fast primary still hedged %d times", st.Hedges)
	}
	other := byMember(replicas, c.Members()[1])
	if other.calls.Load() != 0 {
		t.Fatalf("backup saw %d calls without a hedge", other.calls.Load())
	}
}

func TestClusterRejectsEmptyMembership(t *testing.T) {
	if _, err := NewCluster(nil, ClusterOptions{}); err == nil {
		t.Fatal("empty membership accepted")
	}
}
