package client

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Cluster is a cluster-aware rsd client: it holds one Client per fleet
// member, routes each request to the replica the consistent-hash ring says
// owns it (fingerprint affinity — the replica whose shard-local caches
// hold the result), fails over to the next member on connection errors and
// 5xx responses, and optionally hedges slow requests with a second attempt
// to a different replica after a p99-derived delay (first response wins,
// the loser is cancelled).
type Cluster struct {
	ring     *Ring
	members  []string // sorted; tryOrder rotates over it
	clients  map[string]*Client
	hedge    *HedgeOptions
	tryLimit int // distinct members one call may try

	rr        atomic.Uint64 // round-robin cursor for affinity-free requests
	failovers atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64

	lat *latWindow
}

// ClusterOptions configures a Cluster.
type ClusterOptions struct {
	// HTTPClient is shared by every member client (nil = http.DefaultClient).
	HTTPClient *http.Client
	// Backoff is each member client's 429 retry policy. Nil enables the
	// default policy — a cluster caller asked for resilience; pass an
	// explicit &Backoff{Attempts: 1} to disable per-member retries.
	Backoff *Backoff
	// VNodes is the ring's virtual-node count per member
	// (0 = DefaultVNodes). It must match the fleet's -vnodes setting for
	// affinity routing to land on the owning replica.
	VNodes int
	// Hedge enables hedged requests (nil disables them).
	Hedge *HedgeOptions
	// MaxFailovers caps how many distinct members one call tries
	// (0 = every member).
	MaxFailovers int
}

// HedgeOptions tunes hedged requests.
type HedgeOptions struct {
	// Delay is the fixed wait before launching the hedge. Zero derives the
	// delay from the observed p99 of recent request latencies, clamped to
	// [MinDelay, MaxDelay].
	Delay time.Duration
	// MinDelay and MaxDelay clamp the adaptive delay (0 = 10ms and 2s
	// respectively). Until enough latency samples exist the adaptive delay
	// sits at MaxDelay — hedging only helps once "slow" is measurable.
	MinDelay, MaxDelay time.Duration
}

func (h HedgeOptions) withDefaults() HedgeOptions {
	if h.MinDelay <= 0 {
		h.MinDelay = 10 * time.Millisecond
	}
	if h.MaxDelay <= 0 {
		h.MaxDelay = 2 * time.Second
	}
	return h
}

// ClusterStats is the cluster client's cumulative resilience accounting.
type ClusterStats struct {
	// Failovers counts attempts re-routed to another member after a
	// retryable failure (connection error, 5xx, exhausted 429 backoff).
	Failovers int64
	// Hedges counts hedge attempts launched; HedgeWins counts hedges whose
	// response was the one returned to the caller.
	Hedges    int64
	HedgeWins int64
}

// NewCluster builds a cluster client over the member base URLs.
func NewCluster(members []string, opts ClusterOptions) (*Cluster, error) {
	ring := NewRing(members, opts.VNodes)
	ms := ring.Members()
	if len(ms) == 0 {
		return nil, errors.New("rsd: cluster needs at least one member")
	}
	backoff := opts.Backoff
	if backoff == nil {
		backoff = &Backoff{}
	}
	limit := opts.MaxFailovers
	if limit <= 0 || limit > len(ms) {
		limit = len(ms)
	}
	c := &Cluster{
		ring:     ring,
		members:  ms,
		clients:  make(map[string]*Client, len(ms)),
		tryLimit: limit,
		lat:      newLatWindow(256),
	}
	for _, m := range ms {
		c.clients[m] = NewWithOptions(m, Options{HTTPClient: opts.HTTPClient, Backoff: backoff})
	}
	if opts.Hedge != nil {
		h := opts.Hedge.withDefaults()
		c.hedge = &h
	}
	return c, nil
}

// Ring returns the cluster's consistent-hash ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Members returns the normalized, sorted member list.
func (c *Cluster) Members() []string { return c.ring.Members() }

// Client returns the member's underlying single-daemon client (nil for an
// unknown member) — the hook for per-replica Health/Metrics scraping.
func (c *Cluster) Client(member string) *Client {
	return c.clients[NormalizeMember(member)]
}

// Stats returns the cumulative failover/hedging counters.
func (c *Cluster) Stats() ClusterStats {
	return ClusterStats{
		Failovers: c.failovers.Load(),
		Hedges:    c.hedges.Load(),
		HedgeWins: c.hedgeWins.Load(),
	}
}

// Analyze submits the request to the fleet. Routing: the ring owner of the
// first graph carrying a Fingerprint; otherwise round-robin. On retryable
// failures the request fails over to the next member (up to the failover
// budget); with hedging enabled each attempt may race a second replica.
func (c *Cluster) Analyze(ctx context.Context, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	order := c.tryOrder(c.route(req))
	var lastErr error
	for i, m := range order {
		if i > 0 {
			c.failovers.Add(1)
		}
		backup := ""
		if c.hedge != nil && len(order) > 1 {
			backup = order[(i+1)%len(order)]
		}
		resp, err := c.attempt(ctx, m, backup, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil || !retryable(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// Health fans /healthz out to every member and returns per-member results
// and errors (unreachable replicas appear only in the error map).
func (c *Cluster) Health(ctx context.Context) (map[string]*Health, map[string]error) {
	healths := make(map[string]*Health, len(c.members))
	errs := map[string]error{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range c.members {
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			h, err := c.clients[m].Health(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[m] = err
				return
			}
			healths[m] = h
		}(m)
	}
	wg.Wait()
	return healths, errs
}

// route picks the member a request should go to first: the ring owner of
// the first fingerprinted graph, else round-robin.
func (c *Cluster) route(req *AnalyzeRequest) string {
	for _, g := range req.Graphs {
		if g.Fingerprint != "" {
			if owner := c.ring.Owner(g.Fingerprint); owner != "" {
				return owner
			}
		}
	}
	return c.members[int(c.rr.Add(1)-1)%len(c.members)]
}

// tryOrder returns the members to try, primary first, wrapping through the
// sorted member list, truncated to the failover budget.
func (c *Cluster) tryOrder(primary string) []string {
	start := indexOf(c.members, primary)
	if start < 0 {
		start = 0
	}
	order := make([]string, 0, c.tryLimit)
	for i := 0; i < len(c.members) && len(order) < c.tryLimit; i++ {
		order = append(order, c.members[(start+i)%len(c.members)])
	}
	return order
}

// outcome is one attempt's result, tagged with the member that produced it
// so hedge wins are attributed correctly.
type outcome struct {
	member string
	resp   *AnalyzeResponse
	err    error
}

// attempt runs one try against member m, hedged with backup when hedging
// is enabled: if m has not answered within the hedge delay (or fails
// outright), a second attempt races it on backup. The first success wins
// and the other attempt is cancelled; if both fail, the primary's error is
// returned.
func (c *Cluster) attempt(ctx context.Context, m, backup string, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	if c.hedge == nil || backup == "" || backup == m {
		return c.timedAnalyze(ctx, m, req)
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan outcome, 2)
	launch := func(member string) {
		go func() {
			resp, err := c.timedAnalyze(actx, member, req)
			results <- outcome{member, resp, err}
		}()
	}
	launch(m)

	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	inFlight := 1
	hedged := false
	startHedge := func() {
		hedged = true
		inFlight++
		c.hedges.Add(1)
		launch(backup)
	}
	var primaryErr error
	for {
		select {
		case <-timer.C:
			if !hedged {
				startHedge()
			}
		case out := <-results:
			inFlight--
			if out.err == nil {
				if out.member == backup {
					c.hedgeWins.Add(1)
				}
				return out.resp, nil
			}
			if out.member == m {
				primaryErr = out.err
			}
			if inFlight == 0 {
				if hedged && primaryErr != nil {
					return nil, primaryErr
				}
				return nil, out.err
			}
			if !hedged {
				// The primary failed before the hedge delay elapsed: start
				// the backup immediately instead of waiting out the timer.
				startHedge()
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// timedAnalyze runs one member attempt and feeds successful latencies into
// the hedge-delay window.
func (c *Cluster) timedAnalyze(ctx context.Context, member string, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	start := time.Now()
	resp, err := c.clients[member].Analyze(ctx, req)
	if err == nil {
		c.lat.record(time.Since(start))
	}
	return resp, err
}

// hedgeDelay resolves the delay before a hedge launches: the fixed Delay,
// or the observed p99 clamped to [MinDelay, MaxDelay]. With too few
// samples to call anything "slow", it sits at MaxDelay.
func (c *Cluster) hedgeDelay() time.Duration {
	h := *c.hedge
	if h.Delay > 0 {
		return h.Delay
	}
	p99, n := c.lat.quantile(0.99)
	if n < 20 {
		return h.MaxDelay
	}
	if p99 < h.MinDelay {
		return h.MinDelay
	}
	if p99 > h.MaxDelay {
		return h.MaxDelay
	}
	return p99
}

// retryable reports whether err warrants trying another replica: transport
// failures and replica-side errors do; request-side 4xx errors do not
// (every replica would refuse identically), and a cancelled or expired
// context means the caller, not the replica, gave up.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrOverloaded) {
		return true // this member's queue is full; a peer's may not be
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	// Anything non-HTTP is a transport error (refused connection, reset,
	// DNS): the classic failover trigger.
	return true
}

func indexOf(ss []string, s string) int {
	i := sort.SearchStrings(ss, s)
	if i < len(ss) && ss[i] == s {
		return i
	}
	return -1
}

// latWindow is a fixed-size sliding window of recent request latencies,
// the sample base for the adaptive hedge delay.
type latWindow struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int
}

func newLatWindow(size int) *latWindow {
	return &latWindow{buf: make([]time.Duration, size)}
}

func (w *latWindow) record(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// quantile returns the q-quantile of the window and the sample count.
func (w *latWindow) quantile(q float64) (time.Duration, int) {
	w.mu.Lock()
	samples := make([]time.Duration, w.n)
	copy(samples, w.buf[:w.n])
	w.mu.Unlock()
	if len(samples) == 0 {
		return 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q * float64(len(samples)-1))
	return samples[idx], len(samples)
}
