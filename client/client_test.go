package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOverloadedMapsToSentinel(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	_, err := c.Analyze(context.Background(), &AnalyzeRequest{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("429 not mapped to ErrOverloaded: %v", err)
	}
}

func TestStreamDecoding(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"item":{"index":0,"name":"a","cacheHit":false,"elapsedMs":1}}` + "\n"))
		w.Write([]byte(`{"item":{"index":1,"name":"b","error":"boom","errorLine":3,"errorCol":7}}` + "\n"))
		w.Write([]byte(`{"stats":{"l1Hits":1,"l2Hits":2,"computed":3}}` + "\n"))
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	var items []*Item
	stats, err := c.AnalyzeStream(context.Background(), &AnalyzeRequest{}, func(it *Item) error {
		items = append(items, it)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[1].ErrorLine != 3 || items[1].ErrorCol != 7 {
		t.Fatalf("items decoded wrong: %+v", items)
	}
	if stats.L1Hits != 1 || stats.L2Hits != 2 || stats.Computed != 3 {
		t.Fatalf("stats decoded wrong: %+v", stats)
	}
}

func TestTruncatedStreamIsAnError(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"item":{"index":0,"name":"a"}}` + "\n")) // no final stats
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	_, err := c.AnalyzeStream(context.Background(), &AnalyzeRequest{}, func(*Item) error { return nil })
	if err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// TestMidStreamErrorEvent: a terminal request-level error event arriving
// after some items must surface as the stream error, with the finished
// prefix already delivered to fn.
func TestMidStreamErrorEvent(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"item":{"index":0,"name":"a"}}` + "\n"))
		w.Write([]byte(`{"item":{"index":1,"name":"b"}}` + "\n"))
		w.Write([]byte(`{"error":"store exploded mid-batch"}` + "\n"))
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	var delivered []*Item
	_, err := c.AnalyzeStream(context.Background(), &AnalyzeRequest{}, func(it *Item) error {
		delivered = append(delivered, it)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "store exploded mid-batch") {
		t.Fatalf("mid-stream error lost: %v", err)
	}
	if len(delivered) != 2 {
		t.Fatalf("finished prefix not delivered before the error: %d items", len(delivered))
	}
}

// TestCallbackErrorAbortsStream: fn returning an error stops consumption
// immediately and propagates verbatim.
func TestCallbackErrorAbortsStream(t *testing.T) {
	sentinel := errors.New("caller gave up")
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		for i := 0; i < 50; i++ {
			fmt.Fprintf(w, `{"item":{"index":%d,"name":"g%d"}}`+"\n", i, i)
		}
		w.Write([]byte(`{"stats":{"computed":50}}` + "\n"))
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	calls := 0
	_, err := c.AnalyzeStream(context.Background(), &AnalyzeRequest{}, func(*Item) error {
		calls++
		if calls == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("callback error not propagated: %v", err)
	}
	if calls != 3 {
		t.Fatalf("stream kept delivering after the callback error: %d calls", calls)
	}
}

// TestDisconnectMidLine: the server dying mid-connection (torn line, no
// final stats) must be an error, not a silently short result. The handler
// hijacks the connection and closes it partway through an item line.
func TestDisconnectMidLine(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("test server does not support hijacking")
			return
		}
		conn, buf, err := hj.Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		buf.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nContent-Length: 1000\r\n\r\n")
		buf.WriteString(`{"item":{"index":0,"name":"a"}}` + "\n")
		buf.WriteString(`{"item":{"index":1,"na`) // torn mid-line, far short of Content-Length
		buf.Flush()
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	var delivered int
	_, err := c.AnalyzeStream(context.Background(), &AnalyzeRequest{}, func(*Item) error {
		delivered++
		return nil
	})
	if err == nil {
		t.Fatal("mid-line disconnect accepted as a complete stream")
	}
	if delivered != 1 {
		t.Fatalf("expected exactly the 1 complete item before the tear, got %d", delivered)
	}
}

// TestStreamContextCancellation: cancelling the context mid-stream
// surfaces the cancellation instead of hanging on a server that never
// finishes.
func TestStreamContextCancellation(t *testing.T) {
	release := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"item":{"index":0,"name":"a"}}` + "\n"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		select { // hold the stream open until the client cancels
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hs.Close()
	defer close(release)
	ctx, cancel := context.WithCancel(context.Background())
	c := New(hs.URL, hs.Client())
	_, err := c.AnalyzeStream(ctx, &AnalyzeRequest{}, func(*Item) error {
		cancel() // cancel as soon as the first item arrives
		return nil
	})
	if err == nil || !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("cancellation not surfaced: %v", err)
	}
}

func TestServerErrorCarriesBody(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "unknown method \"quantum\"", http.StatusBadRequest)
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	_, err := c.Analyze(context.Background(), &AnalyzeRequest{})
	if err == nil || !strings.Contains(err.Error(), "quantum") {
		t.Fatalf("server diagnostic lost: %v", err)
	}
}
