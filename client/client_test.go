package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOverloadedMapsToSentinel(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	_, err := c.Analyze(context.Background(), &AnalyzeRequest{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("429 not mapped to ErrOverloaded: %v", err)
	}
}

func TestStreamDecoding(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"item":{"index":0,"name":"a","cacheHit":false,"elapsedMs":1}}` + "\n"))
		w.Write([]byte(`{"item":{"index":1,"name":"b","error":"boom","errorLine":3,"errorCol":7}}` + "\n"))
		w.Write([]byte(`{"stats":{"l1Hits":1,"l2Hits":2,"computed":3}}` + "\n"))
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	var items []*Item
	stats, err := c.AnalyzeStream(context.Background(), &AnalyzeRequest{}, func(it *Item) error {
		items = append(items, it)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[1].ErrorLine != 3 || items[1].ErrorCol != 7 {
		t.Fatalf("items decoded wrong: %+v", items)
	}
	if stats.L1Hits != 1 || stats.L2Hits != 2 || stats.Computed != 3 {
		t.Fatalf("stats decoded wrong: %+v", stats)
	}
}

func TestTruncatedStreamIsAnError(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"item":{"index":0,"name":"a"}}` + "\n")) // no final stats
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	_, err := c.AnalyzeStream(context.Background(), &AnalyzeRequest{}, func(*Item) error { return nil })
	if err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestServerErrorCarriesBody(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "unknown method \"quantum\"", http.StatusBadRequest)
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	_, err := c.Analyze(context.Background(), &AnalyzeRequest{})
	if err == nil || !strings.Contains(err.Error(), "quantum") {
		t.Fatalf("server diagnostic lost: %v", err)
	}
}
