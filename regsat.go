// Package regsat is a from-scratch Go implementation of register saturation
// analysis, reproducing Sid-Ahmed-Ali Touati's "On the Optimality of Register
// Saturation" (ICPP 2004 / ENTCS 132, 2005).
//
// The register saturation RS_t(G) of a data dependence DAG G is the exact
// maximum, over every valid schedule, of the number of type-t registers
// needed. Computing it before instruction scheduling decouples register
// constraints from the scheduler (the paper's Figure 1 pipeline):
//
//	g := regsat.NewGraph("body", regsat.Superscalar)
//	… build operations and dependences …
//	g.Finalize()
//	res, _ := regsat.ComputeRS(g, regsat.Float, regsat.RSOptions{})
//	if res.RS > 16 {
//	    red, _ := regsat.ReduceRS(g, regsat.Float, 16, regsat.ReduceOptions{})
//	    g = red.Graph // scheduler-ready: no schedule can need > 16 registers
//	}
//
// Three RS methods are provided: the near-optimal Greedy-k heuristic of
// [Touati, CC 2001], an exact branch-and-bound over killing functions, and
// the paper's exact integer linear program (Section 3) solved through the
// pluggable MILP layer of internal/solver (backends: the dense reference
// engine, a sparse warm-started best-bound engine, and its parallel tree
// search — see docs/SOLVER.md). Reduction (Section 4) similarly
// offers the value-serialization heuristic, an exact combinatorial search,
// and the paper's coloring intLP, all applying the constructive arc
// insertion of Theorem 4.2.
package regsat

import (
	"context"
	"io"

	"regsat/internal/batch"
	"regsat/internal/cfg"
	"regsat/internal/cyclic"
	"regsat/internal/ddg"
	"regsat/internal/ir"
	"regsat/internal/reduce"
	"regsat/internal/regalloc"
	"regsat/internal/rs"
	"regsat/internal/schedule"
	"regsat/internal/service/store"
	"regsat/internal/solver"
	"regsat/internal/spill"
)

// Core model types (see internal/ddg for full documentation).
type (
	// Graph is a data dependence DAG over operations with typed register
	// values, latencies, and read/write delay offsets.
	Graph = ddg.Graph
	// RegType names a register type (e.g. Int, Float).
	RegType = ddg.RegType
	// MachineKind selects the processor family (Superscalar, VLIW, EPIC).
	MachineKind = ddg.MachineKind
	// SerialArc is a serialization arc added by RS reduction.
	SerialArc = ddg.SerialArc
	// Schedule assigns an issue time to every operation.
	Schedule = schedule.Schedule
	// Interval is a value lifetime ]Start, End].
	Interval = schedule.Interval
	// Resources describes functional units for the post-RS list scheduler.
	Resources = schedule.Resources
	// Allocation maps values to physical registers.
	Allocation = regalloc.Allocation
)

// Register types of the kernel suite.
const (
	Int   = ddg.Int
	Float = ddg.Float
)

// Machine kinds.
const (
	Superscalar = ddg.Superscalar
	VLIW        = ddg.VLIW
	EPIC        = ddg.EPIC
)

// NewGraph creates an empty DDG for the given machine kind. Add operations
// with AddNode/SetWrites/AddFlowEdge/AddSerialEdge, then call Finalize.
func NewGraph(name string, machine MachineKind) *Graph {
	return ddg.New(name, machine)
}

// GraphParseError locates a syntax error in the textual DDG format: the
// 1-based line and column of the offending token. ParseGraph failures
// unwrap to it via errors.As.
type GraphParseError = ddg.ParseError

// ParseGraph reads a DDG in the textual format (see internal/ddg/format.go).
// The returned graph is not finalized. Syntax errors carry their position
// (*GraphParseError).
func ParseGraph(r io.Reader) (*Graph, error) { return ddg.Parse(r) }

// ParseGraphString is ParseGraph over a string.
func ParseGraphString(s string) (*Graph, error) { return ddg.ParseString(s) }

// RSMethod selects the saturation algorithm.
type RSMethod = rs.Method

// Saturation methods.
const (
	// GreedyK is the polynomial near-optimal heuristic of [14].
	GreedyK = rs.MethodGreedy
	// ExactBB is the exact branch-and-bound over killing functions.
	ExactBB = rs.MethodExactBB
	// ExactILP is the paper's Section 3 integer linear program.
	ExactILP = rs.MethodExactILP
)

// RSOptions configures ComputeRS. The zero value uses Greedy-k with a
// saturating witness schedule.
type RSOptions = rs.Options

// RSResult is the computed saturation with a witness schedule and the
// saturating values.
type RSResult = rs.Result

// MILP solving layer (internal/solver): every exact intLP is solved through
// a pluggable backend.
type (
	// SolverOptions selects and bounds a MILP backend (RSOptions.Solver,
	// ReduceOptions.ILP.Solver, BatchOptions.Solver).
	SolverOptions = solver.Options
	// SolverStats is a backend's work accounting (nodes, simplex
	// iterations, warm-start rate, incumbents, wall clock).
	SolverStats = solver.Stats
)

// SolverBackends lists the registered MILP backends ("dense" — the original
// tableau engine; "sparse" — the warm-started best-bound rewrite;
// "parallel" — the same engine with one tree-search worker per CPU).
func SolverBackends() []string { return solver.Names() }

// ComputeRS computes the register saturation RS_t(G): the exact upper bound
// of the register requirement of type t over all valid schedules of g.
// The graph must be finalized.
func ComputeRS(g *Graph, t RegType, opts RSOptions) (*RSResult, error) {
	//rsvet:allow ctxthread -- deliberate context-free convenience wrapper; ComputeRSContext is the threaded form
	return rs.Compute(context.Background(), g, t, opts)
}

// ComputeRSContext is ComputeRS under a context: cancellation interrupts an
// in-flight exact solve.
func ComputeRSContext(ctx context.Context, g *Graph, t RegType, opts RSOptions) (*RSResult, error) {
	return rs.Compute(ctx, g, t, opts)
}

// ComputeRSAll computes the saturation of every register type of g.
func ComputeRSAll(g *Graph, opts RSOptions) (map[RegType]*RSResult, error) {
	//rsvet:allow ctxthread -- deliberate context-free convenience wrapper over ComputeRSContext per type
	return rs.ComputeAll(context.Background(), g, opts)
}

// ReduceMethod selects the reduction algorithm.
type ReduceMethod int

// Reduction methods.
const (
	// ReduceHeuristic is the iterative value-serialization heuristic [14].
	ReduceHeuristic ReduceMethod = iota
	// ReduceExact is the exact combinatorial search (minimal critical path).
	ReduceExact
	// ReduceExactILP is the paper's Section 4 coloring intLP.
	ReduceExactILP
)

// ReduceOptions configures ReduceRS. The zero value runs the heuristic.
type ReduceOptions struct {
	Method ReduceMethod
	// Exact combinatorial budget (nodes); 0 = default.
	MaxNodes int64
	// ILP options for ReduceExactILP.
	ILP reduce.ILPOptions
}

// ReduceResult is the reduction outcome (extended graph, added arcs,
// resulting saturation, critical path change, spill verdict).
type ReduceResult = reduce.Result

// ReduceRS adds serialization arcs to g so that no schedule of the returned
// graph can need more than available type-t registers, increasing the
// critical path as little as possible (Section 4 of the paper). Spill is
// reported when impossible.
func ReduceRS(g *Graph, t RegType, available int, opts ReduceOptions) (*ReduceResult, error) {
	//rsvet:allow ctxthread -- deliberate context-free convenience wrapper; ReduceRSContext is the threaded form
	return ReduceRSContext(context.Background(), g, t, available, opts)
}

// ReduceRSContext is ReduceRS under a context: cancellation interrupts an
// in-flight exact MILP solve.
func ReduceRSContext(ctx context.Context, g *Graph, t RegType, available int, opts ReduceOptions) (*ReduceResult, error) {
	switch opts.Method {
	case ReduceExact:
		return reduce.ExactCombinatorial(ctx, g, t, available, reduce.ExactOptions{MaxNodes: opts.MaxNodes})
	case ReduceExactILP:
		return reduce.ExactILP(ctx, g, t, available, opts.ILP)
	default:
		return reduce.Heuristic(ctx, g, t, available)
	}
}

// Batch analysis (the concurrent engine of internal/batch): analyze a
// stream of DDGs across a bounded worker pool with per-graph memoization of
// the shared artifacts (all-pairs longest paths, rs.Analysis,
// potential-killer sets) keyed by structural fingerprint.
type (
	// BatchOptions configures AnalyzeAll (worker count, RS options, MILP
	// solver backend, type restriction, optional reduction pass, memo size).
	BatchOptions = batch.Options
	// BatchResult is the per-item outcome, delivered in input order.
	BatchResult = batch.Result
	// BatchReduce asks the batch to reduce saturations above a budget.
	BatchReduce = batch.ReduceSpec
	// BatchStats reports memo hits/misses of a batch engine.
	BatchStats = batch.Stats
	// BatchEngine runs batches over a shared memo (NewBatchEngine).
	BatchEngine = batch.Engine
	// GraphSource streams DDGs into the batch engine.
	GraphSource = batch.Source
	// RandomParams controls the synthetic-workload source.
	RandomParams = ddg.RandomParams
)

// AnalyzeAll shards the register saturation analysis of every graph streamed
// by the sources across a bounded worker pool (BatchOptions.Parallel, default
// GOMAXPROCS) and returns the result channel. Results arrive in input-stream
// order regardless of parallelism; one bad graph yields a BatchResult with
// its error without killing the batch; cancelling ctx stops the run and
// closes the channel. Repeated graphs and repeated register types are served
// from a fingerprint-keyed memo instead of recomputing.
func AnalyzeAll(ctx context.Context, sources []GraphSource, opts BatchOptions) (<-chan BatchResult, error) {
	return batch.New(opts).Run(ctx, batch.Concat(sources...))
}

// NewBatchEngine creates a reusable batch engine: consecutive Run calls
// share one memo, and Stats exposes its hit/miss counts.
func NewBatchEngine(opts BatchOptions) *BatchEngine { return batch.New(opts) }

// SourceFiles streams the given .ddg files (lazily loaded and finalized).
func SourceFiles(paths ...string) GraphSource { return batch.Files(paths...) }

// SourceDir streams every *.ddg file of a directory in sorted order.
func SourceDir(dir string) (GraphSource, error) { return batch.Dir(dir) }

// SourcePaths streams a mix of .ddg files and directories.
func SourcePaths(paths ...string) (GraphSource, error) { return batch.Paths(paths...) }

// SourceGraphs streams already-built graphs (finalized in place).
func SourceGraphs(gs ...*Graph) GraphSource { return batch.Graphs(gs...) }

// SourceLoops streams already-built cyclic loop kernels; the batch engine
// analyzes them with the periodic pipeline (BatchOptions.Cyclic).
func SourceLoops(ls ...*Loop) GraphSource { return batch.Loops(ls...) }

// SourceConcat chains sources into one stream.
func SourceConcat(sources ...GraphSource) GraphSource { return batch.Concat(sources...) }

// Persistent result caching and interner introspection (the substrate of
// the analysis daemon, cmd/rsd — see docs/SERVER.md).
type (
	// BatchResultCache is the batch engine's optional second-level result
	// cache (BatchOptions.L2): results the in-memory memo has to compute
	// are looked up in — and written through to — this layer, keyed by
	// (structural fingerprint, register type, canonicalized options).
	BatchResultCache = batch.ResultCache
	// BatchCyclicCache is the optional loop-kernel extension of
	// BatchResultCache: an L2 cache that also implements it serves and
	// stores periodic loop results (the rsd store does).
	BatchCyclicCache = batch.CyclicCache
	// ResultStore is the persistent on-disk BatchResultCache used by rsd:
	// content-addressed, atomically written, corruption-tolerant, safe to
	// share across processes.
	ResultStore = store.Store
	// InternerCacheStats reports the process-wide analysis-snapshot
	// interner: hits, misses, evictions, population, and estimated
	// resident bytes.
	InternerCacheStats = ir.CacheStats
)

// OpenResultStore opens (creating if necessary) a persistent result store
// rooted at dir. Plug it into BatchOptions.L2 so batch analyses survive
// process restarts.
func OpenResultStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// InternerStats returns the process-wide analysis-snapshot interner
// statistics (the counters behind the CLIs' -ir-stats flags and rsd's
// /metrics).
func InternerStats() InternerCacheStats { return ir.Stats() }

// SetInternerCapacity resizes the process-wide snapshot interner (minimum
// 1), evicting least-recently-used snapshots if the new capacity is
// smaller. Long-running services tune this against their graph mix.
func SetInternerCapacity(n int) { ir.SetInternCapacity(n) }

// SourceRandom streams n random DDGs from consecutive seeds — a synthetic
// workload generator for stress and scale runs.
func SourceRandom(n int, seed int64, params RandomParams) GraphSource {
	return batch.Generate(n, seed, params)
}

// DefaultRandomParams gives a small, dense, single-type superscalar DAG.
func DefaultRandomParams(n int) RandomParams { return ddg.DefaultRandomParams(n) }

// ASAP returns the as-soon-as-possible schedule of g.
func ASAP(g *Graph) (*Schedule, error) { return schedule.ASAP(g) }

// ListSchedule runs the resource-constrained list scheduler — the pass that
// follows RS analysis in the paper's pipeline (Figure 1).
func ListSchedule(g *Graph, res Resources) (*Schedule, error) {
	return schedule.List(g, res)
}

// TypicalVLIW returns a 4-issue machine description for ListSchedule.
func TypicalVLIW() Resources { return schedule.TypicalVLIW() }

// RegisterNeed returns RN_σ,t: the number of type-t registers the schedule
// requires (maximal values simultaneously alive).
func RegisterNeed(s *Schedule, t RegType) int { return s.RegisterNeed(t) }

// Allocate assigns physical registers of type t to the scheduled graph,
// failing with a spill error when available registers do not suffice.
func Allocate(s *Schedule, t RegType, available int) (*Allocation, error) {
	return regalloc.Allocate(s, t, available)
}

// AllocateAll allocates every register type given per-type file sizes.
func AllocateAll(s *Schedule, files map[RegType]int) (map[RegType]*Allocation, error) {
	return regalloc.AllocateAll(s, files)
}

// Listing renders a register-annotated schedule listing.
func Listing(s *Schedule, allocs map[RegType]*Allocation) string {
	return regalloc.Listing(s, allocs)
}

// Global CFG analysis (the paper's Section 6 extension: RS over an acyclic
// control flow graph via per-block entry/exit values).
type (
	// CFG is an acyclic control flow graph of basic blocks.
	CFG = cfg.CFG
	// BasicBlock is one block of a CFG (build its Body like a Graph, then
	// Export/Import the values crossing block boundaries).
	BasicBlock = cfg.Block
	// GlobalRSResult is the per-block and global saturation, including the
	// one-register safety margin for CFG merges.
	GlobalRSResult = cfg.GlobalRSResult
)

// NewCFG creates an empty acyclic CFG.
func NewCFG(name string, machine MachineKind) *CFG { return cfg.New(name, machine) }

// Periodic register saturation for loops (internal/cyclic): cyclic DDGs
// whose loop-carried dependences carry iteration distances, analyzed by
// unrolled-window convergence and certified by an exact periodic MILP on
// small kernels — see docs/CYCLIC.md.
type (
	// Loop is a cyclic data dependence graph of one loop body.
	Loop = cyclic.Loop
	// LoopEdge is one dependence of a Loop, with its iteration distance.
	LoopEdge = cyclic.Edge
	// CyclicOptions configures AnalyzeLoop (window bounds, convergence
	// stability, the periodic certificate, and the per-window RS options).
	CyclicOptions = cyclic.Options
	// CyclicResult is the per-type outcome: the RS(k) window sequence, its
	// converged per-iteration delta and slope, and the optional periodic
	// certificate.
	CyclicResult = cyclic.Result
	// PeriodicResult is the exact periodic MILP certificate (II, PRS, and
	// solver accounting).
	PeriodicResult = cyclic.Periodic
)

// NewLoop creates an empty cyclic DDG for the given machine kind. Add
// operations and dependences (each with an iteration distance), then
// Validate.
func NewLoop(name string, machine MachineKind) *Loop {
	return cyclic.New(name, machine)
}

// DetectLoop reports whether a textual DDG is in the cyclic loop format
// (its header carries the `loop` flag). Loaders use it to route a file to
// ParseLoop or ParseGraph; file-based batch sources do this automatically.
func DetectLoop(text string) bool { return cyclic.Detect(text) }

// ParseLoop reads a cyclic DDG in the textual loop format. Syntax errors
// carry their position (*GraphParseError).
func ParseLoop(r io.Reader) (*Loop, error) { return cyclic.Parse(r) }

// ParseLoopString is ParseLoop over a string.
func ParseLoopString(s string) (*Loop, error) { return cyclic.ParseString(s) }

// AnalyzeLoop computes the periodic register saturation of one register
// type: RS(k) over growing unrolled windows until the per-iteration growth
// stabilizes, plus the exact periodic MILP certificate when
// CyclicOptions.Certify is set and the kernel is small enough.
func AnalyzeLoop(l *Loop, t RegType, opts CyclicOptions) (*CyclicResult, error) {
	//rsvet:allow ctxthread -- deliberate context-free convenience wrapper; AnalyzeLoopContext is the threaded form
	return cyclic.Analyze(context.Background(), l, t, opts)
}

// AnalyzeLoopContext is AnalyzeLoop under a context: cancellation interrupts
// the per-window solves and the periodic MILP.
func AnalyzeLoopContext(ctx context.Context, l *Loop, t RegType, opts CyclicOptions) (*CyclicResult, error) {
	return cyclic.Analyze(ctx, l, t, opts)
}

// AnalyzeLoopAll analyzes every register type the loop writes.
func AnalyzeLoopAll(l *Loop, opts CyclicOptions) (map[RegType]*CyclicResult, error) {
	//rsvet:allow ctxthread -- deliberate context-free convenience wrapper over AnalyzeLoopContext per type
	return cyclic.AnalyzeAll(context.Background(), l, opts)
}

// Spill insertion at the DDG level (the paper's stated future work).
type (
	// SpillResult is the transformed graph with its spill sites.
	SpillResult = spill.Result
	// SpillSite records one inserted store/reload pair.
	SpillSite = spill.Site
)

// SpillUntilFits alternates RS reduction and DDG-level spill insertion until
// the saturation fits the budget (or reports honest failure).
func SpillUntilFits(g *Graph, t RegType, available, maxSpills int) (*SpillResult, error) {
	//rsvet:allow ctxthread -- deliberate context-free convenience wrapper; SpillUntilFitsContext is the threaded form
	return spill.UntilFits(context.Background(), g, t, available, maxSpills)
}

// SpillUntilFitsContext is SpillUntilFits under a context: cancellation
// interrupts the saturation computations between spill rounds.
func SpillUntilFitsContext(ctx context.Context, g *Graph, t RegType, available, maxSpills int) (*SpillResult, error) {
	return spill.UntilFits(ctx, g, t, available, maxSpills)
}
