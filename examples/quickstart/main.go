// Quickstart: the full register-saturation pipeline of the paper's Figure 1
// on a small loop body — analyze, (maybe) reduce, schedule, allocate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"regsat"
)

func main() {
	// Build the DDG of a tiny loop body:
	//   t1 = load  a[i]
	//   t2 = load  b[i]
	//   t3 = t1 * t2
	//   t4 = t1 + t3
	//   store t4
	g := regsat.NewGraph("quickstart", regsat.Superscalar)
	t1 := g.AddNode("t1", "load", 4)
	t2 := g.AddNode("t2", "load", 4)
	t3 := g.AddNode("t3", "fmul", 4)
	t4 := g.AddNode("t4", "fadd", 3)
	st := g.AddNode("st", "store", 1)
	for _, v := range []int{t1, t2, t3, t4} {
		g.SetWrites(v, regsat.Float, 0)
	}
	g.AddFlowEdge(t1, t3, regsat.Float)
	g.AddFlowEdge(t2, t3, regsat.Float)
	g.AddFlowEdge(t1, t4, regsat.Float)
	g.AddFlowEdge(t3, t4, regsat.Float)
	g.AddFlowEdge(t4, st, regsat.Float)
	if err := g.Finalize(); err != nil {
		log.Fatal(err)
	}

	// Step 1 — register saturation: the worst register pressure ANY
	// schedule can produce, computed before scheduling.
	res, err := regsat.ComputeRS(g, regsat.Float, regsat.RSOptions{Method: regsat.ExactBB})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RS_float(G) = %d  (saturating values: %v)\n", res.RS, nodeNames(g, res.Antichain))

	// Step 2 — decide: with R registers available, is the scheduler free?
	const R = 2
	fmt.Printf("register budget R = %d\n", R)
	work := g
	if res.RS > R {
		red, err := regsat.ReduceRS(g, regsat.Float, R, regsat.ReduceOptions{Method: regsat.ReduceExact})
		if err != nil {
			log.Fatal(err)
		}
		if red.Spill {
			log.Fatal("cannot fit: spill code would be required")
		}
		fmt.Printf("reduced RS to %d with %d serialization arcs (critical path %d → %d)\n",
			red.RS, len(red.Arcs), red.CPBefore, red.CPAfter)
		work = red.Graph
	} else {
		fmt.Println("RS already fits: the DAG goes to the scheduler untouched")
	}

	// Step 3 — schedule freely (register constraints are gone by
	// construction) and allocate.
	s, err := regsat.ListSchedule(work, regsat.TypicalVLIW())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("list schedule: makespan %d, register need %d\n",
		s.Makespan(), regsat.RegisterNeed(s, regsat.Float))
	alloc, err := regsat.Allocate(s, regsat.Float, R)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocation uses %d registers — no spill, as guaranteed:\n%s",
		alloc.Used, regsat.Listing(s, map[regsat.RegType]*regsat.Allocation{regsat.Float: alloc}))
}

func nodeNames(g *regsat.Graph, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Node(id).Name
	}
	return out
}
