// Spill-free guarantee: once RS_t(G) ≤ R, *no* schedule of G can need more
// than R registers — the scheduler is provably free of register pressure.
// This example hammers one kernel with many different schedulers and shows
// the register need never crosses the saturation, then demonstrates what
// the guarantee buys after a reduction.
//
// Run with: go run ./examples/spillfree
package main

import (
	"fmt"
	"log"

	"regsat"
	"regsat/internal/kernels"
	"regsat/internal/schedule"
)

func main() {
	g := kernels.ByNameMust("liv-l2").Build(regsat.Superscalar)
	res, err := regsat.ComputeRS(g, regsat.Float, regsat.RSOptions{Method: regsat.ExactBB, SkipWitness: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Livermore loop 2 (ICCG): RS_float = %d\n\n", res.RS)

	fmt.Println("register need across wildly different schedulers (all ≤ RS):")
	for _, sc := range schedulers(g) {
		s, err := sc.build()
		if err != nil {
			log.Fatal(err)
		}
		rn := regsat.RegisterNeed(s, regsat.Float)
		if rn > res.RS {
			log.Fatalf("IMPOSSIBLE: %s needs %d > RS=%d", sc.name, rn, res.RS)
		}
		fmt.Printf("  %-22s makespan %3d   RN = %d\n", sc.name, s.Makespan(), rn)
	}

	// Now suppose the machine has RS−2 registers: reduce once, and the same
	// guarantee transfers to the extended graph.
	R := res.RS - 2
	red, err := regsat.ReduceRS(g, regsat.Float, R, regsat.ReduceOptions{Method: regsat.ReduceExact})
	if err != nil {
		log.Fatal(err)
	}
	if red.Spill {
		log.Fatalf("not reducible to %d", R)
	}
	fmt.Printf("\nafter exact reduction to R=%d (+%d arcs, critical path %d → %d):\n",
		R, len(red.Arcs), red.CPBefore, red.CPAfter)
	for _, sc := range schedulers(red.Graph) {
		s, err := sc.build()
		if err != nil {
			log.Fatal(err)
		}
		rn := regsat.RegisterNeed(s, regsat.Float)
		if rn > R {
			log.Fatalf("GUARANTEE BROKEN: %s needs %d > R=%d", sc.name, rn, R)
		}
		fmt.Printf("  %-22s makespan %3d   RN = %d ≤ %d\n", sc.name, s.Makespan(), rn, R)
	}
	fmt.Println("\nevery schedule fits: allocation can never spill on this DAG.")
}

type namedScheduler struct {
	name  string
	build func() (*regsat.Schedule, error)
}

func schedulers(g *regsat.Graph) []namedScheduler {
	return []namedScheduler{
		{"ASAP (greedy ILP)", func() (*regsat.Schedule, error) { return schedule.ASAP(g) }},
		{"ALAP (lazy)", func() (*regsat.Schedule, error) { return schedule.ALAP(g, g.Horizon()) }},
		{"list, 4-issue VLIW", func() (*regsat.Schedule, error) { return schedule.List(g, schedule.TypicalVLIW()) }},
		{"list, single-issue", func() (*regsat.Schedule, error) {
			return schedule.List(g, schedule.Resources{IssueWidth: 1})
		}},
		{"list, 1 memory port", func() (*regsat.Schedule, error) {
			return schedule.List(g, schedule.Resources{IssueWidth: 2, Units: map[string]int{"mem": 1}})
		}},
	}
}
