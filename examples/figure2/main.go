// Figure 2 of the paper: why *saturating* the register need beats
// *minimizing* it. Four values — a with a long 17-cycle latency, b, c, d —
// have RS = 4. With 3 registers available:
//
//   - the RS-reduction approach adds just enough arcs to bring the
//     saturation to 3, leaving the final allocator free to use 1, 2 or 3
//     registers depending on the schedule;
//   - a minimization approach restricts the DAG to the lowest register
//     need it can reach under the critical-path constraint (2 here),
//     adding more arcs and wasting an available register.
//
// Run with: go run ./examples/figure2
package main

import (
	"fmt"
	"log"

	"regsat"
	"regsat/internal/kernels"
)

func main() {
	g := kernels.Figure2(regsat.Superscalar)
	fmt.Println("Part (a) — the initial DAG:")
	rs0, err := regsat.ComputeRS(g, regsat.Float, regsat.RSOptions{Method: regsat.ExactBB, SkipWitness: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  RS = %d, critical path = %d (a's 17-cycle latency dominates)\n\n", rs0.RS, g.CriticalPath())

	fmt.Println("Part (c) — RS reduction with 3 available registers:")
	toThree, err := regsat.ReduceRS(g, regsat.Float, 3, regsat.ReduceOptions{Method: regsat.ReduceExact})
	if err != nil {
		log.Fatal(err)
	}
	report(toThree)
	fmt.Printf("  the allocator may still use 1..%d registers depending on the schedule\n\n", toThree.RS)

	fmt.Println("Part (b) — the minimization approach (push the need as low as possible):")
	minimal := minimizeRegisterNeed(g)
	report(minimal)
	fmt.Printf("  the allocator is now boxed into ≤ %d registers even though 3 exist\n\n", minimal.RS)

	fmt.Printf("Comparison: RS reduction added %d arcs, minimization added %d — the\n",
		len(toThree.Arcs), len(minimal.Arcs))
	fmt.Println("minimizing pass over-constrains the scheduler exactly as Section 6 argues.")

	// And when RS already fits (4 registers available), the RS approach
	// leaves the DAG untouched while minimization would still add arcs.
	fits, err := regsat.ReduceRS(g, regsat.Float, 4, regsat.ReduceOptions{Method: regsat.ReduceExact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWith R = 4 (≥ RS): RS pass adds %d arcs; minimization would still add %d.\n",
		len(fits.Arcs), len(minimal.Arcs))
}

// minimizeRegisterNeed emulates a minimizing pass (under the critical-path
// constraint) by reducing to ever-smaller budgets while the critical path
// allows it — the strategy the paper contrasts with saturation.
func minimizeRegisterNeed(g *regsat.Graph) *regsat.ReduceResult {
	cp := g.CriticalPath()
	var best *regsat.ReduceResult
	for r := 3; r >= 1; r-- {
		red, err := regsat.ReduceRS(g, regsat.Float, r, regsat.ReduceOptions{Method: regsat.ReduceExact})
		if err != nil {
			log.Fatal(err)
		}
		if red.Spill || red.CPAfter > cp {
			break // cannot go lower without stretching the critical path
		}
		best = red
	}
	if best == nil {
		log.Fatal("minimization found nothing — unexpected for Figure 2")
	}
	return best
}

func report(r *regsat.ReduceResult) {
	fmt.Printf("  reduced RS = %d, %d added arcs, critical path %d → %d\n",
		r.RS, len(r.Arcs), r.CPBefore, r.CPAfter)
	for _, a := range r.Arcs {
		fmt.Printf("    arc %s → %s (latency %d)\n",
			r.Graph.Node(a.From).Name, r.Graph.Node(a.To).Name, a.Latency)
	}
}
