// VLIW example: register saturation with architecturally visible read/write
// offsets (Section 2's δr/δw model). On a VLIW machine the value written by
// an operation only reaches its register δw cycles after issue, which
// shortens lifetimes — and RS-reduction arcs carry latency δr − δw, which
// can be non-positive (the Section 4 circuit hazard this example shows off).
//
// Run with: go run ./examples/vliw
package main

import (
	"fmt"
	"log"

	"regsat"
	"regsat/internal/kernels"
)

func main() {
	// The same SWIM-like stencil body on both machine models.
	super := kernels.ByNameMust("spec-swim").Build(regsat.Superscalar)
	vliw := kernels.ByNameMust("spec-swim").Build(regsat.VLIW)

	fmt.Println("SWIM-like shallow-water stencil, float values:")
	for _, g := range []*regsat.Graph{super, vliw} {
		res, err := regsat.ComputeRS(g, regsat.Float, regsat.RSOptions{Method: regsat.ExactBB, SkipWitness: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s RS = %2d  (critical path %d)\n", g.Machine.String()+":", res.RS, g.CriticalPath())
	}

	// Reduce the VLIW version under a tight budget and inspect the arcs:
	// their latencies are δr(u′) − δw(v) ≤ 0 here, yet the extension stays
	// a DAG (the paper's topological-sort requirement).
	const R = 6
	red, err := regsat.ReduceRS(vliw, regsat.Float, R, regsat.ReduceOptions{Method: regsat.ReduceHeuristic})
	if err != nil {
		log.Fatal(err)
	}
	if red.Spill {
		log.Fatalf("unexpected spill at R=%d", R)
	}
	fmt.Printf("\nVLIW reduction to %d registers: RS %d, +%d arcs, critical path %d → %d\n",
		R, red.RS, len(red.Arcs), red.CPBefore, red.CPAfter)
	nonPositive := 0
	for _, a := range red.Arcs {
		if a.Latency <= 0 {
			nonPositive++
		}
	}
	fmt.Printf("  %d of %d serialization arcs carry non-positive latency (δr − δw)\n",
		nonPositive, len(red.Arcs))

	// The extended DAG goes to the VLIW list scheduler completely free of
	// register constraints.
	s, err := regsat.ListSchedule(red.Graph, regsat.TypicalVLIW())
	if err != nil {
		log.Fatal(err)
	}
	rn := regsat.RegisterNeed(s, regsat.Float)
	fmt.Printf("\n4-issue VLIW list schedule: makespan %d, register need %d ≤ %d\n",
		s.Makespan(), rn, R)
	alloc, err := regsat.Allocate(s, regsat.Float, R)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated with %d registers, no spill:\n%s", alloc.Used,
		regsat.Listing(s, map[regsat.RegType]*regsat.Allocation{regsat.Float: alloc}))
}
