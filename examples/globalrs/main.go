// Global register saturation over an acyclic CFG (the paper's Section 6
// extension), plus DDG-level spill insertion when even reduction cannot fit
// the register file (the paper's stated future work).
//
// The CFG models an if/else with values crossing block boundaries:
//
//	      head:  x = load; y = load
//	     /                        \
//	then: z = x*x            else: z = x+1.0   (both define z — a merge!)
//	     \                        /
//	      tail:  store y+z
//
// Run with: go run ./examples/globalrs
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"regsat"
	"regsat/internal/kernels"
)

func main() {
	c := regsat.NewCFG("branchy", regsat.Superscalar)

	head := c.AddBlock("head")
	x := head.Body.AddNode("x", "load", 4)
	y := head.Body.AddNode("y", "load", 4)
	head.Body.SetWrites(x, regsat.Float, 0)
	head.Body.SetWrites(y, regsat.Float, 0)
	head.Export(x, "x", regsat.Float)
	head.Export(y, "y", regsat.Float)

	then := c.AddBlock("then")
	sq := then.Body.AddNode("sq", "fmul", 4)
	then.Body.SetWrites(sq, regsat.Float, 0)
	then.Import("x", sq, sq) // x*x reads x twice
	then.Export(sq, "z", regsat.Float)

	els := c.AddBlock("else")
	inc := els.Body.AddNode("inc", "fadd", 3)
	els.Body.SetWrites(inc, regsat.Float, 0)
	els.Import("x", inc)
	els.Export(inc, "z", regsat.Float) // second definition of z: a merge

	tail := c.AddBlock("tail")
	sum := tail.Body.AddNode("sum", "fadd", 3)
	st := tail.Body.AddNode("st", "store", 1)
	tail.Body.SetWrites(sum, regsat.Float, 0)
	tail.Body.AddFlowEdge(sum, st, regsat.Float)
	tail.Import("y", sum)
	tail.Import("z", sum)

	c.AddEdge(head, then)
	c.AddEdge(head, els)
	c.AddEdge(then, tail)
	c.AddEdge(els, tail)

	res, err := c.GlobalRS(context.Background(), regsat.Float, regsat.RSOptions{Method: regsat.ExactBB, SkipWitness: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-block register saturation (live-ins and live-throughs included):")
	var names []string
	for name := range res.PerBlock {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-6s RS = %d\n", name, res.PerBlock[name].RS)
	}
	fmt.Printf("global RS = %d, merge safety margin = %d → effective RS = %d\n",
		res.Global, res.SafetyMargin, res.EffectiveRS)
	fmt.Println("(z has two reaching definitions, so one register is reserved for the")
	fmt.Println(" possible merge move — the paper's §6 guidance)")

	// Part two: a DAG that no serialization can fit into 4 registers —
	// spill insertion at the DDG level breaks the impasse.
	fmt.Println("\n--- spill insertion (DDG level) ---")
	g := kernels.ByNameMust("syn-wide8").Build(regsat.Superscalar)
	base, err := regsat.ComputeRS(g, regsat.Float, regsat.RSOptions{Method: regsat.ExactBB, SkipWitness: true})
	if err != nil {
		log.Fatal(err)
	}
	const R = 3
	red, err := regsat.ReduceRS(g, regsat.Float, R, regsat.ReduceOptions{Method: regsat.ReduceHeuristic})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("syn-wide8: RS = %d; plain reduction to %d registers: spill=%v\n", base.RS, R, red.Spill)
	sp, err := regsat.SpillUntilFits(g, regsat.Float, R, 6)
	if err != nil {
		log.Fatal(err)
	}
	if sp.Failed {
		fmt.Printf("even with %d spills the budget is unreachable (honest failure)\n", len(sp.Sites))
		return
	}
	fmt.Printf("after %d spill(s) the DDG reduces to RS = %d ≤ %d with %d arcs:\n",
		len(sp.Sites), sp.RS, R, sp.Arcs)
	for _, s := range sp.Sites {
		fmt.Printf("  spilled %-4s → store %s, reload %s\n", s.Value, s.Store, s.Reload)
	}
}
