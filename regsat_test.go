package regsat

import (
	"strings"
	"testing"
)

// buildPipeline builds a small DDG through the public API only.
func buildPipeline(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph("api", Superscalar)
	a := g.AddNode("a", "load", 4)
	b := g.AddNode("b", "load", 4)
	c := g.AddNode("c", "fmul", 4)
	d := g.AddNode("d", "fadd", 3)
	g.SetWrites(a, Float, 0)
	g.SetWrites(b, Float, 0)
	g.SetWrites(c, Float, 0)
	g.SetWrites(d, Float, 0)
	g.AddFlowEdge(a, c, Float)
	g.AddFlowEdge(b, c, Float)
	g.AddFlowEdge(c, d, Float)
	g.AddFlowEdge(a, d, Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicComputeRS(t *testing.T) {
	g := buildPipeline(t)
	res, err := ComputeRS(g, Float, RSOptions{Method: ExactBB})
	if err != nil {
		t.Fatal(err)
	}
	if res.RS < 2 || res.RS > 4 {
		t.Fatalf("RS=%d out of sane range", res.RS)
	}
	if res.Witness == nil || res.Witness.RegisterNeed(Float) != res.RS {
		t.Fatal("witness missing or wrong")
	}
}

func TestPublicFullPipeline(t *testing.T) {
	// The Figure 1 pipeline: compute RS, reduce if needed, schedule,
	// allocate — all through the facade.
	g := buildPipeline(t)
	const R = 2
	res, err := ComputeRS(g, Float, RSOptions{Method: GreedyK, SkipWitness: true})
	if err != nil {
		t.Fatal(err)
	}
	work := g
	if res.RS > R {
		red, err := ReduceRS(g, Float, R, ReduceOptions{Method: ReduceExact})
		if err != nil {
			t.Fatal(err)
		}
		if red.Spill {
			t.Skip("not reducible to 2; nothing to pipeline")
		}
		work = red.Graph
	}
	s, err := ListSchedule(work, TypicalVLIW())
	if err != nil {
		t.Fatal(err)
	}
	if rn := RegisterNeed(s, Float); rn > R {
		t.Fatalf("post-RS schedule needs %d > %d registers", rn, R)
	}
	alloc, err := Allocate(s, Float, R)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Used > R {
		t.Fatalf("allocation used %d > %d", alloc.Used, R)
	}
	listing := Listing(s, map[RegType]*Allocation{Float: alloc})
	if !strings.Contains(listing, "r0") {
		t.Fatalf("listing missing register annotations:\n%s", listing)
	}
}

func TestPublicParse(t *testing.T) {
	g, err := ParseGraphString(`ddg "p" machine=vliw
node a op=load lat=4 writes=float:4
node b op=store lat=1
edge a b flow float`)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if g.Machine != VLIW {
		t.Fatal("machine lost")
	}
	if _, err := ComputeRS(g, Float, RSOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicReduceSpill(t *testing.T) {
	g := buildPipeline(t)
	res, err := ReduceRS(g, Float, 1, ReduceOptions{Method: ReduceHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spill {
		t.Fatal("c=a*b forces two live operands; R=1 must spill")
	}
}
