package regsat

// Ablation studies for the design choices DESIGN.md calls out:
//
//   - the two Section 3 intLP model optimizations (redundant-arc elimination
//     and never-simultaneously-alive pairs): model size and search effort
//     with and without;
//   - the Greedy-k candidate scoring (partial-antichain vs cheap local pair
//     count): solution quality and speed;
//   - the exact reduction's secondary max-RN search: effect on the reduced
//     saturation (register-use freedom).

import (
	"context"
	"testing"
	"time"

	"regsat/internal/ddg"
	"regsat/internal/kernels"
	"regsat/internal/reduce"
	"regsat/internal/rs"
	"regsat/internal/solver"
)

// BenchmarkAblation_ModelReductions measures the Section 3 optimizations:
// the same saturation models built with and without them.
func BenchmarkAblation_ModelReductions(b *testing.B) {
	g := kernels.ByNameMust("lin-ddot").Build(ddg.Superscalar)
	an, err := rs.NewAnalysis(g, ddg.Float)
	if err != nil {
		b.Fatal(err)
	}
	params := solver.Options{MaxNodes: 300000, TimeLimit: 60 * time.Second}
	b.Run("with-optimizations", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := rs.ExactILP(context.Background(), an, true, params)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Info.Vars), "vars")
			b.ReportMetric(float64(res.Info.Constrs), "constrs")
			b.ReportMetric(float64(res.Nodes), "bb-nodes")
		}
	})
	b.Run("without-optimizations", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := rs.ExactILP(context.Background(), an, false, params)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Info.Vars), "vars")
			b.ReportMetric(float64(res.Info.Constrs), "constrs")
			b.ReportMetric(float64(res.Nodes), "bb-nodes")
		}
	})
}

// BenchmarkAblation_GreedyScoring compares the two Greedy-k scoring metrics
// across the whole suite: quality (sum of RS* across cases) and time.
func BenchmarkAblation_GreedyScoring(b *testing.B) {
	suite := kernels.Suite(ddg.Superscalar)
	run := func(b *testing.B, scoring rs.GreedyScoring) {
		for i := 0; i < b.N; i++ {
			total := 0
			for _, g := range suite {
				for _, t := range g.Types() {
					an, err := rs.NewAnalysis(g, t)
					if err != nil {
						b.Fatal(err)
					}
					res, err := rs.GreedyWithScoring(an, scoring)
					if err != nil {
						b.Fatal(err)
					}
					total += res.RS
				}
			}
			b.ReportMetric(float64(total), "ΣRS*")
		}
	}
	b.Run("antichain-scoring", func(b *testing.B) { run(b, rs.ScoreAntichain) })
	b.Run("local-pairs-scoring", func(b *testing.B) { run(b, rs.ScoreLocalPairs) })
}

// BenchmarkAblation_MaxRNSearch measures the exact reduction with and
// without the secondary register-need maximization (the paper's "maximized
// and does not exceed R_t" reading).
func BenchmarkAblation_MaxRNSearch(b *testing.B) {
	g := kernels.ByNameMust("lin-daxpy").Build(ddg.Superscalar)
	run := func(b *testing.B, skip bool) {
		for i := 0; i < b.N; i++ {
			res, err := reduce.ExactCombinatorial(context.Background(), g, ddg.Int, 3, reduce.ExactOptions{SkipMaxRN: skip})
			if err != nil || res.Spill {
				b.Fatalf("err=%v spill=%v", err, res.Spill)
			}
			b.ReportMetric(float64(res.RS), "reduced-RS")
		}
	}
	b.Run("with-maxrn", func(b *testing.B) { run(b, false) })
	b.Run("without-maxrn", func(b *testing.B) { run(b, true) })
}

// TestAblationGreedyScoringQuality locks the quality relation: the antichain
// scoring is never worse than the local-pairs scoring on the suite (both are
// valid lower bounds of RS).
func TestAblationGreedyScoringQuality(t *testing.T) {
	worse := 0
	cases := 0
	for _, spec := range kernels.All() {
		g := spec.Build(ddg.Superscalar)
		for _, typ := range g.Types() {
			an, err := rs.NewAnalysis(g, typ)
			if err != nil {
				t.Fatal(err)
			}
			strong, err := rs.GreedyWithScoring(an, rs.ScoreAntichain)
			if err != nil {
				t.Fatal(err)
			}
			weak, err := rs.GreedyWithScoring(an, rs.ScoreLocalPairs)
			if err != nil {
				t.Fatal(err)
			}
			cases++
			if strong.RS < weak.RS {
				worse++
			}
			// Both must stay valid lower bounds.
			exact, _, err := rs.ExactBB(an, 0)
			if err != nil {
				t.Fatal(err)
			}
			if strong.RS > exact.RS || weak.RS > exact.RS {
				t.Fatalf("%s/%s: greedy exceeded exact", spec.Name, typ)
			}
		}
	}
	if worse > cases/10 {
		t.Fatalf("antichain scoring worse than local scoring in %d/%d cases", worse, cases)
	}
}
