// Package ilp provides the "linear writing" of logical formulas (⇒, ⇔, ∨, ∧)
// and of the max operator used by the paper's intLP formulations. Following
// Touati's thesis [15], each logical construct is rewritten with extra binary
// variables and big-M constants derived from the *finite* bounds of the
// participating expressions — finiteness is guaranteed in the paper by the
// worst-case schedule horizon T.
//
// All constructs are expressed over integer-valued affine expressions; the
// negation of (e ≥ 0) is encoded as (e ≤ −1), exactly as the paper negates
// k_u ≤ σ_v + δw(v) into k_u − σ_v − δw(v) − 1 ≥ 0.
package ilp

import (
	"fmt"
	"math"

	"regsat/internal/lp"
)

// Expr is an affine integer expression Σ coef·var + Const.
type Expr struct {
	Terms []lp.Term
	Const float64
}

// NewExpr builds an expression from a constant and terms.
func NewExpr(c float64, terms ...lp.Term) Expr {
	return Expr{Terms: append([]lp.Term(nil), terms...), Const: c}
}

// VarExpr is the expression consisting of a single variable.
func VarExpr(v lp.Var) Expr { return Expr{Terms: []lp.Term{{Var: v, Coef: 1}}} }

// Plus returns e + other.
func (e Expr) Plus(other Expr) Expr {
	return Expr{
		Terms: append(append([]lp.Term(nil), e.Terms...), other.Terms...),
		Const: e.Const + other.Const,
	}
}

// Minus returns e − other.
func (e Expr) Minus(other Expr) Expr {
	out := Expr{Terms: append([]lp.Term(nil), e.Terms...), Const: e.Const - other.Const}
	for _, t := range other.Terms {
		out.Terms = append(out.Terms, lp.Term{Var: t.Var, Coef: -t.Coef})
	}
	return out
}

// AddConst returns e + c.
func (e Expr) AddConst(c float64) Expr {
	return Expr{Terms: append([]lp.Term(nil), e.Terms...), Const: e.Const + c}
}

// Bounds computes finite lower and upper bounds of e from the variable bounds
// declared in the model. Duplicate terms on the same variable are merged
// first, so e.g. x − x is bounded by [0,0]. It panics if any participating
// variable bound is infinite, because the linearization requires finite
// big-M constants.
func Bounds(m *lp.Model, e Expr) (lo, hi float64) {
	merged := make(map[lp.Var]float64, len(e.Terms))
	for _, t := range e.Terms {
		merged[t.Var] += t.Coef
	}
	lo, hi = e.Const, e.Const
	for v, coef := range merged {
		if coef == 0 {
			continue
		}
		vlo, vhi := m.Bounds(v)
		if math.IsInf(vlo, 0) || math.IsInf(vhi, 0) {
			panic(fmt.Sprintf("ilp: variable %s has infinite bounds", m.VarName(v)))
		}
		if coef >= 0 {
			lo += coef * vlo
			hi += coef * vhi
		} else {
			lo += coef * vhi
			hi += coef * vlo
		}
	}
	return lo, hi
}

// GE adds the plain constraint e ≥ 0.
func GE(m *lp.Model, e Expr, name string) {
	m.AddConstr(e.Terms, lp.GE, -e.Const, name)
}

// LE adds the plain constraint e ≤ 0.
func LE(m *lp.Model, e Expr, name string) {
	m.AddConstr(e.Terms, lp.LE, -e.Const, name)
}

// EQ adds the plain constraint e = 0.
func EQ(m *lp.Model, e Expr, name string) {
	m.AddConstr(e.Terms, lp.EQ, -e.Const, name)
}

// ImpliesGE encodes b = 1 ⇒ e ≥ 0 for a binary variable b:
//
//	e ≥ lo(e)·(1 − b)
//
// When b = 0 the constraint relaxes to the always-true e ≥ lo(e).
func ImpliesGE(m *lp.Model, b lp.Var, e Expr, name string) {
	lo, _ := Bounds(m, e)
	if lo >= 0 {
		return // e ≥ 0 holds unconditionally
	}
	// e − lo + lo·b ≥ 0  ⇔  Σterms + lo·b ≥ lo − const
	terms := append(append([]lp.Term(nil), e.Terms...), lp.Term{Var: b, Coef: lo})
	m.AddConstr(terms, lp.GE, lo-e.Const, name)
}

// ImpliesGEWhenZero encodes b = 0 ⇒ e ≥ 0 for a binary variable b:
//
//	e ≥ lo(e)·b.
func ImpliesGEWhenZero(m *lp.Model, b lp.Var, e Expr, name string) {
	lo, _ := Bounds(m, e)
	if lo >= 0 {
		return
	}
	// e − lo·b ≥ 0  ⇔  Σterms − lo·b ≥ −const
	terms := append(append([]lp.Term(nil), e.Terms...), lp.Term{Var: b, Coef: -lo})
	m.AddConstr(terms, lp.GE, -e.Const, name)
}

// ImpliesLE encodes b = 1 ⇒ e ≤ 0 for a binary variable b.
func ImpliesLE(m *lp.Model, b lp.Var, e Expr, name string) {
	_, hi := Bounds(m, e)
	if hi <= 0 {
		return
	}
	// e ≤ hi·(1 − b)  ⇔  Σterms + hi·b ≤ hi − const
	terms := append(append([]lp.Term(nil), e.Terms...), lp.Term{Var: b, Coef: hi})
	m.AddConstr(terms, lp.LE, hi-e.Const, name)
}

// IffGE creates and returns a fresh binary b with b = 1 ⇔ e ≥ 0, where e is
// integer-valued (so that ¬(e ≥ 0) is e ≤ −1):
//
//	b = 1 ⇒ e ≥ 0     and     b = 0 ⇒ e ≤ −1.
func IffGE(m *lp.Model, e Expr, name string) lp.Var {
	b := m.NewBinary(name)
	ImpliesGE(m, b, e, name+"/fwd")
	// b = 0 ⇒ e + 1 ≤ 0, i.e. (1−b) = 1 ⇒ e + 1 ≤ 0: e + 1 ≤ (hi+1)·b.
	_, hi := Bounds(m, e)
	if hi <= -1 {
		// e ≤ −1 always: b is forced to… both directions hold only for b=0?
		// e ≥ 0 can never hold, so force b = 0.
		m.AddConstr([]lp.Term{{Var: b, Coef: 1}}, lp.EQ, 0, name+"/force0")
		return b
	}
	lo, _ := Bounds(m, e)
	if lo >= 0 {
		// e ≥ 0 always: force b = 1.
		m.AddConstr([]lp.Term{{Var: b, Coef: 1}}, lp.EQ, 1, name+"/force1")
		return b
	}
	terms := append(append([]lp.Term(nil), e.Terms...), lp.Term{Var: b, Coef: -(hi + 1)})
	m.AddConstr(terms, lp.LE, -1-e.Const, name+"/bwd")
	return b
}

// AndBinary creates and returns a fresh binary c = a ∧ b:
//
//	c ≥ a + b − 1,  c ≤ a,  c ≤ b.
func AndBinary(m *lp.Model, a, b lp.Var, name string) lp.Var {
	c := m.NewBinary(name)
	m.AddConstr([]lp.Term{{Var: c, Coef: 1}, {Var: a, Coef: -1}, {Var: b, Coef: -1}}, lp.GE, -1, name+"/ge")
	m.AddConstr([]lp.Term{{Var: c, Coef: 1}, {Var: a, Coef: -1}}, lp.LE, 0, name+"/lea")
	m.AddConstr([]lp.Term{{Var: c, Coef: 1}, {Var: b, Coef: -1}}, lp.LE, 0, name+"/leb")
	return c
}

// OrBinary creates and returns a fresh binary c = a ∨ b:
//
//	c ≤ a + b,  c ≥ a,  c ≥ b.
func OrBinary(m *lp.Model, a, b lp.Var, name string) lp.Var {
	c := m.NewBinary(name)
	m.AddConstr([]lp.Term{{Var: c, Coef: 1}, {Var: a, Coef: -1}, {Var: b, Coef: -1}}, lp.LE, 0, name+"/le")
	m.AddConstr([]lp.Term{{Var: c, Coef: 1}, {Var: a, Coef: -1}}, lp.GE, 0, name+"/gea")
	m.AddConstr([]lp.Term{{Var: c, Coef: 1}, {Var: b, Coef: -1}}, lp.GE, 0, name+"/geb")
	return c
}

// OrGE enforces the disjunction e₁ ≥ 0 ∨ e₂ ≥ 0 ∨ … with one fresh binary
// per disjunct and Σ bᵢ ≥ 1.
func OrGE(m *lp.Model, es []Expr, name string) []lp.Var {
	bs := make([]lp.Var, len(es))
	sum := make([]lp.Term, len(es))
	for i, e := range es {
		bs[i] = m.NewBinary(fmt.Sprintf("%s/or%d", name, i))
		ImpliesGE(m, bs[i], e, fmt.Sprintf("%s/d%d", name, i))
		sum[i] = lp.Term{Var: bs[i], Coef: 1}
	}
	m.AddConstr(sum, lp.GE, 1, name+"/sum")
	return bs
}

// MaxEquals enforces y = max(e₁, …, e_k) with k fresh binaries:
//
//	y ≥ eᵢ for all i;  Σ bᵢ = 1;  bᵢ = 1 ⇒ y ≤ eᵢ.
//
// y must have finite declared bounds covering the range of the eᵢ.
func MaxEquals(m *lp.Model, y lp.Var, es []Expr, name string) []lp.Var {
	if len(es) == 0 {
		panic("ilp: MaxEquals needs at least one expression")
	}
	yExpr := VarExpr(y)
	if len(es) == 1 {
		EQ(m, yExpr.Minus(es[0]), name+"/eq")
		return nil
	}
	bs := make([]lp.Var, len(es))
	sum := make([]lp.Term, len(es))
	for i, e := range es {
		GE(m, yExpr.Minus(e), fmt.Sprintf("%s/ge%d", name, i))
		bs[i] = m.NewBinary(fmt.Sprintf("%s/sel%d", name, i))
		ImpliesLE(m, bs[i], yExpr.Minus(e), fmt.Sprintf("%s/le%d", name, i))
		sum[i] = lp.Term{Var: bs[i], Coef: 1}
	}
	m.AddConstr(sum, lp.EQ, 1, name+"/one")
	return bs
}
