package ilp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"regsat/internal/lp"
	"regsat/internal/solver"
)

// solve runs the model through EVERY registered MILP backend, requires each
// to prove optimality, cross-checks their objectives, and returns the dense
// reference solution — so each linearization test doubles as a differential
// test of the solving layer.
func solve(t *testing.T, m *lp.Model) *lp.Solution {
	t.Helper()
	ref := m.Solve(lp.Params{})
	if ref.Status != lp.StatusOptimal {
		t.Fatalf("status=%v, want optimal", ref.Status)
	}
	for _, b := range solver.Names() {
		sol, err := solver.Solve(context.Background(), m, solver.Options{Backend: b, Parallel: 2})
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("%s: status=%v, want optimal", b, sol.Status)
		}
		if math.Abs(sol.Obj-ref.Obj) > 1e-6 {
			t.Fatalf("%s: obj=%g, dense=%g", b, sol.Obj, ref.Obj)
		}
	}
	return ref
}

func TestExprAlgebra(t *testing.T) {
	m := lp.NewModel("t", lp.Minimize)
	x := m.NewVar(0, 10, true, "x")
	y := m.NewVar(0, 10, true, "y")
	e := VarExpr(x).Plus(VarExpr(y)).AddConst(3).Minus(NewExpr(1, lp.Term{Var: y, Coef: 1}))
	// e = x + y + 3 − 1 − y = x + 2
	lo, hi := Bounds(m, e)
	if lo != 2 || hi != 12 {
		t.Fatalf("bounds=[%g,%g], want [2,12]", lo, hi)
	}
}

func TestBoundsNegativeCoef(t *testing.T) {
	m := lp.NewModel("t", lp.Minimize)
	x := m.NewVar(2, 5, true, "x")
	e := NewExpr(1, lp.Term{Var: x, Coef: -2})
	lo, hi := Bounds(m, e)
	if lo != -9 || hi != -3 {
		t.Fatalf("bounds=[%g,%g], want [-9,-3]", lo, hi)
	}
}

func TestImpliesGEForcing(t *testing.T) {
	// b=1 must force x ≥ 5 when we also maximize b.
	m := lp.NewModel("t", lp.Maximize)
	x := m.NewVar(0, 10, true, "x")
	b := m.NewBinary("b")
	m.SetObjCoef(b, 10)
	m.SetObjCoef(x, -1) // prefer small x
	ImpliesGE(m, b, NewExpr(-5, lp.Term{Var: x, Coef: 1}), "imp")
	sol := solve(t, m)
	if sol.IntValue(b) != 1 || sol.IntValue(x) != 5 {
		t.Fatalf("b=%d x=%d, want b=1 x=5", sol.IntValue(b), sol.IntValue(x))
	}
}

func TestImpliesGERelaxedWhenZero(t *testing.T) {
	// b=0 leaves x free: minimizing x gives 0.
	m := lp.NewModel("t", lp.Minimize)
	x := m.NewVar(0, 10, true, "x")
	b := m.NewBinary("b")
	m.SetObjCoef(x, 1)
	m.AddConstr([]lp.Term{{Var: b, Coef: 1}}, lp.EQ, 0, "fix")
	ImpliesGE(m, b, NewExpr(-5, lp.Term{Var: x, Coef: 1}), "imp")
	sol := solve(t, m)
	if sol.IntValue(x) != 0 {
		t.Fatalf("x=%d, want 0 (implication disabled)", sol.IntValue(x))
	}
}

func TestImpliesLEForcing(t *testing.T) {
	// b=1 ⇒ x ≤ 3 while maximizing x with b forced to 1.
	m := lp.NewModel("t", lp.Maximize)
	x := m.NewVar(0, 10, true, "x")
	b := m.NewBinary("b")
	m.SetObjCoef(x, 1)
	m.AddConstr([]lp.Term{{Var: b, Coef: 1}}, lp.EQ, 1, "fix")
	ImpliesLE(m, b, NewExpr(-3, lp.Term{Var: x, Coef: 1}), "imp")
	sol := solve(t, m)
	if sol.IntValue(x) != 3 {
		t.Fatalf("x=%d, want 3", sol.IntValue(x))
	}
}

func TestIffGEBothDirections(t *testing.T) {
	// b ⇔ (x − 5 ≥ 0). Check both values of x force the right b.
	for _, tc := range []struct {
		xFix  int64
		wantB int64
	}{{7, 1}, {5, 1}, {4, 0}, {0, 0}} {
		m := lp.NewModel("t", lp.Maximize)
		x := m.NewVar(0, 10, true, "x")
		m.AddConstr([]lp.Term{{Var: x, Coef: 1}}, lp.EQ, float64(tc.xFix), "fixx")
		b := IffGE(m, NewExpr(-5, lp.Term{Var: x, Coef: 1}), "iff")
		// Objective pulls b the wrong way to prove the constraint binds.
		if tc.wantB == 1 {
			m.SetObjCoef(b, -1)
		} else {
			m.SetObjCoef(b, 1)
		}
		sol := solve(t, m)
		if sol.IntValue(b) != tc.wantB {
			t.Fatalf("x=%d: b=%d, want %d", tc.xFix, sol.IntValue(b), tc.wantB)
		}
	}
}

func TestIffGEDegenerateAlwaysTrue(t *testing.T) {
	m := lp.NewModel("t", lp.Minimize)
	x := m.NewVar(3, 10, true, "x")
	b := IffGE(m, VarExpr(x), "iff") // x ≥ 0 always
	m.SetObjCoef(b, 1)               // try to push b to 0
	sol := solve(t, m)
	if sol.IntValue(b) != 1 {
		t.Fatalf("b=%d, want forced 1", sol.IntValue(b))
	}
}

func TestIffGEDegenerateAlwaysFalse(t *testing.T) {
	m := lp.NewModel("t", lp.Maximize)
	x := m.NewVar(0, 4, true, "x")
	b := IffGE(m, NewExpr(-5, lp.Term{Var: x, Coef: 1}), "iff") // x ≥ 5 impossible
	m.SetObjCoef(b, 1)                                          // try to push b to 1
	sol := solve(t, m)
	if sol.IntValue(b) != 0 {
		t.Fatalf("b=%d, want forced 0", sol.IntValue(b))
	}
}

func TestAndBinaryTruthTable(t *testing.T) {
	for _, tc := range []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 1, 0}, {1, 0, 0}, {1, 1, 1},
	} {
		m := lp.NewModel("t", lp.Maximize)
		a := m.NewBinary("a")
		b := m.NewBinary("b")
		m.AddConstr([]lp.Term{{Var: a, Coef: 1}}, lp.EQ, float64(tc.a), "fa")
		m.AddConstr([]lp.Term{{Var: b, Coef: 1}}, lp.EQ, float64(tc.b), "fb")
		c := AndBinary(m, a, b, "and")
		if tc.want == 1 {
			m.SetObjCoef(c, -1)
		} else {
			m.SetObjCoef(c, 1)
		}
		sol := solve(t, m)
		if sol.IntValue(c) != tc.want {
			t.Fatalf("a=%d b=%d: and=%d, want %d", tc.a, tc.b, sol.IntValue(c), tc.want)
		}
	}
}

func TestOrBinaryTruthTable(t *testing.T) {
	for _, tc := range []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1},
	} {
		m := lp.NewModel("t", lp.Maximize)
		a := m.NewBinary("a")
		b := m.NewBinary("b")
		m.AddConstr([]lp.Term{{Var: a, Coef: 1}}, lp.EQ, float64(tc.a), "fa")
		m.AddConstr([]lp.Term{{Var: b, Coef: 1}}, lp.EQ, float64(tc.b), "fb")
		c := OrBinary(m, a, b, "or")
		if tc.want == 1 {
			m.SetObjCoef(c, -1)
		} else {
			m.SetObjCoef(c, 1)
		}
		sol := solve(t, m)
		if sol.IntValue(c) != tc.want {
			t.Fatalf("a=%d b=%d: or=%d, want %d", tc.a, tc.b, sol.IntValue(c), tc.want)
		}
	}
}

func TestOrGEAtLeastOneHolds(t *testing.T) {
	// x ≥ 7 ∨ x ≤ 2 (written as 2−x ≥ 0); minimizing x gives 0; forcing
	// x ≥ 3 via an extra constraint pushes the solution to x = 7.
	m := lp.NewModel("t", lp.Minimize)
	x := m.NewVar(0, 10, true, "x")
	m.SetObjCoef(x, 1)
	OrGE(m, []Expr{
		NewExpr(-7, lp.Term{Var: x, Coef: 1}),
		NewExpr(2, lp.Term{Var: x, Coef: -1}),
	}, "or")
	m.AddConstr([]lp.Term{{Var: x, Coef: 1}}, lp.GE, 3, "push")
	sol := solve(t, m)
	if sol.IntValue(x) != 7 {
		t.Fatalf("x=%d, want 7", sol.IntValue(x))
	}
}

func TestMaxEqualsComputesMax(t *testing.T) {
	// y = max(a, b, c) with fixed a, b, c. MaxEquals pins y to the exact max
	// regardless of the objective; push y upward to prove the ≤ side binds.
	for _, tc := range []struct {
		a, b, c int64
		want    int64
	}{{3, 7, 5, 7}, {9, 1, 1, 9}, {2, 2, 2, 2}, {0, 0, 6, 6}} {
		m := lp.NewModel("t", lp.Minimize)
		a := m.NewVar(0, 10, true, "a")
		b := m.NewVar(0, 10, true, "b")
		c := m.NewVar(0, 10, true, "c")
		y := m.NewVar(0, 100, true, "y")
		m.AddConstr([]lp.Term{{Var: a, Coef: 1}}, lp.EQ, float64(tc.a), "fa")
		m.AddConstr([]lp.Term{{Var: b, Coef: 1}}, lp.EQ, float64(tc.b), "fb")
		m.AddConstr([]lp.Term{{Var: c, Coef: 1}}, lp.EQ, float64(tc.c), "fc")
		MaxEquals(m, y, []Expr{VarExpr(a), VarExpr(b), VarExpr(c)}, "max")
		m.SetObjCoef(y, -1) // minimize −y = maximize y: must not exceed the max
		sol := solve(t, m)
		if sol.IntValue(y) != tc.want {
			t.Fatalf("max(%d,%d,%d)=%d, want %d", tc.a, tc.b, tc.c, sol.IntValue(y), tc.want)
		}
	}
}

func TestMaxEqualsSingleExpr(t *testing.T) {
	m := lp.NewModel("t", lp.Minimize)
	a := m.NewVar(4, 4, true, "a")
	y := m.NewVar(0, 100, true, "y")
	if bs := MaxEquals(m, y, []Expr{VarExpr(a)}, "max"); bs != nil {
		t.Fatal("single-expression max should not create binaries")
	}
	sol := solve(t, m)
	if sol.IntValue(y) != 4 {
		t.Fatalf("y=%d, want 4", sol.IntValue(y))
	}
}

func TestMaxEqualsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		k := 2 + rng.Intn(4)
		vals := make([]int64, k)
		want := int64(math.MinInt64)
		m := lp.NewModel("t", lp.Minimize)
		es := make([]Expr, k)
		for i := 0; i < k; i++ {
			vals[i] = int64(rng.Intn(21))
			if vals[i] > want {
				want = vals[i]
			}
			v := m.NewVar(float64(vals[i]), float64(vals[i]), true, "v")
			es[i] = VarExpr(v)
		}
		y := m.NewVar(0, 50, true, "y")
		MaxEquals(m, y, es, "max")
		sol := solve(t, m)
		if sol.IntValue(y) != want {
			t.Fatalf("trial %d: y=%d, want %d (vals=%v)", trial, sol.IntValue(y), want, vals)
		}
	}
}

func TestPlainRelations(t *testing.T) {
	m := lp.NewModel("t", lp.Maximize)
	x := m.NewVar(0, 10, true, "x")
	m.SetObjCoef(x, 1)
	LE(m, NewExpr(-6, lp.Term{Var: x, Coef: 1}), "le") // x ≤ 6
	sol := solve(t, m)
	if sol.IntValue(x) != 6 {
		t.Fatalf("x=%d, want 6", sol.IntValue(x))
	}

	m2 := lp.NewModel("t2", lp.Minimize)
	y := m2.NewVar(0, 10, true, "y")
	m2.SetObjCoef(y, 1)
	GE(m2, NewExpr(-4, lp.Term{Var: y, Coef: 1}), "ge") // y ≥ 4
	sol2 := solve(t, m2)
	if sol2.IntValue(y) != 4 {
		t.Fatalf("y=%d, want 4", sol2.IntValue(y))
	}

	m3 := lp.NewModel("t3", lp.Minimize)
	z := m3.NewVar(0, 10, true, "z")
	EQ(m3, NewExpr(-5, lp.Term{Var: z, Coef: 1}), "eq") // z = 5
	sol3 := solve(t, m3)
	if sol3.IntValue(z) != 5 {
		t.Fatalf("z=%d, want 5", sol3.IntValue(z))
	}
}
