package spill

import (
	"context"
	"testing"

	"regsat/internal/ddg"
	"regsat/internal/kernels"
	"regsat/internal/rs"
)

func exactRS(t *testing.T, g *ddg.Graph, typ ddg.RegType) int {
	t.Helper()
	res, err := rs.Compute(context.Background(), g, typ, rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.RS
}

func TestNoSpillWhenReducible(t *testing.T) {
	g := kernels.Figure2(ddg.Superscalar)
	res, err := UntilFits(context.Background(), g, ddg.Float, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || len(res.Sites) != 0 {
		t.Fatalf("failed=%v sites=%d — Figure 2 reduces to 3 without spilling",
			res.Failed, len(res.Sites))
	}
	if res.RS > 3 {
		t.Fatalf("RS=%d", res.RS)
	}
}

// wideProducers builds a DAG whose minimum schedulable register need exceeds
// small budgets: one consumer reads four long-lived values at once.
func wideProducers(t *testing.T) *ddg.Graph {
	t.Helper()
	g := ddg.New("wide4", ddg.Superscalar)
	var vals []int
	for i := 0; i < 4; i++ {
		v := g.AddNode(string(rune('a'+i)), "load", 4)
		g.SetWrites(v, ddg.Float, 0)
		vals = append(vals, v)
	}
	s1 := g.AddNode("s1", "fadd", 3)
	g.SetWrites(s1, ddg.Float, 0)
	for _, v := range vals {
		g.AddFlowEdge(v, s1, ddg.Float)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpillBreaksIrreducible(t *testing.T) {
	g := wideProducers(t)
	// Four operands of s1 must be alive at its issue: no serialization can
	// reach 3 registers, but spilling can't help either — a reload still
	// has to be live at s1. Spilling helps only when consumers differ.
	// Here we check the loop terminates and reports honestly.
	res, err := UntilFits(context.Background(), g, ddg.Float, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		// If it succeeded, the resulting graph must genuinely fit.
		if got := exactRS(t, res.Graph, ddg.Float); got > 3 {
			t.Fatalf("claimed success but RS=%d", got)
		}
	}
}

// splitConsumers: the value x is consumed early by c1 and very late by c2 —
// the classic case where a spill shortens the register lifetime.
func splitConsumers(t *testing.T) *ddg.Graph {
	t.Helper()
	g := ddg.New("split", ddg.Superscalar)
	x := g.AddNode("x", "load", 4)
	g.SetWrites(x, ddg.Float, 0)
	c1 := g.AddNode("c1", "fadd", 3)
	g.SetWrites(c1, ddg.Float, 0)
	g.AddFlowEdge(x, c1, ddg.Float)
	// A long chain between the two uses keeps x alive across everything.
	prev := c1
	for i := 0; i < 4; i++ {
		n := g.AddNode(string(rune('p'+i)), "fmul", 4)
		g.SetWrites(n, ddg.Float, 0)
		g.AddFlowEdge(prev, n, ddg.Float)
		prev = n
	}
	c2 := g.AddNode("c2", "fadd", 3)
	g.SetWrites(c2, ddg.Float, 0)
	g.AddFlowEdge(x, c2, ddg.Float)
	g.AddFlowEdge(prev, c2, ddg.Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpillInsertionTransformsGraph(t *testing.T) {
	g := splitConsumers(t)
	next, site, err := insertSpill(g, ddg.Float, g.NodeByName("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
	// x now flows only into its store.
	x := next.NodeByName("x")
	cons := next.Cons(x, ddg.Float)
	if len(cons) != 1 || next.Node(cons[0]).Name != site.Store {
		t.Fatalf("x's consumers after spill: %v", cons)
	}
	// The reload feeds the original consumers.
	ld := next.NodeByName(site.Reload)
	if ld < 0 {
		t.Fatal("reload missing")
	}
	ldCons := next.Cons(ld, ddg.Float)
	if len(ldCons) != 2 {
		t.Fatalf("reload consumers: %v, want c1 and c2", ldCons)
	}
	// Spilling must not increase the saturation.
	if before, after := exactRS(t, g, ddg.Float), exactRS(t, next, ddg.Float); after > before {
		t.Fatalf("spill increased RS %d → %d", before, after)
	}
}

func TestUntilFitsOnSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow exhaustive check; skipped with -short")
	}
	// Drive every kernel to a harsh budget; every success claim must hold
	// (validated graph, honest saturation), and failures must be honest.
	for _, spec := range kernels.All() {
		g := spec.Build(ddg.Superscalar)
		for _, typ := range g.Types() {
			rsv := exactRS(t, g, typ)
			if rsv < 3 {
				continue
			}
			R := 2
			res, err := UntilFits(context.Background(), g, typ, R, 3)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, typ, err)
			}
			if err := res.Graph.Validate(); err != nil {
				t.Fatalf("%s/%s: invalid graph after spilling: %v", spec.Name, typ, err)
			}
			if !res.Failed && res.RS > R {
				t.Fatalf("%s/%s: claimed success with RS=%d > %d", spec.Name, typ, res.RS, R)
			}
		}
	}
}

func TestSpillBreaksReductionTree(t *testing.T) {
	// syn-wide8 is a balanced reduction tree: its Sethi–Ullman register
	// need is 4, so no serialization reaches 3 — but spilling one inner
	// node does. This is the paper's future-work scenario: spill decisions
	// taken at the DDG level, breaking the schedule-then-spill iteration.
	g := kernels.ByNameMust("syn-wide8").Build(ddg.Superscalar)
	res, err := UntilFits(context.Background(), g, ddg.Float, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("spilling must reach 3 registers on the reduction tree")
	}
	if len(res.Sites) == 0 || len(res.Sites) > 3 {
		t.Fatalf("sites=%d, want a small number (1 suffices)", len(res.Sites))
	}
	if res.Sites[0].Value == "" || res.Graph.NodeByName(res.Sites[0].Store) < 0 {
		t.Fatal("spill site malformed")
	}
	// The chosen candidate must be an inner node, not a load.
	for _, s := range res.Sites {
		orig := g.NodeByName(s.Value)
		if orig >= 0 && g.Node(orig).Op == "load" {
			t.Fatalf("spilled a load (%s) — useless rematerialization", s.Value)
		}
	}
	if got := exactRS(t, res.Graph, ddg.Float); got > 3 {
		t.Fatalf("true RS after spilling = %d > 3", got)
	}
}

func TestSpillSiteNaming(t *testing.T) {
	g := splitConsumers(t)
	res, err := UntilFits(context.Background(), g, ddg.Float, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sites {
		if s.Store == "" || s.Reload == "" || s.Value == "" {
			t.Fatalf("incomplete site %+v", s)
		}
		if res.Graph.NodeByName(s.Store) < 0 || res.Graph.NodeByName(s.Reload) < 0 {
			t.Fatalf("site nodes missing from final graph: %+v", s)
		}
	}
}
