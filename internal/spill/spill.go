// Package spill inserts spill code at the data dependence graph level — the
// future work the paper's conclusion calls for ("the minimal spill code
// insertion in data dependence graphs … must be taken into account at the
// data dependence graph level in order to break this iterative problem").
//
// When RS reduction reports that no serialization can bring the saturation
// below the register budget, a value is chosen and split through memory: a
// store ends its register lifetime early and a reload re-materializes it
// for its consumers. The transformed DDG is then re-analyzed; the loop runs
// at the DDG level only — no schedule is ever patched, which is exactly the
// iterative scheduling-then-spilling problem the paper wants broken.
package spill

import (
	"context"
	"fmt"
	"sort"

	"regsat/internal/ddg"
	"regsat/internal/reduce"
	"regsat/internal/rs"
)

// Latencies of the inserted memory operations (match the kernel suite).
const (
	StoreLatency  = 1
	ReloadLatency = 4
)

// Site records one inserted spill.
type Site struct {
	// Value is the name of the spilled value's defining node.
	Value string
	// Store and Reload are the names of the inserted operations.
	Store, Reload string
}

// Result is the outcome of UntilFits.
type Result struct {
	// Graph is the transformed DDG (spill code inserted), reduced to the
	// budget when Failed is false.
	Graph *ddg.Graph
	// Sites lists the inserted spills in order.
	Sites []Site
	// RS is the saturation of the final graph (Greedy-k estimate).
	RS int
	// Arcs counts serialization arcs added by the final reduction.
	Arcs int
	// Failed is true when even spilling cannot reach the budget (e.g. an
	// operation's operands alone exceed it).
	Failed bool
}

// UntilFits alternates RS reduction and spill insertion until the
// saturation fits the budget or no further spill helps. maxSpills bounds
// the number of inserted store/reload pairs (0 = number of values).
func UntilFits(ctx context.Context, g *ddg.Graph, t ddg.RegType, available int, maxSpills int) (*Result, error) {
	if maxSpills == 0 {
		maxSpills = len(g.Values(t))
	}
	res := &Result{Graph: g}
	spilled := map[string]bool{}
	for len(res.Sites) <= maxSpills {
		red, err := reduce.Heuristic(ctx, res.Graph, t, available)
		if err != nil {
			return nil, err
		}
		if !red.Spill {
			res.Graph = red.Graph
			res.RS = red.RS
			res.Arcs = len(red.Arcs)
			return res, nil
		}
		if len(res.Sites) == maxSpills {
			break
		}
		// Pick a spill candidate among the currently saturating values (the
		// analysis rides on the snapshot the heuristic reduction above
		// already interned for the same graph).
		sat, err := rs.Compute(ctx, res.Graph, t, rs.Options{Method: rs.MethodGreedy, SkipWitness: true})
		if err != nil {
			return nil, err
		}
		cand := chooseCandidate(res.Graph, t, sat.Antichain, spilled)
		if cand < 0 {
			break // nothing spillable remains
		}
		name := res.Graph.Node(cand).Name
		next, site, err := insertSpill(res.Graph, t, cand, len(res.Sites))
		if err != nil {
			return nil, err
		}
		spilled[name] = true
		spilled[site.Reload] = true // never re-spill a reload
		res.Graph = next
		res.Sites = append(res.Sites, site)
	}
	// Out of spill budget: report the best we know.
	sat, err := rs.Compute(ctx, res.Graph, t, rs.Options{Method: rs.MethodGreedy, SkipWitness: true})
	if err != nil {
		return nil, err
	}
	res.RS = sat.RS
	res.Failed = true
	return res, nil
}

// chooseCandidate picks the value whose spilling frees the most pressure.
// Three candidate pools are tried in order:
//
//  1. computed (non-load) values inside the saturating antichain,
//  2. computed values anywhere in the graph — the pressure bottleneck of
//     the *minimum* schedule need not sit inside the saturating antichain
//     (e.g. reduction trees, whose Sethi–Ullman need comes from inner
//     nodes while the saturating set is all leaves),
//  3. loads in the antichain as a last resort (a reload is just the same
//     load again, so this almost never helps).
//
// Within a pool: most real consumers first, then the longest-latency
// definition, then node order. Already-spilled values and exit-only values
// are excluded.
func chooseCandidate(g *ddg.Graph, t ddg.RegType, antichain []int, spilled map[string]bool) int {
	inAntichain := map[int]bool{}
	for _, u := range antichain {
		inAntichain[u] = true
	}
	allValues := g.Values(t)
	sort.Ints(allValues)
	pools := []func(u int) bool{
		func(u int) bool { return inAntichain[u] && !rematerializable(g, u) },
		func(u int) bool { return !rematerializable(g, u) },
		func(u int) bool { return inAntichain[u] },
	}
	for _, pool := range pools {
		best, bestCons, bestLat := -1, -1, int64(-1)
		for _, u := range allValues {
			n := g.Node(u)
			if spilled[n.Name] || !pool(u) {
				continue
			}
			realCons := 0
			for _, c := range g.Cons(u, t) {
				if c != g.Bottom() {
					realCons++
				}
			}
			if realCons == 0 {
				continue // exit value: a spill would not shorten anything local
			}
			if realCons > bestCons || (realCons == bestCons && n.Latency > bestLat) {
				best, bestCons, bestLat = u, realCons, n.Latency
			}
		}
		if best >= 0 {
			return best
		}
	}
	return -1
}

func rematerializable(g *ddg.Graph, u int) bool {
	op := g.Node(u).Op
	return op == "load" || op == "entry"
}

// insertSpill rebuilds the graph with value u split through memory:
//
//	u → store;   store →(serial, store+reload delay) reload;
//	reload → every original consumer of u.
func insertSpill(g *ddg.Graph, t ddg.RegType, u int, seq int) (*ddg.Graph, Site, error) {
	bottom := g.Bottom()
	out := ddg.New(g.Name, g.Machine)
	// Copy every node except ⊥, preserving IDs (⊥ is always last).
	for i := 0; i < g.NumNodes(); i++ {
		if i == bottom {
			continue
		}
		n := g.Node(i)
		id := out.AddNode(n.Name, n.Op, n.Latency)
		if n.DelayR != 0 {
			out.SetReadDelay(id, n.DelayR)
		}
		for typ, dw := range n.Writes {
			out.SetWrites(id, typ, dw)
		}
	}
	site := Site{
		Value:  g.Node(u).Name,
		Store:  fmt.Sprintf("spst%d.%s", seq, g.Node(u).Name),
		Reload: fmt.Sprintf("spld%d.%s", seq, g.Node(u).Name),
	}
	st := out.AddNode(site.Store, "store", StoreLatency)
	ld := out.AddNode(site.Reload, "load", ReloadLatency)
	var dwReload int64
	if g.Machine == ddg.VLIW {
		dwReload = ReloadLatency
	}
	out.SetWrites(ld, t, dwReload)

	// Copy edges, rerouting u's type-t flow edges through the reload.
	for _, e := range g.Edges() {
		if e.From == bottom || e.To == bottom {
			continue
		}
		if e.Kind == ddg.Flow && e.From == u && e.Type == t {
			out.AddFlowEdgeLatency(ld, e.To, t, ReloadLatency)
			continue
		}
		if e.Kind == ddg.Flow {
			out.AddFlowEdgeLatency(e.From, e.To, e.Type, e.Latency)
		} else {
			out.AddSerialEdge(e.From, e.To, e.Latency)
		}
	}
	// The value now flows only into its store; the reload waits for the
	// store to complete (memory round trip).
	out.AddFlowEdgeLatency(u, st, t, g.Node(u).Latency)
	out.AddSerialEdge(st, ld, StoreLatency)
	if err := out.Finalize(); err != nil {
		return nil, site, err
	}
	return out, site, nil
}
