package schedule

import (
	"fmt"
	"sort"

	"regsat/internal/ddg"
	"regsat/internal/ir"
)

// Resources describes the functional units of the target machine for the
// post-RS instruction scheduling pass. Operations are fully pipelined: each
// op occupies one unit of its class for one cycle at issue.
type Resources struct {
	// IssueWidth caps the number of operations issued per cycle (0 = no cap).
	IssueWidth int
	// Units maps a functional-unit class to its unit count. Classes absent
	// from the map are unlimited.
	Units map[string]int
	// ClassOf maps an op mnemonic to its unit class; nil uses DefaultClassOf.
	ClassOf func(op string) string
}

// DefaultClassOf maps the kernel-suite mnemonics onto four classic classes:
// mem, falu, fmul (mul/div), and ialu.
func DefaultClassOf(op string) string {
	switch op {
	case "load", "store":
		return "mem"
	case "fadd", "fsub", "copy", "fldc":
		return "falu"
	case "fmul", "fdiv":
		return "fmul"
	case "iadd", "isub", "imul", "ldc":
		return "ialu"
	default:
		return "other"
	}
}

// TypicalVLIW returns a 4-issue machine with 2 memory ports, 2 float ALUs,
// 1 multiplier and 2 integer ALUs.
func TypicalVLIW() Resources {
	return Resources{
		IssueWidth: 4,
		Units:      map[string]int{"mem": 2, "falu": 2, "fmul": 1, "ialu": 2},
	}
}

// List computes a resource-constrained list schedule of g using critical-
// path-to-⊥ priorities. The result is always valid w.r.t. dependences and
// resources; it is the schedule a compiler would run *after* the RS pass
// freed it from register constraints.
func List(g *ddg.Graph, res Resources) (*Schedule, error) {
	classOf := res.ClassOf
	if classOf == nil {
		classOf = DefaultClassOf
	}
	snap, err := ir.Intern(g)
	if err != nil {
		return nil, err
	}
	order := snap.Topo
	// Priority: longest path from the node to anywhere (critical path tail).
	tail := make([]int64, g.NumNodes())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		dst, wt := snap.Fwd.Row(u)
		for j, to := range dst {
			if t := tail[to] + wt[j]; t > tail[u] {
				tail[u] = t
			}
		}
	}

	times := make([]int64, g.NumNodes())
	scheduled := make([]bool, g.NumNodes())
	ready := make([]int64, g.NumNodes()) // earliest legal issue time
	remaining := g.NumNodes()
	used := map[int64]map[string]int{} // cycle → class → units used
	issued := map[int64]int{}          // cycle → ops issued

	for remaining > 0 {
		// Collect schedulable nodes (all predecessors scheduled).
		var candidates []int
		for _, u := range order {
			if scheduled[u] {
				continue
			}
			ok := true
			earliest := int64(0)
			dst, wt := snap.Rev.Row(u)
			for j, from := range dst {
				if !scheduled[from] {
					ok = false
					break
				}
				if t := times[from] + wt[j]; t > earliest {
					earliest = t
				}
			}
			if ok {
				if earliest < 0 {
					earliest = 0 // negative serialization latencies cannot pull before cycle 0
				}
				ready[u] = earliest
				candidates = append(candidates, u)
			}
		}
		if len(candidates) == 0 {
			return nil, fmt.Errorf("schedule: list scheduler stuck (cycle?) in %s", g.Name)
		}
		// Highest priority first; ties by ready time then index.
		sort.Slice(candidates, func(i, j int) bool {
			a, b := candidates[i], candidates[j]
			if tail[a] != tail[b] {
				return tail[a] > tail[b]
			}
			if ready[a] != ready[b] {
				return ready[a] < ready[b]
			}
			return a < b
		})
		u := candidates[0]
		class := classOf(g.Node(u).Op)
		t := ready[u]
		for {
			classOK := true
			if limit, bounded := res.Units[class]; bounded && used[t][class] >= limit {
				classOK = false
			}
			if res.IssueWidth > 0 && issued[t] >= res.IssueWidth {
				classOK = false
			}
			if classOK {
				break
			}
			t++
		}
		times[u] = t
		if used[t] == nil {
			used[t] = map[string]int{}
		}
		used[t][class]++
		issued[t]++
		scheduled[u] = true
		remaining--
	}
	s := New(g, times)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
