// Package schedule implements the scheduling side of the paper's model
// (Section 2): valid acyclic schedules σ, ASAP/ALAP times under a horizon T,
// value lifetime intervals LT_σ(u^t) = ]σ_u+δw(u), max_{v∈Cons(u^t)} σ_v+δr(v)],
// the register need RN_σ,t (maximal number of values simultaneously alive),
// exhaustive schedule enumeration for brute-force oracles, and a
// resource-constrained list scheduler for the post-RS pass.
package schedule

import (
	"fmt"

	"regsat/internal/ddg"
	"regsat/internal/ir"
)

// Schedule assigns an issue time to every node of a DDG.
type Schedule struct {
	G     *ddg.Graph
	Times []int64
}

// New wraps explicit times for g.
func New(g *ddg.Graph, times []int64) *Schedule {
	if len(times) != g.NumNodes() {
		panic(fmt.Sprintf("schedule: %d times for %d nodes", len(times), g.NumNodes()))
	}
	return &Schedule{G: g, Times: times}
}

// Validate checks σ_v − σ_u ≥ δ(e) for every edge and σ ≥ 0.
func (s *Schedule) Validate() error {
	for u, t := range s.Times {
		if t < 0 {
			return fmt.Errorf("schedule: node %s at negative time %d", s.G.Node(u).Name, t)
		}
	}
	for _, e := range s.G.Edges() {
		if s.Times[e.To]-s.Times[e.From] < e.Latency {
			return fmt.Errorf("schedule: edge %s→%s violated: σ=%d,%d δ=%d",
				s.G.Node(e.From).Name, s.G.Node(e.To).Name,
				s.Times[e.From], s.Times[e.To], e.Latency)
		}
	}
	return nil
}

// Makespan returns the total schedule time: σ_⊥ for a finalized graph.
func (s *Schedule) Makespan() int64 {
	if b := s.G.Bottom(); b >= 0 {
		return s.Times[b]
	}
	var max int64
	for u, t := range s.Times {
		if end := t + s.G.Node(u).Latency; end > max {
			max = end
		}
	}
	return max
}

// ASAP returns the as-soon-as-possible schedule (longest path from sources).
func ASAP(g *ddg.Graph) (*Schedule, error) {
	snap, err := ir.Intern(g)
	if err != nil {
		return nil, err
	}
	return ASAPIR(snap), nil
}

// ASAPIR is ASAP over a prebuilt analysis snapshot (no digraph or topological
// sort is recomputed).
func ASAPIR(snap *ir.Snapshot) *Schedule {
	times := make([]int64, snap.N)
	for _, u := range snap.Topo {
		dst, wt := snap.Rev.Row(u)
		for i, from := range dst {
			if t := times[from] + wt[i]; t > times[u] {
				times[u] = t
			}
		}
		if times[u] < 0 {
			times[u] = 0 // negative-latency serial arcs cannot push before 0
		}
	}
	return New(snap.G, times)
}

// ALAP returns the as-late-as-possible schedule under total time T:
// σ̄_u = T − LongestPathFrom(u). It errors if T is below the critical path.
func ALAP(g *ddg.Graph, T int64) (*Schedule, error) {
	snap, err := ir.Intern(g)
	if err != nil {
		return nil, err
	}
	return ALAPIR(snap, T)
}

// ALAPIR is ALAP over a prebuilt analysis snapshot.
func ALAPIR(snap *ir.Snapshot, T int64) (*Schedule, error) {
	tail := make([]int64, snap.N) // longest path from u to anywhere
	for i := len(snap.Topo) - 1; i >= 0; i-- {
		u := snap.Topo[i]
		dst, wt := snap.Fwd.Row(u)
		for j, to := range dst {
			if t := tail[to] + wt[j]; t > tail[u] {
				tail[u] = t
			}
		}
	}
	times := make([]int64, snap.N)
	for u := range times {
		times[u] = T - tail[u]
		if times[u] < 0 {
			return nil, fmt.Errorf("schedule: horizon %d below critical path", T)
		}
	}
	s := New(snap.G, times)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Interval is a value lifetime ]Start, End]: the value is alive at the
// integer instants Start+1 … End. Empty when End ≤ Start.
type Interval struct {
	Value      int // defining node
	Start, End int64
}

// Empty reports whether the interval contains no instant.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Overlaps reports whether two left-open intervals share an instant.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.Start < other.End && other.Start < iv.End
}

// Lifetime returns LT_σ(u^t). The graph must be finalized so every value has
// at least one consumer (possibly ⊥).
func (s *Schedule) Lifetime(u int, t ddg.RegType) Interval {
	n := s.G.Node(u)
	if !n.WritesType(t) {
		panic(fmt.Sprintf("schedule: node %s writes no %s value", n.Name, t))
	}
	start := s.Times[u] + n.DelayW(t)
	cons := s.G.Cons(u, t)
	if len(cons) == 0 {
		panic(fmt.Sprintf("schedule: value %s^%s has no consumer (graph not finalized?)", n.Name, t))
	}
	end := int64(-1 << 62)
	for _, v := range cons {
		if k := s.Times[v] + s.G.Node(v).DelayR; k > end {
			end = k
		}
	}
	return Interval{Value: u, Start: start, End: end}
}

// Lifetimes returns the lifetime intervals of all type-t values.
func (s *Schedule) Lifetimes(t ddg.RegType) []Interval {
	values := s.G.Values(t)
	out := make([]Interval, 0, len(values))
	for _, u := range values {
		out = append(out, s.Lifetime(u, t))
	}
	return out
}

// RegisterNeed computes RN_σ,t: the maximal number of type-t values
// simultaneously alive under s (the maximal clique of the interval
// interference graph), via an event sweep.
func (s *Schedule) RegisterNeed(t ddg.RegType) int {
	return MaxLive(s.Lifetimes(t))
}

type liveEvent struct {
	time  int64
	delta int
}

// MaxLive returns the maximal overlap of a set of left-open intervals.
func MaxLive(intervals []Interval) int {
	events := make([]liveEvent, 0, 2*len(intervals))
	for _, iv := range intervals {
		if iv.Empty() {
			continue
		}
		// Alive during [Start+1, End] at integer instants.
		events = append(events, liveEvent{iv.Start + 1, +1}, liveEvent{iv.End + 1, -1})
	}
	sortLiveEvents(events)
	cur, max := 0, 0
	for _, ev := range events {
		cur += ev.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// sortLiveEvents orders events by time, with −1 deltas before +1 at equal
// times. The left-open interval encoding (Start+1/End+1) already makes a
// value killed at instant τ disjoint from one first alive at τ; the tie
// break merely keeps the running count tight at shared event times.
func sortLiveEvents(events []liveEvent) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && (events[j].time < events[j-1].time ||
			(events[j].time == events[j-1].time && events[j].delta < events[j-1].delta)); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

// Windows computes the per-node issue windows [ASAP_u, T − tail_u] used to
// bound intLP variables and schedule enumeration.
func Windows(g *ddg.Graph, T int64) (lo, hi []int64, err error) {
	snap, err := ir.Intern(g)
	if err != nil {
		return nil, nil, err
	}
	return WindowsIR(snap, T)
}

// WindowsIR is Windows over a prebuilt analysis snapshot.
func WindowsIR(snap *ir.Snapshot, T int64) (lo, hi []int64, err error) {
	asap := ASAPIR(snap)
	alap, err := ALAPIR(snap, T)
	if err != nil {
		return nil, nil, err
	}
	for u := range asap.Times {
		if asap.Times[u] > alap.Times[u] {
			return nil, nil, fmt.Errorf("schedule: empty window for node %s under T=%d",
				snap.G.Node(u).Name, T)
		}
	}
	return asap.Times, alap.Times, nil
}

// ForEach enumerates every valid integer schedule of g whose per-node times
// lie within the [ASAP, ALAP(T)] windows, calling visit for each; visit
// returns false to stop early. Exponential — use only for tiny graphs in
// tests and oracles. The callback's slice is reused across calls.
func ForEach(g *ddg.Graph, T int64, visit func(times []int64) bool) error {
	lo, hi, err := Windows(g, T)
	if err != nil {
		return err
	}
	dg := g.ToDigraph()
	order, err := dg.TopoSort()
	if err != nil {
		return err
	}
	times := make([]int64, g.NumNodes())
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(order) {
			return visit(times)
		}
		u := order[i]
		min := lo[u]
		for _, ei := range dg.InEdges(u) {
			e := dg.Edge(ei)
			if t := times[e.From] + e.Weight; t > min {
				min = t
			}
		}
		for t := min; t <= hi[u]; t++ {
			times[u] = t
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return nil
}
