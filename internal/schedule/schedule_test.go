package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regsat/internal/ddg"
)

// chainGraph builds a ← b ← c chain with unit latencies plus values.
func chainGraph(t *testing.T) *ddg.Graph {
	t.Helper()
	g := ddg.New("chain", ddg.Superscalar)
	a := g.AddNode("a", "load", 2)
	b := g.AddNode("b", "fadd", 1)
	c := g.AddNode("c", "store", 1)
	g.SetWrites(a, ddg.Float, 0)
	g.SetWrites(b, ddg.Float, 0)
	g.AddFlowEdge(a, b, ddg.Float)
	g.AddFlowEdge(b, c, ddg.Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

// parallelPair builds two independent values consumed by separate stores.
func parallelPair(t *testing.T) *ddg.Graph {
	t.Helper()
	g := ddg.New("pair", ddg.Superscalar)
	a := g.AddNode("a", "load", 1)
	b := g.AddNode("b", "load", 1)
	sa := g.AddNode("sa", "store", 1)
	sb := g.AddNode("sb", "store", 1)
	g.SetWrites(a, ddg.Float, 0)
	g.SetWrites(b, ddg.Float, 0)
	g.AddFlowEdge(a, sa, ddg.Float)
	g.AddFlowEdge(b, sb, ddg.Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestASAPChain(t *testing.T) {
	g := chainGraph(t)
	s, err := ASAP(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	a, b, c := g.NodeByName("a"), g.NodeByName("b"), g.NodeByName("c")
	if s.Times[a] != 0 || s.Times[b] != 2 || s.Times[c] != 3 {
		t.Fatalf("ASAP=%v, want a=0 b=2 c=3", s.Times)
	}
	// ⊥ after c completes: σ⊥ ≥ 3+1 = 4.
	if s.Makespan() != 4 {
		t.Fatalf("makespan=%d, want 4", s.Makespan())
	}
}

func TestALAPRespectsHorizon(t *testing.T) {
	g := chainGraph(t)
	T := g.Horizon()
	s, err := ALAP(g, T)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != T {
		t.Fatalf("ALAP makespan=%d, want %d", s.Makespan(), T)
	}
}

func TestALAPHorizonTooSmall(t *testing.T) {
	g := chainGraph(t)
	if _, err := ALAP(g, 1); err == nil {
		t.Fatal("expected error for horizon below critical path")
	}
}

func TestValidateCatchesViolation(t *testing.T) {
	g := chainGraph(t)
	times := make([]int64, g.NumNodes())
	s := New(g, times) // everything at 0 violates the chain
	if err := s.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestLifetimeBasic(t *testing.T) {
	g := chainGraph(t)
	s, _ := ASAP(g)
	a := g.NodeByName("a")
	iv := s.Lifetime(a, ddg.Float)
	// a issues at 0, δw=0 → start 0; killed by b reading at σb=2 → ]0,2].
	if iv.Start != 0 || iv.End != 2 {
		t.Fatalf("LT(a)=]%d,%d], want ]0,2]", iv.Start, iv.End)
	}
}

func TestLifetimeExitValueEndsAtBottom(t *testing.T) {
	g := parallelPair(t)
	// Value written by sa? No: stores write nothing. Exit float values are
	// consumed by the stores; there are no exit values here. Build one:
	g2 := ddg.New("exit", ddg.Superscalar)
	a := g2.AddNode("a", "load", 1)
	g2.SetWrites(a, ddg.Float, 0)
	if err := g2.Finalize(); err != nil {
		t.Fatal(err)
	}
	s, _ := ASAP(g2)
	iv := s.Lifetime(a, ddg.Float)
	if iv.End != s.Times[g2.Bottom()] {
		t.Fatalf("exit value must live to ⊥: %v vs %d", iv, s.Times[g2.Bottom()])
	}
	_ = g
}

func TestIntervalOverlap(t *testing.T) {
	a := Interval{Start: 0, End: 5}
	b := Interval{Start: 5, End: 9} // born exactly when a dies: no overlap
	c := Interval{Start: 4, End: 6}
	if a.Overlaps(b) {
		t.Fatal("]0,5] and ]5,9] must not overlap")
	}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Fatal("]0,5] and ]4,6] must overlap")
	}
	empty := Interval{Start: 3, End: 3}
	if !empty.Empty() || empty.Overlaps(a) {
		t.Fatal("empty interval handling wrong")
	}
}

func TestMaxLive(t *testing.T) {
	ivs := []Interval{
		{Start: 0, End: 4},
		{Start: 1, End: 5},
		{Start: 2, End: 6},
		{Start: 6, End: 8}, // disjoint from the third (born at its death)
	}
	if got := MaxLive(ivs); got != 3 {
		t.Fatalf("MaxLive=%d, want 3", got)
	}
	if got := MaxLive(nil); got != 0 {
		t.Fatalf("MaxLive(nil)=%d, want 0", got)
	}
}

func TestRegisterNeedParallelVsSequential(t *testing.T) {
	g := parallelPair(t)
	// Parallel ASAP: both values overlap → need 2.
	s, _ := ASAP(g)
	if rn := s.RegisterNeed(ddg.Float); rn != 2 {
		t.Fatalf("ASAP RN=%d, want 2", rn)
	}
	// Sequential: a, sa, b, sb → need 1.
	a, b := g.NodeByName("a"), g.NodeByName("b")
	sa, sb := g.NodeByName("sa"), g.NodeByName("sb")
	times := make([]int64, g.NumNodes())
	times[a], times[sa], times[b], times[sb] = 0, 1, 2, 3
	times[g.Bottom()] = 5
	seq := New(g, times)
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if rn := seq.RegisterNeed(ddg.Float); rn != 1 {
		t.Fatalf("sequential RN=%d, want 1", rn)
	}
}

func TestWindows(t *testing.T) {
	g := chainGraph(t)
	T := g.Horizon()
	lo, hi, err := Windows(g, T)
	if err != nil {
		t.Fatal(err)
	}
	for u := range lo {
		if lo[u] > hi[u] {
			t.Fatalf("empty window for node %d", u)
		}
	}
	if hi[g.Bottom()] != T {
		t.Fatalf("⊥ window top=%d, want %d", hi[g.Bottom()], T)
	}
}

func TestForEachEnumeratesAllValidSchedules(t *testing.T) {
	g := parallelPair(t)
	T := int64(6)
	count := 0
	err := ForEach(g, T, func(times []int64) bool {
		count++
		s := New(g, append([]int64(nil), times...))
		if err := s.Validate(); err != nil {
			t.Fatalf("enumerated invalid schedule: %v", err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("no schedules enumerated")
	}
	// The ASAP schedule must be among them: check by re-enumeration.
	asap, _ := ASAP(g)
	found := false
	_ = ForEach(g, T, func(times []int64) bool {
		same := true
		for i := range times {
			if times[i] != asap.Times[i] {
				same = false
				break
			}
		}
		if same {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("ASAP schedule not enumerated")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	g := parallelPair(t)
	count := 0
	_ = ForEach(g, 8, func(times []int64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop ignored: count=%d", count)
	}
}

// Property: for random DAGs, ASAP ≤ ALAP per node and both validate.
func TestASAPALAPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ddg.RandomGraph(rng, ddg.DefaultRandomParams(2+rng.Intn(10)))
		T := g.Horizon()
		asap, err := ASAP(g)
		if err != nil || asap.Validate() != nil {
			return false
		}
		alap, err := ALAP(g, T)
		if err != nil || alap.Validate() != nil {
			return false
		}
		for u := range asap.Times {
			if asap.Times[u] > alap.Times[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: RegisterNeed never exceeds the number of values and is ≥ 1 when
// values exist (some value is always alive for at least one instant on a
// finalized graph with positive flow latencies).
func TestRegisterNeedBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ddg.RandomGraph(rng, ddg.DefaultRandomParams(2+rng.Intn(10)))
		s, err := ASAP(g)
		if err != nil {
			return false
		}
		for _, typ := range g.Types() {
			rn := s.RegisterNeed(typ)
			nv := len(g.Values(typ))
			if rn > nv {
				return false
			}
			if nv > 0 && rn < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestListSchedulerRespectsResources(t *testing.T) {
	g := parallelPair(t)
	res := Resources{IssueWidth: 1, Units: map[string]int{"mem": 1}}
	s, err := List(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// One memory port + width 1: all four mem ops at distinct cycles.
	seen := map[int64]int{}
	for u := 0; u < g.Bottom(); u++ {
		seen[s.Times[u]]++
		if seen[s.Times[u]] > 1 {
			t.Fatalf("two ops issued at cycle %d with issue width 1", s.Times[u])
		}
	}
}

func TestListSchedulerUnlimitedMatchesASAPMakespan(t *testing.T) {
	g := chainGraph(t)
	s, err := List(g, Resources{})
	if err != nil {
		t.Fatal(err)
	}
	asap, _ := ASAP(g)
	if s.Makespan() != asap.Makespan() {
		t.Fatalf("unlimited list schedule makespan=%d, ASAP=%d", s.Makespan(), asap.Makespan())
	}
}

func TestListSchedulerOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ddg.RandomGraph(rng, ddg.DefaultRandomParams(2+rng.Intn(12)))
		s, err := List(g, TypicalVLIW())
		if err != nil {
			return false
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVLIWLifetimeUsesOffsets(t *testing.T) {
	g := ddg.New("vliw", ddg.VLIW)
	a := g.AddNode("a", "load", 4)
	b := g.AddNode("b", "store", 1)
	g.SetWrites(a, ddg.Float, 4) // δw = 4
	g.SetReadDelay(b, 2)         // δr = 2
	g.AddFlowEdge(a, b, ddg.Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	s, _ := ASAP(g)
	iv := s.Lifetime(a, ddg.Float)
	// σa=0, δw=4 → start 4. b at σ=4 reads at 4+2=6 → ]4,6].
	if iv.Start != 4 || iv.End != 6 {
		t.Fatalf("LT=%v, want ]4,6]", iv)
	}
}
