// Package graph provides the directed-graph substrate used by the register
// saturation analyses: topological sorting, DAG longest paths, transitive
// closure and reduction, bipartite matching, and maximum antichains of
// partial orders (Dilworth's theorem via König's theorem).
//
// All algorithms operate on dense node identifiers 0..n-1 so callers can map
// their own node sets onto compact indices. Edge weights are int64 latencies;
// negative weights are allowed everywhere because VLIW/EPIC serialization
// arcs may carry non-positive latencies (see the paper, Section 4).
package graph

import (
	"fmt"
	"sort"
)

// Edge is a weighted directed edge between dense node indices.
type Edge struct {
	From, To int
	Weight   int64
}

// Digraph is a mutable directed multigraph over dense node indices 0..n-1.
// The zero value is an empty graph with no nodes; use New to create one with
// a fixed node count.
type Digraph struct {
	n     int
	edges []Edge
	// succ[u] and pred[v] hold indices into edges, lazily rebuilt.
	succ, pred [][]int
	dirty      bool
}

// New returns an empty digraph with n nodes and no edges.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Digraph{n: n, dirty: true}
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	c := New(g.n)
	c.edges = append([]Edge(nil), g.edges...)
	c.dirty = true
	return c
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// M returns the number of edges.
func (g *Digraph) M() int { return len(g.edges) }

// AddNode appends a new node and returns its index.
func (g *Digraph) AddNode() int {
	g.n++
	g.dirty = true
	return g.n - 1
}

// AddEdge appends a directed edge from u to v with weight w and returns its
// edge index. Parallel edges are permitted; self-loops are rejected because
// every graph in this project must remain schedulable (a self-loop of any
// weight ≥ 1 is unsatisfiable, and non-positive self-loops are useless).
func (g *Digraph) AddEdge(u, v int, w int64) int {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on node %d", u))
	}
	g.edges = append(g.edges, Edge{From: u, To: v, Weight: w})
	g.dirty = true
	return len(g.edges) - 1
}

// Edges returns the edge list. The returned slice is owned by the graph and
// must not be modified.
func (g *Digraph) Edges() []Edge { return g.edges }

// Edge returns the i-th edge.
func (g *Digraph) Edge(i int) Edge { return g.edges[i] }

// HasEdge reports whether at least one edge u→v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	g.build()
	for _, ei := range g.succ[u] {
		if g.edges[ei].To == v {
			return true
		}
	}
	return false
}

// Succ returns the successor node indices of u (with multiplicity for
// parallel edges). The slice is freshly allocated.
func (g *Digraph) Succ(u int) []int {
	g.build()
	out := make([]int, 0, len(g.succ[u]))
	for _, ei := range g.succ[u] {
		out = append(out, g.edges[ei].To)
	}
	return out
}

// Pred returns the predecessor node indices of v (with multiplicity).
func (g *Digraph) Pred(v int) []int {
	g.build()
	out := make([]int, 0, len(g.pred[v]))
	for _, ei := range g.pred[v] {
		out = append(out, g.edges[ei].From)
	}
	return out
}

// OutEdges returns the indices of edges leaving u. The slice is owned by the
// graph and must not be modified.
func (g *Digraph) OutEdges(u int) []int {
	g.build()
	return g.succ[u]
}

// InEdges returns the indices of edges entering v. The slice is owned by the
// graph and must not be modified.
func (g *Digraph) InEdges(v int) []int {
	g.build()
	return g.pred[v]
}

// OutDegree returns the number of edges leaving u.
func (g *Digraph) OutDegree(u int) int {
	g.build()
	return len(g.succ[u])
}

// InDegree returns the number of edges entering v.
func (g *Digraph) InDegree(v int) int {
	g.build()
	return len(g.pred[v])
}

// RemoveEdges deletes the edges whose indices are listed in idx and
// invalidates all previously returned edge indices.
func (g *Digraph) RemoveEdges(idx []int) {
	if len(idx) == 0 {
		return
	}
	drop := make(map[int]bool, len(idx))
	for _, i := range idx {
		if i < 0 || i >= len(g.edges) {
			panic(fmt.Sprintf("graph: edge index %d out of range", i))
		}
		drop[i] = true
	}
	kept := g.edges[:0]
	for i, e := range g.edges {
		if !drop[i] {
			kept = append(kept, e)
		}
	}
	g.edges = kept
	g.dirty = true
}

func (g *Digraph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, g.n))
	}
}

func (g *Digraph) build() {
	if !g.dirty {
		return
	}
	g.succ = make([][]int, g.n)
	g.pred = make([][]int, g.n)
	for i, e := range g.edges {
		g.succ[e.From] = append(g.succ[e.From], i)
		g.pred[e.To] = append(g.pred[e.To], i)
	}
	g.dirty = false
}

// SortedEdges returns a copy of the edge list sorted by (From, To, Weight),
// useful for deterministic output in tests and tools.
func (g *Digraph) SortedEdges() []Edge {
	out := append([]Edge(nil), g.edges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Weight < out[j].Weight
	})
	return out
}
