package graph

// Order is a strict partial order over elements 0..n-1, represented by a
// transitively closed "less" relation. Less(a, b) must imply !Less(b, a),
// and Less must be transitive; MaximumAntichain relies on both.
type Order struct {
	n    int
	less []BitSet
}

// NewOrder creates an empty order over n elements (no pair related).
func NewOrder(n int) *Order {
	o := &Order{n: n, less: make([]BitSet, n)}
	for i := range o.less {
		o.less[i] = NewBitSet(n)
	}
	return o
}

// OrderFromRows wraps existing "less" bitset rows (row i holds the elements
// greater than i) as an Order without copying. The caller must not mutate
// the rows while the returned order is in use.
func OrderFromRows(rows []BitSet) *Order {
	return &Order{n: len(rows), less: rows}
}

// N returns the number of elements.
func (o *Order) N() int { return o.n }

// SetLess records a < b. The caller is responsible for transitivity (or may
// call TransitiveClose afterwards).
func (o *Order) SetLess(a, b int) { o.less[a].Set(b) }

// Less reports whether a < b.
func (o *Order) Less(a, b int) bool { return a != b && o.less[a].Get(b) }

// Comparable reports whether a < b or b < a.
func (o *Order) Comparable(a, b int) bool { return o.Less(a, b) || o.Less(b, a) }

// Pairs returns the number of ordered pairs (a,b) with a < b.
func (o *Order) Pairs() int {
	total := 0
	for a := 0; a < o.n; a++ {
		total += o.less[a].Count()
		if o.less[a].Get(a) {
			total-- // defensive: never count a reflexive bit
		}
	}
	return total
}

// TransitiveClose closes the relation under transitivity using bit-parallel
// propagation. It runs a fixpoint that is O(n²·n/64) worst case but converges
// in one pass when SetLess calls already follow a topological order.
func (o *Order) TransitiveClose() {
	changed := true
	for changed {
		changed = false
		for a := 0; a < o.n; a++ {
			row := o.less[a]
			for b := 0; b < o.n; b++ {
				if b != a && row.Get(b) {
					before := countOnes(row)
					row.OrWith(o.less[b])
					row.Clear(a) // keep the order strict
					if countOnes(row) != before {
						changed = true
					}
				}
			}
		}
	}
}

func countOnes(b BitSet) int { return b.Count() }

// AntichainResult is the outcome of a maximum-antichain computation.
type AntichainResult struct {
	// Size is the width of the order (maximum antichain cardinality).
	Size int
	// Members lists one maximum antichain, in increasing element order.
	Members []int
	// ChainCover is a partition of the elements into Size chains, each chain
	// listed in increasing order position. By Dilworth's theorem the minimum
	// number of chains equals the maximum antichain size.
	ChainCover [][]int
}

// MaximumAntichain computes a maximum antichain of the order using Dilworth's
// theorem: minimum chain cover = n − maximum matching in the bipartite graph
// with an edge (a,b) per ordered pair a < b; the antichain is recovered from
// a König minimum vertex cover (elements with neither copy in the cover).
func (o *Order) MaximumAntichain() *AntichainResult {
	b := NewBipartite(o.n, o.n)
	for a := 0; a < o.n; a++ {
		for c := 0; c < o.n; c++ {
			if o.Less(a, c) {
				b.AddEdge(a, c)
			}
		}
	}
	m := b.MaxMatching()
	coverL, coverR := b.MinVertexCover(m)

	res := &AntichainResult{Size: o.n - m.Size}
	for i := 0; i < o.n; i++ {
		if !coverL[i] && !coverR[i] {
			res.Members = append(res.Members, i)
		}
	}
	// Chains: matched pairs a→MatchL[a] link consecutive chain elements.
	startOf := make([]bool, o.n)
	for i := range startOf {
		startOf[i] = true
	}
	for a := 0; a < o.n; a++ {
		if m.MatchL[a] != -1 {
			startOf[m.MatchL[a]] = false
		}
	}
	for a := 0; a < o.n; a++ {
		if !startOf[a] {
			continue
		}
		chain := []int{a}
		for cur := a; m.MatchL[cur] != -1; {
			cur = m.MatchL[cur]
			chain = append(chain, cur)
		}
		res.ChainCover = append(res.ChainCover, chain)
	}
	return res
}

// IsAntichain reports whether the given elements are pairwise incomparable.
func (o *Order) IsAntichain(elems []int) bool {
	for i := 0; i < len(elems); i++ {
		for j := i + 1; j < len(elems); j++ {
			if o.Comparable(elems[i], elems[j]) {
				return false
			}
		}
	}
	return true
}
