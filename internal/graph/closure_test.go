package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Set/Get wrong")
	}
	if b.Count() != 3 {
		t.Fatalf("Count=%d, want 3", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Fatal("Clear wrong")
	}
	other := NewBitSet(130)
	other.Set(5)
	b.OrWith(other)
	if !b.Get(5) || b.Count() != 3 {
		t.Fatal("OrWith wrong")
	}
}

func TestTransitiveClosureChain(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	c, err := g.TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Reaches(0, 3) || !c.Reaches(1, 3) || c.Reaches(3, 0) || c.Reaches(2, 2) {
		t.Fatal("closure relation wrong")
	}
	if d := c.Descendants(1); len(d) != 2 || d[0] != 2 || d[1] != 3 {
		t.Fatalf("Descendants(1)=%v, want [2 3]", d)
	}
	if !c.Comparable(0, 3) || c.Comparable(0, 0) {
		t.Fatal("Comparable wrong")
	}
}

func TestTransitiveClosureMatchesAllPairs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(12), 0.3, 5)
		c, err := g.TransitiveClosure()
		if err != nil {
			return false
		}
		ap, err := g.LongestAllPairs()
		if err != nil {
			return false
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				if c.Reaches(u, v) != ap.Reaches(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveReductionDropsRedundantEdge(t *testing.T) {
	// 0→1 (5), 1→2 (5), plus direct 0→2 (3). The direct edge is dominated by
	// the path of weight 10, so it is redundant for scheduling constraints.
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	direct := g.AddEdge(0, 2, 3)
	red, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if len(red) != 1 || red[0] != direct {
		t.Fatalf("redundant=%v, want [%d]", red, direct)
	}
}

func TestTransitiveReductionKeepsBindingEdge(t *testing.T) {
	// Direct edge weight 20 exceeds the alternative path weight 10: binding.
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	g.AddEdge(0, 2, 20)
	red, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if len(red) != 0 {
		t.Fatalf("redundant=%v, want none", red)
	}
}

// Property: removing the reduction-reported edges never changes any
// longest-path distance.
func TestTransitiveReductionPreservesLongestPaths(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 3+rng.Intn(8), 0.5, 6)
		before, err := g.LongestAllPairs()
		if err != nil {
			return false
		}
		red, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		h := g.Clone()
		h.RemoveEdges(red)
		after, err := h.LongestAllPairs()
		if err != nil {
			return false
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if before.Path(u, v) != after.Path(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
