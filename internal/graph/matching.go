package graph

// Bipartite is a bipartite graph with nL left vertices and nR right vertices.
// Adj[u] lists the right vertices adjacent to left vertex u.
type Bipartite struct {
	NL, NR int
	Adj    [][]int
}

// NewBipartite returns an empty bipartite graph with the given part sizes.
func NewBipartite(nL, nR int) *Bipartite {
	return &Bipartite{NL: nL, NR: nR, Adj: make([][]int, nL)}
}

// AddEdge connects left vertex u to right vertex v.
func (b *Bipartite) AddEdge(u, v int) {
	b.Adj[u] = append(b.Adj[u], v)
}

// MatchResult is the outcome of a maximum matching computation.
type MatchResult struct {
	// Size is the cardinality of the maximum matching.
	Size int
	// MatchL[u] is the right vertex matched to left u, or -1.
	MatchL []int
	// MatchR[v] is the left vertex matched to right v, or -1.
	MatchR []int
}

const infDist = int(^uint(0) >> 1)

// MaxMatching computes a maximum-cardinality matching with Hopcroft–Karp in
// O(E·sqrt(V)).
func (b *Bipartite) MaxMatching() *MatchResult {
	matchL := make([]int, b.NL)
	matchR := make([]int, b.NR)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, b.NL)
	queue := make([]int, 0, b.NL)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < b.NL; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = infDist
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range b.Adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == infDist {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range b.Adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = infDist
		return false
	}

	size := 0
	for bfs() {
		for u := 0; u < b.NL; u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return &MatchResult{Size: size, MatchL: matchL, MatchR: matchR}
}

// MinVertexCover computes a minimum vertex cover from a maximum matching via
// König's theorem. It returns boolean membership slices for the left and
// right parts. |cover| equals the matching size.
func (b *Bipartite) MinVertexCover(m *MatchResult) (coverL, coverR []bool) {
	// Z = unmatched left vertices and everything reachable from them by
	// alternating paths (unmatched edge left→right, matched edge right→left).
	// Cover = (L \ Z) ∪ (R ∩ Z).
	visitL := make([]bool, b.NL)
	visitR := make([]bool, b.NR)
	var stack []int
	for u := 0; u < b.NL; u++ {
		if m.MatchL[u] == -1 {
			visitL[u] = true
			stack = append(stack, u)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range b.Adj[u] {
			if visitR[v] || m.MatchL[u] == v {
				continue
			}
			visitR[v] = true
			if w := m.MatchR[v]; w != -1 && !visitL[w] {
				visitL[w] = true
				stack = append(stack, w)
			}
		}
	}
	coverL = make([]bool, b.NL)
	coverR = make([]bool, b.NR)
	for u := 0; u < b.NL; u++ {
		coverL[u] = !visitL[u]
	}
	for v := 0; v < b.NR; v++ {
		coverR[v] = visitR[v]
	}
	return coverL, coverR
}
