package graph

import "fmt"

// ErrCycle is returned (wrapped) by algorithms that require a DAG when the
// graph contains a directed cycle.
type ErrCycle struct {
	// Nodes holds one directed cycle found in the graph, in order.
	Nodes []int
}

func (e *ErrCycle) Error() string {
	return fmt.Sprintf("graph: directed cycle through nodes %v", e.Nodes)
}

// TopoSort returns a topological order of the graph's nodes (every edge goes
// from an earlier to a later position). It returns an *ErrCycle if the graph
// is not a DAG. Kahn's algorithm with a deterministic smallest-index-first
// tie break, so the order is stable across runs.
func (g *Digraph) TopoSort() ([]int, error) {
	g.build()
	indeg := make([]int, g.n)
	for _, e := range g.edges {
		indeg[e.To]++
	}
	// Min-heap over node indices for determinism.
	heap := make([]int, 0, g.n)
	push := func(u int) {
		heap = append(heap, u)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p] <= heap[i] {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() int {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && heap[l] < heap[small] {
				small = l
			}
			if r < last && heap[r] < heap[small] {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	for u := 0; u < g.n; u++ {
		if indeg[u] == 0 {
			push(u)
		}
	}
	order := make([]int, 0, g.n)
	for len(heap) > 0 {
		u := pop()
		order = append(order, u)
		for _, ei := range g.succ[u] {
			v := g.edges[ei].To
			indeg[v]--
			if indeg[v] == 0 {
				push(v)
			}
		}
	}
	if len(order) != g.n {
		return nil, &ErrCycle{Nodes: g.findCycle()}
	}
	return order, nil
}

// IsDAG reports whether the graph is acyclic.
func (g *Digraph) IsDAG() bool {
	_, err := g.TopoSort()
	return err == nil
}

// findCycle returns one directed cycle; it must only be called on graphs
// known to contain one.
func (g *Digraph) findCycle() []int {
	g.build()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, g.n)
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, ei := range g.succ[u] {
			v := g.edges[ei].To
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back edge u→v: unwind u..v.
				cycle = append(cycle, v)
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse so the cycle reads in edge direction.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < g.n; u++ {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// Sources returns the nodes with no incoming edges, in increasing order.
func (g *Digraph) Sources() []int {
	g.build()
	var out []int
	for u := 0; u < g.n; u++ {
		if len(g.pred[u]) == 0 {
			out = append(out, u)
		}
	}
	return out
}

// Sinks returns the nodes with no outgoing edges, in increasing order.
func (g *Digraph) Sinks() []int {
	g.build()
	var out []int
	for u := 0; u < g.n; u++ {
		if len(g.succ[u]) == 0 {
			out = append(out, u)
		}
	}
	return out
}
