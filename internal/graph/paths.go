package graph

import "math"

// NoPath is the sentinel longest-path value meaning "no directed path".
// It is strongly negative but far from the int64 minimum so that adding
// ordinary latencies to it cannot overflow.
const NoPath int64 = math.MinInt64 / 4

// LongestFrom computes the longest-path distance from src to every node in a
// DAG, where the length of a path is the sum of its edge weights. Unreachable
// nodes get NoPath. Negative weights are allowed. Returns *ErrCycle if the
// graph is not a DAG.
func (g *Digraph) LongestFrom(src int) ([]int64, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	return g.longestFromInOrder(src, order), nil
}

// longestFromInOrder is LongestFrom with a precomputed topological order,
// avoiding repeated sorting in all-pairs computations.
func (g *Digraph) longestFromInOrder(src int, order []int) []int64 {
	g.build()
	dist := make([]int64, g.n)
	for i := range dist {
		dist[i] = NoPath
	}
	dist[src] = 0
	for _, u := range order {
		if dist[u] == NoPath {
			continue
		}
		for _, ei := range g.succ[u] {
			e := g.edges[ei]
			if d := dist[u] + e.Weight; d > dist[e.To] {
				dist[e.To] = d
			}
		}
	}
	return dist
}

// LongestTo computes the longest-path distance from every node to dst in a
// DAG. Unreachable nodes get NoPath.
func (g *Digraph) LongestTo(dst int) ([]int64, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	g.build()
	dist := make([]int64, g.n)
	for i := range dist {
		dist[i] = NoPath
	}
	dist[dst] = 0
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		for _, ei := range g.succ[u] {
			e := g.edges[ei]
			if dist[e.To] == NoPath {
				continue
			}
			if d := dist[e.To] + e.Weight; d > dist[u] {
				dist[u] = d
			}
		}
	}
	return dist, nil
}

// AllPairsLongest holds the all-pairs longest-path matrix of a DAG.
// D[u][v] is the longest path weight from u to v, or NoPath if v is not
// reachable from u. D[u][u] is 0 for every u.
type AllPairsLongest struct {
	D [][]int64
}

// LongestAllPairs computes all-pairs longest paths of a DAG by running the
// topological DP from every source node: O(n·(n+m)).
func (g *Digraph) LongestAllPairs() (*AllPairsLongest, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	return g.LongestAllPairsFromOrder(order), nil
}

// LongestAllPairsFromOrder is LongestAllPairs with a precomputed topological
// order, so callers that already sorted (the ir snapshot builder) avoid
// re-sorting.
func (g *Digraph) LongestAllPairsFromOrder(order []int) *AllPairsLongest {
	ap := &AllPairsLongest{D: make([][]int64, g.n)}
	for u := 0; u < g.n; u++ {
		ap.D[u] = g.longestFromInOrder(u, order)
	}
	return ap
}

// Path reports the longest path weight from u to v, or NoPath.
func (ap *AllPairsLongest) Path(u, v int) int64 { return ap.D[u][v] }

// Reaches reports whether there is a directed path from u to v (u ≠ v).
func (ap *AllPairsLongest) Reaches(u, v int) bool {
	return u != v && ap.D[u][v] != NoPath
}

// CriticalPath returns the maximum over all node pairs of the longest path
// weight, i.e. the DAG's critical path length, together with its endpoints.
// For an empty or single-node graph it returns (0, -1, -1).
func (g *Digraph) CriticalPath() (length int64, from, to int, err error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, -1, -1, err
	}
	g.build()
	// dist[v] = longest path ending at v starting anywhere; track the start.
	dist := make([]int64, g.n)
	start := make([]int, g.n)
	for i := range start {
		start[i] = i
	}
	best, bFrom, bTo := int64(0), -1, -1
	for _, u := range order {
		for _, ei := range g.succ[u] {
			e := g.edges[ei]
			if d := dist[u] + e.Weight; d > dist[e.To] {
				dist[e.To] = d
				start[e.To] = start[u]
			}
		}
	}
	for v := 0; v < g.n; v++ {
		if dist[v] > best {
			best, bFrom, bTo = dist[v], start[v], v
		}
	}
	return best, bFrom, bTo, nil
}
