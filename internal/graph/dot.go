package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz format. labels may be nil, in which case
// node indices are used; styler may be nil or return "" for default styling,
// otherwise it returns extra DOT attributes for the edge with the given index.
func (g *Digraph) DOT(name string, labels []string, styler func(edge int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for u := 0; u < g.n; u++ {
		label := fmt.Sprintf("%d", u)
		if labels != nil && u < len(labels) && labels[u] != "" {
			label = labels[u]
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", u, label)
	}
	for i, e := range g.edges {
		attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%d", e.Weight))
		if styler != nil {
			if s := styler(i); s != "" {
				attrs += ", " + s
			}
		}
		fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", e.From, e.To, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
