package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func diamond() *Digraph {
	// 0 → 1 → 3, 0 → 2 → 3 with asymmetric weights.
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 3, 2)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 1)
	return g
}

func TestLongestFrom(t *testing.T) {
	g := diamond()
	d, err := g.LongestFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 2, 1, 4}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist=%v, want %v", d, want)
		}
	}
}

func TestLongestFromUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	d, err := g.LongestFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != NoPath || d[2] != NoPath || d[1] != 0 {
		t.Fatalf("dist=%v, want [NoPath 0 NoPath]", d)
	}
}

func TestLongestTo(t *testing.T) {
	g := diamond()
	d, err := g.LongestTo(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4, 2, 1, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist=%v, want %v", d, want)
		}
	}
}

func TestLongestNegativeWeights(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, -2)
	g.AddEdge(1, 2, -3)
	g.AddEdge(0, 2, -7)
	d, err := g.LongestFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if d[2] != -5 {
		t.Fatalf("d[2]=%d, want -5 (longest = least negative)", d[2])
	}
}

func TestAllPairsLongest(t *testing.T) {
	g := diamond()
	ap, err := g.LongestAllPairs()
	if err != nil {
		t.Fatal(err)
	}
	if ap.Path(0, 3) != 4 || ap.Path(1, 3) != 2 || ap.Path(3, 0) != NoPath {
		t.Fatalf("all-pairs wrong: %v", ap.D)
	}
	if !ap.Reaches(0, 3) || ap.Reaches(3, 0) || ap.Reaches(1, 1) {
		t.Fatal("Reaches wrong")
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamond()
	length, from, to, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if length != 4 || from != 0 || to != 3 {
		t.Fatalf("critical path = %d (%d→%d), want 4 (0→3)", length, from, to)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	g := New(1)
	length, from, to, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if length != 0 || from != -1 || to != -1 {
		t.Fatalf("got %d (%d,%d), want 0 (-1,-1)", length, from, to)
	}
}

func TestLongestCycleErrors(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	if _, err := g.LongestFrom(0); err == nil {
		t.Fatal("expected cycle error")
	}
	if _, err := g.LongestAllPairs(); err == nil {
		t.Fatal("expected cycle error")
	}
}

// randomDAG builds a random layered DAG with forward edges only.
func randomDAG(rng *rand.Rand, n int, p float64, maxW int64) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v, rng.Int63n(maxW+1))
			}
		}
	}
	return g
}

// bruteLongest computes longest paths by exhaustive DFS (exponential; tiny n).
func bruteLongest(g *Digraph, src, dst int) int64 {
	if src == dst {
		return 0
	}
	best := NoPath
	var dfs func(u int, acc int64)
	dfs = func(u int, acc int64) {
		if u == dst {
			if acc > best {
				best = acc
			}
			return
		}
		for _, ei := range g.OutEdges(u) {
			e := g.Edge(ei)
			dfs(e.To, acc+e.Weight)
		}
	}
	dfs(src, 0)
	return best
}

func TestLongestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(rng, 2+rng.Intn(7), 0.4, 9)
		ap, err := g.LongestAllPairs()
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				if got, want := ap.Path(u, v), bruteLongest(g, u, v); got != want {
					t.Fatalf("lp(%d,%d)=%d, want %d", u, v, got, want)
				}
			}
		}
	}
}

// Property: in any DAG, for every edge (u,v), lp(s,v) ≥ lp(s,u) + w(u,v)
// whenever u is reachable from s.
func TestLongestPathTriangleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 3+rng.Intn(10), 0.3, 12)
		d, err := g.LongestFrom(0)
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if d[e.From] == NoPath {
				continue
			}
			if d[e.To] < d[e.From]+e.Weight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
