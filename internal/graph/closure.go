package graph

import "math/bits"

// BitSet is a fixed-capacity bit set used for dense reachability rows.
type BitSet []uint64

// NewBitSet returns a bit set able to hold n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set sets bit i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b BitSet) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b BitSet) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// OrWith ors other into b.
func (b BitSet) OrWith(other BitSet) {
	for i := range b {
		b[i] |= other[i]
	}
}

// Count returns the number of set bits.
func (b BitSet) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// Closure is the transitive closure of a DAG as one reachability bit row per
// node. Reach[u].Get(v) is true iff there is a directed path u→…→v with at
// least one edge, or u == v (each node reaches itself by convention; use
// Reaches for the strict version).
type Closure struct {
	n     int
	Reach []BitSet
}

// TransitiveClosure computes the reflexive-transitive closure of a DAG in
// O(n·m/64) using bit-parallel union over a reverse topological order.
func (g *Digraph) TransitiveClosure() (*Closure, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	return g.TransitiveClosureFromOrder(order), nil
}

// TransitiveClosureFromOrder is TransitiveClosure with a precomputed
// topological order.
func (g *Digraph) TransitiveClosureFromOrder(order []int) *Closure {
	g.build()
	c := &Closure{n: g.n, Reach: make([]BitSet, g.n)}
	for u := 0; u < g.n; u++ {
		c.Reach[u] = NewBitSet(g.n)
		c.Reach[u].Set(u)
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		for _, ei := range g.succ[u] {
			c.Reach[u].OrWith(c.Reach[g.edges[ei].To])
		}
	}
	return c
}

// Reaches reports whether there is a directed path from u to v with at least
// one edge (strict reachability: Reaches(u,u) is false unless on a cycle,
// which cannot happen in a DAG).
func (c *Closure) Reaches(u, v int) bool {
	if u == v {
		return false
	}
	return c.Reach[u].Get(v)
}

// Descendants returns the strict descendants of u in increasing order.
func (c *Closure) Descendants(u int) []int {
	var out []int
	for v := 0; v < c.n; v++ {
		if v != u && c.Reach[u].Get(v) {
			out = append(out, v)
		}
	}
	return out
}

// Comparable reports whether u and v are ordered either way (u⇝v or v⇝u).
func (c *Closure) Comparable(u, v int) bool {
	return c.Reaches(u, v) || c.Reaches(v, u)
}

// TransitiveReduction returns the edge indices of g that are transitively
// redundant under the longest-path criterion used by the paper's Section 3
// model optimization: an edge e=(u,v) can be removed when there is another
// u→v path of weight ≥ δ(e) that does not use e. Removing all reported edges
// together never changes any constraint σ_v − σ_u ≥ δ: edges are marked
// greedily, and each new redundancy witness is checked against the graph
// with the already-marked edges excluded (this makes the marking safe even
// for mutually-redundant parallel edges).
func (g *Digraph) TransitiveReduction() ([]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	g.build()
	var redundant []int
	removed := make([]bool, len(g.edges))
	for idx, e := range g.edges {
		removed[idx] = true // tentatively exclude the candidate itself
		d := g.longestFromExcluding(e.From, order, removed)
		if d[e.To] != NoPath && d[e.To] >= e.Weight {
			redundant = append(redundant, idx) // keep it marked
		} else {
			removed[idx] = false
		}
	}
	return redundant, nil
}

func (g *Digraph) longestFromExcluding(src int, order []int, skip []bool) []int64 {
	dist := make([]int64, g.n)
	for i := range dist {
		dist[i] = NoPath
	}
	dist[src] = 0
	for _, u := range order {
		if dist[u] == NoPath {
			continue
		}
		for _, ei := range g.succ[u] {
			if skip[ei] {
				continue
			}
			e := g.edges[ei]
			if d := dist[u] + e.Weight; d > dist[e.To] {
				dist[e.To] = d
			}
		}
	}
	return dist
}
