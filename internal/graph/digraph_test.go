package graph

import (
	"math/rand"
	"testing"
)

func TestNewAndAddNode(t *testing.T) {
	g := New(3)
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 3, 0", g.N(), g.M())
	}
	id := g.AddNode()
	if id != 3 || g.N() != 4 {
		t.Fatalf("AddNode returned %d (n=%d), want 3 (n=4)", id, g.N())
	}
}

func TestAddEdgeAndAdjacency(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)

	if got := g.Succ(0); len(got) != 2 {
		t.Fatalf("Succ(0)=%v, want 2 successors", got)
	}
	if got := g.Pred(3); len(got) != 2 {
		t.Fatalf("Pred(3)=%v, want 2 predecessors", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge direction wrong")
	}
	if g.OutDegree(0) != 2 || g.InDegree(3) != 2 || g.InDegree(0) != 0 {
		t.Fatal("degree accounting wrong")
	}
}

func TestParallelEdgesAllowed(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 5)
	if g.M() != 2 {
		t.Fatalf("M=%d, want 2", g.M())
	}
	if got := g.Succ(0); len(got) != 2 {
		t.Fatalf("parallel edges should appear with multiplicity, got %v", got)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	g := New(1)
	g.AddEdge(0, 0, 1)
}

func TestRemoveEdges(t *testing.T) {
	g := New(3)
	e0 := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.RemoveEdges([]int{e0})
	if g.M() != 1 {
		t.Fatalf("M=%d, want 1", g.M())
	}
	if g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("wrong edge removed")
	}
}

func TestClone(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 7)
	c := g.Clone()
	c.AddEdge(1, 0, 1) // creates a cycle only in the clone
	if !g.IsDAG() {
		t.Fatal("mutating clone affected original")
	}
	if c.IsDAG() {
		t.Fatal("clone should have a cycle")
	}
}

func TestTopoSortChain(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 2, 1)
	g.AddEdge(2, 1, 1)
	g.AddEdge(1, 0, 1)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v, want %v", order, want)
		}
	}
}

func TestTopoSortDeterministicTieBreak(t *testing.T) {
	g := New(4)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	// Nodes 0,1,2 are all sources; smallest-first order expected.
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v, want %v", order, want)
		}
	}
}

func TestTopoSortCycleDetected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	_, err := g.TopoSort()
	ce, ok := err.(*ErrCycle)
	if !ok {
		t.Fatalf("got %v, want *ErrCycle", err)
	}
	if len(ce.Nodes) != 3 {
		t.Fatalf("cycle %v, want length 3", ce.Nodes)
	}
	// The reported cycle must actually be a cycle in g.
	for i := range ce.Nodes {
		u, v := ce.Nodes[i], ce.Nodes[(i+1)%len(ce.Nodes)]
		if !g.HasEdge(u, v) {
			t.Fatalf("reported cycle %v has no edge %d→%d", ce.Nodes, u, v)
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	if s := g.Sources(); len(s) != 2 || s[0] != 0 || s[1] != 1 {
		t.Fatalf("Sources=%v, want [0 1]", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Fatalf("Sinks=%v, want [3]", s)
	}
}

func TestIsDAGRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		g := New(n)
		// Edges only from lower to higher index: always a DAG.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(u, v, int64(rng.Intn(5)))
				}
			}
		}
		if !g.IsDAG() {
			t.Fatal("forward-edge graph must be a DAG")
		}
		order, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, n)
		for i, u := range order {
			pos[u] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("edge %v violates topological order", e)
			}
		}
	}
}

func TestSortedEdgesDeterministic(t *testing.T) {
	g := New(3)
	g.AddEdge(2, 1, 5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 3)
	es := g.SortedEdges()
	if es[0].From != 0 || es[0].To != 1 || es[2].From != 2 {
		t.Fatalf("SortedEdges=%v not sorted", es)
	}
}

func TestDOTContainsNodesAndEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 4)
	dot := g.DOT("g", []string{"a", "b"}, nil)
	for _, want := range []string{"digraph", `label="a"`, `label="b"`, "n0 -> n1", `label="4"`} {
		if !contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
