package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxMatchingSimple(t *testing.T) {
	// Perfect matching on K2,2.
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)
	m := b.MaxMatching()
	if m.Size != 2 {
		t.Fatalf("matching=%d, want 2", m.Size)
	}
}

func TestMaxMatchingStar(t *testing.T) {
	// All left vertices fight over one right vertex.
	b := NewBipartite(3, 1)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(2, 0)
	m := b.MaxMatching()
	if m.Size != 1 {
		t.Fatalf("matching=%d, want 1", m.Size)
	}
}

func TestMaxMatchingAugmenting(t *testing.T) {
	// Classic case needing an augmenting path: greedy could pick (0,0) and
	// block a perfect matching.
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)
	m := b.MaxMatching()
	if m.Size != 2 {
		t.Fatalf("matching=%d, want 2", m.Size)
	}
	if m.MatchL[0] != 0 || m.MatchL[1] != 1 {
		t.Fatalf("MatchL=%v, want [0 1]", m.MatchL)
	}
}

// bruteMatching finds the true maximum matching by exhaustive search.
func bruteMatching(b *Bipartite) int {
	usedR := make([]bool, b.NR)
	var rec func(u int) int
	rec = func(u int) int {
		if u == b.NL {
			return 0
		}
		best := rec(u + 1) // leave u unmatched
		for _, v := range b.Adj[u] {
			if !usedR[v] {
				usedR[v] = true
				if r := 1 + rec(u+1); r > best {
					best = r
				}
				usedR[v] = false
			}
		}
		return best
	}
	return rec(0)
}

func TestMaxMatchingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nL, nR := 1+rng.Intn(6), 1+rng.Intn(6)
		b := NewBipartite(nL, nR)
		for u := 0; u < nL; u++ {
			for v := 0; v < nR; v++ {
				if rng.Intn(3) == 0 {
					b.AddEdge(u, v)
				}
			}
		}
		m := b.MaxMatching()
		if want := bruteMatching(b); m.Size != want {
			t.Fatalf("matching=%d, want %d", m.Size, want)
		}
		// Consistency of MatchL/MatchR.
		for u, v := range m.MatchL {
			if v != -1 && m.MatchR[v] != u {
				t.Fatal("MatchL/MatchR inconsistent")
			}
		}
	}
}

func TestMinVertexCoverIsCoverOfMatchingSize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		nL, nR := 1+rng.Intn(6), 1+rng.Intn(6)
		b := NewBipartite(nL, nR)
		for u := 0; u < nL; u++ {
			for v := 0; v < nR; v++ {
				if rng.Intn(3) == 0 {
					b.AddEdge(u, v)
				}
			}
		}
		m := b.MaxMatching()
		coverL, coverR := b.MinVertexCover(m)
		size := 0
		for _, c := range coverL {
			if c {
				size++
			}
		}
		for _, c := range coverR {
			if c {
				size++
			}
		}
		if size != m.Size {
			t.Fatalf("König: cover size %d != matching size %d", size, m.Size)
		}
		for u := 0; u < nL; u++ {
			for _, v := range b.Adj[u] {
				if !coverL[u] && !coverR[v] {
					t.Fatalf("edge (%d,%d) uncovered", u, v)
				}
			}
		}
	}
}

func chainOrder(n int) *Order {
	o := NewOrder(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			o.SetLess(a, b)
		}
	}
	return o
}

func TestMaximumAntichainChain(t *testing.T) {
	o := chainOrder(5)
	res := o.MaximumAntichain()
	if res.Size != 1 || len(res.Members) != 1 {
		t.Fatalf("chain antichain=%d %v, want size 1", res.Size, res.Members)
	}
	if len(res.ChainCover) != 1 || len(res.ChainCover[0]) != 5 {
		t.Fatalf("chain cover %v, want single 5-chain", res.ChainCover)
	}
}

func TestMaximumAntichainEmptyOrder(t *testing.T) {
	o := NewOrder(4)
	res := o.MaximumAntichain()
	if res.Size != 4 || len(res.Members) != 4 {
		t.Fatalf("antichain=%d, want 4 (all incomparable)", res.Size)
	}
}

func TestMaximumAntichainTwoChains(t *testing.T) {
	// Two disjoint chains of length 3: width 2.
	o := NewOrder(6)
	o.SetLess(0, 1)
	o.SetLess(1, 2)
	o.SetLess(0, 2)
	o.SetLess(3, 4)
	o.SetLess(4, 5)
	o.SetLess(3, 5)
	res := o.MaximumAntichain()
	if res.Size != 2 {
		t.Fatalf("antichain=%d, want 2", res.Size)
	}
	if !o.IsAntichain(res.Members) {
		t.Fatalf("members %v not an antichain", res.Members)
	}
	if len(res.ChainCover) != 2 {
		t.Fatalf("chain cover %v, want 2 chains", res.ChainCover)
	}
}

func TestTransitiveClose(t *testing.T) {
	o := NewOrder(3)
	o.SetLess(0, 1)
	o.SetLess(1, 2)
	o.TransitiveClose()
	if !o.Less(0, 2) {
		t.Fatal("transitive closure missed 0<2")
	}
	if o.Less(2, 0) || o.Less(0, 0) {
		t.Fatal("closure introduced wrong pairs")
	}
}

// bruteAntichain finds the maximum antichain by subset enumeration.
func bruteAntichain(o *Order) int {
	n := o.N()
	best := 0
	for mask := 0; mask < (1 << n); mask++ {
		var elems []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				elems = append(elems, i)
			}
		}
		if len(elems) > best && o.IsAntichain(elems) {
			best = len(elems)
		}
	}
	return best
}

// Property: Dilworth antichain equals brute-force maximum antichain on random
// DAG-induced orders, and the returned members really are an antichain of
// that size, and the chain cover partitions all elements into Size chains.
func TestMaximumAntichainMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		g := randomDAG(rng, n, 0.35, 3)
		c, err := g.TransitiveClosure()
		if err != nil {
			return false
		}
		o := NewOrder(n)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if c.Reaches(a, b) {
					o.SetLess(a, b)
				}
			}
		}
		res := o.MaximumAntichain()
		if res.Size != bruteAntichain(o) {
			return false
		}
		if len(res.Members) != res.Size || !o.IsAntichain(res.Members) {
			return false
		}
		if len(res.ChainCover) != res.Size {
			return false
		}
		seen := make([]bool, n)
		for _, chain := range res.ChainCover {
			for i, e := range chain {
				if seen[e] {
					return false
				}
				seen[e] = true
				if i > 0 && !o.Less(chain[i-1], e) {
					return false // not actually a chain
				}
			}
		}
		for _, s := range seen {
			if !s {
				return false // not a partition
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderPairs(t *testing.T) {
	o := NewOrder(3)
	o.SetLess(0, 1)
	o.SetLess(0, 2)
	if o.Pairs() != 2 {
		t.Fatalf("Pairs=%d, want 2", o.Pairs())
	}
}
