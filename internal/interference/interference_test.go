package interference

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regsat/internal/ddg"
	"regsat/internal/ir"
	"regsat/internal/schedule"
)

func pairGraph(t *testing.T) (*ddg.Graph, *schedule.Schedule) {
	t.Helper()
	g := ddg.New("pair", ddg.Superscalar)
	a := g.AddNode("a", "load", 1)
	b := g.AddNode("b", "load", 1)
	sa := g.AddNode("sa", "store", 1)
	sb := g.AddNode("sb", "store", 1)
	g.SetWrites(a, ddg.Float, 0)
	g.SetWrites(b, ddg.Float, 0)
	g.AddFlowEdge(a, sa, ddg.Float)
	g.AddFlowEdge(b, sb, ddg.Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	s, err := schedule.ASAP(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, s
}

func TestBuildInterference(t *testing.T) {
	g, s := pairGraph(t)
	ig := Build(s, ddg.Float)
	a, b := g.NodeByName("a"), g.NodeByName("b")
	if !ig.Interferes(a, b) {
		t.Fatal("parallel values must interfere under ASAP")
	}
	if ig.NumEdges() != 1 {
		t.Fatalf("edges=%d, want 1", ig.NumEdges())
	}
	if ig.Degree(a) != 1 || ig.Degree(b) != 1 {
		t.Fatal("degrees wrong")
	}
}

func TestMaxCliqueMatchesRegisterNeed(t *testing.T) {
	_, s := pairGraph(t)
	ig := Build(s, ddg.Float)
	if ig.MaxClique() != s.RegisterNeed(ddg.Float) {
		t.Fatal("MaxClique must equal RN")
	}
}

func TestColorLeftEdgeOptimal(t *testing.T) {
	_, s := pairGraph(t)
	ig := Build(s, ddg.Float)
	col := ig.ColorLeftEdge()
	if col.NumColors != ig.MaxClique() {
		t.Fatalf("colors=%d, maxclique=%d: left-edge must be optimal on interval graphs",
			col.NumColors, ig.MaxClique())
	}
	if !col.Verify(ig) {
		t.Fatal("coloring invalid")
	}
}

func TestColoringSequentialUsesOneRegister(t *testing.T) {
	g, _ := pairGraph(t)
	a, b := g.NodeByName("a"), g.NodeByName("b")
	sa, sb := g.NodeByName("sa"), g.NodeByName("sb")
	times := make([]int64, g.NumNodes())
	times[a], times[sa], times[b], times[sb] = 0, 1, 2, 3
	times[g.Bottom()] = 5
	s := schedule.New(g, times)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	ig := Build(s, ddg.Float)
	col := ig.ColorLeftEdge()
	if col.NumColors != 1 {
		t.Fatalf("colors=%d, want 1 for sequential schedule", col.NumColors)
	}
}

// Property: on random scheduled DAGs, left-edge coloring is valid and uses
// exactly MaxClique colors (interval graph optimality), for every type.
func TestLeftEdgeOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := ddg.DefaultRandomParams(2 + rng.Intn(12))
		p.Types = []ddg.RegType{ddg.Int, ddg.Float}
		g := ddg.RandomGraph(rng, p)
		s, err := schedule.ASAP(g)
		if err != nil {
			return false
		}
		for _, typ := range g.Types() {
			ig := Build(s, typ)
			col := ig.ColorLeftEdge()
			if !col.Verify(ig) {
				return false
			}
			if mc := ig.MaxClique(); col.NumColors != mc {
				// All-empty lifetime corner case: NumColors may be 1 > 0.
				if !(mc == 0 && col.NumColors <= 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildFromIRMatchesBuild pins the snapshot-backed constructor to the
// direct-scan one: identical value sets, intervals, and interference edges.
func TestBuildFromIRMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := ddg.RandomGraph(rng, ddg.DefaultRandomParams(12))
	s, err := schedule.ASAP(g)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ir.Intern(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range g.Types() {
		direct := Build(s, typ)
		viaIR := BuildFromIR(snap, s, typ)
		if len(direct.Values) != len(viaIR.Values) {
			t.Fatalf("%s: value counts differ: %d vs %d", typ, len(direct.Values), len(viaIR.Values))
		}
		for i, u := range direct.Values {
			if viaIR.Values[i] != u {
				t.Fatalf("%s: value %d differs", typ, i)
			}
			if direct.Intervals[i] != viaIR.Intervals[i] {
				t.Fatalf("%s: interval of %d differs", typ, u)
			}
			for _, v := range direct.Values {
				if direct.Interferes(u, v) != viaIR.Interferes(u, v) {
					t.Fatalf("%s: interference (%d,%d) differs", typ, u, v)
				}
			}
		}
	}
}

// TestMaximalCliques: greedy maximal cliques over an explicit conflict
// relation — every emitted set is a clique, maximal, deduplicated, at least
// minSize large, and deterministically ordered.
func TestMaximalCliques(t *testing.T) {
	// Conflict graph on 6 vertices: triangle {0,1,2}, edge-glued triangle
	// {2,3,4}, isolated vertex 5.
	edges := map[[2]int]bool{
		{0, 1}: true, {0, 2}: true, {1, 2}: true,
		{2, 3}: true, {2, 4}: true, {3, 4}: true,
	}
	conflicts := func(i, j int) bool {
		if i > j {
			i, j = j, i
		}
		return edges[[2]int{i, j}]
	}
	got := MaximalCliques(6, conflicts, 3, 16)
	want := [][]int{{0, 1, 2}, {2, 3, 4}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for ci, c := range got {
		for i := range c {
			if i > 0 && c[i-1] >= c[i] {
				t.Fatalf("clique %v not in strict ascending order", c)
			}
			if c[i] != want[ci][i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	}

	// Randomized properties: clique-ness, maximality, dedup, determinism.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(10)
		adj := make([]bool, n*n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					adj[i*n+j], adj[j*n+i] = true, true
				}
			}
		}
		pred := func(i, j int) bool { return adj[i*n+j] }
		cliques := MaximalCliques(n, pred, 2, 100)
		seen := map[string]bool{}
		for _, c := range cliques {
			key := ""
			for _, v := range c {
				key += string(rune(v)) + ","
			}
			if seen[key] {
				t.Fatalf("trial %d: duplicate clique %v", trial, c)
			}
			seen[key] = true
			for i := range c {
				for j := i + 1; j < len(c); j++ {
					if !pred(c[i], c[j]) {
						t.Fatalf("trial %d: %v is not a clique (%d-%d)", trial, c, c[i], c[j])
					}
				}
			}
			// Maximality: no outside vertex conflicts with every member.
			for v := 0; v < n; v++ {
				inClique := false
				for _, m := range c {
					if m == v {
						inClique = true
						break
					}
				}
				if inClique {
					continue
				}
				all := true
				for _, m := range c {
					if !pred(v, m) {
						all = false
						break
					}
				}
				if all {
					t.Fatalf("trial %d: clique %v not maximal (vertex %d extends it)", trial, c, v)
				}
			}
		}
		again := MaximalCliques(n, pred, 2, 100)
		if len(again) != len(cliques) {
			t.Fatalf("trial %d: nondeterministic output", trial)
		}
		for i := range cliques {
			if len(again[i]) != len(cliques[i]) {
				t.Fatalf("trial %d: nondeterministic output", trial)
			}
			for j := range cliques[i] {
				if again[i][j] != cliques[i][j] {
					t.Fatalf("trial %d: nondeterministic output", trial)
				}
			}
		}
	}

	// Degenerate parameters return nothing.
	if MaximalCliques(1, conflicts, 2, 8) != nil ||
		MaximalCliques(6, conflicts, 1, 8) != nil ||
		MaximalCliques(6, conflicts, 3, 0) != nil {
		t.Fatal("degenerate parameters produced cliques")
	}
}
