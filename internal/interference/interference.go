// Package interference builds value interference graphs from scheduled DDGs
// (Section 3 of the paper: H_t, whose maximal clique is the register need)
// and colors them. Lifetime intervals make H_t an interval graph, so the
// left-edge algorithm colors it optimally with exactly MAXLIVE colors.
package interference

import (
	"sort"

	"regsat/internal/ddg"
	"regsat/internal/ir"
	"regsat/internal/schedule"
)

// Graph is the undirected interference graph H_t of the type-t values of a
// scheduled DDG: vertices are value-defining nodes, edges join values whose
// lifetime intervals overlap.
type Graph struct {
	Type      ddg.RegType
	Values    []int // defining node IDs, increasing
	Intervals []schedule.Interval
	adj       map[int]map[int]bool
}

// Build computes H_t for schedule s with a direct value scan — cheap
// enough that it never warrants building (or pinning) an analysis snapshot
// for a graph nothing else analyzes.
func Build(s *schedule.Schedule, t ddg.RegType) *Graph {
	return buildFromValues(s, t, s.G.Values(t))
}

// BuildFromIR is Build over a prebuilt snapshot of s.G, for callers that
// already hold the graph's interned snapshot: the value set comes from its
// per-type table instead of a rescan.
func BuildFromIR(snap *ir.Snapshot, s *schedule.Schedule, t ddg.RegType) *Graph {
	var values []int
	if tbl := snap.Table(t); tbl != nil {
		values = tbl.Values
	}
	return buildFromValues(s, t, values)
}

func buildFromValues(s *schedule.Schedule, t ddg.RegType, values []int) *Graph {
	g := &Graph{
		Type:   t,
		Values: values,
		adj:    make(map[int]map[int]bool, len(values)),
	}
	for _, u := range values {
		g.adj[u] = map[int]bool{}
		g.Intervals = append(g.Intervals, s.Lifetime(u, t))
	}
	for i := 0; i < len(values); i++ {
		for j := i + 1; j < len(values); j++ {
			if g.Intervals[i].Overlaps(g.Intervals[j]) {
				g.adj[values[i]][values[j]] = true
				g.adj[values[j]][values[i]] = true
			}
		}
	}
	return g
}

// Interferes reports whether values u and v interfere.
func (g *Graph) Interferes(u, v int) bool { return g.adj[u][v] }

// Degree returns the number of interference neighbours of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// NumEdges returns the interference edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// MaxClique returns the size of a maximum clique of the interval graph,
// which equals the maximal number of simultaneously alive values (MAXLIVE).
func (g *Graph) MaxClique() int {
	return schedule.MaxLive(g.Intervals)
}

// Coloring maps each value-defining node to a register index 0..K-1.
type Coloring struct {
	Assignment map[int]int
	NumColors  int
}

// ColorLeftEdge colors the interval graph with the left-edge algorithm,
// which is optimal for interval graphs: NumColors == MaxClique.
func (g *Graph) ColorLeftEdge() *Coloring {
	idx := make([]int, len(g.Values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := g.Intervals[idx[a]], g.Intervals[idx[b]]
		if ia.Start != ib.Start {
			return ia.Start < ib.Start
		}
		return ia.End < ib.End
	})
	assignment := make(map[int]int, len(g.Values))
	var regEnd []int64 // per register, the end of its last assigned interval
	for _, i := range idx {
		iv := g.Intervals[i]
		reg := -1
		if !iv.Empty() {
			for r, end := range regEnd {
				// Register r is free if its last value died at or before the
				// instant this value is born (left-open intervals).
				if end <= iv.Start {
					reg = r
					break
				}
			}
		} else {
			// Empty lifetimes (dead values) can share any register; give
			// them register 0 without extending its busy end.
			if len(regEnd) == 0 {
				regEnd = append(regEnd, iv.End)
			}
			assignment[g.Values[i]] = 0
			continue
		}
		if reg < 0 {
			regEnd = append(regEnd, iv.End)
			reg = len(regEnd) - 1
		} else if iv.End > regEnd[reg] {
			regEnd[reg] = iv.End
		}
		assignment[g.Values[i]] = reg
	}
	return &Coloring{Assignment: assignment, NumColors: len(regEnd)}
}

// Verify checks that no two interfering values share a register.
func (c *Coloring) Verify(g *Graph) bool {
	for i := 0; i < len(g.Values); i++ {
		for j := i + 1; j < len(g.Values); j++ {
			u, v := g.Values[i], g.Values[j]
			if g.Interferes(u, v) && c.Assignment[u] == c.Assignment[v] {
				return false
			}
		}
	}
	return true
}

// MaximalCliques greedily grows one clique per seed vertex of the abstract
// conflict relation over n vertices and returns the distinct cliques of at
// least minSize members, capped at maxCliques, each sorted ascending and the
// list ordered lexicographically — fully deterministic for a deterministic
// conflicts predicate. The greedy cliques are maximal (no vertex outside a
// returned clique conflicts with all its members), which is what makes them
// useful as set-packing cut supports for the exact MILPs: the paper's
// statically-derived relations (never simultaneously alive, always
// interfering) are exactly such conflict predicates.
func MaximalCliques(n int, conflicts func(i, j int) bool, minSize, maxCliques int) [][]int {
	if n < minSize || minSize < 2 || maxCliques <= 0 {
		return nil
	}
	var out [][]int
	seen := make(map[string]bool)
	var keyBuf []byte
	for seed := 0; seed < n && len(out) < maxCliques; seed++ {
		clique := []int{seed}
		for v := 0; v < n; v++ {
			if v == seed {
				continue
			}
			ok := true
			for _, m := range clique {
				if !conflicts(v, m) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, v)
			}
		}
		if len(clique) < minSize {
			continue
		}
		sort.Ints(clique)
		keyBuf = keyBuf[:0]
		for _, m := range clique {
			keyBuf = append(keyBuf, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
		}
		if k := string(keyBuf); !seen[k] {
			seen[k] = true
			out = append(out, clique)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		ca, cb := out[a], out[b]
		for i := 0; i < len(ca) && i < len(cb); i++ {
			if ca[i] != cb[i] {
				return ca[i] < cb[i]
			}
		}
		return len(ca) < len(cb)
	})
	return out
}
