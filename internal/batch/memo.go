package batch

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"regsat/internal/cyclic"
	"regsat/internal/ddg"
	"regsat/internal/ir"
	"regsat/internal/obs"
	"regsat/internal/reduce"
	"regsat/internal/rs"
	"regsat/internal/schedule"
)

// DefaultCacheSize bounds the memo when Options.CacheSize is zero.
const DefaultCacheSize = 1024

// memo is a bounded LRU cache of per-graph analysis artifacts, keyed by the
// ir fingerprint. Each entry holds the artifacts every RS method shares —
// one interned ir.Snapshot serving all register types of the graph, the
// per-type rs.Analysis views over it, and finished RS/reduction results
// keyed by their options — each computed at most once under singleflight
// semantics: concurrent workers that hit the same fingerprint block on the
// first computation instead of duplicating it.
type memo struct {
	// cap and l2 are set once in newMemo and immutable afterwards, so they
	// live above the mutex: mu guards only the fields below it.
	cap int
	l2  ResultCache

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses, l2hits atomic.Int64
}

func newMemo(capacity int, l2 ResultCache) *memo {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &memo{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		l2:      l2,
	}
}

// entry holds the memoized artifacts of one graph fingerprint. In-flight
// computations hold the entry pointer, so LRU eviction never invalidates a
// computation already underway.
type entry struct {
	fp string

	snapOnce sync.Once
	snap     *ir.Snapshot
	snapErr  error

	mu       sync.Mutex
	analyses map[ddg.RegType]*analysisSlot
	results  map[string]*resultSlot
	reduces  map[string]*reduceSlot
	cyclics  map[string]*cyclicSlot
}

type analysisSlot struct {
	once sync.Once
	an   *rs.Analysis
	err  error
}

// resultSlot is a singleflight cell that does NOT memoize context
// cancellation: an exact solve interrupted by a cancelled batch must not
// poison the slot for later runs of a shared engine. The mutex is held for
// the whole computation, so concurrent workers on the same fingerprint block
// on the first computation instead of duplicating it (and a waiter whose own
// context is already cancelled recomputes, fails fast in the solver, and
// returns its context error without writing the slot).
type resultSlot struct {
	mu   sync.Mutex
	done bool
	res  *rs.Result
	err  error
}

// get returns the memoized result, computing it under the slot lock on first
// use. The second return reports whether this call ran the computation.
func (s *resultSlot) get(compute func() (*rs.Result, error)) (*rs.Result, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.res, false, s.err
	}
	res, err := compute()
	if isCtxErr(err) {
		return nil, true, err
	}
	s.done = true
	s.res, s.err = res, err
	return res, true, err
}

func isCtxErr(err error) bool {
	return err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

type reduceSlot struct {
	mu   sync.Mutex
	done bool
	// src is the graph the memoized result was computed against; serving the
	// result to a structurally identical but distinct graph re-extends that
	// graph instead, so callers never see another input's names.
	src *ddg.Graph
	res *reduce.Result
	err error
}

// lookup returns the entry for fp, creating and inserting it (with LRU
// eviction) when absent.
func (m *memo) lookup(fp string) *entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[fp]; ok {
		m.order.MoveToFront(el)
		return el.Value.(*entry)
	}
	e := &entry{
		fp:       fp,
		analyses: make(map[ddg.RegType]*analysisSlot),
		results:  make(map[string]*resultSlot),
		reduces:  make(map[string]*reduceSlot),
		cyclics:  make(map[string]*cyclicSlot),
	}
	m.entries[fp] = m.order.PushFront(e)
	for len(m.entries) > m.cap {
		oldest := m.order.Back()
		delete(m.entries, oldest.Value.(*entry).fp)
		m.order.Remove(oldest)
	}
	return e
}

// snapshot returns the entry's interned ir.Snapshot, building it from g on
// first use. The entry's fingerprint doubles as the intern key, so the hash
// is never recomputed, and one snapshot serves every register type and
// every structural twin of the graph. The context is used only for tracing:
// when the winning caller's request is recorded, the one-time IR build
// appears as its span (later hitters see nothing — they didn't pay it).
func (e *entry) snapshot(ctx context.Context, g *ddg.Graph) (*ir.Snapshot, error) {
	e.snapOnce.Do(func() {
		_, sp := obs.StartSpan(ctx, "ir.build", obs.Int("nodes", int64(len(g.Nodes()))))
		e.snap, e.snapErr = ir.InternFingerprint(g, e.fp)
		sp.End()
	})
	return e.snap, e.snapErr
}

// analysis returns the entry's rs.Analysis for register type t, computing it
// on first use (all types share the entry's snapshot). The context only
// carries tracing, as in snapshot.
func (e *entry) analysis(ctx context.Context, g *ddg.Graph, t ddg.RegType) (*rs.Analysis, error) {
	e.mu.Lock()
	slot, ok := e.analyses[t]
	if !ok {
		slot = &analysisSlot{}
		e.analyses[t] = slot
	}
	e.mu.Unlock()
	slot.once.Do(func() {
		snap, err := e.snapshot(ctx, g)
		if err != nil {
			slot.err = err
			return
		}
		_, sp := obs.StartSpan(ctx, "rs.analysis", obs.Str("type", string(t)))
		slot.an, slot.err = rs.NewAnalysisIR(snap, t)
		sp.End()
	})
	return slot.an, slot.err
}

// result returns the memoized RS result for (t, opts), computing it on first
// use. The second return reports whether the result was served from cache —
// the in-memory slot or, when the engine has one, the L2 result cache (an
// L2 load seeds the slot, so the disk is read at most once per key). The
// context reaches all the way into an in-flight MILP solve, so batch
// cancellation interrupts it instead of waiting the solve out; interrupted
// computations are not memoized.
func (e *entry) result(ctx context.Context, m *memo, g *ddg.Graph, t ddg.RegType, opts rs.Options) (*rs.Result, bool, error) {
	key := string(t) + "|" + rsOptionsKey(opts)
	e.mu.Lock()
	slot, ok := e.results[key]
	if !ok {
		slot = &resultSlot{}
		e.results[key] = slot
	}
	e.mu.Unlock()
	fromL2 := false
	res, ran, err := slot.get(func() (*rs.Result, error) {
		cctx, sp := obs.StartSpan(ctx, "batch.rs", obs.Str("type", string(t)))
		defer sp.End()
		if m.l2 != nil {
			_, lsp := obs.StartSpan(cctx, "l2.get")
			r, ok := m.l2.Get(e.fp, g, t, key)
			lsp.End()
			if ok {
				fromL2 = true
				sp.Event("l2.hit")
				return r, nil
			}
			sp.Event("l2.miss")
		}
		an, aerr := e.analysis(cctx, g, t)
		if aerr != nil {
			return nil, aerr
		}
		r, cerr := rs.ComputeWithAnalysis(cctx, an, opts)
		if cerr == nil && m.l2 != nil {
			_, psp := obs.StartSpan(cctx, "l2.put")
			m.l2.Put(e.fp, t, key, r)
			psp.End()
		}
		return r, cerr
	})
	switch {
	case !ran:
		m.hits.Add(1)
		obs.FromContext(ctx).Event("memo.hit", obs.Str("type", string(t)))
	case fromL2:
		m.l2hits.Add(1)
	default:
		m.misses.Add(1)
	}
	return res, !ran || fromL2, err
}

// cyclicSlot is the loop-kernel analog of resultSlot: a singleflight cell
// for one (type, cyclic options) periodic analysis, with the same
// no-memoization-of-cancellation rule.
type cyclicSlot struct {
	mu   sync.Mutex
	done bool
	res  *cyclic.Result
	err  error
}

func (s *cyclicSlot) get(compute func() (*cyclic.Result, error)) (*cyclic.Result, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.res, false, s.err
	}
	res, err := compute()
	if isCtxErr(err) {
		return nil, true, err
	}
	s.done = true
	s.res, s.err = res, err
	return res, true, err
}

// cyclicResult returns the memoized periodic analysis for (t, opts),
// computing it on first use. Cyclic results carry no witness schedules (the
// window engine forces SkipWitness), so — unlike acyclic RS results — an L2
// hit needs no per-graph materialization and the L2 hook is the narrower
// CyclicCache interface, type-asserted from the engine's ResultCache.
func (e *entry) cyclicResult(ctx context.Context, m *memo, l *cyclic.Loop, t ddg.RegType, opts cyclic.Options) (*cyclic.Result, bool, error) {
	key := string(t) + "|" + opts.Key()
	e.mu.Lock()
	slot, ok := e.cyclics[key]
	if !ok {
		slot = &cyclicSlot{}
		e.cyclics[key] = slot
	}
	e.mu.Unlock()
	l2, _ := m.l2.(CyclicCache)
	fromL2 := false
	res, ran, err := slot.get(func() (*cyclic.Result, error) {
		cctx, sp := obs.StartSpan(ctx, "batch.cyclic", obs.Str("type", string(t)))
		defer sp.End()
		if l2 != nil {
			_, lsp := obs.StartSpan(cctx, "l2.get")
			r, ok := l2.GetCyclic(e.fp, t, key)
			lsp.End()
			if ok {
				fromL2 = true
				sp.Event("l2.hit")
				return r, nil
			}
			sp.Event("l2.miss")
		}
		r, cerr := cyclic.Analyze(cctx, l, t, opts)
		if cerr == nil && l2 != nil {
			_, psp := obs.StartSpan(cctx, "l2.put")
			l2.PutCyclic(e.fp, t, key, r)
			psp.End()
		}
		return r, cerr
	})
	switch {
	case !ran:
		m.hits.Add(1)
		obs.FromContext(ctx).Event("memo.hit", obs.Str("type", string(t)))
	case fromL2:
		m.l2hits.Add(1)
	default:
		m.misses.Add(1)
	}
	return res, !ran || fromL2, err
}

// reduction returns the memoized reduction result for (t, spec), computing
// it on first use; the second return reports whether this call ran the
// reduction (false = served from cache). Reductions whose spec has no
// cache key (a custom Run function the engine cannot identify) are
// computed every time.
//
// Unlike RS results — whose antichains and killing functions are plain node
// IDs, valid in every graph sharing the fingerprint — a reduction result
// carries a concrete extended *Graph. The fingerprint ignores names, so a
// memoized result computed for one input must not be handed verbatim to a
// structural twin with different names: the expensive search (the arcs) is
// reused, but the extended graph and witness schedule are rebuilt over the
// requesting graph.
func (e *entry) reduction(ctx context.Context, g *ddg.Graph, t ddg.RegType, spec *ReduceSpec) (*reduce.Result, bool, error) {
	if spec.Key == "" {
		res, err := spec.Run(ctx, g, t, spec.Budget)
		return res, true, err
	}
	key := fmt.Sprintf("%s|%s|%d", t, spec.Key, spec.Budget)
	e.mu.Lock()
	slot, ok := e.reduces[key]
	if !ok {
		slot = &reduceSlot{}
		e.reduces[key] = slot
	}
	e.mu.Unlock()
	slot.mu.Lock()
	ran := false
	if !slot.done {
		ran = true
		res, err := spec.Run(ctx, g, t, spec.Budget)
		if isCtxErr(err) {
			slot.mu.Unlock()
			return nil, true, err
		}
		slot.src, slot.res, slot.err = g, res, err
		slot.done = true
	}
	res, err, src := slot.res, slot.err, slot.src
	slot.mu.Unlock()
	if err != nil || src == g {
		return res, ran, err
	}
	adapted := *res
	adapted.Graph = g.Extend(res.Arcs)
	if res.Schedule != nil {
		adapted.Schedule = schedule.New(adapted.Graph, res.Schedule.Times)
	}
	return &adapted, ran, nil
}

// rsOptionsKey renders the result-determining fields of rs.Options.
func rsOptionsKey(o rs.Options) string {
	return fmt.Sprintf("m%d|l%d|r%t|w%t|s%s",
		o.Method, o.MaxLeaves, o.ApplyReductions, o.SkipWitness, o.Solver.Key())
}

// Stats reports the cumulative cache behavior of one engine run.
type Stats struct {
	// Hits counts RS computations served from the in-memory memo (a
	// repeated graph or repeated register type under the same options).
	Hits int64
	// L2Hits counts RS computations served from the second-level result
	// cache (always 0 when Options.L2 is nil).
	L2Hits int64
	// Misses counts RS computations actually performed.
	Misses int64
}

func (m *memo) stats() Stats {
	return Stats{Hits: m.hits.Load(), L2Hits: m.l2hits.Load(), Misses: m.misses.Load()}
}
