package batch

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"regsat/internal/ddg"
	"regsat/internal/graph"
	"regsat/internal/reduce"
	"regsat/internal/rs"
	"regsat/internal/schedule"
)

// DefaultCacheSize bounds the memo when Options.CacheSize is zero.
const DefaultCacheSize = 1024

// memo is a bounded LRU cache of per-graph analysis artifacts, keyed by
// structural fingerprint. Each entry holds the artifacts every RS method
// shares — the all-pairs longest-path matrix, the per-type rs.Analysis
// (which carries the potential-killer sets), and finished RS/reduction
// results keyed by their options — each computed at most once under
// singleflight semantics: concurrent workers that hit the same fingerprint
// block on the first computation instead of duplicating it.
type memo struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses atomic.Int64
}

func newMemo(capacity int) *memo {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &memo{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// entry holds the memoized artifacts of one graph fingerprint. In-flight
// computations hold the entry pointer, so LRU eviction never invalidates a
// computation already underway.
type entry struct {
	fp string

	apOnce sync.Once
	ap     *graph.AllPairsLongest
	apErr  error

	mu       sync.Mutex
	analyses map[ddg.RegType]*analysisSlot
	results  map[string]*resultSlot
	reduces  map[string]*reduceSlot
}

type analysisSlot struct {
	once sync.Once
	an   *rs.Analysis
	err  error
}

type resultSlot struct {
	once sync.Once
	res  *rs.Result
	err  error
}

type reduceSlot struct {
	once sync.Once
	// src is the graph the memoized result was computed against; serving the
	// result to a structurally identical but distinct graph re-extends that
	// graph instead, so callers never see another input's names.
	src *ddg.Graph
	res *reduce.Result
	err error
}

// lookup returns the entry for fp, creating and inserting it (with LRU
// eviction) when absent.
func (m *memo) lookup(fp string) *entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[fp]; ok {
		m.order.MoveToFront(el)
		return el.Value.(*entry)
	}
	e := &entry{
		fp:       fp,
		analyses: make(map[ddg.RegType]*analysisSlot),
		results:  make(map[string]*resultSlot),
		reduces:  make(map[string]*reduceSlot),
	}
	m.entries[fp] = m.order.PushFront(e)
	for len(m.entries) > m.cap {
		oldest := m.order.Back()
		delete(m.entries, oldest.Value.(*entry).fp)
		m.order.Remove(oldest)
	}
	return e
}

// allPairs returns the entry's all-pairs longest-path matrix, computing it
// from g on first use.
func (e *entry) allPairs(g *ddg.Graph) (*graph.AllPairsLongest, error) {
	e.apOnce.Do(func() {
		e.ap, e.apErr = g.ToDigraph().LongestAllPairs()
	})
	return e.ap, e.apErr
}

// analysis returns the entry's rs.Analysis for register type t, computing it
// on first use (sharing the all-pairs matrix across types).
func (e *entry) analysis(g *ddg.Graph, t ddg.RegType) (*rs.Analysis, error) {
	e.mu.Lock()
	slot, ok := e.analyses[t]
	if !ok {
		slot = &analysisSlot{}
		e.analyses[t] = slot
	}
	e.mu.Unlock()
	slot.once.Do(func() {
		ap, err := e.allPairs(g)
		if err != nil {
			slot.err = err
			return
		}
		slot.an, slot.err = rs.NewAnalysisShared(g, t, ap)
	})
	return slot.an, slot.err
}

// result returns the memoized RS result for (t, opts), computing it on first
// use. The second return reports whether the result was served from cache.
func (e *entry) result(m *memo, g *ddg.Graph, t ddg.RegType, opts rs.Options) (*rs.Result, bool, error) {
	key := string(t) + "|" + rsOptionsKey(opts)
	e.mu.Lock()
	slot, ok := e.results[key]
	if !ok {
		slot = &resultSlot{}
		e.results[key] = slot
	}
	e.mu.Unlock()
	ran := false
	slot.once.Do(func() {
		ran = true
		an, err := e.analysis(g, t)
		if err != nil {
			slot.err = err
			return
		}
		slot.res, slot.err = rs.ComputeWithAnalysis(an, opts)
	})
	if ran {
		m.misses.Add(1)
	} else {
		m.hits.Add(1)
	}
	return slot.res, !ran, slot.err
}

// reduction returns the memoized reduction result for (t, spec), computing
// it on first use. Reductions whose spec has no cache key (a custom Run
// function the engine cannot identify) are computed every time.
//
// Unlike RS results — whose antichains and killing functions are plain node
// IDs, valid in every graph sharing the fingerprint — a reduction result
// carries a concrete extended *Graph. The fingerprint ignores names, so a
// memoized result computed for one input must not be handed verbatim to a
// structural twin with different names: the expensive search (the arcs) is
// reused, but the extended graph and witness schedule are rebuilt over the
// requesting graph.
func (e *entry) reduction(g *ddg.Graph, t ddg.RegType, spec *ReduceSpec) (*reduce.Result, error) {
	if spec.Key == "" {
		return spec.Run(g, t, spec.Budget)
	}
	key := fmt.Sprintf("%s|%s|%d", t, spec.Key, spec.Budget)
	e.mu.Lock()
	slot, ok := e.reduces[key]
	if !ok {
		slot = &reduceSlot{}
		e.reduces[key] = slot
	}
	e.mu.Unlock()
	slot.once.Do(func() {
		slot.src = g
		slot.res, slot.err = spec.Run(g, t, spec.Budget)
	})
	if slot.err != nil || slot.src == g {
		return slot.res, slot.err
	}
	adapted := *slot.res
	adapted.Graph = g.Extend(slot.res.Arcs)
	if slot.res.Schedule != nil {
		adapted.Schedule = schedule.New(adapted.Graph, slot.res.Schedule.Times)
	}
	return &adapted, nil
}

// rsOptionsKey renders the result-determining fields of rs.Options.
func rsOptionsKey(o rs.Options) string {
	return fmt.Sprintf("m%d|l%d|r%t|w%t|lp%d:%s:%g",
		o.Method, o.MaxLeaves, o.ApplyReductions, o.SkipWitness,
		o.LP.MaxNodes, o.LP.TimeLimit, o.LP.IntTol)
}

// Stats reports the cumulative cache behavior of one engine run.
type Stats struct {
	// Hits counts RS computations served from the memo (a repeated graph or
	// repeated register type under the same options).
	Hits int64
	// Misses counts RS computations actually performed.
	Misses int64
}

func (m *memo) stats() Stats {
	return Stats{Hits: m.hits.Load(), Misses: m.misses.Load()}
}
