// Package batch is the concurrent batch-analysis engine: it shards register
// saturation analysis (and optional RS reduction) of a stream of DDGs across
// a bounded worker pool, memoizing the expensive shared artifacts — the
// interned ir.Snapshot (CSR adjacency, topological order, transitive
// closure, all-pairs longest paths, per-type value/killer tables), the
// per-type rs.Analysis views over it, and finished results — by the ir
// fingerprint, so repeated graphs and repeated register types never
// recompute.
//
// The engine guarantees:
//
//   - deterministic result ordering: results arrive in input-stream order
//     regardless of worker count or completion order;
//   - per-item error isolation: a graph that fails to load, analyze, or even
//     panics yields a Result carrying the error without killing the batch;
//   - prompt cancellation: cancelling the context stops the producer and
//     workers and closes the result channel after in-flight items drain.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"regsat/internal/cyclic"
	"regsat/internal/ddg"
	"regsat/internal/obs"
	"regsat/internal/reduce"
	"regsat/internal/rs"
	"regsat/internal/solver"
)

// Options configures an Engine.
type Options struct {
	// Parallel is the worker count; 0 or negative means GOMAXPROCS.
	Parallel int
	// RS configures the saturation computation of every item.
	RS rs.Options
	// Cyclic configures the periodic analysis of loop items. When its RS
	// sub-options are the zero value they inherit the engine's RS options,
	// so one method/solver selection governs both item kinds.
	Cyclic cyclic.Options
	// Solver, when non-zero, overrides RS.Solver: one place to select the
	// MILP backend and its limits for the whole batch.
	Solver solver.Options
	// Types restricts analysis to these register types; nil analyzes every
	// type each graph writes. Types a graph does not write are skipped.
	Types []ddg.RegType
	// Reduce, when non-nil with a positive budget, runs RS reduction after
	// each saturation whose RS exceeds the budget.
	Reduce *ReduceSpec
	// CacheSize bounds the fingerprint memo (entries); 0 = DefaultCacheSize.
	CacheSize int
	// L2 is an optional second-level result cache layered under the
	// in-memory memo: results the memo has to compute are first looked up
	// in (and written through to) L2, so they can outlive the process and
	// be shared across engines. The analysis daemon plugs its persistent
	// on-disk store in here.
	L2 ResultCache
}

// ResultCache is a second-level result cache under the memo, keyed exactly
// like the memo itself: the ir structural fingerprint, the register type,
// and the canonicalized options key. Implementations must be safe for
// concurrent use and are expected to be best-effort — a failed Get is a
// miss, a failed Put is dropped.
type ResultCache interface {
	// Get returns the cached result for (fp, t, optsKey), materialized
	// against g: node IDs are valid for every graph sharing the
	// fingerprint, and witness schedules are rebuilt over g.
	Get(fp string, g *ddg.Graph, t ddg.RegType, optsKey string) (*rs.Result, bool)
	// Put stores res under (fp, t, optsKey).
	Put(fp string, t ddg.RegType, optsKey string, res *rs.Result)
}

// CyclicCache is the optional loop-kernel extension of ResultCache: an L2
// cache that also implements it serves and stores periodic analysis results,
// keyed by the loop fingerprint (its domain is disjoint from acyclic ir
// fingerprints), the register type, and the canonicalized cyclic options key.
// L2 caches that do not implement it simply never see loop items.
type CyclicCache interface {
	// GetCyclic returns the cached periodic result for (fp, t, optsKey).
	GetCyclic(fp string, t ddg.RegType, optsKey string) (*cyclic.Result, bool)
	// PutCyclic stores res under (fp, t, optsKey).
	PutCyclic(fp string, t ddg.RegType, optsKey string, res *cyclic.Result)
}

// ReduceSpec describes the optional reduction pass of a batch.
type ReduceSpec struct {
	// Budget is the available register count R_t to reduce below.
	Budget int
	// Run performs the reduction (defaults to the heuristic when nil). The
	// context is the batch context: exact reductions must pass it to their
	// MILP solves so cancellation interrupts them.
	Run func(ctx context.Context, g *ddg.Graph, t ddg.RegType, budget int) (*reduce.Result, error)
	// Key identifies Run for memoization; leave empty to disable caching of
	// reductions (required when Run is a closure the engine cannot name).
	Key string
}

// HeuristicReduce is the default ReduceSpec Run: Touati's value-serialization
// heuristic.
func HeuristicReduce(ctx context.Context, g *ddg.Graph, t ddg.RegType, budget int) (*reduce.Result, error) {
	return reduce.Heuristic(ctx, g, t, budget)
}

// Result is the analysis outcome of one stream item.
type Result struct {
	// Index is the item's position in the input stream; results are
	// delivered in increasing Index order.
	Index int
	// Name identifies the item (file path, kernel or graph name).
	Name string
	// Graph is the finalized DDG (nil when Err is set before loading, or
	// when the item is a loop kernel).
	Graph *ddg.Graph
	// Loop is the item's cyclic kernel when the input carried the `loop`
	// flag; such items populate Cyclic instead of RS.
	Loop *cyclic.Loop
	// RS maps each analyzed register type to its saturation result. When the
	// batch contains structurally identical graphs, duplicates share one
	// *rs.Result — treat results as immutable.
	RS map[ddg.RegType]*rs.Result
	// ComputedRS marks the types whose RS result this item actually
	// computed, as opposed to served from the memo or the L2 cache — the
	// hook for consumers (the analysis daemon's metrics) that must count
	// each solve exactly once, not once per cache hit.
	ComputedRS map[ddg.RegType]bool
	// Reductions maps each reduced type to its reduction result (only types
	// whose saturation exceeded the budget appear).
	Reductions map[ddg.RegType]*reduce.Result
	// ComputedReductions marks the reductions this item actually ran
	// (mirror of ComputedRS for the reduction pass).
	ComputedReductions map[ddg.RegType]bool
	// Cyclic maps each analyzed register type of a loop item to its periodic
	// saturation result. Structural twins share one *cyclic.Result — treat
	// results as immutable.
	Cyclic map[ddg.RegType]*cyclic.Result
	// ComputedCyclic mirrors ComputedRS for loop items.
	ComputedCyclic map[ddg.RegType]bool
	// CacheHit reports that every RS computation of this item was served
	// from the memo.
	CacheHit bool
	// Elapsed is the wall time this item spent in a worker.
	Elapsed time.Duration
	// Err is the item's failure, if any; the batch continues past it.
	Err error
}

// Engine runs batches over a shared memo: consecutive Run calls on one
// engine reuse each other's cached artifacts.
type Engine struct {
	opts Options
	memo *memo
}

// New creates an engine. The zero Options value analyzes every type with
// Greedy-k across GOMAXPROCS workers.
func New(opts Options) *Engine {
	if opts.Solver != (solver.Options{}) {
		opts.RS.Solver = opts.Solver
	}
	if opts.Cyclic.RS == (rs.Options{}) {
		opts.Cyclic.RS = opts.RS
	}
	if opts.Reduce != nil && opts.Reduce.Run == nil {
		r := *opts.Reduce
		r.Run = HeuristicReduce
		if r.Key == "" {
			r.Key = "heuristic"
		}
		opts.Reduce = &r
	}
	return &Engine{opts: opts, memo: newMemo(opts.CacheSize, opts.L2)}
}

// WithOptions returns an engine running under different analysis options
// while sharing this engine's memo — and therefore its L1/L2 caches and
// cumulative statistics. The derived Options' CacheSize and L2 fields are
// ignored: the shared memo keeps the base engine's. The analysis daemon
// uses this to serve requests with per-request options over one cache.
func (e *Engine) WithOptions(opts Options) *Engine {
	derived := New(opts)
	derived.memo = e.memo
	return derived
}

// Stats returns the engine's cumulative cache statistics.
func (e *Engine) Stats() Stats { return e.memo.stats() }

// Parallelism returns the effective worker count.
func (e *Engine) Parallelism() int {
	if e.opts.Parallel > 0 {
		return e.opts.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

type work struct {
	index int
	item  Item
}

// Run launches the batch and returns the ordered result stream. The channel
// is closed when the stream is exhausted or the context is cancelled; after
// cancellation only already-in-flight results (in index order, possibly with
// gaps) are delivered.
func (e *Engine) Run(ctx context.Context, src Source) (<-chan Result, error) {
	if src == nil {
		return nil, fmt.Errorf("batch: nil source")
	}
	workers := e.Parallelism()
	in := make(chan work, workers)
	raw := make(chan Result, workers)
	out := make(chan Result, workers)

	// Producer: pull the (single-goroutine) source, stamp stream indices.
	go func() {
		defer close(in)
		for i := 0; ; i++ {
			it, ok := src.Next()
			if !ok {
				return
			}
			select {
			case in <- work{index: i, item: it}:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: analyze items; panics and errors stay per-item.
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for wk := range in {
				if ctx.Err() != nil {
					return
				}
				raw <- e.process(ctx, wk)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(raw)
	}()

	// Collector: reorder completions into input order. After cancellation
	// the consumer may walk away, so every send also watches ctx.
	go func() {
		defer close(out)
		pending := map[int]Result{}
		next := 0
		send := func(r Result) bool {
			select {
			case out <- r:
				return true
			case <-ctx.Done():
				return false
			}
		}
		for r := range raw {
			pending[r.Index] = r
			for {
				head, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if !send(head) {
					for range raw { // release workers
					}
					return
				}
				next++
			}
		}
		// Cancellation can leave index gaps; flush what finished, in order.
		rest := make([]int, 0, len(pending))
		for i := range pending {
			rest = append(rest, i)
		}
		sort.Ints(rest)
		for _, i := range rest {
			if !send(pending[i]) {
				return
			}
		}
	}()
	return out, nil
}

// Collect runs the batch to completion and returns the ordered result slice.
func (e *Engine) Collect(ctx context.Context, src Source) ([]Result, error) {
	ch, err := e.Run(ctx, src)
	if err != nil {
		return nil, err
	}
	var out []Result
	for r := range ch {
		out = append(out, r)
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// process analyzes one item. All failure modes — load errors, analysis
// errors, panics from malformed graphs — are captured in the Result.
func (e *Engine) process(ctx context.Context, wk work) (res Result) {
	start := time.Now()
	res = Result{Index: wk.index, Name: wk.item.Name}
	// The item span (registered before the recover defer, so it ends last)
	// is one lane of a traced request's waterfall: its children are the
	// IR-build, per-type RS, and reduction spans below.
	ctx, isp := obs.StartSpan(ctx, "batch.item",
		obs.Str("item", wk.item.Name), obs.Int("index", int64(wk.index)))
	defer func() {
		if res.Err != nil {
			isp.SetAttr(obs.Str("err", res.Err.Error()))
		}
		isp.SetAttr(obs.Bool("cacheHit", res.CacheHit))
		isp.End()
	}()
	defer func() {
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("batch: %s: panic: %v", wk.item.Name, p)
		}
		res.Elapsed = time.Since(start)
	}()
	if wk.item.Err != nil {
		res.Err = wk.item.Err
		return res
	}
	if wk.item.Loop != nil {
		return e.processLoop(ctx, wk, res)
	}
	g := wk.item.Graph
	if !g.Finalized() {
		if err := g.Finalize(); err != nil {
			res.Err = err
			return res
		}
	}
	res.Graph = g
	types := e.opts.Types
	if len(types) == 0 {
		types = g.Types()
	}
	ent := e.memo.lookup(Fingerprint(g))
	res.RS = make(map[ddg.RegType]*rs.Result, len(types))
	res.ComputedRS = make(map[ddg.RegType]bool, len(types))
	allCached := true
	for _, t := range types {
		if !writes(g, t) {
			continue
		}
		if err := ctx.Err(); err != nil {
			res.Err = err
			return res
		}
		r, hit, err := ent.result(ctx, e.memo, g, t, e.opts.RS)
		if err != nil {
			res.Err = fmt.Errorf("%s/%s: %w", wk.item.Name, t, err)
			return res
		}
		if !hit {
			allCached = false
			res.ComputedRS[t] = true
		}
		res.RS[t] = r
		if e.opts.Reduce != nil && e.opts.Reduce.Budget > 0 && r.RS > e.opts.Reduce.Budget {
			rctx, rsp := obs.StartSpan(ctx, "batch.reduce", obs.Str("type", string(t)))
			rr, ran, err := ent.reduction(rctx, g, t, e.opts.Reduce)
			rsp.End()
			if err != nil {
				res.Err = fmt.Errorf("%s/%s: reduce: %w", wk.item.Name, t, err)
				return res
			}
			if res.Reductions == nil {
				res.Reductions = map[ddg.RegType]*reduce.Result{}
				res.ComputedReductions = map[ddg.RegType]bool{}
			}
			res.Reductions[t] = rr
			if ran {
				res.ComputedReductions[t] = true
			}
		}
	}
	res.CacheHit = allCached && len(res.RS) > 0
	return res
}

// processLoop analyzes one loop item: unrolled-window convergence (plus the
// periodic certificate when the options ask for it) per register type, with
// results memoized under the loop's domain-tagged fingerprint exactly like
// acyclic RS results.
func (e *Engine) processLoop(ctx context.Context, wk work, res Result) Result {
	l := wk.item.Loop
	if err := l.Validate(); err != nil {
		res.Err = err
		return res
	}
	res.Loop = l
	types := e.opts.Types
	if len(types) == 0 {
		types = l.Types()
	}
	ent := e.memo.lookup(l.Fingerprint())
	res.Cyclic = make(map[ddg.RegType]*cyclic.Result, len(types))
	res.ComputedCyclic = make(map[ddg.RegType]bool, len(types))
	allCached := true
	for _, t := range types {
		if !loopWrites(l, t) {
			continue
		}
		if err := ctx.Err(); err != nil {
			res.Err = err
			return res
		}
		r, hit, err := ent.cyclicResult(ctx, e.memo, l, t, e.opts.Cyclic)
		if err != nil {
			res.Err = fmt.Errorf("%s/%s: %w", wk.item.Name, t, err)
			return res
		}
		if !hit {
			allCached = false
			res.ComputedCyclic[t] = true
		}
		res.Cyclic[t] = r
	}
	res.CacheHit = allCached && len(res.Cyclic) > 0
	return res
}

func loopWrites(l *cyclic.Loop, t ddg.RegType) bool {
	for _, n := range l.Nodes() {
		if n.WritesType(t) {
			return true
		}
	}
	return false
}

func writes(g *ddg.Graph, t ddg.RegType) bool {
	for _, n := range g.Nodes() {
		if n.WritesType(t) {
			return true
		}
	}
	return false
}
