package batch

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"regsat/internal/cyclic"
	"regsat/internal/ddg"
)

// Item is one graph of a batch stream. A source that fails to load an input
// yields an Item carrying the error instead of aborting the stream, so one
// bad file never kills the batch.
type Item struct {
	// Name identifies the item in results (file path, kernel name, …).
	Name string
	// Graph is the finalized DDG (nil when Err or Loop is set).
	Graph *ddg.Graph
	// Loop is a cyclic loop kernel; items carry either Graph or Loop, never
	// both. File sources set it automatically when the input carries the
	// `loop` header flag.
	Loop *cyclic.Loop
	// Err is the load failure of this item, if any.
	Err error
}

// Source streams DDGs into the engine. Next returns ok=false when the
// source is exhausted. Sources are consumed by a single goroutine, so
// implementations need not be safe for concurrent use.
type Source interface {
	Next() (Item, bool)
}

// sliceSource streams a precomputed item slice.
type sliceSource struct {
	items []Item
	pos   int
}

func (s *sliceSource) Next() (Item, bool) {
	if s.pos >= len(s.items) {
		return Item{}, false
	}
	s.pos++
	return s.items[s.pos-1], true
}

// Items streams precomputed items in order — the hook for callers (the
// analysis daemon) whose inputs are not files or prebuilt graphs: an item
// can carry a graph parsed from a request body, or the parse failure as a
// per-item error.
func Items(items ...Item) Source { return &sliceSource{items: items} }

// Graphs streams already-built graphs, named by their Graph.Name. Graphs
// are finalized up front (in place), so one graph passed twice is safe to
// analyze from concurrent workers; finalization failures become per-item
// errors.
func Graphs(gs ...*ddg.Graph) Source {
	items := make([]Item, len(gs))
	for i, g := range gs {
		if err := g.Finalize(); err != nil {
			items[i] = Item{Name: g.Name, Err: err}
			continue
		}
		items[i] = Item{Name: g.Name, Graph: g}
	}
	return &sliceSource{items: items}
}

// Loops streams already-built cyclic loop kernels, named by their Name.
// Validation failures become per-item errors.
func Loops(ls ...*cyclic.Loop) Source {
	items := make([]Item, len(ls))
	for i, l := range ls {
		if err := l.Validate(); err != nil {
			items[i] = Item{Name: l.Name, Err: err}
			continue
		}
		items[i] = Item{Name: l.Name, Loop: l}
	}
	return &sliceSource{items: items}
}

// Files streams the given .ddg files lazily: each file is opened, parsed,
// and finalized when the engine pulls it. Load failures become per-item
// errors.
func Files(paths ...string) Source {
	return &fileSource{paths: paths}
}

type fileSource struct {
	paths []string
	pos   int
}

func (s *fileSource) Next() (Item, bool) {
	if s.pos >= len(s.paths) {
		return Item{}, false
	}
	path := s.paths[s.pos]
	s.pos++
	it := loadFile(path)
	it.Name = path
	return it, true
}

// loadFile parses and finalizes one .ddg file, dispatching on the `loop`
// header flag: loop kernels load as cyclic Loops, everything else as acyclic
// graphs. Errors are not prefixed with the path: the Item.Name / Result.Name
// reported alongside already carries it.
func loadFile(path string) Item {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Item{Err: err}
	}
	text := string(raw)
	if cyclic.Detect(text) {
		l, err := cyclic.ParseString(text)
		if err != nil {
			return Item{Err: err}
		}
		return Item{Loop: l}
	}
	g, err := ddg.ParseString(text)
	if err != nil {
		return Item{Err: err}
	}
	if err := g.Finalize(); err != nil {
		return Item{Err: err}
	}
	return Item{Graph: g}
}

// Dir streams every *.ddg file of a directory in sorted order. It fails up
// front when the directory cannot be read or holds no corpus files, so the
// caller can distinguish a missing corpus from an empty result stream.
func Dir(dir string) (Source, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.ddg"))
	if err != nil {
		return nil, fmt.Errorf("batch: glob %s: %w", dir, err)
	}
	if len(files) == 0 {
		if _, statErr := os.Stat(dir); statErr != nil {
			return nil, fmt.Errorf("batch: %w", statErr)
		}
		return nil, fmt.Errorf("batch: no .ddg files in %s", dir)
	}
	sort.Strings(files)
	return Files(files...), nil
}

// Paths streams a mix of .ddg files and directories (each directory expands
// to its sorted *.ddg files), in the order given.
func Paths(paths ...string) (Source, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("batch: %w", err)
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(p, "*.ddg"))
		if err != nil {
			return nil, fmt.Errorf("batch: glob %s: %w", p, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("batch: no .ddg files in %s", p)
		}
		sort.Strings(matches)
		files = append(files, matches...)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("batch: no input files")
	}
	return Files(files...), nil
}

// Generate streams n random finalized DDGs derived from consecutive seeds
// seed, seed+1, …: a synthetic workload source for stress and scale runs.
func Generate(n int, seed int64, params ddg.RandomParams) Source {
	return &genSource{n: n, seed: seed, params: params}
}

type genSource struct {
	n      int
	seed   int64
	pos    int
	params ddg.RandomParams
}

func (s *genSource) Next() (Item, bool) {
	if s.pos >= s.n {
		return Item{}, false
	}
	seed := s.seed + int64(s.pos)
	s.pos++
	g := ddg.RandomGraph(rand.New(rand.NewSource(seed)), s.params)
	g.Name = fmt.Sprintf("%s-seed%d", g.Name, seed)
	return Item{Name: g.Name, Graph: g}, true
}

// Concat chains sources into one stream.
func Concat(sources ...Source) Source {
	return &concatSource{sources: sources}
}

type concatSource struct {
	sources []Source
}

func (s *concatSource) Next() (Item, bool) {
	for len(s.sources) > 0 {
		if it, ok := s.sources[0].Next(); ok {
			return it, true
		}
		s.sources = s.sources[1:]
	}
	return Item{}, false
}
