package batch

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"regsat/internal/ddg"
	"regsat/internal/rs"
)

// render canonicalizes a result list so runs can be compared byte-for-byte.
func render(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "#%d %s", r.Index, r.Name)
		if r.Err != nil {
			fmt.Fprintf(&b, " ERR %v\n", r.Err)
			continue
		}
		types := make([]string, 0, len(r.RS))
		for t := range r.RS {
			types = append(types, string(t))
		}
		sort.Strings(types)
		for _, ts := range types {
			res := r.RS[ddg.RegType(ts)]
			fmt.Fprintf(&b, " %s:RS=%d,exact=%t,chain=%v", ts, res.RS, res.Exact, res.Antichain)
			if res.Witness != nil {
				fmt.Fprintf(&b, ",RN=%d", res.Witness.RegisterNeed(ddg.RegType(ts)))
			}
			if red := r.Reductions[ddg.RegType(ts)]; red != nil {
				fmt.Fprintf(&b, ",red=%d,arcs=%v,spill=%t", red.RS, red.Arcs, red.Spill)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func genParams(n int) ddg.RandomParams {
	p := ddg.DefaultRandomParams(n)
	p.Types = []ddg.RegType{ddg.Int, ddg.Float}
	return p
}

// TestDeterministicOrdering: the same input stream yields byte-identical
// ordered results for every worker count, RS method, and with a reduction
// pass attached.
func TestDeterministicOrdering(t *testing.T) {
	opts := Options{
		RS:     rs.Options{Method: rs.MethodExactBB},
		Reduce: &ReduceSpec{Budget: 3},
	}
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		o := opts
		o.Parallel = workers
		results, err := New(o).Collect(context.Background(), Generate(24, 7, genParams(10)))
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if len(results) != 24 {
			t.Fatalf("parallel=%d: got %d results, want 24", workers, len(results))
		}
		got := render(results)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("parallel=%d results differ from sequential:\n--- sequential\n%s--- parallel\n%s", workers, want, got)
		}
	}
}

// TestPoisonedGraphIsolation: load errors, finalize failures, and outright
// panics (a nil graph) are confined to their item; every other item of the
// batch still succeeds, in order.
func TestPoisonedGraphIsolation(t *testing.T) {
	good1 := ddg.RandomGraph(rand.New(rand.NewSource(1)), genParams(8))
	good2 := ddg.RandomGraph(rand.New(rand.NewSource(2)), genParams(8))
	cyclic := ddg.New("cyclic", ddg.Superscalar)
	a := cyclic.AddNode("a", "op", 1)
	b := cyclic.AddNode("b", "op", 1)
	cyclic.AddSerialEdge(a, b, 1)
	cyclic.AddSerialEdge(b, a, 1)
	src := &sliceSource{items: []Item{
		{Name: "good1", Graph: good1},
		{Name: "load-error", Err: fmt.Errorf("synthetic load failure")},
		{Name: "panic-nil-graph", Graph: nil},
		{Name: "cyclic", Graph: cyclic},
		{Name: "good2", Graph: good2},
	}}
	results, err := New(Options{Parallel: 4, RS: rs.Options{Method: rs.MethodGreedy}}).
		Collect(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
	}
	wantErr := map[string]bool{"load-error": true, "panic-nil-graph": true, "cyclic": true}
	for _, r := range results {
		if wantErr[r.Name] != (r.Err != nil) {
			t.Errorf("%s: err=%v, wanted error=%t", r.Name, r.Err, wantErr[r.Name])
		}
	}
	if !strings.Contains(results[2].Err.Error(), "panic") {
		t.Errorf("nil graph should surface as a recovered panic, got: %v", results[2].Err)
	}
}

// TestCancellationMidBatch: cancelling the context mid-run closes the result
// channel promptly without delivering the full batch.
func TestCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const total = 200
	ch, err := New(Options{Parallel: 2, RS: rs.Options{Method: rs.MethodExactBB}}).
		Run(ctx, Generate(total, 11, genParams(12)))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for range ch {
		seen++
		if seen == 3 {
			cancel()
			break
		}
	}
	done := make(chan int)
	go func() {
		rest := 0
		for range ch {
			rest++
		}
		done <- rest
	}()
	select {
	case rest := <-done:
		if seen+rest >= total {
			t.Errorf("cancellation delivered the whole batch (%d results)", seen+rest)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("result channel did not close after cancellation")
	}
}

// TestMemoization: repeated graphs and repeated register types are served
// from the fingerprint memo instead of recomputing.
// TestCancellationInterruptsMILPSolve: cancelling the batch context aborts
// an IN-FLIGHT exact intLP solve (inside its simplex iterations) instead of
// waiting it out — the whole point of threading the context down through the
// solver layer. The corpus graph used here takes several seconds to solve
// exactly; the cancelled batch must return orders of magnitude faster.
func TestCancellationInterruptsMILPSolve(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "vliw-syn-fork4.ddg")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("corpus file unavailable: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := New(Options{
		Parallel: 1,
		RS:       rs.Options{Method: rs.MethodExactILP, ApplyReductions: true, SkipWitness: true},
		Types:    []ddg.RegType{ddg.Float},
	}).Run(ctx, Files(path))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the solve get in flight
	start := time.Now()
	cancel()
	for range ch {
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v; the in-flight MILP solve was not interrupted", elapsed)
	}
}

func TestMemoization(t *testing.T) {
	const copies = 10
	base := ddg.RandomGraph(rand.New(rand.NewSource(5)), genParams(10))
	gs := make([]*ddg.Graph, copies)
	for i := range gs {
		gs[i] = base.Clone()
		gs[i].Name = fmt.Sprintf("copy-%d", i)
	}
	eng := New(Options{Parallel: 1, RS: rs.Options{Method: rs.MethodExactBB}})
	results, err := eng.Collect(context.Background(), Graphs(gs...))
	if err != nil {
		t.Fatal(err)
	}
	nTypes := int64(len(base.Types()))
	if nTypes == 0 {
		t.Fatal("base graph writes no values")
	}
	st := eng.Stats()
	if st.Misses != nTypes {
		t.Errorf("misses = %d, want %d (one per type)", st.Misses, nTypes)
	}
	if st.Hits != nTypes*(copies-1) {
		t.Errorf("hits = %d, want %d", st.Hits, nTypes*(copies-1))
	}
	if results[0].CacheHit {
		t.Error("first copy claims a cache hit")
	}
	for _, r := range results[1:] {
		if !r.CacheHit {
			t.Errorf("%s: expected cache hit", r.Name)
		}
		for ts, res := range r.RS {
			if res != results[0].RS[ts] {
				t.Errorf("%s/%s: cached result not shared", r.Name, ts)
			}
		}
	}
	// A second batch on the same engine reuses the memo across runs.
	again, err := eng.Collect(context.Background(), Graphs(base.Clone()))
	if err != nil {
		t.Fatal(err)
	}
	if !again[0].CacheHit {
		t.Error("second run on the same engine missed the shared memo")
	}
}

// TestReductionMemoKeepsGraphIdentity: the fingerprint ignores names, so a
// memoized reduction served to a structurally identical but differently
// named graph must be re-extended over the requesting graph — the caller
// must never see the first input's names in its extended DDG.
func TestReductionMemoKeepsGraphIdentity(t *testing.T) {
	base := ddg.RandomGraph(rand.New(rand.NewSource(5)), genParams(10))
	twin := base.Clone()
	twin.Name = "twin"
	for i := 0; i < twin.NumNodes(); i++ {
		twin.Node(i).Name = fmt.Sprintf("t%d", i)
	}
	eng := New(Options{
		Parallel: 1,
		RS:       rs.Options{Method: rs.MethodGreedy, SkipWitness: true},
		Reduce:   &ReduceSpec{Budget: 2},
	})
	results, err := eng.Collect(context.Background(), Graphs(base, twin))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if len(r.Reductions) == 0 {
			t.Fatalf("%s: no reduction ran (raise the graph size or lower the budget)", r.Name)
		}
		for ts, red := range r.Reductions {
			want := []*ddg.Graph{base, twin}[i]
			if red.Graph.Name != want.Name {
				t.Errorf("%s/%s: extended graph is named %q, want %q", r.Name, ts, red.Graph.Name, want.Name)
			}
			if got, wantN := red.Graph.Node(0).Name, want.Node(0).Name; got != wantN {
				t.Errorf("%s/%s: extended graph node 0 is %q, want %q", r.Name, ts, got, wantN)
			}
			if len(red.Arcs) != len(results[0].Reductions[ts].Arcs) {
				t.Errorf("%s/%s: twin reduction arcs differ from the memoized ones", r.Name, ts)
			}
		}
	}
}

// TestConcurrentDuplicates drives many workers at many copies of few
// distinct graphs — the singleflight memo path — and checks the totals.
// Primarily a -race exercise.
func TestConcurrentDuplicates(t *testing.T) {
	var gs []*ddg.Graph
	for i := 0; i < 60; i++ {
		g := ddg.RandomGraph(rand.New(rand.NewSource(int64(i%3))), genParams(9))
		g.Name = fmt.Sprintf("dup-%d", i)
		gs = append(gs, g)
	}
	eng := New(Options{Parallel: 8, RS: rs.Options{Method: rs.MethodExactBB}})
	results, err := eng.Collect(context.Background(), Graphs(gs...))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 60 {
		t.Fatalf("got %d results, want 60", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
	}
	st := eng.Stats()
	var wantMisses int64
	for i := 0; i < 3; i++ {
		g := ddg.RandomGraph(rand.New(rand.NewSource(int64(i))), genParams(9))
		wantMisses += int64(len(g.Types()))
	}
	if st.Misses != wantMisses {
		t.Errorf("misses = %d, want %d (each distinct (graph, type) computed once)", st.Misses, wantMisses)
	}
}

// TestCacheEviction: an LRU memo of capacity 1 still serves every request
// correctly, it just recomputes evicted fingerprints.
func TestCacheEviction(t *testing.T) {
	g1 := ddg.RandomGraph(rand.New(rand.NewSource(21)), genParams(8))
	g2 := ddg.RandomGraph(rand.New(rand.NewSource(22)), genParams(8))
	eng := New(Options{Parallel: 1, CacheSize: 1, RS: rs.Options{Method: rs.MethodGreedy}})
	// g1, g2, g1 again: the second g1 visit was evicted by g2.
	results, err := eng.Collect(context.Background(),
		Graphs(g1.Clone(), g2.Clone(), g1.Clone()))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
	}
	if eng.Stats().Hits != 0 {
		t.Errorf("capacity-1 memo should have evicted everything, got %d hits", eng.Stats().Hits)
	}
}

func TestFingerprint(t *testing.T) {
	g1 := ddg.RandomGraph(rand.New(rand.NewSource(3)), genParams(10))
	sameStructure := g1.Clone()
	sameStructure.Name = "renamed"
	if Fingerprint(g1) != Fingerprint(sameStructure) {
		t.Error("renaming a graph changed its fingerprint")
	}
	otherSeed := ddg.RandomGraph(rand.New(rand.NewSource(4)), genParams(10))
	if Fingerprint(g1) == Fingerprint(otherSeed) {
		t.Error("distinct random graphs share a fingerprint")
	}
	otherMachine := ddg.RandomGraph(rand.New(rand.NewSource(3)), func() ddg.RandomParams {
		p := genParams(10)
		p.Machine = ddg.VLIW
		return p
	}())
	if Fingerprint(g1) == Fingerprint(otherMachine) {
		t.Error("machine kind not part of the fingerprint")
	}
}

func TestDirSourceErrors(t *testing.T) {
	if _, err := Dir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("Dir on a missing directory should fail")
	}
	empty := t.TempDir()
	if _, err := Dir(empty); err == nil || !strings.Contains(err.Error(), "no .ddg files") {
		t.Errorf("Dir on an empty directory: got %v, want a 'no .ddg files' error", err)
	}
	if _, err := Paths(filepath.Join(empty, "nope.ddg")); err == nil {
		t.Error("Paths on a missing file should fail")
	}
}

func TestFileSourceIsolation(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ddg")
	if err := os.WriteFile(good, []byte("ddg \"ok\" machine=superscalar\nnode a op=op lat=1 writes=float\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.ddg")
	if err := os.WriteFile(bad, []byte("not a ddg file\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	results, err := New(Options{}).Collect(context.Background(), Files(good, bad))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Errorf("good file failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("malformed file did not surface an error")
	}
}
