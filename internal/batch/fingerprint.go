package batch

import (
	"regsat/internal/ddg"
	"regsat/internal/ir"
)

// Fingerprint returns the structural hash of the graph the memo (and the
// process-wide ir interner) keys on. It is ir.Fingerprint: names are
// excluded, so repeated graphs that differ only in labeling share one memo
// entry and one analysis snapshot.
func Fingerprint(g *ddg.Graph) string { return ir.Fingerprint(g) }
