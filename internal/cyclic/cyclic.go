// Package cyclic models loop bodies as cyclic data dependence graphs whose
// edges carry iteration distances (ω): an edge u →(λ,ω) v says operation v of
// iteration i+ω depends on operation u of iteration i. The acyclic machinery
// of the rest of the repo analyzes one basic block; this package lifts it to
// the periodic case two ways:
//
//   - an unrolled-window engine (window.go) that instantiates k iterations
//     into an ordinary acyclic DDG, runs the exact acyclic RS engine per
//     window, and iterates k until the per-iteration RS contribution
//     converges (with a proven Fekete bound on the asymptotic slope);
//   - an exact periodic MILP (periodic.go) in modulo-scheduling style —
//     variables indexed by position within the initiation interval — that
//     certifies the unrolled answer on small kernels.
//
// A loop is valid iff every dependence cycle has positive total distance,
// equivalently iff the subgraph of distance-0 edges is acyclic: a cycle with
// total distance zero would make an operation depend on itself within one
// iteration.
package cyclic

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"regsat/internal/ddg"
)

// MaxDist bounds the iteration distance ω of a single edge. The bound exists
// so deep unrolling can never overflow instance arithmetic: with ω ≤ MaxDist
// and k ≤ MaxUnrollNodes, i+ω stays far below the int64 range.
const MaxDist = 1 << 20

// MaxUnrollNodes caps the node count of one unrolled window.
const MaxUnrollNodes = 1 << 16

// Edge is one dependence of the loop body. Dist is the iteration distance ω
// (0 = same iteration); self-edges (From == To) are legal when Dist ≥ 1 and
// model first-order recurrences.
type Edge struct {
	From, To int
	Latency  int64
	Kind     ddg.EdgeKind
	Type     ddg.RegType // set only for Kind == Flow
	Dist     int64       // iteration distance ω ≥ 0
}

// Loop is a cyclic DDG: one loop body plus loop-carried edges. Build it with
// New/AddNode/AddFlowEdge/AddSerialEdge, then Validate; the analyses of this
// package validate on entry.
type Loop struct {
	Name    string
	Machine ddg.MachineKind

	nodes []ddg.Node
	edges []Edge
}

// New creates an empty loop body for the given machine kind.
func New(name string, machine ddg.MachineKind) *Loop {
	return &Loop{Name: name, Machine: machine}
}

// AddNode appends an operation and returns its ID.
func (l *Loop) AddNode(name, op string, latency int64) int {
	if latency < 0 {
		panic(fmt.Sprintf("cyclic: node %s has negative latency %d", name, latency))
	}
	l.nodes = append(l.nodes, ddg.Node{
		ID:      len(l.nodes),
		Name:    name,
		Op:      op,
		Latency: latency,
		Writes:  map[ddg.RegType]int64{},
	})
	return len(l.nodes) - 1
}

// SetWrites declares that node id defines a value of type t with writing
// offset δw. Superscalar machines must use δw = 0.
func (l *Loop) SetWrites(id int, t ddg.RegType, dw int64) {
	if dw != 0 && !l.Machine.HasOffsets() {
		panic(fmt.Sprintf("cyclic: writing offset δw on a superscalar machine (node %s)", l.nodes[id].Name))
	}
	l.nodes[id].Writes[t] = dw
}

// SetReadDelay sets the reading offset δr of node id.
func (l *Loop) SetReadDelay(id int, dr int64) {
	if dr != 0 && !l.Machine.HasOffsets() {
		panic(fmt.Sprintf("cyclic: reading offset δr on a superscalar machine (node %s)", l.nodes[id].Name))
	}
	l.nodes[id].DelayR = dr
}

// AddFlowEdge adds a flow dependence through a value of type t at iteration
// distance dist, with the default latency of the writing node.
func (l *Loop) AddFlowEdge(from, to int, t ddg.RegType, dist int64) {
	l.AddFlowEdgeLatency(from, to, t, l.nodes[from].Latency, dist)
}

// AddFlowEdgeLatency is AddFlowEdge with an explicit latency.
func (l *Loop) AddFlowEdgeLatency(from, to int, t ddg.RegType, lat, dist int64) {
	if !l.nodes[from].WritesType(t) {
		panic(fmt.Sprintf("cyclic: flow edge from %s, which does not write type %q", l.nodes[from].Name, t))
	}
	l.edges = append(l.edges, Edge{From: from, To: to, Latency: lat, Kind: ddg.Flow, Type: t, Dist: dist})
}

// AddSerialEdge adds a plain precedence constraint at iteration distance dist.
func (l *Loop) AddSerialEdge(from, to int, lat, dist int64) {
	if lat < 0 && !l.Machine.HasOffsets() {
		panic("cyclic: negative serial latency on a superscalar machine")
	}
	l.edges = append(l.edges, Edge{From: from, To: to, Latency: lat, Kind: ddg.Serial, Dist: dist})
}

// Nodes returns the loop body's operations.
func (l *Loop) Nodes() []ddg.Node { return l.nodes }

// Edges returns the loop's dependences, loop-carried ones included.
func (l *Loop) Edges() []Edge { return l.edges }

// Node returns the node with the given ID.
func (l *Loop) Node(id int) *ddg.Node { return &l.nodes[id] }

// NodeByName returns the ID of the named node, or -1.
func (l *Loop) NodeByName(name string) int {
	for i := range l.nodes {
		if l.nodes[i].Name == name {
			return i
		}
	}
	return -1
}

// Types returns the register types written by the body, sorted.
func (l *Loop) Types() []ddg.RegType {
	seen := map[ddg.RegType]bool{}
	for i := range l.nodes {
		for t := range l.nodes[i].Writes {
			seen[t] = true
		}
	}
	out := make([]ddg.RegType, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxDistance returns the largest iteration distance of any edge.
func (l *Loop) MaxDistance() int64 {
	var max int64
	for _, e := range l.edges {
		if e.Dist > max {
			max = e.Dist
		}
	}
	return max
}

// Clone returns a deep copy of the loop.
func (l *Loop) Clone() *Loop {
	c := &Loop{Name: l.Name, Machine: l.Machine,
		nodes: make([]ddg.Node, len(l.nodes)),
		edges: append([]Edge(nil), l.edges...)}
	for i, n := range l.nodes {
		c.nodes[i] = n
		c.nodes[i].Writes = make(map[ddg.RegType]int64, len(n.Writes))
		for t, dw := range n.Writes {
			c.nodes[i].Writes[t] = dw
		}
	}
	return c
}

// Validate checks the loop's structural invariants:
//
//   - node latencies non-negative, flow latencies ≥ 1, flow sources write
//     their type;
//   - distances in [0, MaxDist]; self-edges carry distance ≥ 1;
//   - every dependence cycle has positive total distance — equivalently, the
//     subgraph of distance-0 edges is acyclic.
func (l *Loop) Validate() error {
	if len(l.nodes) == 0 {
		return fmt.Errorf("cyclic: loop %q has no nodes", l.Name)
	}
	for i := range l.nodes {
		n := &l.nodes[i]
		if n.Latency < 0 {
			return fmt.Errorf("cyclic: node %s has negative latency %d", n.Name, n.Latency)
		}
		if !l.Machine.HasOffsets() {
			if n.DelayR != 0 {
				return fmt.Errorf("cyclic: node %s has reading offset on a superscalar machine", n.Name)
			}
			for t, dw := range n.Writes {
				if dw != 0 {
					return fmt.Errorf("cyclic: node %s has writing offset for %s on a superscalar machine", n.Name, t)
				}
			}
		}
	}
	for _, e := range l.edges {
		if e.From < 0 || e.From >= len(l.nodes) || e.To < 0 || e.To >= len(l.nodes) {
			return fmt.Errorf("cyclic: edge references node out of range (%d -> %d)", e.From, e.To)
		}
		if e.Dist < 0 {
			return fmt.Errorf("cyclic: edge %s -> %s has negative distance %d",
				l.nodes[e.From].Name, l.nodes[e.To].Name, e.Dist)
		}
		if e.Dist > MaxDist {
			return fmt.Errorf("cyclic: edge %s -> %s distance %d exceeds MaxDist %d",
				l.nodes[e.From].Name, l.nodes[e.To].Name, e.Dist, MaxDist)
		}
		if e.From == e.To && e.Dist == 0 {
			return fmt.Errorf("cyclic: zero-distance self-edge on node %s (every cycle must carry a positive iteration distance)",
				l.nodes[e.From].Name)
		}
		if e.Kind == ddg.Flow {
			if !l.nodes[e.From].WritesType(e.Type) {
				return fmt.Errorf("cyclic: flow edge from %s, which does not write type %q",
					l.nodes[e.From].Name, e.Type)
			}
			if e.Latency < 1 {
				return fmt.Errorf("cyclic: flow edge %s -> %s has latency %d < 1",
					l.nodes[e.From].Name, l.nodes[e.To].Name, e.Latency)
			}
		} else if e.Latency < 0 && !l.Machine.HasOffsets() {
			return fmt.Errorf("cyclic: negative serial latency on a superscalar machine (%s -> %s)",
				l.nodes[e.From].Name, l.nodes[e.To].Name)
		}
	}
	if cycle := l.zeroDistanceCycle(); cycle != "" {
		return fmt.Errorf("cyclic: zero-distance cycle through node %s (every cycle must carry a positive iteration distance)", cycle)
	}
	return nil
}

// zeroDistanceCycle topologically sorts the subgraph of distance-0 edges and
// returns the name of a node on a cycle, or "" when acyclic.
func (l *Loop) zeroDistanceCycle() string {
	indeg := make([]int, len(l.nodes))
	succ := make([][]int, len(l.nodes))
	for _, e := range l.edges {
		if e.Dist != 0 {
			continue
		}
		succ[e.From] = append(succ[e.From], e.To)
		indeg[e.To]++
	}
	queue := make([]int, 0, len(l.nodes))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, v := range succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if seen == len(l.nodes) {
		return ""
	}
	for i, d := range indeg {
		if d > 0 {
			return l.nodes[i].Name
		}
	}
	return l.nodes[0].Name
}

// ZeroProjection returns a copy of the loop with every loop-carried edge
// (dist ≥ 1) removed: the intra-iteration dependence structure. On a valid
// loop the projection is acyclic, and for a loop that had no carried edges to
// begin with it is the loop itself — the case where periodic RS degenerates
// to the acyclic RS of the body (iterations are independent).
func (l *Loop) ZeroProjection() *Loop {
	c := l.Clone()
	edges := c.edges[:0]
	for _, e := range c.edges {
		if e.Dist == 0 {
			edges = append(edges, e)
		}
	}
	c.edges = edges
	return c
}

// Carried reports whether the loop has any loop-carried (dist ≥ 1) edge.
func (l *Loop) Carried() bool {
	for _, e := range l.edges {
		if e.Dist > 0 {
			return true
		}
	}
	return false
}

// Body materializes one iteration of the loop as an ordinary (unfinalized)
// acyclic DDG: the nodes plus the distance-0 edges. Carried edges are
// dropped — Body is the k=1 window without the escape sink, used by the
// distance-0 degeneracy checks.
func (l *Loop) Body() *ddg.Graph {
	g := ddg.New(l.Name, l.Machine)
	for i := range l.nodes {
		n := &l.nodes[i]
		id := g.AddNode(n.Name, n.Op, n.Latency)
		if n.DelayR != 0 {
			g.SetReadDelay(id, n.DelayR)
		}
		for t, dw := range n.Writes {
			g.SetWrites(id, t, dw)
		}
	}
	for _, e := range l.edges {
		if e.Dist != 0 {
			continue
		}
		if e.Kind == ddg.Flow {
			g.AddFlowEdgeLatency(e.From, e.To, e.Type, e.Latency)
		} else {
			g.AddSerialEdge(e.From, e.To, e.Latency)
		}
	}
	return g
}

// Fingerprint returns the structural hash of the loop. It mirrors
// ir.Fingerprint — machine, per-node latencies/offsets/written types, edge
// list — extended with each edge's iteration distance (two loops differing
// only in an ω must not collide) and prefixed with a domain tag so the
// cyclic fingerprint space is disjoint from the acyclic one: a loop and any
// flat DDG can never share a cache entry.
func (l *Loop) Fingerprint() string {
	h := sha256.New()
	h.Write([]byte("cyclic\x00"))
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(int64(l.Machine))
	writeInt(int64(len(l.nodes)))
	for i := range l.nodes {
		n := &l.nodes[i]
		writeInt(n.Latency)
		writeInt(n.DelayR)
		types := make([]string, 0, len(n.Writes))
		for t := range n.Writes {
			types = append(types, string(t))
		}
		sort.Strings(types)
		writeInt(int64(len(types)))
		for _, t := range types {
			h.Write([]byte(t))
			h.Write([]byte{0})
			writeInt(n.Writes[ddg.RegType(t)])
		}
	}
	writeInt(int64(len(l.edges)))
	for _, e := range l.edges {
		writeInt(int64(e.From))
		writeInt(int64(e.To))
		writeInt(e.Latency)
		writeInt(int64(e.Kind))
		h.Write([]byte(e.Type))
		h.Write([]byte{0})
		writeInt(e.Dist)
	}
	return hex.EncodeToString(h.Sum(nil))
}
