package cyclic

import (
	"errors"
	"strings"
	"testing"

	"regsat/internal/ddg"
)

// selfRec builds the canonical first-order recurrence: one op whose value
// feeds its own next iteration.
func selfRec(t *testing.T) *Loop {
	t.Helper()
	l := New("selfrec", ddg.Superscalar)
	a := l.AddNode("a", "add", 1)
	l.SetWrites(a, ddg.Float, 0)
	l.AddFlowEdge(a, a, ddg.Float, 1)
	if err := l.Validate(); err != nil {
		t.Fatalf("selfRec invalid: %v", err)
	}
	return l
}

func TestValidateRejectsZeroDistanceCycle(t *testing.T) {
	l := New("zcycle", ddg.Superscalar)
	a := l.AddNode("a", "op", 1)
	b := l.AddNode("b", "op", 1)
	l.SetWrites(a, ddg.Float, 0)
	l.SetWrites(b, ddg.Float, 0)
	l.AddFlowEdge(a, b, ddg.Float, 0)
	l.AddFlowEdge(b, a, ddg.Float, 0)
	err := l.Validate()
	if err == nil || !strings.Contains(err.Error(), "zero-distance cycle") {
		t.Fatalf("want zero-distance cycle rejection, got %v", err)
	}
}

func TestValidateRejectsZeroDistanceSelfEdge(t *testing.T) {
	l := New("zself", ddg.Superscalar)
	a := l.AddNode("a", "op", 1)
	l.SetWrites(a, ddg.Float, 0)
	l.edges = append(l.edges, Edge{From: a, To: a, Latency: 1, Kind: ddg.Flow, Type: ddg.Float, Dist: 0})
	if err := l.Validate(); err == nil {
		t.Fatal("want zero-distance self-edge rejection")
	}
}

func TestValidateRejectsOverflowDistance(t *testing.T) {
	l := selfRec(t)
	l.edges[0].Dist = MaxDist + 1
	err := l.Validate()
	if err == nil || !strings.Contains(err.Error(), "MaxDist") {
		t.Fatalf("want MaxDist rejection, got %v", err)
	}
}

func TestUnrollRejectsDeepWindows(t *testing.T) {
	l := selfRec(t)
	if _, err := l.Unroll(MaxUnrollNodes); err == nil {
		t.Fatal("want deep-unroll rejection")
	}
	if _, err := l.Unroll(0); err == nil {
		t.Fatal("want k<1 rejection")
	}
}

func TestFingerprintIncorporatesDistance(t *testing.T) {
	a := selfRec(t)
	b := a.Clone()
	b.edges[0].Dist = 2
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("two loops differing only in ω must not share a fingerprint")
	}
	// The cyclic fingerprint space must be disjoint from the acyclic one:
	// same byte shape can never collide thanks to the domain tag, and the
	// hex strings differ trivially here.
	if a.Fingerprint() == b.Clone().Fingerprint() {
		t.Fatal("clone of modified loop should match modified, not original")
	}
	if b.Fingerprint() != b.Clone().Fingerprint() {
		t.Fatal("fingerprint must be deterministic under Clone")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	l := New("mix", ddg.VLIW)
	a := l.AddNode("a", "mul", 3)
	b := l.AddNode("b", "add", 1)
	c := l.AddNode("c", "st", 2)
	l.SetWrites(a, ddg.Float, 1)
	l.SetWrites(b, ddg.Int, 0)
	l.SetReadDelay(c, 1)
	l.AddFlowEdge(a, b, ddg.Float, 0)
	l.AddFlowEdgeLatency(a, c, ddg.Float, 2, 2)
	l.AddFlowEdge(b, b, ddg.Int, 1)
	l.AddSerialEdge(c, a, -1, 1)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	text := l.Format()
	got, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if got.Fingerprint() != l.Fingerprint() {
		t.Fatalf("format round-trip changed fingerprint:\n%s\nvs reparsed\n%s", text, got.Format())
	}
	if !Detect(text) {
		t.Fatal("Detect must recognize formatted loops")
	}
}

func TestDetect(t *testing.T) {
	if Detect("ddg \"x\" machine=vliw\nnode a lat=1\n") {
		t.Fatal("flat ddg misdetected as loop")
	}
	if !Detect("# comment\n\nddg \"x\" machine=vliw loop\n") {
		t.Fatal("loop header not detected")
	}
	if Detect("node a lat=1\n") {
		t.Fatal("non-ddg text misdetected")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"ddg \"x\"\nnode a lat=1\n", "loop flag"},
		{"ddg \"x\" loop\nnode a lat=1 writes=float\nedge a a flow float\n", "zero-distance self-edge"},
		{"ddg \"x\" loop\nnode a lat=1 writes=float\nedge a a flow float dist=-1\n", "non-negative"},
		{"ddg \"x\" loop\nnode a lat=1 writes=float\nedge a a flow float dist=9999999999\n", "MaxDist"},
		{"ddg \"x\" loop\nnode a lat=1\nedge a b flow float dist=1\n", "unknown node"},
		{"ddg \"x\" loop\nnode a lat=1 writes=float\nedge a a flow float dist=one\n", "bad dist"},
		{"ddg \"x\" loop\nnode a lat=1 writes=float\nedge a a flow float wat=1\n", "bad flow edge attribute"},
	}
	for _, tc := range cases {
		_, err := ParseString(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseString(%q): want error containing %q, got %v", tc.src, tc.want, err)
		}
	}
	// Parse errors carry positions via *ddg.ParseError.
	_, err := ParseString("ddg \"x\" loop\nnode a lat=1 writes=float\nedge a a flow float dist=-1\n")
	var pe *ddg.ParseError
	if !errors.As(err, &pe) || pe.Line != 3 || pe.Col == 0 {
		t.Fatalf("want located *ddg.ParseError on line 3, got %#v", err)
	}
}

func TestUnrollStructure(t *testing.T) {
	l := selfRec(t)
	g, err := l.Unroll(3)
	if err != nil {
		t.Fatal(err)
	}
	// a@0, a@1, a@2, _out, plus ⊥ from Finalize.
	if got := g.NumNodes(); got != 5 {
		t.Fatalf("unroll(3) nodes = %d, want 5", got)
	}
	if g.NodeByName("a@2") < 0 || g.NodeByName(OutName) < 0 {
		t.Fatalf("unroll(3) missing instances: %s", g.Format())
	}
	// a@2's value escapes the window: it must flow into the sink.
	out := g.NodeByName(OutName)
	found := false
	for _, e := range g.Edges() {
		if e.From == g.NodeByName("a@2") && e.To == out && e.Kind == ddg.Flow {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaping value a@2 has no flow edge to %s:\n%s", OutName, g.Format())
	}
}

func TestZeroProjectionAndCarried(t *testing.T) {
	l := New("z", ddg.Superscalar)
	a := l.AddNode("a", "op", 1)
	b := l.AddNode("b", "op", 1)
	l.SetWrites(a, ddg.Float, 0)
	l.AddFlowEdge(a, b, ddg.Float, 0)
	if l.Carried() {
		t.Fatal("dist-0-only loop reported carried")
	}
	l.AddSerialEdge(b, a, 1, 1)
	if !l.Carried() {
		t.Fatal("carried edge not reported")
	}
	p := l.ZeroProjection()
	if p.Carried() || len(p.Edges()) != 1 {
		t.Fatalf("projection kept carried edges: %+v", p.Edges())
	}
}
