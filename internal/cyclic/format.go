package cyclic

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"regsat/internal/ddg"
)

// The textual loop format extends the flat .ddg format with a `loop` header
// flag and a per-edge iteration distance:
//
//	ddg "<name>" machine=<superscalar|vliw|epic> loop
//	node <name> op=<mnemonic> lat=<n> [writes=<type>[:<δw>]] [dr=<δr>]
//	edge <from> <to> flow <type> [lat=<n>] [dist=<ω>]
//	edge <from> <to> serial lat=<n> [dist=<ω>]
//	# comments and blank lines are ignored
//
// dist defaults to 0 (an ordinary intra-iteration dependence). Unlike the
// flat format, self-edges are legal — a first-order recurrence is
// `edge a a flow float dist=1` — provided the distance is positive.
// Syntax errors are reported as *ddg.ParseError with line/column positions,
// so tooling treats both formats uniformly.

// Detect reports whether the text is in the cyclic loop format: its first
// directive is a ddg header carrying the `loop` flag. Loaders use it to
// route a .ddg file to this parser or the flat one.
func Detect(text string) bool {
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "ddg") {
			return false
		}
		fields := strings.Fields(line)
		for _, f := range fields[1:] {
			if f == "loop" {
				return true
			}
		}
		return false
	}
	return false
}

func errTok(token, format string, args ...any) *ddg.ParseError {
	return &ddg.ParseError{Token: token, Msg: fmt.Sprintf(format, args...)}
}

func errLine(format string, args ...any) *ddg.ParseError {
	return &ddg.ParseError{Msg: fmt.Sprintf(format, args...)}
}

// locate stamps the error with its line and, when the offending token is
// known, the token's 1-based column in the original (untrimmed) line.
func locate(err *ddg.ParseError, lineNo int, raw string) *ddg.ParseError {
	err.Line = lineNo
	if err.Token != "" {
		err.Col = columnOf(raw, err.Token)
	}
	return err
}

// columnOf finds the token's 1-based byte column, preferring whole-field
// matches (mirrors the flat parser's locator).
func columnOf(raw, token string) int {
	isSpace := func(b byte) bool { return b == ' ' || b == '\t' }
	for from := 0; from+len(token) <= len(raw); {
		i := strings.Index(raw[from:], token)
		if i < 0 {
			break
		}
		start := from + i
		end := start + len(token)
		if (start == 0 || isSpace(raw[start-1])) && (end == len(raw) || isSpace(raw[end])) {
			return start + 1
		}
		from = start + 1
	}
	if i := strings.Index(raw, token); i >= 0 {
		return i + 1
	}
	return 0
}

// Parse reads a loop in the textual format. The result is not validated —
// call Validate (the analyses do) — but structural panics of the builder API
// (unknown nodes, bad offsets) are caught and reported as parse errors.
func Parse(r io.Reader) (*Loop, error) {
	sc := bufio.NewScanner(r)
	var l *Loop
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var err *ddg.ParseError
		switch fields[0] {
		case "ddg":
			if l != nil {
				err = errTok(fields[0], "duplicate ddg directive")
				break
			}
			l, err = parseHeader(strings.TrimSpace(line[len("ddg"):]))
		case "node":
			if l == nil {
				err = errTok(fields[0], "node before ddg directive")
				break
			}
			err = parseNode(l, fields[1:])
		case "edge":
			if l == nil {
				err = errTok(fields[0], "edge before ddg directive")
				break
			}
			err = parseEdge(l, fields[1:])
		default:
			err = errTok(fields[0], "unknown directive %q", fields[0])
		}
		if err != nil {
			return nil, locate(err, lineNo, raw)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if l == nil {
		return nil, fmt.Errorf("no ddg directive found")
	}
	return l, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Loop, error) {
	return Parse(strings.NewReader(s))
}

func parseHeader(rest string) (*Loop, *ddg.ParseError) {
	if rest == "" {
		return nil, errLine("ddg directive needs a name")
	}
	var name string
	var attrs []string
	if strings.HasPrefix(rest, `"`) {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, errLine("bad quoted ddg name %s", rest)
		}
		name, err = strconv.Unquote(q)
		if err != nil {
			return nil, errLine("bad quoted ddg name %s", q)
		}
		attrs = strings.Fields(rest[len(q):])
	} else {
		fs := strings.Fields(rest)
		name = fs[0]
		attrs = fs[1:]
	}
	machine := ddg.Superscalar
	loop := false
	for _, f := range attrs {
		if f == "loop" {
			loop = true
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok || k != "machine" {
			return nil, errTok(f, "bad ddg attribute %q", f)
		}
		switch v {
		case "superscalar":
			machine = ddg.Superscalar
		case "vliw":
			machine = ddg.VLIW
		case "epic":
			machine = ddg.EPIC
		default:
			return nil, errTok(f, "unknown machine %q", v)
		}
	}
	if !loop {
		return nil, errLine("cyclic parser needs the loop flag on the ddg directive")
	}
	return New(name, machine), nil
}

func parseNode(l *Loop, fields []string) *ddg.ParseError {
	if len(fields) < 1 {
		return errLine("node needs a name")
	}
	name := fields[0]
	if l.NodeByName(name) >= 0 {
		return errTok(name, "duplicate node %q", name)
	}
	op := "op"
	var lat, dr int64
	type writeSpec struct {
		t  ddg.RegType
		dw int64
	}
	var writes []writeSpec
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return errTok(f, "bad node attribute %q", f)
		}
		switch k {
		case "op":
			op = v
		case "lat":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return errTok(f, "bad lat %q", v)
			}
			if n < 0 {
				return errTok(f, "node latency must be non-negative, got %d", n)
			}
			lat = n
		case "dr":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return errTok(f, "bad dr %q", v)
			}
			if n != 0 && !l.Machine.HasOffsets() {
				return errTok(f, "reading offset dr on a superscalar machine")
			}
			dr = n
		case "writes":
			for _, spec := range strings.Split(v, ",") {
				tname, dws, has := strings.Cut(spec, ":")
				if tname == "" {
					return errTok(f, "empty register type in %q", v)
				}
				var dw int64
				if has {
					n, err := strconv.ParseInt(dws, 10, 64)
					if err != nil {
						return errTok(spec, "bad δw in %q", spec)
					}
					if n != 0 && !l.Machine.HasOffsets() {
						return errTok(spec, "writing offset δw on a superscalar machine")
					}
					dw = n
				}
				writes = append(writes, writeSpec{ddg.RegType(tname), dw})
			}
		default:
			return errTok(f, "unknown node attribute %q", k)
		}
	}
	id := l.AddNode(name, op, lat)
	if dr != 0 {
		l.SetReadDelay(id, dr)
	}
	for _, w := range writes {
		l.SetWrites(id, w.t, w.dw)
	}
	return nil
}

func parseEdge(l *Loop, fields []string) *ddg.ParseError {
	if len(fields) < 3 {
		return errLine("edge needs: from to kind …")
	}
	from := l.NodeByName(fields[0])
	to := l.NodeByName(fields[1])
	if from < 0 {
		return errTok(fields[0], "edge references unknown node %q", fields[0])
	}
	if to < 0 {
		return errTok(fields[1], "edge references unknown node %q", fields[1])
	}
	parseDist := func(f, v string) (int64, *ddg.ParseError) {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, errTok(f, "bad dist %q", v)
		}
		if n < 0 {
			return 0, errTok(f, "iteration distance must be non-negative, got %d", n)
		}
		if n > MaxDist {
			return 0, errTok(f, "iteration distance %d exceeds MaxDist %d", n, MaxDist)
		}
		return n, nil
	}
	switch fields[2] {
	case "flow":
		if len(fields) < 4 {
			return errLine("flow edge needs a register type")
		}
		t := ddg.RegType(fields[3])
		if !l.Node(from).WritesType(t) {
			return errTok(fields[3], "flow edge from %q, which does not write type %q", fields[0], t)
		}
		lat := l.Node(from).Latency
		var dist int64
		for _, f := range fields[4:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return errTok(f, "bad flow edge attribute %q", f)
			}
			switch k {
			case "lat":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return errTok(f, "bad lat %q", v)
				}
				lat = n
			case "dist":
				var derr *ddg.ParseError
				if dist, derr = parseDist(f, v); derr != nil {
					return derr
				}
			default:
				return errTok(f, "bad flow edge attribute %q", f)
			}
		}
		if from == to && dist == 0 {
			return errTok(fields[1], "zero-distance self-edge on node %q", fields[0])
		}
		l.AddFlowEdgeLatency(from, to, t, lat, dist)
	case "serial":
		lat := int64(0)
		found := false
		var dist int64
		for _, f := range fields[3:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return errTok(f, "bad serial edge attribute %q", f)
			}
			switch k {
			case "lat":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return errTok(f, "bad lat %q", v)
				}
				lat, found = n, true
			case "dist":
				var derr *ddg.ParseError
				if dist, derr = parseDist(f, v); derr != nil {
					return derr
				}
			default:
				return errTok(f, "bad serial edge attribute %q", f)
			}
		}
		if !found {
			return errLine("serial edge needs lat=<n>")
		}
		if lat < 0 && !l.Machine.HasOffsets() {
			return errLine("negative serial latency on a superscalar machine")
		}
		if from == to && dist == 0 {
			return errTok(fields[1], "zero-distance self-edge on node %q", fields[0])
		}
		l.AddSerialEdge(from, to, lat, dist)
	default:
		return errTok(fields[2], "unknown edge kind %q", fields[2])
	}
	return nil
}

// Format renders the loop in the textual format; Parse(Format(l)) is the
// identity up to fingerprint.
func (l *Loop) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ddg %q machine=%s loop\n", l.Name, l.Machine)
	for i := range l.nodes {
		n := &l.nodes[i]
		fmt.Fprintf(&b, "node %s op=%s lat=%d", n.Name, n.Op, n.Latency)
		if len(n.Writes) > 0 {
			types := make([]string, 0, len(n.Writes))
			for t := range n.Writes {
				types = append(types, string(t))
			}
			sort.Strings(types)
			specs := make([]string, 0, len(types))
			for _, t := range types {
				dw := n.Writes[ddg.RegType(t)]
				if dw != 0 {
					specs = append(specs, fmt.Sprintf("%s:%d", t, dw))
				} else {
					specs = append(specs, t)
				}
			}
			fmt.Fprintf(&b, " writes=%s", strings.Join(specs, ","))
		}
		if n.DelayR != 0 {
			fmt.Fprintf(&b, " dr=%d", n.DelayR)
		}
		b.WriteString("\n")
	}
	for _, e := range l.edges {
		if e.Kind == ddg.Flow {
			fmt.Fprintf(&b, "edge %s %s flow %s", l.nodes[e.From].Name, l.nodes[e.To].Name, e.Type)
			if e.Latency != l.nodes[e.From].Latency {
				fmt.Fprintf(&b, " lat=%d", e.Latency)
			}
		} else {
			fmt.Fprintf(&b, "edge %s %s serial lat=%d", l.nodes[e.From].Name, l.nodes[e.To].Name, e.Latency)
		}
		if e.Dist != 0 {
			fmt.Fprintf(&b, " dist=%d", e.Dist)
		}
		b.WriteString("\n")
	}
	return b.String()
}
