package cyclic

import (
	"context"
	"fmt"
	"math"

	"regsat/internal/ddg"
	"regsat/internal/lp"
	"regsat/internal/obs"
	"regsat/internal/rs"
	"regsat/internal/solver"
)

// The exact periodic formulation. A periodic schedule with initiation
// interval II issues operation u of iteration i at x_u + II·i; the value
// u^t of iteration i is written at x_u + δw + II·i and dies at its last
// read. Steady-state register pressure at kernel position τ ∈ [0,II) counts,
// over all values u and iteration offsets j, the copies alive at instant
// τ + II·j (lifetimes are the acyclic engine's left-open intervals
// ]write, last read], so the two models count the same sets). The MILP
// maximizes the peak over τ — the periodic register saturation PRS(II).
//
// Certification against the unrolled windows rests on two provable
// containments (docs/CYCLIC.md):
//
//	PRS(II) ≤ RS(k)  for every window k ≥ Jmax   (upper sandwich)
//	PRS(II_big) ≥ RS(1)  once II exceeds the one-iteration horizon
//
// where Jmax bounds how many copies of one value overlap. The CI cyclic
// suite enforces both with zero tolerance on every generated kernel.

// DefaultMaxAliveBinaries bounds the periodic model: values·II·Jmax alive
// binaries beyond this refuse to build rather than hang the solver.
const DefaultMaxAliveBinaries = 4096

// maxCertifyJmax bounds the window extension certify() is willing to verify
// containment against.
const maxCertifyJmax = 14

// PeriodicOptions configures one exact periodic solve.
type PeriodicOptions struct {
	// II is the initiation interval (0 = the minimum feasible one).
	II int64
	// MaxAliveBinaries bounds model size (0 = DefaultMaxAliveBinaries).
	MaxAliveBinaries int
	// Solver selects and bounds the MILP backend.
	Solver solver.Options
}

// MinII returns the smallest initiation interval that admits a periodic
// schedule: the smallest II ≥ 1 such that the precedence system
// x_v − x_u ≥ λ − II·ω has no positive cycle. Found by binary search with a
// Bellman–Ford longest-path feasibility probe; equals the classic recurrence
// bound max over cycles of ⌈Σλ / Σω⌉.
func MinII(l *Loop) (int64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	lo, hi := int64(1), int64(1)
	for _, e := range l.edges {
		if e.Latency > 0 {
			hi += e.Latency
		}
	}
	if !l.feasibleII(hi) {
		return 0, fmt.Errorf("cyclic: no feasible initiation interval for %q", l.Name)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if l.feasibleII(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// feasibleII probes the precedence system at a fixed II: Bellman–Ford
// longest paths over edge weights λ − II·ω; a relaxation still possible
// after n passes witnesses a positive cycle (no periodic schedule at II).
func (l *Loop) feasibleII(ii int64) bool {
	n := len(l.nodes)
	dist := make([]int64, n)
	for pass := 0; pass < n; pass++ {
		changed := false
		for _, e := range l.edges {
			w := e.Latency - ii*e.Dist
			if dist[e.From]+w > dist[e.To] {
				dist[e.To] = dist[e.From] + w
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	for _, e := range l.edges {
		if dist[e.From]+e.Latency-ii*e.Dist > dist[e.To] {
			return false
		}
	}
	return true
}

// horizon is the acyclic-style schedule bound of one iteration's offsets:
// the sum of positive edge latencies plus the node count.
func (l *Loop) horizon() int64 {
	h := int64(len(l.nodes))
	for _, e := range l.edges {
		if e.Latency > 0 {
			h += e.Latency
		}
	}
	return h
}

// BigII returns an initiation interval large enough that one iteration's
// schedule fits entirely within a single period — the regime where
// PRS(BigII) ≥ RS(1) is provable (the lower sandwich of the differential).
func (l *Loop) BigII() int64 {
	var maxLat, maxDR int64
	for _, e := range l.edges {
		if e.Latency > maxLat {
			maxLat = e.Latency
		}
	}
	for i := range l.nodes {
		if l.nodes[i].DelayR > maxDR {
			maxDR = l.nodes[i].DelayR
		}
	}
	return l.horizon() + maxLat + maxDR + 1
}

// periodicBounds computes the death bound Dmax and copy bound Jmax of the
// formulation at (t, II).
func (l *Loop) periodicBounds(t ddg.RegType, ii int64) (dmax int64, jmax int) {
	hx := l.horizon()
	var maxDR, maxDW, maxLat, maxOmega int64
	for i := range l.nodes {
		n := &l.nodes[i]
		if n.DelayR > maxDR {
			maxDR = n.DelayR
		}
		if n.WritesType(t) {
			if dw := n.DelayW(t); dw > maxDW {
				maxDW = dw
			}
			if n.Latency > maxLat {
				maxLat = n.Latency
			}
		}
	}
	for _, e := range l.edges {
		if e.Dist > maxOmega {
			maxOmega = e.Dist
		}
	}
	dmax = hx + maxDR + ii*maxOmega
	if alt := hx + maxDW + maxLat + 1; alt > dmax {
		dmax = alt
	}
	jmax = int(dmax/ii) + 2
	return dmax, jmax
}

// PeriodicRS solves the exact periodic MILP for one register type at the
// given (or minimum) initiation interval.
func PeriodicRS(ctx context.Context, l *Loop, t ddg.RegType, opt PeriodicOptions) (*Periodic, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	ii := opt.II
	if ii <= 0 {
		var err error
		if ii, err = MinII(l); err != nil {
			return nil, err
		}
	} else if !l.feasibleII(ii) {
		return nil, fmt.Errorf("cyclic: initiation interval %d is infeasible for %q", ii, l.Name)
	}
	var values []int
	for i := range l.nodes {
		if l.nodes[i].WritesType(t) {
			values = append(values, i)
		}
	}
	if len(values) == 0 {
		return &Periodic{II: ii, RS: 0, Exact: true}, nil
	}
	dmax, jmax := l.periodicBounds(t, ii)
	maxBin := opt.MaxAliveBinaries
	if maxBin <= 0 {
		maxBin = DefaultMaxAliveBinaries
	}
	if int64(len(values))*ii*int64(jmax) > int64(maxBin) {
		return nil, fmt.Errorf("cyclic: periodic model for %q/%s needs %d alive binaries (> %d): kernel too large to certify",
			l.Name, t, int64(len(values))*ii*int64(jmax), maxBin)
	}

	hx := l.horizon()
	bigM := float64(dmax + ii*int64(jmax) + 1)
	m := lp.NewModel(fmt.Sprintf("prs-%s-%s", l.Name, t), lp.Maximize)

	x := make([]lp.Var, len(l.nodes))
	for i := range l.nodes {
		x[i] = m.NewVar(0, float64(hx), true, "x_"+l.nodes[i].Name)
	}
	// Periodic precedence: x_v − x_u ≥ λ − II·ω for every dependence.
	for _, e := range l.edges {
		rhs := float64(e.Latency - ii*e.Dist)
		if e.From == e.To {
			if rhs > 0 {
				return nil, fmt.Errorf("cyclic: self-edge on %s infeasible at II=%d", l.nodes[e.From].Name, ii)
			}
			continue
		}
		m.AddConstr([]lp.Term{{Var: x[e.To], Coef: 1}, {Var: x[e.From], Coef: -1}},
			lp.GE, rhs, "prec")
	}

	// Death dates: d_u = last read of u^t across consumer instances (c, ω) —
	// d ≥ every read, pinned to the chosen killer's read by a binary per
	// consumer instance. Values without consumers die a fixed latency after
	// their write.
	d := make(map[int]lp.Var, len(values))
	for _, u := range values {
		name := l.nodes[u].Name
		d[u] = m.NewVar(0, float64(dmax), true, "d_"+name)
		dw := l.nodes[u].DelayW(t)
		var kills []lp.Term
		for ei, e := range l.edges {
			if e.Kind != ddg.Flow || e.From != u || e.Type != t {
				continue
			}
			rhs := float64(l.nodes[e.To].DelayR + ii*e.Dist)
			m.AddConstr([]lp.Term{{Var: d[u], Coef: 1}, {Var: x[e.To], Coef: -1}},
				lp.GE, rhs, "dge_"+name)
			k := m.NewBinary(fmt.Sprintf("kill_%s_%d", name, ei))
			m.AddConstr([]lp.Term{{Var: d[u], Coef: 1}, {Var: x[e.To], Coef: -1}, {Var: k, Coef: bigM}},
				lp.LE, rhs+bigM, "dle_"+name)
			kills = append(kills, lp.Term{Var: k, Coef: 1})
		}
		if len(kills) == 0 {
			lat := l.nodes[u].Latency
			if lat < 1 {
				lat = 1
			}
			m.AddConstr([]lp.Term{{Var: d[u], Coef: 1}, {Var: x[u], Coef: -1}},
				lp.EQ, float64(dw+lat), "dlast_"+name)
			continue
		}
		m.AddConstr(kills, lp.EQ, 1, "killone_"+name)
	}

	// Alive binaries a_{u,τ,j}: copy j of value u alive at kernel position τ
	// (instant T = τ + II·j lies in ]write, death]). One-directional big-M —
	// the objective pushes a up, so only the "may be 1" direction is modeled.
	sumAt := make([][]lp.Term, ii)
	for _, u := range values {
		name := l.nodes[u].Name
		dw := l.nodes[u].DelayW(t)
		for tau := int64(0); tau < ii; tau++ {
			for j := 0; j < jmax; j++ {
				T := tau + ii*int64(j)
				a := m.NewBinary(fmt.Sprintf("a_%s_%d_%d", name, tau, j))
				// T ≥ write + 1 when alive: x_u + M·a ≤ M + T − 1 − δw.
				m.AddConstr([]lp.Term{{Var: x[u], Coef: 1}, {Var: a, Coef: bigM}},
					lp.LE, bigM+float64(T-1-dw), "alow")
				// T ≤ death when alive: M·a − d_u ≤ M − T.
				m.AddConstr([]lp.Term{{Var: a, Coef: bigM}, {Var: d[u], Coef: -1}},
					lp.LE, bigM-float64(T), "ahigh")
				sumAt[tau] = append(sumAt[tau], lp.Term{Var: a, Coef: 1})
			}
		}
	}

	// Peak selection: P is the pressure at the one chosen kernel position.
	peakCap := float64(len(values) * jmax)
	p := m.NewVar(0, peakCap, true, "P")
	m.SetObjCoef(p, 1)
	var zs []lp.Term
	for tau := int64(0); tau < ii; tau++ {
		z := m.NewBinary(fmt.Sprintf("z_%d", tau))
		terms := []lp.Term{{Var: p, Coef: 1}, {Var: z, Coef: peakCap}}
		for _, at := range sumAt[tau] {
			terms = append(terms, lp.Term{Var: at.Var, Coef: -1})
		}
		m.AddConstr(terms, lp.LE, peakCap, "peak")
		zs = append(zs, lp.Term{Var: z, Coef: 1})
	}
	m.AddConstr(zs, lp.EQ, 1, "peakone")

	ctx, sp := obs.StartSpan(ctx, "cyclic.periodic",
		obs.Str("type", string(t)), obs.Int("ii", ii), obs.Int("jmax", int64(jmax)))
	defer sp.End()
	sol, err := solver.Solve(ctx, m, opt.Solver)
	if err != nil {
		return nil, err
	}
	out := &Periodic{II: ii, Jmax: jmax}
	stats := sol.Stats
	out.Stats = &stats
	switch sol.Status {
	case lp.StatusOptimal:
		out.RS = int(math.Round(sol.Obj))
		out.Exact = true
		out.UpperBound = out.RS
	case lp.StatusFeasible:
		out.RS = int(math.Round(sol.Obj))
		out.UpperBound = int(math.Floor(sol.Bound + 1e-6))
	case lp.StatusLimit:
		out.RS = 0
		out.UpperBound = int(math.Floor(sol.Bound + 1e-6))
	default:
		return nil, fmt.Errorf("cyclic: periodic solve for %q/%s: unexpected status %v", l.Name, t, sol.Status)
	}
	sp.SetAttr(obs.Int("prs", int64(out.RS)), obs.Bool("exact", out.Exact))
	return out, nil
}

// certify runs the periodic MILP at the minimum II and verifies the upper
// sandwich PRS ≤ RS(Jmax) against an exact window, extending the sweep when
// the convergence loop stopped short of Jmax. Kernels whose Jmax exceeds
// maxCertifyJmax are skipped (nil certificate) rather than solved at any
// cost. A refuted containment is a hard error — it means one of the two
// engines is wrong.
func certify(ctx context.Context, l *Loop, t ddg.RegType, res *Result, opt Options) (*Periodic, error) {
	ii, err := MinII(l)
	if err != nil {
		return nil, err
	}
	_, jmax := l.periodicBounds(t, ii)
	if jmax > maxCertifyJmax {
		return nil, nil
	}
	cert, err := PeriodicRS(ctx, l, t, PeriodicOptions{II: ii, Solver: opt.RS.Solver})
	if err != nil {
		return nil, err
	}
	windowUpper, exact, err := windowUpperBound(ctx, l, t, jmax, opt)
	if err != nil {
		return nil, err
	}
	if cert.RS > windowUpper {
		return nil, fmt.Errorf(
			"cyclic: periodic/unrolled disagreement on %q/%s: PRS(II=%d) ≥ %d exceeds RS(%d) ≤ %d (windowExact=%t)",
			l.Name, t, ii, cert.RS, jmax, windowUpper, exact)
	}
	return cert, nil
}

// windowUpperBound returns a proven upper bound on RS of the k-iteration
// window: the exact value when the search completes, the search's dual bound
// when capped.
func windowUpperBound(ctx context.Context, l *Loop, t ddg.RegType, k int, opt Options) (int, bool, error) {
	g, err := l.Unroll(k)
	if err != nil {
		return 0, false, err
	}
	rsOpts := opt.RS
	rsOpts.Method = rs.MethodExactBB
	rsOpts.SkipWitness = true
	r, err := rs.Compute(ctx, g, t, rsOpts)
	if err != nil {
		return 0, false, err
	}
	if r.Exact {
		return r.RS, true, nil
	}
	if r.BBStats != nil && r.BBStats.UpperBound >= r.RS {
		return r.BBStats.UpperBound, false, nil
	}
	if r.ILPUpperBound >= r.RS {
		return r.ILPUpperBound, false, nil
	}
	return math.MaxInt32, false, nil
}
