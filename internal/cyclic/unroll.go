package cyclic

import (
	"fmt"

	"regsat/internal/ddg"
)

// OutName is the name of the escape sink a window appends: values whose
// consumer falls outside the window flow into it, so they stay alive to the
// window's end instead of being killed early by an accidental in-window
// reader. This is what makes RS(k) monotone and subadditive in k (see
// docs/CYCLIC.md): a window never under-counts the pressure a longer window
// would see.
const OutName = "_out"

// Unroll instantiates k iterations of the loop into an ordinary acyclic DDG.
// Node u of iteration i becomes "u@i"; an edge u →(λ,ω) v becomes
// u@i → v@(i+ω) for every i with i+ω < k. For each value instance with at
// least one flow consumer beyond the window (i+ω ≥ k), one flow edge to the
// escape sink keeps it alive to the window end; cross-window serial edges are
// simply dropped (they constrain ordering, not liveness). The result is
// finalized.
func (l *Loop) Unroll(k int) (*ddg.Graph, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("cyclic: unroll factor %d < 1", k)
	}
	if int64(k)*int64(len(l.nodes))+2 > MaxUnrollNodes {
		return nil, fmt.Errorf("cyclic: unrolling %d iterations of a %d-node body exceeds %d nodes",
			k, len(l.nodes), MaxUnrollNodes)
	}
	g := ddg.New(fmt.Sprintf("%s#u%d", l.Name, k), l.Machine)
	ids := make([]int, k*len(l.nodes))
	inst := func(u, i int) int { return ids[i*len(l.nodes)+u] }
	for i := 0; i < k; i++ {
		for u := range l.nodes {
			n := &l.nodes[u]
			id := g.AddNode(fmt.Sprintf("%s@%d", n.Name, i), n.Op, n.Latency)
			if n.DelayR != 0 {
				g.SetReadDelay(id, n.DelayR)
			}
			for t, dw := range n.Writes {
				g.SetWrites(id, t, dw)
			}
			ids[i*len(l.nodes)+u] = id
		}
	}
	// escape[(u,i)] maps a value instance with out-of-window consumers to the
	// per-type maximum latency of its escaping flow edges.
	type valueInst struct {
		u, i int
	}
	escape := map[valueInst]map[ddg.RegType]int64{}
	for _, e := range l.edges {
		for i := 0; i < k; i++ {
			j := int64(i) + e.Dist
			if j < int64(k) {
				if e.Kind == ddg.Flow {
					g.AddFlowEdgeLatency(inst(e.From, i), inst(e.To, int(j)), e.Type, e.Latency)
				} else {
					g.AddSerialEdge(inst(e.From, i), inst(e.To, int(j)), e.Latency)
				}
				continue
			}
			if e.Kind != ddg.Flow {
				continue
			}
			vi := valueInst{e.From, i}
			m := escape[vi]
			if m == nil {
				m = map[ddg.RegType]int64{}
				escape[vi] = m
			}
			if e.Latency > m[e.Type] {
				m[e.Type] = e.Latency
			}
		}
	}
	if len(escape) > 0 {
		out := g.AddNode(OutName, "out", 0)
		// Deterministic emission order: by iteration, then node, then type.
		for i := 0; i < k; i++ {
			for u := range l.nodes {
				m, ok := escape[valueInst{u, i}]
				if !ok {
					continue
				}
				for _, t := range l.Types() {
					lat, ok := m[t]
					if !ok {
						continue
					}
					if lat < 1 {
						lat = 1
					}
					g.AddFlowEdgeLatency(inst(u, i), out, t, lat)
				}
			}
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, fmt.Errorf("cyclic: unroll(%d): %w", k, err)
	}
	return g, nil
}
