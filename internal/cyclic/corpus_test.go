package cyclic

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsat/internal/rs"
)

// TestCommittedLoopCorpus: every committed loop kernel (testdata/cyclic/ plus
// any loop file in the corpus root) must detect, parse, validate, round-trip,
// and analyze across all of its register types.
func TestCommittedLoopCorpus(t *testing.T) {
	var paths []string
	for _, dir := range []string{"../../testdata", "../../testdata/cyclic"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".ddg") {
				continue
			}
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	loops := 0
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !Detect(string(raw)) {
			continue
		}
		loops++
		t.Run(filepath.Base(path), func(t *testing.T) {
			l, err := ParseString(string(raw))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			again, err := ParseString(l.Format())
			if err != nil {
				t.Fatalf("round-trip parse: %v", err)
			}
			if again.Fingerprint() != l.Fingerprint() {
				t.Fatal("round-trip changed the fingerprint")
			}
			res, err := AnalyzeAll(context.Background(), l, Options{
				MaxWindow: 4, RS: rs.Options{Method: rs.MethodExactBB}})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			if len(res) != len(l.Types()) {
				t.Fatalf("analyzed %d types, loop writes %d", len(res), len(l.Types()))
			}
			for typ, r := range res {
				if len(r.Windows) == 0 || r.Windows[0] < 1 {
					t.Fatalf("%s: degenerate windows %v", typ, r.Windows)
				}
			}
		})
	}
	if loops < 6 {
		t.Fatalf("found %d committed loop kernels, want at least 6", loops)
	}
}
