package cyclic

import (
	"context"
	"strings"
	"testing"

	"regsat/internal/ddg"
)

func TestMinIIHandValues(t *testing.T) {
	// Self-recurrence λ=1, ω=1: ⌈1/1⌉ = 1.
	if ii, err := MinII(selfRec(t)); err != nil || ii != 1 {
		t.Fatalf("selfRec MinII = %d, %v; want 1", ii, err)
	}
	// Cycle a →(λ2, ω0) b →(λ1, ω1) a: ⌈3/1⌉ = 3.
	l := New("cyc3", ddg.Superscalar)
	a := l.AddNode("a", "mul", 2)
	b := l.AddNode("b", "add", 1)
	l.SetWrites(a, ddg.Float, 0)
	l.AddFlowEdge(a, b, ddg.Float, 0)
	l.AddSerialEdge(b, a, 1, 1)
	if ii, err := MinII(l); err != nil || ii != 3 {
		t.Fatalf("cyc3 MinII = %d, %v; want 3", ii, err)
	}
	// Self-recurrence λ=3, ω=2: ⌈3/2⌉ = 2.
	s := New("s32", ddg.Superscalar)
	u := s.AddNode("u", "fma", 3)
	s.SetWrites(u, ddg.Float, 0)
	s.AddFlowEdge(u, u, ddg.Float, 2)
	if ii, err := MinII(s); err != nil || ii != 2 {
		t.Fatalf("s32 MinII = %d, %v; want 2", ii, err)
	}
	if big := l.BigII(); big < 3 {
		t.Fatalf("BigII = %d below MinII", big)
	}
}

func TestPeriodicRSHandValues(t *testing.T) {
	ctx := context.Background()
	// Self-recurrence: each copy is alive for exactly one instant, copies
	// tile the timeline — steady-state pressure 1.
	p, err := PeriodicRS(ctx, selfRec(t), ddg.Float, PeriodicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Exact || p.RS != 1 || p.II != 1 {
		t.Fatalf("selfRec PRS = %+v, want exact RS=1 at II=1", p)
	}
	// Two independent chains: pressure 2.
	p, err = PeriodicRS(ctx, twoChains(t), ddg.Float, PeriodicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Exact || p.RS != 2 {
		t.Fatalf("twoChains PRS = %+v, want exact RS=2", p)
	}
	// Growing kernel at II=1: lifetime d − w = (x_v + δr + II·ω) − x_u is
	// maximized at x_v = Hx = 3, x_u = 0, giving 3 + 2 = 5 overlapping copies.
	p, err = PeriodicRS(ctx, growing(t), ddg.Float, PeriodicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Exact || p.RS != 5 || p.II != 1 {
		t.Fatalf("growing PRS = %+v, want exact RS=5 at II=1", p)
	}
}

func TestPeriodicRSNoValues(t *testing.T) {
	p, err := PeriodicRS(context.Background(), selfRec(t), ddg.Int, PeriodicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.RS != 0 || !p.Exact {
		t.Fatalf("no-writer type must give exact RS=0, got %+v", p)
	}
}

func TestPeriodicRSSizeGuard(t *testing.T) {
	_, err := PeriodicRS(context.Background(), growing(t), ddg.Float,
		PeriodicOptions{MaxAliveBinaries: 1})
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("want size-guard refusal, got %v", err)
	}
}

func TestPeriodicRSInfeasibleII(t *testing.T) {
	// Forcing II=1 on the ⌈3/1⌉ = 3 cycle must be rejected up front.
	l := New("cyc3b", ddg.Superscalar)
	a := l.AddNode("a", "mul", 2)
	b := l.AddNode("b", "add", 1)
	l.SetWrites(a, ddg.Float, 0)
	l.AddFlowEdge(a, b, ddg.Float, 0)
	l.AddSerialEdge(b, a, 1, 1)
	if _, err := PeriodicRS(context.Background(), l, ddg.Float, PeriodicOptions{II: 1}); err == nil {
		t.Fatal("want infeasible-II rejection")
	}
}

// TestCertifySandwich runs the full Analyze+Certify path on kernels small
// enough for the exact periodic MILP and checks both containments the CI
// differential enforces: PRS(MinII) ≤ RS(k) for k = Jmax (certify() hard-errors
// on violation) and PRS(BigII) ≥ RS(1).
func TestCertifySandwich(t *testing.T) {
	ctx := context.Background()
	for _, l := range []*Loop{selfRec(t), twoChains(t), growing(t)} {
		opt := exactOpts(6)
		opt.Certify = true
		res, err := Analyze(ctx, l, ddg.Float, opt)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if res.Periodic == nil {
			t.Fatalf("%s: certify skipped on a tiny kernel", l.Name)
		}
		if !res.Periodic.Exact {
			t.Fatalf("%s: periodic solve not exact: %+v", l.Name, res.Periodic)
		}
		// Lower sandwich: at a period longer than the one-iteration horizon
		// the periodic schedule embeds any single window, so PRS ≥ RS(1).
		big, err := PeriodicRS(ctx, l, ddg.Float, PeriodicOptions{II: l.BigII()})
		if err != nil {
			t.Fatalf("%s: big-II solve: %v", l.Name, err)
		}
		if big.RS < res.Windows[0] {
			t.Fatalf("%s: PRS(BigII=%d) = %d < RS(1) = %d", l.Name, big.II, big.RS, res.Windows[0])
		}
	}
}

// TestCertifySkipsLargeJmax: a long reuse distance blows up the copy bound
// Jmax past the certification cap; Analyze must skip the MILP, not fail.
func TestCertifySkipsLargeJmax(t *testing.T) {
	l := New("far", ddg.Superscalar)
	u := l.AddNode("u", "ld", 1)
	v := l.AddNode("v", "use", 1)
	l.SetWrites(u, ddg.Float, 0)
	l.AddFlowEdge(u, v, ddg.Float, 20)
	opt := exactOpts(3)
	opt.Certify = true
	res, err := Analyze(context.Background(), l, ddg.Float, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Periodic != nil {
		t.Fatalf("want certification skipped for Jmax > %d, got %+v", maxCertifyJmax, res.Periodic)
	}
}
