package cyclic

import (
	"context"
	"fmt"

	"regsat/internal/ddg"
	"regsat/internal/ir"
	"regsat/internal/obs"
	"regsat/internal/rs"
	"regsat/internal/solver"
)

// DefaultMaxWindow bounds the unrolled-window sweep when Options.MaxWindow
// is zero.
const DefaultMaxWindow = 12

// DefaultStable is the number of consecutive equal per-window deltas that
// declare convergence when Options.Stable is zero.
const DefaultStable = 3

// Options configures one periodic RS analysis.
type Options struct {
	// MaxWindow caps the unrolled window size k (0 = DefaultMaxWindow).
	MaxWindow int
	// Stable is the number of consecutive equal deltas RS(k) − RS(k−1)
	// required to declare the per-iteration contribution converged
	// (0 = DefaultStable).
	Stable int
	// Certify runs the exact periodic MILP at the minimum initiation
	// interval on kernels small enough (MaxCertifyValues) and attaches the
	// certificate to the result, extending the window sweep far enough to
	// verify the containment PRS ≤ RS(Jmax).
	Certify bool
	// MaxCertifyValues bounds the per-type value count of kernels Certify
	// attempts (0 = DefaultMaxCertifyValues). Larger kernels get windows
	// only.
	MaxCertifyValues int
	// RS configures the acyclic engine run on each window.
	RS rs.Options
}

// DefaultMaxCertifyValues bounds Certify to tiny kernels: the periodic MILP
// has O(values·II·Jmax) binaries.
const DefaultMaxCertifyValues = 4

func (o Options) withDefaults() Options {
	if o.MaxWindow <= 0 {
		o.MaxWindow = DefaultMaxWindow
	}
	if o.Stable <= 0 {
		o.Stable = DefaultStable
	}
	if o.MaxCertifyValues <= 0 {
		o.MaxCertifyValues = DefaultMaxCertifyValues
	}
	// Witness schedules of synthetic unrolled windows are never surfaced;
	// skipping them keeps window results cheap and cacheable.
	o.RS.SkipWitness = true
	return o
}

// Key renders the result-determining fields for cache keys, mirroring the
// batch memo's rs options key.
func (o Options) Key() string {
	o = o.withDefaults()
	r := o.RS
	return fmt.Sprintf("k%d|st%d|c%t|v%d|m%d|l%d|s%s",
		o.MaxWindow, o.Stable, o.Certify, o.MaxCertifyValues,
		r.Method, r.MaxLeaves, r.Solver.Key())
}

// Result is the periodic register saturation of one register type.
type Result struct {
	Type ddg.RegType `json:"type"`
	// Windows[i] is RS of the (i+1)-iteration unrolled window. The sequence
	// is non-decreasing (monotonicity) and subadditive, so Windows[k]/k
	// converges to the true per-iteration saturation (Fekete).
	Windows []int `json:"windows"`
	// PerIter is the converged per-iteration RS contribution Δ: the last
	// stable difference RS(k) − RS(k−1). When Converged is false it is the
	// last observed delta, a best-effort estimate.
	PerIter int `json:"perIter"`
	// Converged reports that the last `stable` deltas were identical.
	Converged bool `json:"converged"`
	// Window is the number of windows the sweep ran (len(Windows)).
	Window int `json:"window"`
	// Slope is the proven Fekete upper bound min_k RS(k)/k on the asymptotic
	// per-iteration saturation: subadditivity gives
	// lim RS(k)/k = inf RS(k)/k ≤ Slope.
	Slope float64 `json:"slope"`
	// Exact reports that every window's RS was proven exact by the acyclic
	// engine (greedy or capped windows clear it; the numbers are then valid
	// lower bounds).
	Exact bool `json:"exact"`
	// Periodic is the exact periodic-MILP certificate, when one was computed
	// (Options.Certify on a small kernel).
	Periodic *Periodic `json:"periodic,omitempty"`
}

// Periodic is the exact periodic MILP's certificate: the maximum steady-state
// register pressure of any periodic schedule with initiation interval II.
type Periodic struct {
	// II is the initiation interval the formulation ran at (the minimum
	// feasible one, unless overridden).
	II int64 `json:"ii"`
	// RS is the optimal steady-state pressure P* (best incumbent when the
	// solve was capped).
	RS int `json:"rs"`
	// Exact reports the solve proved optimality.
	Exact bool `json:"exact"`
	// UpperBound is the proven dual bound when capped: P* ∈ [RS, UpperBound].
	// Equal to RS when Exact.
	UpperBound int `json:"upperBound"`
	// Jmax is the steady-state copy bound: no value overlaps more than Jmax
	// of its own iteration copies, so PRS ≤ RS(k) for every window k ≥ Jmax.
	Jmax int `json:"jmax"`
	// Stats is the MILP backend's work accounting.
	Stats *solver.Stats `json:"stats,omitempty"`
}

// Analyze computes the periodic register saturation of one register type via
// the unrolled-window sweep, optionally certified by the periodic MILP.
// Windows share the process-wide ir interner, so a daemon analyzing the same
// loop repeatedly pays the per-window analysis substrate once.
func Analyze(ctx context.Context, l *Loop, t ddg.RegType, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := l.Validate(); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, "cyclic.windows",
		obs.Str("type", string(t)), obs.Int("maxWindow", int64(opt.MaxWindow)))
	defer sp.End()
	res := &Result{Type: t, Exact: true}
	stableRun := 0
	lastDelta := -1
	for k := 1; k <= opt.MaxWindow; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rsK, exact, err := windowRS(ctx, l, t, k, opt.RS)
		if err != nil {
			return nil, err
		}
		res.Exact = res.Exact && exact
		if k > 1 && rsK < res.Windows[k-2] {
			return nil, fmt.Errorf("cyclic: window monotonicity violated on %q/%s: RS(%d)=%d < RS(%d)=%d",
				l.Name, t, k, rsK, k-1, res.Windows[k-2])
		}
		res.Windows = append(res.Windows, rsK)
		slope := float64(rsK) / float64(k)
		if k == 1 || slope < res.Slope {
			res.Slope = slope
		}
		if k > 1 {
			delta := rsK - res.Windows[k-2]
			if delta == lastDelta {
				stableRun++
			} else {
				stableRun = 1
				lastDelta = delta
			}
			res.PerIter = delta
			if stableRun >= opt.Stable {
				res.Converged = true
				break
			}
		} else {
			res.PerIter = rsK
		}
	}
	res.Window = len(res.Windows)
	sp.SetAttr(obs.Int("windows", int64(res.Window)),
		obs.Bool("converged", res.Converged), obs.Int("perIter", int64(res.PerIter)))

	if opt.Certify && valueCount(l, t) > 0 && valueCount(l, t) <= opt.MaxCertifyValues {
		cert, err := certify(ctx, l, t, res, opt)
		if err != nil {
			return nil, err
		}
		res.Periodic = cert
	}
	return res, nil
}

// AnalyzeAll runs Analyze for every register type the body writes.
func AnalyzeAll(ctx context.Context, l *Loop, opt Options) (map[ddg.RegType]*Result, error) {
	out := map[ddg.RegType]*Result{}
	for _, t := range l.Types() {
		r, err := Analyze(ctx, l, t, opt)
		if err != nil {
			return nil, err
		}
		out[t] = r
	}
	return out, nil
}

// windowRS computes the acyclic RS of the k-iteration window through the
// interned analysis pipeline — repeated sweeps over the same loop (a daemon
// serving it twice, adjacent certify extensions) hit the process-wide
// interner instead of rebuilding the window's closure and longest paths.
// It returns the window RS and whether it is proven exact.
func windowRS(ctx context.Context, l *Loop, t ddg.RegType, k int, opts rs.Options) (int, bool, error) {
	g, err := l.Unroll(k)
	if err != nil {
		return 0, false, err
	}
	snap, err := ir.Intern(g)
	if err != nil {
		return 0, false, err
	}
	an, err := rs.NewAnalysisIR(snap, t)
	if err != nil {
		return 0, false, err
	}
	res, err := rs.ComputeWithAnalysis(ctx, an, opts)
	if err != nil {
		return 0, false, err
	}
	return res.RS, res.Exact, nil
}

func valueCount(l *Loop, t ddg.RegType) int {
	n := 0
	for i := range l.nodes {
		if l.nodes[i].WritesType(t) {
			n++
		}
	}
	return n
}
