package cyclic

import (
	"context"
	"testing"

	"regsat/internal/ddg"
	"regsat/internal/rs"
)

// twoChains builds two independent first-order recurrences: steady-state
// pressure 2, one value per chain alive at any instant.
func twoChains(t *testing.T) *Loop {
	t.Helper()
	l := New("twochains", ddg.Superscalar)
	a := l.AddNode("a", "add", 1)
	b := l.AddNode("b", "add", 1)
	l.SetWrites(a, ddg.Float, 0)
	l.SetWrites(b, ddg.Float, 0)
	l.AddFlowEdge(a, a, ddg.Float, 1)
	l.AddFlowEdge(b, b, ddg.Float, 1)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	return l
}

// growing builds the accumulating kernel u →(λ1, ω2) v: iterations of u are
// mutually unordered, so RS of the k-window is k (all values alive at once).
func growing(t *testing.T) *Loop {
	t.Helper()
	l := New("growing", ddg.Superscalar)
	u := l.AddNode("u", "ld", 1)
	v := l.AddNode("v", "use", 1)
	l.SetWrites(u, ddg.Float, 0)
	l.AddFlowEdge(u, v, ddg.Float, 2)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	return l
}

func exactOpts(max int) Options {
	return Options{MaxWindow: max, RS: rs.Options{Method: rs.MethodExactBB}}
}

func TestAnalyzeChainConverges(t *testing.T) {
	res, err := Analyze(context.Background(), selfRec(t), ddg.Float, exactOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	// Chained lifetimes ]σ_i, σ_{i+1}] never overlap: RS(k) = 1 for all k.
	for i, w := range res.Windows {
		if w != 1 {
			t.Fatalf("RS(%d) = %d, want 1 (windows %v)", i+1, w, res.Windows)
		}
	}
	if !res.Converged || res.PerIter != 0 || !res.Exact {
		t.Fatalf("want converged exact perIter=0, got %+v", res)
	}
}

func TestAnalyzeGrowingKernel(t *testing.T) {
	res, err := Analyze(context.Background(), growing(t), ddg.Float, exactOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	// Unordered iterations: the k-window holds k simultaneously-alive values.
	for i, w := range res.Windows {
		if w != i+1 {
			t.Fatalf("RS(%d) = %d, want %d (windows %v)", i+1, w, i+1, res.Windows)
		}
	}
	if !res.Converged || res.PerIter != 1 {
		t.Fatalf("want converged perIter=1, got %+v", res)
	}
	if res.Slope != 1 {
		t.Fatalf("slope = %v, want 1", res.Slope)
	}
}

func TestAnalyzeWindowsMonotone(t *testing.T) {
	for _, l := range []*Loop{selfRec(t), twoChains(t), growing(t)} {
		res, err := Analyze(context.Background(), l, ddg.Float, exactOpts(5))
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		for i := 1; i < len(res.Windows); i++ {
			if res.Windows[i] < res.Windows[i-1] {
				t.Fatalf("%s: windows not monotone: %v", l.Name, res.Windows)
			}
		}
		if res.Window != len(res.Windows) {
			t.Fatalf("%s: Window=%d, len(Windows)=%d", l.Name, res.Window, len(res.Windows))
		}
	}
}

// TestDistZeroDegeneracy: a loop whose edges all carry ω = 0 is k independent
// copies of its acyclic body, so RS(k) = k·RS(1) and RS(1) equals the plain
// acyclic saturation of the body.
func TestDistZeroDegeneracy(t *testing.T) {
	l := New("d0", ddg.Superscalar)
	a := l.AddNode("a", "ld", 2)
	b := l.AddNode("b", "use", 1)
	l.SetWrites(a, ddg.Float, 0)
	l.AddFlowEdge(a, b, ddg.Float, 0)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Carried() {
		t.Fatal("dist-0 loop must not report carried edges")
	}
	res, err := Analyze(context.Background(), l, ddg.Float, exactOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	body := l.Body()
	if err := body.Finalize(); err != nil {
		t.Fatal(err)
	}
	bres, err := rs.Compute(context.Background(), body, ddg.Float,
		rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows[0] != bres.RS {
		t.Fatalf("RS(1) = %d, acyclic body RS = %d", res.Windows[0], bres.RS)
	}
	for i, w := range res.Windows {
		if w != (i+1)*bres.RS {
			t.Fatalf("RS(%d) = %d, want %d·%d (windows %v)", i+1, w, i+1, bres.RS, res.Windows)
		}
	}
}

func TestAnalyzeAllCoversTypes(t *testing.T) {
	l := New("mixed", ddg.Superscalar)
	a := l.AddNode("a", "fadd", 1)
	b := l.AddNode("b", "iadd", 1)
	l.SetWrites(a, ddg.Float, 0)
	l.SetWrites(b, ddg.Int, 0)
	l.AddFlowEdge(a, a, ddg.Float, 1)
	l.AddFlowEdge(b, b, ddg.Int, 2)
	res, err := AnalyzeAll(context.Background(), l, exactOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[ddg.Float] == nil || res[ddg.Int] == nil {
		t.Fatalf("AnalyzeAll missing types: %v", res)
	}
}

func TestAnalyzeCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Analyze(ctx, growing(t), ddg.Float, exactOpts(6)); err == nil {
		t.Fatal("want context error")
	}
}

func TestOptionsKeyDistinguishes(t *testing.T) {
	a := Options{}.Key()
	b := Options{MaxWindow: 7}.Key()
	c := Options{Certify: true}.Key()
	if a == b || a == c || b == c {
		t.Fatalf("option keys collide: %q %q %q", a, b, c)
	}
	if (Options{}).Key() != (Options{MaxWindow: DefaultMaxWindow, Stable: DefaultStable}).Key() {
		t.Fatal("defaulted options must share a key with explicit defaults")
	}
}
