package reduce

import (
	"regsat/internal/ddg"
	"regsat/internal/schedule"
	"regsat/internal/solver"
)

// Result is the outcome of an RS reduction.
type Result struct {
	// Graph is the extended DDG Ḡ = G ∪ E̅ (equal to the input when no
	// reduction was needed).
	Graph *ddg.Graph
	// Arcs lists the added serialization arcs.
	Arcs []ddg.SerialArc
	// RS is the register saturation of the extended graph (for the exact
	// methods this equals RN_σ(G) of the driving schedule; for the
	// heuristic it is the Greedy-k estimate, re-checkable with rs.ExactBB).
	RS int
	// CPBefore and CPAfter are the critical paths of G and Ḡ; their
	// difference is the ILP loss the experiments report.
	CPBefore, CPAfter int64
	// Schedule is the register-bounded schedule driving the exact
	// construction (nil for the heuristic).
	Schedule *schedule.Schedule
	// Exact reports whether the result is proven optimal (minimal critical
	// path among extensions with RS ≤ R).
	Exact bool
	// Spill is true when no reduction to R registers exists (or none was
	// found within budget): spill code is unavoidable.
	Spill bool
	// Iterations counts heuristic rounds or exact search restarts.
	Iterations int
	// SolverStats is the MILP backend's work accounting (ExactILP only).
	SolverStats *solver.Stats
}

// unchanged wraps the no-op reduction (RS already ≤ R).
func unchanged(g *ddg.Graph, rsValue int, exact bool) *Result {
	cp := g.CriticalPath()
	return &Result{
		Graph:    g,
		RS:       rsValue,
		CPBefore: cp,
		CPAfter:  cp,
		Exact:    exact,
	}
}
