package reduce

import (
	"context"
	"fmt"

	"regsat/internal/ddg"
	"regsat/internal/ir"
	"regsat/internal/rs"
	"regsat/internal/schedule"
)

// ExactOptions bounds the exact reduction search.
type ExactOptions struct {
	// MaxNodes caps DFS nodes per decision phase (0 = default 2e6).
	MaxNodes int64
	// SkipMaxRN disables the secondary search that, at the optimal
	// makespan, maximizes the register need (the paper's "maximized and
	// does not exceed R_t" reading); the primary objective min σ_⊥ is
	// always optimized.
	SkipMaxRN bool
}

// ExactCombinatorial solves the ReduceRS problem optimally: it finds the
// minimal total schedule time P for which a schedule σ exists whose
// Theorem 4.2 extension Ḡ(σ) is an acyclic DAG with RS_t(Ḡ) ≤ R (the SRC
// search the NP-hardness proof reduces from), then returns that extension.
// The returned critical path CPAfter is the minimum achievable by any
// serialization-arc reduction, so the heuristic's ILP loss can be compared
// against it.
func ExactCombinatorial(ctx context.Context, g *ddg.Graph, t ddg.RegType, available int, opt ExactOptions) (*Result, error) {
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 2_000_000
	}
	exactRS, err := exactSaturation(ctx, g, t)
	if err != nil {
		return nil, err
	}
	if exactRS <= available {
		return unchanged(g, exactRS, true), nil
	}
	if available < 1 {
		r := unchanged(g, exactRS, true)
		r.Spill = true
		return r, nil
	}

	// Feasible upper bound for P from the heuristic's extension (verified
	// with the exact saturation of the extended graph).
	pub := g.Horizon()
	heur, herr := Heuristic(ctx, g, t, available)
	if herr == nil && !heur.Spill {
		if hRS, err := exactSaturation(ctx, heur.Graph, t); err == nil && hRS <= available {
			pub = heur.Graph.CriticalPath()
		}
	}

	cp := g.CriticalPath()
	budget := opt.MaxNodes
	var found *leaf
	for P := cp; P <= pub; P++ {
		l, used, err := srcDecision(ctx, g, t, available, P, budget)
		if err != nil {
			return nil, err
		}
		budget -= used
		if l != nil {
			found = l
			break
		}
		if budget <= 0 {
			// Budget exhausted without an answer: fall back to the
			// heuristic result, marked inexact.
			if herr == nil {
				heur.Exact = false
				return heur, nil
			}
			return &Result{Graph: g, RS: exactRS, CPBefore: cp, CPAfter: cp,
				Spill: true, Exact: false}, nil
		}
	}
	if found == nil {
		// No reduction to R registers exists within the horizon: spilling
		// is unavoidable (Section 4).
		return &Result{Graph: g, RS: exactRS, CPBefore: cp, CPAfter: cp,
			Spill: true, Exact: true}, nil
	}

	// Secondary objective: among minimal-makespan reductions, keep the
	// register need as high as possible (fewest superfluous constraints).
	if !opt.SkipMaxRN {
		if l2, _, err := srcMaxRN(ctx, g, t, available, found.sched.Makespan(), opt.MaxNodes); err == nil && l2 != nil {
			if l2.extRS > found.extRS {
				found = l2
			}
		}
	}

	// Report the true saturation of the chosen extension. A value above the
	// budget here means acceptLeaf's verification logic has a hole — fail
	// loudly rather than hand back a "certified" extension that does not fit.
	finalRS, err := exactSaturation(ctx, found.ext, t)
	if err != nil {
		return nil, err
	}
	if finalRS > available {
		return nil, fmt.Errorf("reduce: internal error: accepted extension of %s has RS %d > budget %d",
			g.Name, finalRS, available)
	}
	return &Result{
		Graph:    found.ext,
		Arcs:     found.arcs,
		RS:       finalRS,
		CPBefore: cp,
		CPAfter:  found.ext.CriticalPath(),
		Schedule: found.sched,
		Exact:    true,
	}, nil
}

func exactSaturation(ctx context.Context, g *ddg.Graph, t ddg.RegType) (int, error) {
	res, err := rs.Compute(ctx, g, t, rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
	if err != nil {
		return 0, err
	}
	if !res.Exact {
		return 0, fmt.Errorf("reduce: exact saturation capped on %s", g.Name)
	}
	return res.RS, nil
}

// leaf is an accepted schedule together with its verified extension.
type leaf struct {
	sched *schedule.Schedule
	arcs  []ddg.SerialArc
	ext   *ddg.Graph
	extRS int
}

// srcDecision answers: does a valid schedule with makespan ≤ P exist whose
// Theorem 4.2 extension has RS ≤ R? Returns the first accepted leaf.
func srcDecision(ctx context.Context, g *ddg.Graph, t ddg.RegType, R int, P int64, budget int64) (*leaf, int64, error) {
	search, err := newSrcSearch(ctx, g, t, R, P, budget)
	if err != nil {
		return nil, 0, nil // horizon below critical path: infeasible at this P
	}
	l := search.run(nil)
	return l, search.used, nil
}

// srcMaxRN searches, at fixed makespan bound P, for the accepted leaf whose
// extension keeps the highest saturation still ≤ R.
func srcMaxRN(ctx context.Context, g *ddg.Graph, t ddg.RegType, R int, P int64, budget int64) (*leaf, int64, error) {
	search, err := newSrcSearch(ctx, g, t, R, P, budget)
	if err != nil {
		return nil, 0, nil
	}
	var best *leaf
	search.run(func(l *leaf) bool {
		if best == nil || l.extRS > best.extRS {
			best = l
		}
		return best.extRS < R // stop early once R is reached
	})
	return best, search.used, nil
}

type srcSearch struct {
	ctx    context.Context
	g      *ddg.Graph
	t      ddg.RegType
	R      int
	topo   []int
	lo, hi []int64
	times  []int64
	placed []bool
	budget int64
	used   int64
	slack  int64 // StrictSlack of the machine

	values    []int
	consumers [][]int
	preds     [][]predEdge
}

type predEdge struct {
	from int
	lat  int64
}

func newSrcSearch(ctx context.Context, g *ddg.Graph, t ddg.RegType, R int, P int64, budget int64) (*srcSearch, error) {
	// One snapshot serves every decision phase of the search: the per-P
	// restarts of ExactCombinatorial all intern to the same artifact, so the
	// topological order, value/consumer tables, and window substrate are
	// computed once per graph, not once per phase.
	snap, err := ir.Intern(g)
	if err != nil {
		return nil, err
	}
	lo, hi, err := schedule.WindowsIR(snap, P)
	if err != nil {
		return nil, err
	}
	s := &srcSearch{
		ctx: ctx,
		g:   g, t: t, R: R,
		topo: snap.Topo, lo: lo, hi: hi,
		times:  make([]int64, g.NumNodes()),
		placed: make([]bool, g.NumNodes()),
		budget: budget,
		slack:  StrictSlack(g),
	}
	if tbl := snap.Table(t); tbl != nil {
		s.values = tbl.Values
		s.consumers = tbl.Cons
	}
	s.preds = make([][]predEdge, g.NumNodes())
	for _, e := range g.Edges() {
		s.preds[e.To] = append(s.preds[e.To], predEdge{e.From, e.Latency})
	}
	return s, nil
}

// acceptLeaf validates a complete schedule: its register need must fit, and
// its Theorem 4.2 extension must be an acyclic DAG with saturation ≤ R.
// Cheap sufficient tests avoid the exact-saturation call in the common
// case: on offset machines RS(Ḡ) = RN_σ exactly (Theorem 4.2); on
// zero-offset machines RS(Ḡ) ≤ strict-interference need. The recorded extRS
// is RN_σ, a lower bound on the true saturation of the extension (the
// caller recomputes the exact value for the finally chosen leaf).
func (s *srcSearch) acceptLeaf(times []int64) *leaf {
	sched := schedule.New(s.g, append([]int64(nil), times...))
	rn := sched.RegisterNeed(s.t)
	if rn > s.R {
		return nil
	}
	arcs, err := SerializationArcs(s.g, s.t, sched)
	if err != nil {
		return nil
	}
	ext, err := ApplyArcs(s.g, arcs)
	if err != nil {
		return nil // non-positive circuit (VLIW/EPIC): excluded by the paper
	}
	needVerify := false
	if s.slack > 0 {
		// Touching lifetimes left unserialized: the closed-interval need may
		// exceed what the arcs pin.
		needVerify = s.strictNeed(sched) > s.R
	} else {
		// Offset machines: RS(Ḡ) = RN_σ only holds when σ's whole lifetime
		// order was actually pinned. An empty lifetime (a value read at its
		// own birth instant) or an ordered pair Serializable refuses (e.g.
		// δr(v) > δw(v)) leaves an order the extension does not enforce, so
		// other schedules of Ḡ can overlap what σ kept apart.
		needVerify = !s.orderFullyPinned(sched)
	}
	if needVerify {
		extRS, err := exactSaturation(s.ctx, ext, s.t)
		if err != nil || extRS > s.R {
			return nil
		}
	}
	return &leaf{sched: sched, arcs: arcs, ext: ext, extRS: rn}
}

// orderFullyPinned reports whether every non-interference σ exhibits between
// type-t values is enforced by the serialization-arc construction: no empty
// lifetimes, and every ordered pair is Serializable. Only then does
// Theorem 4.2 give RS(Ḡ) = RN_σ on offset machines.
func (s *srcSearch) orderFullyPinned(sched *schedule.Schedule) bool {
	ivs := make([]schedule.Interval, len(s.values))
	for i, u := range s.values {
		ivs[i] = sched.Lifetime(u, s.t)
		if ivs[i].Empty() {
			return false
		}
	}
	for i, u := range s.values {
		for j, v := range s.values {
			if i == j || ivs[i].End > ivs[j].Start {
				continue
			}
			if !Serializable(s.g, s.t, sched, u, v) {
				return false
			}
		}
	}
	return true
}

// strictNeed computes the register need with touching lifetimes counted as
// interfering (closed-interval rule), an upper bound on RS of the strict
// extension for zero-offset machines.
func (s *srcSearch) strictNeed(sched *schedule.Schedule) int {
	ivs := sched.Lifetimes(s.t)
	for i := range ivs {
		if !ivs[i].Empty() {
			ivs[i].End += s.slack
		}
	}
	return schedule.MaxLive(ivs)
}

// run performs the DFS. With visit == nil it stops at the first accepted
// leaf; otherwise it enumerates accepted leaves until visit returns false
// or the space/budget ends.
func (s *srcSearch) run(visit func(*leaf) bool) *leaf {
	var result *leaf
	var rec func(i int) bool // returns false to stop the whole search
	rec = func(i int) bool {
		s.used++
		if s.used > s.budget {
			return false
		}
		if i == len(s.topo) {
			l := s.acceptLeaf(s.times)
			if l == nil {
				return true // keep searching
			}
			if visit == nil || !visit(l) {
				result = l
				return false
			}
			return true
		}
		u := s.topo[i]
		earliest := s.lo[u]
		for _, pe := range s.preds[u] {
			if tt := s.times[pe.from] + pe.lat; tt > earliest {
				earliest = tt
			}
		}
		for tt := earliest; tt <= s.hi[u]; tt++ {
			s.times[u] = tt
			s.placed[u] = true
			if s.liveLowerBound() <= s.R {
				if !rec(i + 1) {
					s.placed[u] = false
					return false
				}
			}
			s.placed[u] = false
		}
		return true
	}
	rec(0)
	return result
}

// liveLowerBound computes a lower bound on the final register need of the
// partial placement: for every placed producer, its value is certainly alive
// from its birth to at least the latest lower-bounded consumer read
// (placed consumers read at their scheduled time; unplaced ones no earlier
// than max(ASAP, placed-predecessor constraints)). Since RS of the final
// extension is at least the plain register need, exceeding R here prunes
// soundly.
func (s *srcSearch) liveLowerBound() int {
	intervals := make([]schedule.Interval, 0, len(s.values))
	for i, u := range s.values {
		if !s.placed[u] {
			continue
		}
		birth := s.times[u] + s.g.Node(u).DelayW(s.t)
		death := int64(-1 << 62)
		for _, v := range s.consumers[i] {
			var read int64
			if s.placed[v] {
				read = s.times[v] + s.g.Node(v).DelayR
			} else {
				est := s.lo[v]
				for _, pe := range s.preds[v] {
					if s.placed[pe.from] {
						if tt := s.times[pe.from] + pe.lat; tt > est {
							est = tt
						}
					}
				}
				read = est + s.g.Node(v).DelayR
			}
			if read > death {
				death = read
			}
		}
		intervals = append(intervals, schedule.Interval{Value: u, Start: birth, End: death})
	}
	return schedule.MaxLive(intervals)
}
