package reduce

import (
	"fmt"

	"regsat/internal/ddg"
	"regsat/internal/ilp"
	"regsat/internal/lp"
	"regsat/internal/rs"
	"regsat/internal/schedule"
)

// ILPOptions configures the Section 4 exact intLP reduction.
type ILPOptions struct {
	// Params bounds the MILP solver.
	Params lp.Params
	// ApplyReductions enables the Section 3 model optimizations.
	ApplyReductions bool
	// GuaranteeDAG adds the topological-sort machinery (π ordering
	// variables) that excludes optimal solutions whose serialization arcs
	// would close non-positive circuits. Only meaningful for VLIW/EPIC
	// targets — superscalar serialization arcs carry latency 1 and can
	// never close a circuit.
	GuaranteeDAG bool
	// MakespanBound, when positive, adds σ_⊥ ≤ P (the decision variant of
	// Definition 4.1 used by tests).
	MakespanBound int64
}

// ExactILP solves the Section 4 intLP: keep the interference core of
// Section 3, drop the independent-set part, and instead color the
// interference graph with exactly R_t registers,
//
//	Σ_i x^i_{u^t} = 1                      (one register per value)
//	s_{u,v} = 1 ⇒ x^i_u + x^i_v ≤ 1, ∀i   (interfering values differ)
//	minimize σ_⊥
//
// then insert the Theorem 4.2 serialization arcs of the solved schedule.
// An infeasible system means spilling is unavoidable.
func ExactILP(g *ddg.Graph, t ddg.RegType, available int, opt ILPOptions) (*Result, error) {
	an, err := rs.NewAnalysis(g, t)
	if err != nil {
		return nil, err
	}
	exactRS, err := quickExactRS(g, t)
	if err != nil {
		return nil, err
	}
	if exactRS <= available && opt.MakespanBound == 0 {
		return unchanged(g, exactRS, true), nil
	}
	if available < 1 {
		r := unchanged(g, exactRS, true)
		r.Spill = true
		return r, nil
	}

	m := lp.NewModel(fmt.Sprintf("ReduceRS(%s,%s,R=%d)", g.Name, t, available), lp.Minimize)
	// On zero-offset machines the latency-1 serialization arcs require
	// strictly separated lifetimes, so the interference test is widened by
	// one cycle (see rs.BuildCore).
	core, _, err := rs.BuildCore(an, opt.ApplyReductions, StrictSlack(g), m)
	if err != nil {
		return nil, err
	}
	nv := len(an.Values)

	// Coloring variables: x^c_i, one register c per value i.
	colors := make([][]lp.Var, nv)
	for i := 0; i < nv; i++ {
		colors[i] = make([]lp.Var, available)
		terms := make([]lp.Term, available)
		for c := 0; c < available; c++ {
			colors[i][c] = m.NewBinary(fmt.Sprintf("x%d(%s)", c, g.Node(an.Values[i]).Name))
			terms[c] = lp.Term{Var: colors[i][c], Coef: 1}
		}
		m.AddConstr(terms, lp.EQ, 1, fmt.Sprintf("onereg(%d)", i))
	}
	// Interfering values cannot share a register: x^c_i + x^c_j ≤ 2 − s_{ij}.
	for i := 0; i < nv; i++ {
		for j := i + 1; j < nv; j++ {
			key := [2]int{i, j}
			if core.NeverAlive[key] {
				continue // statically disjoint lifetimes: any colors work
			}
			s := core.S[key]
			for c := 0; c < available; c++ {
				m.AddConstr([]lp.Term{
					{Var: colors[i][c], Coef: 1},
					{Var: colors[j][c], Coef: 1},
					{Var: s, Coef: 1},
				}, lp.LE, 2, fmt.Sprintf("col%d(%d,%d)", c, i, j))
			}
		}
	}

	// Topological-sort guarantee (VLIW/EPIC): ordering variables π with
	// π_v ≥ π_u + 1 along original edges, and whenever LT_i ≺ LT_j (the
	// half-interference binary h_{i→j} is 0), the would-be serialization
	// arcs must also respect π.
	if opt.GuaranteeDAG && g.Machine.HasOffsets() {
		n := g.NumNodes()
		pi := make([]lp.Var, n)
		for u := 0; u < n; u++ {
			pi[u] = m.NewVar(0, float64(n-1), true, fmt.Sprintf("pi(%s)", g.Node(u).Name))
		}
		for _, e := range g.Edges() {
			ilp.GE(m, ilp.VarExpr(pi[e.To]).Minus(ilp.VarExpr(pi[e.From])).AddConst(-1),
				fmt.Sprintf("piedge(%s,%s)", g.Node(e.From).Name, g.Node(e.To).Name))
		}
		for i := 0; i < nv; i++ {
			for j := 0; j < nv; j++ {
				if i == j {
					continue
				}
				h, ok := core.H[[2]int{i, j}]
				if !ok {
					continue // statically handled pair
				}
				for _, a := range ValueSerializationArcs(g, t, an.Values[i], an.Values[j]) {
					if a.From == a.To {
						continue
					}
					// h_{i→j} = 0 (i.e. LT_i ≺ LT_j) ⇒ π_to ≥ π_from + 1.
					ilp.ImpliesGEWhenZero(m, h,
						ilp.VarExpr(pi[a.To]).Minus(ilp.VarExpr(pi[a.From])).AddConst(-1),
						fmt.Sprintf("piser(%d,%d,%s)", i, j, g.Node(a.From).Name))
				}
			}
		}
	}

	// Objective: minimize the total schedule time σ_⊥.
	m.SetObjCoef(core.Sigma[g.Bottom()], 1)
	if opt.MakespanBound > 0 {
		m.AddConstr([]lp.Term{{Var: core.Sigma[g.Bottom()], Coef: 1}},
			lp.LE, float64(opt.MakespanBound), "makespan")
	}

	sol := m.Solve(opt.Params)
	switch sol.Status {
	case lp.StatusOptimal, lp.StatusFeasible:
	case lp.StatusInfeasible:
		r := unchanged(g, exactRS, true)
		r.Spill = true
		return r, nil
	default:
		return nil, fmt.Errorf("reduce: intLP for %s/%s: %v", g.Name, t, sol.Status)
	}

	times := make([]int64, g.NumNodes())
	for u, sv := range core.Sigma {
		times[u] = sol.IntValue(sv)
	}
	sched := schedule.New(g, times)
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("reduce: intLP schedule invalid: %w", err)
	}
	if rn := sched.RegisterNeed(t); rn > available {
		return nil, fmt.Errorf("reduce: intLP schedule needs %d > %d registers", rn, available)
	}
	arcs, err := SerializationArcs(g, t, sched)
	if err != nil {
		return nil, err
	}
	ext, err := ApplyArcs(g, arcs)
	if err != nil {
		return nil, err
	}
	extRS, err := quickExactRS(ext, t)
	if err != nil {
		return nil, err
	}
	if extRS > available {
		return nil, fmt.Errorf("reduce: intLP extension has RS=%d > R=%d", extRS, available)
	}
	return &Result{
		Graph:    ext,
		Arcs:     arcs,
		RS:       extRS,
		CPBefore: g.CriticalPath(),
		CPAfter:  ext.CriticalPath(),
		Schedule: sched,
		Exact:    sol.Status == lp.StatusOptimal,
	}, nil
}

func quickExactRS(g *ddg.Graph, t ddg.RegType) (int, error) {
	res, err := rs.Compute(g, t, rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
	if err != nil {
		return 0, err
	}
	return res.RS, nil
}
