package reduce

import (
	"context"
	"fmt"
	"sort"

	"regsat/internal/ddg"
	"regsat/internal/ilp"
	"regsat/internal/interference"
	"regsat/internal/lp"
	"regsat/internal/rs"
	"regsat/internal/schedule"
	"regsat/internal/solver"
)

// ILPOptions configures the Section 4 exact intLP reduction.
type ILPOptions struct {
	// Solver selects and bounds the MILP backend.
	Solver solver.Options
	// ApplyReductions enables the Section 3 model optimizations.
	ApplyReductions bool
	// GuaranteeDAG adds the topological-sort machinery (π ordering
	// variables) that excludes optimal solutions whose serialization arcs
	// would close non-positive circuits. Only meaningful for VLIW/EPIC
	// targets — superscalar serialization arcs carry latency 1 and can
	// never close a circuit.
	GuaranteeDAG bool
	// MakespanBound, when positive, adds σ_⊥ ≤ P (the decision variant of
	// Definition 4.1 used by tests).
	MakespanBound int64
}

// ExactILP solves the Section 4 intLP: keep the interference core of
// Section 3, drop the independent-set part, and instead color the
// interference graph with exactly R_t registers,
//
//	Σ_i x^i_{u^t} = 1                      (one register per value)
//	s_{u,v} = 1 ⇒ x^i_u + x^i_v ≤ 1, ∀i   (interfering values differ)
//	minimize σ_⊥
//
// then insert the Theorem 4.2 serialization arcs of the solved schedule.
// An infeasible system means spilling is unavoidable.
//
// When the value-serialization heuristic already finds a reduction, its
// makespan seeds the solver as an incumbent cutoff (the σ_⊥ the MILP must
// beat or match), after checking the heuristic schedule really is a feasible
// point of the widened-interference coloring model.
func ExactILP(ctx context.Context, g *ddg.Graph, t ddg.RegType, available int, opt ILPOptions) (*Result, error) {
	an, err := rs.NewAnalysis(g, t)
	if err != nil {
		return nil, err
	}
	exactRS, err := quickExactRS(ctx, g, t)
	if err != nil {
		return nil, err
	}
	if exactRS <= available && opt.MakespanBound == 0 {
		return unchanged(g, exactRS, true), nil
	}
	if available < 1 {
		r := unchanged(g, exactRS, true)
		r.Spill = true
		return r, nil
	}

	m := lp.NewModel(fmt.Sprintf("ReduceRS(%s,%s,R=%d)", g.Name, t, available), lp.Minimize)
	// On zero-offset machines the latency-1 serialization arcs require
	// strictly separated lifetimes, so the interference test is widened by
	// one cycle (see rs.BuildCore).
	core, _, err := rs.BuildCore(an, opt.ApplyReductions, StrictSlack(g), m)
	if err != nil {
		return nil, err
	}
	nv := len(an.Values)

	// Coloring variables: x^c_i, one register c per value i.
	colors := make([][]lp.Var, nv)
	for i := 0; i < nv; i++ {
		colors[i] = make([]lp.Var, available)
		terms := make([]lp.Term, available)
		for c := 0; c < available; c++ {
			colors[i][c] = m.NewBinary(fmt.Sprintf("x%d(%s)", c, g.Node(an.Values[i]).Name))
			terms[c] = lp.Term{Var: colors[i][c], Coef: 1}
		}
		m.AddConstr(terms, lp.EQ, 1, fmt.Sprintf("onereg(%d)", i))
	}
	// Interfering values cannot share a register: x^c_i + x^c_j ≤ 2 − s_{ij}.
	for i := 0; i < nv; i++ {
		for j := i + 1; j < nv; j++ {
			key := [2]int{i, j}
			if core.NeverAlive[key] {
				continue // statically disjoint lifetimes: any colors work
			}
			s := core.S[key]
			for c := 0; c < available; c++ {
				m.AddConstr([]lp.Term{
					{Var: colors[i][c], Coef: 1},
					{Var: colors[j][c], Coef: 1},
					{Var: s, Coef: 1},
				}, lp.LE, 2, fmt.Sprintf("col%d(%d,%d)", c, i, j))
			}
		}
	}

	// Topological-sort guarantee (VLIW/EPIC): ordering variables π with
	// π_v ≥ π_u + 1 along original edges, and whenever LT_i ≺ LT_j (the
	// half-interference binary h_{i→j} is 0), the would-be serialization
	// arcs must also respect π.
	if opt.GuaranteeDAG && g.Machine.HasOffsets() {
		n := g.NumNodes()
		pi := make([]lp.Var, n)
		for u := 0; u < n; u++ {
			pi[u] = m.NewVar(0, float64(n-1), true, fmt.Sprintf("pi(%s)", g.Node(u).Name))
		}
		for _, e := range g.Edges() {
			ilp.GE(m, ilp.VarExpr(pi[e.To]).Minus(ilp.VarExpr(pi[e.From])).AddConst(-1),
				fmt.Sprintf("piedge(%s,%s)", g.Node(e.From).Name, g.Node(e.To).Name))
		}
		for i := 0; i < nv; i++ {
			for j := 0; j < nv; j++ {
				if i == j {
					continue
				}
				h, ok := core.H[[2]int{i, j}]
				if !ok {
					continue // statically handled pair
				}
				for _, a := range ValueSerializationArcs(g, t, an.Values[i], an.Values[j]) {
					if a.From == a.To {
						continue
					}
					// h_{i→j} = 0 (i.e. LT_i ≺ LT_j) ⇒ π_to ≥ π_from + 1.
					ilp.ImpliesGEWhenZero(m, h,
						ilp.VarExpr(pi[a.To]).Minus(ilp.VarExpr(pi[a.From])).AddConst(-1),
						fmt.Sprintf("piser(%d,%d,%s)", i, j, g.Node(a.From).Name))
				}
			}
		}
	}

	// Objective: minimize the total schedule time σ_⊥.
	m.SetObjCoef(core.Sigma[g.Bottom()], 1)
	if opt.MakespanBound > 0 {
		m.AddConstr([]lp.Term{{Var: core.Sigma[g.Bottom()], Coef: 1}},
			lp.LE, float64(opt.MakespanBound), "makespan")
	}

	sopt := opt.Solver
	if sopt.Hints == nil && !sopt.DisableCuts {
		// Thread the always-interfering clique structure down to the
		// solver's cut layer: values forced to overlap in every schedule
		// must take pairwise distinct registers, so each clique admits at
		// most one member per color.
		if cl := coloringCliques(an, core, colors, StrictSlack(g)); len(cl) > 0 {
			sopt.Hints = &solver.Hints{Cliques: cl}
		}
	}
	var heurSched *schedule.Schedule
	if sopt.Cutoff == nil {
		// Incumbent seeding: the heuristic reduction's makespan is a valid
		// upper bound on the optimal σ_⊥ whenever its schedule is provably a
		// feasible point of this model; the solver then looks only for
		// strictly shorter schedules. The π-ordering variant adds acyclicity
		// constraints the quick check cannot certify, so seeding is skipped
		// there.
		if !(opt.GuaranteeDAG && g.Machine.HasOffsets()) {
			if hs, cut, ok := heuristicMakespanBound(ctx, g, t, an, available, StrictSlack(g)); ok {
				if opt.MakespanBound <= 0 || cut <= float64(opt.MakespanBound) {
					heurSched = hs
					sopt.Cutoff = solver.CutoffAt(cut)
					sopt.ExclusiveCutoff = true
				}
			}
		}
	}
	sol, err := solver.Solve(ctx, m, sopt)
	if err != nil {
		return nil, fmt.Errorf("reduce: intLP for %s/%s: %w", g.Name, t, err)
	}
	switch sol.Status {
	case lp.StatusOptimal, lp.StatusFeasible:
	case lp.StatusInfeasible:
		r := unchanged(g, exactRS, true)
		r.Spill = true
		return r, nil
	default:
		return nil, fmt.Errorf("reduce: intLP for %s/%s: %v", g.Name, t, sol.Status)
	}

	var sched *schedule.Schedule
	if sol.AtCutoff {
		// No schedule strictly shorter than the heuristic's exists: the
		// heuristic schedule (a verified feasible point of this model) is
		// the optimum.
		if heurSched == nil {
			// The exclusive cutoff came from the caller, not from our own
			// seeding: there is no held schedule to fall back on.
			return nil, fmt.Errorf("reduce: intLP for %s/%s: optimum equals the caller's cutoff %g; no schedule available",
				g.Name, t, sol.Obj)
		}
		sched = heurSched
	} else {
		times := make([]int64, g.NumNodes())
		for u, sv := range core.Sigma {
			times[u] = sol.IntValue(sv)
		}
		sched = schedule.New(g, times)
	}
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("reduce: intLP schedule invalid: %w", err)
	}
	if rn := sched.RegisterNeed(t); rn > available {
		return nil, fmt.Errorf("reduce: intLP schedule needs %d > %d registers", rn, available)
	}
	arcs, err := SerializationArcs(g, t, sched)
	if err != nil {
		return nil, err
	}
	ext, err := ApplyArcs(g, arcs)
	if err != nil {
		return nil, err
	}
	extRS, err := quickExactRS(ctx, ext, t)
	if err != nil {
		return nil, err
	}
	if extRS > available {
		return nil, fmt.Errorf("reduce: intLP extension has RS=%d > R=%d", extRS, available)
	}
	stats := sol.Stats
	return &Result{
		Graph:       ext,
		Arcs:        arcs,
		RS:          extRS,
		CPBefore:    g.CriticalPath(),
		CPAfter:     ext.CriticalPath(),
		Schedule:    sched,
		Exact:       sol.Status == lp.StatusOptimal,
		SolverStats: &stats,
	}, nil
}

// coloringCliques derives the always-interfere clique hints of the Section 4
// coloring model: for pairs that still carry an interference binary, both
// half-interference directions forced by the precedence structure
// (rs.ForcedInterference) pin s_{ij} = 1 in every feasible point, so the
// members of a clique of that relation must take pairwise distinct
// registers — per color c, Σ_{i∈C} x^c_i ≤ 1.
func coloringCliques(an *rs.Analysis, core *rs.CoreVars, colors [][]lp.Var, slack int64) []solver.Clique {
	nv := len(an.Values)
	if nv < 3 {
		return nil
	}
	adj := make([]bool, nv*nv)
	any := false
	for i := 0; i < nv; i++ {
		for j := i + 1; j < nv; j++ {
			if core.NeverAlive[[2]int{i, j}] {
				continue // no s variable, no col rows: colors may coincide
			}
			if an.ForcedInterference(i, j, slack) && an.ForcedInterference(j, i, slack) {
				adj[i*nv+j] = true
				adj[j*nv+i] = true
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	cliques := interference.MaximalCliques(nv,
		func(i, j int) bool { return adj[i*nv+j] }, 3, 16)
	var out []solver.Clique
	for ci, c := range cliques {
		for reg := range colors[0] {
			cl := solver.Clique{Name: fmt.Sprintf("livec%d/r%d", ci, reg), RHS: 1}
			for _, i := range c {
				cl.Vars = append(cl.Vars, colors[i][reg])
			}
			out = append(out, cl)
		}
	}
	return out
}

// heuristicMakespanBound runs the value-serialization heuristic and, when
// its reduction yields a schedule that is certifiably a feasible point of
// the Section 4 coloring model — every σ_u inside its window and the
// widened-interference graph of the schedule colorable with ≤ R registers —
// returns that schedule (over the original graph) and its makespan as an
// achievable objective value.
func heuristicMakespanBound(ctx context.Context, g *ddg.Graph, t ddg.RegType, an *rs.Analysis, R int, slack int64) (*schedule.Schedule, float64, bool) {
	red, err := Heuristic(ctx, g, t, R)
	if err != nil || red.Spill {
		return nil, 0, false
	}
	s, err := schedule.ASAP(red.Graph)
	if err != nil {
		return nil, 0, false
	}
	// The extension only adds arcs, so s is a valid schedule of g; it still
	// must fit the model's [ASAP, ALAP(T)] windows over the ORIGINAL graph.
	lo, hi, err := schedule.WindowsIR(an.IR, g.Horizon())
	if err != nil {
		return nil, 0, false
	}
	for u := 0; u < g.NumNodes(); u++ {
		if s.Times[u] < lo[u] || s.Times[u] > hi[u] {
			return nil, 0, false
		}
	}
	// Widened lifetime intervals: value i occupies [birth_i+1−slack, k_i];
	// the model's interference graph of s is this closed-interval graph, an
	// interval graph whose chromatic number is its max overlap.
	type ev struct {
		at    int64
		delta int
	}
	var events []ev
	for i, u := range an.Values {
		birth := s.Times[u] + an.DelayW(i)
		kill := int64(-1) << 62
		for _, v := range an.Cons[i] {
			if r := s.Times[v] + g.Node(v).DelayR; r > kill {
				kill = r
			}
		}
		start := birth + 1 - slack
		if kill < start {
			continue // never widened-alive: interferes with nothing
		}
		events = append(events, ev{start, +1}, ev{kill + 1, -1})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return events[a].delta < events[b].delta // close before open at ties
	})
	cur, peak := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	if peak > R {
		return nil, 0, false
	}
	return schedule.New(g, s.Times), float64(s.Times[g.Bottom()]), true
}

func quickExactRS(ctx context.Context, g *ddg.Graph, t ddg.RegType) (int, error) {
	res, err := rs.Compute(ctx, g, t, rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
	if err != nil {
		return 0, err
	}
	return res.RS, nil
}
