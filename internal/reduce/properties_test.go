package reduce

import (
	"context"
	"math/rand"
	"testing"

	"regsat/internal/ddg"
	"regsat/internal/kernels"
	"regsat/internal/schedule"
)

func asapOf(t *testing.T, g *ddg.Graph) *schedule.Schedule {
	t.Helper()
	s, err := schedule.ASAP(g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestReductionIdempotent: reducing a graph already reduced to R must add
// nothing more (the RS pass leaves fitting DAGs untouched).
func TestReductionIdempotent(t *testing.T) {
	for _, name := range []string{"spec-swim", "liv-l2", "syn-wide8"} {
		g := kernels.ByNameMust(name).Build(ddg.Superscalar)
		R := exactRS(t, g, ddg.Float) - 1
		if R < 1 {
			continue
		}
		first, err := Heuristic(context.Background(), g, ddg.Float, R)
		if err != nil {
			t.Fatal(err)
		}
		if first.Spill {
			continue
		}
		second, err := Heuristic(context.Background(), first.Graph, ddg.Float, R)
		if err != nil {
			t.Fatal(err)
		}
		if len(second.Arcs) != 0 {
			t.Fatalf("%s: second reduction added %d arcs", name, len(second.Arcs))
		}
		if second.Graph != first.Graph {
			t.Fatalf("%s: second reduction replaced the graph", name)
		}
	}
}

// TestReductionMonotonicity: a tighter register budget can never yield a
// shorter critical path (exact reducer, small graphs).
func TestReductionMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow exhaustive check; skipped with -short")
	}
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 25 && checked < 8; trial++ {
		p := ddg.DefaultRandomParams(4 + rng.Intn(3))
		p.MaxLatency = 2
		g := ddg.RandomGraph(rng, p)
		rsv := exactRS(t, g, ddg.Float)
		if rsv < 3 {
			continue
		}
		var prevCP int64 = -1
		ok := true
		for R := rsv - 1; R >= 1 && ok; R-- {
			res, err := ExactCombinatorial(context.Background(), g, ddg.Float, R, ExactOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Spill || !res.Exact {
				ok = false
				continue
			}
			if prevCP >= 0 && res.CPAfter < prevCP {
				t.Fatalf("trial %d: CP decreased from %d to %d when tightening R to %d\n%s",
					trial, prevCP, res.CPAfter, R, g.Format())
			}
			prevCP = res.CPAfter
		}
		checked++
	}
	if checked < 4 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// TestReductionNeverIncreasesSaturation: adding serialization arcs restricts
// the schedule set, so RS can only shrink.
func TestReductionNeverIncreasesSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		p := ddg.DefaultRandomParams(4 + rng.Intn(5))
		p.MaxLatency = 3
		g := ddg.RandomGraph(rng, p)
		rsv := exactRS(t, g, ddg.Float)
		if rsv < 2 {
			continue
		}
		res, err := Heuristic(context.Background(), g, ddg.Float, rsv-1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Spill {
			continue
		}
		if after := exactRS(t, res.Graph, ddg.Float); after > rsv {
			t.Fatalf("trial %d: RS grew %d → %d after adding arcs", trial, rsv, after)
		}
	}
}

// TestSchedulesOfExtensionAreSchedulesOfOriginal: Σ(Ḡ) ⊆ Σ(G) — every
// schedule valid for the extension is valid for the original.
func TestSchedulesOfExtensionAreSchedulesOfOriginal(t *testing.T) {
	g := kernels.ByNameMust("liv-l2").Build(ddg.Superscalar)
	R := exactRS(t, g, ddg.Float) - 2
	res, err := ExactCombinatorial(context.Background(), g, ddg.Float, R, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spill {
		t.Skip("not reducible")
	}
	// ASAP of the extension must validate against the original graph.
	s := asapOf(t, res.Graph)
	orig := *s
	orig.G = g
	if err := orig.Validate(); err != nil {
		t.Fatalf("extension schedule invalid on original: %v", err)
	}
}
