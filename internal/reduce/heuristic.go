package reduce

import (
	"context"
	"fmt"

	"regsat/internal/ddg"
	"regsat/internal/rs"
)

// Heuristic reduces RS_t(G) below available registers with the iterative
// value-serialization heuristic of [14]: while the (Greedy-k) saturation
// exceeds R, pick two currently-saturating values (u, v) and serialize
// u before v, choosing the pair whose arcs increase the critical path least
// (ties: larger saturation drop, then lexicographic for determinism).
func Heuristic(ctx context.Context, g *ddg.Graph, t ddg.RegType, available int) (*Result, error) {
	return HeuristicFiltered(ctx, g, t, available, nil)
}

// HeuristicFiltered is Heuristic with a serialization filter: candidate
// pairs (u, v) for which allow returns false are never serialized. Global
// CFG analysis uses this to protect entry values, whose birth is pinned to
// the block entry and must not be delayed by added arcs.
func HeuristicFiltered(ctx context.Context, g *ddg.Graph, t ddg.RegType, available int, allow func(u, v int) bool) (*Result, error) {
	cur := g
	cpBefore := g.CriticalPath()
	var allArcs []ddg.SerialArc
	iterations := 0
	maxIter := len(g.Values(t))*len(g.Values(t)) + 8

	for {
		res, err := rs.Compute(ctx, cur, t, rs.Options{Method: rs.MethodGreedy, SkipWitness: true})
		if err != nil {
			return nil, err
		}
		if res.RS <= available {
			return &Result{
				Graph:      cur,
				Arcs:       allArcs,
				RS:         res.RS,
				CPBefore:   cpBefore,
				CPAfter:    cur.CriticalPath(),
				Iterations: iterations,
			}, nil
		}
		if iterations >= maxIter {
			return &Result{Graph: cur, Arcs: allArcs, RS: res.RS,
				CPBefore: cpBefore, CPAfter: cur.CriticalPath(),
				Spill: true, Iterations: iterations}, nil
		}
		iterations++

		// Candidate serializations among the saturating values.
		type cand struct {
			u, v    int
			arcs    []ddg.SerialArc
			cp      int64
			rsAfter int
		}
		var best *cand
		for _, u := range res.Antichain {
			for _, v := range res.Antichain {
				if u == v {
					continue
				}
				if allow != nil && !allow(u, v) {
					continue
				}
				arcs := ValueSerializationArcs(cur, t, u, v)
				if len(arcs) == 0 {
					continue
				}
				ext, err := ApplyArcs(cur, arcs)
				if err != nil {
					continue // would create a circuit
				}
				extRS, err := rs.Compute(ctx, ext, t, rs.Options{Method: rs.MethodGreedy, SkipWitness: true})
				if err != nil {
					continue
				}
				c := &cand{u: u, v: v, arcs: arcs, cp: ext.CriticalPath(), rsAfter: extRS.RS}
				if best == nil ||
					c.cp < best.cp ||
					(c.cp == best.cp && c.rsAfter < best.rsAfter) ||
					(c.cp == best.cp && c.rsAfter == best.rsAfter && (c.u < best.u || (c.u == best.u && c.v < best.v))) {
					best = c
				}
			}
		}
		if best == nil {
			// No serialization is possible: spilling unavoidable.
			return &Result{Graph: cur, Arcs: allArcs, RS: res.RS,
				CPBefore: cpBefore, CPAfter: cur.CriticalPath(),
				Spill: true, Iterations: iterations}, nil
		}
		ext, err := ApplyArcs(cur, best.arcs)
		if err != nil {
			return nil, fmt.Errorf("reduce: chosen serialization became invalid: %w", err)
		}
		allArcs = append(allArcs, best.arcs...)
		cur = ext
	}
}
