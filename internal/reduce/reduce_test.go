package reduce

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"regsat/internal/ddg"
	"regsat/internal/kernels"
	"regsat/internal/rs"
	"regsat/internal/schedule"
	"regsat/internal/solver"
)

func exactRS(t *testing.T, g *ddg.Graph, typ ddg.RegType) int {
	t.Helper()
	res, err := rs.Compute(context.Background(), g, typ, rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("exact RS capped")
	}
	return res.RS
}

func ilpParams() solver.Options {
	return solver.Options{MaxNodes: 300000, TimeLimit: 60 * time.Second}
}

func TestHeuristicFigure2(t *testing.T) {
	g := kernels.Figure2(ddg.Superscalar)
	if got := exactRS(t, g, ddg.Float); got != 4 {
		t.Fatalf("fig2 RS=%d, want 4", got)
	}
	res, err := Heuristic(context.Background(), g, ddg.Float, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spill {
		t.Fatal("unexpected spill")
	}
	if res.RS > 3 {
		t.Fatalf("reduced RS=%d, want ≤ 3", res.RS)
	}
	if exact := exactRS(t, res.Graph, ddg.Float); exact > 3 {
		t.Fatalf("true RS of reduced graph=%d, want ≤ 3", exact)
	}
	if len(res.Arcs) == 0 {
		t.Fatal("no arcs added")
	}
	// The long-latency value a gives plenty of slack: reducing 4→3 must not
	// stretch the critical path.
	if res.CPAfter != res.CPBefore {
		t.Fatalf("CP grew from %d to %d; the b/c/d serialization fits under a's latency",
			res.CPBefore, res.CPAfter)
	}
}

func TestHeuristicNoopWhenRSFits(t *testing.T) {
	g := kernels.Figure2(ddg.Superscalar)
	res, err := Heuristic(context.Background(), g, ddg.Float, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arcs) != 0 || res.Graph != g {
		t.Fatal("heuristic must not touch a graph whose RS already fits")
	}
}

func TestHeuristicSpillWhenImpossible(t *testing.T) {
	// s1 = a + b requires both operands alive at its read: RN ≥ 2 always.
	g := ddg.New("need2", ddg.Superscalar)
	a := g.AddNode("a", "load", 1)
	b := g.AddNode("b", "load", 1)
	s1 := g.AddNode("s1", "fadd", 1)
	g.SetWrites(a, ddg.Float, 0)
	g.SetWrites(b, ddg.Float, 0)
	g.SetWrites(s1, ddg.Float, 0)
	g.AddFlowEdge(a, s1, ddg.Float)
	g.AddFlowEdge(b, s1, ddg.Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := Heuristic(context.Background(), g, ddg.Float, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spill {
		t.Fatalf("want spill with R=1 (two operands must coexist), got RS=%d", res.RS)
	}
}

func TestExactCombinatorialFigure2(t *testing.T) {
	g := kernels.Figure2(ddg.Superscalar)
	res, err := ExactCombinatorial(context.Background(), g, ddg.Float, 3, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spill || !res.Exact {
		t.Fatalf("spill=%v exact=%v", res.Spill, res.Exact)
	}
	if res.RS > 3 {
		t.Fatalf("RS=%d, want ≤ 3", res.RS)
	}
	if res.CPAfter != res.CPBefore {
		t.Fatalf("optimal reduction must not stretch CP here: %d→%d", res.CPBefore, res.CPAfter)
	}
	if got := exactRS(t, res.Graph, ddg.Float); got != res.RS {
		t.Fatalf("RS(Ḡ)=%d but result says %d", got, res.RS)
	}
}

func TestExactReducesToEveryFeasibleR(t *testing.T) {
	g := kernels.Figure2(ddg.Superscalar)
	for _, R := range []int{1, 2, 3} {
		res, err := ExactCombinatorial(context.Background(), g, ddg.Float, R, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Spill {
			t.Fatalf("R=%d: unexpected spill", R)
		}
		if res.RS > R {
			t.Fatalf("R=%d: RS=%d", R, res.RS)
		}
		if got := exactRS(t, res.Graph, ddg.Float); got > R {
			t.Fatalf("R=%d: true RS(Ḡ)=%d", R, got)
		}
	}
}

func TestHeuristicNeverBeatsExactCPWhenSound(t *testing.T) {
	if testing.Short() {
		t.Skip("slow exhaustive check; skipped with -short")
	}
	// The heuristic may claim a smaller critical path when its Greedy-k
	// saturation estimate is optimistic (the paper's case ii.c). When its
	// extension *verifiably* fits R registers, the exact reduction must be
	// at least as good.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		p := ddg.DefaultRandomParams(4 + rng.Intn(4))
		p.MaxLatency = 2
		g := ddg.RandomGraph(rng, p)
		R := 2
		if exactRS(t, g, ddg.Float) <= R {
			continue
		}
		h, err := Heuristic(context.Background(), g, ddg.Float, R)
		if err != nil {
			t.Fatal(err)
		}
		e, err := ExactCombinatorial(context.Background(), g, ddg.Float, R, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if h.Spill || e.Spill || !e.Exact {
			continue
		}
		if exactRS(t, h.Graph, ddg.Float) > R {
			continue // heuristic over-claimed: its CP is not comparable
		}
		if h.CPAfter < e.CPAfter {
			t.Fatalf("trial %d: heuristic CP %d < exact CP %d (exactness violated)\n%s",
				trial, h.CPAfter, e.CPAfter, g.Format())
		}
	}
}

// TestTheorem42Construction checks the constructive proof: for any valid
// schedule σ, the extension built from σ's lifetime order is an acyclic DAG
// in which σ stays valid, with RN_σ ≤ RS(Ḡ) ≤ RN⁺_σ (the strict-interference
// need; on offset-free machines the latency-1 arcs can only pin strictly
// separated lifetimes, so touching pairs may stay free) and critical path
// ≤ makespan(σ).
func TestTheorem42Construction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		p := ddg.DefaultRandomParams(3 + rng.Intn(5))
		p.MaxLatency = 3
		g := ddg.RandomGraph(rng, p)
		// Random valid schedule: ASAP plus random slack, repaired forward.
		s := randomValidSchedule(t, rng, g)
		rn := s.RegisterNeed(ddg.Float)
		// Strict-interference need: touching lifetimes count as overlapping.
		ivs := s.Lifetimes(ddg.Float)
		for i := range ivs {
			if !ivs[i].Empty() {
				ivs[i].End += StrictSlack(g)
			}
		}
		rnStrict := schedule.MaxLive(ivs)
		arcs, err := SerializationArcs(g, ddg.Float, s)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := ApplyArcs(g, arcs)
		if err != nil {
			t.Fatalf("trial %d: superscalar extension must stay acyclic: %v", trial, err)
		}
		// σ remains valid in the extended graph (Σ(Ḡ) ∋ σ).
		s2 := schedule.New(ext, s.Times)
		if err := s2.Validate(); err != nil {
			t.Fatalf("trial %d: driving schedule invalid in extension: %v", trial, err)
		}
		got := exactRS(t, ext, ddg.Float)
		if got < rn || got > rnStrict {
			t.Fatalf("trial %d: RS(Ḡ)=%d outside [RN_σ=%d, RN⁺_σ=%d]\n%s",
				trial, got, rn, rnStrict, g.Format())
		}
		if cp := ext.CriticalPath(); cp > s.Makespan() {
			t.Fatalf("trial %d: CP(Ḡ)=%d > makespan %d", trial, cp, s.Makespan())
		}
	}
}

func randomValidSchedule(t *testing.T, rng *rand.Rand, g *ddg.Graph) *schedule.Schedule {
	t.Helper()
	asap, err := schedule.ASAP(g)
	if err != nil {
		t.Fatal(err)
	}
	dg := g.ToDigraph()
	order, err := dg.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	times := make([]int64, g.NumNodes())
	for _, u := range order {
		earliest := asap.Times[u]
		for _, ei := range dg.InEdges(u) {
			e := dg.Edge(ei)
			if tt := times[e.From] + e.Weight; tt > earliest {
				earliest = tt
			}
		}
		times[u] = earliest + rng.Int63n(3)
	}
	s := schedule.New(g, times)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExactILPMatchesCombinatorial(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	checked := 0
	for trial := 0; trial < 40 && checked < 6; trial++ {
		p := ddg.DefaultRandomParams(3 + rng.Intn(3))
		p.MaxLatency = 2
		g := ddg.RandomGraph(rng, p)
		R := 2
		if rsv := exactRS(t, g, ddg.Float); rsv <= R || len(g.Values(ddg.Float)) > 5 {
			continue
		}
		comb, err := ExactCombinatorial(context.Background(), g, ddg.Float, R, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ilpRes, err := ExactILP(context.Background(), g, ddg.Float, R, ILPOptions{Solver: ilpParams(), ApplyReductions: true})
		if err != nil {
			t.Fatal(err)
		}
		if comb.Spill {
			// Truly impossible ⇒ the (more conservative) intLP must agree.
			if !ilpRes.Spill {
				t.Fatalf("trial %d: combinatorial spills but intLP found a reduction", trial)
			}
			continue
		}
		if ilpRes.Spill || !comb.Exact || !ilpRes.Exact {
			continue // strict intLP interference may be conservative on ties
		}
		// Both are valid reductions; the combinatorial search is the true
		// optimum, and the strict intLP can only be equal or worse.
		if ilpRes.CPAfter < comb.CPAfter {
			t.Fatalf("trial %d: intLP CP=%d beats combinatorial optimum CP=%d\n%s",
				trial, ilpRes.CPAfter, comb.CPAfter, g.Format())
		}
		if ilpRes.RS > R || comb.RS > R {
			t.Fatalf("trial %d: reduction exceeded R", trial)
		}
		checked++
	}
	if checked < 3 {
		t.Fatalf("only %d cross-checks completed", checked)
	}
}

func TestExactILPSpillDetection(t *testing.T) {
	g := ddg.New("need2", ddg.Superscalar)
	a := g.AddNode("a", "load", 1)
	b := g.AddNode("b", "load", 1)
	s1 := g.AddNode("s1", "fadd", 1)
	g.SetWrites(a, ddg.Float, 0)
	g.SetWrites(b, ddg.Float, 0)
	g.SetWrites(s1, ddg.Float, 0)
	g.AddFlowEdge(a, s1, ddg.Float)
	g.AddFlowEdge(b, s1, ddg.Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := ExactILP(context.Background(), g, ddg.Float, 1, ILPOptions{Solver: ilpParams()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spill {
		t.Fatal("want spill with R=1")
	}
}

func TestReductionOnKernelSuite(t *testing.T) {
	// Every kernel must be reducible to RS-1 registers (or report spill)
	// with the heuristic. The heuristic's own claim must hold (greedy RS of
	// the extension ≤ R); the *true* saturation may occasionally exceed R
	// when Greedy-k under-estimates (the paper's sub-optimal cases), but
	// adding arcs must never increase the saturation.
	overClaims := 0
	cases := 0
	for _, spec := range kernels.All() {
		g := spec.Build(ddg.Superscalar)
		for _, typ := range g.Types() {
			rsv := exactRS(t, g, typ)
			if rsv < 2 {
				continue
			}
			R := rsv - 1
			res, err := Heuristic(context.Background(), g, typ, R)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, typ, err)
			}
			if res.Spill {
				continue // legitimate when R below the minimum possible need
			}
			cases++
			if res.RS > R {
				t.Fatalf("%s/%s: heuristic returned RS=%d > R=%d without spill",
					spec.Name, typ, res.RS, R)
			}
			got := exactRS(t, res.Graph, typ)
			if got > rsv {
				t.Fatalf("%s/%s: adding arcs increased saturation %d → %d",
					spec.Name, typ, rsv, got)
			}
			if got > R {
				overClaims++
			}
			if res.CPAfter < res.CPBefore {
				t.Fatalf("%s/%s: CP shrank?!", spec.Name, typ)
			}
		}
	}
	if cases == 0 {
		t.Fatal("no reduction cases exercised")
	}
	if overClaims*4 > cases {
		t.Fatalf("Greedy-k over-claimed on %d/%d reductions — far from 'nearly optimal'",
			overClaims, cases)
	}
}

func TestVLIWSerializationLatencies(t *testing.T) {
	g := kernels.Figure2(ddg.VLIW)
	// On VLIW, arcs carry δr(u′) − δw(v) which is typically non-positive.
	a := g.NodeByName("a")
	sa := g.NodeByName("sa")
	_ = sa
	arcs := ValueSerializationArcs(g, ddg.Float, a, g.NodeByName("b"))
	if len(arcs) == 0 {
		t.Fatal("no arcs")
	}
	for _, arc := range arcs {
		want := g.Node(arc.From).DelayR - g.Node(arc.To).DelayW(ddg.Float)
		if arc.Latency != want {
			t.Fatalf("VLIW arc latency=%d, want δr−δw=%d", arc.Latency, want)
		}
	}
	gs := kernels.Figure2(ddg.Superscalar)
	for _, arc := range ValueSerializationArcs(gs, ddg.Float, gs.NodeByName("a"), gs.NodeByName("b")) {
		if arc.Latency != 1 {
			t.Fatalf("superscalar arc latency=%d, want 1", arc.Latency)
		}
	}
}

func TestVLIWReductionKeepsDAG(t *testing.T) {
	for _, spec := range kernels.All() {
		g := spec.Build(ddg.VLIW)
		for _, typ := range g.Types() {
			rsv := exactRS(t, g, typ)
			if rsv < 2 {
				continue
			}
			res, err := Heuristic(context.Background(), g, typ, rsv-1)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, typ, err)
			}
			if res.Spill {
				continue
			}
			if !res.Graph.ToDigraph().IsDAG() {
				t.Fatalf("%s/%s: reduced VLIW graph has a circuit", spec.Name, typ)
			}
		}
	}
}
