// Package reduce implements register saturation reduction (Section 4 of the
// paper): when RS_t(G) exceeds the available registers R_t, add serialization
// arcs to build an extended DDG Ḡ = G ∪ E̅ with RS_t(Ḡ) ≤ R_t while
// increasing the critical path as little as possible. The ReduceRS decision
// problem is NP-hard (Theorem 4.2); this package provides:
//
//   - the value-serialization heuristic of [14],
//   - an exact combinatorial solver (branch-and-bound over schedules with
//     bounded register need — the SRC problem the NP-hardness proof reduces
//     from),
//   - the paper's exact intLP (Section 4: graph coloring with R_t colors,
//     minimizing σ_⊥),
//
// all sharing the constructive arc insertion of the Theorem 4.2 proof.
package reduce

import (
	"fmt"
	"sort"

	"regsat/internal/ddg"
	"regsat/internal/graph"
	"regsat/internal/ir"
	"regsat/internal/schedule"
)

// serializationLatency returns the latency of an added arc (u′, v) per the
// proof of Theorem 4.2: 1 for sequential-semantics superscalar code,
// δr(u′) − δw(v) for VLIW/EPIC codes with visible offsets.
func serializationLatency(g *ddg.Graph, t ddg.RegType, uPrime, v int) int64 {
	if !g.Machine.HasOffsets() {
		return 1
	}
	return g.Node(uPrime).DelayR - g.Node(v).DelayW(t)
}

// ValueSerializationArcs returns the arcs that force value u's lifetime to
// end before value v's starts in every schedule ("value serialization" u≺v):
// arcs from every consumer of u (except v itself, when v consumes u) to v.
func ValueSerializationArcs(g *ddg.Graph, t ddg.RegType, u, v int) []ddg.SerialArc {
	var arcs []ddg.SerialArc
	for _, uPrime := range g.Cons(u, t) {
		if uPrime == v {
			continue
		}
		arcs = append(arcs, ddg.SerialArc{
			From:    uPrime,
			To:      v,
			Latency: serializationLatency(g, t, uPrime, v),
		})
	}
	return arcs
}

// StrictSlack returns the separation the arc construction needs between a
// death and a birth for the pair to be serializable on this machine: on
// zero-offset machines the arcs carry latency 1 (the paper's sequential
// superscalar semantics), so only *strictly* ordered pairs (death < birth)
// can be serialized consistently with the driving schedule; on VLIW/EPIC the
// δr−δw latencies encode the order exactly and no slack is needed.
func StrictSlack(g *ddg.Graph) int64 {
	if g.Machine.HasOffsets() {
		return 0
	}
	return 1
}

// Serializable reports whether the lifetime order LT_σ(u) ≺ LT_σ(v) holding
// under σ can be *pinned* by the value-serialization arcs consistently with
// σ itself. The arcs run from every reader of u except v to v, so:
//
//   - when v consumes u, v stays the last reader (the lifetimes touch:
//     death(u) = birth(v)); the other readers must read (strictly, on
//     zero-offset machines whose arcs carry latency 1) before v's birth,
//     and on offset machines v's own read must not outlive v's write
//     (δr(v) ≤ δw(v));
//   - when v is independent of u, u's death must precede v's birth with the
//     machine's strictness slack.
func Serializable(g *ddg.Graph, t ddg.RegType, s *schedule.Schedule, u, v int) bool {
	slack := StrictSlack(g)
	cons := g.Cons(u, t)
	vConsumes := false
	maxOtherRead := int64(-1) << 62
	for _, c := range cons {
		if c == v {
			vConsumes = true
			continue
		}
		if r := s.Times[c] + g.Node(c).DelayR; r > maxOtherRead {
			maxOtherRead = r
		}
	}
	birthV := s.Times[v] + g.Node(v).DelayW(t)
	if vConsumes {
		if g.Machine.HasOffsets() && g.Node(v).DelayR > g.Node(v).DelayW(t) {
			return false // v's own read would outlive v's write
		}
		return maxOtherRead == int64(-1)<<62 || maxOtherRead+slack <= birthV
	}
	return s.Lifetime(u, t).End+slack <= birthV
}

// SerializationArcs performs the constructive step of the Theorem 4.2 proof:
// given a schedule σ of G, emit serialization arcs that force, for every
// serializable value pair ordered under σ, the same lifetime order in every
// schedule of the extended graph. Arcs already implied by longest paths are
// skipped (they would be redundant scheduling constraints). The driving
// schedule σ always remains valid in the extension.
func SerializationArcs(g *ddg.Graph, t ddg.RegType, s *schedule.Schedule) ([]ddg.SerialArc, error) {
	// The interned snapshot supplies the longest paths (and, when the graph
	// was already analyzed — always, in the reduction searches — the values
	// and consumer sets) without recomputation.
	snap, err := ir.Intern(g)
	if err != nil {
		return nil, err
	}
	var values []int
	if tbl := snap.Table(t); tbl != nil {
		values = tbl.Values
	}
	intervals := make(map[int]schedule.Interval, len(values))
	for _, u := range values {
		intervals[u] = s.Lifetime(u, t)
	}
	ap := snap.AP
	var arcs []ddg.SerialArc
	seen := map[[2]int]bool{}
	for _, u := range values {
		for _, v := range values {
			if u == v {
				continue
			}
			// LT_σ(u) ≺ LT_σ(v), pinnable consistently with σ.
			if intervals[u].End > intervals[v].Start || !Serializable(g, t, s, u, v) {
				continue
			}
			for _, a := range ValueSerializationArcs(g, t, u, v) {
				key := [2]int{a.From, a.To}
				if a.From == a.To || seen[key] {
					continue
				}
				// Skip arcs implied by existing longest paths.
				if lp := ap.Path(a.From, a.To); lp != graph.NoPath && lp >= a.Latency {
					continue
				}
				seen[key] = true
				arcs = append(arcs, a)
			}
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
	return arcs, nil
}

// ApplyArcs extends g with the arcs and validates the result is still a DAG
// (the paper's topological-sort requirement: non-positive circuits, possible
// on VLIW/EPIC, must be rejected).
func ApplyArcs(g *ddg.Graph, arcs []ddg.SerialArc) (*ddg.Graph, error) {
	ext := g.Extend(arcs)
	if !ext.ToDigraph().IsDAG() {
		return nil, fmt.Errorf("reduce: extension of %s creates a circuit (VLIW offsets)", g.Name)
	}
	return ext, nil
}
