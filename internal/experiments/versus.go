package experiments

import (
	"context"
	"fmt"

	"regsat/internal/reduce"
	"regsat/internal/rs"
)

// VersusRow is one instance of experiment E7 (§6: minimize or saturate?).
type VersusRow struct {
	Case string
	RS   int
	R    int
	// The RS approach: arcs added and ILP loss when reducing only to R.
	SatArcs int
	SatILP  int64
	SatRS   int // saturation kept (register-use freedom 1..SatRS)
	// The minimization approach: drive the need as low as the critical
	// path allows, regardless of R.
	MinArcs int
	MinILP  int64
	MinRS   int
}

// VersusSummary aggregates E7.
type VersusSummary struct {
	Rows []VersusRow
	// ZeroPressureCases: RS ≤ R, where the RS approach adds nothing while
	// minimization still serializes (the paper's first §6 argument).
	ZeroPressureCases  int
	MinArcsInZeroCases int
	// TightCases: RS > R, where both must act; the RS approach should add
	// fewer arcs and keep a higher usable-register ceiling.
	TightCases       int
	SatFewerArcs     int
	SatHigherFreedom int
}

// Versus runs E7 with a register budget R = RS − 1 for the tight rows and
// R = RS for the zero-pressure rows, emulating a minimizing pass by reducing
// to the smallest budget that does not stretch the critical path (the
// "minimize under critical-path constraint" strategy of Figure 2(b)).
func Versus(ctx context.Context, p Population) (*VersusSummary, error) {
	sum := &VersusSummary{}
	for _, c := range p.Cases() {
		base, err := rs.Compute(ctx, c.Graph, c.Type, rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
		if err != nil {
			return nil, err
		}
		if !base.Exact || base.RS < 2 {
			continue
		}
		minRes := minimizeUnderCP(ctx, c, base.RS)

		// Zero-pressure row: R = RS.
		sum.ZeroPressureCases++
		if minRes != nil {
			sum.MinArcsInZeroCases += len(minRes.Arcs)
		}

		// Tight row: R = RS − 1.
		R := base.RS - 1
		sat, err := reduce.Heuristic(ctx, c.Graph, c.Type, R)
		if err != nil {
			return nil, err
		}
		if sat.Spill || minRes == nil {
			continue
		}
		row := VersusRow{
			Case: c.Name, RS: base.RS, R: R,
			SatArcs: len(sat.Arcs), SatILP: sat.CPAfter - sat.CPBefore, SatRS: sat.RS,
			MinArcs: len(minRes.Arcs), MinILP: minRes.CPAfter - minRes.CPBefore, MinRS: minRes.RS,
		}
		sum.Rows = append(sum.Rows, row)
		sum.TightCases++
		if row.SatArcs <= row.MinArcs {
			sum.SatFewerArcs++
		}
		if row.SatRS >= row.MinRS {
			sum.SatHigherFreedom++
		}
	}
	return sum, nil
}

// minimizeUnderCP reduces to ever-smaller budgets while the critical path is
// preserved, returning the last success (the minimizing pass of Figure 2(b)).
func minimizeUnderCP(ctx context.Context, c Case, rsInit int) *reduce.Result {
	cp := c.Graph.CriticalPath()
	var best *reduce.Result
	for r := rsInit - 1; r >= 1; r-- {
		red, err := reduce.Heuristic(ctx, c.Graph, c.Type, r)
		if err != nil || red.Spill || red.CPAfter > cp {
			break
		}
		best = red
	}
	return best
}

// Report renders the E7 tables.
func (s *VersusSummary) Report() string {
	out := "E7 — minimize or saturate the register need? (paper §6)\n\n"
	t := NewTable("case", "RS", "R", "sat arcs", "sat ILP", "sat RS", "min arcs", "min ILP", "min RS")
	for _, r := range s.Rows {
		t.Add(r.Case, r.RS, r.R, r.SatArcs, r.SatILP, r.SatRS, r.MinArcs, r.MinILP, r.MinRS)
	}
	out += t.String() + "\n"
	out += fmt.Sprintf("zero-pressure cases (RS ≤ R): %d — the RS approach adds 0 arcs in every one;\n",
		s.ZeroPressureCases)
	out += fmt.Sprintf("  a minimizing pass would still add %d arcs in total.\n", s.MinArcsInZeroCases)
	out += fmt.Sprintf("tight cases (RS > R): %d — saturation adds fewer (or equal) arcs in %s,\n",
		s.TightCases, Pct(s.SatFewerArcs, s.TightCases))
	out += fmt.Sprintf("  and preserves at least as much register-use freedom in %s.\n",
		Pct(s.SatHigherFreedom, s.TightCases))
	return out
}
