package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"regsat/internal/ddg"
	"regsat/internal/solver"
)

func smallPop() Population {
	return Population{Machine: ddg.Superscalar, RandomGraphs: 6, Seed: 11, MaxValues: 10}
}

func TestPopulationDeterministic(t *testing.T) {
	a := smallPop().Cases()
	b := smallPop().Cases()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("population sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("population not deterministic")
		}
	}
}

func TestPopulationMaxValuesFilter(t *testing.T) {
	p := smallPop()
	p.MaxValues = 5
	for _, c := range p.Cases() {
		if len(c.Graph.Values(c.Type)) > 5 {
			t.Fatalf("case %s exceeds MaxValues", c.Name)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("a", "bb")
	tab.Add(1, "xyz")
	out := tab.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "xyz") {
		t.Fatalf("table output wrong:\n%s", out)
	}
	if Pct(1, 4) != "25.00%" || Pct(0, 0) != "n/a" {
		t.Fatal("Pct wrong")
	}
}

func TestE2Figure2(t *testing.T) {
	res, err := Figure2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialRS != 4 {
		t.Fatalf("initial RS=%d, want 4 (the paper's Figure 2)", res.InitialRS)
	}
	if res.ReducedRS > 3 {
		t.Fatalf("reduced RS=%d, want ≤ 3", res.ReducedRS)
	}
	if res.MinimalRS >= res.ReducedRS {
		t.Fatalf("minimization should land below RS reduction: min=%d sat=%d",
			res.MinimalRS, res.ReducedRS)
	}
	if res.MinimalArcs <= res.ReducedArcs {
		t.Fatalf("minimization must add more arcs: min=%d sat=%d",
			res.MinimalArcs, res.ReducedArcs)
	}
	if res.ArcsWhenFits != 0 {
		t.Fatalf("RS pass added %d arcs when RS fits", res.ArcsWhenFits)
	}
	if !strings.Contains(res.Report(), "Figure 2") {
		t.Fatal("report missing")
	}
}

func TestE3RSOptimality(t *testing.T) {
	sum, err := RSOptimality(smallPop())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total < 20 {
		t.Fatalf("only %d instances", sum.Total)
	}
	// The paper's shape: error at most 1, and optimal in the vast majority.
	if sum.MaxError > 1 {
		t.Fatalf("greedy error %d > 1 contradicts the paper's shape", sum.MaxError)
	}
	if sum.ExactHit*10 < sum.Total*8 {
		t.Fatalf("greedy optimal only %d/%d — far below 'nearly optimal'",
			sum.ExactHit, sum.Total)
	}
	if !strings.Contains(sum.Report(), "E3") {
		t.Fatal("report missing")
	}
}

func TestE4ReduceOptimality(t *testing.T) {
	if testing.Short() {
		t.Skip("slow exhaustive check; skipped with -short")
	}
	p := smallPop()
	p.MaxValues = 8 // keep exact reduction quick in tests
	sum, err := ReduceOptimality(context.Background(), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total < 10 {
		t.Fatalf("only %d classified instances", sum.Total)
	}
	// Shape: case i.a dominates.
	if sum.Counts[ClassIA]*2 < sum.Total {
		t.Fatalf("i.a=%d of %d — the dominant case should be at least half",
			sum.Counts[ClassIA], sum.Total)
	}
	// ClassIII should stay rare (paper: impossible for its optimal).
	if sum.Counts[ClassIII]*10 > sum.Total {
		t.Fatalf("iii=%d of %d — boundary class too common", sum.Counts[ClassIII], sum.Total)
	}
	if !strings.Contains(sum.Report(), "72.22%") {
		t.Fatal("report should cite the paper's numbers")
	}
}

func TestE5ModelSize(t *testing.T) {
	sum, err := ModelSize(smallPop())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) == 0 {
		t.Fatal("no rows")
	}
	// O(n²) vars and O(m+n²) constraints: fitted constants stay small.
	if sum.MaxVarRatio > 6 || sum.MaxConstrRatio > 12 {
		t.Fatalf("fitted constants too large: vars/n²=%.2f constrs/(m+n²)=%.2f",
			sum.MaxVarRatio, sum.MaxConstrRatio)
	}
	// The time-indexed baseline must be strictly larger on the big cases.
	larger := 0
	for _, r := range sum.Rows {
		if r.TIVars > int64(r.Vars) {
			larger++
		}
	}
	if larger*3 < len(sum.Rows)*2 {
		t.Fatalf("time-indexed model smaller than ours in most cases (%d/%d larger)",
			larger, len(sum.Rows))
	}
	if !strings.Contains(sum.Report(), "E5") {
		t.Fatal("report missing")
	}
}

func TestE6Timing(t *testing.T) {
	p := smallPop()
	p.RandomGraphs = 0
	sum, err := Timing(context.Background(), p, 5, solver.Options{MaxNodes: 50000, TimeLimit: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) == 0 {
		t.Fatal("no rows")
	}
	if !strings.Contains(sum.Report(), "greedy") {
		t.Fatal("report missing")
	}
}

func TestE7Versus(t *testing.T) {
	p := smallPop()
	p.MaxValues = 9
	sum, err := Versus(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TightCases == 0 || sum.ZeroPressureCases == 0 {
		t.Fatal("no cases")
	}
	// §6's claims: saturation adds fewer-or-equal arcs and keeps at least
	// as much freedom, in the strong majority of cases.
	if sum.SatFewerArcs*4 < sum.TightCases*3 {
		t.Fatalf("saturation added fewer arcs in only %d/%d", sum.SatFewerArcs, sum.TightCases)
	}
	if sum.SatHigherFreedom*4 < sum.TightCases*3 {
		t.Fatalf("saturation preserved freedom in only %d/%d", sum.SatHigherFreedom, sum.TightCases)
	}
	if !strings.Contains(sum.Report(), "E7") {
		t.Fatal("report missing")
	}
}

func TestE8Theorem42(t *testing.T) {
	p := smallPop()
	p.RandomGraphs = 4
	sum, err := Theorem42(context.Background(), p, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Schedules == 0 {
		t.Fatal("no schedules sampled")
	}
	if len(sum.Failures) > 0 {
		t.Fatalf("Theorem 4.2 violations:\n%s", strings.Join(sum.Failures, "\n"))
	}
	if sum.Sandwich != sum.DAGPreserved || sum.CPBounded != sum.DAGPreserved {
		t.Fatalf("sandwich %d / CP %d of %d", sum.Sandwich, sum.CPBounded, sum.DAGPreserved)
	}
}

func TestE1Pipeline(t *testing.T) {
	p := smallPop()
	p.RandomGraphs = 0
	sum, err := Pipeline(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) < 15 {
		t.Fatalf("only %d pipeline rows", len(sum.Rows))
	}
	for _, r := range sum.Rows {
		if r.RegsUsed > r.R {
			t.Fatalf("%s: used %d > budget %d", r.Case, r.RegsUsed, r.R)
		}
	}
	if !strings.Contains(sum.Report(), "E1") {
		t.Fatal("report missing")
	}
}

func TestVLIWPopulationRuns(t *testing.T) {
	p := Population{Machine: ddg.VLIW, RandomGraphs: 0, MaxValues: 10}
	sum, err := RSOptimality(p)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total == 0 {
		t.Fatal("no VLIW cases")
	}
	if sum.MaxError > 1 {
		t.Fatalf("VLIW greedy error %d > 1", sum.MaxError)
	}
}
