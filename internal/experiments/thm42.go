package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"regsat/internal/ddg"
	"regsat/internal/ir"
	"regsat/internal/reduce"
	"regsat/internal/rs"
	"regsat/internal/schedule"
)

// Thm42Summary is experiment E8: empirical verification of the Theorem 4.2
// construction across the population, with several schedules per graph.
type Thm42Summary struct {
	Schedules int
	// Equal counts instances with RS(Ḡ) = RN_σ exactly (guaranteed on
	// offset machines; on zero-offset machines touching lifetimes may
	// leave RS(Ḡ) between RN_σ and the strict-interference need).
	Equal int
	// Sandwich counts instances with RN_σ ≤ RS(Ḡ) ≤ RN⁺_σ.
	Sandwich int
	// CPBounded counts instances with CP(Ḡ) ≤ makespan(σ).
	CPBounded int
	// DAGPreserved counts extensions that admit a topological sort.
	DAGPreserved int
	Failures     []string
}

// Theorem42 runs E8: for every case, drive the construction with ASAP, ALAP
// and randomized schedules and verify the proof's guarantees.
func Theorem42(ctx context.Context, p Population, schedulesPerCase int, seed int64) (*Thm42Summary, error) {
	if schedulesPerCase <= 0 {
		schedulesPerCase = 3
	}
	rng := rand.New(rand.NewSource(seed))
	sum := &Thm42Summary{}
	for _, c := range p.Cases() {
		scheds, err := sampleSchedules(c.Graph, schedulesPerCase, rng)
		if err != nil {
			return nil, err
		}
		for _, s := range scheds {
			sum.Schedules++
			rn := s.RegisterNeed(c.Type)
			rnStrict := strictNeed(c.Graph, s, c.Type)
			arcs, err := reduce.SerializationArcs(c.Graph, c.Type, s)
			if err != nil {
				sum.Failures = append(sum.Failures, fmt.Sprintf("%s: arcs: %v", c.Name, err))
				continue
			}
			ext, err := reduce.ApplyArcs(c.Graph, arcs)
			if err != nil {
				// Non-positive circuit: legal failure mode on VLIW/EPIC,
				// the paper excludes such solutions.
				continue
			}
			sum.DAGPreserved++
			res, err := rs.Compute(ctx, ext, c.Type, rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
			if err != nil || !res.Exact {
				continue
			}
			if res.RS == rn {
				sum.Equal++
			}
			if rn <= res.RS && res.RS <= rnStrict {
				sum.Sandwich++
			} else {
				sum.Failures = append(sum.Failures,
					fmt.Sprintf("%s: RS(Ḡ)=%d outside [%d,%d]", c.Name, res.RS, rn, rnStrict))
			}
			if ext.CriticalPath() <= s.Makespan() {
				sum.CPBounded++
			} else {
				sum.Failures = append(sum.Failures,
					fmt.Sprintf("%s: CP(Ḡ)=%d > makespan=%d", c.Name, ext.CriticalPath(), s.Makespan()))
			}
		}
	}
	return sum, nil
}

func strictNeed(g *ddg.Graph, s *schedule.Schedule, t ddg.RegType) int {
	ivs := s.Lifetimes(t)
	slack := reduce.StrictSlack(g)
	for i := range ivs {
		if !ivs[i].Empty() {
			ivs[i].End += slack
		}
	}
	return schedule.MaxLive(ivs)
}

func sampleSchedules(g *ddg.Graph, count int, rng *rand.Rand) ([]*schedule.Schedule, error) {
	snap, err := ir.Intern(g)
	if err != nil {
		return nil, err
	}
	var out []*schedule.Schedule
	asap := schedule.ASAPIR(snap)
	out = append(out, asap)
	if alap, err := schedule.ALAPIR(snap, g.Horizon()); err == nil {
		out = append(out, alap)
	}
	for len(out) < count {
		times := make([]int64, g.NumNodes())
		for _, u := range snap.Topo {
			earliest := asap.Times[u]
			dst, wt := snap.Rev.Row(u)
			for i, from := range dst {
				if tt := times[from] + wt[i]; tt > earliest {
					earliest = tt
				}
			}
			times[u] = earliest + rng.Int63n(3)
		}
		s := schedule.New(g, times)
		if s.Validate() == nil {
			out = append(out, s)
		}
	}
	return out, nil
}

// Report renders the E8 summary.
func (s *Thm42Summary) Report() string {
	out := "E8 — Theorem 4.2 construction verification\n\n"
	t := NewTable("property", "holds", "out of")
	t.Add("extension admits topological sort", s.DAGPreserved, s.Schedules)
	t.Add("RN_σ ≤ RS(Ḡ) ≤ RN⁺_σ", s.Sandwich, s.DAGPreserved)
	t.Add("RS(Ḡ) = RN_σ exactly", s.Equal, s.DAGPreserved)
	t.Add("CP(Ḡ) ≤ makespan(σ)", s.CPBounded, s.DAGPreserved)
	out += t.String()
	if len(s.Failures) > 0 {
		out += "\nFAILURES:\n"
		for _, f := range s.Failures {
			out += "  " + f + "\n"
		}
	} else {
		out += "\nno violations observed\n"
	}
	return out
}
