// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md, "Per-experiment index"):
//
//	E1  the Figure 1 pipeline end-to-end on the kernel suite
//	E2  the Figure 2 example (saturate vs minimize on the 4-value DAG)
//	E3  §5 RS-computation optimality (Greedy-k vs exact)
//	E4  §5 RS-reduction optimality (the five-case percentage breakdown)
//	E5  §3 intLP model size vs the time-indexed literature baseline
//	E6  §5 heuristic-vs-exact solve-time contrast
//	E7  §6 minimize-vs-saturate discussion quantified
//	E8  Theorem 4.2 construction verification
//
// Each experiment returns printable rows plus a summary; cmd/rsbench and
// the top-level benchmarks drive them.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"regsat/internal/ddg"
	"regsat/internal/kernels"
)

// Population is the DAG population an experiment runs on: the full kernel
// suite plus optional random loop bodies for statistical weight.
type Population struct {
	Machine ddg.MachineKind
	// RandomGraphs adds this many random layered DAGs to the suite.
	RandomGraphs int
	Seed         int64
	// MaxValues skips graphs whose per-type value count exceeds this bound
	// (keeps exact methods tractable); 0 = no bound.
	MaxValues int
}

// Case is one (graph, register type) instance of a population.
type Case struct {
	Name  string
	Graph *ddg.Graph
	Type  ddg.RegType
}

// Cases materializes the population deterministically.
func (p Population) Cases() []Case {
	var out []Case
	add := func(name string, g *ddg.Graph) {
		for _, t := range g.Types() {
			if p.MaxValues > 0 && len(g.Values(t)) > p.MaxValues {
				continue
			}
			if len(g.Values(t)) == 0 {
				continue
			}
			out = append(out, Case{Name: fmt.Sprintf("%s/%s", name, t), Graph: g, Type: t})
		}
	}
	for _, spec := range kernels.All() {
		add(spec.Name, spec.Build(p.Machine))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for i := 0; i < p.RandomGraphs; i++ {
		params := ddg.DefaultRandomParams(6 + rng.Intn(6))
		params.Machine = p.Machine
		params.MaxLatency = 4
		g := ddg.RandomGraph(rng, params)
		g.Name = fmt.Sprintf("rand%02d", i)
		add(g.Name, g)
	}
	return out
}

// Table is a simple fixed-width text table builder for experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Add appends a row (values are formatted with %v).
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Pct formats a ratio as a percentage string.
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(num)/float64(den))
}
