package experiments

import (
	"fmt"

	"regsat/internal/rs"
)

// ModelSizeRow is one instance of experiment E5 (§3 model-size claim).
type ModelSizeRow struct {
	Case   string
	N, M   int // nodes, edges
	Values int
	// Our intLP (with the §3 model optimizations applied).
	Vars, IntVars, Constrs int
	RedundantArcs          int
	NeverAlivePairs        int
	// The same without optimizations.
	RawVars, RawConstrs int
	// Time-indexed literature baseline for the same instance.
	TIVars, TIConstrs int64
	// Fitted constants: Vars/n², Constrs/(m+n²) — bounded if the paper's
	// complexity claim holds.
	VarRatio, ConstrRatio float64
}

// ModelSizeSummary aggregates E5.
type ModelSizeSummary struct {
	Rows []ModelSizeRow
	// MaxVarRatio and MaxConstrRatio are the largest fitted constants —
	// finite, size-independent values support O(n²) and O(m+n²).
	MaxVarRatio, MaxConstrRatio float64
}

// ModelSize runs E5: build the §3 intLP for every case and compare its size
// with the time-indexed baseline.
func ModelSize(p Population) (*ModelSizeSummary, error) {
	sum := &ModelSizeSummary{}
	for _, c := range p.Cases() {
		an, err := rs.NewAnalysis(c.Graph, c.Type)
		if err != nil {
			return nil, err
		}
		_, _, info, err := rs.BuildSaturationModel(an, true)
		if err != nil {
			return nil, err
		}
		_, _, rawInfo, err := rs.BuildSaturationModel(an, false)
		if err != nil {
			return nil, err
		}
		tiVars, tiConstrs := rs.TimeIndexedStats(c.Graph, c.Type)
		n, m := c.Graph.NumNodes(), c.Graph.NumEdges()
		row := ModelSizeRow{
			Case: c.Name, N: n, M: m, Values: len(an.Values),
			Vars: info.Vars, IntVars: info.IntVars, Constrs: info.Constrs,
			RedundantArcs: info.RedundantArcs, NeverAlivePairs: info.NeverAlivePairs,
			RawVars: rawInfo.Vars, RawConstrs: rawInfo.Constrs,
			TIVars: tiVars, TIConstrs: tiConstrs,
			VarRatio:    float64(info.Vars) / float64(n*n),
			ConstrRatio: float64(info.Constrs) / float64(m+n*n),
		}
		sum.Rows = append(sum.Rows, row)
		if row.VarRatio > sum.MaxVarRatio {
			sum.MaxVarRatio = row.VarRatio
		}
		if row.ConstrRatio > sum.MaxConstrRatio {
			sum.MaxConstrRatio = row.ConstrRatio
		}
	}
	return sum, nil
}

// Report renders the E5 table.
func (s *ModelSizeSummary) Report() string {
	out := "E5 — intLP model size: O(n²) vars, O(m+n²) constraints vs time-indexed (paper §3)\n\n"
	t := NewTable("case", "n", "m", "vars", "constrs", "vars/n²", "constrs/(m+n²)", "ti-vars", "ti-constrs", "dropped arcs", "dead pairs")
	for _, r := range s.Rows {
		t.Add(r.Case, r.N, r.M, r.Vars, r.Constrs,
			fmt.Sprintf("%.2f", r.VarRatio), fmt.Sprintf("%.2f", r.ConstrRatio),
			r.TIVars, r.TIConstrs, r.RedundantArcs, r.NeverAlivePairs)
	}
	out += t.String()
	out += fmt.Sprintf("\nfitted constants stay bounded: max vars/n² = %.2f, max constrs/(m+n²) = %.2f\n",
		s.MaxVarRatio, s.MaxConstrRatio)
	out += "(a time-indexed model grows with the schedule horizon T; ours does not)\n"
	return out
}
