package experiments

import (
	"context"
	"fmt"

	"regsat/internal/ddg"
	"regsat/internal/kernels"
	"regsat/internal/reduce"
	"regsat/internal/rs"
)

// Figure2Result reproduces the paper's Figure 2 comparison (experiment E2).
type Figure2Result struct {
	// Part (a): the initial DAG.
	InitialRS int
	InitialCP int64
	// Part (c): RS reduction with 3 available registers.
	ReducedRS   int
	ReducedArcs int
	ReducedCP   int64
	// Part (b): minimal register need under the critical-path constraint.
	MinimalRS   int
	MinimalArcs int
	MinimalCP   int64
	// Zero-pressure check: with R = 4 the RS pass must add nothing.
	ArcsWhenFits int
}

// Figure2 runs E2 on the reconstructed Figure 2 DAG.
func Figure2(ctx context.Context) (*Figure2Result, error) {
	g := kernels.Figure2(ddg.Superscalar)
	base, err := rs.Compute(ctx, g, ddg.Float, rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{InitialRS: base.RS, InitialCP: g.CriticalPath()}

	toThree, err := reduce.ExactCombinatorial(ctx, g, ddg.Float, 3, reduce.ExactOptions{})
	if err != nil {
		return nil, err
	}
	res.ReducedRS = toThree.RS
	res.ReducedArcs = len(toThree.Arcs)
	res.ReducedCP = toThree.CPAfter

	// Minimization: smallest budget preserving the critical path.
	cp := g.CriticalPath()
	for r := 3; r >= 1; r-- {
		red, err := reduce.ExactCombinatorial(ctx, g, ddg.Float, r, reduce.ExactOptions{})
		if err != nil {
			return nil, err
		}
		if red.Spill || red.CPAfter > cp {
			break
		}
		res.MinimalRS = red.RS
		res.MinimalArcs = len(red.Arcs)
		res.MinimalCP = red.CPAfter
	}

	fits, err := reduce.ExactCombinatorial(ctx, g, ddg.Float, 4, reduce.ExactOptions{})
	if err != nil {
		return nil, err
	}
	res.ArcsWhenFits = len(fits.Arcs)
	return res, nil
}

// Report renders E2 next to the paper's qualitative claims.
func (r *Figure2Result) Report() string {
	out := "E2 — Figure 2: RS reduction vs minimal register need\n\n"
	t := NewTable("variant", "RS", "arcs added", "critical path")
	t.Add("(a) initial DAG", r.InitialRS, 0, r.InitialCP)
	t.Add("(c) RS reduction, R=3", r.ReducedRS, r.ReducedArcs, r.ReducedCP)
	t.Add("(b) minimal need", r.MinimalRS, r.MinimalArcs, r.MinimalCP)
	out += t.String() + "\n"
	out += fmt.Sprintf("paper claims reproduced: initial RS = 4 (got %d); minimization is more\n", r.InitialRS)
	out += fmt.Sprintf("restrictive than RS reduction (%d vs %d arcs; usable registers 1..%d vs 1..%d);\n",
		r.MinimalArcs, r.ReducedArcs, r.MinimalRS, r.ReducedRS)
	out += fmt.Sprintf("with R ≥ RS the RS pass leaves the DAG untouched (%d arcs added).\n", r.ArcsWhenFits)
	return out
}
