package experiments

import (
	"context"
	"fmt"
	"time"

	"regsat/internal/ddg"
	"regsat/internal/rs"
	"regsat/internal/solver"
)

// SolverCase is one (graph, type) instance of the backend comparison.
type SolverCase struct {
	Name   string
	Graph  *ddg.Graph
	Type   ddg.RegType
	Values int
	// ExactRS is the combinatorial reference every backend must reproduce.
	ExactRS int
	// Rows holds one measurement per backend, in the order requested.
	Rows []SolverRow
}

// SolverRow is one backend's solve of one instance.
type SolverRow struct {
	Backend  string
	RS       int
	Exact    bool
	Nodes    int64
	Iters    int64
	WarmRate float64
	Elapsed  time.Duration
	Err      error
	// Stats is the backend's full work accounting (presolve, cuts,
	// branching probes, fallbacks) for instrumented reports.
	Stats solver.Stats
}

// SolverBenchSummary aggregates the backend comparison (rsbench -exp solver).
type SolverBenchSummary struct {
	Backends  []string
	Cases     []SolverCase
	Skipped   int // instances above the value budget
	Disagree  int // rows whose RS differs from the exact-BB reference
	TotalTime map[string]time.Duration
}

// SolverBench runs every registered (or requested) MILP backend over the
// given corpus graphs and contrasts nodes explored, simplex iterations,
// warm-start rate, and wall clock, verifying each backend against the
// combinatorial exact search. Instances with more than maxValues values are
// skipped (the exactness budget).
func SolverBench(ctx context.Context, graphs []*ddg.Graph, names []string, backends []string, maxValues int, opt solver.Options) (*SolverBenchSummary, error) {
	if len(backends) == 0 {
		backends = solver.Names()
	}
	if maxValues <= 0 {
		maxValues = 12
	}
	sum := &SolverBenchSummary{
		Backends:  backends,
		TotalTime: map[string]time.Duration{},
	}
	for gi, g := range graphs {
		name := g.Name
		if gi < len(names) && names[gi] != "" {
			name = names[gi]
		}
		for _, t := range g.Types() {
			an, err := rs.NewAnalysis(g, t)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, t, err)
			}
			if len(an.Values) == 0 {
				continue
			}
			if len(an.Values) > maxValues {
				sum.Skipped++
				continue
			}
			ref, _, err := rs.ExactBB(an, 0)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: exact-bb: %w", name, t, err)
			}
			c := SolverCase{
				Name:    fmt.Sprintf("%s/%s", name, t),
				Graph:   g,
				Type:    t,
				Values:  len(an.Values),
				ExactRS: ref.RS,
			}
			for _, b := range backends {
				o := opt
				o.Backend = b
				start := time.Now()
				ires, err := rs.ExactILP(ctx, an, true, o)
				row := SolverRow{Backend: b, Elapsed: time.Since(start), Err: err}
				if err == nil {
					row.RS = ires.RS
					row.Exact = ires.Exact
					row.Nodes = ires.Stats.Nodes
					row.Iters = ires.Stats.SimplexIters
					row.WarmRate = ires.Stats.WarmRate()
					row.Stats = ires.Stats
					if ires.RS != ref.RS {
						sum.Disagree++
					}
				}
				sum.TotalTime[b] += row.Elapsed
				c.Rows = append(c.Rows, row)
			}
			sum.Cases = append(sum.Cases, c)
		}
	}
	return sum, nil
}

// Report renders the backend-comparison table.
func (s *SolverBenchSummary) Report() string {
	out := "Solver backends on the corpus (reference: exact-bb over killing functions)\n\n"
	t := NewTable("case", "|VR|", "RS", "backend", "nodes", "simplex", "warm%", "time", "status")
	for _, c := range s.Cases {
		for i, r := range c.Rows {
			caseName, vals, rsv := "", "", ""
			if i == 0 {
				caseName = c.Name
				vals = fmt.Sprintf("%d", c.Values)
				rsv = fmt.Sprintf("%d", c.ExactRS)
			}
			status := "ok"
			switch {
			case r.Err != nil:
				status = "ERR: " + r.Err.Error()
			case r.RS != c.ExactRS:
				status = fmt.Sprintf("MISMATCH rs=%d", r.RS)
			case !r.Exact:
				status = "capped"
			}
			t.Add(caseName, vals, rsv, r.Backend, r.Nodes, r.Iters,
				fmt.Sprintf("%.0f%%", 100*r.WarmRate), r.Elapsed.Round(time.Microsecond), status)
		}
	}
	out += t.String()
	out += fmt.Sprintf("\n%d instances (%d skipped over the value budget), %d disagreements\n",
		len(s.Cases), s.Skipped, s.Disagree)
	for _, b := range s.Backends {
		out += fmt.Sprintf("total %-10s %v\n", b, s.TotalTime[b].Round(time.Millisecond))
	}
	return out
}
