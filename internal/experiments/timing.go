package experiments

import (
	"context"
	"fmt"
	"time"

	"regsat/internal/rs"
	"regsat/internal/solver"
)

// TimingRow is one instance of experiment E6 (§5 solve-time contrast).
type TimingRow struct {
	Case       string
	Values     int
	Greedy     time.Duration
	ExactBB    time.Duration
	IntLP      time.Duration // 0 when skipped (too large for the MILP budget)
	IntLPExact bool
}

// TimingSummary aggregates E6.
type TimingSummary struct {
	Rows []TimingRow
	// BBOverGreedy is total combinatorial-exact time over total heuristic
	// time (the combinatorial exact is often competitive on loop bodies,
	// whose killing-function spaces are tiny).
	BBOverGreedy float64
	// IntLPOverGreedy is total intLP time over heuristic time on the
	// instances where the intLP ran — the CPLEX-vs-heuristic contrast the
	// paper reports ("from many seconds to many days").
	IntLPOverGreedy float64
}

// Timing runs E6: wall-clock of Greedy-k vs the exact methods. The paper
// reports optimal runs took "from many seconds to many days" on CPLEX while
// the heuristics are near-instant; the shape to reproduce is the orders-of-
// magnitude gap, not absolute numbers. intLP solves are capped to instances
// with at most ilpMaxValues values.
func Timing(ctx context.Context, p Population, ilpMaxValues int, ilpOpts solver.Options) (*TimingSummary, error) {
	if ilpMaxValues == 0 {
		ilpMaxValues = 6
	}
	sum := &TimingSummary{}
	var totalGreedy, totalBB time.Duration
	var ilpGreedy, ilpTotal time.Duration
	for _, c := range p.Cases() {
		an, err := rs.NewAnalysis(c.Graph, c.Type)
		if err != nil {
			return nil, err
		}
		row := TimingRow{Case: c.Name, Values: len(an.Values)}
		start := time.Now()
		if _, err := rs.Greedy(an); err != nil {
			return nil, err
		}
		row.Greedy = time.Since(start)
		start = time.Now()
		if _, _, err := rs.ExactBB(an, 0); err != nil {
			return nil, err
		}
		row.ExactBB = time.Since(start)
		if len(an.Values) <= ilpMaxValues {
			start = time.Now()
			ires, err := rs.ExactILP(ctx, an, true, ilpOpts)
			if err == nil {
				row.IntLP = time.Since(start)
				row.IntLPExact = ires.Exact
				ilpGreedy += row.Greedy
				ilpTotal += row.IntLP
			}
		}
		totalGreedy += row.Greedy
		totalBB += row.ExactBB
		sum.Rows = append(sum.Rows, row)
	}
	if totalGreedy > 0 {
		sum.BBOverGreedy = float64(totalBB) / float64(totalGreedy)
	}
	if ilpGreedy > 0 {
		sum.IntLPOverGreedy = float64(ilpTotal) / float64(ilpGreedy)
	}
	return sum, nil
}

// Report renders the E6 table.
func (s *TimingSummary) Report() string {
	out := "E6 — solve time: heuristics vs exact methods (paper §5: seconds to days on CPLEX)\n\n"
	t := NewTable("case", "|VR|", "greedy", "exact-bb", "intLP", "intLP proved")
	for _, r := range s.Rows {
		ilp := "skipped"
		proved := "-"
		if r.IntLP > 0 {
			ilp = r.IntLP.Round(time.Microsecond).String()
			proved = fmt.Sprintf("%v", r.IntLPExact)
		}
		t.Add(r.Case, r.Values,
			r.Greedy.Round(time.Microsecond), r.ExactBB.Round(time.Microsecond), ilp, proved)
	}
	out += t.String()
	out += fmt.Sprintf("\nexact-bb / greedy total time ratio: %.1fx (loop bodies have tiny killing-function spaces)\n", s.BBOverGreedy)
	out += fmt.Sprintf("intLP / greedy total time ratio (where intLP ran): %.0fx — the paper's CPLEX-vs-heuristic gap\n", s.IntLPOverGreedy)
	return out
}
