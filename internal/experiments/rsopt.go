package experiments

import (
	"time"

	"regsat/internal/rs"
)

// RSOptRow is one instance of experiment E3 (§5 RS-computation optimality).
type RSOptRow struct {
	Case       string
	Nodes      int
	Values     int
	Greedy     int // RS* (heuristic)
	Exact      int // RS (optimal)
	Error      int // RS − RS*
	GreedyTime time.Duration
	ExactTime  time.Duration
}

// RSOptSummary aggregates E3: the paper reports "the maximal empirical error
// is one register (in very few cases)".
type RSOptSummary struct {
	Rows     []RSOptRow
	Total    int
	ExactHit int // greedy optimal
	Err1     int // off by one register
	ErrMore  int // off by more (would contradict the paper's shape)
	MaxError int
}

// RSOptimality runs E3 over the population.
func RSOptimality(p Population) (*RSOptSummary, error) {
	sum := &RSOptSummary{}
	for _, c := range p.Cases() {
		an, err := rs.NewAnalysis(c.Graph, c.Type)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		greedy, err := rs.Greedy(an)
		if err != nil {
			return nil, err
		}
		gd := time.Since(start)
		start = time.Now()
		exact, stats, err := rs.ExactBB(an, 0)
		if err != nil {
			return nil, err
		}
		ed := time.Since(start)
		if stats.Capped {
			continue // exact side unknown: excluded from the optimality table
		}
		row := RSOptRow{
			Case:       c.Name,
			Nodes:      c.Graph.NumNodes(),
			Values:     len(an.Values),
			Greedy:     greedy.RS,
			Exact:      exact.RS,
			Error:      exact.RS - greedy.RS,
			GreedyTime: gd,
			ExactTime:  ed,
		}
		sum.Rows = append(sum.Rows, row)
		sum.Total++
		switch {
		case row.Error == 0:
			sum.ExactHit++
		case row.Error == 1:
			sum.Err1++
		default:
			sum.ErrMore++
		}
		if row.Error > sum.MaxError {
			sum.MaxError = row.Error
		}
	}
	return sum, nil
}

// Report renders the E3 table and summary.
func (s *RSOptSummary) Report() string {
	t := NewTable("case", "n", "|VR|", "RS* (greedy)", "RS (exact)", "error")
	for _, r := range s.Rows {
		t.Add(r.Case, r.Nodes, r.Values, r.Greedy, r.Exact, r.Error)
	}
	out := "E3 — RS computation: Greedy-k heuristic vs exact optimum (paper §5)\n\n"
	out += t.String()
	out += "\nsummary: " + Pct(s.ExactHit, s.Total) + " optimal, " +
		Pct(s.Err1, s.Total) + " off by one register, " +
		Pct(s.ErrMore, s.Total) + " off by more"
	out += "\npaper's claim: \"maximal empirical error is one register (in very few cases)\"\n"
	return out
}
