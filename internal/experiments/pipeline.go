package experiments

import (
	"context"
	"fmt"

	"regsat/internal/reduce"
	"regsat/internal/regalloc"
	"regsat/internal/rs"
	"regsat/internal/schedule"
)

// PipelineRow is one instance of experiment E1 (the Figure 1 pipeline).
type PipelineRow struct {
	Case     string
	RS       int
	R        int
	Reduced  bool
	Arcs     int
	CPBefore int64
	CPAfter  int64
	Makespan int64
	RegNeed  int
	RegsUsed int
}

// PipelineSummary aggregates E1.
type PipelineSummary struct {
	Rows []PipelineRow
	// Spills counts instances where no register budget worked (none
	// expected: R is chosen ≥ the minimum reducible level).
	Spills int
}

// Pipeline runs E1: for every case, compute RS, reduce to roughly half the
// saturation when needed, list-schedule on a 4-issue VLIW, and allocate —
// verifying the end-to-end no-spill guarantee of the RS approach.
func Pipeline(ctx context.Context, p Population) (*PipelineSummary, error) {
	sum := &PipelineSummary{}
	for _, c := range p.Cases() {
		base, err := rs.Compute(ctx, c.Graph, c.Type, rs.Options{Method: rs.MethodGreedy, SkipWitness: true})
		if err != nil {
			return nil, err
		}
		R := base.RS/2 + 1
		row := PipelineRow{Case: c.Name, RS: base.RS, R: R, CPBefore: c.Graph.CriticalPath()}
		work := c.Graph
		if base.RS > R {
			red, err := reduce.Heuristic(ctx, c.Graph, c.Type, R)
			if err != nil {
				return nil, err
			}
			if red.Spill {
				sum.Spills++
				continue
			}
			work = red.Graph
			row.Reduced = true
			row.Arcs = len(red.Arcs)
		}
		row.CPAfter = work.CriticalPath()
		s, err := schedule.List(work, schedule.TypicalVLIW())
		if err != nil {
			return nil, err
		}
		row.Makespan = s.Makespan()
		row.RegNeed = s.RegisterNeed(c.Type)
		alloc, err := regalloc.Allocate(s, c.Type, R)
		if err != nil {
			// The heuristic's Greedy-k claim can occasionally under-state
			// the true saturation; surface it as a spill event.
			sum.Spills++
			continue
		}
		row.RegsUsed = alloc.Used
		sum.Rows = append(sum.Rows, row)
	}
	return sum, nil
}

// Report renders the E1 table.
func (s *PipelineSummary) Report() string {
	out := "E1 — Figure 1 pipeline: RS → reduce → schedule → allocate (4-issue VLIW)\n\n"
	t := NewTable("case", "RS", "R", "reduced", "arcs", "CP0", "CP1", "makespan", "RN", "regs used")
	for _, r := range s.Rows {
		t.Add(r.Case, r.RS, r.R, r.Reduced, r.Arcs, r.CPBefore, r.CPAfter, r.Makespan, r.RegNeed, r.RegsUsed)
	}
	out += t.String()
	out += fmt.Sprintf("\n%d cases allocated spill-free; %d spill fallbacks\n", len(s.Rows), s.Spills)
	return out
}
