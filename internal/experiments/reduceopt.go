package experiments

import (
	"context"
	"fmt"

	"regsat/internal/reduce"
	"regsat/internal/rs"
)

// ReduceClass is the paper's five-way outcome classification of §5 plus the
// two boundary buckets our tighter measurement can distinguish.
type ReduceClass string

// The classification compares, per instance, the reduced saturation
// (RS optimal vs RS* heuristic — larger is better: fewer lost schedules)
// and the ILP loss (critical-path increase — smaller is better).
const (
	// ClassIA: optimal RS reduction with optimal ILP loss (paper: 72.22%).
	ClassIA ReduceClass = "i.a  RS=RS* ILP=ILP*"
	// ClassIB: optimal RS reduction, sub-optimal ILP loss (paper: 18.5%).
	ClassIB ReduceClass = "i.b  RS=RS* ILP<ILP*"
	// ClassIIA: sub-optimal RS reduction, optimal ILP loss (paper: 4.63%).
	ClassIIA ReduceClass = "ii.a RS>RS* ILP=ILP*"
	// ClassIIB: both sub-optimal (paper: <1%).
	ClassIIB ReduceClass = "ii.b RS>RS* ILP<ILP*"
	// ClassIIC: sub-optimal RS reduction but super-optimal ILP loss
	// (paper: 3.7% — the heuristic over-reduces and the freed registers
	// buy back instruction-level parallelism).
	ClassIIC ReduceClass = "ii.c RS>RS* ILP>ILP*"
	// ClassIII: RS < RS* — the paper proves this impossible for its
	// optimal; our lexicographic optimum (min CP, then max RN) can place
	// rare boundary cases here. Reported separately.
	ClassIII ReduceClass = "iii  RS<RS* (boundary)"
	// ClassFail: the heuristic's Greedy-k claim did not verify (its
	// extension's true saturation exceeds R) or it spilled where the
	// optimal succeeded.
	ClassFail ReduceClass = "fail heuristic invalid"
)

// ReduceOptRow is one instance of experiment E4.
type ReduceOptRow struct {
	Case    string
	R       int
	RSInit  int
	HeurRS  int   // RS*: true saturation of the heuristic's extension
	OptRS   int   // RS: saturation of the optimal extension
	HeurILP int64 // ILP* loss: CP increase of the heuristic
	OptILP  int64 // ILP loss: CP increase of the optimum
	Class   ReduceClass
}

// ReduceOptSummary aggregates E4.
type ReduceOptSummary struct {
	Rows   []ReduceOptRow
	Counts map[ReduceClass]int
	Total  int
	// BothSpill counts instances both sides proved unreducible.
	BothSpill int
	// Skipped counts instances whose exact side hit its budget.
	Skipped int
}

// ReduceOptimality runs E4: for every case whose saturation exceeds a
// register budget (swept from RS−1 downward), reduce with the heuristic and
// with the exact combinatorial optimum, and classify the outcome exactly as
// the paper's Section 5 does.
func ReduceOptimality(ctx context.Context, p Population, budgetsPerCase int) (*ReduceOptSummary, error) {
	if budgetsPerCase <= 0 {
		budgetsPerCase = 2
	}
	sum := &ReduceOptSummary{Counts: map[ReduceClass]int{}}
	for _, c := range p.Cases() {
		base, err := rs.Compute(ctx, c.Graph, c.Type, rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
		if err != nil {
			return nil, err
		}
		if !base.Exact || base.RS < 2 {
			continue
		}
		for k := 1; k <= budgetsPerCase && base.RS-k >= 1; k++ {
			R := base.RS - k
			row, skip, err := classifyOne(ctx, c, R, base.RS)
			if err != nil {
				return nil, err
			}
			if skip {
				sum.Skipped++
				continue
			}
			if row == nil {
				sum.BothSpill++
				continue
			}
			sum.Rows = append(sum.Rows, *row)
			sum.Counts[row.Class]++
			sum.Total++
		}
	}
	return sum, nil
}

func classifyOne(ctx context.Context, c Case, R, rsInit int) (*ReduceOptRow, bool, error) {
	heur, err := reduce.Heuristic(ctx, c.Graph, c.Type, R)
	if err != nil {
		return nil, false, err
	}
	opt, err := reduce.ExactCombinatorial(ctx, c.Graph, c.Type, R, reduce.ExactOptions{})
	if err != nil {
		return nil, false, err
	}
	if !opt.Exact {
		return nil, true, nil // exact budget hit: excluded
	}
	if opt.Spill && heur.Spill {
		return nil, false, nil // both agree: unreducible
	}
	row := &ReduceOptRow{
		Case: fmt.Sprintf("%s R=%d", c.Name, R), R: R, RSInit: rsInit,
		OptRS: opt.RS, OptILP: opt.CPAfter - opt.CPBefore,
	}
	if opt.Spill {
		// The heuristic claims success where the optimum proves it
		// impossible: its Greedy-k estimate must have over-claimed.
		row.Class = ClassFail
		return row, false, nil
	}
	if heur.Spill {
		row.Class = ClassFail
		return row, false, nil
	}
	// Verify the heuristic's claim with the true saturation of its graph.
	heurTrue, err := rs.Compute(ctx, heur.Graph, c.Type, rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
	if err != nil {
		return nil, false, err
	}
	row.HeurRS = heurTrue.RS
	row.HeurILP = heur.CPAfter - heur.CPBefore
	if heurTrue.RS > R {
		row.Class = ClassFail
		return row, false, nil
	}
	switch {
	case row.OptRS == row.HeurRS && row.OptILP == row.HeurILP:
		row.Class = ClassIA
	case row.OptRS == row.HeurRS && row.OptILP < row.HeurILP:
		row.Class = ClassIB
	case row.OptRS > row.HeurRS && row.OptILP == row.HeurILP:
		row.Class = ClassIIA
	case row.OptRS > row.HeurRS && row.OptILP < row.HeurILP:
		row.Class = ClassIIB
	case row.OptRS > row.HeurRS && row.OptILP > row.HeurILP:
		row.Class = ClassIIC
	default:
		row.Class = ClassIII
	}
	return row, false, nil
}

// Report renders the E4 classification table next to the paper's numbers.
func (s *ReduceOptSummary) Report() string {
	out := "E4 — RS reduction: heuristic vs optimal, five-case breakdown (paper §5)\n\n"
	t := NewTable("case", "R", "RS0", "RS*", "RS", "ILP*", "ILP", "class")
	for _, r := range s.Rows {
		t.Add(r.Case, r.R, r.RSInit, r.HeurRS, r.OptRS, r.HeurILP, r.OptILP, string(r.Class))
	}
	out += t.String() + "\n"
	paper := map[ReduceClass]string{
		ClassIA:   "72.22%",
		ClassIB:   "18.5%",
		ClassIIA:  "4.63%",
		ClassIIB:  "<1%",
		ClassIIC:  "3.7%",
		ClassIII:  "impossible",
		ClassFail: "n/a",
	}
	st := NewTable("class", "count", "measured", "paper")
	for _, cl := range []ReduceClass{ClassIA, ClassIB, ClassIIA, ClassIIB, ClassIIC, ClassIII, ClassFail} {
		st.Add(string(cl), s.Counts[cl], Pct(s.Counts[cl], s.Total), paper[cl])
	}
	out += st.String()
	out += fmt.Sprintf("\ninstances: %d classified, %d unreducible on both sides, %d skipped (budget)\n",
		s.Total, s.BothSpill, s.Skipped)
	out += "expected shape: case i.a dominates; ii.b is the rarest of the paper's five.\n"
	return out
}
