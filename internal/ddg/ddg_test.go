package ddg

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildSmall returns the 4-operation example used across tests:
// a (load, lat 2, float) feeds b and c (fmul, lat 3, float), both feed d.
func buildSmall(t *testing.T) *Graph {
	t.Helper()
	g := New("small", Superscalar)
	a := g.AddNode("a", "load", 2)
	b := g.AddNode("b", "fmul", 3)
	c := g.AddNode("c", "fmul", 3)
	d := g.AddNode("d", "fadd", 1)
	g.SetWrites(a, Float, 0)
	g.SetWrites(b, Float, 0)
	g.SetWrites(c, Float, 0)
	g.SetWrites(d, Float, 0)
	g.AddFlowEdge(a, b, Float)
	g.AddFlowEdge(a, c, Float)
	g.AddFlowEdge(b, d, Float)
	g.AddFlowEdge(c, d, Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildAndFinalize(t *testing.T) {
	g := buildSmall(t)
	if !g.Finalized() {
		t.Fatal("not finalized")
	}
	if g.NumNodes() != 5 { // 4 ops + ⊥
		t.Fatalf("NumNodes=%d, want 5", g.NumNodes())
	}
	bot := g.Bottom()
	if bot != 4 || g.Node(bot).Name != "_bot" {
		t.Fatalf("bottom=%d name=%s", bot, g.Node(bot).Name)
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	g := buildSmall(t)
	nodes, edges := g.NumNodes(), g.NumEdges()
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != nodes || g.NumEdges() != edges {
		t.Fatal("second Finalize changed the graph")
	}
}

func TestExitValueGetsFlowToBottom(t *testing.T) {
	g := buildSmall(t)
	d := g.NodeByName("d")
	cons := g.Cons(d, Float)
	if len(cons) != 1 || cons[0] != g.Bottom() {
		t.Fatalf("Cons(d)=%v, want [⊥]", cons)
	}
}

func TestEveryNodeReachesBottom(t *testing.T) {
	g := buildSmall(t)
	ap, err := g.ToDigraph().LongestAllPairs()
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.Bottom(); u++ {
		if !ap.Reaches(u, g.Bottom()) {
			t.Fatalf("node %s does not reach ⊥", g.Node(u).Name)
		}
	}
}

func TestConsAndValues(t *testing.T) {
	g := buildSmall(t)
	a := g.NodeByName("a")
	cons := g.Cons(a, Float)
	if len(cons) != 2 {
		t.Fatalf("Cons(a)=%v, want 2 consumers", cons)
	}
	vals := g.Values(Float)
	if len(vals) != 4 {
		t.Fatalf("Values=%v, want 4", vals)
	}
	if len(g.Values(Int)) != 0 {
		t.Fatal("no int values expected")
	}
}

func TestTypes(t *testing.T) {
	g := New("two-types", Superscalar)
	a := g.AddNode("a", "load", 1)
	b := g.AddNode("b", "add", 1)
	g.SetWrites(a, Float, 0)
	g.SetWrites(b, Int, 0)
	g.AddSerialEdge(a, b, 1)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	types := g.Types()
	if len(types) != 2 || types[0] != Float || types[1] != Int {
		t.Fatalf("Types=%v, want [float int]", types)
	}
}

func TestMultiTypeNode(t *testing.T) {
	// One op defining both an int and a float value (allowed by the model
	// as long as at most one value per type).
	g := New("multi", Superscalar)
	a := g.AddNode("a", "divmod", 2)
	b := g.AddNode("b", "use", 1)
	g.SetWrites(a, Int, 0)
	g.SetWrites(a, Float, 0)
	g.SetWrites(b, Int, 0)
	g.AddFlowEdge(a, b, Int)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	// The float value of a is an exit value → flow edge to ⊥.
	if cons := g.Cons(a, Float); len(cons) != 1 || cons[0] != g.Bottom() {
		t.Fatalf("float Cons(a)=%v, want [⊥]", cons)
	}
	if cons := g.Cons(a, Int); len(cons) != 1 || cons[0] != 1 {
		t.Fatalf("int Cons(a)=%v, want [b]", cons)
	}
}

func TestFlowEdgeFromNonWriterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New("bad", Superscalar)
	a := g.AddNode("a", "nop", 1)
	b := g.AddNode("b", "nop", 1)
	g.AddFlowEdge(a, b, Float)
}

func TestSuperscalarOffsetsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New("bad", Superscalar)
	a := g.AddNode("a", "nop", 1)
	g.SetWrites(a, Float, 2) // δw ≠ 0 on superscalar
}

func TestVLIWOffsets(t *testing.T) {
	g := New("vliw", VLIW)
	a := g.AddNode("a", "fmul", 4)
	b := g.AddNode("b", "fadd", 2)
	g.SetWrites(a, Float, 3) // written at σ+3
	g.SetReadDelay(b, 1)     // reads at σ+1
	g.SetWrites(b, Float, 1)
	g.AddFlowEdge(a, b, Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if g.Node(a).DelayW(Float) != 3 || g.Node(b).DelayR != 1 {
		t.Fatal("offsets lost")
	}
	// Negative serial latency allowed on VLIW (used by RS reduction).
	ext := g.Extend([]SerialArc{{From: b, To: a, Latency: -2}})
	if ext.NumEdges() != g.NumEdges()+1 {
		t.Fatal("Extend did not add the arc")
	}
	if err := ext.Validate(); err == nil {
		t.Fatal("cycle a→b→a must be reported by Validate")
	}
}

func TestCycleDetected(t *testing.T) {
	g := New("cyclic", Superscalar)
	a := g.AddNode("a", "nop", 1)
	b := g.AddNode("b", "nop", 1)
	g.AddSerialEdge(a, b, 1)
	g.AddSerialEdge(b, a, 1)
	if err := g.Finalize(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestMutationAfterFinalizePanics(t *testing.T) {
	g := buildSmall(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddNode("late", "nop", 1)
}

func TestHorizonDominatesCriticalPath(t *testing.T) {
	g := buildSmall(t)
	if g.Horizon() < g.CriticalPath() {
		t.Fatalf("horizon %d < critical path %d", g.Horizon(), g.CriticalPath())
	}
}

func TestCriticalPathSmall(t *testing.T) {
	g := buildSmall(t)
	// a(2) → b(3) → d(1) → ⊥: 2+3+1 = 6.
	if cp := g.CriticalPath(); cp != 6 {
		t.Fatalf("critical path=%d, want 6", cp)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildSmall(t)
	c := g.Clone()
	c.Node(0).Writes[Int] = 0 // mutate clone's write map
	if g.Node(0).WritesType(Int) {
		t.Fatal("clone shares write maps with original")
	}
}

func TestExtendKeepsOriginalIntact(t *testing.T) {
	g := buildSmall(t)
	before := g.NumEdges()
	b, c := g.NodeByName("b"), g.NodeByName("c")
	ext := g.Extend([]SerialArc{{From: b, To: c, Latency: 1}})
	if g.NumEdges() != before {
		t.Fatal("Extend mutated the original")
	}
	if !ext.Finalized() {
		t.Fatal("extension lost finalized state")
	}
	if err := ext.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	src := `
# a VLIW loop body
ddg "roundtrip" machine=vliw
node a op=load lat=4 writes=float:1 dr=0
node b op=fmul lat=3 writes=float
node c op=store lat=1 dr=2
edge a b flow float
edge b c flow float lat=5
edge a c serial lat=2
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "roundtrip" || g.Machine != VLIW {
		t.Fatalf("header wrong: %s %s", g.Name, g.Machine)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d, want 3, 3", g.NumNodes(), g.NumEdges())
	}
	if g.Node(0).DelayW(Float) != 1 {
		t.Fatal("δw lost in parse")
	}
	if g.Node(2).DelayR != 2 {
		t.Fatal("δr lost in parse")
	}
	// Round-trip: format, reparse, compare formats.
	f1 := g.Format()
	g2, err := ParseString(f1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, f1)
	}
	if f2 := g2.Format(); f1 != f2 {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", f1, f2)
	}
}

func TestFormatExcludesBottom(t *testing.T) {
	g := buildSmall(t)
	f := g.Format()
	if strings.Contains(f, "_bot") {
		t.Fatalf("Format leaked ⊥:\n%s", f)
	}
	g2, err := ParseString(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Finalize(); err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Fatal("re-finalized graph differs")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`node a op=x lat=1`, // node before ddg
		"ddg \"x\"\nnode a op=x lat=1\nnode a op=y lat=1",                  // duplicate node
		"ddg \"x\"\nedge a b flow float",                                   // unknown nodes
		"ddg \"x\" machine=weird",                                          // unknown machine
		"ddg \"x\"\nnode a lat=oops",                                       // bad integer
		"ddg \"x\"\nnode a op=x lat=1\nnode b op=y lat=1\nedge a b serial", // missing lat
		"",        // empty input
		"bogus x", // unknown directive
	} {
		if _, err := ParseString(src); err == nil {
			t.Fatalf("expected parse error for %q", src)
		}
	}
}

// TestParseRejectsModelViolations: inputs that used to reach the panicking
// graph builders (found by FuzzParseDDG) must come back as *ParseError.
func TestParseRejectsModelViolations(t *testing.T) {
	for _, src := range []string{
		"ddg \"x\"\nnode a op=x lat=-1",                                                   // negative latency
		"ddg \"x\"\nnode a op=x lat=1 dr=2",                                               // δr on superscalar
		"ddg \"x\"\nnode a op=x lat=1 writes=float:2",                                     // δw on superscalar
		"ddg \"x\"\nnode a op=x lat=1 writes=",                                            // empty type
		"ddg \"x\"\nnode a op=x lat=1\nnode b op=y lat=1\nedge a b flow float",            // non-writer flow source
		"ddg \"x\"\nnode a op=x lat=1 writes=int\nnode b op=y lat=1\nedge a b flow float", // wrong flow type
		"ddg \"x\"\nnode a op=x lat=1\nnode b op=y lat=1\nedge a b serial lat=-1",         // negative serial on superscalar
		"ddg \"x\"\nnode a op=x lat=1 writes=float\nedge a a flow float",                  // self-loop
	} {
		g, err := ParseString(src)
		if err == nil {
			t.Fatalf("expected parse error for %q, got graph %v", src, g.Name)
		}
		var perr *ParseError
		if !errors.As(err, &perr) {
			t.Fatalf("error for %q is not a *ParseError: %v", src, err)
		}
	}
	// The same violations stay legal where the model allows them.
	for _, src := range []string{
		"ddg \"x\" machine=vliw\nnode a op=x lat=1 dr=2 writes=float:1",
		"ddg \"x\" machine=vliw\nnode a op=x lat=1\nnode b op=y lat=1\nedge a b serial lat=-1",
	} {
		if _, err := ParseString(src); err != nil {
			t.Fatalf("unexpected error for %q: %v", src, err)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := buildSmall(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "style=bold", "shape=point", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestRandomGraphAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := DefaultRandomParams(2 + rng.Intn(12))
		if rng.Intn(2) == 0 {
			p.Machine = VLIW
			p.Types = []RegType{Int, Float}
		}
		g := RandomGraph(rng, p)
		return g.Validate() == nil && g.Finalized()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeByName(t *testing.T) {
	g := buildSmall(t)
	if g.NodeByName("c") != 2 || g.NodeByName("zzz") != -1 {
		t.Fatal("NodeByName wrong")
	}
}

func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		src        string
		line, col  int
		wantSubstr string
	}{
		{"ddg \"x\"\nnode a op=y lat=oops", 2, 13, "bad lat"},
		{"ddg \"x\"\nnode a op=y lat=1\nnode a op=z lat=1", 3, 6, "duplicate node"},
		// The node name "e" occurs inside the word "node": the column must
		// come from the whole-field match, not the first substring hit.
		{"ddg \"x\"\nnode e op=y lat=1\nnode e op=z lat=1", 3, 6, "duplicate node"},
		{"ddg \"x\"\nedge a b flow float", 2, 6, "unknown node"},
		{"ddg \"x\" machine=weird", 1, 9, "unknown machine"},
		{"bogus x", 1, 1, "unknown directive"},
		{"ddg \"x\"\n  node a oops", 2, 10, "bad node attribute"},
	}
	for _, tc := range cases {
		_, err := ParseString(tc.src)
		if err == nil {
			t.Fatalf("no error for %q", tc.src)
		}
		var perr *ParseError
		if !errors.As(err, &perr) {
			t.Fatalf("%q: error %v is not a *ParseError", tc.src, err)
		}
		if perr.Line != tc.line || perr.Col != tc.col {
			t.Fatalf("%q: located at %d:%d, want %d:%d (%v)",
				tc.src, perr.Line, perr.Col, tc.line, tc.col, err)
		}
		if !strings.Contains(err.Error(), tc.wantSubstr) {
			t.Fatalf("%q: message %q lacks %q", tc.src, err.Error(), tc.wantSubstr)
		}
		if !strings.Contains(err.Error(), "line ") {
			t.Fatalf("%q: message %q lacks position prefix", tc.src, err.Error())
		}
	}
}
