package ddg

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The textual DDG format, one directive per line:
//
//	ddg "<name>" machine=<superscalar|vliw|epic>
//	node <name> op=<mnemonic> lat=<n> [writes=<type>[:<δw>]] [dr=<δr>]
//	edge <from> <to> flow <type> [lat=<n>]
//	edge <from> <to> serial lat=<n>
//	# comments and blank lines are ignored
//
// Parse does not finalize the graph, so callers can keep extending it.

// ParseError locates a syntax error in the textual DDG format. Line is
// 1-based; Col is the 1-based byte column of the offending token in that
// line (0 when the error concerns the line as a whole). Parse failures
// unwrap to *ParseError via errors.As, so tools can point at the exact
// position of a bad directive or attribute.
type ParseError struct {
	Line  int
	Col   int
	Token string // the offending field, "" when the whole line is at fault
	Msg   string
}

func (e *ParseError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

// errTok marks an error at a specific field of the current line; Parse fills
// in the line number and column.
func errTok(token, format string, args ...any) *ParseError {
	return &ParseError{Token: token, Msg: fmt.Sprintf(format, args...)}
}

// errLine marks an error owned by the current line as a whole.
func errLine(format string, args ...any) *ParseError {
	return &ParseError{Msg: fmt.Sprintf(format, args...)}
}

// locate stamps the error with its line and, when the offending token is
// known, the token's 1-based column in the original (untrimmed) line.
func locate(err *ParseError, lineNo int, raw string) *ParseError {
	err.Line = lineNo
	if err.Token != "" {
		err.Col = columnOf(raw, err.Token)
	}
	return err
}

// columnOf finds the token's 1-based byte column. Tokens are usually whole
// whitespace-delimited fields, so field-boundary matches win over bare
// substring hits (a node named "e" must not locate inside the word "node");
// the substring fallback covers tokens that are fragments of a field, like
// one spec of a writes=a,b list.
func columnOf(raw, token string) int {
	isSpace := func(b byte) bool { return b == ' ' || b == '\t' }
	for from := 0; from+len(token) <= len(raw); {
		i := strings.Index(raw[from:], token)
		if i < 0 {
			break
		}
		start := from + i
		end := start + len(token)
		if (start == 0 || isSpace(raw[start-1])) && (end == len(raw) || isSpace(raw[end])) {
			return start + 1
		}
		from = start + 1
	}
	if i := strings.Index(raw, token); i >= 0 {
		return i + 1
	}
	return 0
}

// Parse reads a DDG in the textual format.
func Parse(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var err *ParseError
		switch fields[0] {
		case "ddg":
			if g != nil {
				err = errTok(fields[0], "duplicate ddg directive")
				break
			}
			var name string
			var machine MachineKind
			if name, machine, err = parseHeader(strings.TrimSpace(line[len("ddg"):])); err == nil {
				g = New(name, machine)
			}
		case "node":
			if g == nil {
				err = errTok(fields[0], "node before ddg directive")
				break
			}
			err = parseNode(g, fields[1:])
		case "edge":
			if g == nil {
				err = errTok(fields[0], "edge before ddg directive")
				break
			}
			err = parseEdge(g, fields[1:])
		default:
			err = errTok(fields[0], "unknown directive %q", fields[0])
		}
		if err != nil {
			return nil, locate(err, lineNo, raw)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("no ddg directive found")
	}
	return g, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Graph, error) {
	return Parse(strings.NewReader(s))
}

// parseHeader parses the remainder of a ddg directive: a name — quoted (the
// form Format emits, losslessly unescaped, spaces and quotes included) or a
// bare field — followed by attributes.
func parseHeader(rest string) (string, MachineKind, *ParseError) {
	if rest == "" {
		return "", 0, errLine("ddg directive needs a name")
	}
	var name string
	var attrs []string
	if strings.HasPrefix(rest, `"`) {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return "", 0, errLine("bad quoted ddg name %s", rest)
		}
		name, err = strconv.Unquote(q)
		if err != nil {
			return "", 0, errLine("bad quoted ddg name %s", q)
		}
		attrs = strings.Fields(rest[len(q):])
	} else {
		fs := strings.Fields(rest)
		name = fs[0]
		attrs = fs[1:]
	}
	machine := Superscalar
	for _, f := range attrs {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k != "machine" {
			return "", 0, errTok(f, "bad ddg attribute %q", f)
		}
		switch v {
		case "superscalar":
			machine = Superscalar
		case "vliw":
			machine = VLIW
		case "epic":
			machine = EPIC
		default:
			return "", 0, errTok(f, "unknown machine %q", v)
		}
	}
	return name, machine, nil
}

func parseNode(g *Graph, fields []string) *ParseError {
	if len(fields) < 1 {
		return errLine("node needs a name")
	}
	name := fields[0]
	if g.NodeByName(name) >= 0 {
		return errTok(name, "duplicate node %q", name)
	}
	op := "op"
	var lat, dr int64
	type writeSpec struct {
		t  RegType
		dw int64
	}
	var writes []writeSpec
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return errTok(f, "bad node attribute %q", f)
		}
		switch k {
		case "op":
			op = v
		case "lat":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return errTok(f, "bad lat %q", v)
			}
			if n < 0 {
				return errTok(f, "node latency must be non-negative, got %d", n)
			}
			lat = n
		case "dr":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return errTok(f, "bad dr %q", v)
			}
			if n != 0 && !g.Machine.HasOffsets() {
				return errTok(f, "reading offset dr on a superscalar machine")
			}
			dr = n
		case "writes":
			for _, spec := range strings.Split(v, ",") {
				tname, dws, has := strings.Cut(spec, ":")
				if tname == "" {
					return errTok(f, "empty register type in %q", v)
				}
				var dw int64
				if has {
					n, err := strconv.ParseInt(dws, 10, 64)
					if err != nil {
						return errTok(spec, "bad δw in %q", spec)
					}
					if n != 0 && !g.Machine.HasOffsets() {
						return errTok(spec, "writing offset δw on a superscalar machine")
					}
					dw = n
				}
				writes = append(writes, writeSpec{RegType(tname), dw})
			}
		default:
			return errTok(f, "unknown node attribute %q", k)
		}
	}
	id := g.AddNode(name, op, lat)
	if dr != 0 {
		g.SetReadDelay(id, dr)
	}
	for _, w := range writes {
		g.SetWrites(id, w.t, w.dw)
	}
	return nil
}

func parseEdge(g *Graph, fields []string) *ParseError {
	if len(fields) < 3 {
		return errLine("edge needs: from to kind …")
	}
	from := g.NodeByName(fields[0])
	to := g.NodeByName(fields[1])
	if from < 0 {
		return errTok(fields[0], "edge references unknown node %q", fields[0])
	}
	if to < 0 {
		return errTok(fields[1], "edge references unknown node %q", fields[1])
	}
	if from == to {
		return errTok(fields[1], "self-loop edge on node %q", fields[0])
	}
	switch fields[2] {
	case "flow":
		if len(fields) < 4 {
			return errLine("flow edge needs a register type")
		}
		t := RegType(fields[3])
		if !g.Node(from).WritesType(t) {
			return errTok(fields[3], "flow edge from %q, which does not write type %q", fields[0], t)
		}
		lat := g.Node(from).Latency
		for _, f := range fields[4:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok || k != "lat" {
				return errTok(f, "bad flow edge attribute %q", f)
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return errTok(f, "bad lat %q", v)
			}
			lat = n
		}
		g.AddFlowEdgeLatency(from, to, t, lat)
	case "serial":
		lat := int64(0)
		found := false
		for _, f := range fields[3:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok || k != "lat" {
				return errTok(f, "bad serial edge attribute %q", f)
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return errTok(f, "bad lat %q", v)
			}
			lat, found = n, true
		}
		if !found {
			return errLine("serial edge needs lat=<n>")
		}
		if lat < 0 && !g.Machine.HasOffsets() {
			return errLine("negative serial latency on a superscalar machine")
		}
		g.AddSerialEdge(from, to, lat)
	default:
		return errTok(fields[2], "unknown edge kind %q", fields[2])
	}
	return nil
}

// Format renders the graph in the textual format (excluding the ⊥ node and
// its edges, so a finalized graph round-trips to its pre-Finalize form).
func (g *Graph) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ddg %q machine=%s\n", g.Name, g.Machine)
	limit := len(g.nodes)
	if g.finalized {
		limit = g.bottom
	}
	for i := 0; i < limit; i++ {
		n := &g.nodes[i]
		fmt.Fprintf(&b, "node %s op=%s lat=%d", n.Name, n.Op, n.Latency)
		if len(n.Writes) > 0 {
			types := make([]string, 0, len(n.Writes))
			for t := range n.Writes {
				types = append(types, string(t))
			}
			sort.Strings(types)
			specs := make([]string, 0, len(types))
			for _, t := range types {
				dw := n.Writes[RegType(t)]
				if dw != 0 {
					specs = append(specs, fmt.Sprintf("%s:%d", t, dw))
				} else {
					specs = append(specs, t)
				}
			}
			fmt.Fprintf(&b, " writes=%s", strings.Join(specs, ","))
		}
		if n.DelayR != 0 {
			fmt.Fprintf(&b, " dr=%d", n.DelayR)
		}
		b.WriteString("\n")
	}
	for _, e := range g.edges {
		if g.finalized && (e.From == g.bottom || e.To == g.bottom) {
			continue
		}
		if e.Kind == Flow {
			fmt.Fprintf(&b, "edge %s %s flow %s", g.nodes[e.From].Name, g.nodes[e.To].Name, e.Type)
			if e.Latency != g.nodes[e.From].Latency {
				fmt.Fprintf(&b, " lat=%d", e.Latency)
			}
			b.WriteString("\n")
		} else {
			fmt.Fprintf(&b, "edge %s %s serial lat=%d\n", g.nodes[e.From].Name, g.nodes[e.To].Name, e.Latency)
		}
	}
	return b.String()
}

// DOT renders the DDG in Graphviz format following the paper's Figure 2
// style: values (register-writing nodes) are bold circles and flow edges are
// bold; serial edges are dashed.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	for i := range g.nodes {
		n := &g.nodes[i]
		style := ""
		if len(n.Writes) > 0 {
			style = `, style=bold`
		}
		if g.finalized && i == g.bottom {
			style = `, shape=point`
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", i, fmt.Sprintf("%s\\n%s/%d", n.Name, n.Op, n.Latency), style)
	}
	for _, e := range g.edges {
		if e.Kind == Flow {
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q, style=bold];\n", e.From, e.To,
				fmt.Sprintf("%s/%d", e.Type, e.Latency))
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q, style=dashed];\n", e.From, e.To,
				fmt.Sprintf("%d", e.Latency))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
