// Package ddg implements the paper's DAG and processor model (Section 2):
// data dependence graphs G = (V, E, δ) with multiple register types, flow
// dependence edges E_{R,t} carrying values of type t, serial edges for other
// precedence constraints, per-operation read/write delay offsets δr/δw
// (visible on VLIW and EPIC/IA64 targets, zero on superscalar), and the
// bottom node ⊥ that closes exit values.
package ddg

import (
	"fmt"
	"sort"

	"regsat/internal/graph"
)

// RegType names a register type (the set T of the paper, e.g. int, float).
type RegType string

// Common register types used by the kernel suite.
const (
	Int   RegType = "int"
	Float RegType = "float"
)

// MachineKind selects the processor family, which fixes how reading/writing
// offsets behave and which latency serialization arcs carry (Section 4).
type MachineKind int

const (
	// Superscalar: sequential code semantics, δr = δw = 0, serialization
	// arcs carry latency 1.
	Superscalar MachineKind = iota
	// VLIW: architecturally visible offsets; serialization arcs carry
	// latency δr(u′) − δw(v), which may be non-positive.
	VLIW
	// EPIC: like VLIW, but a writer and a reader may share an instruction
	// group, so the writing delay is statically zero.
	EPIC
)

func (k MachineKind) String() string {
	switch k {
	case Superscalar:
		return "superscalar"
	case VLIW:
		return "vliw"
	default:
		return "epic"
	}
}

// HasOffsets reports whether the machine exposes read/write delay offsets.
func (k MachineKind) HasOffsets() bool { return k != Superscalar }

// EdgeKind distinguishes flow dependences (through a register value) from
// plain serial precedence constraints.
type EdgeKind int

const (
	// Flow is a true data dependence through a register of some type.
	Flow EdgeKind = iota
	// Serial is any other precedence constraint.
	Serial
)

func (k EdgeKind) String() string {
	if k == Flow {
		return "flow"
	}
	return "serial"
}

// Node is one operation (statement) of the DDG.
type Node struct {
	ID      int
	Name    string
	Op      string // mnemonic, informational
	Latency int64  // execution latency, default latency of its flow edges
	// Writes maps each register type the node defines to its writing offset
	// δw (cycles after issue at which the result register is written). A
	// node defines at most one value per type (model restriction, §2).
	Writes map[RegType]int64
	// DelayR is the reading offset δr: operands are read DelayR cycles
	// after issue. Zero on superscalar and EPIC reads at issue.
	DelayR int64
}

// WritesType reports whether the node defines a value of type t.
func (n *Node) WritesType(t RegType) bool {
	_, ok := n.Writes[t]
	return ok
}

// DelayW returns δw(n) for type t (0 if the node does not write t).
func (n *Node) DelayW(t RegType) int64 { return n.Writes[t] }

// Edge is a dependence of the DDG.
type Edge struct {
	From, To int
	Latency  int64
	Kind     EdgeKind
	Type     RegType // set only for Kind == Flow
}

// Graph is a data dependence DAG over operations. Build it with New/AddNode/
// AddFlowEdge/AddSerialEdge, then call Finalize to append the bottom node ⊥
// and validate. Analyses in other packages require a finalized graph.
type Graph struct {
	Name    string
	Machine MachineKind

	nodes  []Node
	edges  []Edge
	bottom int // index of ⊥, or -1 before Finalize

	finalized bool
}

// New creates an empty DDG for the given machine kind.
func New(name string, machine MachineKind) *Graph {
	return &Graph{Name: name, Machine: machine, bottom: -1}
}

// AddNode appends an operation and returns its ID. The latency is both the
// node's execution latency and the default latency of its flow edges.
func (g *Graph) AddNode(name, op string, latency int64) int {
	g.mustBeMutable()
	if latency < 0 {
		panic(fmt.Sprintf("ddg: node %s has negative latency %d", name, latency))
	}
	g.nodes = append(g.nodes, Node{
		ID:      len(g.nodes),
		Name:    name,
		Op:      op,
		Latency: latency,
		Writes:  map[RegType]int64{},
	})
	return len(g.nodes) - 1
}

// SetWrites declares that node u defines a value of type t with writing
// offset δw. Superscalar machines must use δw = 0.
func (g *Graph) SetWrites(u int, t RegType, dw int64) {
	g.mustBeMutable()
	if !g.Machine.HasOffsets() && dw != 0 {
		panic(fmt.Sprintf("ddg: node %s: superscalar machines have δw = 0", g.nodes[u].Name))
	}
	g.nodes[u].Writes[t] = dw
}

// SetReadDelay declares node u's reading offset δr.
func (g *Graph) SetReadDelay(u int, dr int64) {
	g.mustBeMutable()
	if !g.Machine.HasOffsets() && dr != 0 {
		panic(fmt.Sprintf("ddg: node %s: superscalar machines have δr = 0", g.nodes[u].Name))
	}
	g.nodes[u].DelayR = dr
}

// AddFlowEdge adds a flow dependence u→v through the value u writes of type
// t, with latency defaulting to u's node latency.
func (g *Graph) AddFlowEdge(u, v int, t RegType) int {
	return g.AddFlowEdgeLatency(u, v, t, g.nodes[u].Latency)
}

// AddFlowEdgeLatency is AddFlowEdge with an explicit latency.
func (g *Graph) AddFlowEdgeLatency(u, v int, t RegType, latency int64) int {
	g.mustBeMutable()
	if !g.nodes[u].WritesType(t) {
		panic(fmt.Sprintf("ddg: flow edge %s→%s of type %s, but %s does not write %s",
			g.nodes[u].Name, g.nodes[v].Name, t, g.nodes[u].Name, t))
	}
	g.edges = append(g.edges, Edge{From: u, To: v, Latency: latency, Kind: Flow, Type: t})
	return len(g.edges) - 1
}

// AddSerialEdge adds a serial precedence constraint u→v with the given
// latency. Negative latencies are admitted only on machines with offsets
// (they arise from RS reduction on VLIW/EPIC codes).
func (g *Graph) AddSerialEdge(u, v int, latency int64) int {
	g.mustBeMutable()
	if latency < 0 && !g.Machine.HasOffsets() {
		panic("ddg: negative serial latency on a superscalar machine")
	}
	g.edges = append(g.edges, Edge{From: u, To: v, Latency: latency, Kind: Serial})
	return len(g.edges) - 1
}

func (g *Graph) mustBeMutable() {
	if g.finalized {
		panic("ddg: graph is finalized")
	}
}

// NumNodes returns the operation count (including ⊥ once finalized).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the dependence count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID.
func (g *Graph) Node(id int) *Node { return &g.nodes[id] }

// Nodes returns the node slice (read-only by convention).
func (g *Graph) Nodes() []Node { return g.nodes }

// Edges returns the edge slice (read-only by convention).
func (g *Graph) Edges() []Edge { return g.edges }

// Bottom returns the ID of ⊥, or -1 if the graph is not finalized.
func (g *Graph) Bottom() int { return g.bottom }

// Finalized reports whether Finalize has completed.
func (g *Graph) Finalized() bool { return g.finalized }

// NodeByName returns the ID of the node with the given name, or -1.
func (g *Graph) NodeByName(name string) int {
	for i := range g.nodes {
		if g.nodes[i].Name == name {
			return i
		}
	}
	return -1
}

// Types returns the sorted set of register types written in the graph.
func (g *Graph) Types() []RegType {
	set := map[RegType]bool{}
	for i := range g.nodes {
		for t := range g.nodes[i].Writes {
			set[t] = true
		}
	}
	out := make([]RegType, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Values returns V_{R,t}: the IDs of nodes defining a value of type t, in
// increasing order. The bottom node never defines values.
func (g *Graph) Values(t RegType) []int {
	var out []int
	for i := range g.nodes {
		if g.nodes[i].WritesType(t) {
			out = append(out, i)
		}
	}
	return out
}

// Cons returns Cons(u^t): the consumers of the type-t value defined by u,
// in increasing order, without duplicates.
func (g *Graph) Cons(u int, t RegType) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range g.edges {
		if e.Kind == Flow && e.From == u && e.Type == t && !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	sort.Ints(out)
	return out
}

// Finalize appends the bottom node ⊥ (unless already present), connecting
// every exit value to it with a flow edge and every other node to it with a
// serial edge of latency equal to the source's latency, then validates the
// graph. After Finalize the graph is immutable through this API.
func (g *Graph) Finalize() error {
	if g.finalized {
		return nil
	}
	if len(g.nodes) == 0 {
		return fmt.Errorf("ddg %s: empty graph", g.Name)
	}
	bot := g.AddNode("_bot", "bottom", 0)
	g.bottom = bot
	// Exit values: values with no consumer get a flow edge to ⊥.
	for u := 0; u < bot; u++ {
		for t := range g.nodes[u].Writes {
			if len(g.Cons(u, t)) == 0 {
				g.AddFlowEdgeLatency(u, bot, t, g.nodes[u].Latency)
			}
		}
	}
	// Serial arc from every other node to ⊥ (latency = source latency),
	// skipping nodes that already reach ⊥ directly via the flow edges above.
	direct := make([]bool, bot)
	for _, e := range g.edges {
		if e.To == bot {
			direct[e.From] = true
		}
	}
	for u := 0; u < bot; u++ {
		if !direct[u] {
			g.AddSerialEdge(u, bot, g.nodes[u].Latency)
		}
	}
	g.finalized = true
	if err := g.Validate(); err != nil {
		g.finalized = false
		return err
	}
	return nil
}

// Validate checks the structural invariants of the model: the graph is a
// DAG; flow edges leave nodes that write their type; original flow latencies
// are positive; superscalar machines carry no offsets; the bottom node (when
// present) is the unique sink and reachable from every node.
func (g *Graph) Validate() error {
	dg := g.ToDigraph()
	if _, err := dg.TopoSort(); err != nil {
		return fmt.Errorf("ddg %s: %w", g.Name, err)
	}
	for _, e := range g.edges {
		if e.Kind == Flow {
			if !g.nodes[e.From].WritesType(e.Type) {
				return fmt.Errorf("ddg %s: flow edge %s→%s type %s from non-writer",
					g.Name, g.nodes[e.From].Name, g.nodes[e.To].Name, e.Type)
			}
			if e.Latency < 1 {
				return fmt.Errorf("ddg %s: flow edge %s→%s has latency %d < 1",
					g.Name, g.nodes[e.From].Name, g.nodes[e.To].Name, e.Latency)
			}
		}
	}
	if !g.Machine.HasOffsets() {
		for i := range g.nodes {
			if g.nodes[i].DelayR != 0 {
				return fmt.Errorf("ddg %s: node %s has δr ≠ 0 on superscalar", g.Name, g.nodes[i].Name)
			}
			for t, dw := range g.nodes[i].Writes {
				if dw != 0 {
					return fmt.Errorf("ddg %s: node %s has δw(%s) ≠ 0 on superscalar", g.Name, g.nodes[i].Name, t)
				}
			}
		}
	}
	if g.finalized {
		bot := g.bottom
		if g.nodes[bot].Name != "_bot" {
			return fmt.Errorf("ddg %s: bottom node corrupted", g.Name)
		}
		reach := make([]bool, len(g.nodes))
		for _, e := range g.edges {
			if e.To == bot {
				reach[e.From] = true
			}
			if e.From == bot {
				return fmt.Errorf("ddg %s: bottom node has outgoing edge", g.Name)
			}
		}
		for u := 0; u < bot; u++ {
			if !reach[u] {
				return fmt.Errorf("ddg %s: node %s has no edge to ⊥", g.Name, g.nodes[u].Name)
			}
		}
	}
	return nil
}

// ToDigraph converts the DDG to a weighted digraph over the same node IDs
// (weights are edge latencies) for path and closure computations.
func (g *Graph) ToDigraph() *graph.Digraph {
	dg := graph.New(len(g.nodes))
	for _, e := range g.edges {
		dg.AddEdge(e.From, e.To, e.Latency)
	}
	return dg
}

// Horizon returns the worst-case schedule horizon T used to bound all intLP
// variables. The paper proposes T = Σ_e δ(e) (a schedule with no ILP at
// all); we additionally add one slot per node so T stays valid when some
// latencies are zero or negative (VLIW serialization arcs).
func (g *Graph) Horizon() int64 {
	var total int64
	for _, e := range g.edges {
		if e.Latency > 0 {
			total += e.Latency
		}
	}
	return total + int64(len(g.nodes))
}

// Clone returns a deep copy of the graph (same finalized state).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Name:      g.Name,
		Machine:   g.Machine,
		nodes:     make([]Node, len(g.nodes)),
		edges:     append([]Edge(nil), g.edges...),
		bottom:    g.bottom,
		finalized: g.finalized,
	}
	for i := range g.nodes {
		c.nodes[i] = g.nodes[i]
		c.nodes[i].Writes = make(map[RegType]int64, len(g.nodes[i].Writes))
		for t, dw := range g.nodes[i].Writes {
			c.nodes[i].Writes[t] = dw
		}
	}
	return c
}

// CriticalPath returns the critical path length of the DDG (the longest
// path weight; on a finalized graph this ends at ⊥ and therefore includes
// the final operation latencies).
func (g *Graph) CriticalPath() int64 {
	length, _, _, err := g.ToDigraph().CriticalPath()
	if err != nil {
		panic(fmt.Sprintf("ddg %s: %v", g.Name, err))
	}
	return length
}

// SerialArc is a serialization arc added by RS reduction (Section 4).
type SerialArc struct {
	From, To int
	Latency  int64
}

// Extend returns a clone of g with the given extra serial arcs appended; the
// clone keeps the finalized state. It is the primitive used by RS reduction
// to build the extended DDG Ḡ = G ∪ E̅ without mutating the original. The
// caller is responsible for checking that the extension is still a DAG
// (Validate reports cycles).
func (g *Graph) Extend(arcs []SerialArc) *Graph {
	c := g.Clone()
	for _, a := range arcs {
		c.edges = append(c.edges, Edge{From: a.From, To: a.To, Latency: a.Latency, Kind: Serial})
	}
	return c
}
