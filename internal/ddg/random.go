package ddg

import (
	"fmt"
	"math/rand"
)

// RandomParams controls RandomGraph.
type RandomParams struct {
	// Nodes is the number of operations (before ⊥ is appended).
	Nodes int
	// EdgeProb is the probability of a dependence between two layered nodes.
	EdgeProb float64
	// MaxLatency bounds operation latencies (uniform in [1, MaxLatency]).
	MaxLatency int64
	// Types lists the register types to draw from; a node writes a value
	// with probability ValueProb, of a uniformly chosen type.
	Types     []RegType
	ValueProb float64
	// Machine selects offsets: for VLIW/EPIC, δr and δw are drawn in [0,2].
	Machine MachineKind
}

// DefaultRandomParams gives a small, dense, single-type superscalar DAG.
func DefaultRandomParams(n int) RandomParams {
	return RandomParams{
		Nodes:      n,
		EdgeProb:   0.3,
		MaxLatency: 4,
		Types:      []RegType{Float},
		ValueProb:  0.8,
		Machine:    Superscalar,
	}
}

// RandomGraph builds a random finalized DDG: nodes are topologically layered
// (edges only run from lower to higher index, so the graph is a DAG by
// construction), each node may define a value, and each dependence on a
// value-producing node becomes a flow edge (serial otherwise).
func RandomGraph(rng *rand.Rand, p RandomParams) *Graph {
	if p.Nodes <= 0 {
		panic("ddg: RandomGraph needs at least one node")
	}
	if len(p.Types) == 0 {
		p.Types = []RegType{Float}
	}
	g := New(fmt.Sprintf("random-%d", p.Nodes), p.Machine)
	writes := make([]RegType, p.Nodes)
	for i := 0; i < p.Nodes; i++ {
		lat := 1 + rng.Int63n(p.MaxLatency)
		id := g.AddNode(fmt.Sprintf("n%d", i), "op", lat)
		if p.Machine.HasOffsets() {
			g.SetReadDelay(id, rng.Int63n(3))
		}
		if rng.Float64() < p.ValueProb {
			t := p.Types[rng.Intn(len(p.Types))]
			var dw int64
			if p.Machine == VLIW {
				dw = rng.Int63n(3)
			}
			g.SetWrites(id, t, dw)
			writes[i] = t
		}
	}
	for u := 0; u < p.Nodes; u++ {
		for v := u + 1; v < p.Nodes; v++ {
			if rng.Float64() >= p.EdgeProb {
				continue
			}
			if writes[u] != "" {
				g.AddFlowEdge(u, v, writes[u])
			} else {
				g.AddSerialEdge(u, v, g.Node(u).Latency)
			}
		}
	}
	if err := g.Finalize(); err != nil {
		panic(fmt.Sprintf("ddg: RandomGraph produced invalid graph: %v", err))
	}
	return g
}
