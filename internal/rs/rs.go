package rs

import (
	"context"
	"fmt"

	"regsat/internal/ddg"
	"regsat/internal/schedule"
	"regsat/internal/solver"
)

// Method selects how the saturation is computed.
type Method int

const (
	// MethodGreedy is the near-optimal Greedy-k heuristic of [14]
	// (polynomial; may under-estimate RS, empirically by at most one).
	MethodGreedy Method = iota
	// MethodExactBB is the exact combinatorial branch-and-bound over valid
	// killing functions.
	MethodExactBB
	// MethodExactILP is the paper's Section 3 intLP formulation solved with
	// the in-repo MILP solver.
	MethodExactILP
)

func (m Method) String() string {
	switch m {
	case MethodGreedy:
		return "greedy-k"
	case MethodExactBB:
		return "exact-bb"
	default:
		return "exact-intlp"
	}
}

// Options configures Compute.
type Options struct {
	Method Method
	// MaxLeaves caps the exact-BB search (0 = default).
	MaxLeaves int64
	// ApplyReductions enables the Section 3 model optimizations for the
	// intLP method.
	ApplyReductions bool
	// Solver selects and bounds the MILP backend for the intLP method
	// (zero value: the default backend with default limits).
	Solver solver.Options
	// SkipWitness suppresses the construction of a saturating schedule.
	SkipWitness bool
}

// Result is the register saturation of one register type.
type Result struct {
	Type ddg.RegType
	// RS is the computed saturation: exact when Exact, otherwise a valid
	// achievable lower bound RS* ≤ RS.
	RS int
	// Antichain lists the saturating values (node IDs): a set of values
	// that some schedule keeps simultaneously alive.
	Antichain []int
	// Exact reports whether RS is proven maximal.
	Exact bool
	// Witness is a valid schedule of G realizing RS simultaneously-alive
	// values (nil if SkipWitness).
	Witness *schedule.Schedule
	// Killing is the killing function behind the result (nil for intLP).
	Killing *Killing
	// ILP carries intLP model info when MethodExactILP ran.
	ILP *ILPInfo
	// ILPUpperBound is the solver's proven upper bound when MethodExactILP
	// was capped: the true RS lies in [RS, ILPUpperBound]. Equal to RS when
	// Exact.
	ILPUpperBound int
	// SolverStats is the MILP backend's work accounting (intLP method only).
	SolverStats *solver.Stats
	// BBStats is the combinatorial search's work accounting (MethodExactBB
	// only). On a capped search the true RS lies in
	// [RS, BBStats.UpperBound] — the same interval reporting SolverStats
	// gives for capped MILP solves.
	BBStats *ExactStats
}

// Compute computes the register saturation RS_t(G) using the selected
// method. The graph must be finalized. Cancelling ctx interrupts an
// in-flight exact solve (the intLP method checks it inside simplex
// iterations, so batch cancellation does not wait out a long MILP).
func Compute(ctx context.Context, g *ddg.Graph, t ddg.RegType, opts Options) (*Result, error) {
	an, err := NewAnalysis(g, t)
	if err != nil {
		return nil, err
	}
	return ComputeWithAnalysis(ctx, an, opts)
}

// ComputeWithAnalysis is Compute with a prebuilt Analysis (to share it
// across methods, as the experiments do).
func ComputeWithAnalysis(ctx context.Context, an *Analysis, opts Options) (*Result, error) {
	if len(an.Values) == 0 {
		return &Result{Type: an.Type, RS: 0, Exact: true}, nil
	}
	switch opts.Method {
	case MethodGreedy:
		res, err := Greedy(an)
		if err != nil {
			return nil, err
		}
		return finishCombinatorial(an, res, false, opts)
	case MethodExactBB:
		res, stats, err := ExactBB(an, opts.MaxLeaves)
		if err != nil {
			return nil, err
		}
		out, err := finishCombinatorial(an, res, !stats.Capped, opts)
		if err != nil {
			return nil, err
		}
		out.BBStats = stats
		return out, nil
	case MethodExactILP:
		ires, err := ExactILP(ctx, an, opts.ApplyReductions, opts.Solver)
		if err != nil {
			return nil, err
		}
		stats := ires.Stats
		out := &Result{
			Type:          an.Type,
			RS:            ires.RS,
			Antichain:     ires.Antichain,
			Exact:         ires.Exact,
			ILP:           ires.Info,
			ILPUpperBound: ires.UpperBound,
			SolverStats:   &stats,
		}
		if !opts.SkipWitness {
			out.Witness = ires.Witness
		}
		return out, nil
	default:
		return nil, fmt.Errorf("rs: unknown method %d", opts.Method)
	}
}

func finishCombinatorial(an *Analysis, res *RSResult, exact bool, opts Options) (*Result, error) {
	out := &Result{
		Type:      an.Type,
		RS:        res.RS,
		Antichain: res.Antichain,
		Exact:     exact,
		Killing:   res.Killing,
	}
	if !opts.SkipWitness {
		w, err := SaturatingSchedule(res)
		if err != nil {
			return nil, err
		}
		out.Witness = w
	}
	return out, nil
}

// ComputeAll computes the saturation of every register type of the graph.
func ComputeAll(ctx context.Context, g *ddg.Graph, opts Options) (map[ddg.RegType]*Result, error) {
	out := map[ddg.RegType]*Result{}
	for _, t := range g.Types() {
		r, err := Compute(ctx, g, t, opts)
		if err != nil {
			return nil, err
		}
		out[t] = r
	}
	return out, nil
}
