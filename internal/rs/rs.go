package rs

import (
	"fmt"

	"regsat/internal/ddg"
	"regsat/internal/lp"
	"regsat/internal/schedule"
)

// Method selects how the saturation is computed.
type Method int

const (
	// MethodGreedy is the near-optimal Greedy-k heuristic of [14]
	// (polynomial; may under-estimate RS, empirically by at most one).
	MethodGreedy Method = iota
	// MethodExactBB is the exact combinatorial branch-and-bound over valid
	// killing functions.
	MethodExactBB
	// MethodExactILP is the paper's Section 3 intLP formulation solved with
	// the in-repo MILP solver.
	MethodExactILP
)

func (m Method) String() string {
	switch m {
	case MethodGreedy:
		return "greedy-k"
	case MethodExactBB:
		return "exact-bb"
	default:
		return "exact-intlp"
	}
}

// Options configures Compute.
type Options struct {
	Method Method
	// MaxLeaves caps the exact-BB search (0 = default).
	MaxLeaves int64
	// ApplyReductions enables the Section 3 model optimizations for the
	// intLP method.
	ApplyReductions bool
	// LP bounds the MILP solver for the intLP method.
	LP lp.Params
	// SkipWitness suppresses the construction of a saturating schedule.
	SkipWitness bool
}

// Result is the register saturation of one register type.
type Result struct {
	Type ddg.RegType
	// RS is the computed saturation: exact when Exact, otherwise a valid
	// achievable lower bound RS* ≤ RS.
	RS int
	// Antichain lists the saturating values (node IDs): a set of values
	// that some schedule keeps simultaneously alive.
	Antichain []int
	// Exact reports whether RS is proven maximal.
	Exact bool
	// Witness is a valid schedule of G realizing RS simultaneously-alive
	// values (nil if SkipWitness).
	Witness *schedule.Schedule
	// Killing is the killing function behind the result (nil for intLP).
	Killing *Killing
	// ILP carries intLP model info when MethodExactILP ran.
	ILP *ILPInfo
}

// Compute computes the register saturation RS_t(G) using the selected
// method. The graph must be finalized.
func Compute(g *ddg.Graph, t ddg.RegType, opts Options) (*Result, error) {
	an, err := NewAnalysis(g, t)
	if err != nil {
		return nil, err
	}
	return ComputeWithAnalysis(an, opts)
}

// ComputeWithAnalysis is Compute with a prebuilt Analysis (to share it
// across methods, as the experiments do).
func ComputeWithAnalysis(an *Analysis, opts Options) (*Result, error) {
	if len(an.Values) == 0 {
		return &Result{Type: an.Type, RS: 0, Exact: true}, nil
	}
	switch opts.Method {
	case MethodGreedy:
		res, err := Greedy(an)
		if err != nil {
			return nil, err
		}
		return finishCombinatorial(an, res, false, opts)
	case MethodExactBB:
		res, stats, err := ExactBB(an, opts.MaxLeaves)
		if err != nil {
			return nil, err
		}
		return finishCombinatorial(an, res, !stats.Capped, opts)
	case MethodExactILP:
		ires, err := ExactILP(an, opts.ApplyReductions, opts.LP)
		if err != nil {
			return nil, err
		}
		out := &Result{
			Type:      an.Type,
			RS:        ires.RS,
			Antichain: ires.Antichain,
			Exact:     ires.Exact,
			ILP:       ires.Info,
		}
		if !opts.SkipWitness {
			out.Witness = ires.Witness
		}
		return out, nil
	default:
		return nil, fmt.Errorf("rs: unknown method %d", opts.Method)
	}
}

func finishCombinatorial(an *Analysis, res *RSResult, exact bool, opts Options) (*Result, error) {
	out := &Result{
		Type:      an.Type,
		RS:        res.RS,
		Antichain: res.Antichain,
		Exact:     exact,
		Killing:   res.Killing,
	}
	if !opts.SkipWitness {
		w, err := SaturatingSchedule(res)
		if err != nil {
			return nil, err
		}
		out.Witness = w
	}
	return out, nil
}

// ComputeAll computes the saturation of every register type of the graph.
func ComputeAll(g *ddg.Graph, opts Options) (map[ddg.RegType]*Result, error) {
	out := map[ddg.RegType]*Result{}
	for _, t := range g.Types() {
		r, err := Compute(g, t, opts)
		if err != nil {
			return nil, err
		}
		out[t] = r
	}
	return out, nil
}
