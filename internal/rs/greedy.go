package rs

import (
	"fmt"
	"sort"

	"regsat/internal/graph"
)

// GreedyScoring selects the candidate-evaluation metric of Greedy-k.
type GreedyScoring int

const (
	// ScoreAntichain evaluates each killer candidate by the maximum
	// antichain of the partially-decided order (the default; strongest).
	ScoreAntichain GreedyScoring = iota
	// ScoreLocalPairs evaluates only the local count of order pairs the
	// candidate induces (cheaper, weaker — kept for the ablation study).
	ScoreLocalPairs
)

// Greedy computes the Greedy-k heuristic of [14]: choose, value by value, a
// potential killer that keeps the extended graph acyclic and locally
// minimizes the number of lifetime-order pairs it induces — fewer order
// pairs leave wider antichains, hence a larger (closer to optimal)
// saturation estimate. The result is always a *valid* saturation, i.e. a
// lower bound RS* ≤ RS witnessed by an actual killing function.
func Greedy(an *Analysis) (*RSResult, error) {
	return GreedyWithScoring(an, ScoreAntichain)
}

// GreedyWithScoring is Greedy with an explicit candidate-scoring metric.
// Candidates are evaluated on the Incremental engine: each probe is a
// Push/Pop pair with delta longest-path updates instead of a from-scratch
// extended-graph rebuild.
func GreedyWithScoring(an *Analysis, scoring GreedyScoring) (*RSResult, error) {
	nv := len(an.Values)

	// Decide values in increasing order of choice count, then node ID, so
	// constrained values commit first and the deterministic tie-breaks keep
	// results reproducible.
	order := make([]int, nv)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if len(an.PKill[ia]) != len(an.PKill[ib]) {
			return len(an.PKill[ia]) < len(an.PKill[ib])
		}
		return an.Values[ia] < an.Values[ib]
	})

	// Values with a single potential killer are fixed up front (they push no
	// enforcement arcs, but their induced order pairs participate in the
	// scoring of every later decision).
	ik := NewIncremental(an)
	for i := 0; i < nv; i++ {
		if len(an.PKill[i]) == 1 {
			ik.Push(i, an.PKill[i][0])
		}
	}
	for _, i := range order {
		cands := an.PKill[i]
		if len(cands) == 1 {
			continue
		}
		// Score each candidate by the maximum antichain of the partial
		// order induced by the killers decided so far plus this candidate
		// (the quantity Greedy-k tries to keep large); break ties with the
		// cheaper local pair count, then by node ID for determinism.
		bestCand, bestMA, bestScore := -1, -1, 1<<30
		for _, cand := range cands {
			if !ik.Push(i, cand) {
				continue // closes a cycle with earlier commitments
			}
			ma := 0
			if scoring == ScoreAntichain {
				ma = ik.Bound()
			}
			score := an.orderScore(cand, i)
			if ma > bestMA || (ma == bestMA && score < bestScore) {
				bestCand, bestMA, bestScore = cand, ma, score
			}
			ik.Pop()
		}
		if bestCand < 0 {
			// Every candidate closes a cycle with earlier commitments; fall
			// back to searching any valid completion from scratch.
			return greedyFallback(an, order)
		}
		ik.Push(i, bestCand)
	}

	k, err := NewKilling(an, ik.Killers())
	if err != nil {
		return nil, err
	}
	// All values are decided, so the evaluator's order is the full DV_k:
	// its maintained matching gives the saturation and a witness antichain,
	// no rebuild needed.
	out := &RSResult{RS: ik.Bound(), Killing: k}
	for _, idx := range ik.AntichainMembers() {
		out.Antichain = append(out.Antichain, an.Values[idx])
	}
	return out, nil
}

// addEnforcement adds the arcs (v′, killer) for value i and returns the new
// edge indices so the caller can roll back. (Used by the from-scratch
// reference and fallback paths only; the hot paths go through Incremental.)
func addEnforcement(dg *graph.Digraph, an *Analysis, i, killer int) []int {
	var added []int
	for _, other := range an.PKill[i] {
		if other == killer {
			continue
		}
		lat := an.G.Node(other).DelayR - an.G.Node(killer).DelayR
		added = append(added, dg.AddEdge(other, killer, lat))
	}
	return added
}

// orderScore estimates how many lifetime-order pairs value i acquires when
// killed by cand: the count of values v with lp(cand, v) ≥ δr(cand) − δw(v)
// in the *base* graph. A cheap, deterministic greedy metric.
func (an *Analysis) orderScore(cand, i int) int {
	score := 0
	candRead := an.G.Node(cand).DelayR
	for j, vj := range an.Values {
		if j == i {
			continue
		}
		lp := an.AP.Path(cand, vj)
		if lp == graph.NoPath {
			continue
		}
		if lp >= candRead-an.DelayW(j) {
			score++
		}
	}
	return score
}

// greedyFallback finds any valid killer assignment by depth-first search
// (only reachable on VLIW/EPIC graphs whose offsets allow enforcement
// cycles).
func greedyFallback(an *Analysis, order []int) (*RSResult, error) {
	killer := make([]int, len(an.Values))
	for i := range killer {
		killer[i] = -1
	}
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == len(order) {
			return true
		}
		i := order[pos]
		for _, cand := range an.PKill[i] {
			killer[i] = cand
			if partialValid(an, killer) && rec(pos+1) {
				return true
			}
		}
		killer[i] = -1
		return false
	}
	if !rec(0) {
		return nil, fmt.Errorf("rs: no valid killing function exists for %s/%s", an.G.Name, an.Type)
	}
	k, err := NewKilling(an, killer)
	if err != nil {
		return nil, err
	}
	return k.Saturation()
}

// partialValid checks acyclicity of the extension restricted to the decided
// killers (-1 = undecided).
func partialValid(an *Analysis, killer []int) bool {
	dg := an.IR.Digraph()
	for i, k := range killer {
		if k < 0 {
			continue
		}
		addEnforcement(dg, an, i, k)
	}
	return dg.IsDAG()
}
