package rs

import (
	"fmt"

	"regsat/internal/graph"
)

// Killing is a killing function: one chosen killer per value.
type Killing struct {
	An *Analysis
	// Killer[i] is the node ID chosen to kill value i; it must be a member
	// of An.PKill[i].
	Killer []int
}

// NewKilling wraps a killer choice (node IDs, one per value).
func NewKilling(an *Analysis, killer []int) (*Killing, error) {
	if len(killer) != len(an.Values) {
		return nil, fmt.Errorf("rs: killing function has %d entries for %d values",
			len(killer), len(an.Values))
	}
	for i, k := range killer {
		ok := false
		for _, cand := range an.PKill[i] {
			if cand == k {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("rs: node %s is not a potential killer of value %s",
				an.G.Node(k).Name, an.G.Node(an.Values[i]).Name)
		}
	}
	return &Killing{An: an, Killer: append([]int(nil), killer...)}, nil
}

// ExtendedGraph builds G→k: the original dependence graph plus, for every
// value i and every other potential killer v′ ≠ k(i), an enforcement arc
// (v′, k(i)) with latency δr(v′) − δr(k(i)). In any schedule of G→k the
// killing date of value i is pinned to σ(k(i)) + δr(k(i)).
func (k *Killing) ExtendedGraph() *graph.Digraph {
	an := k.An
	dg := an.IR.Digraph()
	for i, killer := range k.Killer {
		for _, other := range an.PKill[i] {
			if other == killer {
				continue
			}
			lat := an.G.Node(other).DelayR - an.G.Node(killer).DelayR
			dg.AddEdge(other, killer, lat)
		}
	}
	return dg
}

// Valid reports whether the extended graph is still a DAG. (On superscalar
// targets every killing function is valid; visible offsets on VLIW/EPIC can
// produce cycles, which the paper excludes for RS computation.)
func (k *Killing) Valid() bool {
	return k.ExtendedGraph().IsDAG()
}

// Order computes DV_k: the partial order over value indices where i ≺ j iff
// value i's lifetime ends no later than value j's starts in *every* schedule
// of G→k, decided by lp_{G→k}(k(i), v_j) ≥ δr(k(i)) − δw(v_j).
// It errors if the extended graph is cyclic (invalid killing function).
func (k *Killing) Order() (*graph.Order, error) {
	an := k.An
	ext := k.ExtendedGraph()
	ap, err := ext.LongestAllPairs()
	if err != nil {
		return nil, fmt.Errorf("rs: invalid killing function (extended graph cyclic): %w", err)
	}
	o := graph.NewOrder(len(an.Values))
	for i := range an.Values {
		killer := k.Killer[i]
		killerRead := an.G.Node(killer).DelayR
		for j, vj := range an.Values {
			if i == j {
				continue
			}
			lp := ap.D[killer][vj]
			if lp == graph.NoPath {
				continue
			}
			if lp >= killerRead-an.DelayW(j) {
				o.SetLess(i, j)
			}
		}
	}
	return o, nil
}

// RSResult is the saturation computed for one killing function.
type RSResult struct {
	RS        int
	Antichain []int // node IDs of one maximum antichain (saturating values)
	Killing   *Killing
}

// Saturation computes RS_k = the maximum antichain of DV_k, with a witness
// antichain in node IDs.
func (k *Killing) Saturation() (*RSResult, error) {
	o, err := k.Order()
	if err != nil {
		return nil, err
	}
	res := o.MaximumAntichain()
	out := &RSResult{RS: res.Size, Killing: k}
	for _, idx := range res.Members {
		out.Antichain = append(out.Antichain, k.An.Values[idx])
	}
	return out, nil
}
