package rs

import (
	"fmt"
	"sort"
)

// ExactStats reports the work done by the combinatorial exact search.
type ExactStats struct {
	// Leaves is the number of complete killing functions evaluated.
	Leaves int64
	// Pruned is the number of subtrees cut by the antichain upper bound.
	Pruned int64
	// Capped is true when the leaf budget was exhausted with the search still
	// incomplete; the result is then only a lower bound.
	Capped bool
	// UpperBound is the proven upper bound on the saturation: when Capped the
	// true RS lies in the interval [result.RS, UpperBound] — the combinatorial
	// analogue of solver.Solution.Bound/Gap reporting. Equal to the result
	// when the search completed.
	UpperBound int
}

// ExactBB computes the exact register saturation by branch-and-bound over
// valid killing functions (the saturation problem is NP-complete [14], but
// loop-body DAGs have few multi-killer values). maxLeaves caps the search
// (0 = default 1e6); the cap is checked *before* evaluating a leaf, so
// exactly maxLeaves leaves are evaluated and a search whose tree holds no
// more is reported complete. If the cap cuts the search short, the best
// found is returned with Stats.Capped set and Stats.UpperBound bounding the
// unexplored remainder.
//
// The search runs on the Incremental evaluator: enforcement arcs are pushed
// and popped along the dive with delta longest-path updates, the DV_k order
// is maintained as bitset rows, and the antichain bound comes from an
// incrementally augmented matching — no per-node digraph, all-pairs, or
// matching rebuild.
func ExactBB(an *Analysis, maxLeaves int64) (*RSResult, *ExactStats, error) {
	if maxLeaves <= 0 {
		maxLeaves = 1_000_000
	}
	nv := len(an.Values)
	stats := &ExactStats{UpperBound: nv}

	ik := NewIncremental(an)
	// Branch only on multi-choice values, most-constrained (fewest killers)
	// first; single-choice killers are fixed up front (they push no arcs, so
	// they can never fail, but their order pairs participate in every bound).
	var branch []int
	for i := 0; i < nv; i++ {
		if len(an.PKill[i]) == 1 {
			ik.Push(i, an.PKill[i][0])
		} else {
			branch = append(branch, i)
		}
	}
	sort.Slice(branch, func(a, b int) bool {
		ia, ib := branch[a], branch[b]
		if len(an.PKill[ia]) != len(an.PKill[ib]) {
			return len(an.PKill[ia]) < len(an.PKill[ib])
		}
		return an.Values[ia] < an.Values[ib]
	})
	if nv > 0 {
		// Root bound: the antichain of the forced-killers-only order. Deeper
		// decisions only add order pairs, which only shrink the antichain, so
		// this bounds every leaf of the tree.
		stats.UpperBound = ik.Bound()
	}

	bestRS := -1
	var bestKiller, bestMembers []int
	var rec func(pos int)
	rec = func(pos int) {
		if pos == len(branch) {
			if stats.Leaves >= maxLeaves {
				stats.Capped = true
				return
			}
			stats.Leaves++
			if size := ik.Bound(); size > bestRS {
				bestRS = size
				bestKiller = ik.Killers()
				bestMembers = ik.AntichainMembers()
			}
			return
		}
		// Upper bound: the order induced by the already-decided killers only.
		if bestRS >= 0 {
			if ub := ik.Bound(); ub <= bestRS {
				stats.Pruned++
				return
			}
		}
		i := branch[pos]
		for _, cand := range an.PKill[i] {
			if !ik.Push(i, cand) {
				continue // cycle: this partial extension is invalid
			}
			rec(pos + 1)
			ik.Pop()
			if stats.Capped {
				return
			}
		}
	}
	rec(0)

	if bestRS < 0 {
		return nil, stats, fmt.Errorf("rs: no valid killing function for %s/%s", an.G.Name, an.Type)
	}
	if !stats.Capped {
		stats.UpperBound = bestRS
	}
	k, err := NewKilling(an, bestKiller)
	if err != nil {
		return nil, stats, err
	}
	out := &RSResult{RS: bestRS, Killing: k}
	for _, idx := range bestMembers {
		out.Antichain = append(out.Antichain, an.Values[idx])
	}
	return out, stats, nil
}

// EnumerateValidKillings calls visit for every valid killing function; visit
// returns false to stop. Exponential — used by tests as an oracle.
func EnumerateValidKillings(an *Analysis, visit func(k *Killing) bool) error {
	nv := len(an.Values)
	killer := make([]int, nv)
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == nv {
			k, err := NewKilling(an, killer)
			if err != nil {
				return false, err
			}
			if !k.Valid() {
				return true, nil
			}
			return visit(k), nil
		}
		for _, cand := range an.PKill[i] {
			killer[i] = cand
			cont, err := rec(i + 1)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := rec(0)
	return err
}
