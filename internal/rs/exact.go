package rs

import (
	"fmt"
	"sort"

	"regsat/internal/graph"
)

// ExactStats reports the work done by the combinatorial exact search.
type ExactStats struct {
	// Leaves is the number of complete killing functions evaluated.
	Leaves int64
	// Pruned is the number of subtrees cut by the antichain upper bound.
	Pruned int64
	// Capped is true when the node budget was exhausted; the result is then
	// only a lower bound.
	Capped bool
}

// ExactBB computes the exact register saturation by branch-and-bound over
// valid killing functions (the saturation problem is NP-complete [14], but
// loop-body DAGs have few multi-killer values). maxLeaves caps the search
// (0 = default 1e6); if the cap is hit, the best found is returned with
// Stats.Capped set.
func ExactBB(an *Analysis, maxLeaves int64) (*RSResult, *ExactStats, error) {
	if maxLeaves == 0 {
		maxLeaves = 1_000_000
	}
	nv := len(an.Values)
	stats := &ExactStats{}

	// Branch only on multi-choice values, most-constrained (fewest killers)
	// first; single-choice killers are fixed up front.
	killer := make([]int, nv)
	var branch []int
	for i := 0; i < nv; i++ {
		if len(an.PKill[i]) == 1 {
			killer[i] = an.PKill[i][0]
		} else {
			killer[i] = -1
			branch = append(branch, i)
		}
	}
	sort.Slice(branch, func(a, b int) bool {
		ia, ib := branch[a], branch[b]
		if len(an.PKill[ia]) != len(an.PKill[ib]) {
			return len(an.PKill[ia]) < len(an.PKill[ib])
		}
		return an.Values[ia] < an.Values[ib]
	})

	var best *RSResult
	var rec func(pos int) error
	rec = func(pos int) error {
		if stats.Capped {
			return nil
		}
		if pos == len(branch) {
			stats.Leaves++
			if stats.Leaves >= maxLeaves {
				stats.Capped = true
			}
			k, err := NewKilling(an, killer)
			if err != nil {
				return err
			}
			res, err := k.Saturation()
			if err != nil {
				return nil // invalid (cyclic) killing function: skip leaf
			}
			if best == nil || res.RS > best.RS {
				best = res
			}
			return nil
		}
		// Upper bound: the order induced by the already-decided killers only.
		// Adding more decisions can only add order pairs, which can only
		// shrink the maximum antichain.
		if best != nil {
			ub, feasible := partialUpperBound(an, killer)
			if !feasible {
				return nil // current partial extension already cyclic
			}
			if ub <= best.RS {
				stats.Pruned++
				return nil
			}
		}
		i := branch[pos]
		for _, cand := range an.PKill[i] {
			killer[i] = cand
			if err := rec(pos + 1); err != nil {
				return err
			}
		}
		killer[i] = -1
		return nil
	}
	if err := rec(0); err != nil {
		return nil, stats, err
	}
	if best == nil {
		return nil, stats, fmt.Errorf("rs: no valid killing function for %s/%s", an.G.Name, an.Type)
	}
	return best, stats, nil
}

// partialUpperBound computes the maximum antichain of the order induced by
// the decided killers only (-1 = undecided contributes no pairs). Returns
// feasible=false when the partial extension is already cyclic.
func partialUpperBound(an *Analysis, killer []int) (int, bool) {
	dg := an.G.ToDigraph()
	for i, k := range killer {
		if k >= 0 {
			addEnforcement(dg, an, i, k)
		}
	}
	ap, err := dg.LongestAllPairs()
	if err != nil {
		return 0, false
	}
	o := graph.NewOrder(len(an.Values))
	for i, k := range killer {
		if k < 0 {
			continue
		}
		kRead := an.G.Node(k).DelayR
		for j, vj := range an.Values {
			if i == j {
				continue
			}
			lp := ap.D[k][vj]
			if lp != graph.NoPath && lp >= kRead-an.DelayW(j) {
				o.SetLess(i, j)
			}
		}
	}
	return o.MaximumAntichain().Size, true
}

// EnumerateValidKillings calls visit for every valid killing function; visit
// returns false to stop. Exponential — used by tests as an oracle.
func EnumerateValidKillings(an *Analysis, visit func(k *Killing) bool) error {
	nv := len(an.Values)
	killer := make([]int, nv)
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == nv {
			k, err := NewKilling(an, killer)
			if err != nil {
				return false, err
			}
			if !k.Valid() {
				return true, nil
			}
			return visit(k), nil
		}
		for _, cand := range an.PKill[i] {
			killer[i] = cand
			cont, err := rec(i + 1)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := rec(0)
	return err
}
