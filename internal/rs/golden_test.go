package rs

import (
	"context"
	"testing"

	"regsat/internal/ddg"
	"regsat/internal/kernels"
)

// goldenRS locks in the exact register saturation of every kernel. The
// values were cross-validated against brute-force schedule enumeration (for
// the small kernels) and the intLP; a change here means the analysis or the
// kernel definitions changed semantically.
var goldenRS = map[string]map[ddg.RegType]int{
	"fig2":         {ddg.Float: 4},
	"lin-daxpy":    {ddg.Float: 2, ddg.Int: 4},
	"lin-daxpy-u4": {ddg.Float: 8, ddg.Int: 4},
	"liv-l4":       {ddg.Float: 7},
	"liv-l9":       {ddg.Float: 9},
	"liv-l10":      {ddg.Float: 6},
	"liv-l18":      {ddg.Float: 8},
	"whet-p4":      {ddg.Int: 6},
	"spec-mgrid":   {ddg.Float: 8},
	"spec-su2cor":  {ddg.Float: 8},
	"lin-ddot":     {ddg.Float: 4, ddg.Int: 4},
	"lin-dscal":    {ddg.Float: 2, ddg.Int: 2},
	"liv-l1":       {ddg.Float: 3, ddg.Int: 2},
	"liv-l2":       {ddg.Float: 5},
	"liv-l3":       {ddg.Float: 4},
	"liv-l5":       {ddg.Float: 3},
	"liv-l7":       {ddg.Float: 12},
	"liv-l11":      {ddg.Float: 2, ddg.Int: 1},
	"liv-l12":      {ddg.Float: 3},
	"whet-p3":      {ddg.Float: 5},
	"whet-p8":      {ddg.Float: 4},
	"spec-swim":    {ddg.Float: 9},
	"spec-tomcatv": {ddg.Float: 8},
	"spec-fpppp":   {ddg.Float: 4},
	"syn-wide8":    {ddg.Float: 8},
	"syn-chain6":   {ddg.Float: 1},
	"syn-fork4":    {ddg.Float: 4},
	"syn-diamond":  {ddg.Float: 2},
	"syn-mixed":    {ddg.Float: 3, ddg.Int: 4},
}

func TestGoldenKernelSaturations(t *testing.T) {
	for _, machine := range []ddg.MachineKind{ddg.Superscalar, ddg.VLIW} {
		for _, spec := range kernels.All() {
			want, ok := goldenRS[spec.Name]
			if !ok {
				t.Errorf("kernel %s missing from the golden table", spec.Name)
				continue
			}
			g := spec.Build(machine)
			for _, typ := range g.Types() {
				wantRS, ok := want[typ]
				if !ok {
					t.Errorf("%s/%s missing from the golden table", spec.Name, typ)
					continue
				}
				res, err := Compute(context.Background(), g, typ, Options{Method: MethodExactBB, SkipWitness: true})
				if err != nil {
					t.Fatalf("%s/%s on %s: %v", spec.Name, typ, machine, err)
				}
				if !res.Exact {
					t.Fatalf("%s/%s on %s: exact capped", spec.Name, typ, machine)
				}
				if res.RS != wantRS {
					t.Errorf("%s/%s on %s: RS=%d, golden %d",
						spec.Name, typ, machine, res.RS, wantRS)
				}
			}
		}
	}
}

// TestGoldenGreedyMatchesExactOnSuite locks in the measured E3 headline: on
// this suite the Greedy-k heuristic is exactly optimal everywhere (the paper
// reports error ≤ 1 register in very few cases; ours shows zero here, with
// errors appearing only on adversarial random DAGs).
func TestGoldenGreedyMatchesExactOnSuite(t *testing.T) {
	for _, spec := range kernels.All() {
		g := spec.Build(ddg.Superscalar)
		for _, typ := range g.Types() {
			an, err := NewAnalysis(g, typ)
			if err != nil {
				t.Fatal(err)
			}
			greedy, err := Greedy(an)
			if err != nil {
				t.Fatal(err)
			}
			if want := goldenRS[spec.Name][typ]; greedy.RS != want {
				t.Errorf("%s/%s: greedy RS=%d, exact %d", spec.Name, typ, greedy.RS, want)
			}
		}
	}
}

// TestGoldenWitnessesAchieveSaturation verifies, for every kernel, that the
// returned saturating schedule actually realizes the golden RS — the
// saturation is not just an upper bound but attained.
func TestGoldenWitnessesAchieveSaturation(t *testing.T) {
	for _, spec := range kernels.All() {
		g := spec.Build(ddg.Superscalar)
		for _, typ := range g.Types() {
			res, err := Compute(context.Background(), g, typ, Options{Method: MethodExactBB})
			if err != nil {
				t.Fatal(err)
			}
			if res.Witness == nil {
				t.Fatalf("%s/%s: no witness", spec.Name, typ)
			}
			if err := res.Witness.Validate(); err != nil {
				t.Fatalf("%s/%s: invalid witness: %v", spec.Name, typ, err)
			}
			if rn := res.Witness.RegisterNeed(typ); rn != res.RS {
				t.Errorf("%s/%s: witness RN=%d, RS=%d", spec.Name, typ, rn, res.RS)
			}
		}
	}
}
