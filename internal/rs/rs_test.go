package rs

import (
	"context"
	"math/rand"
	"testing"

	"regsat/internal/ddg"
	"regsat/internal/schedule"
)

// bruteRS computes the exact register saturation by enumerating every valid
// schedule within the horizon — the ground-truth oracle (tiny graphs only).
func bruteRS(t *testing.T, g *ddg.Graph, typ ddg.RegType, T int64) int {
	t.Helper()
	best := 0
	err := schedule.ForEach(g, T, func(times []int64) bool {
		s := schedule.New(g, times)
		if rn := s.RegisterNeed(typ); rn > best {
			best = rn
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return best
}

// tinyRandom builds a random tiny superscalar DDG with unit-ish latencies so
// the schedule space stays enumerable.
func tinyRandom(rng *rand.Rand, n int) *ddg.Graph {
	p := ddg.DefaultRandomParams(n)
	p.MaxLatency = 2
	p.EdgeProb = 0.4
	return ddg.RandomGraph(rng, p)
}

func TestPotentialKillersForkJoin(t *testing.T) {
	// src feeds f0..f3 (unordered): all four are potential killers.
	g := ddg.New("fork", ddg.Superscalar)
	src := g.AddNode("src", "load", 1)
	g.SetWrites(src, ddg.Float, 0)
	for i := 0; i < 4; i++ {
		f := g.AddNode("f", "fmul", 1)
		g.SetWrites(f, ddg.Float, 0)
		g.AddFlowEdge(src, f, ddg.Float)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalysis(g, ddg.Float)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.PKill[an.Index[src]]) != 4 {
		t.Fatalf("pkill(src)=%v, want 4 killers", an.PKill[an.Index[src]])
	}
}

func TestPotentialKillersChainDominated(t *testing.T) {
	// src feeds both mid and end, with mid → end: end dominates mid, so
	// pkill(src) = {end}.
	g := ddg.New("dom", ddg.Superscalar)
	src := g.AddNode("src", "load", 1)
	mid := g.AddNode("mid", "fmul", 1)
	end := g.AddNode("end", "fadd", 1)
	g.SetWrites(src, ddg.Float, 0)
	g.SetWrites(mid, ddg.Float, 0)
	g.SetWrites(end, ddg.Float, 0)
	g.AddFlowEdge(src, mid, ddg.Float)
	g.AddFlowEdge(src, end, ddg.Float)
	g.AddFlowEdge(mid, end, ddg.Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalysis(g, ddg.Float)
	if err != nil {
		t.Fatal(err)
	}
	pk := an.PKill[an.Index[src]]
	if len(pk) != 1 || pk[0] != end {
		t.Fatalf("pkill(src)=%v, want [end]", pk)
	}
}

func TestGreedyLowerBoundsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		g := tinyRandom(rng, 3+rng.Intn(6))
		for _, typ := range g.Types() {
			an, err := NewAnalysis(g, typ)
			if err != nil {
				t.Fatal(err)
			}
			if len(an.Values) == 0 {
				continue
			}
			greedy, err := Greedy(an)
			if err != nil {
				t.Fatal(err)
			}
			exact, stats, err := ExactBB(an, 0)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Capped {
				t.Fatal("tiny instance capped")
			}
			if greedy.RS > exact.RS {
				t.Fatalf("trial %d: greedy %d > exact %d", trial, greedy.RS, exact.RS)
			}
		}
	}
}

func TestExactBBMatchesBruteForceSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	checked := 0
	for trial := 0; trial < 200 && checked < 25; trial++ {
		g := tinyRandom(rng, 3+rng.Intn(3)) // ≤ 5 ops + ⊥
		if g.Horizon() > 14 {
			continue // keep the oracle enumerable
		}
		for _, typ := range g.Types() {
			an, err := NewAnalysis(g, typ)
			if err != nil {
				t.Fatal(err)
			}
			if len(an.Values) == 0 {
				continue
			}
			exact, stats, err := ExactBB(an, 0)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Capped {
				continue
			}
			want := bruteRS(t, g, typ, g.Horizon())
			if exact.RS != want {
				t.Fatalf("trial %d (%s/%s): exact-BB RS=%d, brute-force RS=%d\n%s",
					trial, g.Name, typ, exact.RS, want, g.Format())
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked against the oracle", checked)
	}
}

func TestExactILPMatchesExactBB(t *testing.T) {
	if testing.Short() {
		t.Skip("slow exhaustive check; skipped with -short")
	}
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for trial := 0; trial < 60 && checked < 15; trial++ {
		g := tinyRandom(rng, 3+rng.Intn(4))
		for _, typ := range g.Types() {
			an, err := NewAnalysis(g, typ)
			if err != nil {
				t.Fatal(err)
			}
			if len(an.Values) == 0 || len(an.Values) > 6 {
				continue
			}
			bb, stats, err := ExactBB(an, 0)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Capped {
				continue
			}
			ilpRes, err := ExactILP(context.Background(), an, true, lpDefaults())
			if err != nil {
				t.Fatal(err)
			}
			if !ilpRes.Exact {
				continue
			}
			if ilpRes.RS != bb.RS {
				t.Fatalf("trial %d (%s/%s): intLP RS=%d, BB RS=%d\n%s",
					trial, g.Name, typ, ilpRes.RS, bb.RS, g.Format())
			}
			checked++
		}
	}
	if checked < 8 {
		t.Fatalf("only %d instances cross-checked", checked)
	}
}

func TestWitnessAchievesRS(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		g := tinyRandom(rng, 3+rng.Intn(6))
		for _, typ := range g.Types() {
			res, err := Compute(context.Background(), g, typ, Options{Method: MethodExactBB})
			if err != nil {
				t.Fatal(err)
			}
			if res.Witness == nil {
				if res.RS == 0 {
					continue
				}
				t.Fatal("missing witness")
			}
			if err := res.Witness.Validate(); err != nil {
				t.Fatal(err)
			}
			if rn := res.Witness.RegisterNeed(typ); rn != res.RS {
				t.Fatalf("trial %d: witness RN=%d, RS=%d", trial, rn, res.RS)
			}
		}
	}
}

func TestILPWitnessAchievesRS(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	checked := 0
	for trial := 0; trial < 40 && checked < 10; trial++ {
		g := tinyRandom(rng, 3+rng.Intn(3))
		for _, typ := range g.Types() {
			an, err := NewAnalysis(g, typ)
			if err != nil {
				t.Fatal(err)
			}
			if len(an.Values) == 0 || len(an.Values) > 5 {
				continue
			}
			res, err := ExactILP(context.Background(), an, true, lpDefaults())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exact {
				continue
			}
			if rn := res.Witness.RegisterNeed(typ); rn < res.RS {
				t.Fatalf("intLP witness RN=%d < RS=%d", rn, res.RS)
			}
			checked++
		}
	}
	if checked < 5 {
		t.Fatalf("only %d checked", checked)
	}
}

func TestRSUpperBoundedByValueCount(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 30; trial++ {
		g := tinyRandom(rng, 3+rng.Intn(8))
		for _, typ := range g.Types() {
			res, err := Compute(context.Background(), g, typ, Options{Method: MethodGreedy, SkipWitness: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.RS > len(g.Values(typ)) {
				t.Fatalf("RS=%d > |values|=%d", res.RS, len(g.Values(typ)))
			}
		}
	}
}

func TestOrderIsTransitiveAndAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		g := tinyRandom(rng, 3+rng.Intn(6))
		for _, typ := range g.Types() {
			an, err := NewAnalysis(g, typ)
			if err != nil {
				t.Fatal(err)
			}
			if len(an.Values) == 0 {
				continue
			}
			res, err := Greedy(an)
			if err != nil {
				t.Fatal(err)
			}
			o, err := res.Killing.Order()
			if err != nil {
				t.Fatal(err)
			}
			n := o.N()
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if a == b {
						continue
					}
					if o.Less(a, b) && o.Less(b, a) {
						t.Fatalf("order not antisymmetric at (%d,%d)", a, b)
					}
					for c := 0; c < n; c++ {
						if c == a || c == b {
							continue
						}
						if o.Less(a, b) && o.Less(b, c) && !o.Less(a, c) {
							t.Fatalf("order not transitive: %d<%d<%d but not %d<%d\n%s",
								a, b, c, a, c, g.Format())
						}
					}
				}
			}
		}
	}
}

func TestEnumerateValidKillingsAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		g := tinyRandom(rng, 3+rng.Intn(4))
		for _, typ := range g.Types() {
			an, err := NewAnalysis(g, typ)
			if err != nil {
				t.Fatal(err)
			}
			if len(an.Values) == 0 {
				continue
			}
			best := 0
			err = EnumerateValidKillings(an, func(k *Killing) bool {
				res, err := k.Saturation()
				if err == nil && res.RS > best {
					best = res.RS
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			exact, _, err := ExactBB(an, 0)
			if err != nil {
				t.Fatal(err)
			}
			if exact.RS != best {
				t.Fatalf("BB RS=%d, enumeration RS=%d", exact.RS, best)
			}
		}
	}
}

func TestComputeAllTypes(t *testing.T) {
	g := ddg.New("two", ddg.Superscalar)
	a := g.AddNode("a", "iadd", 1)
	b := g.AddNode("b", "load", 2)
	g.SetWrites(a, ddg.Int, 0)
	g.SetWrites(b, ddg.Float, 0)
	g.AddFlowEdge(a, b, ddg.Int)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	all, err := ComputeAll(context.Background(), g, Options{Method: MethodGreedy, SkipWitness: true})
	if err != nil {
		t.Fatal(err)
	}
	if all[ddg.Int] == nil || all[ddg.Float] == nil {
		t.Fatal("missing a type")
	}
	if all[ddg.Int].RS != 1 || all[ddg.Float].RS != 1 {
		t.Fatalf("RS int=%d float=%d, want 1, 1", all[ddg.Int].RS, all[ddg.Float].RS)
	}
}

func TestTrivialCase(t *testing.T) {
	g := ddg.New("triv", ddg.Superscalar)
	a := g.AddNode("a", "load", 1)
	g.SetWrites(a, ddg.Float, 0)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalysis(g, ddg.Float)
	if err != nil {
		t.Fatal(err)
	}
	if !an.TrivialRS(1) || an.TrivialRS(0) {
		t.Fatal("TrivialRS dispatch wrong")
	}
	res, err := Compute(context.Background(), g, ddg.Float, Options{Method: MethodExactBB})
	if err != nil {
		t.Fatal(err)
	}
	if res.RS != 1 {
		t.Fatalf("RS=%d, want 1", res.RS)
	}
}

func TestNoValuesType(t *testing.T) {
	g := ddg.New("novals", ddg.Superscalar)
	g.AddNode("a", "nop", 1)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := Compute(context.Background(), g, ddg.Float, Options{Method: MethodGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if res.RS != 0 || !res.Exact {
		t.Fatalf("RS=%d exact=%v, want 0 exact", res.RS, res.Exact)
	}
}
