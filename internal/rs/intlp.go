package rs

import (
	"context"
	"fmt"
	"math"

	"regsat/internal/ddg"
	"regsat/internal/graph"
	"regsat/internal/ilp"
	"regsat/internal/interference"
	"regsat/internal/lp"
	"regsat/internal/schedule"
	"regsat/internal/solver"
)

// ILPInfo reports the size of the constructed intLP system — the paper's
// headline complexity claim is O(n²) integer variables and O(m + n²) linear
// constraints (Section 3).
type ILPInfo struct {
	Vars, IntVars, Constrs int
	// RedundantArcs is the number of scheduling constraints dropped by the
	// first model optimization of Section 3.
	RedundantArcs int
	// NeverAlivePairs is the number of interference variables dropped by
	// the second model optimization (values that can never be
	// simultaneously alive).
	NeverAlivePairs int
}

// CoreVars are the variables shared by the Section 3 (saturation) and
// Section 4 (reduction) intLP systems: scheduling times, killing dates, and
// pairwise interference binaries.
type CoreVars struct {
	// Sigma[u] is σ_u for every node u.
	Sigma []lp.Var
	// Kill[i] is k of value i (index into Analysis.Values).
	Kill []lp.Var
	// S[{i,j}] (i<j) is the interference binary s_{u,v}.
	S map[[2]int]lp.Var
	// H[{i,j}] (ordered) is the half-interference binary
	// h_{i→j} ⇔ (k_i > σ_vj + δw(j)), i.e. ¬(LT_i ≺ LT_j).
	H map[[2]int]lp.Var
	// NeverAlive[{i,j}] (i<j) marks pairs statically known to never be
	// simultaneously alive (second model optimization): no S/H variables.
	NeverAlive map[[2]int]bool
}

// BuildCore adds to m the Section 3 constraint core for the given analysis:
// bounded scheduling variables with precedence constraints, killing dates as
// linearized max operators, and the interference equivalence
// s_{u,v} ⇔ ¬(LT_u ≺ LT_v) ∧ ¬(LT_v ≺ LT_u). When reduceModel is set, the
// paper's two model optimizations are applied.
//
// strictSlack widens the interference test: a pair counts as interfering
// already when one value dies within strictSlack cycles of the other's
// birth. Saturation (Section 3) always uses 0 (the exact left-open overlap);
// the Section 4 reduction on zero-offset machines uses 1, because its
// latency-1 serialization arcs can only realize strictly separated
// lifetimes.
func BuildCore(an *Analysis, reduceModel bool, strictSlack int64, m *lp.Model) (*CoreVars, *ILPInfo, error) {
	g := an.G
	T := g.Horizon()
	lo, hi, err := schedule.WindowsIR(an.IR, T)
	if err != nil {
		return nil, nil, err
	}
	vars := &CoreVars{
		S:          map[[2]int]lp.Var{},
		H:          map[[2]int]lp.Var{},
		NeverAlive: map[[2]int]bool{},
	}
	info := &ILPInfo{}

	// Scheduling variables σ_u ∈ [ASAP_u, ALAP_u(T)].
	for u := 0; u < g.NumNodes(); u++ {
		vars.Sigma = append(vars.Sigma,
			m.NewVar(float64(lo[u]), float64(hi[u]), true, fmt.Sprintf("sigma(%s)", g.Node(u).Name)))
	}

	// Precedence constraints, optionally dropping redundant arcs (the
	// reduction is memoized on the interned snapshot, so repeated model
	// builds over one structure pay for it once).
	skip := map[int]bool{}
	if reduceModel {
		red, err := an.IR.RedundantEdges()
		if err != nil {
			return nil, nil, err
		}
		for _, ei := range red {
			skip[ei] = true
		}
		info.RedundantArcs = len(red)
	}
	for ei, e := range g.Edges() {
		if skip[ei] {
			continue
		}
		ilp.GE(m, ilp.VarExpr(vars.Sigma[e.To]).Minus(ilp.VarExpr(vars.Sigma[e.From])).AddConst(float64(-e.Latency)),
			fmt.Sprintf("prec(%s,%s)", g.Node(e.From).Name, g.Node(e.To).Name))
	}

	// Killing dates: k_i = max over consumers of σ_v + δr(v).
	for i, u := range an.Values {
		cons := an.Cons[i]
		kloVal, khiVal := int64(-1)<<62, int64(-1)<<62
		for _, v := range cons {
			if r := lo[v] + g.Node(v).DelayR; r > kloVal {
				kloVal = r
			}
			if r := hi[v] + g.Node(v).DelayR; r > khiVal {
				khiVal = r
			}
		}
		kv := m.NewVar(float64(kloVal), float64(khiVal), true,
			fmt.Sprintf("kill(%s)", g.Node(u).Name))
		vars.Kill = append(vars.Kill, kv)
		exprs := make([]ilp.Expr, len(cons))
		for ci, v := range cons {
			exprs[ci] = ilp.VarExpr(vars.Sigma[v]).AddConst(float64(g.Node(v).DelayR))
		}
		ilp.MaxEquals(m, kv, exprs, fmt.Sprintf("killmax(%s)", g.Node(u).Name))
	}

	// Interference equivalences per value pair.
	for i := 0; i < len(an.Values); i++ {
		for j := i + 1; j < len(an.Values); j++ {
			if reduceModel && (an.neverAlive(i, j) || an.neverAlive(j, i)) {
				info.NeverAlivePairs++
				vars.NeverAlive[[2]int{i, j}] = true
				continue
			}
			ui, uj := an.Values[i], an.Values[j]
			// h_{i→j} ⇔ k_i − σ_uj − δw(j) − 1 + strictSlack ≥ 0
			// (k_i > birth of j, strengthened by the machine slack).
			h1 := ilp.IffGE(m,
				ilp.VarExpr(vars.Kill[i]).Minus(ilp.VarExpr(vars.Sigma[uj])).AddConst(float64(-an.DelayW(j)-1+strictSlack)),
				fmt.Sprintf("h(%d,%d)", i, j))
			h2 := ilp.IffGE(m,
				ilp.VarExpr(vars.Kill[j]).Minus(ilp.VarExpr(vars.Sigma[ui])).AddConst(float64(-an.DelayW(i)-1+strictSlack)),
				fmt.Sprintf("h(%d,%d)", j, i))
			vars.H[[2]int{i, j}] = h1
			vars.H[[2]int{j, i}] = h2
			s := ilp.AndBinary(m, h1, h2, fmt.Sprintf("s(%d,%d)", i, j))
			vars.S[[2]int{i, j}] = s
		}
	}
	return vars, info, nil
}

// ILPVars exposes the saturation-model variables.
type ILPVars struct {
	*CoreVars
	// X[i] is the independent-set binary of value i.
	X []lp.Var
}

// BuildSaturationModel constructs the Section 3 intLP for RS_t(G):
//
//	maximize Σ x_{u^t}
//	s.t.     the interference core (BuildCore), and
//	         s_{u,v} = 0 ⇒ x_u + x_v ≤ 1   (independent set in H′_t)
func BuildSaturationModel(an *Analysis, reduceModel bool) (*lp.Model, *ILPVars, *ILPInfo, error) {
	m := lp.NewModel(fmt.Sprintf("RS(%s,%s)", an.G.Name, an.Type), lp.Maximize)
	core, info, err := BuildCore(an, reduceModel, 0, m)
	if err != nil {
		return nil, nil, nil, err
	}
	vars := &ILPVars{CoreVars: core}
	for _, u := range an.Values {
		vars.X = append(vars.X, m.NewBinary(fmt.Sprintf("x(%s)", an.G.Node(u).Name)))
	}
	for i := 0; i < len(an.Values); i++ {
		for j := i + 1; j < len(an.Values); j++ {
			key := [2]int{i, j}
			if core.NeverAlive[key] {
				// s is statically 0: emit the IS constraint directly.
				m.AddConstr([]lp.Term{{Var: vars.X[i], Coef: 1}, {Var: vars.X[j], Coef: 1}},
					lp.LE, 1, fmt.Sprintf("is0(%d,%d)", i, j))
				continue
			}
			// s = 0 ⇒ x_i + x_j ≤ 1, linearized as x_i + x_j ≤ 1 + s.
			m.AddConstr([]lp.Term{
				{Var: vars.X[i], Coef: 1}, {Var: vars.X[j], Coef: 1}, {Var: core.S[key], Coef: -1},
			}, lp.LE, 1, fmt.Sprintf("is(%d,%d)", i, j))
		}
	}
	for _, x := range vars.X {
		m.SetObjCoef(x, 1)
	}
	info.Vars = m.NumVars()
	info.IntVars = m.NumIntVars()
	info.Constrs = m.NumConstrs()
	return m, vars, info, nil
}

// neverAlive implements the second Section 3 optimization: value j can never
// be alive together with value i if every consumer of value i reads before
// value j is defined in all schedules: ∀v′ ∈ Cons(i): lp(v′, u_j) ≥
// δr(v′) − δw(j).
func (an *Analysis) neverAlive(i, j int) bool {
	uj := an.Values[j]
	for _, vp := range an.Cons[i] {
		lpw := an.AP.Path(vp, uj)
		if lpw == graph.NoPath {
			return false
		}
		if lpw < an.G.Node(vp).DelayR-an.DelayW(j) {
			return false
		}
	}
	return true
}

// ForcedInterference reports a static sufficient condition for the
// half-interference binary h_{i→j} to be 1 in every feasible point of the
// intLP core: some consumer v of value i lies on a path from u_j, so
// k_i ≥ σ_v + δr(v) ≥ σ_{u_j} + lp(u_j, v) + δr(v) in every schedule the
// precedence constraints admit, and when lp(u_j, v) + δr(v) ≥
// δw(j) + 1 − strictSlack that makes the IffGE body nonnegative always.
// Pairs forced in both directions have s_{ij} = 1 in every feasible point
// (the interference AND-link), i.e. they always interfere.
func (an *Analysis) ForcedInterference(i, j int, strictSlack int64) bool {
	uj := an.Values[j]
	for _, v := range an.Cons[i] {
		lpw := an.AP.Path(uj, v)
		if lpw == graph.NoPath {
			continue
		}
		if lpw+an.G.Node(v).DelayR >= an.DelayW(j)+1-strictSlack {
			return true
		}
	}
	return false
}

// SaturationCliques derives the clique cuts of the saturation model from
// the never-alive relation: any two values that can never be simultaneously
// alive exclude each other from the maximal antichain (the is0/is rows
// enforce the pairs one by one), so for a clique C of the relation
// Σ_{i∈C} x_i ≤ 1 is valid for every integer-feasible point — a much
// tighter LP statement than the pairwise rows. The cliques come from
// interference.MaximalCliques and are deterministic for a given analysis.
func SaturationCliques(an *Analysis, vars *ILPVars) []solver.Clique {
	n := len(an.Values)
	if n < 3 {
		return nil
	}
	adj := make([]bool, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if an.neverAlive(i, j) || an.neverAlive(j, i) {
				adj[i*n+j] = true
				adj[j*n+i] = true
			}
		}
	}
	cliques := interference.MaximalCliques(n,
		func(i, j int) bool { return adj[i*n+j] }, 3, 64)
	out := make([]solver.Clique, 0, len(cliques))
	for ci, c := range cliques {
		cl := solver.Clique{Name: fmt.Sprintf("nacq%d", ci), RHS: 1}
		for _, i := range c {
			cl.Vars = append(cl.Vars, vars.X[i])
		}
		out = append(out, cl)
	}
	return out
}

// ILPResult is the outcome of the exact intLP computation.
type ILPResult struct {
	RS        int
	Antichain []int // node IDs with x = 1
	Witness   *schedule.Schedule
	Exact     bool // false if a search limit was hit (RS is then a lower bound)
	// UpperBound is the solver's proven dual bound: when Exact is false the
	// true saturation lies in the interval [RS, UpperBound] (the intLP
	// analogue of ExactStats.Capped reporting).
	UpperBound int
	Info       *ILPInfo
	Nodes      int // branch-and-bound nodes explored
	// Stats is the selected backend's work accounting.
	Stats solver.Stats
}

// ExactILP computes RS_t(G) with the paper's intLP formulation, solved by
// the backend selected in opt. The search is seeded with Greedy-k's valid
// killing-function bound — an objective value some schedule provably
// achieves — so subtrees that cannot reach it are pruned before the first
// incumbent. Cancelling ctx interrupts an in-flight solve.
func ExactILP(ctx context.Context, an *Analysis, reduceModel bool, opt solver.Options) (*ILPResult, error) {
	m, vars, info, err := BuildSaturationModel(an, reduceModel)
	if err != nil {
		return nil, err
	}
	if opt.Hints == nil && !opt.DisableCuts {
		// Thread the never-alive clique structure down to the solver's cut
		// layer, so it never re-derives graph facts from the matrix.
		if cl := SaturationCliques(an, vars); len(cl) > 0 {
			opt.Hints = &solver.Hints{Cliques: cl}
		}
	}
	var seed *RSResult
	if opt.Cutoff == nil {
		if g, err := Greedy(an); err == nil {
			// Greedy's killing function is valid, so RS* is achievable: seed
			// it as a held incumbent and search only for strictly more
			// simultaneously-alive values.
			seed = g
			opt.Cutoff = solver.CutoffAt(float64(g.RS))
			opt.ExclusiveCutoff = true
		}
	}
	sol, err := solver.Solve(ctx, m, opt)
	if err != nil {
		return nil, fmt.Errorf("rs: intLP for %s/%s: %w", an.G.Name, an.Type, err)
	}
	res := &ILPResult{Info: info, Stats: sol.Stats, Nodes: int(sol.Stats.Nodes)}
	// |VR| values can never need more than |VR| registers: cap the reported
	// upper bound by the trivial one.
	clamp := func() {
		if nv := len(an.Values); res.UpperBound > nv {
			res.UpperBound = nv
		}
	}
	defer clamp()
	// fromSeed finishes the result from the greedy seed (whose killing
	// function is valid, so its RS, antichain, and saturating schedule are
	// all achievable).
	fromSeed := func(exact bool) (*ILPResult, error) {
		res.RS = seed.RS
		res.Exact = exact
		res.UpperBound = boundToInt(sol.Bound, res.RS, exact)
		res.Antichain = append([]int(nil), seed.Antichain...)
		w, err := SaturatingSchedule(seed)
		if err != nil {
			return nil, err
		}
		res.Witness = w
		return res, nil
	}
	if sol.AtCutoff && seed != nil {
		// Nothing beats the greedy bound: it is the saturation (proved when
		// the tree was exhausted); the greedy antichain and witness stand.
		return fromSeed(sol.Status == lp.StatusOptimal)
	}
	switch sol.Status {
	case lp.StatusOptimal, lp.StatusFeasible:
		if sol.X == nil {
			// AtCutoff with a caller-supplied exclusive cutoff: no
			// assignment to decode a witness from.
			return nil, fmt.Errorf("rs: intLP for %s/%s: optimum equals the caller's cutoff %g; no witness available",
				an.G.Name, an.Type, sol.Obj)
		}
		res.RS = int(sol.Obj + 0.5)
		res.Exact = sol.Status == lp.StatusOptimal
		res.UpperBound = boundToInt(sol.Bound, res.RS, res.Exact)
		for i, x := range vars.X {
			if sol.IntValue(x) == 1 {
				res.Antichain = append(res.Antichain, an.Values[i])
			}
		}
		times := make([]int64, an.G.NumNodes())
		for u, sv := range vars.Sigma {
			times[u] = sol.IntValue(sv)
		}
		w := schedule.New(an.G, times)
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("rs: intLP witness invalid: %w", err)
		}
		res.Witness = w
		return res, nil
	case lp.StatusLimit:
		// Capped before any incumbent: fall back to the greedy seed, which
		// is a valid achievable lower bound, and report the interval.
		if seed == nil {
			if seed, err = Greedy(an); err != nil {
				return nil, fmt.Errorf("rs: intLP for %s/%s capped with no incumbent: %w",
					an.G.Name, an.Type, err)
			}
		}
		return fromSeed(false)
	default:
		return nil, fmt.Errorf("rs: intLP for %s/%s: %v", an.G.Name, an.Type, sol.Status)
	}
}

// boundToInt converts the solver's dual bound on the (integral) saturation
// objective to an integer upper bound, never below the achieved value.
func boundToInt(bound float64, achieved int, exact bool) int {
	if exact {
		return achieved
	}
	if math.IsInf(bound, 0) || math.IsNaN(bound) {
		return int(^uint(0) >> 1) // unknown: everything is possible
	}
	ub := int(math.Floor(bound + 1e-6))
	if ub < achieved {
		ub = achieved
	}
	return ub
}

// TimeIndexedStats counts the variables and constraints a classic
// time-indexed formulation (x_{u,τ} issue binaries, per-cycle liveness and
// register-pressure rows) would need for the same instance — the literature
// baseline the paper's O(n²)/O(m+n²) claim is measured against.
func TimeIndexedStats(g *ddg.Graph, t ddg.RegType) (vars, constrs int64) {
	T := g.Horizon()
	n := int64(g.NumNodes())
	m := int64(g.NumEdges())
	nv := int64(len(g.Values(t)))
	vars = n*T + nv*T            // issue binaries + liveness binaries
	constrs = n + m*T + nv*T + T // assignment + precedence + liveness linking + pressure rows
	return vars, constrs
}
