package rs

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"regsat/internal/ddg"
	"regsat/internal/graph"
	"regsat/internal/ir"
)

// isLoopDDG reports whether a corpus file's header carries the `loop` flag:
// cyclic loop kernels do not parse as flat DDGs and are covered by
// internal/cyclic's own corpus test. (Inlined here because internal/cyclic
// depends on this package.)
func isLoopDDG(text string) bool {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "ddg") {
			return false
		}
		for _, f := range strings.Fields(line)[1:] {
			if f == "loop" {
				return true
			}
		}
		return false
	}
	return false
}

// loadCorpus parses and finalizes every acyclic .ddg file of the repository
// corpus.
func loadCorpus(t testing.TB) []*ddg.Graph {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.ddg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus: no .ddg files under ../../testdata")
	}
	var out []*ddg.Graph
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		if isLoopDDG(string(raw)) {
			continue
		}
		g, err := ddg.ParseString(string(raw))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if err := g.Finalize(); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		out = append(out, g)
	}
	return out
}

// diffState drives the incremental evaluator and the from-scratch rebuild
// through the same branch-and-bound tree, comparing them at every node.
type diffState struct {
	t      *testing.T
	an     *Analysis
	ik     *Incremental
	killer []int
	nodes  int
	budget int
}

func (d *diffState) compare(where string) {
	o, feasible := partialRebuildOrder(d.an, d.killer)
	if !feasible {
		d.t.Fatalf("%s/%s %s: rebuild says the pushed extension is cyclic", d.an.G.Name, d.an.Type, where)
	}
	nv := len(d.an.Values)
	for i := 0; i < nv; i++ {
		for j := 0; j < nv; j++ {
			if o.Less(i, j) != d.ik.Less(i, j) {
				d.t.Fatalf("%s/%s %s: order(%d,%d): rebuild=%t incremental=%t (killers %v)",
					d.an.G.Name, d.an.Type, where, i, j, o.Less(i, j), d.ik.Less(i, j), d.killer)
			}
		}
	}
	want := o.MaximumAntichain().Size
	if got := d.ik.Antichain().Size; want != got {
		d.t.Fatalf("%s/%s %s: antichain: rebuild=%d incremental=%d (killers %v)",
			d.an.G.Name, d.an.Type, where, want, got, d.killer)
	}
	if got := d.ik.Bound(); want != got {
		d.t.Fatalf("%s/%s %s: matching bound: rebuild=%d incremental=%d (killers %v)",
			d.an.G.Name, d.an.Type, where, want, got, d.killer)
	}
	members := d.ik.AntichainMembers()
	if len(members) != want {
		d.t.Fatalf("%s/%s %s: König antichain has %d members, want %d",
			d.an.G.Name, d.an.Type, where, len(members), want)
	}
	for x := 0; x < len(members); x++ {
		for y := x + 1; y < len(members); y++ {
			if o.Comparable(members[x], members[y]) {
				d.t.Fatalf("%s/%s %s: König antichain members %d,%d are comparable",
					d.an.G.Name, d.an.Type, where, members[x], members[y])
			}
		}
	}
}

func (d *diffState) walk(branch []int, pos int) {
	d.nodes++
	if d.nodes > d.budget {
		return
	}
	d.compare("node")
	if pos == len(branch) {
		return
	}
	i := branch[pos]
	for _, cand := range d.an.PKill[i] {
		d.killer[i] = cand
		pushed := d.ik.Push(i, cand)
		_, feasible := partialRebuildOrder(d.an, d.killer)
		if pushed != feasible {
			d.t.Fatalf("%s/%s: push(%d,%d): incremental=%t rebuild-feasible=%t (killers %v)",
				d.an.G.Name, d.an.Type, i, cand, pushed, feasible, d.killer)
		}
		if pushed {
			d.walk(branch, pos+1)
			d.ik.Pop()
		}
		d.killer[i] = -1
	}
}

// runDifferential checks the incremental evaluator against the from-scratch
// NewKilling-style rebuild at every node of the exact search tree of (g, t).
func runDifferential(t *testing.T, g *ddg.Graph, typ ddg.RegType, budget int) int {
	an, err := NewAnalysis(g, typ)
	if err != nil {
		t.Fatalf("%s/%s: %v", g.Name, typ, err)
	}
	if len(an.Values) == 0 {
		return 0
	}
	d := &diffState{t: t, an: an, ik: NewIncremental(an), killer: make([]int, len(an.Values)), budget: budget}
	var branch []int
	for i := range an.Values {
		if len(an.PKill[i]) == 1 {
			d.killer[i] = an.PKill[i][0]
			d.ik.Push(i, an.PKill[i][0])
		} else {
			d.killer[i] = -1
			branch = append(branch, i)
		}
	}
	d.walk(branch, 0)
	return d.nodes
}

// TestIncrementalMatchesRebuildCorpus is the corpus-wide differential: on
// every testdata graph and register type, the incremental evaluator must
// agree with the from-scratch rebuild — order rows, feasibility, and
// antichain bound — at every branch-and-bound node, with 0 disagreements.
func TestIncrementalMatchesRebuildCorpus(t *testing.T) {
	budget := 100000
	if testing.Short() {
		budget = 2000
	}
	total := 0
	for _, g := range loadCorpus(t) {
		for _, typ := range g.Types() {
			total += runDifferential(t, g, typ, budget)
		}
	}
	t.Logf("compared %d search nodes across the corpus", total)
}

// TestIncrementalMatchesRebuildRandom extends the differential to random
// graphs, including VLIW/EPIC offsets where enforcement arcs can close
// cycles (exercising the Push-refusal path).
func TestIncrementalMatchesRebuildRandom(t *testing.T) {
	count := 40
	if testing.Short() {
		count = 10
	}
	rng := rand.New(rand.NewSource(42))
	for _, machine := range []ddg.MachineKind{ddg.Superscalar, ddg.VLIW, ddg.EPIC} {
		for i := 0; i < count; i++ {
			p := ddg.DefaultRandomParams(7 + rng.Intn(5))
			p.Machine = machine
			p.Types = []ddg.RegType{ddg.Int, ddg.Float}
			g := ddg.RandomGraph(rng, p)
			for _, typ := range g.Types() {
				runDifferential(t, g, typ, 5000)
			}
		}
	}
}

// TestIncrementalPushPopRestores checks that a Pop restores the evaluator —
// longest-path matrix and order rows — exactly to its pre-Push state, across
// random push/pop sequences.
func TestIncrementalPushPopRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		p := ddg.DefaultRandomParams(8 + rng.Intn(4))
		if trial%2 == 1 {
			p.Machine = ddg.VLIW
		}
		g := ddg.RandomGraph(rng, p)
		for _, typ := range g.Types() {
			an, err := NewAnalysis(g, typ)
			if err != nil {
				t.Fatal(err)
			}
			ik := NewIncremental(an)
			base := append([]int64(nil), ik.d...)
			type dec struct{ i int }
			var stack []dec
			for step := 0; step < 200; step++ {
				if len(stack) > 0 && rng.Intn(3) == 0 {
					ik.Pop()
					stack = stack[:len(stack)-1]
					continue
				}
				// Pick an undecided value.
				var undec []int
				for i := range an.Values {
					if ik.Killer(i) < 0 {
						undec = append(undec, i)
					}
				}
				if len(undec) == 0 {
					break
				}
				i := undec[rng.Intn(len(undec))]
				cand := an.PKill[i][rng.Intn(len(an.PKill[i]))]
				if ik.Push(i, cand) {
					stack = append(stack, dec{i})
				}
			}
			for range stack {
				ik.Pop()
			}
			for idx, v := range ik.d {
				if v != base[idx] {
					t.Fatalf("%s/%s: matrix cell %d not restored: %d != %d", g.Name, typ, idx, v, base[idx])
				}
			}
			for i := range an.Values {
				if ik.less[i].Count() != 0 {
					t.Fatalf("%s/%s: order row %d not cleared after full unwind", g.Name, typ, i)
				}
				if ik.Killer(i) >= 0 && len(an.PKill[i]) > 1 {
					t.Fatalf("%s/%s: value %d still decided after full unwind", g.Name, typ, i)
				}
			}
		}
	}
}

// TestExactBBMatchesReference pins the incremental ExactBB to the retained
// from-scratch implementation on the corpus and on random graphs.
func TestExactBBMatchesReference(t *testing.T) {
	check := func(g *ddg.Graph) {
		for _, typ := range g.Types() {
			an, err := NewAnalysis(g, typ)
			if err != nil {
				t.Fatal(err)
			}
			got, gotStats, gotErr := ExactBB(an, 0)
			want, wantStats, wantErr := exactBBReference(an, 0)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s/%s: error mismatch: %v vs %v", g.Name, typ, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if got.RS != want.RS {
				t.Fatalf("%s/%s: RS mismatch: incremental=%d reference=%d", g.Name, typ, got.RS, want.RS)
			}
			if gotStats.Capped != wantStats.Capped {
				t.Fatalf("%s/%s: cap mismatch", g.Name, typ)
			}
			if gotStats.UpperBound != got.RS {
				t.Fatalf("%s/%s: uncapped search must prove UpperBound==RS, got %d != %d",
					g.Name, typ, gotStats.UpperBound, got.RS)
			}
			// The returned killing function must actually achieve RS.
			sat, err := got.Killing.Saturation()
			if err != nil {
				t.Fatalf("%s/%s: winning killing function invalid: %v", g.Name, typ, err)
			}
			if sat.RS != got.RS {
				t.Fatalf("%s/%s: killing function achieves %d, reported %d", g.Name, typ, sat.RS, got.RS)
			}
		}
	}
	for _, g := range loadCorpus(t) {
		check(g)
	}
	rng := rand.New(rand.NewSource(11))
	n := 30
	if testing.Short() {
		n = 8
	}
	for i := 0; i < n; i++ {
		p := ddg.DefaultRandomParams(8 + rng.Intn(4))
		if i%3 == 1 {
			p.Machine = ddg.VLIW
		}
		if i%3 == 2 {
			p.Machine = ddg.EPIC
		}
		check(ddg.RandomGraph(rng, p))
	}
}

// TestExactBBCapSemantics checks the fixed budget accounting: the cap is
// tested before evaluating a leaf, so a search whose tree holds exactly
// maxLeaves leaves completes uncapped, and a capped search reports a proven
// [RS, UpperBound] interval.
func TestExactBBCapSemantics(t *testing.T) {
	var an *Analysis
	for _, g := range loadCorpus(t) {
		for _, typ := range g.Types() {
			a, err := NewAnalysis(g, typ)
			if err != nil {
				t.Fatal(err)
			}
			if a.NumKillingFunctions() > 1 {
				an = a
				break
			}
		}
		if an != nil {
			break
		}
	}
	if an == nil {
		t.Fatal("corpus has no multi-killer case")
	}
	full, stats, err := ExactBB(an, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Capped {
		t.Fatal("unbounded search reported capped")
	}
	// A budget of exactly the evaluated leaves must complete uncapped (the
	// old check-after-evaluate flagged this complete search as capped).
	_, s2, err := ExactBB(an, stats.Leaves)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Capped {
		t.Fatalf("search with budget == leaf count (%d) reported capped", stats.Leaves)
	}
	if s2.Leaves != stats.Leaves {
		t.Fatalf("leaf count changed under exact budget: %d != %d", s2.Leaves, stats.Leaves)
	}
	// A budget of 1 evaluates exactly one leaf, caps, and brackets the truth.
	capped, s3, err := ExactBB(an, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !s3.Capped {
		t.Skip("single leaf already completed the tree") // single-branch case
	}
	if s3.Leaves != 1 {
		t.Fatalf("budget 1 evaluated %d leaves", s3.Leaves)
	}
	if capped.RS > s3.UpperBound {
		t.Fatalf("capped interval inverted: RS=%d > UpperBound=%d", capped.RS, s3.UpperBound)
	}
	if full.RS < capped.RS || full.RS > s3.UpperBound {
		t.Fatalf("true RS=%d outside proven interval [%d, %d]", full.RS, capped.RS, s3.UpperBound)
	}
}

// TestSharedSnapshotConcurrentReads hammers one interned ir.Snapshot from
// many goroutines running the full evaluator stack — analysis views, the
// incremental exact search, and Greedy-k — to prove concurrent reads of the
// shared immutable artifact are race-free (run under -race in CI).
func TestSharedSnapshotConcurrentReads(t *testing.T) {
	graphs := loadCorpus(t)
	g := graphs[0]
	for _, cand := range graphs {
		if len(cand.Types()) > 0 {
			g = cand
			break
		}
	}
	snap, err := ir.Intern(g)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, typ := range snap.Types {
				an, err := NewAnalysisIR(snap, typ)
				if err != nil {
					errs <- err
					return
				}
				if _, _, err := ExactBB(an, 0); err != nil {
					errs <- err
					return
				}
				if _, err := Greedy(an); err != nil {
					errs <- err
					return
				}
				if _, err := snap.RedundantEdges(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Sanity: the snapshot's closure agrees with its longest-path matrix.
	for u := 0; u < snap.N; u++ {
		for v := 0; v < snap.N; v++ {
			if u == v {
				continue
			}
			if snap.Reaches(u, v) != (snap.LongestPath(u, v) != graph.NoPath) {
				t.Fatalf("closure and AP disagree on (%d,%d)", u, v)
			}
		}
	}
}

// TestExactBBNegativeBudget pins the clamp: any non-positive budget means
// "default", never an instantly capped empty search.
func TestExactBBNegativeBudget(t *testing.T) {
	g := loadCorpus(t)[0]
	typ := g.Types()[0]
	an, err := NewAnalysis(g, typ)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := ExactBB(an, -1)
	if err != nil {
		t.Fatalf("negative budget must fall back to the default, got: %v", err)
	}
	if stats.Capped {
		t.Fatal("negative budget spuriously capped the search")
	}
	want, _, err := ExactBB(an, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RS != want.RS {
		t.Fatalf("RS %d != %d under default budget", res.RS, want.RS)
	}
}
