package rs

import (
	"fmt"

	"regsat/internal/schedule"
)

// SaturatingSchedule builds a witness schedule of the original graph under
// which all antichain values are simultaneously alive, proving that the
// computed saturation is achievable. It solves the difference-constraint
// system (via Bellman–Ford longest paths):
//
//	σ_v − σ_u ≥ δ(e)                 for every arc of G→k,
//	τ ≥ σ_a + δw(a) + 1              every antichain value a born before τ,
//	σ_k(a) + δr(k(a)) ≥ τ            and killed at or after τ,
//	σ_u ≥ 0.
func SaturatingSchedule(res *RSResult) (*schedule.Schedule, error) {
	k := res.Killing
	an := k.An
	n := an.G.NumNodes()
	// Variables: 0..n-1 = σ, n = τ, n+1 = virtual source S.
	tau, src := n, n+1
	type arc struct {
		from, to int
		w        int64
	}
	var arcs []arc
	ext := k.ExtendedGraph()
	for _, e := range ext.Edges() {
		arcs = append(arcs, arc{e.From, e.To, e.Weight})
	}
	for u := 0; u < n; u++ {
		arcs = append(arcs, arc{src, u, 0})
	}
	arcs = append(arcs, arc{src, tau, 0})
	for _, a := range res.Antichain {
		i := an.Index[a]
		killer := k.Killer[i]
		// τ − σ_a ≥ δw(a) + 1
		arcs = append(arcs, arc{a, tau, an.G.Node(a).DelayW(an.Type) + 1})
		// σ_k(a) − τ ≥ −δr(k(a))
		arcs = append(arcs, arc{tau, killer, -an.G.Node(killer).DelayR})
	}

	// Bellman–Ford longest paths from S.
	const negInf = int64(-1) << 62
	dist := make([]int64, n+2)
	for i := range dist {
		dist[i] = negInf
	}
	dist[src] = 0
	for iter := 0; iter <= n+2; iter++ {
		changed := false
		for _, a := range arcs {
			if dist[a.from] == negInf {
				continue
			}
			if d := dist[a.from] + a.w; d > dist[a.to] {
				dist[a.to] = d
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter == n+2 {
			return nil, fmt.Errorf("rs: saturating-schedule constraints are infeasible (positive cycle)")
		}
	}
	times := make([]int64, n)
	copy(times, dist[:n])
	s := schedule.New(an.G, times)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("rs: witness schedule invalid: %w", err)
	}
	return s, nil
}
