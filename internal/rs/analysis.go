// Package rs implements the paper's primary contribution: computing the
// register saturation RS_t(G) of a data dependence DAG — the exact maximum
// of the register requirement over all valid schedules — by three methods:
//
//   - the Greedy-k heuristic of [14] (killing functions + maximum antichains),
//   - an exact combinatorial branch-and-bound over valid killing functions,
//   - the paper's exact intLP formulation (Section 3), solved with the
//     in-repo MILP solver.
//
// The theory (from [14] and the thesis [15]): a value u^t dies when its last
// consumer reads it. The *potential killers* pkill(u^t) are the consumers
// not provably read-dominated by another consumer. Choosing one killer per
// value (a killing function k) and enforcing it with serialization arcs
// yields the extended DAG G→k, in which value lifetimes are pinned; the
// relation "u's lifetime is always before v's" is then decidable by longest
// paths and forms a partial order DV_k whose maximum antichain is the
// register need achievable under k. RS is the maximum over valid killing
// functions (valid = the enforcement arcs keep G→k acyclic).
package rs

import (
	"fmt"

	"regsat/internal/ddg"
	"regsat/internal/graph"
)

// Analysis precomputes, for one register type, everything the RS algorithms
// share: the value set, consumer sets, longest paths, and potential killers.
type Analysis struct {
	G    *ddg.Graph
	Type ddg.RegType

	// Values lists V_{R,t} (defining node IDs, increasing).
	Values []int
	// Index maps a defining node ID to its dense value index.
	Index map[int]int
	// Cons[i] is Cons(Values[i]^t).
	Cons [][]int
	// PKill[i] ⊆ Cons[i] is the set of potential killers of value i.
	PKill [][]int
	// AP is the all-pairs longest-path matrix of the original graph.
	AP *graph.AllPairsLongest
}

// NewAnalysis builds the per-type analysis. The graph must be finalized so
// every value has at least one consumer (possibly ⊥).
func NewAnalysis(g *ddg.Graph, t ddg.RegType) (*Analysis, error) {
	if !g.Finalized() {
		return nil, fmt.Errorf("rs: graph %s is not finalized", g.Name)
	}
	ap, err := g.ToDigraph().LongestAllPairs()
	if err != nil {
		return nil, fmt.Errorf("rs: graph %s: %w", g.Name, err)
	}
	return NewAnalysisShared(g, t, ap)
}

// NewAnalysisShared is NewAnalysis with a precomputed all-pairs longest-path
// matrix of g. The matrix is the most expensive shared artifact of the
// analysis (O(n·(n+m))), and it depends only on the graph — not on the
// register type — so callers analyzing several types of one graph, or the
// same graph repeatedly (the batch engine), compute it once and share it.
func NewAnalysisShared(g *ddg.Graph, t ddg.RegType, ap *graph.AllPairsLongest) (*Analysis, error) {
	if !g.Finalized() {
		return nil, fmt.Errorf("rs: graph %s is not finalized", g.Name)
	}
	an := &Analysis{
		G:      g,
		Type:   t,
		Values: g.Values(t),
		Index:  map[int]int{},
		AP:     ap,
	}
	for i, u := range an.Values {
		an.Index[u] = i
		cons := g.Cons(u, t)
		if len(cons) == 0 {
			return nil, fmt.Errorf("rs: value %s^%s has no consumer", g.Node(u).Name, t)
		}
		an.Cons = append(an.Cons, cons)
		an.PKill = append(an.PKill, an.potentialKillers(cons))
	}
	return an, nil
}

// readDominated reports whether consumer v's read is dominated by consumer
// w's read in every schedule: σ_w + δr(w) ≥ σ_v + δr(v) always, which holds
// iff lp(v, w) ≥ δr(v) − δr(w). (On superscalar targets, where δr = 0, this
// degenerates to plain reachability — Touati's ↓w ∩ Cons(u) = {w} rule.)
func (an *Analysis) readDominated(v, w int) bool {
	lp := an.AP.Path(v, w)
	if lp == graph.NoPath {
		return false
	}
	return lp >= an.G.Node(v).DelayR-an.G.Node(w).DelayR
}

// potentialKillers returns the consumers that are not read-dominated by any
// other consumer. The killing date max is always attained by one of them.
func (an *Analysis) potentialKillers(cons []int) []int {
	var out []int
	for _, v := range cons {
		dominated := false
		for _, w := range cons {
			if w != v && an.readDominated(v, w) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, v)
		}
	}
	// Defensive: the max read is always attained somewhere, so the set can
	// never be empty (mutual domination would require a cycle).
	if len(out) == 0 {
		panic("rs: empty potential killer set")
	}
	return out
}

// NumKillingFunctions returns the number of killer combinations
// Π_i |pkill(i)| (not all of which are valid).
func (an *Analysis) NumKillingFunctions() int64 {
	total := int64(1)
	for _, pk := range an.PKill {
		total *= int64(len(pk))
		if total > 1<<40 {
			return 1 << 40 // saturate; only used for reporting
		}
	}
	return total
}

// DelayW returns δw of value i (the write offset of its defining node for
// this register type).
func (an *Analysis) DelayW(i int) int64 {
	return an.G.Node(an.Values[i]).DelayW(an.Type)
}

// TrivialRS reports the case the paper dispatches on before any analysis:
// if |V_{R,t}| ≤ R_t no schedule can need more than R_t registers.
func (an *Analysis) TrivialRS(available int) bool {
	return len(an.Values) <= available
}
