// Package rs implements the paper's primary contribution: computing the
// register saturation RS_t(G) of a data dependence DAG — the exact maximum
// of the register requirement over all valid schedules — by three methods:
//
//   - the Greedy-k heuristic of [14] (killing functions + maximum antichains),
//   - an exact combinatorial branch-and-bound over valid killing functions,
//   - the paper's exact intLP formulation (Section 3), solved with the
//     in-repo MILP solver.
//
// The theory (from [14] and the thesis [15]): a value u^t dies when its last
// consumer reads it. The *potential killers* pkill(u^t) are the consumers
// not provably read-dominated by another consumer. Choosing one killer per
// value (a killing function k) and enforcing it with serialization arcs
// yields the extended DAG G→k, in which value lifetimes are pinned; the
// relation "u's lifetime is always before v's" is then decidable by longest
// paths and forms a partial order DV_k whose maximum antichain is the
// register need achievable under k. RS is the maximum over valid killing
// functions (valid = the enforcement arcs keep G→k acyclic).
//
// All methods work from one immutable ir.Snapshot (CSR adjacency, topological
// order, transitive closure, the all-pairs longest-path matrix, and per-type
// value/consumer/pkill tables), built once per graph structure and interned
// process-wide, so repeated analyses — several register types, the reduction
// searches, batch runs — never recompute the substrate.
package rs

import (
	"fmt"

	"regsat/internal/ddg"
	"regsat/internal/graph"
	"regsat/internal/ir"
)

// Analysis is the per-register-type view over the shared ir.Snapshot that
// the RS algorithms consume: the value set, consumer sets, longest paths,
// and potential killers.
type Analysis struct {
	G    *ddg.Graph
	Type ddg.RegType

	// IR is the interned immutable snapshot every artifact below aliases.
	IR *ir.Snapshot

	// Values lists V_{R,t} (defining node IDs, increasing).
	Values []int
	// Index maps a defining node ID to its dense value index.
	Index map[int]int
	// Cons[i] is Cons(Values[i]^t).
	Cons [][]int
	// PKill[i] ⊆ Cons[i] is the set of potential killers of value i.
	PKill [][]int
	// AP is the all-pairs longest-path matrix of the original graph.
	AP *graph.AllPairsLongest
}

// NewAnalysis builds the per-type analysis over the interned snapshot of g.
// The graph must be finalized so every value has at least one consumer
// (possibly ⊥).
func NewAnalysis(g *ddg.Graph, t ddg.RegType) (*Analysis, error) {
	snap, err := ir.Intern(g)
	if err != nil {
		return nil, fmt.Errorf("rs: %w", err)
	}
	return NewAnalysisIR(snap, t)
}

// NewAnalysisIR is NewAnalysis with a prebuilt snapshot (to share it across
// register types and methods, as the batch engine and experiments do). A
// type the graph never writes yields an analysis with no values.
func NewAnalysisIR(snap *ir.Snapshot, t ddg.RegType) (*Analysis, error) {
	an := &Analysis{
		G:     snap.G,
		Type:  t,
		IR:    snap,
		Index: map[int]int{},
		AP:    snap.AP,
	}
	tbl := snap.Table(t)
	if tbl == nil {
		return an, nil
	}
	an.Values = tbl.Values
	an.Cons = tbl.Cons
	an.PKill = tbl.PKill
	for i, u := range tbl.Values {
		an.Index[u] = i
	}
	return an, nil
}

// NumKillingFunctions returns the number of killer combinations
// Π_i |pkill(i)| (not all of which are valid).
func (an *Analysis) NumKillingFunctions() int64 {
	total := int64(1)
	for _, pk := range an.PKill {
		total *= int64(len(pk))
		if total > 1<<40 {
			return 1 << 40 // saturate; only used for reporting
		}
	}
	return total
}

// DelayW returns δw of value i (the write offset of its defining node for
// this register type).
func (an *Analysis) DelayW(i int) int64 {
	return an.G.Node(an.Values[i]).DelayW(an.Type)
}

// TrivialRS reports the case the paper dispatches on before any analysis:
// if |V_{R,t}| ≤ R_t no schedule can need more than R_t registers.
func (an *Analysis) TrivialRS(available int) bool {
	return len(an.Values) <= available
}
