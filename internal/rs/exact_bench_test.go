package rs

import (
	"math/rand"
	"testing"

	"regsat/internal/ddg"
)

// benchCases collects the multi-killer analyses the exact search actually
// branches on: every corpus case with more than one killing function, plus
// denser random DAGs whose trees are deep enough to expose the per-node
// cost.
func benchCases(b *testing.B) []*Analysis {
	var cases []*Analysis
	for _, g := range loadCorpus(b) {
		for _, typ := range g.Types() {
			an, err := NewAnalysis(g, typ)
			if err != nil {
				b.Fatal(err)
			}
			if an.NumKillingFunctions() > 1 {
				cases = append(cases, an)
			}
		}
	}
	rng := rand.New(rand.NewSource(2004))
	for _, n := range []int{14, 18, 22, 26} {
		p := ddg.DefaultRandomParams(n)
		p.EdgeProb = 0.15
		p.ValueProb = 0.95
		g := ddg.RandomGraph(rng, p)
		an, err := NewAnalysis(g, ddg.Float)
		if err != nil {
			b.Fatal(err)
		}
		if an.NumKillingFunctions() > 1 {
			cases = append(cases, an)
		}
	}
	if len(cases) == 0 {
		b.Fatal("no multi-killer cases")
	}
	return cases
}

// BenchmarkExactBB measures the incremental exact search over the
// multi-killer corpus (the acceptance benchmark of the incremental engine).
func BenchmarkExactBB(b *testing.B) {
	cases := benchCases(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, an := range cases {
			if _, _, err := ExactBB(an, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExactBBReference measures the retained from-scratch search (a
// digraph rebuild plus a full all-pairs longest-path solve per node) on the
// same cases — the pre-refactor baseline BenchmarkExactBB is compared
// against.
func BenchmarkExactBBReference(b *testing.B) {
	cases := benchCases(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, an := range cases {
			if _, _, err := exactBBReference(an, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGreedyK measures the heuristic on the same cases (it shares the
// incremental evaluator).
func BenchmarkGreedyK(b *testing.B) {
	cases := benchCases(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, an := range cases {
			if _, err := Greedy(an); err != nil {
				b.Fatal(err)
			}
		}
	}
}
