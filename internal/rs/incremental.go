package rs

import (
	"math/bits"

	"regsat/internal/graph"
)

// Incremental is the incremental killing-function evaluator behind ExactBB
// and Greedy-k. It maintains, across a branch-and-bound dive:
//
//   - the all-pairs longest-path matrix of the *extended* graph G→k restricted
//     to the killers decided so far, updated in place when a decision pushes
//     enforcement arcs (delta propagation touches only the affected pairs:
//     sources reaching the arc tail × sinks reachable from the arc head);
//   - the lifetime order DV_k as one bitset row per value, grown monotonically
//     as decisions commit (adding arcs can only lengthen paths, so order bits
//     are only ever set, never cleared, along a dive);
//   - a maximum matching of the order's comparability graph, augmented in
//     place as pairs appear, so the Dilworth antichain bound (Bound) is O(1)
//     at every node and a witness antichain (AntichainMembers) is one König
//     sweep at incumbent improvements;
//   - a trail of per-decision frames so Pop restores every structure exactly.
//
// Compared to the previous per-node rebuild (a fresh digraph plus a full
// LongestAllPairs and matching solve per leaf and per bound evaluation), a
// Push costs O(|srcs|·|dsts|) per arc plus the Kuhn augmentations its new
// pairs admit, and a Pop is a plain undo-log replay.
//
// An Incremental is single-goroutine; the snapshot it reads from is shared.
type Incremental struct {
	an *Analysis
	n  int     // node count
	nv int     // value count
	d  []int64 // n×n row-major longest-path matrix of the current extension

	decided  []int   // killer node per value, -1 = undecided
	byKiller [][]int // node → stack of decided value indices using it as killer
	depth    int     // decided count

	less []graph.BitSet // DV_k rows over value indices

	// Incrementally maintained maximum matching of the order's comparability
	// bipartite graph (left copy a → right copy b per pair a < b). Dilworth:
	// the maximum antichain is nv − |matching|, so the branch-and-bound gets
	// its node bound without a per-node matching solve — pushes only add
	// order pairs, so the old matching stays valid and a one-pass Kuhn
	// augmentation from the unmatched vertices restores maximality.
	matchL, matchR []int
	matchSize      int
	rightSeen      []int64 // Kuhn DFS marks, stamped
	seenStamp      int64

	valIndex []int   // node → value index, -1 for non-values
	delayR   []int64 // node → δr
	delayW   []int64 // value index → δw

	trail      []frame
	cellArena  []cellDelta
	bitArena   []bitDelta
	matchArena []int

	// Cell-change dedup within one Push: touched[idx] == epoch marks a cell
	// whose pre-Push value is already on the frame.
	touched []int64
	epoch   int64

	srcs, dsts []int32 // scratch for delta propagation
}

type cellDelta struct {
	idx int
	old int64
}

type bitDelta struct{ i, j int32 }

// frame marks one decision on the undo trail. The deltas live in shared
// arenas on the evaluator (cellArena, bitArena, matchArena), each frame
// holding only its start offsets: pushes append, pops truncate, and no
// per-frame slices are allocated on the search's hot path.
type frame struct {
	value, killer int
	cellStart     int
	bitStart      int
	matchStart    int // offset into matchArena, -1 when no snapshot was taken
	oldMatchSize  int
}

// NewIncremental creates an evaluator positioned at the empty decision (no
// killer chosen, the extension equals the base graph).
func NewIncremental(an *Analysis) *Incremental {
	n := an.G.NumNodes()
	nv := len(an.Values)
	ik := &Incremental{
		an:       an,
		n:        n,
		nv:       nv,
		d:        make([]int64, n*n),
		decided:  make([]int, nv),
		byKiller: make([][]int, n),
		less:     make([]graph.BitSet, nv),
		valIndex: make([]int, n),
		delayR:   make([]int64, n),
		delayW:   make([]int64, nv),
		touched:  make([]int64, n*n),
	}
	for u := 0; u < n; u++ {
		copy(ik.d[u*n:(u+1)*n], an.AP.D[u])
		ik.valIndex[u] = -1
		ik.delayR[u] = an.G.Node(u).DelayR
	}
	ik.matchL = make([]int, nv)
	ik.matchR = make([]int, nv)
	ik.rightSeen = make([]int64, nv)
	for i := range ik.decided {
		ik.decided[i] = -1
		ik.less[i] = graph.NewBitSet(nv)
		ik.valIndex[an.Values[i]] = i
		ik.delayW[i] = an.DelayW(i)
		ik.matchL[i] = -1
		ik.matchR[i] = -1
	}
	return ik
}

// Depth returns the number of decided values.
func (ik *Incremental) Depth() int { return ik.depth }

// Killer returns the decided killer of value i, or -1.
func (ik *Incremental) Killer(i int) int { return ik.decided[i] }

// Killers returns a copy of the current killer assignment (-1 = undecided).
func (ik *Incremental) Killers() []int {
	return append([]int(nil), ik.decided...)
}

// Push decides killer for value i: it adds the enforcement arcs
// (v′, killer) for every other potential killer v′, propagates the longest
// -path deltas, and extends the DV_k order rows. It reports false — leaving
// the evaluator unchanged — when the arcs would close a cycle (an invalid
// killing function, possible on VLIW/EPIC offsets only).
func (ik *Incremental) Push(i, killer int) bool {
	fr := frame{value: i, killer: killer,
		cellStart: len(ik.cellArena), bitStart: len(ik.bitArena), matchStart: -1}
	ik.epoch++
	for _, other := range ik.an.PKill[i] {
		if other == killer {
			continue
		}
		if !ik.addArc(other, killer, ik.delayR[other]-ik.delayR[killer]) {
			// Cycle: undo the cells of the arcs already applied.
			for _, c := range ik.cellArena[fr.cellStart:] {
				ik.d[c.idx] = c.old
			}
			ik.cellArena = ik.cellArena[:fr.cellStart]
			return false
		}
	}
	ik.updateOrder(i, killer, &fr)
	if len(ik.bitArena) > fr.bitStart {
		// New comparability edges: snapshot the matching, then restore
		// maximality with one Kuhn pass from the unmatched left vertices
		// (a vertex with no augmenting path before other augmentations has
		// none after them either, so one attempt each suffices).
		fr.matchStart = len(ik.matchArena)
		fr.oldMatchSize = ik.matchSize
		ik.matchArena = append(ik.matchArena, ik.matchL...)
		ik.matchArena = append(ik.matchArena, ik.matchR...)
		for a := 0; a < ik.nv; a++ {
			if ik.matchL[a] < 0 {
				ik.seenStamp++
				if ik.kuhnAugment(a) {
					ik.matchSize++
				}
			}
		}
	}
	ik.decided[i] = killer
	ik.byKiller[killer] = append(ik.byKiller[killer], i)
	ik.depth++
	ik.trail = append(ik.trail, fr)
	return true
}

// Pop undoes the most recent Push.
func (ik *Incremental) Pop() {
	fr := ik.trail[len(ik.trail)-1]
	ik.trail = ik.trail[:len(ik.trail)-1]
	for _, b := range ik.bitArena[fr.bitStart:] {
		ik.less[b.i].Clear(int(b.j))
	}
	ik.bitArena = ik.bitArena[:fr.bitStart]
	for _, c := range ik.cellArena[fr.cellStart:] {
		ik.d[c.idx] = c.old
	}
	ik.cellArena = ik.cellArena[:fr.cellStart]
	if fr.matchStart >= 0 {
		copy(ik.matchL, ik.matchArena[fr.matchStart:fr.matchStart+ik.nv])
		copy(ik.matchR, ik.matchArena[fr.matchStart+ik.nv:fr.matchStart+2*ik.nv])
		ik.matchSize = fr.oldMatchSize
		ik.matchArena = ik.matchArena[:fr.matchStart]
	}
	ik.decided[fr.value] = -1
	s := ik.byKiller[fr.killer]
	ik.byKiller[fr.killer] = s[:len(s)-1]
	ik.depth--
}

// kuhnAugment searches an augmenting path from unmatched left vertex a over
// the order's comparability edges (the bitset rows), flipping the matching
// along it. Right-vertex marks are stamped per attempt.
func (ik *Incremental) kuhnAugment(a int) bool {
	for wi, w := range ik.less[a] {
		for w != 0 {
			b := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			if ik.rightSeen[b] == ik.seenStamp {
				continue
			}
			ik.rightSeen[b] = ik.seenStamp
			if ik.matchR[b] < 0 || ik.kuhnAugment(ik.matchR[b]) {
				ik.matchL[a] = b
				ik.matchR[b] = a
				return true
			}
		}
	}
	return false
}

// Bound returns the maximum antichain size of the current partial order —
// by Dilworth, nv minus the maintained maximum matching — in O(1).
func (ik *Incremental) Bound() int { return ik.nv - ik.matchSize }

// AntichainMembers recovers one maximum antichain of the current order from
// the maintained matching via König's theorem (alternating reachability from
// the unmatched left vertices; the antichain is the elements visited on the
// left and not on the right). Only called on incumbent improvements, so it
// allocates its scratch locally.
func (ik *Incremental) AntichainMembers() []int {
	visitL := make([]bool, ik.nv)
	visitR := make([]bool, ik.nv)
	stack := make([]int, 0, ik.nv)
	for a := 0; a < ik.nv; a++ {
		if ik.matchL[a] < 0 {
			visitL[a] = true
			stack = append(stack, a)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for wi, w := range ik.less[u] {
			for w != 0 {
				b := wi*64 + bits.TrailingZeros64(w)
				w &= w - 1
				if visitR[b] || ik.matchL[u] == b {
					continue
				}
				visitR[b] = true
				if x := ik.matchR[b]; x >= 0 && !visitL[x] {
					visitL[x] = true
					stack = append(stack, x)
				}
			}
		}
	}
	var members []int
	for a := 0; a < ik.nv; a++ {
		if visitL[a] && !visitR[a] {
			members = append(members, a)
		}
	}
	return members
}

// addArc merges one enforcement arc a→b of weight w into the matrix. A new
// longest path through the arc decomposes as u ⇝ a, (a,b), b ⇝ v with both
// halves in the pre-arc graph, so the update is exact per arc and arcs of
// one Push compose by sequential application. Returns false on a cycle
// (b already reaches a).
func (ik *Incremental) addArc(a, b int, w int64) bool {
	n := ik.n
	if ik.d[b*n+a] != graph.NoPath {
		return false // a→b would close a cycle through the existing b ⇝ a
	}
	ik.srcs = ik.srcs[:0]
	ik.dsts = ik.dsts[:0]
	for u := 0; u < n; u++ {
		if ik.d[u*n+a] != graph.NoPath {
			ik.srcs = append(ik.srcs, int32(u))
		}
	}
	rowB := ik.d[b*n : (b+1)*n]
	for v := 0; v < n; v++ {
		if rowB[v] != graph.NoPath {
			ik.dsts = append(ik.dsts, int32(v))
		}
	}
	for _, u32 := range ik.srcs {
		u := int(u32)
		base := ik.d[u*n+a] + w
		rowU := ik.d[u*n : (u+1)*n]
		for _, v32 := range ik.dsts {
			v := int(v32)
			if cand := base + rowB[v]; cand > rowU[v] {
				idx := u*n + v
				if ik.touched[idx] != ik.epoch {
					ik.touched[idx] = ik.epoch
					ik.cellArena = append(ik.cellArena, cellDelta{idx: idx, old: rowU[v]})
				}
				rowU[v] = cand
			}
		}
	}
	return true
}

// updateOrder extends the DV_k bitset rows after the arcs of a decision have
// been merged: the freshly decided value gets its full row, and rows of
// earlier decisions gain exactly the pairs whose deciding longest path grew
// (found from the changed cells, not by rescanning the matrix).
func (ik *Incremental) updateOrder(i, killer int, fr *frame) {
	n := ik.n
	// Pairs of previously decided values whose lp(k(i′), v_j) changed.
	for ci := fr.cellStart; ci < len(ik.cellArena); ci++ {
		c := ik.cellArena[ci]
		u, v := c.idx/n, c.idx%n
		j := ik.valIndex[v]
		if j < 0 {
			continue
		}
		lp := ik.d[c.idx]
		for _, ip := range ik.byKiller[u] {
			if ip == j || ik.less[ip].Get(j) {
				continue
			}
			if lp >= ik.delayR[u]-ik.delayW[j] {
				ik.less[ip].Set(j)
				ik.bitArena = append(ik.bitArena, bitDelta{int32(ip), int32(j)})
			}
		}
	}
	// Full row of the freshly decided value i.
	kRead := ik.delayR[killer]
	rowK := ik.d[killer*n : (killer+1)*n]
	for j, vj := range ik.an.Values {
		if j == i {
			continue
		}
		lp := rowK[vj]
		if lp == graph.NoPath || lp < kRead-ik.delayW[j] {
			continue
		}
		if !ik.less[i].Get(j) {
			ik.less[i].Set(j)
			ik.bitArena = append(ik.bitArena, bitDelta{int32(i), int32(j)})
		}
	}
}

// Antichain computes the full maximum-antichain result (with chain cover)
// of the current partial order from scratch. The search itself never needs
// it — Bound and AntichainMembers come from the maintained matching — but
// oracle tests compare against this complete solve.
func (ik *Incremental) Antichain() *graph.AntichainResult {
	return graph.OrderFromRows(ik.less).MaximumAntichain()
}

// LongestPath returns the longest path u ⇝ v in the current extension.
func (ik *Incremental) LongestPath(u, v int) int64 { return ik.d[u*ik.n+v] }

// Less reports whether value i's lifetime provably ends before value j's
// starts under the decisions made so far.
func (ik *Incremental) Less(i, j int) bool { return i != j && ik.less[i].Get(j) }
