package rs

import (
	"time"

	"regsat/internal/solver"
)

// lpDefaults bounds MILP solves in tests so a pathological instance cannot
// hang the suite.
func lpDefaults() solver.Options {
	return solver.Options{MaxNodes: 200000, TimeLimit: 30 * time.Second}
}
