package rs

import (
	"time"

	"regsat/internal/lp"
)

// lpDefaults bounds MILP solves in tests so a pathological instance cannot
// hang the suite.
func lpDefaults() lp.Params {
	return lp.Params{MaxNodes: 200000, TimeLimit: 30 * time.Second}
}
