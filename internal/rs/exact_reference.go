package rs

import (
	"fmt"
	"sort"

	"regsat/internal/graph"
)

// This file keeps the pre-incremental exact search: a branch-and-bound that
// rebuilds the extended digraph and its all-pairs longest paths from scratch
// at every node. It is the oracle the corpus differential test checks the
// Incremental evaluator against at every search node, and the baseline
// BenchmarkExactBB measures the incremental engine's speedup over. It must
// not be used on hot paths.

// ExactBBReference exposes the from-scratch reference search to differential
// tests and fuzz harnesses outside this package (internal/gen's metamorphic
// engine checks ExactBB against it on every generated graph). Not for hot
// paths: every search node pays a full rebuild.
func ExactBBReference(an *Analysis, maxLeaves int64) (*RSResult, *ExactStats, error) {
	return exactBBReference(an, maxLeaves)
}

// exactBBReference is the from-scratch ExactBB (per-node full rebuild).
func exactBBReference(an *Analysis, maxLeaves int64) (*RSResult, *ExactStats, error) {
	if maxLeaves <= 0 {
		maxLeaves = 1_000_000
	}
	nv := len(an.Values)
	stats := &ExactStats{UpperBound: nv}

	killer := make([]int, nv)
	var branch []int
	for i := 0; i < nv; i++ {
		if len(an.PKill[i]) == 1 {
			killer[i] = an.PKill[i][0]
		} else {
			killer[i] = -1
			branch = append(branch, i)
		}
	}
	sort.Slice(branch, func(a, b int) bool {
		ia, ib := branch[a], branch[b]
		if len(an.PKill[ia]) != len(an.PKill[ib]) {
			return len(an.PKill[ia]) < len(an.PKill[ib])
		}
		return an.Values[ia] < an.Values[ib]
	})

	var best *RSResult
	var rec func(pos int) error
	rec = func(pos int) error {
		if stats.Capped {
			return nil
		}
		if pos == len(branch) {
			if stats.Leaves >= maxLeaves {
				stats.Capped = true
				return nil
			}
			stats.Leaves++
			k, err := NewKilling(an, killer)
			if err != nil {
				return err
			}
			res, err := k.Saturation()
			if err != nil {
				return nil // invalid (cyclic) killing function: skip leaf
			}
			if best == nil || res.RS > best.RS {
				best = res
			}
			return nil
		}
		if best != nil {
			ub, feasible := partialRebuildBound(an, killer)
			if !feasible {
				return nil // current partial extension already cyclic
			}
			if ub <= best.RS {
				stats.Pruned++
				return nil
			}
		}
		i := branch[pos]
		for _, cand := range an.PKill[i] {
			killer[i] = cand
			if err := rec(pos + 1); err != nil {
				return err
			}
		}
		killer[i] = -1
		return nil
	}
	if err := rec(0); err != nil {
		return nil, stats, err
	}
	if best == nil {
		return nil, stats, fmt.Errorf("rs: no valid killing function for %s/%s", an.G.Name, an.Type)
	}
	if !stats.Capped {
		stats.UpperBound = best.RS
	}
	return best, stats, nil
}

// partialRebuildOrder computes, from scratch, the order induced by the
// decided killers only (-1 = undecided contributes no pairs): a fresh
// extended digraph plus a full all-pairs longest-path solve. Returns
// feasible=false when the partial extension is already cyclic.
func partialRebuildOrder(an *Analysis, killer []int) (*graph.Order, bool) {
	dg := an.IR.Digraph()
	for i, k := range killer {
		if k >= 0 {
			addEnforcement(dg, an, i, k)
		}
	}
	ap, err := dg.LongestAllPairs()
	if err != nil {
		return nil, false
	}
	o := graph.NewOrder(len(an.Values))
	for i, k := range killer {
		if k < 0 {
			continue
		}
		kRead := an.G.Node(k).DelayR
		for j, vj := range an.Values {
			if i == j {
				continue
			}
			lp := ap.D[k][vj]
			if lp != graph.NoPath && lp >= kRead-an.DelayW(j) {
				o.SetLess(i, j)
			}
		}
	}
	return o, true
}

// partialRebuildBound is the maximum antichain of the rebuilt partial order.
func partialRebuildBound(an *Analysis, killer []int) (int, bool) {
	o, feasible := partialRebuildOrder(an, killer)
	if !feasible {
		return 0, false
	}
	return o.MaximumAntichain().Size, true
}
