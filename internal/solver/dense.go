package solver

import (
	"context"
	"time"

	"regsat/internal/lp"
)

// denseBackend wraps the original internal/lp engine — dense two-phase
// primal simplex under a sequential depth-first branch and bound — as the
// reference backend. It keeps the legacy semantics exactly: no incumbent
// seeding, no parallel search.
type denseBackend struct{}

func init() { Register(denseBackend{}) }

func (denseBackend) Name() string { return "dense" }

func (denseBackend) Solve(ctx context.Context, m *lp.Model, opt Options) (*Solution, error) {
	opt = opt.withDefaults()
	start := time.Now()
	sol := m.SolveCtx(ctx, lp.Params{
		MaxNodes:  opt.MaxNodes,
		TimeLimit: opt.TimeLimit,
		IntTol:    opt.IntTol,
	})
	out := &Solution{
		Status: sol.Status,
		Obj:    sol.Obj,
		X:      sol.X,
		Bound:  sol.Bound,
		Gap:    sol.Gap,
		Capped: sol.Status == lp.StatusFeasible || sol.Status == lp.StatusLimit,
		Stats: Stats{
			Nodes:      int64(sol.Nodes),
			ColdStarts: int64(sol.Nodes), // every node re-solves from scratch
			Workers:    1,
			Duration:   time.Since(start),
		},
	}
	return out, ctx.Err()
}
