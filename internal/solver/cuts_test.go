package solver

import (
	"math"
	"math/rand"
	"testing"

	"regsat/internal/lp"
)

// conflictModel builds maximize Σ c_i x_i over binaries with a pairwise
// row x_i + x_j ≤ 1 per conflict edge.
func conflictModel(obj []float64, edges [][2]int) *lp.Model {
	m := lp.NewModel("conflict", lp.Maximize)
	for _, c := range obj {
		m.SetObjCoef(m.NewBinary("x"), c)
	}
	for _, e := range edges {
		m.AddConstr([]lp.Term{{Var: lp.Var(e[0]), Coef: 1}, {Var: lp.Var(e[1]), Coef: 1}},
			lp.LE, 1, "conflict")
	}
	return m
}

// TestCliqueCutsSeparatedAtRoot: on a full conflict graph the pairwise LP
// relaxation sits at x = 1/2 everywhere, so the hinted clique over all
// members is violated at the root and must be separated; the integer
// optimum is unchanged.
func TestCliqueCutsSeparatedAtRoot(t *testing.T) {
	const k = 6
	obj := make([]float64, k)
	var edges [][2]int
	var cliqueVars []lp.Var
	for i := 0; i < k; i++ {
		obj[i] = 1
		cliqueVars = append(cliqueVars, lp.Var(i))
		for j := i + 1; j < k; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	m := conflictModel(obj, edges)
	ref := solveWith(t, "dense", conflictModel(obj, edges), Options{})
	hints := &Hints{Cliques: []Clique{{Name: "all", Vars: cliqueVars, RHS: 1}}}
	sol := solveWith(t, "sparse", m, Options{Hints: hints})
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Obj-ref.Obj) > 1e-6 {
		t.Fatalf("with cuts: %v/%g, dense %v/%g", sol.Status, sol.Obj, ref.Status, ref.Obj)
	}
	if sol.Stats.CutsAdded == 0 {
		t.Fatalf("violated clique not separated at the root: %+v", sol.Stats)
	}
	if sol.Stats.CutsActive == 0 {
		t.Fatalf("the cut is tight at every maximal incumbent but CutsActive=0: %+v", sol.Stats)
	}
}

// TestCliqueHintsAgreeRandom is the cut-validity property test: on random
// conflict graphs every triangle yields a valid clique (its three pairwise
// rows enforce it), so hinting the triangles must never change the proven
// optimum of any backend, only the work to reach it.
func TestCliqueHintsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	trials := 60
	if testing.Short() {
		trials = 20
	}
	for trial := 0; trial < trials; trial++ {
		nv := 6 + rng.Intn(8)
		obj := make([]float64, nv)
		for i := range obj {
			obj[i] = float64(1 + rng.Intn(9))
		}
		adj := make([]bool, nv*nv)
		var edges [][2]int
		for i := 0; i < nv; i++ {
			for j := i + 1; j < nv; j++ {
				if rng.Intn(3) > 0 {
					adj[i*nv+j] = true
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		var cliques []Clique
		for i := 0; i < nv; i++ {
			for j := i + 1; j < nv; j++ {
				for k := j + 1; k < nv; k++ {
					if adj[i*nv+j] && adj[i*nv+k] && adj[j*nv+k] {
						cliques = append(cliques, Clique{
							Name: "tri",
							Vars: []lp.Var{lp.Var(i), lp.Var(j), lp.Var(k)},
							RHS:  1,
						})
					}
				}
			}
		}
		ref := solveWith(t, "dense", conflictModel(obj, edges), Options{})
		hints := &Hints{Cliques: cliques}
		for _, b := range []string{"sparse", "parallel"} {
			sol := solveWith(t, b, conflictModel(obj, edges), Options{Hints: hints, Parallel: 3})
			if sol.Status != ref.Status || math.Abs(sol.Obj-ref.Obj) > 1e-6 {
				t.Fatalf("trial %d: %s with %d hinted triangles: %v/%g, dense %v/%g",
					trial, b, len(cliques), sol.Status, sol.Obj, ref.Status, ref.Obj)
			}
			// The incumbent must satisfy every hinted clique (they are valid
			// inequalities of the model).
			if sol.Feasible() && !sol.AtCutoff {
				for _, c := range cliques {
					sum := 0.0
					for _, v := range c.Vars {
						sum += sol.X[v]
					}
					if sum > float64(c.RHS)+1e-6 {
						t.Fatalf("trial %d: %s incumbent violates hinted clique %v: Σ=%g > %d",
							trial, b, c.Vars, sum, c.RHS)
					}
				}
			}
		}
	}
}

// TestRemapCliquesFolding: the presolve column map folds fixed variables
// out of hinted cliques — ones consume right-hand side, zeros drop out —
// and contradictions surface as infeasibility.
func TestRemapCliquesFolding(t *testing.T) {
	build := func(lo0, hi0, lo1, hi1 float64) *presolved {
		m := lp.NewModel("remap", lp.Maximize)
		m.NewVar(lo0, hi0, true, "a")
		m.NewVar(lo1, hi1, true, "b")
		m.NewBinary("c")
		m.NewBinary("d")
		for v := 0; v < 4; v++ {
			m.SetObjCoef(lp.Var(v), 1)
		}
		return presolve(m, 1e-6, true)
	}
	clique := func(rhs int, vars ...lp.Var) *Hints {
		return &Hints{Cliques: []Clique{{Name: "q", Vars: vars, RHS: rhs}}}
	}

	// a fixed at 1: the clique loses a column and one unit of rhs.
	ps := build(1, 1, 0, 1)
	got, infeasible := remapCliques(clique(1, 0, 1, 2, 3), ps)
	if infeasible || len(got) != 1 {
		t.Fatalf("fixed-one fold: got %d cliques, infeasible=%v", len(got), infeasible)
	}
	if got[0].rhs != 0 || len(got[0].cols) != 3 {
		t.Fatalf("fixed-one fold: rhs=%g cols=%v, want rhs 0 over 3 columns", got[0].rhs, got[0].cols)
	}

	// a and b both fixed at 1 with rhs 1: -1 remaining — infeasible.
	ps = build(1, 1, 1, 1)
	if _, infeasible = remapCliques(clique(1, 0, 1, 2, 3), ps); !infeasible {
		t.Fatal("two ones in a rhs-1 clique not flagged infeasible")
	}

	// a fixed at 0: drops out without touching the rhs.
	ps = build(0, 0, 0, 1)
	got, infeasible = remapCliques(clique(1, 0, 1, 2, 3), ps)
	if infeasible || len(got) != 1 || got[0].rhs != 1 || len(got[0].cols) != 3 {
		t.Fatalf("fixed-zero fold: got %+v, infeasible=%v", got, infeasible)
	}

	// Slack cliques (rhs covers all members) and sub-pair remnants discard.
	ps = build(0, 1, 0, 1)
	if got, _ = remapCliques(clique(4, 0, 1, 2, 3), ps); len(got) != 0 {
		t.Fatalf("slack clique not discarded: %+v", got)
	}

	// Duplicates collapse; output order is deterministic.
	ps = build(0, 1, 0, 1)
	h := &Hints{Cliques: []Clique{
		{Name: "q1", Vars: []lp.Var{2, 3, 0}, RHS: 1},
		{Name: "q2", Vars: []lp.Var{0, 2, 3}, RHS: 1},
		{Name: "q3", Vars: []lp.Var{1, 2, 3}, RHS: 1},
	}}
	got, infeasible = remapCliques(h, ps)
	if infeasible || len(got) != 2 {
		t.Fatalf("dedup: got %d cliques, want 2", len(got))
	}
	if got[0].cols[0] > got[1].cols[0] {
		t.Fatalf("remapped cliques not in deterministic order: %v, %v", got[0].cols, got[1].cols)
	}
}

// TestRemapCliquesNonBinary: a clique touching a general-integer column is
// disqualified rather than emitted unsoundly.
func TestRemapCliquesNonBinary(t *testing.T) {
	m := lp.NewModel("nonbin", lp.Maximize)
	m.NewVar(0, 3, true, "g")
	m.NewBinary("x")
	m.NewBinary("y")
	ps := presolve(m, 1e-6, true)
	h := &Hints{Cliques: []Clique{{Name: "bad", Vars: []lp.Var{0, 1, 2}, RHS: 1}}}
	got, infeasible := remapCliques(h, ps)
	if infeasible || len(got) != 0 {
		t.Fatalf("clique over a [0,3] integer survived remap: %+v", got)
	}
}

// TestCutsDisabled: DisableCuts must suppress separation entirely.
func TestCutsDisabled(t *testing.T) {
	const k = 5
	obj := make([]float64, k)
	var edges [][2]int
	var vars []lp.Var
	for i := 0; i < k; i++ {
		obj[i] = 1
		vars = append(vars, lp.Var(i))
		for j := i + 1; j < k; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	hints := &Hints{Cliques: []Clique{{Name: "all", Vars: vars, RHS: 1}}}
	sol := solveWith(t, "sparse", conflictModel(obj, edges), Options{Hints: hints, DisableCuts: true})
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Obj-1) > 1e-6 {
		t.Fatalf("optimum %v/%g, want optimal 1", sol.Status, sol.Obj)
	}
	if sol.Stats.CutsAdded != 0 {
		t.Fatalf("cuts added with DisableCuts: %+v", sol.Stats)
	}
}
