package solver

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"regsat/internal/lp"
	"regsat/internal/obs"
)

// sparseBackend is the rewritten MILP engine: presolve with postsolve
// mapping, hint-derived clique cuts separated at the root, sparse constraint
// storage, a dual-simplex reoptimizer with devex pricing, best-bound node
// selection with single-bound deltas, warm-started dives from the parent
// basis, pseudo-cost branching with reliability initialization,
// incumbent/cutoff seeding, and a parallel tree search sharing an atomic
// incumbent.
//
// Node processing is organized as dives: a worker pops the best-bound open
// node, solves it from a cold (all-slack, dual-feasible) start, then keeps
// descending into one child per branching — reusing the tableau and basis it
// already holds, which makes the child solve a handful of dual pivots — while
// the sibling goes onto the shared best-bound queue as a {variable, bound}
// delta against its parent chain. Any numerical trouble hands the affected
// subtree to the dense reference engine, so exactness never depends on the
// fast path.
type sparseBackend struct {
	// defaultParallel is the worker count when Options.Parallel is 0.
	defaultParallel func() int
	name            string
}

func init() {
	Register(sparseBackend{name: "sparse", defaultParallel: func() int { return 1 }})
	Register(sparseBackend{name: "parallel", defaultParallel: runtime.NumCPU})
}

func (b sparseBackend) Name() string { return b.name }

func (b sparseBackend) Solve(ctx context.Context, m *lp.Model, opt Options) (*Solution, error) {
	opt = opt.withDefaults()
	start := time.Now()
	// The solve span (created by the Solve dispatcher; nil when untraced)
	// carries the search telemetry: milestone events on a bounded buffer,
	// never one per simplex iteration.
	span := obs.FromContext(ctx)

	// Presolve works on a private copy, so the reduced model rm is owned by
	// this solve: the cut layer may append rows to it freely.
	ps := presolve(m, opt.IntTol, !opt.DisablePresolve)
	span.Event("presolve",
		obs.Int("rows", ps.rows), obs.Int("cols", ps.cols),
		obs.Int("tightenings", ps.tightenings), obs.Bool("infeasible", ps.infeasible))
	infeasible := func() (*Solution, error) {
		sol := &Solution{Status: lp.StatusInfeasible, Stats: ps.stats()}
		sol.Stats.Workers = 1
		sol.Stats.Duration = time.Since(start)
		return sol, ctx.Err()
	}
	if ps.infeasible {
		return infeasible()
	}
	rm := ps.m

	var cliques []*cutClique
	if !opt.DisableCuts {
		var bad bool
		cliques, bad = remapCliques(opt.Hints, ps)
		if bad {
			return infeasible()
		}
	}

	p, err := buildProb(rm)
	if err == errDense {
		span.Event("fallback.dense", obs.Str("cause", "unbounded-cost-var"))
		// Infinite bounds on a cost-bearing variable: the general-purpose
		// dense engine handles those (and detects unboundedness). The
		// delegation is a whole-model fallback — count it so it never
		// happens silently — and its solution lives in reduced space, so it
		// goes through postsolve like any other.
		sol, derr := denseBackend{}.Solve(ctx, rm, opt)
		if sol != nil {
			sol.X = ps.postsolve(sol.X)
			sol.Stats.Fallbacks++
			sol.Stats.PresolveRows += ps.rows
			sol.Stats.PresolveCols += ps.cols
			sol.Stats.PresolveTightenings += ps.tightenings
		}
		return sol, derr
	}
	if err != nil {
		return nil, err
	}

	var deadline time.Time
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}
	cancelled := func() bool {
		return ctx.Err() != nil || (!deadline.IsZero() && time.Now().After(deadline))
	}

	var cutsAdded int64
	if len(cliques) > 0 {
		cutsAdded = separateRoot(rm, cliques, cancelled)
		span.Event("cuts.separated", obs.Int("added", cutsAdded), obs.Int("cliques", int64(len(cliques))))
		if cutsAdded > 0 {
			// The matrix grew; rebuild the shared sparse form. Cut rows add
			// no variables, so sparse eligibility cannot change.
			if p, err = buildProb(rm); err != nil {
				return nil, err
			}
		}
	}

	// An explicit Parallel is honored as given (oversubscription is just
	// goroutines); only the default is derived from the machine.
	workers := opt.Parallel
	if workers <= 0 {
		workers = b.defaultParallel()
	}
	if workers < 1 {
		workers = 1
	}

	s := &searcher{
		p:         p,
		opt:       opt,
		ctx:       ctx,
		span:      span,
		deadline:  deadline,
		cliqueIx:  buildCliqueIndex(cliques),
		openBound: math.Inf(1),
		cutoff:    math.Inf(1),
	}
	s.cond = sync.NewCond(&s.mu)
	s.incObj.Store(math.Float64bits(math.Inf(1)))
	s.pcDownSum = make([]float64, p.n)
	s.pcUpSum = make([]float64, p.n)
	s.pcDownN = make([]int32, p.n)
	s.pcUpN = make([]int32, p.n)
	if opt.Cutoff != nil {
		s.cutoff = p.internalObj(*opt.Cutoff)
		s.exclusiveCutoff = opt.ExclusiveCutoff
	}
	heap.Push(&s.open, &qnode{vr: -1, bound: math.Inf(-1)})

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s.worker()
		}()
	}
	wg.Wait()

	sol := s.finish()
	sol.Stats.Workers = workers
	sol.Stats.PresolveRows = ps.rows
	sol.Stats.PresolveCols = ps.cols
	sol.Stats.PresolveTightenings = ps.tightenings
	sol.Stats.CutsAdded = cutsAdded
	if sol.Feasible() && !sol.AtCutoff {
		xr := sol.X
		if xr == nil {
			// Presolve fixed every variable: the reduced assignment is empty.
			xr = make([]float64, rm.NumVars())
		}
		sol.Stats.CutsActive = activeCuts(cliques, xr)
		sol.X = ps.postsolve(xr)
	}
	sol.Stats.Duration = time.Since(start)
	return sol, ctx.Err()
}

// qnode is one open subtree: a single {variable, bounds} delta against its
// parent chain (the chain is walked to reconstruct full bounds on pop — no
// per-node O(n) bound copies) plus the parent relaxation objective, which is
// a valid bound on everything below, and the branching context feeding the
// pseudo-cost statistics once the child's own relaxation is solved.
type qnode struct {
	parent *qnode
	vr     int     // branched variable; -1 for the root
	lo, hi float64 // bounds of vr in this subtree
	bound  float64 // parent LP objective (integral-rounded), internal sense
	pobj   float64 // parent LP objective, unrounded, for pseudo-cost updates
	frac   float64 // fractionality removed by this branch direction
	up     bool    // true for the x ≥ ceil child
}

type nodeHeap []*qnode

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(*qnode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

const (
	// pcReliable is the pseudo-cost observation count per direction below
	// which a branching candidate is "unreliable" and worth a strong-
	// branching probe.
	pcReliable = 1
	// pcMaxProbes caps the candidates probed per node.
	pcMaxProbes = 2
	// pcProbeIters is the dual-simplex iteration cap of one probe solve.
	pcProbeIters = 100
)

type searcher struct {
	p    *prob
	opt  Options
	ctx  context.Context
	span *obs.Span // solve span for search events; nil when untraced

	// deadline, cutoff, exclusiveCutoff, and cliqueIx are fixed before
	// workers start and read lock-free on the per-node hot path, so they
	// live above the mutex: mu guards only the fields below it.
	deadline        time.Time
	cutoff          float64 // internal sense; +inf when unseeded
	exclusiveCutoff bool
	cliqueIx        *cliqueIndex

	mu       sync.Mutex
	cond     *sync.Cond
	open     nodeHeap
	active   int  // workers currently diving
	stopped  bool // a limit fired; drain and report the interval
	limitHit bool
	// stoppedFlag mirrors stopped for the lock-free per-node fast path.
	stoppedFlag atomic.Bool
	unbounded   bool
	openBound   float64   // min bound over abandoned subtrees (internal)
	incX        []float64 // incumbent assignment (model variables, snapped)

	// pcMu guards the pseudo-cost statistics: per-variable sums and counts
	// of LP degradation per unit of fractionality removed, by direction.
	pcMu      sync.Mutex
	pcDownSum []float64
	pcUpSum   []float64
	pcDownN   []int32
	pcUpN     []int32

	incObj   atomic.Uint64 // math.Float64bits of the internal incumbent obj
	nodes    atomic.Int64
	iters    atomic.Int64
	warm     atomic.Int64
	cold     atomic.Int64
	fallback atomic.Int64
	incumb   atomic.Int64
	probes   atomic.Int64
	bland    atomic.Int64
}

func (s *searcher) incumbentObj() float64 {
	return math.Float64frombits(s.incObj.Load())
}

// pruneTarget is the internal objective above which a subtree provably
// cannot improve on what is already known: the incumbent minus the minimal
// improvement step (1 for integral objectives), or the seeded cutoff — an
// objective value known to be achievable somewhere in the tree. An exclusive
// cutoff acts like an incumbent (the caller holds a solution achieving it),
// so subtrees that merely match it are pruned too.
func (s *searcher) pruneTarget() float64 {
	step := 1e-9
	if s.p.intObj {
		step = 1 - 1e-6
	}
	t := s.incumbentObj()
	if !math.IsInf(t, 1) {
		t -= step
	}
	if !math.IsInf(s.cutoff, 1) {
		ct := s.cutoff + 1e-7
		if s.exclusiveCutoff {
			ct = s.cutoff - step
		}
		if ct < t {
			t = ct
		}
	}
	return t
}

func (s *searcher) cancelled() bool {
	return s.ctx.Err() != nil || (!s.deadline.IsZero() && time.Now().After(s.deadline))
}

// shouldStop flips the searcher into drain mode when a limit fires. The
// fast path is lock-free (it runs once per node on every worker); the mutex
// is taken only to flip into drain mode.
func (s *searcher) shouldStop() bool {
	if s.stoppedFlag.Load() {
		return true
	}
	if s.nodes.Load() < int64(s.opt.MaxNodes) && !s.cancelled() {
		return false
	}
	s.mu.Lock()
	s.stopped = true
	s.stoppedFlag.Store(true)
	s.limitHit = true
	s.cond.Broadcast()
	s.mu.Unlock()
	return true
}

// pop hands out the best open node, pruning stale entries, and blocks while
// other workers may still produce work. It returns nil when the search is
// over (exhausted or stopped).
func (s *searcher) pop() *qnode {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			// Drain: the abandoned open nodes define the proven interval.
			for _, nd := range s.open {
				if nd.bound < s.openBound {
					s.openBound = nd.bound
				}
			}
			s.open = nil
			s.cond.Broadcast()
			return nil
		}
		for len(s.open) > 0 {
			nd := heap.Pop(&s.open).(*qnode)
			if nd.bound > s.pruneTarget() {
				continue // exact prune: a better solution is known elsewhere
			}
			s.active++
			return nd
		}
		if s.active == 0 {
			s.cond.Broadcast()
			return nil
		}
		s.cond.Wait()
	}
}

func (s *searcher) done() {
	s.mu.Lock()
	s.active--
	if s.active == 0 && len(s.open) == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

func (s *searcher) push(nd *qnode) {
	s.mu.Lock()
	heap.Push(&s.open, nd)
	s.cond.Signal()
	s.mu.Unlock()
}

// abandon records the bound of a subtree dropped because of a limit.
func (s *searcher) abandon(bound float64) {
	s.mu.Lock()
	if bound < s.openBound {
		s.openBound = bound
	}
	s.limitHit = true
	s.mu.Unlock()
}

func (s *searcher) setUnbounded() {
	s.mu.Lock()
	s.unbounded = true
	s.stopped = true
	s.stoppedFlag.Store(true)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// updateIncumbent installs a verified integer solution if it improves.
func (s *searcher) updateIncumbent(objInternal float64, x []float64) {
	// Under an exclusive cutoff the caller already holds a solution at the
	// cutoff objective; a fallback subtree solve (which runs without cutoff
	// knowledge) may legally return something strictly worse — installing it
	// would let finish() report a worse-than-held "optimum". Drop it.
	if s.exclusiveCutoff && objInternal > s.cutoff+1e-7 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if objInternal < s.incumbentObj()-1e-9 {
		s.incObj.Store(math.Float64bits(objInternal))
		s.incX = append(s.incX[:0], x...)
		s.incumb.Add(1)
		s.span.Event("incumbent",
			obs.Str("obj", strconv.FormatFloat(objInternal, 'g', 10, 64)),
			obs.Int("nodes", s.nodes.Load()))
	}
}

// pcUpdate records one observed LP degradation per unit of fractionality for
// branching variable j in the given direction.
func (s *searcher) pcUpdate(j int, up bool, perUnit float64) {
	s.pcMu.Lock()
	if up {
		s.pcUpSum[j] += perUnit
		s.pcUpN[j]++
	} else {
		s.pcDownSum[j] += perUnit
		s.pcDownN[j]++
	}
	s.pcMu.Unlock()
}

// pcCounts returns the observation counts of variable j.
func (s *searcher) pcCounts(j int) (down, up int32) {
	s.pcMu.Lock()
	down, up = s.pcDownN[j], s.pcUpN[j]
	s.pcMu.Unlock()
	return down, up
}

// flushIters folds a worker tableau's iteration counters into the shared
// totals.
func (s *searcher) flushIters(w *spx) {
	s.iters.Add(w.iters)
	w.iters = 0
	s.bland.Add(w.blandIters)
	w.blandIters = 0
}

// boundsOf reconstructs the full structural bounds of nd into lo/hi by
// walking the delta chain from the root.
func (s *searcher) boundsOf(nd *qnode, lo, hi []float64, path []*qnode) []*qnode {
	copy(lo, s.p.rootLo)
	copy(hi, s.p.rootHi)
	path = path[:0]
	for n := nd; n != nil && n.vr >= 0; n = n.parent {
		path = append(path, n)
	}
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if n.lo > lo[n.vr] {
			lo[n.vr] = n.lo
		}
		if n.hi < hi[n.vr] {
			hi[n.vr] = n.hi
		}
	}
	return path
}

func (s *searcher) worker() {
	p := s.p
	w := newSpx(p)
	w.cancel = s.cancelled
	// scratch hosts iteration-capped strong-branching probes; they must not
	// disturb the live basis mid-dive.
	scratch := newSpx(p)
	scratch.cancel = s.cancelled
	scratch.iterLimit = pcProbeIters
	lo := make([]float64, p.n)
	hi := make([]float64, p.n)
	var path []*qnode
	for {
		nd := s.pop()
		if nd == nil {
			return
		}
		path = s.boundsOf(nd, lo, hi, path)
		s.span.Event("dive",
			obs.Int("depth", int64(len(path))),
			obs.Str("bound", strconv.FormatFloat(nd.bound, 'g', 6, 64)))
		w.reset(lo, hi)
		s.cold.Add(1)
		s.dive(w, scratch, nd, false)
		s.done()
	}
}

// brCand is one fractional branching candidate at a node.
type brCand struct {
	j     int
	f     float64 // fractional part of x_j
	floor float64
}

// dive processes nd with the state already loaded in w, then keeps
// descending into one child per branching (warm-starting from the basis the
// tableau already holds) until the chain is pruned, infeasible, or integer.
func (s *searcher) dive(w, scratch *spx, nd *qnode, warm bool) {
	p := s.p
	x := make([]float64, p.n)
	cands := make([]brCand, 0, 16)
	for {
		if s.shouldStop() {
			s.abandon(nd.bound)
			return
		}
		if warm {
			s.warm.Add(1)
		}
		st := w.dual(s.pruneTarget())
		s.nodes.Add(1)
		s.flushIters(w)
		switch st {
		case spxInfeasible:
			return
		case spxCutoff:
			return // proved it cannot beat the incumbent/cutoff
		case spxCanceled:
			s.abandon(nd.bound)
			return
		case spxIterLimit:
			s.denseFallback(w)
			return
		}
		obj := w.obj()
		// Pseudo-cost observation: the LP degradation this branch caused,
		// per unit of fractionality it removed.
		if nd.vr >= 0 && nd.frac > 1e-9 {
			deg := obj - nd.pobj
			if deg < 0 {
				deg = 0
			}
			s.pcUpdate(nd.vr, nd.up, deg/nd.frac)
		}
		bound := obj
		if p.intObj {
			// Integral objective: the subtree optimum is an integer ≥ obj.
			bound = math.Ceil(obj - 1e-6)
		}
		if bound > s.pruneTarget() {
			return
		}
		w.extract(x)

		cands = cands[:0]
		for j := 0; j < p.n; j++ {
			if !p.integer[j] {
				continue
			}
			fl := math.Floor(x[j])
			f := x[j] - fl
			if math.Min(f, 1-f) > s.opt.IntTol {
				cands = append(cands, brCand{j: j, f: f, floor: fl})
			}
		}
		if len(cands) == 0 {
			// Integer feasible: snap, verify against the original rows, and
			// publish. A failed verification means the warm tableau drifted —
			// hand the subtree to the dense engine instead of trusting it.
			for j := 0; j < p.n; j++ {
				if p.integer[j] {
					x[j] = math.Round(x[j])
				}
			}
			if !w.verify(x) {
				s.denseFallback(w)
				return
			}
			objInt := 0.0
			for j := 0; j < p.n; j++ {
				if c := p.cost[j]; c != 0 {
					objInt += c * x[j]
				}
			}
			s.updateIncumbent(objInt, x)
			return
		}

		// Reliability initialization: strong-branching probes on candidates
		// whose pseudo-costs have too few observations. A probe can prove a
		// direction dead, forcing the other child (or killing the node).
		forced, dead := s.reliabilityProbes(w, scratch, cands, nd, obj, bound)
		if dead {
			return
		}
		if forced != nil {
			nd = forced
			warm = true
			w.applyBound(forced.vr, forced.lo, forced.hi)
			if s.propagateCliques(w, forced) {
				return
			}
			continue
		}

		branch, f, diveUp := s.selectBranch(cands)
		floorV := math.Floor(x[branch])
		ceilV := floorV + 1
		down := &qnode{parent: nd, vr: branch, lo: w.lo[branch], hi: floorV,
			bound: bound, pobj: obj, frac: f, up: false}
		up := &qnode{parent: nd, vr: branch, lo: ceilV, hi: w.hi[branch],
			bound: bound, pobj: obj, frac: 1 - f, up: true}
		var diveNd *qnode
		if diveUp {
			s.push(down)
			diveNd = up
		} else {
			s.push(up)
			diveNd = down
		}
		if w.pivots >= refactorCut {
			// Periodic refactorization: rebuild the tableau from the exact
			// sparse matrix to shed accumulated floating-point drift.
			s.span.Event("refactor", obs.Int("pivots", int64(w.pivots)))
			w.applyBoundOnlyStore(diveNd)
			w.reset(w.lo[:p.n], w.hi[:p.n])
			s.cold.Add(1)
			warm = false
		} else {
			w.applyBound(diveNd.vr, diveNd.lo, diveNd.hi)
			warm = true
		}
		if s.propagateCliques(w, diveNd) {
			return
		}
		nd = diveNd
	}
}

// reliabilityProbes runs iteration-capped strong-branching probes on the
// most fractional candidates whose pseudo-costs are still unreliable,
// feeding the results into the pseudo-cost statistics. When a probe proves
// one direction cannot contain an improving solution, the returned forced
// child replaces branching; when both directions are dead the node is
// resolved (dead = true).
func (s *searcher) reliabilityProbes(w, scratch *spx, cands []brCand, nd *qnode, obj, bound float64) (forced *qnode, dead bool) {
	if len(cands) < 2 {
		return nil, false
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da := math.Min(cands[order[a]].f, 1-cands[order[a]].f)
		db := math.Min(cands[order[b]].f, 1-cands[order[b]].f)
		return da > db
	})
	prune := s.pruneTarget()
	probed := 0
	for _, ci := range order {
		if probed >= pcMaxProbes {
			break
		}
		c := cands[ci]
		dN, uN := s.pcCounts(c.j)
		if dN >= pcReliable && uN >= pcReliable {
			continue
		}
		probed++
		var downDead, upDead bool
		if dN < pcReliable {
			res := s.probeDir(w, scratch, c.j, w.lo[c.j], c.floor, prune)
			if res.dead {
				downDead = true
			} else if res.known {
				s.pcUpdate(c.j, false, math.Max(0, res.obj-obj)/c.f)
			}
		}
		if uN < pcReliable {
			res := s.probeDir(w, scratch, c.j, c.floor+1, w.hi[c.j], prune)
			if res.dead {
				upDead = true
			} else if res.known {
				s.pcUpdate(c.j, true, math.Max(0, res.obj-obj)/(1-c.f))
			}
		}
		switch {
		case downDead && upDead:
			return nil, true
		case downDead:
			return &qnode{parent: nd, vr: c.j, lo: c.floor + 1, hi: w.hi[c.j],
				bound: bound, pobj: obj, frac: 1 - c.f, up: true}, false
		case upDead:
			return &qnode{parent: nd, vr: c.j, lo: w.lo[c.j], hi: c.floor,
				bound: bound, pobj: obj, frac: c.f, up: false}, false
		}
	}
	return nil, false
}

type probeOutcome struct {
	dead  bool
	known bool // obj is a usable child bound
	obj   float64
}

// probeDir solves the child [lo, hi] of variable j on the scratch tableau
// with a tight iteration cap. The dual objective is a monotone lower bound
// on the child LP, so even an iteration-capped probe yields a valid
// pseudo-cost estimate, and exceeding the prune target proves the child
// dead regardless of how the solve would have ended.
func (s *searcher) probeDir(w, scratch *spx, j int, lo, hi, prune float64) probeOutcome {
	scratch.copyFrom(w)
	scratch.applyBound(j, lo, hi)
	st := scratch.dual(prune)
	s.probes.Add(1)
	s.flushIters(scratch)
	switch st {
	case spxInfeasible, spxCutoff:
		return probeOutcome{dead: true}
	case spxOptimal, spxIterLimit:
		o := scratch.obj()
		if o > prune {
			return probeOutcome{dead: true}
		}
		return probeOutcome{known: true, obj: o}
	default: // canceled
		return probeOutcome{}
	}
}

// selectBranch picks the branching variable maximizing the pseudo-cost
// product score max(ε, down·f)·max(ε, up·(1−f)); directions without
// observations fall back to unit pseudo-costs, which degenerates to
// most-fractional selection on a cold start. The dive follows the direction
// with the smaller estimated degradation.
func (s *searcher) selectBranch(cands []brCand) (branch int, f float64, diveUp bool) {
	s.pcMu.Lock()
	defer s.pcMu.Unlock()
	const eps = 1e-6
	branch, f = cands[0].j, cands[0].f
	bestScore := math.Inf(-1)
	for _, c := range cands {
		dAvg, uAvg := 1.0, 1.0
		if n := s.pcDownN[c.j]; n > 0 {
			dAvg = s.pcDownSum[c.j] / float64(n)
		}
		if n := s.pcUpN[c.j]; n > 0 {
			uAvg = s.pcUpSum[c.j] / float64(n)
		}
		dDeg, uDeg := dAvg*c.f, uAvg*(1-c.f)
		score := math.Max(dDeg, eps) * math.Max(uDeg, eps)
		if score > bestScore {
			branch, f, bestScore = c.j, c.f, score
			if uDeg != dDeg {
				diveUp = uDeg < dDeg
			} else {
				diveUp = c.f > 0.5
			}
		}
	}
	return branch, f, diveUp
}

// propagateCliques runs clique domain propagation after the dive fixed a
// binary to 1: in every hinted clique containing it whose members fixed to
// 1 have reached the right-hand side, all remaining members must be 0. The
// tightenings apply to the live tableau only — siblings reconstructing
// bounds from the qnode chain see the looser (still correct) domain.
// Reports whether the node became infeasible (fixed ones exceed a clique's
// right-hand side).
func (s *searcher) propagateCliques(w *spx, nd *qnode) bool {
	if s.cliqueIx == nil || !nd.up || nd.lo < 0.5 {
		return false
	}
	for _, c := range s.cliqueIx.byCol[nd.vr] {
		ones := 0.0
		for _, m := range c.cols {
			ones += w.lo[m]
		}
		if ones > c.rhs+1e-6 {
			return true
		}
		if ones >= c.rhs-1e-6 {
			for _, m := range c.cols {
				if w.lo[m] < 0.5 && w.hi[m] > 0.5 {
					w.applyBound(m, w.lo[m], 0)
				}
			}
		}
	}
	return false
}

// applyBoundOnlyStore records the child's bounds without touching the basis
// (used right before a full rebuild).
func (w *spx) applyBoundOnlyStore(nd *qnode) {
	w.lo[nd.vr], w.hi[nd.vr] = nd.lo, nd.hi
}

// denseFallback solves the worker's current subtree with the dense reference
// engine: slower, but immune to the warm tableau's numerical state. The
// subtree is fully resolved (its own branch and bound), so the node does not
// return to the queue.
func (s *searcher) denseFallback(w *spx) {
	p := s.p
	s.fallback.Add(1)
	// Reserve the node grant up front (and refund the unused part after), so
	// concurrent fallbacks cannot each claim the full remaining budget and
	// overshoot MaxNodes by a factor of the worker count.
	var grant int64
	for {
		cur := s.nodes.Load()
		grant = int64(s.opt.MaxNodes) - cur
		if grant < 1 {
			grant = 1
		}
		if s.nodes.CompareAndSwap(cur, cur+grant) {
			break
		}
	}
	s.span.Event("fallback.dense", obs.Int("nodeGrant", grant))
	params := lp.Params{IntTol: s.opt.IntTol, MaxNodes: int(grant)}
	if !s.deadline.IsZero() {
		params.TimeLimit = time.Until(s.deadline)
		if params.TimeLimit <= 0 {
			params.TimeLimit = time.Millisecond
		}
	}
	sol := p.model.SolveWithBounds(s.ctx, params, w.lo[:p.n], w.hi[:p.n])
	s.nodes.Add(int64(sol.Nodes) - grant)
	switch sol.Status {
	case lp.StatusUnbounded:
		s.setUnbounded()
	case lp.StatusOptimal:
		s.updateIncumbent(p.internalObj(sol.Obj), sol.X)
	case lp.StatusFeasible:
		s.updateIncumbent(p.internalObj(sol.Obj), sol.X)
		s.abandon(p.internalObj(sol.Bound))
	case lp.StatusLimit:
		s.abandon(p.internalObj(sol.Bound))
	}
}

// finish assembles the Solution from the search state. Workers have joined
// by the time it runs, but it reads mu-guarded fields (unbounded, limitHit,
// openBound, incX), so it takes the — by now uncontended — lock anyway.
func (s *searcher) finish() *Solution {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.p
	sol := &Solution{
		Stats: Stats{
			Nodes:        s.nodes.Load(),
			SimplexIters: s.iters.Load(),
			WarmStarts:   s.warm.Load(),
			ColdStarts:   s.cold.Load(),
			Fallbacks:    s.fallback.Load(),
			Incumbents:   s.incumb.Load(),
			BranchProbes: s.probes.Load(),
			BlandIters:   s.bland.Load(),
		},
	}
	s.pcMu.Lock()
	for j := 0; j < p.n; j++ {
		if s.pcDownN[j] > 0 && s.pcUpN[j] > 0 {
			sol.Stats.ReliableVars++
		}
	}
	s.pcMu.Unlock()
	if s.unbounded {
		sol.Status = lp.StatusUnbounded
		return sol
	}
	inc := s.incumbentObj()
	haveInc := !math.IsInf(inc, 1)
	if !haveInc && s.exclusiveCutoff {
		// Nothing beat the caller's held solution: its objective stands as
		// the incumbent (with proof of optimality when the tree was
		// exhausted).
		sol.AtCutoff = true
		sol.Obj = p.externalObj(s.cutoff)
		if !s.limitHit {
			sol.Status = lp.StatusOptimal
			sol.Bound = sol.Obj
		} else {
			sol.Status = lp.StatusFeasible
			sol.Capped = true
			sol.Bound = p.externalObj(math.Min(s.openBound, s.cutoff))
			sol.Gap = math.Abs(sol.Obj - sol.Bound)
		}
		return sol
	}
	if haveInc {
		sol.Obj = p.externalObj(inc)
		sol.X = append([]float64(nil), s.incX...)
	}
	switch {
	case haveInc && !s.limitHit:
		sol.Status = lp.StatusOptimal
		sol.Bound = sol.Obj
	case haveInc:
		sol.Status = lp.StatusFeasible
		sol.Capped = true
		sol.Bound = p.externalObj(math.Min(s.openBound, inc))
		sol.Gap = math.Abs(sol.Obj - sol.Bound)
	case s.limitHit:
		sol.Status = lp.StatusLimit
		sol.Capped = true
		sol.Bound = p.externalObj(s.openBound)
	default:
		sol.Status = lp.StatusInfeasible
	}
	return sol
}
