package solver

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"regsat/internal/lp"
)

// sparseBackend is the rewritten MILP engine: sparse constraint storage, a
// dual-simplex reoptimizer, best-bound node selection with single-bound
// deltas, warm-started dives from the parent basis, incumbent/cutoff
// seeding, and a parallel tree search sharing an atomic incumbent.
//
// Node processing is organized as dives: a worker pops the best-bound open
// node, solves it from a cold (all-slack, dual-feasible) start, then keeps
// descending into one child per branching — reusing the tableau and basis it
// already holds, which makes the child solve a handful of dual pivots — while
// the sibling goes onto the shared best-bound queue as a {variable, bound}
// delta against its parent chain. Any numerical trouble hands the affected
// subtree to the dense reference engine, so exactness never depends on the
// fast path.
type sparseBackend struct {
	// defaultParallel is the worker count when Options.Parallel is 0.
	defaultParallel func() int
	name            string
}

func init() {
	Register(sparseBackend{name: "sparse", defaultParallel: func() int { return 1 }})
	Register(sparseBackend{name: "parallel", defaultParallel: runtime.NumCPU})
}

func (b sparseBackend) Name() string { return b.name }

func (b sparseBackend) Solve(ctx context.Context, m *lp.Model, opt Options) (*Solution, error) {
	opt = opt.withDefaults()
	start := time.Now()
	p, err := buildProb(m)
	if err == errDense {
		// Infinite bounds on a cost-bearing variable: the general-purpose
		// dense engine handles those (and detects unboundedness).
		return denseBackend{}.Solve(ctx, m, opt)
	}
	if err != nil {
		return nil, err
	}
	// An explicit Parallel is honored as given (oversubscription is just
	// goroutines); only the default is derived from the machine.
	workers := opt.Parallel
	if workers <= 0 {
		workers = b.defaultParallel()
	}
	if workers < 1 {
		workers = 1
	}

	s := &searcher{
		p:         p,
		opt:       opt,
		ctx:       ctx,
		openBound: math.Inf(1),
		cutoff:    math.Inf(1),
	}
	s.cond = sync.NewCond(&s.mu)
	s.incObj.Store(math.Float64bits(math.Inf(1)))
	if opt.TimeLimit > 0 {
		s.deadline = time.Now().Add(opt.TimeLimit)
	}
	if opt.Cutoff != nil {
		s.cutoff = p.internalObj(*opt.Cutoff)
		s.exclusiveCutoff = opt.ExclusiveCutoff
	}
	heap.Push(&s.open, &qnode{vr: -1, bound: math.Inf(-1)})

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s.worker()
		}()
	}
	wg.Wait()

	sol := s.finish()
	sol.Stats.Workers = workers
	sol.Stats.Duration = time.Since(start)
	return sol, ctx.Err()
}

// qnode is one open subtree: a single {variable, bounds} delta against its
// parent chain (the chain is walked to reconstruct full bounds on pop — no
// per-node O(n) bound copies) plus the parent relaxation objective, which is
// a valid bound on everything below.
type qnode struct {
	parent *qnode
	vr     int     // branched variable; -1 for the root
	lo, hi float64 // bounds of vr in this subtree
	bound  float64 // parent LP objective, internal minimize sense
}

type nodeHeap []*qnode

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(*qnode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

type searcher struct {
	p   *prob
	opt Options
	ctx context.Context

	// deadline, cutoff, and exclusiveCutoff are fixed before workers start
	// and read lock-free on the per-node hot path, so they live above the
	// mutex: mu guards only the fields below it.
	deadline        time.Time
	cutoff          float64 // internal sense; +inf when unseeded
	exclusiveCutoff bool

	mu       sync.Mutex
	cond     *sync.Cond
	open     nodeHeap
	active   int  // workers currently diving
	stopped  bool // a limit fired; drain and report the interval
	limitHit bool
	// stoppedFlag mirrors stopped for the lock-free per-node fast path.
	stoppedFlag atomic.Bool
	unbounded   bool
	openBound   float64   // min bound over abandoned subtrees (internal)
	incX        []float64 // incumbent assignment (model variables, snapped)

	incObj   atomic.Uint64 // math.Float64bits of the internal incumbent obj
	nodes    atomic.Int64
	iters    atomic.Int64
	warm     atomic.Int64
	cold     atomic.Int64
	fallback atomic.Int64
	incumb   atomic.Int64
}

func (s *searcher) incumbentObj() float64 {
	return math.Float64frombits(s.incObj.Load())
}

// pruneTarget is the internal objective above which a subtree provably
// cannot improve on what is already known: the incumbent minus the minimal
// improvement step (1 for integral objectives), or the seeded cutoff — an
// objective value known to be achievable somewhere in the tree. An exclusive
// cutoff acts like an incumbent (the caller holds a solution achieving it),
// so subtrees that merely match it are pruned too.
func (s *searcher) pruneTarget() float64 {
	step := 1e-9
	if s.p.intObj {
		step = 1 - 1e-6
	}
	t := s.incumbentObj()
	if !math.IsInf(t, 1) {
		t -= step
	}
	if !math.IsInf(s.cutoff, 1) {
		ct := s.cutoff + 1e-7
		if s.exclusiveCutoff {
			ct = s.cutoff - step
		}
		if ct < t {
			t = ct
		}
	}
	return t
}

func (s *searcher) cancelled() bool {
	return s.ctx.Err() != nil || (!s.deadline.IsZero() && time.Now().After(s.deadline))
}

// shouldStop flips the searcher into drain mode when a limit fires. The
// fast path is lock-free (it runs once per node on every worker); the mutex
// is taken only to flip into drain mode.
func (s *searcher) shouldStop() bool {
	if s.stoppedFlag.Load() {
		return true
	}
	if s.nodes.Load() < int64(s.opt.MaxNodes) && !s.cancelled() {
		return false
	}
	s.mu.Lock()
	s.stopped = true
	s.stoppedFlag.Store(true)
	s.limitHit = true
	s.cond.Broadcast()
	s.mu.Unlock()
	return true
}

// pop hands out the best open node, pruning stale entries, and blocks while
// other workers may still produce work. It returns nil when the search is
// over (exhausted or stopped).
func (s *searcher) pop() *qnode {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			// Drain: the abandoned open nodes define the proven interval.
			for _, nd := range s.open {
				if nd.bound < s.openBound {
					s.openBound = nd.bound
				}
			}
			s.open = nil
			s.cond.Broadcast()
			return nil
		}
		for len(s.open) > 0 {
			nd := heap.Pop(&s.open).(*qnode)
			if nd.bound > s.pruneTarget() {
				continue // exact prune: a better solution is known elsewhere
			}
			s.active++
			return nd
		}
		if s.active == 0 {
			s.cond.Broadcast()
			return nil
		}
		s.cond.Wait()
	}
}

func (s *searcher) done() {
	s.mu.Lock()
	s.active--
	if s.active == 0 && len(s.open) == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

func (s *searcher) push(nd *qnode) {
	s.mu.Lock()
	heap.Push(&s.open, nd)
	s.cond.Signal()
	s.mu.Unlock()
}

// abandon records the bound of a subtree dropped because of a limit.
func (s *searcher) abandon(bound float64) {
	s.mu.Lock()
	if bound < s.openBound {
		s.openBound = bound
	}
	s.limitHit = true
	s.mu.Unlock()
}

func (s *searcher) setUnbounded() {
	s.mu.Lock()
	s.unbounded = true
	s.stopped = true
	s.stoppedFlag.Store(true)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// updateIncumbent installs a verified integer solution if it improves.
func (s *searcher) updateIncumbent(objInternal float64, x []float64) {
	// Under an exclusive cutoff the caller already holds a solution at the
	// cutoff objective; a fallback subtree solve (which runs without cutoff
	// knowledge) may legally return something strictly worse — installing it
	// would let finish() report a worse-than-held "optimum". Drop it.
	if s.exclusiveCutoff && objInternal > s.cutoff+1e-7 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if objInternal < s.incumbentObj()-1e-9 {
		s.incObj.Store(math.Float64bits(objInternal))
		s.incX = append(s.incX[:0], x...)
		s.incumb.Add(1)
	}
}

// boundsOf reconstructs the full structural bounds of nd into lo/hi by
// walking the delta chain from the root.
func (s *searcher) boundsOf(nd *qnode, lo, hi []float64, path []*qnode) []*qnode {
	copy(lo, s.p.rootLo)
	copy(hi, s.p.rootHi)
	path = path[:0]
	for n := nd; n != nil && n.vr >= 0; n = n.parent {
		path = append(path, n)
	}
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if n.lo > lo[n.vr] {
			lo[n.vr] = n.lo
		}
		if n.hi < hi[n.vr] {
			hi[n.vr] = n.hi
		}
	}
	return path
}

func (s *searcher) worker() {
	p := s.p
	w := newSpx(p)
	w.cancel = s.cancelled
	lo := make([]float64, p.n)
	hi := make([]float64, p.n)
	var path []*qnode
	for {
		nd := s.pop()
		if nd == nil {
			return
		}
		path = s.boundsOf(nd, lo, hi, path)
		w.reset(lo, hi)
		s.cold.Add(1)
		s.dive(w, nd, false)
		s.done()
	}
}

// dive processes nd with the state already loaded in w, then keeps
// descending into one child per branching (warm-starting from the basis the
// tableau already holds) until the chain is pruned, infeasible, or integer.
func (s *searcher) dive(w *spx, nd *qnode, warm bool) {
	p := s.p
	x := make([]float64, p.n)
	for {
		if s.shouldStop() {
			s.abandon(nd.bound)
			return
		}
		if warm {
			s.warm.Add(1)
		}
		st := w.dual(s.pruneTarget())
		s.nodes.Add(1)
		s.iters.Add(w.iters)
		w.iters = 0
		switch st {
		case spxInfeasible:
			return
		case spxCutoff:
			return // proved it cannot beat the incumbent/cutoff
		case spxCanceled:
			s.abandon(nd.bound)
			return
		case spxIterLimit:
			s.denseFallback(w)
			return
		}
		obj := w.obj()
		bound := obj
		if p.intObj {
			// Integral objective: the subtree optimum is an integer ≥ obj.
			bound = math.Ceil(obj - 1e-6)
		}
		if bound > s.pruneTarget() {
			return
		}
		w.extract(x)

		// Most fractional integer variable.
		branch, fracDist := -1, s.opt.IntTol
		for j := 0; j < p.n; j++ {
			if !p.integer[j] {
				continue
			}
			f := x[j] - math.Floor(x[j])
			if dist := math.Min(f, 1-f); dist > fracDist {
				branch, fracDist = j, dist
			}
		}
		if branch < 0 {
			// Integer feasible: snap, verify against the original rows, and
			// publish. A failed verification means the warm tableau drifted —
			// hand the subtree to the dense engine instead of trusting it.
			for j := 0; j < p.n; j++ {
				if p.integer[j] {
					x[j] = math.Round(x[j])
				}
			}
			if !w.verify(x) {
				s.denseFallback(w)
				return
			}
			objInt := 0.0
			for j := 0; j < p.n; j++ {
				if c := p.cost[j]; c != 0 {
					objInt += c * x[j]
				}
			}
			s.updateIncumbent(objInt, x)
			return
		}

		// Branch. The sibling farther from the fractional value goes to the
		// shared queue as a single-bound delta; the nearer child is solved in
		// place, reusing the parent's final basis.
		floorV := math.Floor(x[branch])
		ceilV := floorV + 1
		down := &qnode{parent: nd, vr: branch, lo: w.lo[branch], hi: floorV, bound: bound}
		up := &qnode{parent: nd, vr: branch, lo: ceilV, hi: w.hi[branch], bound: bound}
		var diveNd *qnode
		if x[branch]-floorV > 0.5 {
			s.push(down)
			diveNd = up
		} else {
			s.push(up)
			diveNd = down
		}
		if w.pivots >= refactorCut {
			// Periodic refactorization: rebuild the tableau from the exact
			// sparse matrix to shed accumulated floating-point drift.
			w.applyBoundOnlyStore(diveNd)
			w.reset(w.lo[:p.n], w.hi[:p.n])
			s.cold.Add(1)
			warm = false
		} else {
			w.applyBound(diveNd.vr, diveNd.lo, diveNd.hi)
			warm = true
		}
		nd = diveNd
	}
}

// applyBoundOnlyStore records the child's bounds without touching the basis
// (used right before a full rebuild).
func (w *spx) applyBoundOnlyStore(nd *qnode) {
	w.lo[nd.vr], w.hi[nd.vr] = nd.lo, nd.hi
}

// denseFallback solves the worker's current subtree with the dense reference
// engine: slower, but immune to the warm tableau's numerical state. The
// subtree is fully resolved (its own branch and bound), so the node does not
// return to the queue.
func (s *searcher) denseFallback(w *spx) {
	p := s.p
	s.fallback.Add(1)
	// Reserve the node grant up front (and refund the unused part after), so
	// concurrent fallbacks cannot each claim the full remaining budget and
	// overshoot MaxNodes by a factor of the worker count.
	var grant int64
	for {
		cur := s.nodes.Load()
		grant = int64(s.opt.MaxNodes) - cur
		if grant < 1 {
			grant = 1
		}
		if s.nodes.CompareAndSwap(cur, cur+grant) {
			break
		}
	}
	params := lp.Params{IntTol: s.opt.IntTol, MaxNodes: int(grant)}
	if !s.deadline.IsZero() {
		params.TimeLimit = time.Until(s.deadline)
		if params.TimeLimit <= 0 {
			params.TimeLimit = time.Millisecond
		}
	}
	sol := p.model.SolveWithBounds(s.ctx, params, w.lo[:p.n], w.hi[:p.n])
	s.nodes.Add(int64(sol.Nodes) - grant)
	switch sol.Status {
	case lp.StatusUnbounded:
		s.setUnbounded()
	case lp.StatusOptimal:
		s.updateIncumbent(p.internalObj(sol.Obj), sol.X)
	case lp.StatusFeasible:
		s.updateIncumbent(p.internalObj(sol.Obj), sol.X)
		s.abandon(p.internalObj(sol.Bound))
	case lp.StatusLimit:
		s.abandon(p.internalObj(sol.Bound))
	}
}

// finish assembles the Solution from the search state. Workers have joined
// by the time it runs, but it reads mu-guarded fields (unbounded, limitHit,
// openBound, incX), so it takes the — by now uncontended — lock anyway.
func (s *searcher) finish() *Solution {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.p
	sol := &Solution{
		Stats: Stats{
			Nodes:        s.nodes.Load(),
			SimplexIters: s.iters.Load(),
			WarmStarts:   s.warm.Load(),
			ColdStarts:   s.cold.Load(),
			Fallbacks:    s.fallback.Load(),
			Incumbents:   s.incumb.Load(),
		},
	}
	if s.unbounded {
		sol.Status = lp.StatusUnbounded
		return sol
	}
	inc := s.incumbentObj()
	haveInc := !math.IsInf(inc, 1)
	if !haveInc && s.exclusiveCutoff {
		// Nothing beat the caller's held solution: its objective stands as
		// the incumbent (with proof of optimality when the tree was
		// exhausted).
		sol.AtCutoff = true
		sol.Obj = p.externalObj(s.cutoff)
		if !s.limitHit {
			sol.Status = lp.StatusOptimal
			sol.Bound = sol.Obj
		} else {
			sol.Status = lp.StatusFeasible
			sol.Capped = true
			sol.Bound = p.externalObj(math.Min(s.openBound, s.cutoff))
			sol.Gap = math.Abs(sol.Obj - sol.Bound)
		}
		return sol
	}
	if haveInc {
		sol.Obj = p.externalObj(inc)
		sol.X = append([]float64(nil), s.incX...)
	}
	switch {
	case haveInc && !s.limitHit:
		sol.Status = lp.StatusOptimal
		sol.Bound = sol.Obj
	case haveInc:
		sol.Status = lp.StatusFeasible
		sol.Capped = true
		sol.Bound = p.externalObj(math.Min(s.openBound, inc))
		sol.Gap = math.Abs(sol.Obj - sol.Bound)
	case s.limitHit:
		sol.Status = lp.StatusLimit
		sol.Capped = true
		sol.Bound = p.externalObj(s.openBound)
	default:
		sol.Status = lp.StatusInfeasible
	}
	return sol
}
