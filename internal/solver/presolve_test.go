package solver

import (
	"math"
	"math/rand"
	"testing"

	"regsat/internal/lp"
)

// checkSatisfies asserts that x is a feasible integer assignment of m.
func checkSatisfies(t *testing.T, m *lp.Model, x []float64, tag string) {
	t.Helper()
	if len(x) != m.NumVars() {
		t.Fatalf("%s: assignment has %d entries for %d variables", tag, len(x), m.NumVars())
	}
	for j := 0; j < m.NumVars(); j++ {
		lo, hi := m.Bounds(lp.Var(j))
		if x[j] < lo-1e-6 || x[j] > hi+1e-6 {
			t.Fatalf("%s: x[%d]=%g outside [%g, %g]", tag, j, x[j], lo, hi)
		}
		if m.IsInteger(lp.Var(j)) && math.Abs(x[j]-math.Round(x[j])) > 1e-6 {
			t.Fatalf("%s: integer x[%d]=%g is fractional", tag, j, x[j])
		}
	}
	for i := 0; i < m.NumConstrs(); i++ {
		terms, rel, rhs := m.Constr(i)
		act := 0.0
		for _, tm := range terms {
			act += tm.Coef * x[tm.Var]
		}
		tol := 1e-6 * (1 + math.Abs(rhs))
		switch rel {
		case lp.LE:
			if act > rhs+tol {
				t.Fatalf("%s: row %d: activity %g > rhs %g", tag, i, act, rhs)
			}
		case lp.GE:
			if act < rhs-tol {
				t.Fatalf("%s: row %d: activity %g < rhs %g", tag, i, act, rhs)
			}
		case lp.EQ:
			if math.Abs(act-rhs) > tol {
				t.Fatalf("%s: row %d: activity %g != rhs %g", tag, i, act, rhs)
			}
		}
	}
}

// TestPresolveRoundTripRandom: on random integer programs the sparse engine
// with presolve+cuts enabled and disabled must agree with the dense
// reference, and every returned incumbent — which passed through
// postsolve — must satisfy the *original* model with the original
// objective value.
func TestPresolveRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	trials := 300
	if testing.Short() {
		trials = 100
	}
	for trial := 0; trial < trials; trial++ {
		m := randomMILP(rng)
		ref := solveWith(t, "dense", m, Options{})
		for _, cfg := range []struct {
			tag string
			opt Options
		}{
			{"presolve+cuts", Options{}},
			{"raw", Options{DisablePresolve: true, DisableCuts: true}},
		} {
			sol := solveWith(t, "sparse", m, cfg.opt)
			if sol.Status != ref.Status {
				t.Fatalf("trial %d (%s): status %v, dense %v\n%s",
					trial, cfg.tag, sol.Status, ref.Status, m.String())
			}
			if ref.Status == lp.StatusOptimal && math.Abs(sol.Obj-ref.Obj) > 1e-6 {
				t.Fatalf("trial %d (%s): obj %g, dense %g\n%s",
					trial, cfg.tag, sol.Obj, ref.Obj, m.String())
			}
			if sol.Feasible() && !sol.AtCutoff {
				checkSatisfies(t, m, sol.X, cfg.tag)
				obj := m.ObjOffset()
				for j := 0; j < m.NumVars(); j++ {
					obj += m.ObjCoef(lp.Var(j)) * sol.X[j]
				}
				if math.Abs(obj-sol.Obj) > 1e-6 {
					t.Fatalf("trial %d (%s): reported obj %g but x evaluates to %g\n%s",
						trial, cfg.tag, sol.Obj, obj, m.String())
				}
			}
		}
	}
}

// TestPresolveFixedVariable: a collapsed-bound variable leaves the model,
// its objective contribution moves to the offset, and its value substitutes
// into every row (here turning the row into a singleton that folds into a
// bound). Postsolve restores the original variable order.
func TestPresolveFixedVariable(t *testing.T) {
	m := lp.NewModel("fix", lp.Maximize)
	x := m.NewVar(2, 2, true, "x")
	y := m.NewVar(0, 5, true, "y")
	m.SetObjCoef(x, 3)
	m.SetObjCoef(y, 1)
	m.AddConstr([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 6, "c")
	ps := presolve(m, 1e-6, true)
	if ps.infeasible {
		t.Fatal("feasible model presolved to infeasible")
	}
	if ps.colMap[0] != -1 || ps.fixed[0] != 2 {
		t.Fatalf("x not eliminated at 2: colMap=%v fixed=%v", ps.colMap, ps.fixed)
	}
	if ps.m.NumVars() != 1 || ps.m.NumConstrs() != 0 {
		t.Fatalf("reduced model has %d vars, %d rows; want 1, 0", ps.m.NumVars(), ps.m.NumConstrs())
	}
	if off := ps.m.ObjOffset(); off != 6 {
		t.Fatalf("objective offset %g, want 6 (3·x at x=2)", off)
	}
	// The substituted row y ≤ 4 folded into y's upper bound.
	if _, hi := ps.m.Bounds(0); hi != 4 {
		t.Fatalf("y's bound not tightened to 4 (hi=%g)", hi)
	}
	if ps.cols != 1 || ps.rows != 1 {
		t.Fatalf("counters: cols=%d rows=%d, want 1, 1", ps.cols, ps.rows)
	}
	got := ps.postsolve([]float64{4})
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("postsolve([4]) = %v, want [2 4]", got)
	}
}

// TestPresolveInfeasibleBounds: contradictory singleton rows prove
// infeasibility inside presolve.
func TestPresolveInfeasibleBounds(t *testing.T) {
	m := lp.NewModel("inf", lp.Minimize)
	x := m.NewVar(0, 5, true, "x")
	m.AddConstr([]lp.Term{{Var: x, Coef: 1}}, lp.GE, 3, "ge")
	m.AddConstr([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 2, "le")
	ps := presolve(m, 1e-6, true)
	if !ps.infeasible {
		t.Fatal("x ≥ 3 ∧ x ≤ 2 not detected infeasible")
	}
}

// TestPresolveDuplicateRows: identical term vectors merge, keeping the
// tightest right-hand side; the reduced model still has the original
// optimum (modulo the offset the reduction moved).
func TestPresolveDuplicateRows(t *testing.T) {
	m := lp.NewModel("dup", lp.Maximize)
	x := m.NewVar(0, 10, true, "x")
	y := m.NewVar(0, 10, true, "y")
	m.SetObjCoef(x, 1)
	m.SetObjCoef(y, 1)
	m.AddConstr([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 5, "loose")
	m.AddConstr([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 3, "tight")
	ps := presolve(m, 1e-6, true)
	if ps.infeasible {
		t.Fatal("feasible model presolved to infeasible")
	}
	if ps.rows < 1 {
		t.Fatalf("duplicate row not merged (rows removed: %d)", ps.rows)
	}
	sol := solveWith(t, "dense", ps.m, Options{})
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Obj-3) > 1e-6 {
		t.Fatalf("reduced model optimum %v/%g, want optimal 3", sol.Status, sol.Obj)
	}
}

// TestPresolveCoefficientTightening: the Savelsbergh transform on
// 3x + 2y ≤ 4 over binaries yields x + y ≤ 1 — the same integer set
// {00, 10, 01} as a strictly tighter LP relaxation (the clique form).
func TestPresolveCoefficientTightening(t *testing.T) {
	m := lp.NewModel("coef", lp.Maximize)
	x := m.NewBinary("x")
	y := m.NewBinary("y")
	m.SetObjCoef(x, 1)
	m.SetObjCoef(y, 1)
	m.AddConstr([]lp.Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, lp.LE, 4, "c")
	ps := presolve(m, 1e-6, true)
	if ps.infeasible {
		t.Fatal("feasible model presolved to infeasible")
	}
	if ps.m.NumConstrs() != 1 {
		t.Fatalf("reduced model has %d rows, want 1", ps.m.NumConstrs())
	}
	terms, rel, rhs := ps.m.Constr(0)
	if rel != lp.LE || rhs != 1 || len(terms) != 2 || terms[0].Coef != 1 || terms[1].Coef != 1 {
		t.Fatalf("tightened row is %v %v %g, want x + y ≤ 1", terms, rel, rhs)
	}
	if ps.tightenings < 2 {
		t.Fatalf("tightenings=%d, want ≥ 2 (both coefficients)", ps.tightenings)
	}
	sol := solveWith(t, "sparse", m, Options{})
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Obj-1) > 1e-6 {
		t.Fatalf("optimum %v/%g, want optimal 1", sol.Status, sol.Obj)
	}
}

// TestPresolveDisabled: with reductions off the pass still re-emits an
// owned identity copy — same dimensions, identity column map.
func TestPresolveDisabled(t *testing.T) {
	m := knapsack()
	ps := presolve(m, 1e-6, false)
	if ps.infeasible {
		t.Fatal("identity presolve reported infeasible")
	}
	if ps.m == m {
		t.Fatal("identity presolve returned the caller's model, not a copy")
	}
	if ps.m.NumVars() != m.NumVars() || ps.m.NumConstrs() != m.NumConstrs() {
		t.Fatalf("identity copy changed dimensions: %dx%d vs %dx%d",
			ps.m.NumVars(), ps.m.NumConstrs(), m.NumVars(), m.NumConstrs())
	}
	for j := range ps.colMap {
		if ps.colMap[j] != j {
			t.Fatalf("colMap[%d]=%d, want identity", j, ps.colMap[j])
		}
	}
	if ps.rows != 0 || ps.cols != 0 || ps.tightenings != 0 {
		t.Fatalf("identity presolve reported work: %+v", ps.stats())
	}
}

// TestPresolveStatsSurface: a model presolve can shrink must report the
// reductions through Solution.Stats.
func TestPresolveStatsSurface(t *testing.T) {
	m := lp.NewModel("stats", lp.Maximize)
	x := m.NewVar(3, 3, true, "x") // fixed
	y := m.NewVar(0, 9, true, "y")
	m.SetObjCoef(x, 1)
	m.SetObjCoef(y, 2)
	m.AddConstr([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 8, "c")
	sol := solveWith(t, "sparse", m, Options{})
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Obj-13) > 1e-6 {
		t.Fatalf("optimum %v/%g, want optimal 13", sol.Status, sol.Obj)
	}
	if sol.X[0] != 3 || sol.X[1] != 5 {
		t.Fatalf("x=%v, want [3 5]", sol.X)
	}
	if sol.Stats.PresolveCols == 0 {
		t.Fatalf("fixed column not counted in stats: %+v", sol.Stats)
	}
}
