// Package solver is the pluggable MILP solving layer: every exact intLP of
// the paper (the Section 3 saturation program and the Section 4 reduction
// program) is solved through the Backend interface of this package instead of
// calling a concrete engine directly.
//
// Two engines ship in-tree:
//
//   - "dense" — the original dense-tableau two-phase primal simplex with a
//     sequential depth-first branch and bound (internal/lp), kept as the
//     reference implementation;
//   - "sparse" — a rewrite around sparse constraint storage, a dual-simplex
//     reoptimizer, best-bound node selection with single-bound deltas,
//     warm-started dives from the parent basis, incumbent/cutoff seeding,
//     and an optional parallel tree search with a shared atomic incumbent.
//     "parallel" is the same engine defaulting to one tree-search worker per
//     CPU.
//
// Backends register themselves by name; consumers select one with
// Options.Backend and receive uniform Solution/Stats reporting, including
// the proven dual bound and optimality gap when a search limit is hit.
package solver

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"regsat/internal/lp"
	"regsat/internal/obs"
)

// DefaultBackend is used when Options.Backend is empty.
const DefaultBackend = "sparse"

// Options configures one MILP solve, whatever the backend.
type Options struct {
	// Backend selects the registered engine ("" = DefaultBackend).
	Backend string
	// MaxNodes caps the number of explored branch-and-bound nodes
	// (0 = default 200000).
	MaxNodes int
	// TimeLimit caps wall time (0 = none).
	TimeLimit time.Duration
	// IntTol is the integrality tolerance (0 = default 1e-6).
	IntTol float64
	// Parallel is the tree-search worker count of backends that support a
	// parallel search (0 = backend default: 1 for "sparse", GOMAXPROCS for
	// "parallel"). The "dense" backend is always sequential.
	Parallel int
	// Cutoff seeds the search with the objective value of a solution known
	// to be achievable (model sense): subtrees that cannot match it are
	// pruned before any incumbent is found. The saturation MILP is seeded
	// with Greedy-k's valid killing-function bound, the reduction MILP with
	// the heuristic reduction's makespan. Nil means no seeding.
	Cutoff *float64
	// ExclusiveCutoff strengthens the seeding: the caller asserts it already
	// HOLDS a solution achieving Cutoff, so the search looks only for
	// strictly better objectives. A solve that exhausts the tree without
	// finding one returns Solution.AtCutoff — proof that the caller's held
	// solution is optimal — without ever materializing an incumbent.
	// Ignored when Cutoff is nil.
	ExclusiveCutoff bool
	// Hints carries model structure the builder already knows (named clique
	// sets over binary variables), so the cut generator never re-derives it
	// from the matrix. Hints are trusted: every hinted inequality must hold
	// for every integer-feasible point of the model (see Hints). Nil means
	// no hints; backends without a cut layer ignore them.
	Hints *Hints
	// DisablePresolve skips the presolve reductions of the sparse engine
	// (the solve semantics are unchanged — presolve+postsolve is invisible
	// to callers — so this exists for differential testing and debugging).
	DisablePresolve bool
	// DisableCuts skips hint-derived cutting planes and clique propagation.
	DisableCuts bool
}

func (o Options) withDefaults() Options {
	if o.Backend == "" {
		o.Backend = DefaultBackend
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

// CutoffAt is a convenience for building Options.Cutoff values.
func CutoffAt(v float64) *float64 { return &v }

// Key renders the solve-determining fields for cache keys.
func (o Options) Key() string {
	o = o.withDefaults()
	cut := "-"
	if o.Cutoff != nil {
		cut = fmt.Sprintf("%g", *o.Cutoff)
		if o.ExclusiveCutoff {
			cut += "!"
		}
	}
	key := fmt.Sprintf("%s|n%d|t%s|i%g|p%d|c%s",
		o.Backend, o.MaxNodes, o.TimeLimit, o.IntTol, o.Parallel, cut)
	// The debug switches are appended only when set so that keys for default
	// options — the ones persisted in result stores — stay stable across
	// releases. Hints are deliberately excluded: they change solve speed,
	// never the answer.
	if o.DisablePresolve {
		key += "|nopre"
	}
	if o.DisableCuts {
		key += "|nocuts"
	}
	return key
}

// Stats reports the work one solve performed. The JSON tags fix the wire
// schema: stats cross process boundaries through the analysis daemon's
// responses and its persistent result store, so the field names below are a
// compatibility surface (Duration serializes as nanoseconds).
type Stats struct {
	// Nodes is the number of branch-and-bound nodes whose relaxation was
	// solved (or dense-fallback subtree solves, counted by their own nodes).
	Nodes int64 `json:"nodes"`
	// SimplexIters is the total simplex iterations across all nodes.
	SimplexIters int64 `json:"simplexIters"`
	// WarmStarts counts node solves reoptimized in place from the parent
	// basis (dives); ColdStarts counts nodes rebuilt from scratch (best-bound
	// queue pops and periodic refactorizations).
	WarmStarts int64 `json:"warmStarts"`
	ColdStarts int64 `json:"coldStarts"`
	// Fallbacks counts subtrees handed to the dense reference engine after
	// numerical trouble.
	Fallbacks int64 `json:"fallbacks"`
	// Incumbents counts incumbent improvements.
	Incumbents int64 `json:"incumbents"`
	// Workers is the tree-search worker count used.
	Workers int `json:"workers"`
	// Duration is the wall time of the solve, in nanoseconds on the wire.
	Duration time.Duration `json:"durationNs"`
	// PresolveRows and PresolveCols count constraints and variables the
	// presolve pass eliminated before the search; PresolveTightenings counts
	// bound and coefficient tightenings it applied. All zero when presolve is
	// disabled or the backend has none.
	PresolveRows        int64 `json:"presolveRows,omitempty"`
	PresolveCols        int64 `json:"presolveCols,omitempty"`
	PresolveTightenings int64 `json:"presolveTightenings,omitempty"`
	// CutsAdded counts hint-derived clique cuts appended during root
	// separation; CutsActive counts those tight at the final incumbent.
	CutsAdded  int64 `json:"cutsAdded,omitempty"`
	CutsActive int64 `json:"cutsActive,omitempty"`
	// BranchProbes counts iteration-capped strong-branching probe solves run
	// to initialize pseudo-costs; ReliableVars counts variables whose
	// pseudo-costs had at least one observation in each direction by the end
	// of the search.
	BranchProbes int64 `json:"branchProbes,omitempty"`
	ReliableVars int64 `json:"reliableVars,omitempty"`
	// BlandIters counts simplex iterations where the anti-cycling Bland rule
	// overrode devex pricing (SimplexIters − BlandIters ran under devex).
	BlandIters int64 `json:"blandIters,omitempty"`
}

// WarmRate is the fraction of node solves served warm from the parent basis.
func (s Stats) WarmRate() float64 {
	total := s.WarmStarts + s.ColdStarts
	if total == 0 {
		return 0
	}
	return float64(s.WarmStarts) / float64(total)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Nodes += other.Nodes
	s.SimplexIters += other.SimplexIters
	s.WarmStarts += other.WarmStarts
	s.ColdStarts += other.ColdStarts
	s.Fallbacks += other.Fallbacks
	s.Incumbents += other.Incumbents
	if other.Workers > s.Workers {
		s.Workers = other.Workers
	}
	s.Duration += other.Duration
	s.PresolveRows += other.PresolveRows
	s.PresolveCols += other.PresolveCols
	s.PresolveTightenings += other.PresolveTightenings
	s.CutsAdded += other.CutsAdded
	s.CutsActive += other.CutsActive
	s.BranchProbes += other.BranchProbes
	s.ReliableVars += other.ReliableVars
	s.BlandIters += other.BlandIters
}

// Solution is the uniform result of a backend solve.
type Solution struct {
	// Status uses the lp package's vocabulary: Optimal, Infeasible,
	// Unbounded, Feasible (limit hit with an incumbent), Limit (limit hit
	// with no incumbent).
	Status lp.Status
	// Obj is the incumbent objective in model sense (valid for Optimal and
	// Feasible).
	Obj float64
	// X is the incumbent assignment, one entry per model variable, integer
	// variables snapped.
	X []float64
	// Bound is the best proven dual bound in model sense: for a capped solve
	// the optimum lies in the interval between Obj and Bound (the analogue
	// of rs.ExactStats.Capped reporting RS as [best found, upper bound]).
	// Equal to Obj when Status is Optimal.
	Bound float64
	// Gap is |Obj − Bound| (0 when optimality was proved).
	Gap float64
	// Capped reports that a node/time/context limit stopped the search.
	Capped bool
	// AtCutoff reports that no solution strictly better than the exclusive
	// Options.Cutoff exists (Status Optimal) or was found before a limit
	// (Status Feasible). Obj then equals the cutoff and X is nil — the
	// caller's own solution achieving the cutoff stands.
	AtCutoff bool
	// Stats is the work accounting of the solve.
	Stats Stats
}

// Value returns the solution value of v.
func (s *Solution) Value(v lp.Var) float64 { return s.X[v] }

// IntValue returns the solution value of v as an int64.
func (s *Solution) IntValue(v lp.Var) int64 { return int64(math.Round(s.X[v])) }

// Feasible reports whether the solution carries a usable assignment.
func (s *Solution) Feasible() bool {
	return s.Status == lp.StatusOptimal || s.Status == lp.StatusFeasible
}

// Backend is one MILP engine. Implementations must be safe for concurrent
// Solve calls on distinct models and must honor context cancellation inside
// an in-flight solve (simplex iterations included), returning the best
// solution found so far together with ctx.Err().
type Backend interface {
	Name() string
	Solve(ctx context.Context, m *lp.Model, opt Options) (*Solution, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register installs a backend under its name, replacing any previous holder.
func Register(b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[b.Name()] = b
}

// Get returns the backend registered under name ("" = DefaultBackend).
func Get(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("solver: unknown backend %q (have %v)", name, namesLocked())
	}
	return b, nil
}

// Names lists the registered backends, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Solve dispatches to the backend selected by opt.Backend. On a traced
// context the solve gets its own span whose event timeline is the search
// telemetry backends emit (presolve reductions, cut rounds, dives,
// incumbents, refactorizations, dense fallbacks) and whose attributes
// summarize the finished solve's Stats — for an untraced context the whole
// layer is nil checks.
func Solve(ctx context.Context, m *lp.Model, opt Options) (*Solution, error) {
	opt = opt.withDefaults()
	b, err := Get(opt.Backend)
	if err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, "solver.solve",
		obs.Str("backend", opt.Backend),
		obs.Int("vars", int64(m.NumVars())),
		obs.Int("constrs", int64(m.NumConstrs())))
	sol, err := b.Solve(ctx, m, opt)
	if sol != nil {
		sp.SetAttr(
			obs.Str("status", sol.Status.String()),
			obs.Bool("capped", sol.Capped),
			obs.Int("nodes", sol.Stats.Nodes),
			obs.Int("simplexIters", sol.Stats.SimplexIters),
			obs.Int("warmStarts", sol.Stats.WarmStarts),
			obs.Int("coldStarts", sol.Stats.ColdStarts),
			obs.Int("incumbents", sol.Stats.Incumbents),
			obs.Int("fallbacks", sol.Stats.Fallbacks),
		)
	}
	if err != nil {
		sp.SetAttr(obs.Str("err", err.Error()))
	}
	sp.End()
	return sol, err
}
