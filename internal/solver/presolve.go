package solver

// Presolve for the sparse engine: a fixpoint of cheap, provably
// equivalence-preserving reductions applied to a private copy of the model
// before branch and bound. The pass never touches the caller's lp.Model —
// it re-emits a reduced model the solver owns (so the cut layer may later
// append rows to it) together with a postsolve map that reconstructs the
// full original solution vector. Callers therefore see unchanged semantics:
// same optimum, same X length, same variable order.
//
// Reductions, iterated to a fixpoint (bounded pass count):
//
//   - activity-based bound propagation with integer rounding;
//   - fixed-variable elimination (lo == hi), substituting into every row and
//     the objective (the fixed objective contribution moves into ObjOffset);
//   - empty-row feasibility checks, singleton rows folded into bounds;
//   - redundant rows (activity bounds already imply the row) dropped;
//   - duplicate rows (identical term vectors and relation) merged, keeping
//     the tightest right-hand side;
//   - coefficient tightening on binary variables in inequality rows
//     (Savelsbergh): if the row's maximum activity u exceeds b but drops to
//     at most b when a binary with coefficient a flips off (u − a ≤ b), the
//     coefficient shrinks to a' = u − b with b' unchanged — the same integer
//     set, a strictly tighter LP relaxation.
//
// Presolve can also prove infeasibility outright (conflicting bounds,
// unsatisfiable empty rows, contradictory duplicate equations).

import (
	"fmt"
	"math"
	"sort"

	"regsat/internal/lp"
)

const (
	presolveMaxPasses = 10
	// presolveFeasTol matches the simplex feasibility tolerance: presolve
	// must not declare infeasible anything the engine would accept.
	presolveFeasTol = spxFeasTol
)

// presolved is the outcome of one presolve run.
type presolved struct {
	m *lp.Model // reduced model, owned by the solver
	// colMap maps original columns to reduced ones, -1 for eliminated
	// columns whose value is in fixed.
	colMap []int
	fixed  []float64
	nOrig  int

	rows        int64 // rows removed
	cols        int64 // columns eliminated
	tightenings int64 // bound + coefficient tightenings
	infeasible  bool
}

// stats renders the pass counters as a Stats fragment.
func (ps *presolved) stats() Stats {
	return Stats{
		PresolveRows:        ps.rows,
		PresolveCols:        ps.cols,
		PresolveTightenings: ps.tightenings,
	}
}

// postsolve lifts a reduced-space assignment back to the original variable
// order, filling eliminated columns with their fixed values.
func (ps *presolved) postsolve(x []float64) []float64 {
	if x == nil {
		return nil
	}
	out := make([]float64, ps.nOrig)
	for j := 0; j < ps.nOrig; j++ {
		if c := ps.colMap[j]; c >= 0 {
			out[j] = x[c]
		} else {
			out[j] = ps.fixed[j]
		}
	}
	return out
}

// prow is presolve's mutable copy of one constraint.
type prow struct {
	terms []lp.Term
	rel   lp.Rel
	rhs   float64
	name  string
	dead  bool
}

// presolve runs the reduction fixpoint over m. With reductions false it
// still produces an owned copy (identity mapping) so downstream stages may
// mutate the result freely.
func presolve(m *lp.Model, intTol float64, reductions bool) *presolved {
	n := m.NumVars()
	ps := &presolved{nOrig: n, colMap: make([]int, n), fixed: make([]float64, n)}

	lo := make([]float64, n)
	hi := make([]float64, n)
	integer := make([]bool, n)
	fixedMask := make([]bool, n)
	for j := 0; j < n; j++ {
		lo[j], hi[j] = m.Bounds(lp.Var(j))
		integer[j] = m.IsInteger(lp.Var(j))
	}
	rows := make([]prow, m.NumConstrs())
	for i := range rows {
		terms, rel, rhs := m.Constr(i)
		cp := make([]lp.Term, len(terms))
		copy(cp, terms)
		rows[i] = prow{terms: cp, rel: rel, rhs: rhs, name: m.ConstrName(i)}
	}

	// roundInt snaps integer bounds to the integer lattice; returns false on
	// an empty domain.
	roundInt := func(j int) bool {
		if integer[j] {
			lo[j] = math.Ceil(lo[j] - intTol)
			hi[j] = math.Floor(hi[j] + intTol)
		}
		return lo[j] <= hi[j]+presolveFeasTol
	}
	// fix eliminates column j at value v.
	fix := func(j int, v float64) {
		if integer[j] {
			v = math.Round(v)
		}
		fixedMask[j] = true
		ps.fixed[j] = v
		lo[j], hi[j] = v, v
		ps.cols++
	}
	if reductions {
		for pass := 0; pass < presolveMaxPasses && !ps.infeasible; pass++ {
			changed := false

			// Substitute fixed columns into every live row.
			for i := range rows {
				r := &rows[i]
				if r.dead {
					continue
				}
				kept := r.terms[:0]
				for _, t := range r.terms {
					if fixedMask[t.Var] {
						r.rhs -= t.Coef * ps.fixed[t.Var]
					} else {
						kept = append(kept, t)
					}
				}
				r.terms = kept
			}

			for i := range rows {
				r := &rows[i]
				if r.dead || ps.infeasible {
					continue
				}

				// Activity bounds of the live terms.
				minAct, maxAct := 0.0, 0.0
				for _, t := range r.terms {
					if t.Coef > 0 {
						minAct += t.Coef * lo[t.Var]
						maxAct += t.Coef * hi[t.Var]
					} else {
						minAct += t.Coef * hi[t.Var]
						maxAct += t.Coef * lo[t.Var]
					}
				}
				tol := presolveFeasTol * (1 + math.Abs(r.rhs))

				// Feasibility and redundancy from activity bounds.
				switch r.rel {
				case lp.LE:
					if minAct > r.rhs+tol {
						ps.infeasible = true
						continue
					}
					if maxAct <= r.rhs+tol {
						r.dead = true
						ps.rows++
						changed = true
						continue
					}
				case lp.GE:
					if maxAct < r.rhs-tol {
						ps.infeasible = true
						continue
					}
					if minAct >= r.rhs-tol {
						r.dead = true
						ps.rows++
						changed = true
						continue
					}
				case lp.EQ:
					if minAct > r.rhs+tol || maxAct < r.rhs-tol {
						ps.infeasible = true
						continue
					}
					if maxAct-minAct <= tol && math.Abs(minAct-r.rhs) <= tol {
						r.dead = true
						ps.rows++
						changed = true
						continue
					}
				}

				// Singleton rows fold into a bound.
				if len(r.terms) == 1 {
					t := r.terms[0]
					j := int(t.Var)
					v := r.rhs / t.Coef
					newLo, newHi := lo[j], hi[j]
					switch {
					case r.rel == lp.EQ:
						newLo, newHi = math.Max(newLo, v), math.Min(newHi, v)
					case (r.rel == lp.LE) == (t.Coef > 0):
						newHi = math.Min(newHi, v)
					default:
						newLo = math.Max(newLo, v)
					}
					if newLo > lo[j]+1e-12 || newHi < hi[j]-1e-12 {
						lo[j], hi[j] = newLo, newHi
						ps.tightenings++
						if !roundInt(j) {
							ps.infeasible = true
							continue
						}
					}
					r.dead = true
					ps.rows++
					changed = true
					continue
				}

				// Bound propagation: each variable against the residual
				// activity of the rest of the row.
				propagate := func(le bool, rhs float64) {
					// le: Σ terms ≤ rhs semantics (GE rows pass the negated
					// view through this same path).
					for _, t := range r.terms {
						j := int(t.Var)
						c := t.Coef
						if !le {
							c = -c
						}
						var restMin float64
						ok := true
						for _, u := range r.terms {
							if u.Var == t.Var {
								continue
							}
							uc := u.Coef
							if !le {
								uc = -uc
							}
							var contrib float64
							if uc > 0 {
								contrib = uc * lo[u.Var]
							} else {
								contrib = uc * hi[u.Var]
							}
							if math.IsInf(contrib, 0) {
								ok = false
								break
							}
							restMin += contrib
						}
						if !ok {
							continue
						}
						limit := (rhs - restMin) / c
						if c > 0 {
							if limit < hi[j]-1e-9 {
								hi[j] = limit
								ps.tightenings++
								changed = true
							}
						} else {
							if limit > lo[j]+1e-9 {
								lo[j] = limit
								ps.tightenings++
								changed = true
							}
						}
						if !roundInt(j) {
							ps.infeasible = true
							return
						}
					}
				}
				switch r.rel {
				case lp.LE:
					propagate(true, r.rhs)
				case lp.GE:
					propagate(false, -r.rhs)
				case lp.EQ:
					propagate(true, r.rhs)
					if !ps.infeasible {
						propagate(false, -r.rhs)
					}
				}
				if ps.infeasible {
					continue
				}

				// Coefficient tightening for binaries in inequality rows.
				if r.rel != lp.EQ {
					le := r.rel == lp.LE
					// Recompute the ≤-view maximum activity after the bound
					// updates above.
					u := 0.0
					finite := true
					for _, t := range r.terms {
						c := t.Coef
						if !le {
							c = -c
						}
						var contrib float64
						if c > 0 {
							contrib = c * hi[t.Var]
						} else {
							contrib = c * lo[t.Var]
						}
						if math.IsInf(contrib, 0) {
							finite = false
							break
						}
						u += contrib
					}
					b := r.rhs
					if !le {
						b = -b
					}
					if finite && u > b+tol {
						for k := range r.terms {
							t := &r.terms[k]
							j := int(t.Var)
							if !integer[j] || lo[j] != 0 || hi[j] != 1 {
								continue
							}
							a := t.Coef
							if !le {
								a = -a
							}
							if a > 0 && u-a <= b+tol && u-b < a-1e-9 {
								// a' = u − b with b' = b − (a − a') keeps the
								// integer set (x=1 still forces rest ≤ b − a;
								// x=0 allows rest up to its own max activity)
								// while cutting fractional points. Both the
								// max activity and the rhs drop by a − a',
								// so u − b is invariant and further binaries
								// of the row tighten against the new pair.
								na := u - b
								if na < 1e-9 {
									na = 0
								}
								if le {
									t.Coef = na
								} else {
									t.Coef = -na
								}
								b -= a - na
								if le {
									r.rhs = b
								} else {
									r.rhs = -b
								}
								u -= a - na
								ps.tightenings++
								changed = true
							}
						}
						// Dropped-to-zero coefficients leave the row.
						kept := r.terms[:0]
						for _, t := range r.terms {
							if t.Coef != 0 {
								kept = append(kept, t)
							}
						}
						r.terms = kept
					}
				}
			}
			if ps.infeasible {
				break
			}

			// Newly fixed columns (bounds collapsed by propagation).
			for j := 0; j < n; j++ {
				if fixedMask[j] {
					continue
				}
				if integer[j] {
					if !roundInt(j) {
						ps.infeasible = true
						break
					}
					if lo[j] >= hi[j]-intTol {
						fix(j, lo[j])
						changed = true
					}
				} else if hi[j]-lo[j] <= 1e-12 {
					fix(j, (lo[j]+hi[j])/2)
					changed = true
				}
			}
			if ps.infeasible {
				break
			}

			// Duplicate rows: identical live term vectors and relation keep
			// only the tightest right-hand side.
			seen := make(map[string]int)
			for i := range rows {
				r := &rows[i]
				if r.dead || len(r.terms) == 0 {
					continue
				}
				key := rowKey(r)
				if prev, ok := seen[key]; ok {
					p := &rows[prev]
					switch r.rel {
					case lp.LE:
						p.rhs = math.Min(p.rhs, r.rhs)
					case lp.GE:
						p.rhs = math.Max(p.rhs, r.rhs)
					case lp.EQ:
						if math.Abs(p.rhs-r.rhs) > presolveFeasTol*(1+math.Abs(p.rhs)) {
							ps.infeasible = true
						}
					}
					r.dead = true
					ps.rows++
					changed = true
					continue
				}
				seen[key] = i
			}

			if !changed {
				break
			}
		}
	}

	if ps.infeasible {
		return ps
	}

	// Re-emit the reduced model.
	red := lp.NewModel(m.Name(), m.Sense())
	off := m.ObjOffset()
	for j := 0; j < n; j++ {
		if fixedMask[j] {
			ps.colMap[j] = -1
			off += m.ObjCoef(lp.Var(j)) * ps.fixed[j]
			continue
		}
		ps.colMap[j] = int(red.NewVar(lo[j], hi[j], integer[j], m.VarName(lp.Var(j))))
	}
	red.SetObjOffset(off)
	for j := 0; j < n; j++ {
		if c := ps.colMap[j]; c >= 0 {
			if cf := m.ObjCoef(lp.Var(j)); cf != 0 {
				red.SetObjCoef(lp.Var(c), cf)
			}
		}
	}
	for i := range rows {
		r := &rows[i]
		if r.dead {
			continue
		}
		terms := make([]lp.Term, 0, len(r.terms))
		for _, t := range r.terms {
			if fixedMask[t.Var] {
				// A column fixed after the last substitution sweep.
				r.rhs -= t.Coef * ps.fixed[t.Var]
				continue
			}
			terms = append(terms, lp.Term{Var: lp.Var(ps.colMap[t.Var]), Coef: t.Coef})
		}
		red.AddConstr(terms, r.rel, r.rhs, r.name)
	}
	ps.m = red
	return ps
}

// rowKey canonicalizes a row's live terms and relation for duplicate
// detection. Terms are already in ascending variable order (lp.AddConstr
// compacts them that way) but presolve's in-place filtering preserves any
// order, so sort defensively.
func rowKey(r *prow) string {
	terms := r.terms
	if !sort.SliceIsSorted(terms, func(a, b int) bool { return terms[a].Var < terms[b].Var }) {
		cp := make([]lp.Term, len(terms))
		copy(cp, terms)
		sort.Slice(cp, func(a, b int) bool { return cp[a].Var < cp[b].Var })
		terms = cp
	}
	key := make([]byte, 0, len(terms)*12+4)
	key = append(key, byte(r.rel), ':')
	for _, t := range terms {
		key = fmt.Appendf(key, "%d:%x,", t.Var, math.Float64bits(t.Coef))
	}
	return string(key)
}
