package solver

// Hint-driven cutting planes. Model builders (internal/rs, internal/reduce)
// know graph structure the matrix obscures — cliques of values that can
// never be simultaneously live, or that interfere in every schedule. They
// pass that structure down as Options.Hints; the cut layer turns it into
// clique inequalities Σ_{v∈C} x_v ≤ rhs, separates the violated ones at the
// root, and uses the same cliques for domain propagation at tree nodes. The
// generator never re-derives graph structure from the matrix.
//
// Hints are trusted valid: the builder asserts every hinted inequality
// holds for every integer-feasible point of the model it built. The layer
// still defends cheaply — non-binary variables disqualify a clique, and
// fixed variables are folded through the presolve column map.

import (
	"fmt"
	"math"
	"sort"

	"regsat/internal/lp"
)

// Clique is one hinted set-packing inequality: at most RHS of the listed
// binary variables may be 1 in any integer-feasible solution.
type Clique struct {
	Name string
	Vars []lp.Var
	RHS  int
}

// Hints carries builder-derived model structure into the solver.
type Hints struct {
	Cliques []Clique
}

const (
	cutMaxRounds  = 8
	cutMaxAdded   = 500
	cutMinViol    = 1e-4
	cutIntegerTol = 1e-6
)

// cutClique is a clique remapped into reduced (post-presolve) column space.
type cutClique struct {
	name string
	cols []int // reduced column indices, ascending
	rhs  float64
	row  int // row index in the reduced model once added, -1 otherwise
}

// remapCliques folds the hinted cliques through the presolve column map:
// variables fixed at 1 consume right-hand side, variables fixed at 0 drop
// out. Cliques that become trivial (fewer than two free members, or slack
// right-hand side covering all members) are discarded; a clique whose
// right-hand side goes negative proves infeasibility (the builder fixed
// more ones than the clique admits — presolve found a contradiction).
// The result is deterministically ordered.
func remapCliques(h *Hints, ps *presolved) (cliques []*cutClique, infeasible bool) {
	if h == nil {
		return nil, false
	}
	seen := make(map[string]bool, len(h.Cliques))
	for _, c := range h.Cliques {
		rhs := float64(c.RHS)
		cols := make([]int, 0, len(c.Vars))
		ok := true
		for _, v := range c.Vars {
			if int(v) < 0 || int(v) >= ps.nOrig {
				ok = false
				break
			}
			rc := ps.colMap[v]
			if rc < 0 {
				rhs -= ps.fixed[v]
				continue
			}
			if lo, hi := ps.m.Bounds(lp.Var(rc)); !ps.m.IsInteger(lp.Var(rc)) || lo < 0 || hi > 1 {
				ok = false
				break
			}
			cols = append(cols, rc)
		}
		if !ok {
			continue
		}
		if rhs < -cutIntegerTol {
			return nil, true
		}
		if len(cols) < 2 || float64(len(cols)) <= rhs+cutIntegerTol {
			continue
		}
		sort.Ints(cols)
		key := fmt.Sprintf("%v|%g", cols, rhs)
		if seen[key] {
			continue
		}
		seen[key] = true
		cliques = append(cliques, &cutClique{name: c.Name, cols: cols, rhs: math.Round(rhs), row: -1})
	}
	sort.SliceStable(cliques, func(a, b int) bool {
		ca, cb := cliques[a], cliques[b]
		for i := 0; i < len(ca.cols) && i < len(cb.cols); i++ {
			if ca.cols[i] != cb.cols[i] {
				return ca.cols[i] < cb.cols[i]
			}
		}
		return len(ca.cols) < len(cb.cols)
	})
	return cliques, false
}

// separateRoot solves the root LP relaxation of rm repeatedly, appending the
// hinted cliques the fractional point violates, until no violation remains
// or a round/cut cap is hit. rm is solver-owned (presolve always re-emits),
// so appending rows is safe. Returns the number of cuts added.
func separateRoot(rm *lp.Model, cliques []*cutClique, cancelled func() bool) (added int64) {
	if len(cliques) == 0 {
		return 0
	}
	for round := 0; round < cutMaxRounds; round++ {
		if cancelled != nil && cancelled() {
			return added
		}
		p, err := buildProb(rm)
		if err != nil {
			return added
		}
		w := newSpx(p)
		w.cancel = cancelled
		w.reset(p.rootLo, p.rootHi)
		if st := w.dual(math.Inf(1)); st != spxOptimal {
			return added
		}
		x := w.solution()
		any := false
		for _, c := range cliques {
			if c.row >= 0 {
				continue
			}
			act := 0.0
			for _, j := range c.cols {
				act += x[j]
			}
			if act > c.rhs+cutMinViol {
				terms := make([]lp.Term, len(c.cols))
				for i, j := range c.cols {
					terms[i] = lp.Term{Var: lp.Var(j), Coef: 1}
				}
				c.row = rm.AddConstr(terms, lp.LE, c.rhs, c.name)
				added++
				any = true
				if added >= cutMaxAdded {
					return added
				}
			}
		}
		if !any {
			return added
		}
	}
	return added
}

// activeCuts counts the added cuts tight at x (a reduced-space incumbent).
func activeCuts(cliques []*cutClique, x []float64) int64 {
	if x == nil {
		return 0
	}
	var n int64
	for _, c := range cliques {
		if c.row < 0 {
			continue
		}
		act := 0.0
		for _, j := range c.cols {
			act += x[j]
		}
		if act >= c.rhs-cutIntegerTol {
			n++
		}
	}
	return n
}

// cliqueIndex maps each reduced column to the cliques containing it, for
// node-level domain propagation: once the variables fixed to 1 in a clique
// reach its right-hand side, every other member must be 0.
type cliqueIndex struct {
	byCol map[int][]*cutClique
}

func buildCliqueIndex(cliques []*cutClique) *cliqueIndex {
	if len(cliques) == 0 {
		return nil
	}
	ix := &cliqueIndex{byCol: make(map[int][]*cutClique)}
	for _, c := range cliques {
		for _, j := range c.cols {
			ix.byCol[j] = append(ix.byCol[j], c)
		}
	}
	return ix
}
