package solver

import (
	"errors"
	"math"

	"regsat/internal/lp"
)

// The sparse backend's LP core is a bounded-variable dual simplex over a
// maintained tableau. The key property it exploits: branching only changes
// variable BOUNDS, never the matrix, so a basis that is optimal for a parent
// node stays dual feasible for its children — reoptimizing a child is a few
// dual pivots from the parent's final basis instead of a two-phase solve
// from scratch. A cold start is always available because, with every
// structural variable finitely bounded (guaranteed by the paper's schedule
// horizon T), the all-slack basis can be made dual feasible by placing each
// nonbasic column on the bound matching its reduced-cost sign — no phase 1,
// no artificial variables, ever.

type spxStatus int

const (
	spxOptimal    spxStatus = iota
	spxInfeasible           // primal infeasible, proved by the dual ray
	spxCutoff               // objective passed the prune target (early exit)
	spxIterLimit            // iteration cap hit (numerical trouble)
	spxCanceled             // context cancelled mid-solve
)

const (
	spxPivTol   = 1e-9
	spxFeasTol  = 1e-7
	spxDualTol  = 1e-7
	spxBlandCut = 5000  // iterations before the anti-cycling rule kicks in
	spxIterCap  = 50000 // hard per-node iteration limit
	refactorCut = 512   // pivots in one tableau before a fresh rebuild
)

const (
	spAtLower int8 = iota
	spAtUpper
	spBasic
)

// errDense marks models the sparse engine does not handle (a variable whose
// dual-feasible starting bound would be infinite); the backend then delegates
// the whole model to the dense reference engine.
var errDense = errors.New("solver: model needs the dense engine")

// prob is the immutable sparse form of one lp.Model, shared by every worker
// of a solve: CSR constraint rows over the structural columns, internal
// minimization costs, slack bounds per row, and root variable bounds.
type prob struct {
	model *lp.Model
	n     int // structural columns
	m     int // rows
	N     int // n + m total columns (slack j of row i is n+i)

	rowPtr []int32
	rowCol []int32
	rowVal []float64
	rhs    []float64
	rel    []lp.Rel

	cost             []float64 // length n, internal minimize sense
	rootLo, rootHi   []float64 // length n
	integer          []bool    // length n
	slackLo, slackHi []float64 // length m
	intObj           bool      // objective integral over integer variables
}

func buildProb(m *lp.Model) (*prob, error) {
	p := &prob{
		model: m,
		n:     m.NumVars(),
		m:     m.NumConstrs(),
	}
	p.N = p.n + p.m
	p.rowPtr = make([]int32, p.m+1)
	p.rhs = make([]float64, p.m)
	p.rel = make([]lp.Rel, p.m)
	p.slackLo = make([]float64, p.m)
	p.slackHi = make([]float64, p.m)
	nnz := 0
	for i := 0; i < p.m; i++ {
		terms, _, _ := m.Constr(i)
		nnz += len(terms)
	}
	p.rowCol = make([]int32, 0, nnz)
	p.rowVal = make([]float64, 0, nnz)
	for i := 0; i < p.m; i++ {
		terms, rel, rhs := m.Constr(i)
		for _, t := range terms {
			p.rowCol = append(p.rowCol, int32(t.Var))
			p.rowVal = append(p.rowVal, t.Coef)
		}
		p.rowPtr[i+1] = int32(len(p.rowCol))
		p.rhs[i] = rhs
		p.rel[i] = rel
		switch rel {
		case lp.LE:
			p.slackLo[i], p.slackHi[i] = 0, math.Inf(1)
		case lp.GE:
			p.slackLo[i], p.slackHi[i] = math.Inf(-1), 0
		default: // EQ
			p.slackLo[i], p.slackHi[i] = 0, 0
		}
	}
	p.cost = make([]float64, p.n)
	p.rootLo = make([]float64, p.n)
	p.rootHi = make([]float64, p.n)
	p.integer = make([]bool, p.n)
	maximize := m.Sense() == lp.Maximize
	p.intObj = true
	for j := 0; j < p.n; j++ {
		c := m.ObjCoef(lp.Var(j))
		if maximize {
			c = -c
		}
		p.cost[j] = c
		p.rootLo[j], p.rootHi[j] = m.Bounds(lp.Var(j))
		p.integer[j] = m.IsInteger(lp.Var(j))
		if c != 0 && (!p.integer[j] || c != math.Trunc(c)) {
			p.intObj = false
		}
		// A dual-feasible cold start needs a finite bound on the side the
		// reduced-cost sign demands.
		switch {
		case c > spxDualTol && math.IsInf(p.rootLo[j], 0):
			return nil, errDense
		case c < -spxDualTol && math.IsInf(p.rootHi[j], 0):
			return nil, errDense
		case math.IsInf(p.rootLo[j], 0) && math.IsInf(p.rootHi[j], 0):
			return nil, errDense
		}
	}
	return p, nil
}

// internalObj converts a model-sense objective value to the internal
// minimization sense (and back — the map is an involution up to the offset).
func (p *prob) internalObj(ext float64) float64 {
	if p.model.Sense() == lp.Maximize {
		return -(ext - p.model.ObjOffset())
	}
	return ext - p.model.ObjOffset()
}

// externalObj converts an internal minimization value to model sense.
func (p *prob) externalObj(internal float64) float64 {
	if p.model.Sense() == lp.Maximize {
		return -internal + p.model.ObjOffset()
	}
	return internal + p.model.ObjOffset()
}

// spx is one worker's reusable dual-simplex state. All slices are sized once
// and reused across node solves, so a dive allocates nothing.
type spx struct {
	p      *prob
	stride int // N+1: tableau row length, rhs in the last column

	tab    []float64 // m × stride, row-major
	lo, hi []float64 // length N (structural then slack)
	basis  []int32   // length m: column basic in each row
	rowOf  []int32   // length N: row a column is basic in, −1 if nonbasic
	status []int8    // length N
	xval   []float64 // length N: value of each nonbasic column
	xB     []float64 // length m: value of the basic column of each row
	d      []float64 // length N: reduced costs

	// dweight holds the devex reference weights, one per row. The reference
	// framework is reset to all-ones on every tableau rebuild (reset), so a
	// refactorization doubles as the periodic devex reference reset.
	dweight []float64

	iters      int64 // simplex iterations since the last flush
	blandIters int64 // iterations under the anti-cycling Bland override
	pivots     int   // pivots since the last rebuild (refactorization trigger)
	iterLimit  int   // per-call iteration cap when > 0 (probe solves); else spxIterCap
	cancel     func() bool
}

func newSpx(p *prob) *spx {
	s := &spx{p: p, stride: p.N + 1}
	s.tab = make([]float64, p.m*s.stride)
	s.lo = make([]float64, p.N)
	s.hi = make([]float64, p.N)
	s.basis = make([]int32, p.m)
	s.rowOf = make([]int32, p.N)
	s.status = make([]int8, p.N)
	s.xval = make([]float64, p.N)
	s.xB = make([]float64, p.m)
	s.d = make([]float64, p.N)
	s.dweight = make([]float64, p.m)
	return s
}

// copyFrom makes s an exact clone of src (same prob), for iteration-capped
// probe solves that must not disturb the worker's live basis.
func (s *spx) copyFrom(src *spx) {
	copy(s.tab, src.tab)
	copy(s.lo, src.lo)
	copy(s.hi, src.hi)
	copy(s.basis, src.basis)
	copy(s.rowOf, src.rowOf)
	copy(s.status, src.status)
	copy(s.xval, src.xval)
	copy(s.xB, src.xB)
	copy(s.d, src.d)
	copy(s.dweight, src.dweight)
	s.pivots = src.pivots
}

// solution extracts the structural solution into a fresh slice.
func (s *spx) solution() []float64 {
	x := make([]float64, s.p.n)
	s.extract(x)
	return x
}

func (s *spx) row(i int) []float64 { return s.tab[i*s.stride : (i+1)*s.stride] }

// reset rebuilds the tableau from the sparse matrix under the given
// structural bounds and installs the dual-feasible all-slack basis.
func (s *spx) reset(lo, hi []float64) {
	p := s.p
	copy(s.lo[:p.n], lo)
	copy(s.hi[:p.n], hi)
	copy(s.lo[p.n:], p.slackLo)
	copy(s.hi[p.n:], p.slackHi)
	for i := range s.tab {
		s.tab[i] = 0
	}
	for i := 0; i < p.m; i++ {
		r := s.row(i)
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			r[p.rowCol[k]] = p.rowVal[k]
		}
		r[p.n+i] = 1
		r[p.N] = p.rhs[i]
		s.basis[i] = int32(p.n + i)
		s.xB[i] = p.rhs[i]
	}
	for j := 0; j < p.N; j++ {
		s.rowOf[j] = -1
	}
	for i := 0; i < p.m; i++ {
		s.rowOf[p.n+i] = int32(i)
		s.status[p.n+i] = spBasic
		s.xval[p.n+i] = 0
	}
	// Nonbasic structural columns start on the bound their reduced-cost sign
	// demands (cost > 0 → lower, cost < 0 → upper); zero-cost columns take
	// the finite bound nearest zero. buildProb guarantees the needed side is
	// finite.
	for j := 0; j < p.n; j++ {
		c := p.cost[j]
		s.d[j] = c
		switch {
		case c > spxDualTol:
			s.status[j], s.xval[j] = spAtLower, s.lo[j]
		case c < -spxDualTol:
			s.status[j], s.xval[j] = spAtUpper, s.hi[j]
		case math.IsInf(s.lo[j], 0):
			s.status[j], s.xval[j] = spAtUpper, s.hi[j]
		case math.IsInf(s.hi[j], 0) || math.Abs(s.lo[j]) <= math.Abs(s.hi[j]):
			s.status[j], s.xval[j] = spAtLower, s.lo[j]
		default:
			s.status[j], s.xval[j] = spAtUpper, s.hi[j]
		}
	}
	for i := p.n; i < p.N; i++ {
		s.d[i] = 0
	}
	// xB[i] = rhs_i − Σ_j a_ij·xval[j] for the nonbasic (structural) columns.
	for i := 0; i < p.m; i++ {
		v := p.rhs[i]
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			if x := s.xval[p.rowCol[k]]; x != 0 {
				v -= p.rowVal[k] * x
			}
		}
		s.xB[i] = v
	}
	for i := range s.dweight {
		s.dweight[i] = 1
	}
	s.pivots = 0
}

// applyBound tightens structural column j to [lo, hi] in place, keeping the
// current basis. If j is nonbasic its value is clamped (propagating the step
// into the basic values); if basic, the violation is left for the next dual
// reoptimization to repair.
func (s *spx) applyBound(j int, lo, hi float64) {
	s.lo[j], s.hi[j] = lo, hi
	if s.status[j] == spBasic {
		return
	}
	v := s.xval[j]
	nv := math.Min(math.Max(v, lo), hi)
	if nv == v {
		return
	}
	delta := nv - v
	for i := 0; i < s.p.m; i++ {
		if a := s.tab[i*s.stride+j]; a != 0 {
			s.xB[i] -= a * delta
		}
	}
	s.xval[j] = nv
}

// value returns the current value of column j.
func (s *spx) value(j int) float64 {
	if s.status[j] == spBasic {
		return s.xB[s.rowOf[j]]
	}
	return s.xval[j]
}

// obj returns the current objective in internal minimize sense. In dual
// simplex this value is a monotonically non-decreasing lower bound on the
// node's LP optimum, which makes it usable for early bound-based cutoff.
func (s *spx) obj() float64 {
	v := 0.0
	for j := 0; j < s.p.n; j++ {
		if c := s.p.cost[j]; c != 0 {
			v += c * s.value(j)
		}
	}
	return v
}

// extract writes the structural solution into x.
func (s *spx) extract(x []float64) {
	for j := 0; j < s.p.n; j++ {
		x[j] = s.value(j)
	}
}

// dual reoptimizes the current (dual-feasible) basis with the bounded-
// variable dual simplex. It stops early with spxCutoff as soon as the
// objective proves the node cannot beat pruneTarget (internal minimize
// sense; +inf disables the check).
func (s *spx) dual(pruneTarget float64) spxStatus {
	p := s.p
	iterCap := spxIterCap
	if s.iterLimit > 0 && s.iterLimit < iterCap {
		iterCap = s.iterLimit
	}
	for iter := 0; ; iter++ {
		s.iters++
		if iter > iterCap {
			return spxIterLimit
		}
		if iter%64 == 0 {
			if s.cancel != nil && s.cancel() {
				return spxCanceled
			}
			if !math.IsInf(pruneTarget, 1) && s.obj() > pruneTarget {
				return spxCutoff
			}
		}
		bland := iter > spxBlandCut
		if bland {
			s.blandIters++
		}

		// Leaving row: devex pricing — maximize squared violation over the
		// row's reference weight — or the violated row with the smallest
		// basic column under the anti-cycling rule.
		r, tooLow := -1, false
		best := 0.0
		for i := 0; i < p.m; i++ {
			b := s.basis[i]
			v := s.xB[i]
			var viol float64
			var low bool
			if lim := s.lo[b]; v < lim-spxFeasTol {
				viol, low = lim-v, true
			} else if lim := s.hi[b]; v > lim+spxFeasTol {
				viol, low = v-lim, false
			} else {
				continue
			}
			if bland {
				if r < 0 || b < s.basis[r] {
					r, tooLow = i, low
				}
			} else if score := viol * viol / s.dweight[i]; score > best {
				r, tooLow, best = i, low, score
			}
		}
		if r < 0 {
			return spxOptimal
		}
		b := s.basis[r]
		row := s.row(r)

		// Dual ratio test over the eligible nonbasic columns: entering q
		// minimizes |d_q|/|α_rq| so every reduced cost keeps its sign.
		q := -1
		bestRatio, bestAbs := math.Inf(1), 0.0
		for j := 0; j < p.N; j++ {
			st := s.status[j]
			if st == spBasic || s.lo[j] == s.hi[j] {
				continue
			}
			a := row[j]
			if a > -spxPivTol && a < spxPivTol {
				continue
			}
			var ok bool
			if tooLow {
				ok = (st == spAtLower && a < 0) || (st == spAtUpper && a > 0)
			} else {
				ok = (st == spAtLower && a > 0) || (st == spAtUpper && a < 0)
			}
			if !ok {
				continue
			}
			abs := math.Abs(a)
			ratio := math.Abs(s.d[j]) / abs
			if bland {
				if ratio < bestRatio-1e-12 || (ratio < bestRatio+1e-12 && (q < 0 || j < q)) {
					q, bestRatio = j, math.Min(ratio, bestRatio)
				}
			} else if ratio < bestRatio-1e-12 || (ratio < bestRatio+1e-12 && abs > bestAbs) {
				q, bestRatio, bestAbs = j, math.Min(ratio, bestRatio), abs
			}
		}
		if q < 0 {
			// Row r cannot reach its bound: primal infeasible.
			return spxInfeasible
		}

		// Step: move x_q so the leaving column lands exactly on its violated
		// bound, updating every basic value.
		target := s.hi[b]
		if tooLow {
			target = s.lo[b]
		}
		arq := row[q]
		t := (s.xB[r] - target) / arq
		for i := 0; i < p.m; i++ {
			if i == r {
				continue
			}
			if a := s.tab[i*s.stride+q]; a != 0 {
				s.xB[i] -= a * t
			}
		}
		newQ := s.xval[q] + t

		// Basis exchange bookkeeping.
		if tooLow {
			s.status[b] = spAtLower
		} else {
			s.status[b] = spAtUpper
		}
		s.xval[b] = target
		s.rowOf[b] = -1
		s.basis[r] = int32(q)
		s.rowOf[q] = int32(r)
		s.status[q] = spBasic
		s.xB[r] = newQ

		// Pivot the tableau (rhs column included) and the reduced costs,
		// propagating the devex reference weights: with pivot α_rq and
		// entering multipliers α_iq, γ_i ← max(γ_i, (α_iq/α_rq)²·γ_r) and
		// γ_r ← max(γ_r/α_rq², 1).
		inv := 1.0 / arq
		gr := s.dweight[r]
		wmax := 0.0
		for j := 0; j <= p.N; j++ {
			row[j] *= inv
		}
		for i := 0; i < p.m; i++ {
			if i == r {
				continue
			}
			ri := s.row(i)
			f := ri[q]
			if f == 0 {
				continue
			}
			for j := 0; j <= p.N; j++ {
				if row[j] != 0 {
					ri[j] -= f * row[j]
				}
			}
			ri[q] = 0
			m := f * inv
			if w := m * m * gr; w > s.dweight[i] {
				s.dweight[i] = w
			}
			if s.dweight[i] > wmax {
				wmax = s.dweight[i]
			}
		}
		s.dweight[r] = math.Max(gr*inv*inv, 1)
		if wmax > 1e12 || s.dweight[r] > 1e12 {
			// Drifted reference framework: reset early rather than price on
			// meaningless weights.
			for i := range s.dweight {
				s.dweight[i] = 1
			}
		}
		if f := s.d[q]; f != 0 {
			for j := 0; j < p.N; j++ {
				if row[j] != 0 {
					s.d[j] -= f * row[j]
				}
			}
			s.d[q] = 0
		}
		s.pivots++
	}
}

// verify checks x against the original sparse rows (the maintained tableau
// drifts; the CSR matrix does not).
func (s *spx) verify(x []float64) bool {
	p := s.p
	for i := 0; i < p.m; i++ {
		v := 0.0
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			v += p.rowVal[k] * x[p.rowCol[k]]
		}
		tol := 1e-6 * (1 + math.Abs(p.rhs[i]))
		switch p.rel[i] {
		case lp.LE:
			if v > p.rhs[i]+tol {
				return false
			}
		case lp.GE:
			if v < p.rhs[i]-tol {
				return false
			}
		default:
			if math.Abs(v-p.rhs[i]) > tol {
				return false
			}
		}
	}
	return true
}
