package solver

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"regsat/internal/lp"
)

func solveWith(t *testing.T, backend string, m *lp.Model, opt Options) *Solution {
	t.Helper()
	opt.Backend = backend
	sol, err := Solve(context.Background(), m, opt)
	if err != nil {
		t.Fatalf("%s: %v", backend, err)
	}
	return sol
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := map[string]bool{"dense": false, "sparse": false, "parallel": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("backend %q not registered (have %v)", n, names)
		}
	}
	if _, err := Get("no-such-backend"); err == nil {
		t.Error("Get of unknown backend did not fail")
	}
}

func knapsack() *lp.Model {
	m := lp.NewModel("knap", lp.Maximize)
	w := []float64{2, 3, 4, 5, 9}
	v := []float64{3, 4, 5, 8, 10}
	var terms []lp.Term
	for i := range w {
		x := m.NewBinary("x")
		m.SetObjCoef(x, v[i])
		terms = append(terms, lp.Term{Var: x, Coef: w[i]})
	}
	m.AddConstr(terms, lp.LE, 13, "cap")
	return m
}

func TestKnapsackAllBackends(t *testing.T) {
	// The dense engine provides the reference optimum.
	m := knapsack()
	ref := solveWith(t, "dense", m, Options{})
	if ref.Status != lp.StatusOptimal {
		t.Fatalf("dense: status %v", ref.Status)
	}
	for _, b := range []string{"sparse", "parallel"} {
		m2 := knapsack()
		sol := solveWith(t, b, m2, Options{Parallel: 4})
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("%s: status %v", b, sol.Status)
		}
		if math.Abs(sol.Obj-ref.Obj) > 1e-6 {
			t.Fatalf("%s: obj %g, dense %g", b, sol.Obj, ref.Obj)
		}
		if sol.Gap != 0 || sol.Bound != sol.Obj {
			t.Fatalf("%s: optimal solve reported bound %g gap %g", b, sol.Bound, sol.Gap)
		}
	}
}

// randomMILP builds a small random pure-integer program (the same family the
// lp package cross-validates against brute force).
func randomMILP(rng *rand.Rand) *lp.Model {
	nv := 2 + rng.Intn(4)
	nc := 1 + rng.Intn(4)
	sense := lp.Minimize
	if rng.Intn(2) == 0 {
		sense = lp.Maximize
	}
	m := lp.NewModel("rand", sense)
	for i := 0; i < nv; i++ {
		m.SetObjCoef(m.NewVar(0, float64(1+rng.Intn(3)), true, "v"), float64(rng.Intn(11)-5))
	}
	for c := 0; c < nc; c++ {
		var terms []lp.Term
		for i := 0; i < nv; i++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, lp.Term{Var: lp.Var(i), Coef: float64(rng.Intn(7) - 3)})
			}
		}
		if len(terms) == 0 {
			continue
		}
		rel := []lp.Rel{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
		m.AddConstr(terms, rel, float64(rng.Intn(9)-2), "c")
	}
	return m
}

// TestBackendsAgreeRandom cross-validates the sparse engine (sequential and
// parallel) against the dense reference on hundreds of random integer
// programs, including infeasible ones.
func TestBackendsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2004))
	trials := 400
	if testing.Short() {
		trials = 120
	}
	for trial := 0; trial < trials; trial++ {
		m := randomMILP(rng)
		ref := solveWith(t, "dense", m, Options{})
		for _, b := range []string{"sparse", "parallel"} {
			sol := solveWith(t, b, m, Options{Parallel: 3})
			if sol.Status != ref.Status {
				t.Fatalf("trial %d: %s status %v, dense %v\n%s",
					trial, b, sol.Status, ref.Status, m.String())
			}
			if ref.Status == lp.StatusOptimal && math.Abs(sol.Obj-ref.Obj) > 1e-6 {
				t.Fatalf("trial %d: %s obj %g, dense %g\n%s",
					trial, b, sol.Obj, ref.Obj, m.String())
			}
		}
	}
}

// TestMixedIntegerContinuous checks the sparse engine on a model with a
// continuous variable (only the integer one is branched).
func TestMixedIntegerContinuous(t *testing.T) {
	for _, b := range Names() {
		m := lp.NewModel("mix", lp.Maximize)
		x := m.NewVar(0, 10, true, "x")
		y := m.NewVar(0, 10, false, "y")
		m.SetObjCoef(x, 2)
		m.SetObjCoef(y, 3)
		m.AddConstr([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}, lp.LE, 7.5, "c")
		sol := solveWith(t, b, m, Options{})
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("%s: status %v", b, sol.Status)
		}
		// x integer, y continuous: best is x=7, y=0.25 → 14.75.
		if math.Abs(sol.Obj-14.75) > 1e-6 {
			t.Fatalf("%s: obj %g, want 14.75", b, sol.Obj)
		}
	}
}

// TestCutoffSeeding verifies that seeding with an achievable objective keeps
// the solve exact while pruning the tree.
func TestCutoffSeeding(t *testing.T) {
	base := knapsack()
	ref := solveWith(t, "dense", base, Options{})
	m := knapsack()
	sol := solveWith(t, "sparse", m, Options{Cutoff: CutoffAt(ref.Obj)})
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Obj-ref.Obj) > 1e-6 {
		t.Fatalf("seeded at the optimum: status %v obj %g, want optimal %g", sol.Status, sol.Obj, ref.Obj)
	}
	m2 := knapsack()
	sol2 := solveWith(t, "sparse", m2, Options{Cutoff: CutoffAt(ref.Obj - 3)})
	if sol2.Status != lp.StatusOptimal || math.Abs(sol2.Obj-ref.Obj) > 1e-6 {
		t.Fatalf("seeded below the optimum: status %v obj %g, want optimal %g", sol2.Status, sol2.Obj, ref.Obj)
	}
}

// TestNodeLimitReportsInterval: a capped solve reports the incumbent and the
// dual bound bracketing the true optimum (satellite: capped solves surface
// the interval like rs.ExactStats.Capped).
func TestNodeLimitReportsInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, b := range []string{"dense", "sparse"} {
		m := lp.NewModel("cap", lp.Maximize)
		var terms []lp.Term
		for i := 0; i < 18; i++ {
			x := m.NewBinary("x")
			m.SetObjCoef(x, float64(1+rng.Intn(9)))
			terms = append(terms, lp.Term{Var: x, Coef: float64(2 + rng.Intn(5))})
		}
		m.AddConstr(terms, lp.LE, 23, "cap")
		sol := solveWith(t, b, m, Options{MaxNodes: 3})
		if sol.Status == lp.StatusOptimal || sol.Status == lp.StatusInfeasible {
			continue // tiny model solved within the cap on this backend
		}
		if !sol.Capped {
			t.Fatalf("%s: limit solve not marked capped (status %v)", b, sol.Status)
		}
		if sol.Status == lp.StatusFeasible {
			if sol.Bound < sol.Obj-1e-9 {
				t.Fatalf("%s: maximize bound %g below incumbent %g", b, sol.Bound, sol.Obj)
			}
			if math.Abs(sol.Gap-(sol.Bound-sol.Obj)) > 1e-9 {
				t.Fatalf("%s: gap %g inconsistent with [%g, %g]", b, sol.Gap, sol.Obj, sol.Bound)
			}
		}
	}
}

// TestContextCancellation: cancelling the context interrupts an in-flight
// solve promptly and surfaces the context error.
func TestContextCancellation(t *testing.T) {
	for _, b := range []string{"dense", "sparse", "parallel"} {
		rng := rand.New(rand.NewSource(42))
		m := lp.NewModel("slow", lp.Maximize)
		var terms []lp.Term
		for i := 0; i < 40; i++ {
			x := m.NewBinary("x")
			m.SetObjCoef(x, float64(1+rng.Intn(50)))
			terms = append(terms, lp.Term{Var: x, Coef: float64(1 + rng.Intn(40))})
		}
		m.AddConstr(terms, lp.LE, 300, "cap")
		for i := 0; i < 30; i++ {
			a, c := lp.Var(rng.Intn(40)), lp.Var(rng.Intn(40))
			if a == c {
				continue
			}
			m.AddConstr([]lp.Term{{Var: a, Coef: 1}, {Var: c, Coef: 1}}, lp.LE, 1, "conflict")
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: the solve must return immediately
		start := time.Now()
		sol, err := Solve(ctx, m, Options{Backend: b, MaxNodes: 10_000_000})
		if err == nil {
			t.Fatalf("%s: cancelled solve returned no error", b)
		}
		if sol == nil {
			t.Fatalf("%s: cancelled solve returned nil solution", b)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("%s: cancelled solve took %v", b, elapsed)
		}
	}
}

// TestParallelTreeSearchRace exercises the shared-incumbent tree search from
// many goroutines at once; run under -race this is the satellite race test.
func TestParallelTreeSearchRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 8; trial++ {
				m := randomMILP(rng)
				ref, err := Solve(context.Background(), m, Options{Backend: "dense"})
				if err != nil {
					t.Errorf("dense: %v", err)
					return
				}
				sol, err := Solve(context.Background(), m, Options{Backend: "parallel", Parallel: 4})
				if err != nil {
					t.Errorf("parallel: %v", err)
					return
				}
				if sol.Status != ref.Status ||
					(ref.Status == lp.StatusOptimal && math.Abs(sol.Obj-ref.Obj) > 1e-6) {
					t.Errorf("seed %d trial %d: parallel %v/%g, dense %v/%g",
						seed, trial, sol.Status, sol.Obj, ref.Status, ref.Obj)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestWarmStartsHappen: on a model needing real branching, the sparse engine
// must serve most node solves warm from the parent basis.
func TestWarmStartsHappen(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := lp.NewModel("warm", lp.Maximize)
	var terms []lp.Term
	for i := 0; i < 16; i++ {
		x := m.NewBinary("x")
		m.SetObjCoef(x, float64(3+rng.Intn(9)))
		terms = append(terms, lp.Term{Var: x, Coef: float64(2 + rng.Intn(7))})
	}
	m.AddConstr(terms, lp.LE, 31, "cap")
	sol := solveWith(t, "sparse", m, Options{})
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Stats.Nodes > 4 && sol.Stats.WarmStarts == 0 {
		t.Fatalf("no warm starts across %d nodes (stats %+v)", sol.Stats.Nodes, sol.Stats)
	}
}

func TestInfeasibleModel(t *testing.T) {
	for _, b := range Names() {
		m := lp.NewModel("inf", lp.Minimize)
		x := m.NewVar(0, 5, true, "x")
		m.AddConstr([]lp.Term{{Var: x, Coef: 1}}, lp.GE, 3, "ge")
		m.AddConstr([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 2, "le")
		sol := solveWith(t, b, m, Options{})
		if sol.Status != lp.StatusInfeasible {
			t.Fatalf("%s: status %v, want infeasible", b, sol.Status)
		}
	}
}

// TestUnboundedFallsBackToDense: the sparse engine delegates models with
// infinite cost-bearing bounds to the dense engine, which detects the ray.
func TestUnboundedFallsBackToDense(t *testing.T) {
	m := lp.NewModel("unb", lp.Maximize)
	x := m.NewVar(0, math.Inf(1), false, "x")
	m.SetObjCoef(x, 1)
	sol := solveWith(t, "sparse", m, Options{})
	if sol.Status != lp.StatusUnbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}
