package gen

import (
	"context"
	"fmt"
	"time"

	"regsat/internal/ddg"
	"regsat/internal/ir"
	"regsat/internal/reduce"
	"regsat/internal/rs"
	"regsat/internal/solver"
)

// This file is the metamorphic property engine: the catalog of paper
// invariants every generated (or fuzzed, or regression-replayed) graph must
// satisfy. Each invariant has a stable name so failures can be bucketed,
// shrunk, and filed as regression repros (see shrink.go and
// docs/FUZZING.md).
//
// The catalog, per register type t of the graph:
//
//	format-roundtrip          parse(format(g)) is structurally identical to g
//	greedy-le-exact           Greedy-k RS* ≤ exact RS (Greedy is achievable)
//	exact-le-antichain        exact RS ≤ the Dilworth antichain bound of the
//	                          forced-killers order ≤ |values|
//	incremental-vs-reference  the incremental ExactBB == the from-scratch
//	                          reference search
//	antichain-witness         the saturating antichain has exactly RS members
//	                          and its killing function is valid
//	serial-removal-monotone   removing a serial arc never lowers RS
//	heuristic-reduction-valid a non-spilling heuristic reduction reports
//	                          RS ≤ R, a valid DAG, reapplicable arcs, and a
//	                          non-decreased critical path
//	exact-reduction-certifies an exact reduction's extension truly has
//	                          exact RS ≤ R (re-proved with ExactBB)
//	solver-backends-agree     all MILP backends solve the same intLP model,
//	                          so every pair of proven answers must be equal
//	                          and every capped interval must contain every
//	                          proven answer; against the combinatorial exact
//	                          RS the relation is machine-dependent — equal on
//	                          superscalar, ≥ on VLIW/EPIC, where the intLP
//	                          maximizes over *all* schedules while the
//	                          killing-function framework excludes killings
//	                          whose enforcement arcs form non-positive
//	                          circuits (the paper's acyclicity requirement),
//	                          making ExactBB a certified lower bound there
//	                          (see testdata/regressions/solver-backends-
//	                          agree-*.ddg for the 3-node witness)
//	presolve-onoff-agree      the sparse engine with its presolve and cut
//	                          layers enabled proves the same RS as the raw
//	                          engine (the layers are speed, never semantics)
//	clique-cuts-valid         every clique inequality the model builder hints
//	                          to the solver is satisfied by an incumbent of
//	                          the unmodified model solved without cuts

// Violation is one falsified invariant: which one, where, and the concrete
// numbers that contradict it.
type Violation struct {
	Invariant string      // stable catalog name, e.g. "greedy-le-exact"
	Graph     string      // graph name
	Type      ddg.RegType // register type under analysis ("" when type-free)
	Detail    string
}

func (v *Violation) Error() string {
	if v.Type != "" {
		return fmt.Sprintf("invariant %s violated on %s/%s: %s", v.Invariant, v.Graph, v.Type, v.Detail)
	}
	return fmt.Sprintf("invariant %s violated on %s: %s", v.Invariant, v.Graph, v.Detail)
}

// CheckOptions tunes how much of the catalog CheckAll runs.
type CheckOptions struct {
	// MaxExactLeaves caps each exact search (0 = 200k). Graphs whose search
	// exceeds the cap skip the invariants that need a proven exact RS.
	MaxExactLeaves int64
	// MaxILPValues gates the solver-backend cross-check: types with more
	// values skip it (0 = 6). Negative disables the gate.
	MaxILPValues int
	// MaxReduceValues gates the exact-reduction certificate (0 = 5).
	// Negative disables the gate.
	MaxReduceValues int
	// MaxRemovals bounds how many serial arcs the removal-monotonicity
	// invariant tries (0 = 2; each one costs an extra exact solve).
	MaxRemovals int
	// Cheap drops the expensive invariants (arc removal, reductions, solver
	// backends) — the profile fuzz targets run under their per-exec budget.
	Cheap bool
	// Backends overrides the MILP backends to cross-check (nil = all
	// registered).
	Backends []string
}

func (o CheckOptions) withDefaults() CheckOptions {
	if o.MaxExactLeaves == 0 {
		o.MaxExactLeaves = 200_000
	}
	if o.MaxILPValues == 0 {
		o.MaxILPValues = 6
	}
	if o.MaxReduceValues == 0 {
		o.MaxReduceValues = 5
	}
	if o.MaxRemovals == 0 {
		o.MaxRemovals = 2
	}
	if o.Backends == nil {
		o.Backends = solver.Names()
	}
	return o
}

// CheckAll runs the metamorphic invariant catalog on the finalized graph g
// and returns the first *Violation found (or a plain error if an analysis
// itself fails, which is also a bug: every finalized DAG must analyze).
func CheckAll(ctx context.Context, g *ddg.Graph, opt CheckOptions) error {
	opt = opt.withDefaults()
	if !g.Finalized() {
		return fmt.Errorf("gen: CheckAll needs a finalized graph")
	}
	if err := checkRoundTrip(g); err != nil {
		return err
	}
	for _, t := range g.Types() {
		if err := checkType(ctx, g, t, opt); err != nil {
			return err
		}
	}
	return nil
}

// checkRoundTrip: format → parse → finalize must reproduce the exact
// structure (same ir fingerprint).
func checkRoundTrip(g *ddg.Graph) error {
	text := g.Format()
	parsed, err := ddg.ParseString(text)
	if err != nil {
		return &Violation{Invariant: "format-roundtrip", Graph: g.Name,
			Detail: fmt.Sprintf("formatted output failed to parse: %v\n%s", err, text)}
	}
	if err := parsed.Finalize(); err != nil {
		return &Violation{Invariant: "format-roundtrip", Graph: g.Name,
			Detail: fmt.Sprintf("re-parsed graph failed to finalize: %v", err)}
	}
	if got, want := ir.Fingerprint(parsed), ir.Fingerprint(g); got != want {
		return &Violation{Invariant: "format-roundtrip", Graph: g.Name,
			Detail: fmt.Sprintf("fingerprint changed across parse(format(g)): %s != %s", got, want)}
	}
	return nil
}

func checkType(ctx context.Context, g *ddg.Graph, t ddg.RegType, opt CheckOptions) error {
	an, err := rs.NewAnalysis(g, t)
	if err != nil {
		return fmt.Errorf("gen: %s/%s: analysis failed: %w", g.Name, t, err)
	}
	nv := len(an.Values)
	if nv == 0 {
		return nil
	}
	fail := func(invariant, format string, args ...any) error {
		return &Violation{Invariant: invariant, Graph: g.Name, Type: t, Detail: fmt.Sprintf(format, args...)}
	}

	greedy, err := rs.Greedy(an)
	if err != nil {
		return fmt.Errorf("gen: %s/%s: greedy failed: %w", g.Name, t, err)
	}
	exact, stats, err := rs.ExactBB(an, opt.MaxExactLeaves)
	if err != nil {
		return fmt.Errorf("gen: %s/%s: exact BB failed: %w", g.Name, t, err)
	}

	// Bound chain. On a capped search the proven facts shrink to
	// greedy ≤ best-found ≤ UpperBound.
	if greedy.RS > exact.RS && !stats.Capped {
		return fail("greedy-le-exact", "Greedy-k found %d > exact %d", greedy.RS, exact.RS)
	}
	if exact.RS > stats.UpperBound {
		return fail("exact-le-antichain", "exact %d exceeds the search's proven upper bound %d", exact.RS, stats.UpperBound)
	}
	if stats.UpperBound > nv {
		return fail("exact-le-antichain", "antichain bound %d exceeds the value count %d", stats.UpperBound, nv)
	}
	// The Dilworth bound of the forced-killers-only order bounds every
	// killing function, hence RS.
	ik := rs.NewIncremental(an)
	forcedOK := true
	for i := 0; i < nv; i++ {
		if len(an.PKill[i]) == 1 && !ik.Push(i, an.PKill[i][0]) {
			forcedOK = false
			break
		}
	}
	if forcedOK {
		if bound := ik.Bound(); exact.RS > bound {
			return fail("exact-le-antichain", "exact %d exceeds the forced-order antichain bound %d", exact.RS, bound)
		}
	}

	// Witness sanity: the saturating antichain must have exactly RS members,
	// and the killing function behind it must be valid.
	if len(exact.Antichain) != exact.RS {
		return fail("antichain-witness", "antichain has %d members for RS=%d", len(exact.Antichain), exact.RS)
	}
	if exact.Killing != nil && !exact.Killing.Valid() {
		return fail("antichain-witness", "the exact search returned an invalid (cyclic) killing function")
	}

	// Differential: incremental engine vs from-scratch reference.
	ref, refStats, err := rs.ExactBBReference(an, opt.MaxExactLeaves)
	if err != nil {
		return fmt.Errorf("gen: %s/%s: reference BB failed: %w", g.Name, t, err)
	}
	if !stats.Capped && !refStats.Capped && ref.RS != exact.RS {
		return fail("incremental-vs-reference", "incremental found %d, reference found %d", exact.RS, ref.RS)
	}

	if opt.Cheap || stats.Capped {
		return nil
	}

	if err := checkSerialRemoval(g, t, exact.RS, opt); err != nil {
		return err
	}
	if err := checkHeuristicReduction(ctx, g, t, exact.RS); err != nil {
		return err
	}
	if opt.MaxReduceValues < 0 || nv <= opt.MaxReduceValues {
		if err := checkExactReduction(ctx, g, t, exact.RS, opt); err != nil {
			return err
		}
	}
	if opt.MaxILPValues < 0 || nv <= opt.MaxILPValues {
		if err := checkSolverBackends(ctx, g, an, exact.RS, opt); err != nil {
			return err
		}
		if err := checkPresolveAgreement(ctx, g, an); err != nil {
			return err
		}
		if err := checkCliqueCuts(ctx, g, an); err != nil {
			return err
		}
	}
	return nil
}

// checkPresolveAgreement: the sparse engine's presolve and clique-cut
// layers are pure speed — with both on and both off, a proven saturation
// must be identical.
func checkPresolveAgreement(ctx context.Context, g *ddg.Graph, an *rs.Analysis) error {
	base := solver.Options{Backend: "sparse", MaxNodes: 100_000, TimeLimit: 5 * time.Second}
	on, err := rs.ExactILP(ctx, an, true, base)
	if err != nil {
		return fmt.Errorf("gen: %s/%s: presolved solve failed: %w", g.Name, an.Type, err)
	}
	raw := base
	raw.DisablePresolve, raw.DisableCuts = true, true
	off, err := rs.ExactILP(ctx, an, true, raw)
	if err != nil {
		return fmt.Errorf("gen: %s/%s: raw solve failed: %w", g.Name, an.Type, err)
	}
	if on.Exact && off.Exact && on.RS != off.RS {
		return &Violation{Invariant: "presolve-onoff-agree", Graph: g.Name, Type: an.Type,
			Detail: fmt.Sprintf("presolve+cuts proved RS=%d, raw engine proved RS=%d", on.RS, off.RS)}
	}
	return nil
}

// checkCliqueCuts: every never-alive clique the saturation-model builder
// would hint to the solver must hold at an incumbent of the *unmodified*
// model, solved without the cut layer — a direct validity certificate for
// the hinted inequalities.
func checkCliqueCuts(ctx context.Context, g *ddg.Graph, an *rs.Analysis) error {
	m, vars, _, err := rs.BuildSaturationModel(an, true)
	if err != nil {
		return fmt.Errorf("gen: %s/%s: saturation model failed: %w", g.Name, an.Type, err)
	}
	cliques := rs.SaturationCliques(an, vars)
	if len(cliques) == 0 {
		return nil
	}
	sol, err := solver.Solve(ctx, m, solver.Options{
		Backend: "sparse", MaxNodes: 100_000, TimeLimit: 5 * time.Second, DisableCuts: true})
	if err != nil {
		return fmt.Errorf("gen: %s/%s: cut-free solve failed: %w", g.Name, an.Type, err)
	}
	if !sol.Feasible() || sol.AtCutoff {
		return nil
	}
	for _, c := range cliques {
		sum := 0.0
		for _, v := range c.Vars {
			sum += sol.Value(v)
		}
		if sum > float64(c.RHS)+1e-6 {
			return &Violation{Invariant: "clique-cuts-valid", Graph: g.Name, Type: an.Type,
				Detail: fmt.Sprintf("hinted clique %s sums to %g > %d at a cut-free incumbent",
					c.Name, sum, c.RHS)}
		}
	}
	return nil
}

// checkSerialRemoval: dropping a serial arc only loosens the schedule set,
// so RS (the max over schedules) cannot decrease. Flow arcs are exempt —
// removing one changes the consumer sets, i.e. the program itself.
func checkSerialRemoval(g *ddg.Graph, t ddg.RegType, exactRS int, opt CheckOptions) error {
	bottom := g.Bottom()
	tried := 0
	for idx, e := range g.Edges() {
		if tried >= opt.MaxRemovals {
			break
		}
		if e.Kind != ddg.Serial || e.From == bottom || e.To == bottom {
			continue
		}
		tried++
		without, err := rebuildWithoutEdge(g, idx)
		if err != nil {
			return fmt.Errorf("gen: %s: rebuilding without serial arc %d→%d: %w", g.Name, e.From, e.To, err)
		}
		res, stats, err := exactOf(without, t, opt.MaxExactLeaves)
		if err != nil {
			return fmt.Errorf("gen: %s: exact RS without arc %d→%d: %w", g.Name, e.From, e.To, err)
		}
		if stats.Capped {
			continue
		}
		if res != nil && res.RS < exactRS {
			return &Violation{Invariant: "serial-removal-monotone", Graph: g.Name, Type: t,
				Detail: fmt.Sprintf("RS dropped from %d to %d after removing serial arc %s→%s",
					exactRS, res.RS, g.Node(e.From).Name, g.Node(e.To).Name)}
		}
	}
	return nil
}

// checkHeuristicReduction: a reduction that reports success must deliver
// what it reports — a valid DAG whose arcs reapply cleanly, a (Greedy)
// saturation within budget, and a critical path that did not shrink.
func checkHeuristicReduction(ctx context.Context, g *ddg.Graph, t ddg.RegType, exactRS int) error {
	R := exactRS - 1
	if R < 1 {
		return nil
	}
	fail := func(format string, args ...any) error {
		return &Violation{Invariant: "heuristic-reduction-valid", Graph: g.Name, Type: t,
			Detail: fmt.Sprintf(format, args...)}
	}
	res, err := reduce.Heuristic(ctx, g, t, R)
	if err != nil {
		return fmt.Errorf("gen: %s/%s: heuristic reduction failed: %w", g.Name, t, err)
	}
	if res.Spill {
		return nil
	}
	if res.RS > R {
		return fail("non-spill reduction reports RS %d > budget %d", res.RS, R)
	}
	if err := res.Graph.Validate(); err != nil {
		return fail("reduced graph is invalid: %v", err)
	}
	if res.CPAfter < res.CPBefore {
		return fail("critical path shrank from %d to %d under added arcs", res.CPBefore, res.CPAfter)
	}
	reapplied, err := reduce.ApplyArcs(g, res.Arcs)
	if err != nil {
		return fail("reported arcs do not reapply: %v", err)
	}
	if ir.Fingerprint(reapplied) != ir.Fingerprint(res.Graph) {
		return fail("reapplying the reported arcs yields a different graph")
	}
	return nil
}

// checkExactReduction: the exact reducer's certificate is re-proved — the
// extension it returns must *really* have exact RS ≤ R, not just a Greedy
// estimate ≤ R.
func checkExactReduction(ctx context.Context, g *ddg.Graph, t ddg.RegType, exactRS int, opt CheckOptions) error {
	R := exactRS - 1
	if R < 1 {
		return nil
	}
	res, err := reduce.ExactCombinatorial(ctx, g, t, R, reduce.ExactOptions{MaxNodes: 50_000})
	if err != nil {
		return fmt.Errorf("gen: %s/%s: exact reduction failed: %w", g.Name, t, err)
	}
	if !res.Exact || res.Spill {
		return nil // budget exhausted or genuinely infeasible: nothing claimed
	}
	fail := func(format string, args ...any) error {
		return &Violation{Invariant: "exact-reduction-certifies", Graph: g.Name, Type: t,
			Detail: fmt.Sprintf(format, args...)}
	}
	if err := res.Graph.Validate(); err != nil {
		return fail("certified extension is invalid: %v", err)
	}
	after, stats, err := exactOf(res.Graph, t, opt.MaxExactLeaves)
	if err != nil {
		return fmt.Errorf("gen: %s/%s: exact RS of certified extension: %w", g.Name, t, err)
	}
	if stats.Capped {
		return nil
	}
	if after.RS > R {
		return fail("certified extension has exact RS %d > budget %d", after.RS, R)
	}
	if res.CPAfter < res.CPBefore {
		return fail("critical path shrank from %d to %d under added arcs", res.CPBefore, res.CPAfter)
	}
	return nil
}

// checkSolverBackends: all registered MILP backends solve the same intLP
// model, so (a) every pair of proven answers must be equal and every capped
// interval must contain every proven answer, and (b) against the
// combinatorial exact search the machine-dependent relation must hold:
// equality on superscalar; on offset machines the intLP (which maximizes
// over all schedules) may strictly exceed ExactBB (which excludes killings
// whose enforcement arcs form non-positive circuits), so only
// ILP ≥ combinatorial is required.
func checkSolverBackends(ctx context.Context, g *ddg.Graph, an *rs.Analysis, exactRS int, opt CheckOptions) error {
	type answer struct {
		backend string
		res     *rs.Result
	}
	var proven []answer
	var capped []answer
	for _, backend := range opt.Backends {
		res, err := rs.ComputeWithAnalysis(ctx, an, rs.Options{
			Method:          rs.MethodExactILP,
			ApplyReductions: true,
			SkipWitness:     true,
			Solver:          solver.Options{Backend: backend, MaxNodes: 100_000, TimeLimit: 5 * time.Second},
		})
		if err != nil {
			return fmt.Errorf("gen: %s/%s: backend %s failed: %w", g.Name, an.Type, backend, err)
		}
		fail := func(format string, args ...any) error {
			return &Violation{Invariant: "solver-backends-agree", Graph: g.Name, Type: an.Type,
				Detail: fmt.Sprintf("backend %s: %s", backend, fmt.Sprintf(format, args...))}
		}
		if res.RS > res.ILPUpperBound {
			return fail("achieved %d above own proven upper bound %d", res.RS, res.ILPUpperBound)
		}
		if res.Exact {
			if g.Machine.HasOffsets() {
				if res.RS < exactRS {
					return fail("proved RS=%d below the combinatorial lower bound %d", res.RS, exactRS)
				}
			} else if res.RS != exactRS {
				return fail("proved RS=%d, combinatorial exact is %d", res.RS, exactRS)
			}
			proven = append(proven, answer{backend, res})
		} else {
			if res.ILPUpperBound < exactRS {
				return fail("proven upper bound %d below the combinatorial exact %d", res.ILPUpperBound, exactRS)
			}
			capped = append(capped, answer{backend, res})
		}
	}
	if len(proven) == 0 {
		return nil
	}
	for _, a := range proven[1:] {
		if a.res.RS != proven[0].res.RS {
			return &Violation{Invariant: "solver-backends-agree", Graph: g.Name, Type: an.Type,
				Detail: fmt.Sprintf("backends %s and %s prove different optima: %d vs %d",
					proven[0].backend, a.backend, proven[0].res.RS, a.res.RS)}
		}
	}
	for _, c := range capped {
		for _, p := range proven {
			if p.res.RS < c.res.RS || p.res.RS > c.res.ILPUpperBound {
				return &Violation{Invariant: "solver-backends-agree", Graph: g.Name, Type: an.Type,
					Detail: fmt.Sprintf("backend %s's interval [%d, %d] misses backend %s's proven %d",
						c.backend, c.res.RS, c.res.ILPUpperBound, p.backend, p.res.RS)}
			}
		}
	}
	return nil
}

// exactOf computes the exact RS of a finalized graph, tolerating types the
// graph does not write (nil result).
func exactOf(g *ddg.Graph, t ddg.RegType, maxLeaves int64) (*rs.RSResult, *rs.ExactStats, error) {
	an, err := rs.NewAnalysis(g, t)
	if err != nil {
		return nil, nil, err
	}
	if len(an.Values) == 0 {
		return nil, &rs.ExactStats{}, nil
	}
	return rs.ExactBB(an, maxLeaves)
}

// rebuildWithoutEdge reconstructs g's pre-finalize structure minus the edge
// at index drop, then finalizes. Bottom-incident edges are regenerated by
// Finalize, so the result is a well-formed DDG differing from g by exactly
// the dropped arc.
func rebuildWithoutEdge(g *ddg.Graph, drop int) (*ddg.Graph, error) {
	return rebuild(g, func(i int, e ddg.Edge) bool { return i == drop })
}

// rebuild copies g's pre-finalize structure, skipping edges for which skip
// returns true, and finalizes the copy.
func rebuild(g *ddg.Graph, skip func(i int, e ddg.Edge) bool) (*ddg.Graph, error) {
	bottom := g.Bottom()
	limit := g.NumNodes()
	if bottom >= 0 {
		limit = bottom
	}
	out := ddg.New(g.Name+"-rebuilt", g.Machine)
	for i := 0; i < limit; i++ {
		n := g.Node(i)
		id := out.AddNode(n.Name, n.Op, n.Latency)
		if n.DelayR != 0 {
			out.SetReadDelay(id, n.DelayR)
		}
		for t, dw := range n.Writes {
			out.SetWrites(id, t, dw)
		}
	}
	for i, e := range g.Edges() {
		if e.From >= limit || e.To >= limit || skip(i, e) {
			continue
		}
		if e.Kind == ddg.Flow {
			out.AddFlowEdgeLatency(e.From, e.To, e.Type, e.Latency)
		} else {
			out.AddSerialEdge(e.From, e.To, e.Latency)
		}
	}
	if err := out.Finalize(); err != nil {
		return nil, err
	}
	return out, nil
}
