package gen

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsat/internal/cyclic"
	"regsat/internal/ddg"
)

// cyclicSweepShapes are the per-family (size, width) points of the cyclic
// metamorphic sweep: small enough that every window solves with the exact
// search and the periodic MILP certifies frequently, varied enough to mix
// single-value recurrences with multi-tap reuse.
var cyclicSweepShapes = map[string][][2]int{
	"recurrence": {{1, 1}, {1, 2}, {2, 1}, {2, 2}, {1, 3}},
	"stencil":    {{1, 1}, {1, 2}, {2, 1}, {1, 3}, {2, 2}},
}

// cyclicSweepParams returns the i-th parameter point of a cyclic family's
// sweep, deterministically cycling every knob (seeds are offset from the
// acyclic sweep so the two suites never share a PRNG stream).
func cyclicSweepParams(f *CyclicFamily, i int) Params {
	shape := cyclicSweepShapes[f.Name][i%len(cyclicSweepShapes[f.Name])]
	return Params{
		Seed:    int64(5000 + i),
		Machine: sweepMachines[i%len(sweepMachines)],
		Size:    shape[0],
		Width:   shape[1],
		Density: sweepDensities[i%len(sweepDensities)],
		Types:   sweepTypes[i%len(sweepTypes)],
	}
}

// TestCyclicSuite runs the cyclic invariant catalog over ≥ 200 generated
// loops per family (a dozen with -short, certification off). Violations are
// delta-minimized and committed to testdata/regressions/ before failing, same
// contract as the acyclic sweep. CI runs this as the blocking cyclic-suite
// step.
func TestCyclicSuite(t *testing.T) {
	count := 200
	opt := CyclicCheckOptions{Certify: true}
	if testing.Short() {
		count = 12
		opt.Certify = false
		opt.MaxWindow = 3
	}
	for _, f := range CyclicFamilies() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < count; i++ {
				p := cyclicSweepParams(f, i)
				l, err := f.Generate(p)
				if err != nil {
					t.Fatalf("generate %s [%s]: %v", f.Name, p, err)
				}
				if err := CheckCyclic(context.Background(), l, opt); err != nil {
					reportCyclicViolation(t, l, err, opt)
				}
			}
		})
	}
}

// reportCyclicViolation shrinks a failing loop, writes the minimized repro
// into the shared regression corpus, and fails pointing at it.
func reportCyclicViolation(t *testing.T, l *cyclic.Loop, err error, opt CyclicCheckOptions) {
	t.Helper()
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("analysis failure (not an invariant violation): %v\n%s", err, l.Format())
	}
	small := ShrinkCyclic(l, FailsCyclicInvariant(context.Background(), v.Invariant, opt))
	if verr := CheckCyclic(context.Background(), small, opt); verr != nil {
		if sv, ok := verr.(*Violation); ok {
			v = sv
		}
	}
	path, werr := WriteCyclicRepro(regressionsDir, v, small)
	if werr != nil {
		t.Fatalf("%v\n(also failed to write repro: %v)\nminimized:\n%s", err, werr, small.Format())
	}
	t.Fatalf("%v\nminimized repro written to %s — commit it so the regression replay keeps covering this", err, path)
}

// TestPeriodicVsUnrolledDifferential is the zero-disagreement gate: on a
// deterministic grid over both cyclic families, the exact periodic MILP at
// MinII must stay within the Jmax-window RS (certify() hard-errors if not),
// and at a period beyond the one-iteration horizon it must reach at least
// RS(1). Kernels the certifier skips (Jmax past its cap) don't count, so the
// test fails loudly if a family's grid certified nothing.
func TestPeriodicVsUnrolledDifferential(t *testing.T) {
	grids := map[string][][2]int{
		"recurrence": {{1, 1}, {1, 2}, {2, 1}, {2, 2}},
		"stencil":    {{1, 1}, {1, 2}, {2, 1}},
	}
	for _, f := range CyclicFamilies() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			certified := 0
			total := 0
			for _, shape := range grids[f.Name] {
				for _, m := range sweepMachines {
					for _, density := range []float64{0, 0.6} {
						for seed := int64(1); seed <= 3; seed++ {
							total++
							p := Params{Seed: seed, Machine: m, Size: shape[0], Width: shape[1], Density: density}
							l, err := f.Generate(p)
							if err != nil {
								t.Fatalf("generate %s [%s]: %v", f.Name, p, err)
							}
							opt := CyclicCheckOptions{MaxWindow: 6, Certify: true}
							if err := CheckCyclic(context.Background(), l, opt); err != nil {
								reportCyclicViolation(t, l, err, opt)
							}
							res, err := cyclic.Analyze(context.Background(), l, l.Types()[0], cyclic.Options{Certify: true})
							if err != nil {
								t.Fatalf("%s: %v", l.Name, err)
							}
							if res.Periodic != nil {
								certified++
							}
						}
					}
				}
			}
			if certified == 0 {
				t.Fatalf("differential grid for %s certified 0 of %d kernels — every Jmax exceeded the cap, the gate is vacuous", f.Name, total)
			}
			t.Logf("%s: %d/%d kernels certified by the periodic MILP", f.Name, certified, total)
		})
	}
}

// TestCyclicGenerateDeterministic: same params, same loop — the registry
// contract the daemon's memo keys rely on.
func TestCyclicGenerateDeterministic(t *testing.T) {
	for _, f := range CyclicFamilies() {
		p := f.Defaults
		p.Seed = 42
		a, err := f.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := f.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("%s: same params generated different loops", f.Name)
		}
	}
}

func TestCyclicFamilyValidateRanges(t *testing.T) {
	f, ok := CyclicByName("recurrence")
	if !ok {
		t.Fatal("recurrence family missing from registry")
	}
	if err := f.Validate(Params{Size: 0, Width: 1}); err == nil {
		t.Fatal("size below range accepted")
	}
	if err := f.Validate(Params{Size: 1, Width: 999}); err == nil {
		t.Fatal("width above range accepted")
	}
	if _, ok := CyclicByName("nope"); ok {
		t.Fatal("unknown cyclic family resolved")
	}
	if len(CyclicNames()) != len(CyclicFamilies()) {
		t.Fatal("names/registry length mismatch")
	}
}

// TestCheckCyclicDetectsSeededViolation proves the cyclic engine can actually
// fail: an invalid loop is rejected outright.
func TestCheckCyclicDetectsSeededViolation(t *testing.T) {
	l := cyclic.New("bad", ddg.Superscalar)
	a := l.AddNode("a", "op", 1)
	b := l.AddNode("b", "op", 1)
	l.SetWrites(a, ddg.Float, 0)
	l.SetWrites(b, ddg.Float, 0)
	l.AddFlowEdge(a, b, ddg.Float, 0)
	l.AddFlowEdge(b, a, ddg.Float, 0)
	if err := CheckCyclic(context.Background(), l, CyclicCheckOptions{}); err == nil {
		t.Fatal("CheckCyclic accepted a zero-distance cycle")
	}
}

// TestShrinkCyclicMinimizes: the shrinker must strip a decorated loop down to
// the core that still trips the predicate.
func TestShrinkCyclicMinimizes(t *testing.T) {
	l := cyclic.New("fat", ddg.Superscalar)
	a := l.AddNode("a", "op", 3)
	b := l.AddNode("b", "op", 2)
	c := l.AddNode("c", "op", 4)
	l.SetWrites(a, ddg.Float, 0)
	l.SetWrites(b, ddg.Float, 0)
	l.SetWrites(c, ddg.Float, 0)
	l.AddFlowEdge(a, a, ddg.Float, 2)
	l.AddFlowEdge(a, b, ddg.Float, 0)
	l.AddFlowEdge(b, c, ddg.Float, 1)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Predicate: the loop still has a carried self-edge.
	small := ShrinkCyclic(l, func(s *cyclic.Loop) bool {
		for _, e := range s.Edges() {
			if e.From == e.To && e.Dist >= 1 {
				return true
			}
		}
		return false
	})
	if n := len(small.Nodes()); n != 1 {
		t.Fatalf("shrunk to %d nodes, want 1:\n%s", n, small.Format())
	}
	if len(small.Edges()) != 1 || small.Edges()[0].Dist != 1 || small.Edges()[0].Latency != 1 {
		t.Fatalf("edge not minimized: %+v", small.Edges())
	}
}

// cyclicCorpusSeeds reads the committed loop corpus as fuzz seed inputs.
func cyclicCorpusSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for _, dir := range []string{"../../testdata", "../../testdata/cyclic"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".ddg") {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			if cyclic.Detect(string(raw)) {
				seeds = append(seeds, raw)
			}
		}
	}
	if len(seeds) == 0 {
		f.Fatal("no cyclic corpus seeds found under testdata/")
	}
	return seeds
}

// FuzzParseCyclicDDG: the distance-annotated loop parser must reject
// malformed text with an error (never a panic), and everything it accepts
// must round-trip losslessly through Format — fingerprint included — with
// Validate agreeing across the round trip. Nightly CI runs this target
// alongside the flat-parser fuzzers (see .github/workflows/fuzz.yml).
func FuzzParseCyclicDDG(f *testing.F) {
	for _, seed := range cyclicCorpusSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte("ddg \"t\" machine=vliw loop\nnode a op=x lat=2 writes=float:1 dr=1\nnode b op=y lat=1 writes=int\nedge a b flow float dist=2\nedge b a serial lat=-1 dist=1\n"))
	f.Add([]byte("ddg \"r\" loop\nnode a lat=1 writes=float\nedge a a flow float dist=1\n"))
	f.Add([]byte("ddg \"z\" loop\nnode a lat=1 writes=float\nedge a a flow float dist=0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := cyclic.ParseString(string(data))
		if err != nil {
			return // rejected cleanly: fine
		}
		text := l.Format()
		if !cyclic.Detect(text) {
			t.Fatalf("formatted loop not detected as cyclic:\n%s", text)
		}
		again, err := cyclic.ParseString(text)
		if err != nil {
			t.Fatalf("Format output failed to re-parse: %v\n%s", err, text)
		}
		if got := again.Format(); got != text {
			t.Fatalf("Format not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, got)
		}
		if l.Fingerprint() != again.Fingerprint() {
			t.Fatalf("fingerprint changed across parse(format(l))\n%s", text)
		}
		errA, errB := l.Validate(), again.Validate()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("Validate disagrees across a round-trip: %v vs %v", errA, errB)
		}
	})
}
