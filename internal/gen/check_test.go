package gen

import (
	"context"
	"fmt"
	"testing"

	"regsat/internal/ddg"
)

// regressionsDir is where sweep failures land as minimized .ddg repros,
// replayed forever by TestRegressionCorpusReplay (regress_test.go).
const regressionsDir = "../../testdata/regressions"

// sweepShapes are the per-family (size, width) points the metamorphic sweep
// cycles through: small enough that every invariant (including the exact
// reduction certificate and the MILP backend cross-check) stays fast, varied
// enough to hit different antichain structures.
var sweepShapes = map[string][][2]int{
	"unroll":     {{2, 2}, {3, 2}, {2, 3}, {4, 2}, {3, 3}},
	"grid":       {{2, 2}, {2, 3}, {3, 2}, {3, 3}, {2, 4}},
	"superblock": {{1, 2}, {2, 2}, {1, 3}, {2, 3}},
	"exprtree":   {{1, 2}, {2, 2}, {1, 3}, {3, 2}},
	"layered":    {{2, 3}, {3, 2}, {3, 3}, {2, 4}, {4, 2}},
}

var sweepMachines = []ddg.MachineKind{ddg.Superscalar, ddg.VLIW, ddg.EPIC}

var sweepTypes = [][]ddg.RegType{
	{ddg.Float},
	{ddg.Int, ddg.Float},
}

var sweepDensities = []float64{0, 0.3, 0.7}

// sweepParams returns the i-th parameter point of a family's sweep,
// deterministically cycling every knob.
func sweepParams(f *Family, i int) Params {
	shape := sweepShapes[f.Name][i%len(sweepShapes[f.Name])]
	return Params{
		Seed:    int64(1000 + i),
		Machine: sweepMachines[i%len(sweepMachines)],
		Size:    shape[0],
		Width:   shape[1],
		Density: sweepDensities[i%len(sweepDensities)],
		Types:   sweepTypes[i%len(sweepTypes)],
	}
}

// TestMetamorphicSweep runs the full invariant catalog over ≥ 200 generated
// graphs per family (a dozen with -short, with the expensive invariants
// off). Any violation is delta-minimized and committed to
// testdata/regressions/ before the test fails, so the bug is pinned even if
// the generating seed later changes.
func TestMetamorphicSweep(t *testing.T) {
	count := 200
	opt := CheckOptions{}
	if testing.Short() {
		count = 12
		opt.Cheap = true
	}
	for _, f := range Families() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < count; i++ {
				p := sweepParams(f, i)
				g, err := f.Generate(p)
				if err != nil {
					t.Fatalf("generate %s [%s]: %v", f.Name, p, err)
				}
				if err := CheckAll(context.Background(), g, opt); err != nil {
					reportViolation(t, g, err, opt)
				}
			}
		})
	}
}

// reportViolation shrinks a failing graph, writes the minimized repro into
// the regression corpus, and fails the test pointing at it.
func reportViolation(t *testing.T, g *ddg.Graph, err error, opt CheckOptions) {
	t.Helper()
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("analysis failure (not an invariant violation): %v\n%s", err, g.Format())
	}
	small := Shrink(g, FailsInvariant(context.Background(), v.Invariant, opt))
	// Re-derive the violation on the minimized graph so the repro's header
	// describes what the committed file actually shows.
	if verr := CheckAll(context.Background(), small, opt); verr != nil {
		if sv, ok := verr.(*Violation); ok {
			v = sv
		}
	}
	path, werr := WriteRepro(regressionsDir, v, small)
	if werr != nil {
		t.Fatalf("%v\n(also failed to write repro: %v)\nminimized:\n%s", err, werr, small.Format())
	}
	t.Fatalf("%v\nminimized repro written to %s (%d nodes) — commit it so the regression replay keeps covering this", err, path, small.NumNodes())
}

// TestCheckAllCatchesSeededViolations proves the engine can actually fail:
// hand-built graphs that violate specific invariants must be reported.
func TestCheckAllDetectsBadGraph(t *testing.T) {
	// An unfinalized graph is rejected outright.
	g := ddg.New("unfinalized", ddg.Superscalar)
	g.AddNode("a", "op", 1)
	if err := CheckAll(context.Background(), g, CheckOptions{Cheap: true}); err == nil {
		t.Fatal("CheckAll accepted an unfinalized graph")
	}
}

// TestCheckAllOnKernels anchors the engine on the committed corpus shapes:
// the paper's own kernels must satisfy the whole catalog.
func TestCheckAllOnFigure2(t *testing.T) {
	g := figure2(t)
	if err := CheckAll(context.Background(), g, CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}

func figure2(t *testing.T) *ddg.Graph {
	t.Helper()
	// A small multi-killer shape (a value consumed by two independent
	// consumers) exercising every invariant path.
	g := ddg.New("check-fig", ddg.Superscalar)
	a := g.AddNode("a", "load", 2)
	b := g.AddNode("b", "mul", 3)
	c := g.AddNode("c", "add", 1)
	d := g.AddNode("d", "add", 1)
	g.SetWrites(a, ddg.Float, 0)
	g.SetWrites(b, ddg.Float, 0)
	g.SetWrites(c, ddg.Float, 0)
	g.SetWrites(d, ddg.Float, 0)
	g.AddFlowEdge(a, b, ddg.Float)
	g.AddFlowEdge(a, c, ddg.Float)
	g.AddFlowEdge(b, d, ddg.Float)
	g.AddFlowEdge(c, d, ddg.Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSweepCoversAllMachinesAndMixes is a meta-test: the sweep parameter
// cycle must actually reach every machine kind and type mix, or the 200
// graphs test less than they claim.
func TestSweepCoversAllMachinesAndMixes(t *testing.T) {
	f := Families()[0]
	machines := map[ddg.MachineKind]bool{}
	mixes := map[string]bool{}
	densities := map[float64]bool{}
	for i := 0; i < 200; i++ {
		p := sweepParams(f, i)
		machines[p.Machine] = true
		mixes[fmt.Sprint(p.Types)] = true
		densities[p.Density] = true
	}
	if len(machines) != 3 || len(mixes) != 2 || len(densities) != 3 {
		t.Fatalf("sweep coverage hole: %d machines, %d mixes, %d densities", len(machines), len(mixes), len(densities))
	}
}
