package gen

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsat/internal/ddg"
	"regsat/internal/ir"
	"regsat/internal/reduce"
	"regsat/internal/rs"
)

// The three native fuzz targets the nightly CI workflow runs (see
// .github/workflows/fuzz.yml and docs/FUZZING.md):
//
//	FuzzParseDDG           hostile text → parser must error, never panic,
//	                       and accepted graphs must format/parse losslessly
//	Fuzz AnalyzeProperties fuzzed family parameters → generated graphs must
//	                       satisfy the cheap metamorphic invariant catalog
//	FuzzReduce             fuzzed parameters + budget → the heuristic
//	                       reduction contract must hold
//
// Crashers minimize with Shrink + WriteRepro into testdata/regressions/.

// corpusSeeds reads the committed .ddg corpus as seed inputs.
func corpusSeeds(f *testing.F) [][]byte {
	f.Helper()
	entries, err := os.ReadDir("../../testdata")
	if err != nil {
		f.Fatal(err)
	}
	var seeds [][]byte
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ddg") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join("../../testdata", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, raw)
	}
	if len(seeds) == 0 {
		f.Fatal("no corpus seeds found in testdata/")
	}
	return seeds
}

// FuzzParseDDG: Parse must reject malformed text with an error (never a
// panic), and everything it accepts must round-trip losslessly through
// Format — including across Finalize.
func FuzzParseDDG(f *testing.F) {
	for _, seed := range corpusSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte("ddg \"t\" machine=vliw\nnode a op=x lat=2 writes=float:1 dr=1\nnode b op=y lat=1 writes=int\nedge a b flow float\nedge a b serial lat=-1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ddg.ParseString(string(data))
		if err != nil {
			return // rejected cleanly: fine
		}
		text := g.Format()
		again, err := ddg.ParseString(text)
		if err != nil {
			t.Fatalf("Format output failed to re-parse: %v\n%s", err, text)
		}
		if got := again.Format(); got != text {
			t.Fatalf("Format not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, got)
		}
		// Finalization either succeeds (and then fingerprints must agree
		// between the two parses) or fails identically on both.
		errA, errB := g.Finalize(), again.Finalize()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("Finalize disagrees across a round-trip: %v vs %v", errA, errB)
		}
		if errA == nil && ir.Fingerprint(g) != ir.Fingerprint(again) {
			t.Fatalf("fingerprint changed across parse(format(g))\n%s", text)
		}
	})
}

// fuzzedParams maps arbitrary fuzz bytes into a valid, *small* parameter
// point of some family — the graphs must stay analyzable within the per-exec
// fuzz budget.
func fuzzedParams(famSel, size, width, density, machine, mix uint8, seed int64) (*Family, Params) {
	f := families[int(famSel)%len(families)]
	p := Params{
		Seed:    seed,
		Machine: []ddg.MachineKind{ddg.Superscalar, ddg.VLIW, ddg.EPIC}[int(machine)%3],
		Density: float64(density%101) / 100,
		Types:   sweepTypes[int(mix)%len(sweepTypes)],
	}
	// Clamp into the family's range, then shrink to a fuzz-sized core: the
	// per-exec budget cannot absorb a 341-node expression tree (exact search
	// plus the from-scratch reference on every exec).
	p.Size = f.SizeRange[0] + int(size)%4
	p.Width = f.WidthRange[0] + int(width)%3
	if p.Size > f.SizeRange[1] {
		p.Size = f.SizeRange[1]
	}
	if p.Width > f.WidthRange[1] {
		p.Width = f.WidthRange[1]
	}
	for f.nodeEstimate(p) > 24 {
		switch {
		case p.Size > f.SizeRange[0]:
			p.Size--
		case p.Width > f.WidthRange[0]:
			p.Width--
		default:
			return f, p
		}
	}
	return f, p
}

// FuzzAnalyzeProperties: any generated graph, at any fuzzed parameter point,
// must satisfy the cheap invariant catalog (bounds chain, incremental vs
// reference differential, format round-trip).
func FuzzAnalyzeProperties(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(1), uint8(30), uint8(0), uint8(1), int64(1))
	f.Add(uint8(1), uint8(2), uint8(0), uint8(70), uint8(1), uint8(0), int64(2))
	f.Add(uint8(2), uint8(0), uint8(2), uint8(0), uint8(2), uint8(1), int64(3))
	f.Add(uint8(3), uint8(1), uint8(0), uint8(50), uint8(0), uint8(0), int64(4))
	f.Add(uint8(4), uint8(2), uint8(1), uint8(40), uint8(1), uint8(1), int64(5))
	f.Fuzz(func(t *testing.T, famSel, size, width, density, machine, mix uint8, seed int64) {
		fam, p := fuzzedParams(famSel, size, width, density, machine, mix, seed)
		g, err := fam.Generate(p)
		if err != nil {
			t.Fatalf("valid params %s rejected: %v", p, err)
		}
		opt := CheckOptions{Cheap: true, MaxExactLeaves: 20_000}
		if err := CheckAll(context.Background(), g, opt); err != nil {
			if v, ok := err.(*Violation); ok {
				small := Shrink(g, FailsInvariant(context.Background(), v.Invariant, opt))
				if path, werr := WriteRepro(regressionsDir, v, small); werr == nil {
					t.Fatalf("%v\nminimized repro written to %s", err, path)
				}
			}
			t.Fatal(err)
		}
	})
}

// FuzzReduce: the heuristic reduction contract on fuzzed graphs and
// budgets — never an error, and a non-spill result actually delivers a
// valid extension within budget whose arcs reapply.
func FuzzReduce(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(1), uint8(30), uint8(0), uint8(1), int64(1), uint8(1))
	f.Add(uint8(2), uint8(1), uint8(2), uint8(60), uint8(2), uint8(0), int64(7), uint8(2))
	f.Add(uint8(4), uint8(2), uint8(1), uint8(40), uint8(1), uint8(1), int64(9), uint8(3))
	f.Fuzz(func(t *testing.T, famSel, size, width, density, machine, mix uint8, seed int64, budget uint8) {
		fam, p := fuzzedParams(famSel, size, width, density, machine, mix, seed)
		g, err := fam.Generate(p)
		if err != nil {
			t.Fatalf("valid params %s rejected: %v", p, err)
		}
		for _, rt := range g.Types() {
			an, err := rs.NewAnalysis(g, rt)
			if err != nil {
				t.Fatal(err)
			}
			if len(an.Values) == 0 {
				continue
			}
			greedy, err := rs.Greedy(an)
			if err != nil {
				t.Fatal(err)
			}
			R := 1 + int(budget)%greedyMax(greedy.RS)
			res, err := reduce.Heuristic(context.Background(), g, rt, R)
			if err != nil {
				t.Fatalf("%s/%s R=%d: %v", g.Name, rt, R, err)
			}
			if res.Spill {
				continue
			}
			if res.RS > R {
				t.Fatalf("%s/%s: non-spill reduction reports RS %d > budget %d", g.Name, rt, res.RS, R)
			}
			if err := res.Graph.Validate(); err != nil {
				t.Fatalf("%s/%s: reduced graph invalid: %v", g.Name, rt, err)
			}
			if res.CPAfter < res.CPBefore {
				t.Fatalf("%s/%s: critical path shrank %d → %d", g.Name, rt, res.CPBefore, res.CPAfter)
			}
			reapplied, err := reduce.ApplyArcs(g, res.Arcs)
			if err != nil {
				t.Fatalf("%s/%s: reported arcs do not reapply: %v", g.Name, rt, err)
			}
			if ir.Fingerprint(reapplied) != ir.Fingerprint(res.Graph) {
				t.Fatalf("%s/%s: reapplying arcs yields a different graph", g.Name, rt)
			}
		}
	})
}

// greedyMax keeps the fuzzed register budget inside [1, RS] (a budget at or
// above RS is the trivial no-op case, still worth hitting occasionally).
func greedyMax(rs int) int {
	if rs < 1 {
		return 1
	}
	return rs + 1
}
