package gen

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"regsat/internal/ddg"
	"regsat/internal/ir"
)

// Shrink delta-minimizes a failing graph: it repeatedly tries structural
// simplifications — dropping a node (with its incident edges), dropping an
// edge, flattening a latency to 1, zeroing a read/write offset — and keeps
// any change under which fails still returns true, until no single change
// reproduces the failure. fails must treat its argument as read-only and is
// called with finalized graphs only; candidates that fail to finalize are
// discarded, not reported.
//
// The predicate is typically "CheckAll reports the same invariant" (see
// FailsInvariant), so the minimized graph pins the bug, not just any bug.
func Shrink(g *ddg.Graph, fails func(*ddg.Graph) bool) *ddg.Graph {
	cur := specOf(g)
	for {
		improved := false
		// Pass 1: drop a node. Biggest single step, so it goes first.
		for i := 0; i < len(cur.nodes); i++ {
			if cand := cur.withoutNode(i); cand.accept(fails) {
				cur, improved = cand, true
				i-- // the slot now holds the next node
			}
		}
		// Pass 2: drop an edge.
		for i := 0; i < len(cur.edges); i++ {
			if cand := cur.withoutEdge(i); cand.accept(fails) {
				cur, improved = cand, true
				i--
			}
		}
		// Pass 3: flatten latencies and offsets.
		for i := range cur.nodes {
			if cur.nodes[i].lat > 1 {
				cand := cur.clone()
				cand.nodes[i].lat = 1
				for j := range cand.edges {
					if cand.edges[j].flow && cand.edges[j].from == i && cand.edges[j].lat == cur.nodes[i].lat {
						cand.edges[j].lat = 1 // keep default-latency flow edges default
					}
				}
				if cand.accept(fails) {
					cur, improved = cand, true
				}
			}
			if cur.nodes[i].dr != 0 {
				cand := cur.clone()
				cand.nodes[i].dr = 0
				if cand.accept(fails) {
					cur, improved = cand, true
				}
			}
			for t, dw := range cur.nodes[i].writes {
				if dw != 0 {
					cand := cur.clone()
					cand.nodes[i].writes[t] = 0
					if cand.accept(fails) {
						cur, improved = cand, true
					}
				}
			}
		}
		for i := range cur.edges {
			if cur.edges[i].lat > 1 {
				cand := cur.clone()
				cand.edges[i].lat = 1
				if cand.accept(fails) {
					cur, improved = cand, true
				}
			}
		}
		if !improved {
			break
		}
	}
	out, err := cur.graph()
	if err != nil {
		return g // cannot happen for a spec that passed accept; be safe
	}
	return out
}

// FailsInvariant returns a Shrink predicate that holds when CheckAll reports
// a violation of the named invariant (any invariant if name is empty).
func FailsInvariant(ctx context.Context, name string, opt CheckOptions) func(*ddg.Graph) bool {
	return func(g *ddg.Graph) bool {
		err := CheckAll(ctx, g, opt)
		if err == nil {
			return false
		}
		v, ok := err.(*Violation)
		if !ok {
			return false // analysis-level error, not the tracked invariant
		}
		return name == "" || v.Invariant == name
	}
}

// WriteRepro persists a (typically shrunk) failing graph as a .ddg repro in
// dir, named after the violated invariant and the graph's structural
// fingerprint so re-finding the same bug is idempotent. The file carries the
// violation as comments; the regression replay test re-checks every file in
// the directory on every full test run.
func WriteRepro(dir string, v *Violation, g *ddg.Graph) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	fp := ir.Fingerprint(g)
	if len(fp) > 12 {
		fp = fp[:12]
	}
	name := fmt.Sprintf("%s-%s.ddg", v.Invariant, fp)
	path := filepath.Join(dir, name)
	var b strings.Builder
	fmt.Fprintf(&b, "# regression repro: invariant %s\n", v.Invariant)
	for _, line := range strings.Split(strings.TrimSpace(v.Error()), "\n") {
		fmt.Fprintf(&b, "# %s\n", line)
	}
	b.WriteString(g.Format())
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// spec is the mutable pre-finalize representation Shrink edits.
type spec struct {
	machine ddg.MachineKind
	nodes   []nodeSpec
	edges   []edgeSpec
}

type nodeSpec struct {
	name, op string
	lat      int64
	dr       int64
	writes   map[ddg.RegType]int64
}

type edgeSpec struct {
	from, to int
	lat      int64
	flow     bool
	t        ddg.RegType
}

// specOf extracts the pre-finalize structure of g.
func specOf(g *ddg.Graph) *spec {
	limit := g.NumNodes()
	if b := g.Bottom(); b >= 0 {
		limit = b
	}
	s := &spec{machine: g.Machine}
	for i := 0; i < limit; i++ {
		n := g.Node(i)
		ns := nodeSpec{name: n.Name, op: n.Op, lat: n.Latency, dr: n.DelayR, writes: map[ddg.RegType]int64{}}
		for t, dw := range n.Writes {
			ns.writes[t] = dw
		}
		s.nodes = append(s.nodes, ns)
	}
	for _, e := range g.Edges() {
		if e.From >= limit || e.To >= limit {
			continue
		}
		s.edges = append(s.edges, edgeSpec{from: e.From, to: e.To, lat: e.Latency, flow: e.Kind == ddg.Flow, t: e.Type})
	}
	return s
}

func (s *spec) clone() *spec {
	c := &spec{machine: s.machine, nodes: make([]nodeSpec, len(s.nodes)), edges: append([]edgeSpec(nil), s.edges...)}
	for i, n := range s.nodes {
		c.nodes[i] = n
		c.nodes[i].writes = map[ddg.RegType]int64{}
		for t, dw := range n.writes {
			c.nodes[i].writes[t] = dw
		}
	}
	return c
}

// withoutNode drops node i, its incident edges, and renumbers.
func (s *spec) withoutNode(i int) *spec {
	c := &spec{machine: s.machine}
	for j, n := range s.nodes {
		if j == i {
			continue
		}
		cn := n
		cn.writes = map[ddg.RegType]int64{}
		for t, dw := range n.writes {
			cn.writes[t] = dw
		}
		c.nodes = append(c.nodes, cn)
	}
	remap := func(id int) int {
		if id > i {
			return id - 1
		}
		return id
	}
	for _, e := range s.edges {
		if e.from == i || e.to == i {
			continue
		}
		e.from, e.to = remap(e.from), remap(e.to)
		c.edges = append(c.edges, e)
	}
	return c
}

func (s *spec) withoutEdge(i int) *spec {
	c := s.clone()
	c.edges = append(c.edges[:i], c.edges[i+1:]...)
	return c
}

// graph materializes the spec as a finalized DDG.
func (s *spec) graph() (*ddg.Graph, error) {
	if len(s.nodes) == 0 {
		return nil, fmt.Errorf("gen: empty spec")
	}
	g := ddg.New("shrunk", s.machine)
	for _, n := range s.nodes {
		id := g.AddNode(n.name, n.op, n.lat)
		if n.dr != 0 {
			g.SetReadDelay(id, n.dr)
		}
		for t, dw := range n.writes {
			g.SetWrites(id, t, dw)
		}
	}
	for _, e := range s.edges {
		if e.flow {
			if !g.Node(e.from).WritesType(e.t) {
				return nil, fmt.Errorf("gen: shrunk flow edge from non-writer")
			}
			if e.lat < 1 {
				return nil, fmt.Errorf("gen: shrunk flow edge latency < 1")
			}
			g.AddFlowEdgeLatency(e.from, e.to, e.t, e.lat)
		} else {
			if e.lat < 0 && !s.machine.HasOffsets() {
				return nil, fmt.Errorf("gen: negative serial latency on superscalar")
			}
			g.AddSerialEdge(e.from, e.to, e.lat)
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return g, nil
}

// accept reports whether the candidate still reproduces the failure.
func (s *spec) accept(fails func(*ddg.Graph) bool) bool {
	g, err := s.graph()
	if err != nil {
		return false
	}
	return fails(g)
}
