package gen

import (
	"strings"
	"testing"

	"regsat/internal/ddg"
	"regsat/internal/ir"
)

func TestFamiliesRegistered(t *testing.T) {
	if len(Families()) != 5 {
		t.Fatalf("expected 5 families, got %d", len(Families()))
	}
	for _, name := range []string{"unroll", "grid", "superblock", "exprtree", "layered"} {
		f, ok := ByName(name)
		if !ok {
			t.Fatalf("family %q not registered", name)
		}
		if f.Description == "" || f.SizeName == "" || f.WidthName == "" {
			t.Fatalf("family %q lacks documentation strings", name)
		}
		if err := f.Validate(f.Defaults); err != nil {
			t.Fatalf("family %q rejects its own defaults: %v", name, err)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName found a family that does not exist")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, f := range Families() {
		p := f.Defaults
		p.Seed = 42
		a, err := f.Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		b, err := f.Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if ir.Fingerprint(a) != ir.Fingerprint(b) {
			t.Fatalf("%s: same params produced different graphs", f.Name)
		}
		p2 := p
		p2.Seed = 43
		c, err := f.Generate(p2)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		// Some families are fully shape-determined (grid under density 0);
		// only flag seed-insensitivity when the family draws structure.
		if f.Name == "layered" && ir.Fingerprint(a) == ir.Fingerprint(c) {
			t.Fatalf("%s: different seeds produced identical graphs", f.Name)
		}
	}
}

func TestGeneratedGraphsAreValidDDGs(t *testing.T) {
	for _, f := range Families() {
		for _, mk := range []ddg.MachineKind{ddg.Superscalar, ddg.VLIW, ddg.EPIC} {
			p := f.Defaults
			p.Seed = 7
			p.Machine = mk
			p.Types = []ddg.RegType{ddg.Int, ddg.Float}
			g, err := f.Generate(p)
			if err != nil {
				t.Fatalf("%s/%s: %v", f.Name, mk, err)
			}
			if !g.Finalized() {
				t.Fatalf("%s/%s: graph not finalized", f.Name, mk)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", f.Name, mk, err)
			}
			if len(g.Types()) == 0 {
				t.Fatalf("%s/%s: no register values", f.Name, mk)
			}
		}
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	f, _ := ByName("grid")
	cases := []struct {
		p    Params
		want string
	}{
		{Params{Size: 0, Width: 3}, "size=0 out of range"},
		{Params{Size: 3, Width: 0}, "width=0 out of range"},
		{Params{Size: 3, Width: 3, Density: 1.5}, "density=1.5 out of range"},
		{Params{Size: 64, Width: 64, Density: 2}, "density"},
		{Params{Size: 3, Width: 3, Types: []ddg.RegType{""}}, "empty register type"},
	}
	for _, c := range cases {
		err := f.Validate(c.p)
		if err == nil {
			t.Fatalf("Validate(%+v) accepted invalid params", c.p)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("Validate(%+v) error %q does not mention %q", c.p, err, c.want)
		}
	}
	tree, _ := ByName("exprtree")
	err := tree.Validate(Params{Size: 10, Width: 8})
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("exprtree size/width explosion not caught: %v", err)
	}
}

func TestParseParams(t *testing.T) {
	base := Params{Size: 3, Width: 3, Density: 0.5, Types: []ddg.RegType{ddg.Float}}
	p, err := ParseParams("size=5,width=2,density=0.25,types=int+float", base)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size != 5 || p.Width != 2 || p.Density != 0.25 || len(p.Types) != 2 {
		t.Fatalf("bad parse: %+v", p)
	}
	if p, err := ParseParams("", base); err != nil || p.Size != 3 {
		t.Fatalf("empty spec should keep base: %+v, %v", p, err)
	}
	if p, err := ParseParams(" size=4 , width=1 ", base); err != nil || p.Size != 4 || p.Width != 1 {
		t.Fatalf("spaces should be tolerated: %+v, %v", p, err)
	}
	for _, bad := range []string{"size=x", "density=much", "bogus=1", "size", "types=int+"} {
		if _, err := ParseParams(bad, base); err == nil {
			t.Fatalf("ParseParams(%q) accepted malformed spec", bad)
		}
	}
}

func TestParamsStringRoundTrips(t *testing.T) {
	p := Params{Size: 4, Width: 2, Density: 0.3, Types: []ddg.RegType{ddg.Int, ddg.Float}}
	back, err := ParseParams(p.String(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Size != p.Size || back.Width != p.Width || back.Density != p.Density || len(back.Types) != 2 {
		t.Fatalf("String/ParseParams mismatch: %q → %+v", p.String(), back)
	}
}

// TestShrinkMinimizes: a predicate counting nodes drives the shrinker to the
// minimal reproducer.
func TestShrinkMinimizes(t *testing.T) {
	f, _ := ByName("layered")
	p := f.Defaults
	p.Seed = 11
	p.Size, p.Width = 4, 4
	g, err := f.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// "Fails" when the graph still has at least 2 float values: minimal
	// repro is any 2-value core.
	fails := func(g *ddg.Graph) bool { return len(g.Values(ddg.Float)) >= 2 }
	if !fails(g) {
		t.Skip("seed produced fewer than 2 float values")
	}
	small := Shrink(g, fails)
	if !fails(small) {
		t.Fatal("shrunk graph no longer fails the predicate")
	}
	if got := len(small.Values(ddg.Float)); got != 2 {
		t.Fatalf("shrinker left %d float values, want 2", got)
	}
	// Everything not needed for the predicate should be gone: 2 writers + ⊥.
	if small.NumNodes() > 3 {
		t.Fatalf("shrinker left %d nodes, want ≤ 3\n%s", small.NumNodes(), small.Format())
	}
}

func TestWriteReproAndReplay(t *testing.T) {
	dir := t.TempDir()
	f, _ := ByName("grid")
	p := f.Defaults
	p.Seed = 3
	g, err := f.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	v := &Violation{Invariant: "greedy-le-exact", Graph: g.Name, Type: ddg.Float, Detail: "synthetic"}
	path, err := WriteRepro(dir, v, g)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := readAndParseRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Fingerprint(raw) != ir.Fingerprint(g) {
		t.Fatal("repro file does not round-trip the failing graph")
	}
	// Idempotent: same violation + graph → same path, no duplicates.
	again, err := WriteRepro(dir, v, g)
	if err != nil {
		t.Fatal(err)
	}
	if again != path {
		t.Fatalf("repro path changed across writes: %s vs %s", path, again)
	}
}
