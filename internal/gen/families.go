package gen

import (
	"fmt"
	"math/rand"

	"regsat/internal/ddg"
)

// The builders below only ever add edges from lower to higher node IDs, so
// every generated graph is a DAG by construction; Finalize appends ⊥ and
// validates the rest of the model invariants.

// pickType draws a register type from the mix.
func pickType(p Params, rng *rand.Rand) ddg.RegType {
	return p.Types[rng.Intn(len(p.Types))]
}

// addValueNode appends an operation that writes a value of type t, drawing
// machine offsets where the model exposes them (δr on VLIW/EPIC, δw on VLIW;
// EPIC writers are statically at offset 0 because a writer and a reader may
// share an instruction group).
func addValueNode(g *ddg.Graph, p Params, rng *rand.Rand, name, op string, lat int64, t ddg.RegType) int {
	id := g.AddNode(name, op, lat)
	if p.Machine.HasOffsets() {
		g.SetReadDelay(id, rng.Int63n(3))
	}
	var dw int64
	if p.Machine == ddg.VLIW {
		dw = rng.Int63n(3)
	}
	g.SetWrites(id, t, dw)
	return id
}

// latIn draws a latency in [1, max].
func latIn(rng *rand.Rand, max int64) int64 { return 1 + rng.Int63n(max) }

// unrollFamily models an unrolled loop body: Width ops per iteration chained
// by flow dependences, Size iterations laid out back to back, a recurrence
// carrying the last value of each iteration into the head of the next, and
// (with probability Density per op) extra loop-carried dependences between
// the same op of adjacent iterations — the shape loop unrolling produces and
// the one where saturation grows with the unroll factor.
var unrollFamily = &Family{
	Name:        "unroll",
	Description: "unrolled loop chains with cross-iteration recurrences",
	SizeName:    "unroll factor (iterations)",
	WidthName:   "operations per iteration body",
	SizeRange:   [2]int{1, 256},
	WidthRange:  [2]int{1, 64},
	Defaults:    Params{Size: 4, Width: 3, Density: 0.3},
	build: func(g *ddg.Graph, p Params, rng *rand.Rand) {
		ids := make([][]int, p.Size)
		for i := 0; i < p.Size; i++ {
			ids[i] = make([]int, p.Width)
			for j := 0; j < p.Width; j++ {
				t := p.Types[(i*p.Width+j)%len(p.Types)]
				id := addValueNode(g, p, rng, fmt.Sprintf("i%d_b%d", i, j), "body", latIn(rng, 4), t)
				ids[i][j] = id
				if j > 0 {
					g.AddFlowEdge(ids[i][j-1], id, typeOf(g, ids[i][j-1]))
				}
			}
			if i > 0 {
				// The recurrence: last value of iteration i-1 feeds the head
				// of iteration i.
				last := ids[i-1][p.Width-1]
				g.AddFlowEdge(last, ids[i][0], typeOf(g, last))
				// Extra loop-carried dependences op j → op j of the next
				// iteration.
				for j := 0; j < p.Width; j++ {
					if rng.Float64() < p.Density && ids[i-1][j] != last {
						g.AddFlowEdge(ids[i-1][j], ids[i][j], typeOf(g, ids[i-1][j]))
					}
				}
			}
		}
	},
}

// typeOf returns the single register type node u writes (families write
// exactly one type per node).
func typeOf(g *ddg.Graph, u int) ddg.RegType {
	for t := range g.Node(u).Writes {
		return t
	}
	panic(fmt.Sprintf("gen: node %d writes no value", u))
}

// gridFamily models a tiled 2D computation (stencils, the Tiling Perspective
// report's grids): node (r,c) consumes the values of (r-1,c) and (r,c-1),
// plus the diagonal (r-1,c-1) with probability Density. Register pressure
// rides the anti-diagonal wavefront, which neither chains nor random layered
// DAGs exhibit.
var gridFamily = &Family{
	Name:        "grid",
	Description: "tiling-style 2D grid graphs (stencil wavefronts)",
	SizeName:    "grid rows",
	WidthName:   "grid columns",
	SizeRange:   [2]int{1, 64},
	WidthRange:  [2]int{1, 64},
	Defaults:    Params{Size: 3, Width: 3, Density: 0.25},
	build: func(g *ddg.Graph, p Params, rng *rand.Rand) {
		ids := make([][]int, p.Size)
		for r := 0; r < p.Size; r++ {
			ids[r] = make([]int, p.Width)
			for c := 0; c < p.Width; c++ {
				t := p.Types[(r+c)%len(p.Types)]
				id := addValueNode(g, p, rng, fmt.Sprintf("g%d_%d", r, c), "cell", latIn(rng, 3), t)
				ids[r][c] = id
				if r > 0 {
					g.AddFlowEdge(ids[r-1][c], id, typeOf(g, ids[r-1][c]))
				}
				if c > 0 {
					g.AddFlowEdge(ids[r][c-1], id, typeOf(g, ids[r][c-1]))
				}
				if r > 0 && c > 0 && rng.Float64() < p.Density {
					g.AddFlowEdge(ids[r-1][c-1], id, typeOf(g, ids[r-1][c-1]))
				}
			}
		}
	},
}

// superblockFamily models a superblock trace: Size blocks, each a head value
// fanning out to Width parallel compute ops that fan back into a join, with
// joins chained across blocks; side serial edges (probability Density) model
// the trace's side exits, which constrain scheduling without carrying
// values. High fan-in/fan-out gives values many potential killers — the
// worst case for the killing-function search.
var superblockFamily = &Family{
	Name:        "superblock",
	Description: "superblock traces: fan-out/fan-in blocks with side exits",
	SizeName:    "blocks in the trace",
	WidthName:   "parallel operations per block",
	SizeRange:   [2]int{1, 64},
	WidthRange:  [2]int{1, 32},
	Defaults:    Params{Size: 2, Width: 3, Density: 0.3},
	build: func(g *ddg.Graph, p Params, rng *rand.Rand) {
		prevJoin := -1
		var prevBranches []int
		for b := 0; b < p.Size; b++ {
			headT := p.Types[b%len(p.Types)]
			head := addValueNode(g, p, rng, fmt.Sprintf("b%d_head", b), "head", latIn(rng, 3), headT)
			if prevJoin >= 0 {
				g.AddFlowEdge(prevJoin, head, typeOf(g, prevJoin))
			}
			// Side exits: a branch op of the previous block must complete
			// before this block's region is entered — a serial constraint,
			// no value flows.
			for _, id := range prevBranches {
				if rng.Float64() < p.Density {
					g.AddSerialEdge(id, head, 1)
				}
			}
			branches := make([]int, p.Width)
			for w := 0; w < p.Width; w++ {
				t := p.Types[(b+w)%len(p.Types)]
				id := addValueNode(g, p, rng, fmt.Sprintf("b%d_op%d", b, w), "calc", latIn(rng, 4), t)
				branches[w] = id
				g.AddFlowEdge(head, id, headT)
			}
			join := addValueNode(g, p, rng, fmt.Sprintf("b%d_join", b), "join", latIn(rng, 3), headT)
			for _, id := range branches {
				g.AddFlowEdge(id, join, typeOf(g, id))
			}
			prevJoin, prevBranches = join, branches
		}
	},
}

// exprtreeFamily models GPU-style deep expression trees (the min-register
// scheduling workloads): a full Width-ary reduction tree of depth Size,
// leaves as loads and inner nodes combining their children's values. With
// probability Density a leaf value is reused by one extra inner node
// (common-subexpression reuse), which widens its killer set.
var exprtreeFamily = &Family{
	Name:        "exprtree",
	Description: "deep k-ary expression/reduction trees (GPU-like kernels)",
	SizeName:    "tree depth",
	WidthName:   "arity (children per inner node)",
	SizeRange:   [2]int{1, 10},
	WidthRange:  [2]int{2, 8},
	Defaults:    Params{Size: 3, Width: 2, Density: 0.2},
	build: func(g *ddg.Graph, p Params, rng *rand.Rand) {
		// Leaves first (lowest IDs), then level by level up to the root, so
		// child IDs are always below parent IDs.
		leaves := 1
		for d := 0; d < p.Size; d++ {
			leaves *= p.Width
		}
		level := make([]int, leaves)
		for i := range level {
			t := p.Types[i%len(p.Types)]
			level[i] = addValueNode(g, p, rng, fmt.Sprintf("leaf%d", i), "load", latIn(rng, 4), t)
		}
		var inner []int
		depth := 0
		for len(level) > 1 {
			depth++
			next := make([]int, len(level)/p.Width)
			for i := range next {
				t := p.Types[(depth+i)%len(p.Types)]
				id := addValueNode(g, p, rng, fmt.Sprintf("d%d_n%d", depth, i), "comb", latIn(rng, 3), t)
				for c := 0; c < p.Width; c++ {
					child := level[i*p.Width+c]
					g.AddFlowEdge(child, id, typeOf(g, child))
				}
				next[i] = id
				inner = append(inner, id)
			}
			level = next
		}
		// Common-subexpression reuse: some leaves feed one extra inner node.
		for leaf := 0; leaf < leaves && len(inner) > 0; leaf++ {
			if rng.Float64() < p.Density {
				target := inner[rng.Intn(len(inner))]
				g.AddFlowEdge(leaf, target, typeOf(g, leaf))
			}
		}
	},
}

// layeredFamily is the controllable random baseline: Size layers of Width
// nodes, forward edges between consecutive layers with probability Density
// (plus sparser skip-layer edges), and a register-type mix with occasional
// non-writing (pure serial) nodes — the knob-heavy family for sweeping
// width × density × type-mix interactions.
var layeredFamily = &Family{
	Name:        "layered",
	Description: "layered random DAGs with width/density/type-mix knobs",
	SizeName:    "layers",
	WidthName:   "nodes per layer",
	SizeRange:   [2]int{1, 128},
	WidthRange:  [2]int{1, 64},
	Defaults:    Params{Size: 3, Width: 3, Density: 0.4},
	build: func(g *ddg.Graph, p Params, rng *rand.Rand) {
		layers := make([][]int, p.Size)
		writes := map[int]bool{}
		for l := 0; l < p.Size; l++ {
			layers[l] = make([]int, p.Width)
			for w := 0; w < p.Width; w++ {
				name := fmt.Sprintf("l%d_n%d", l, w)
				lat := latIn(rng, 4)
				// Mostly writers; ~1 in 7 is a pure serial op (stores,
				// branches). The first node always writes, so Generate's
				// at-least-one-value contract holds at every size.
				if l+w > 0 && rng.Intn(7) == 0 {
					id := g.AddNode(name, "store", lat)
					if p.Machine.HasOffsets() {
						g.SetReadDelay(id, rng.Int63n(3))
					}
					layers[l][w] = id
				} else {
					layers[l][w] = addValueNode(g, p, rng, name, "op", lat, pickType(p, rng))
					writes[layers[l][w]] = true
				}
			}
		}
		connect := func(u, v int) {
			if writes[u] {
				g.AddFlowEdge(u, v, typeOf(g, u))
			} else {
				g.AddSerialEdge(u, v, g.Node(u).Latency)
			}
		}
		for l := 1; l < p.Size; l++ {
			for _, v := range layers[l] {
				for _, u := range layers[l-1] {
					if rng.Float64() < p.Density {
						connect(u, v)
					}
				}
				if l >= 2 {
					for _, u := range layers[l-2] {
						if rng.Float64() < p.Density/3 {
							connect(u, v)
						}
					}
				}
			}
		}
	},
}
