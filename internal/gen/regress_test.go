package gen

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regsat/internal/cyclic"
	"regsat/internal/ddg"
)

// readAndParseRepro loads a .ddg repro file (comment headers included) and
// returns the finalized graph.
func readAndParseRepro(path string) (*ddg.Graph, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := ddg.ParseString(string(raw))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := g.Finalize(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// TestRegressionCorpusReplay re-runs the full invariant catalog on every
// minimized repro ever committed to testdata/regressions/ — once a fuzz or
// sweep failure is pinned there, it can never silently come back.
func TestRegressionCorpusReplay(t *testing.T) {
	entries, err := os.ReadDir(regressionsDir)
	if os.IsNotExist(err) {
		t.Skip("no regression corpus yet")
	}
	if err != nil {
		t.Fatal(err)
	}
	opt := CheckOptions{}
	if testing.Short() {
		opt.Cheap = true
	}
	replayed := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ddg") {
			continue
		}
		replayed++
		path := filepath.Join(regressionsDir, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Loop repros share the corpus directory; the `loop` header flag
			// routes them to the cyclic catalog.
			if cyclic.Detect(string(raw)) {
				l, err := cyclic.ParseString(string(raw))
				if err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				copt := CyclicCheckOptions{Certify: !testing.Short()}
				if err := CheckCyclic(context.Background(), l, copt); err != nil {
					t.Fatalf("cyclic regression resurfaced: %v", err)
				}
				return
			}
			g, err := readAndParseRepro(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckAll(context.Background(), g, opt); err != nil {
				t.Fatalf("regression resurfaced: %v", err)
			}
		})
	}
	t.Logf("replayed %d regression repros", replayed)
}
