package gen

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"regsat/internal/cyclic"
	"regsat/internal/ddg"
	"regsat/internal/rs"
)

// Cyclic families generate *loop* DDGs — bodies with loop-carried flow
// dependences at iteration distances ω ≥ 0 — for the periodic-saturation
// engine (internal/cyclic). They mirror the acyclic Family registry: stable
// names, validated knob ranges, deterministic seeds, and a metamorphic
// invariant catalog (CheckCyclic) with delta-minimized regression repros.
//
// The cyclic catalog, per register type of the loop:
//
//	cyclic-format-roundtrip   parse(format(l)) reproduces the loop fingerprint
//	                          and Format is a fixpoint
//	cyclic-fingerprint-dist   bumping one carried edge's ω changes the
//	                          fingerprint (distances are part of identity)
//	dist0-projection-acyclic  the ω=0 projection of a valid loop is a valid,
//	                          cycle-free loop
//	unroll-monotone           RS(k) is non-decreasing and subadditive in the
//	                          window size k
//	dist0-degenerate          a loop with no carried edges has RS(1) equal to
//	                          the plain acyclic saturation of its body
//	periodic-le-window        the exact periodic MILP at the minimum initiation
//	                          interval never exceeds the Jmax-window RS, and at
//	                          a period beyond the one-iteration horizon it
//	                          reaches at least RS(1) (the differential's two
//	                          sandwich containments)

// CyclicFamily is one registered loop-shape generator.
type CyclicFamily struct {
	Name        string
	Description string
	// SizeName and WidthName document what Size and Width mean here.
	SizeName, WidthName string
	// SizeRange and WidthRange are the inclusive valid ranges.
	SizeRange, WidthRange [2]int
	// Defaults are the parameters used when the caller leaves them zero.
	Defaults Params

	// build emits the loop body into l.
	build func(l *cyclic.Loop, p Params, rng *rand.Rand)
}

// Validate checks p against the family's ranges, with the same actionable
// error shape as the acyclic registry.
func (f *CyclicFamily) Validate(p Params) error {
	p = p.withDefaults()
	if p.Size < f.SizeRange[0] || p.Size > f.SizeRange[1] {
		return fmt.Errorf("gen: cyclic family %q: size=%d out of range [%d, %d] (size = %s)",
			f.Name, p.Size, f.SizeRange[0], f.SizeRange[1], f.SizeName)
	}
	if p.Width < f.WidthRange[0] || p.Width > f.WidthRange[1] {
		return fmt.Errorf("gen: cyclic family %q: width=%d out of range [%d, %d] (width = %s)",
			f.Name, p.Width, f.WidthRange[0], f.WidthRange[1], f.WidthName)
	}
	if p.Density < 0 || p.Density > 1 {
		return fmt.Errorf("gen: cyclic family %q: density=%g out of range [0, 1]", f.Name, p.Density)
	}
	if n := p.Size * p.Width * 2; n > MaxNodes {
		return fmt.Errorf("gen: cyclic family %q: size=%d width=%d would generate ~%d body nodes (limit %d)",
			f.Name, p.Size, p.Width, n, MaxNodes)
	}
	for _, t := range p.Types {
		if t == "" {
			return fmt.Errorf("gen: cyclic family %q: empty register type in types list", f.Name)
		}
	}
	return nil
}

// Generate builds the family's loop for p: deterministic in p, validated, and
// guaranteed to define at least one register value.
func (f *CyclicFamily) Generate(p Params) (*cyclic.Loop, error) {
	p = p.withDefaults()
	if err := f.Validate(p); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	name := fmt.Sprintf("%s-%s-z%dw%d-s%d", f.Name, p.Machine, p.Size, p.Width, p.Seed)
	l := cyclic.New(name, p.Machine)
	f.build(l, p, rng)
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("gen: cyclic family %q produced an invalid loop (seed %d): %w", f.Name, p.Seed, err)
	}
	if len(l.Types()) == 0 {
		return nil, fmt.Errorf("gen: cyclic family %q produced a loop with no register values (seed %d)", f.Name, p.Seed)
	}
	return l, nil
}

// addCyclicValue appends a writer to the loop body, drawing machine offsets
// exactly like the acyclic addValueNode.
func addCyclicValue(l *cyclic.Loop, p Params, rng *rand.Rand, name, op string, lat int64, t ddg.RegType) int {
	id := l.AddNode(name, op, lat)
	if p.Machine.HasOffsets() {
		l.SetReadDelay(id, rng.Int63n(3))
	}
	var dw int64
	if p.Machine == ddg.VLIW {
		dw = rng.Int63n(3)
	}
	l.SetWrites(id, t, dw)
	return id
}

// cyclicTypeOf returns the single register type body node u writes.
func cyclicTypeOf(l *cyclic.Loop, u int) ddg.RegType {
	for t := range l.Node(u).Writes {
		return t
	}
	panic(fmt.Sprintf("gen: loop node %d writes no value", u))
}

// recurrenceFamily models loop-carried recurrence chains (linear recurrences,
// reductions, induction updates): Size chains of Width ops linked by ω=0 flow
// within an iteration, the chain tail feeding its own head at distance 1 or 2,
// and (with probability Density) an ω=0 coupling edge from the previous chain.
// Dist-0 edges only ever point forward in node-ID order, so the ω=0 subgraph
// is acyclic by construction — the validity invariant of the model.
var recurrenceFamily = &CyclicFamily{
	Name:        "recurrence",
	Description: "loop-carried recurrence chains with cross-chain coupling",
	SizeName:    "independent recurrence chains",
	WidthName:   "operations per chain",
	SizeRange:   [2]int{1, 32},
	WidthRange:  [2]int{1, 16},
	Defaults:    Params{Size: 2, Width: 2, Density: 0.3},
	build: func(l *cyclic.Loop, p Params, rng *rand.Rand) {
		ids := make([][]int, p.Size)
		for c := 0; c < p.Size; c++ {
			ids[c] = make([]int, p.Width)
			for j := 0; j < p.Width; j++ {
				t := p.Types[(c*p.Width+j)%len(p.Types)]
				id := addCyclicValue(l, p, rng, fmt.Sprintf("c%d_op%d", c, j), "body", latIn(rng, 4), t)
				ids[c][j] = id
				if j > 0 {
					l.AddFlowEdge(ids[c][j-1], id, cyclicTypeOf(l, ids[c][j-1]), 0)
				}
			}
			// The recurrence: the chain tail feeds its own head next iteration
			// (or the one after — mixed distances exercise the unroll windows).
			tail := ids[c][p.Width-1]
			l.AddFlowEdge(tail, ids[c][0], cyclicTypeOf(l, tail), 1+rng.Int63n(2))
			// Cross-chain coupling, ω=0, forward in ID order only.
			if c > 0 && rng.Float64() < p.Density {
				u := ids[c-1][rng.Intn(p.Width)]
				l.AddFlowEdge(u, ids[c][rng.Intn(p.Width)], cyclicTypeOf(l, u), 0)
			}
		}
	},
}

// stencilFamily models software-pipelined stencil streams: each stream is a
// load feeding an accumulator at every reuse distance 0..Width−1 (the taps of
// the stencil window — one loaded value stays live across Width iterations),
// plus the accumulator's own ω=1 recurrence. Mixed distances on one value are
// exactly what distinguishes periodic from acyclic saturation. With
// probability Density the previous stream's accumulator couples into the
// current one at ω=0 (forward in ID order, so the ω=0 subgraph stays acyclic).
var stencilFamily = &CyclicFamily{
	Name:        "stencil",
	Description: "stencil streams: multi-distance reuse taps plus accumulator recurrences",
	SizeName:    "stencil streams",
	WidthName:   "taps (reuse window length in iterations)",
	SizeRange:   [2]int{1, 32},
	WidthRange:  [2]int{1, 8},
	Defaults:    Params{Size: 2, Width: 3, Density: 0.25},
	build: func(l *cyclic.Loop, p Params, rng *rand.Rand) {
		prevAcc := -1
		for s := 0; s < p.Size; s++ {
			t := p.Types[s%len(p.Types)]
			ld := addCyclicValue(l, p, rng, fmt.Sprintf("s%d_ld", s), "load", latIn(rng, 4), t)
			acc := addCyclicValue(l, p, rng, fmt.Sprintf("s%d_acc", s), "acc", latIn(rng, 3), t)
			for d := 0; d < p.Width; d++ {
				l.AddFlowEdge(ld, acc, t, int64(d))
			}
			l.AddFlowEdge(acc, acc, t, 1)
			if prevAcc >= 0 && rng.Float64() < p.Density {
				l.AddFlowEdge(prevAcc, acc, cyclicTypeOf(l, prevAcc), 0)
			}
			prevAcc = acc
		}
	},
}

// cyclicFamilies is the loop registry, in listing order.
var cyclicFamilies = []*CyclicFamily{recurrenceFamily, stencilFamily}

// CyclicFamilies returns all registered cyclic families in stable order.
func CyclicFamilies() []*CyclicFamily {
	out := make([]*CyclicFamily, len(cyclicFamilies))
	copy(out, cyclicFamilies)
	return out
}

// CyclicByName looks a cyclic family up by its registry name.
func CyclicByName(name string) (*CyclicFamily, bool) {
	for _, f := range cyclicFamilies {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// CyclicNames returns the registered cyclic family names.
func CyclicNames() []string {
	out := make([]string, len(cyclicFamilies))
	for i, f := range cyclicFamilies {
		out[i] = f.Name
	}
	return out
}

// CyclicCheckOptions tunes how much of the cyclic catalog CheckCyclic runs.
type CyclicCheckOptions struct {
	// MaxWindow caps the unrolled-window sweep (0 = 4). Every window is solved
	// with the exact combinatorial search — greedy estimates are lower bounds
	// and would raise false monotonicity alarms.
	MaxWindow int
	// MaxExactLeaves caps each window's exact search (0 = the rs default).
	MaxExactLeaves int64
	// Certify runs the periodic-MILP sandwich on kernels small enough for it.
	Certify bool
}

func (o CyclicCheckOptions) withDefaults() CyclicCheckOptions {
	if o.MaxWindow <= 0 {
		o.MaxWindow = 4
	}
	return o
}

// CheckCyclic runs the cyclic invariant catalog on the validated loop l and
// returns the first *Violation found (or a plain error if an analysis itself
// fails, which is also a bug: every valid loop must analyze).
func CheckCyclic(ctx context.Context, l *cyclic.Loop, opt CyclicCheckOptions) error {
	opt = opt.withDefaults()
	if err := l.Validate(); err != nil {
		return fmt.Errorf("gen: CheckCyclic needs a valid loop: %w", err)
	}
	if err := checkCyclicRoundTrip(l); err != nil {
		return err
	}
	if err := checkCyclicFingerprint(l); err != nil {
		return err
	}
	if err := checkZeroProjection(l); err != nil {
		return err
	}
	for _, t := range l.Types() {
		if err := checkCyclicType(ctx, l, t, opt); err != nil {
			return err
		}
	}
	return nil
}

func checkCyclicRoundTrip(l *cyclic.Loop) error {
	text := l.Format()
	parsed, err := cyclic.ParseString(text)
	if err != nil {
		return &Violation{Invariant: "cyclic-format-roundtrip", Graph: l.Name,
			Detail: fmt.Sprintf("formatted output failed to parse: %v\n%s", err, text)}
	}
	if got := parsed.Format(); got != text {
		return &Violation{Invariant: "cyclic-format-roundtrip", Graph: l.Name,
			Detail: fmt.Sprintf("Format not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, got)}
	}
	if parsed.Fingerprint() != l.Fingerprint() {
		return &Violation{Invariant: "cyclic-format-roundtrip", Graph: l.Name,
			Detail: "fingerprint changed across parse(format(l))"}
	}
	return nil
}

// checkCyclicFingerprint: iteration distances are part of a loop's identity —
// bumping one carried edge's ω must change the fingerprint, or the daemon's
// memo and store would collide two different loops.
func checkCyclicFingerprint(l *cyclic.Loop) error {
	edges := l.Edges()
	for i := range edges {
		if edges[i].Dist == 0 {
			continue
		}
		bumped := l.Clone()
		bumped.Edges()[i].Dist++
		if bumped.Fingerprint() == l.Fingerprint() {
			return &Violation{Invariant: "cyclic-fingerprint-dist", Graph: l.Name,
				Detail: fmt.Sprintf("edge %d→%d: ω %d and %d fingerprint identically",
					edges[i].From, edges[i].To, edges[i].Dist, edges[i].Dist+1)}
		}
		return nil
	}
	return nil
}

func checkZeroProjection(l *cyclic.Loop) error {
	p := l.ZeroProjection()
	if p.Carried() {
		return &Violation{Invariant: "dist0-projection-acyclic", Graph: l.Name,
			Detail: "ω=0 projection still reports carried edges"}
	}
	if err := p.Validate(); err != nil {
		return &Violation{Invariant: "dist0-projection-acyclic", Graph: l.Name,
			Detail: fmt.Sprintf("ω=0 projection of a valid loop is invalid: %v", err)}
	}
	return nil
}

func checkCyclicType(ctx context.Context, l *cyclic.Loop, t ddg.RegType, opt CyclicCheckOptions) error {
	copt := cyclic.Options{
		MaxWindow: opt.MaxWindow,
		Certify:   opt.Certify,
		RS:        rs.Options{Method: rs.MethodExactBB, MaxLeaves: opt.MaxExactLeaves, SkipWitness: true},
	}
	res, err := cyclic.Analyze(ctx, l, t, copt)
	if err != nil {
		// The engine itself hard-errors on the two differential invariants;
		// map those onto catalog names so they shrink and file like any other.
		msg := err.Error()
		switch {
		case strings.Contains(msg, "monotonicity"):
			return &Violation{Invariant: "unroll-monotone", Graph: l.Name, Type: t, Detail: msg}
		case strings.Contains(msg, "disagreement"):
			return &Violation{Invariant: "periodic-le-window", Graph: l.Name, Type: t, Detail: msg}
		}
		return fmt.Errorf("gen: %s/%s: cyclic analysis failed: %w", l.Name, t, err)
	}
	// Subadditivity: RS(i+j) ≤ RS(i) + RS(j). Capped windows make RS(i)
	// best-found lower bounds, so only check when every window proved exact.
	if res.Exact {
		w := res.Windows
		for i := 1; i < len(w); i++ {
			for j := 1; i+j <= len(w); j++ {
				if w[i+j-1] > w[i-1]+w[j-1] {
					return &Violation{Invariant: "unroll-monotone", Graph: l.Name, Type: t,
						Detail: fmt.Sprintf("subadditivity violated: RS(%d)=%d > RS(%d)+RS(%d)=%d",
							i+j, w[i+j-1], i, j, w[i-1]+w[j-1])}
				}
			}
		}
	}
	// A loop with no carried edges is k independent body copies: RS(1) must
	// equal the plain acyclic saturation of the body.
	if !l.Carried() && res.Exact {
		body := l.Body()
		if err := body.Finalize(); err != nil {
			return fmt.Errorf("gen: %s: body finalize failed: %w", l.Name, err)
		}
		bres, err := rs.Compute(ctx, body, t, rs.Options{
			Method: rs.MethodExactBB, MaxLeaves: opt.MaxExactLeaves, SkipWitness: true})
		if err != nil {
			return fmt.Errorf("gen: %s/%s: body RS failed: %w", l.Name, t, err)
		}
		if bres.Exact && res.Windows[0] != bres.RS {
			return &Violation{Invariant: "dist0-degenerate", Graph: l.Name, Type: t,
				Detail: fmt.Sprintf("carried-free loop has RS(1)=%d but body RS=%d", res.Windows[0], bres.RS)}
		}
	}
	// The lower sandwich: at a period beyond the one-iteration horizon the
	// periodic schedule embeds any single window, so PRS(BigII) ≥ RS(1).
	if opt.Certify && res.Periodic != nil && res.Exact {
		big, err := cyclic.PeriodicRS(ctx, l, t, cyclic.PeriodicOptions{II: l.BigII()})
		if err != nil {
			return fmt.Errorf("gen: %s/%s: big-II periodic solve failed: %w", l.Name, t, err)
		}
		if big.Exact && big.RS < res.Windows[0] {
			return &Violation{Invariant: "periodic-le-window", Graph: l.Name, Type: t,
				Detail: fmt.Sprintf("PRS(II=%d)=%d below RS(1)=%d", big.II, big.RS, res.Windows[0])}
		}
	}
	return nil
}

// ShrinkCyclic delta-minimizes a failing loop, mirroring Shrink for graphs:
// drop a node, drop an edge, shrink a distance, flatten a latency or offset —
// keeping any change under which fails still returns true. Candidates that do
// not validate are discarded, not reported.
func ShrinkCyclic(l *cyclic.Loop, fails func(*cyclic.Loop) bool) *cyclic.Loop {
	cur := cyclicSpecOf(l)
	for {
		improved := false
		for i := 0; i < len(cur.nodes); i++ {
			if cand := cur.withoutNode(i); cand.accept(fails) {
				cur, improved = cand, true
				i--
			}
		}
		for i := 0; i < len(cur.edges); i++ {
			if cand := cur.withoutEdge(i); cand.accept(fails) {
				cur, improved = cand, true
				i--
			}
		}
		for i := range cur.edges {
			e := cur.edges[i]
			if e.dist > 1 || (e.dist == 1 && e.from != e.to) {
				cand := cur.clone()
				if e.from == e.to {
					cand.edges[i].dist = 1
				} else {
					cand.edges[i].dist = 0
				}
				if cand.edges[i].dist != e.dist && cand.accept(fails) {
					cur, improved = cand, true
				}
			}
			if e.lat > 1 {
				cand := cur.clone()
				cand.edges[i].lat = 1
				if cand.accept(fails) {
					cur, improved = cand, true
				}
			}
		}
		for i := range cur.nodes {
			if cur.nodes[i].lat > 1 {
				cand := cur.clone()
				cand.nodes[i].lat = 1
				if cand.accept(fails) {
					cur, improved = cand, true
				}
			}
			if cur.nodes[i].dr != 0 {
				cand := cur.clone()
				cand.nodes[i].dr = 0
				if cand.accept(fails) {
					cur, improved = cand, true
				}
			}
			for t, dw := range cur.nodes[i].writes {
				if dw != 0 {
					cand := cur.clone()
					cand.nodes[i].writes[t] = 0
					if cand.accept(fails) {
						cur, improved = cand, true
					}
				}
			}
		}
		if !improved {
			break
		}
	}
	out, err := cur.loop()
	if err != nil {
		return l
	}
	return out
}

// FailsCyclicInvariant returns a ShrinkCyclic predicate that holds when
// CheckCyclic reports a violation of the named invariant (any if empty).
func FailsCyclicInvariant(ctx context.Context, name string, opt CyclicCheckOptions) func(*cyclic.Loop) bool {
	return func(l *cyclic.Loop) bool {
		err := CheckCyclic(ctx, l, opt)
		if err == nil {
			return false
		}
		v, ok := err.(*Violation)
		if !ok {
			return false
		}
		return name == "" || v.Invariant == name
	}
}

// WriteCyclicRepro persists a (typically shrunk) failing loop as a .ddg repro
// in dir — same naming scheme as WriteRepro, keyed by the loop fingerprint.
// The regression replay dispatches on the `loop` header flag, so cyclic and
// acyclic repros share one corpus directory.
func WriteCyclicRepro(dir string, v *Violation, l *cyclic.Loop) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	fp := l.Fingerprint()
	if len(fp) > 12 {
		fp = fp[:12]
	}
	name := fmt.Sprintf("%s-%s.ddg", v.Invariant, fp)
	path := filepath.Join(dir, name)
	var b strings.Builder
	fmt.Fprintf(&b, "# regression repro: invariant %s\n", v.Invariant)
	for _, line := range strings.Split(strings.TrimSpace(v.Error()), "\n") {
		fmt.Fprintf(&b, "# %s\n", line)
	}
	b.WriteString(l.Format())
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// cyclicSpec is the mutable representation ShrinkCyclic edits.
type cyclicSpec struct {
	machine ddg.MachineKind
	nodes   []nodeSpec
	edges   []cyclicEdgeSpec
}

type cyclicEdgeSpec struct {
	from, to int
	lat      int64
	flow     bool
	t        ddg.RegType
	dist     int64
}

func cyclicSpecOf(l *cyclic.Loop) *cyclicSpec {
	s := &cyclicSpec{machine: l.Machine}
	for _, n := range l.Nodes() {
		ns := nodeSpec{name: n.Name, op: n.Op, lat: n.Latency, dr: n.DelayR, writes: map[ddg.RegType]int64{}}
		for t, dw := range n.Writes {
			ns.writes[t] = dw
		}
		s.nodes = append(s.nodes, ns)
	}
	for _, e := range l.Edges() {
		s.edges = append(s.edges, cyclicEdgeSpec{
			from: e.From, to: e.To, lat: e.Latency, flow: e.Kind == ddg.Flow, t: e.Type, dist: e.Dist})
	}
	return s
}

func (s *cyclicSpec) clone() *cyclicSpec {
	c := &cyclicSpec{machine: s.machine, nodes: make([]nodeSpec, len(s.nodes)), edges: append([]cyclicEdgeSpec(nil), s.edges...)}
	for i, n := range s.nodes {
		c.nodes[i] = n
		c.nodes[i].writes = map[ddg.RegType]int64{}
		for t, dw := range n.writes {
			c.nodes[i].writes[t] = dw
		}
	}
	return c
}

func (s *cyclicSpec) withoutNode(i int) *cyclicSpec {
	c := &cyclicSpec{machine: s.machine}
	for j, n := range s.nodes {
		if j == i {
			continue
		}
		cn := n
		cn.writes = map[ddg.RegType]int64{}
		for t, dw := range n.writes {
			cn.writes[t] = dw
		}
		c.nodes = append(c.nodes, cn)
	}
	remap := func(id int) int {
		if id > i {
			return id - 1
		}
		return id
	}
	for _, e := range s.edges {
		if e.from == i || e.to == i {
			continue
		}
		e.from, e.to = remap(e.from), remap(e.to)
		c.edges = append(c.edges, e)
	}
	return c
}

func (s *cyclicSpec) withoutEdge(i int) *cyclicSpec {
	c := s.clone()
	c.edges = append(c.edges[:i], c.edges[i+1:]...)
	return c
}

// loop materializes the spec as a validated Loop.
func (s *cyclicSpec) loop() (*cyclic.Loop, error) {
	if len(s.nodes) == 0 {
		return nil, fmt.Errorf("gen: empty cyclic spec")
	}
	l := cyclic.New("shrunk", s.machine)
	for _, n := range s.nodes {
		id := l.AddNode(n.name, n.op, n.lat)
		if n.dr != 0 {
			l.SetReadDelay(id, n.dr)
		}
		for t, dw := range n.writes {
			l.SetWrites(id, t, dw)
		}
	}
	for _, e := range s.edges {
		if e.flow {
			if !l.Node(e.from).WritesType(e.t) || e.lat < 1 {
				return nil, fmt.Errorf("gen: shrunk flow edge invalid")
			}
			l.AddFlowEdgeLatency(e.from, e.to, e.t, e.lat, e.dist)
		} else {
			if e.lat < 0 && !s.machine.HasOffsets() {
				return nil, fmt.Errorf("gen: negative serial latency on superscalar")
			}
			l.AddSerialEdge(e.from, e.to, e.lat, e.dist)
		}
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

func (s *cyclicSpec) accept(fails func(*cyclic.Loop) bool) bool {
	l, err := s.loop()
	if err != nil {
		return false
	}
	return fails(l)
}
