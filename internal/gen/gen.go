// Package gen generates structured DDG families for property testing,
// fuzzing, and benchmarking. The committed testdata corpus covers the
// paper's kernel suite, but register-pressure behavior only shows its edge
// cases on *structured* graph shapes — unrolled loops with cross-iteration
// recurrences, tiled 2D grids, superblock fan-in/fan-out, deep expression
// trees, wide layered DAGs — so this package builds those shapes on demand,
// deterministically from a seed, at any scale.
//
// Every family is registered under a stable name (Families, ByName) with
// validated parameter ranges, so the CLIs can expose them (-family) and the
// metamorphic property engine (CheckAll in check.go) can sweep them.
package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"regsat/internal/ddg"
)

// MaxNodes bounds the pre-finalize node count of any generated graph: a
// guard against parameter combinations (tree depth × arity, rows × cols)
// that would silently explode.
const MaxNodes = 4096

// Params configures one generated graph. The meaning of Size and Width is
// per-family (see Family.SizeName/WidthName); Density scales the optional
// extra dependences every family sprinkles on top of its core shape.
type Params struct {
	// Seed drives the deterministic PRNG: same params, same graph.
	Seed int64
	// Machine selects the processor model (offsets drawn for VLIW/EPIC).
	Machine ddg.MachineKind
	// Size is the primary scale knob (iterations, rows, blocks, depth,
	// layers — per family).
	Size int
	// Width is the secondary knob (body ops, columns, fan, arity, layer
	// width — per family).
	Width int
	// Density in [0,1] is the probability of each optional extra dependence.
	Density float64
	// Types is the register-type mix values are drawn from (empty = {float}).
	Types []ddg.RegType
}

func (p Params) withDefaults() Params {
	if len(p.Types) == 0 {
		p.Types = []ddg.RegType{ddg.Float}
	}
	return p
}

// Family is one registered graph-shape generator.
type Family struct {
	// Name is the stable registry key (ddggen -family, rsbench -exp families).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// SizeName and WidthName document what Size and Width mean here, so
	// range errors are actionable.
	SizeName, WidthName string
	// SizeRange and WidthRange are the inclusive valid ranges.
	SizeRange, WidthRange [2]int
	// Defaults are the parameters used when the caller leaves them zero.
	Defaults Params

	// build emits the pre-finalize shape into g.
	build func(g *ddg.Graph, p Params, rng *rand.Rand)
}

// Validate checks p against the family's ranges. Errors name the knob, the
// offending value, the valid range, and what the knob means, so a CLI user
// can fix the invocation without reading this source.
func (f *Family) Validate(p Params) error {
	p = p.withDefaults()
	if p.Size < f.SizeRange[0] || p.Size > f.SizeRange[1] {
		return fmt.Errorf("gen: family %q: size=%d out of range [%d, %d] (size = %s)",
			f.Name, p.Size, f.SizeRange[0], f.SizeRange[1], f.SizeName)
	}
	if p.Width < f.WidthRange[0] || p.Width > f.WidthRange[1] {
		return fmt.Errorf("gen: family %q: width=%d out of range [%d, %d] (width = %s)",
			f.Name, p.Width, f.WidthRange[0], f.WidthRange[1], f.WidthName)
	}
	if p.Density < 0 || p.Density > 1 {
		return fmt.Errorf("gen: family %q: density=%g out of range [0, 1] (probability of extra dependences)",
			f.Name, p.Density)
	}
	if n := f.nodeEstimate(p); n > MaxNodes {
		return fmt.Errorf("gen: family %q: size=%d width=%d would generate ~%d nodes (limit %d); shrink one knob",
			f.Name, p.Size, p.Width, n, MaxNodes)
	}
	for _, t := range p.Types {
		if t == "" {
			return fmt.Errorf("gen: family %q: empty register type in types list", f.Name)
		}
	}
	return nil
}

// nodeEstimate upper-bounds the pre-finalize node count.
func (f *Family) nodeEstimate(p Params) int {
	switch f.Name {
	case "exprtree":
		// Full Width-ary tree of depth Size: (w^(d+1)-1)/(w-1) nodes.
		n := 1
		total := 1
		for d := 0; d < p.Size; d++ {
			if n > MaxNodes/p.Width {
				return MaxNodes + 1
			}
			n *= p.Width
			total += n
			if total > MaxNodes {
				return total
			}
		}
		return total
	case "superblock":
		return p.Size * (p.Width + 2)
	default:
		return p.Size * p.Width
	}
}

// Generate builds the family's graph for p: deterministic in p, finalized,
// and guaranteed to define at least one register value.
func (f *Family) Generate(p Params) (*ddg.Graph, error) {
	p = p.withDefaults()
	if err := f.Validate(p); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	name := fmt.Sprintf("%s-%s-z%dw%d-s%d", f.Name, p.Machine, p.Size, p.Width, p.Seed)
	g := ddg.New(name, p.Machine)
	f.build(g, p, rng)
	if err := g.Finalize(); err != nil {
		return nil, fmt.Errorf("gen: family %q produced an invalid graph (seed %d): %w", f.Name, p.Seed, err)
	}
	if len(g.Types()) == 0 {
		return nil, fmt.Errorf("gen: family %q produced a graph with no register values (seed %d)", f.Name, p.Seed)
	}
	return g, nil
}

// families is the registry, in listing order.
var families = []*Family{unrollFamily, gridFamily, superblockFamily, exprtreeFamily, layeredFamily}

// Families returns all registered families in stable order.
func Families() []*Family {
	out := make([]*Family, len(families))
	copy(out, families)
	return out
}

// ByName looks a family up by its registry name.
func ByName(name string) (*Family, bool) {
	for _, f := range families {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// Names returns the registered family names, for error messages and usage.
func Names() []string {
	out := make([]string, len(families))
	for i, f := range families {
		out[i] = f.Name
	}
	return out
}

// ParseParams parses a "key=value,key=value" parameter spec over base (the
// family's defaults, typically): keys size, width, density, and types (a
// '+'-separated register-type list, e.g. types=int+float). Unknown keys and
// malformed values produce errors that name the key, the accepted keys, and
// the expected syntax.
func ParseParams(spec string, base Params) (Params, error) {
	p := base
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return p, fmt.Errorf("gen: bad parameter %q: want key=value (keys: size, width, density, types)", kv)
		}
		switch k {
		case "size":
			n, err := strconv.Atoi(v)
			if err != nil {
				return p, fmt.Errorf("gen: size=%q is not an integer", v)
			}
			p.Size = n
		case "width":
			n, err := strconv.Atoi(v)
			if err != nil {
				return p, fmt.Errorf("gen: width=%q is not an integer", v)
			}
			p.Width = n
		case "density":
			d, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return p, fmt.Errorf("gen: density=%q is not a number in [0, 1]", v)
			}
			p.Density = d
		case "types":
			var types []ddg.RegType
			for _, t := range strings.Split(v, "+") {
				if t == "" {
					return p, fmt.Errorf("gen: types=%q has an empty type (want e.g. types=int+float)", v)
				}
				types = append(types, ddg.RegType(t))
			}
			p.Types = types
		default:
			return p, fmt.Errorf("gen: unknown parameter %q (keys: size, width, density, types)", k)
		}
	}
	return p, nil
}

// String renders the spec back in ParseParams syntax (for logs and file
// names; types joined with '+').
func (p Params) String() string {
	types := make([]string, len(p.Types))
	for i, t := range p.Types {
		types[i] = string(t)
	}
	sort.Strings(types)
	return fmt.Sprintf("size=%d,width=%d,density=%g,types=%s", p.Size, p.Width, p.Density, strings.Join(types, "+"))
}
