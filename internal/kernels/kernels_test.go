package kernels

import (
	"testing"

	"regsat/internal/ddg"
)

func TestAllKernelsBuildOnAllMachines(t *testing.T) {
	for _, machine := range []ddg.MachineKind{ddg.Superscalar, ddg.VLIW, ddg.EPIC} {
		for _, spec := range All() {
			g := spec.Build(machine)
			if err := g.Validate(); err != nil {
				t.Fatalf("%s on %s: %v", spec.Name, machine, err)
			}
			if !g.Finalized() {
				t.Fatalf("%s on %s: not finalized", spec.Name, machine)
			}
			if g.Machine != machine {
				t.Fatalf("%s: machine mismatch", spec.Name)
			}
		}
	}
}

func TestSuiteSizesReasonable(t *testing.T) {
	// Loop bodies in the paper are small DAGs; keep the suite in the range
	// where exact analyses stay tractable.
	for _, spec := range All() {
		g := spec.Build(ddg.Superscalar)
		n := g.NumNodes()
		if n < 3 || n > 40 {
			t.Fatalf("%s: %d nodes out of expected range", spec.Name, n)
		}
		values := 0
		for _, typ := range g.Types() {
			values += len(g.Values(typ))
		}
		if values == 0 {
			t.Fatalf("%s: no register values at all", spec.Name)
		}
	}
}

func TestEveryKernelHasFloatOrIntValues(t *testing.T) {
	for _, spec := range All() {
		g := spec.Build(ddg.Superscalar)
		if len(g.Values(ddg.Float)) == 0 && len(g.Values(ddg.Int)) == 0 {
			t.Fatalf("%s: no float or int values", spec.Name)
		}
	}
}

func TestVLIWKernelsCarryWriteOffsets(t *testing.T) {
	g := daxpy(ddg.VLIW)
	lx := g.NodeByName("lx")
	if g.Node(lx).DelayW(ddg.Float) != LatLoad {
		t.Fatalf("δw(lx)=%d, want %d", g.Node(lx).DelayW(ddg.Float), LatLoad)
	}
	gs := daxpy(ddg.Superscalar)
	if gs.Node(gs.NodeByName("lx")).DelayW(ddg.Float) != 0 {
		t.Fatal("superscalar must have zero offsets")
	}
}

func TestFigure2Shape(t *testing.T) {
	g := Figure2(ddg.Superscalar)
	a := g.NodeByName("a")
	if g.Node(a).Latency != LatFDiv {
		t.Fatalf("a latency=%d, want %d (the Figure 2 long latency)", g.Node(a).Latency, LatFDiv)
	}
	if got := len(g.Values(ddg.Float)); got != 4 {
		t.Fatalf("values=%d, want 4 (a,b,c,d)", got)
	}
	// Each value has exactly one in-DAG consumer (its store).
	for _, v := range g.Values(ddg.Float) {
		cons := g.Cons(v, ddg.Float)
		if len(cons) != 1 {
			t.Fatalf("value %s has %d consumers, want 1", g.Node(v).Name, len(cons))
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("lin-daxpy"); !ok {
		t.Fatal("lin-daxpy missing")
	}
	if _, ok := ByName("no-such-kernel"); ok {
		t.Fatal("unexpected kernel")
	}
}

func TestSuiteBuildsAll(t *testing.T) {
	gs := Suite(ddg.VLIW)
	if len(gs) != len(All()) {
		t.Fatalf("suite size %d, want %d", len(gs), len(All()))
	}
}

func TestDeterministicOrder(t *testing.T) {
	a := All()
	b := All()
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("All() order not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Name >= a[i].Name {
			t.Fatal("All() not sorted")
		}
	}
}

func TestMultiConsumerValuesExist(t *testing.T) {
	// The suite must contain values with several potential killers —
	// otherwise RS analysis is trivial everywhere.
	found := false
	for _, spec := range All() {
		g := spec.Build(ddg.Superscalar)
		for _, typ := range g.Types() {
			for _, v := range g.Values(typ) {
				if len(g.Cons(v, typ)) > 1 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no multi-consumer value anywhere in the suite")
	}
}
